#!/usr/bin/env python3
"""Markdown checker for the repo's committed docs.

Checks, per file:
  * relative links point at files/directories that exist,
  * intra-document anchors (``#section``) match a heading's GitHub slug,
  * code fences are balanced,
  * no trailing whitespace on heading lines (breaks GitHub anchors).

External links (http/https/mailto) are recognized but not fetched — CI
must stay hermetic. Exits nonzero with one ``file:line: message`` per
problem.

Usage: tools/check_markdown.py [file.md ...]
With no arguments, checks every git-tracked .md file (falling back to a
filesystem walk outside a git checkout), except the vendored literature
dumps in EXCLUDE — scraped text whose figure links were never part of
the repo.
"""

import os
import re
import subprocess
import sys
import unicodedata

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(\s*)(```+|~~~+)(.*)$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

# Vendored paper/snippet scrapes, not authored documentation.
EXCLUDE = {"PAPERS.md", "PAPER.md", "SNIPPETS.md"}


def github_slug(heading, seen):
    """The anchor GitHub generates for a heading, with -1/-2 dedup."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)                      # emphasis markers
    text = unicodedata.normalize("NFKD", text)
    slug = []
    for ch in text.lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in " -":
            slug.append("-")
        # everything else (punctuation) is dropped
    slug = "".join(slug)
    base = slug
    n = seen.get(base, 0)
    seen[base] = n + 1
    return base if n == 0 else f"{base}-{n}"


def collect_anchors(lines):
    anchors = set()
    seen = {}
    in_fence = None
    for line in lines:
        fence = FENCE_RE.match(line)
        if fence:
            marker = fence.group(2)[0] * 3
            if in_fence is None:
                in_fence = marker
            elif fence.group(2).startswith(in_fence):
                in_fence = None
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
    return anchors


def check_file(path, anchor_cache):
    problems = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    base_dir = os.path.dirname(os.path.abspath(path))
    anchor_cache[os.path.abspath(path)] = collect_anchors(lines)

    fence_open_line = None
    fence_marker = None
    for lineno, line in enumerate(lines, 1):
        fence = FENCE_RE.match(line)
        if fence:
            if fence_marker is None:
                fence_marker = fence.group(2)[0] * 3
                fence_open_line = lineno
            elif fence.group(2).startswith(fence_marker):
                fence_marker = None
            continue
        if fence_marker is not None:
            continue

        m = HEADING_RE.match(line)
        if m is None and re.match(r"^#{1,6}\s+.*\s$", line):
            problems.append((lineno, "trailing whitespace on heading"))

        for regex in (LINK_RE, IMAGE_RE):
            for target in regex.findall(line):
                problems.extend(
                    (lineno, msg)
                    for msg in check_link(target, path, base_dir, anchor_cache)
                )

    if fence_marker is not None:
        problems.append((fence_open_line, "unclosed code fence"))
    return problems


def check_link(target, path, base_dir, anchor_cache):
    if EXTERNAL_RE.match(target):
        return  # external scheme: recognized, not fetched
    if target.startswith("<") and target.endswith(">"):
        target = target[1:-1]
    file_part, _, fragment = target.partition("#")
    if file_part:
        resolved = os.path.abspath(os.path.join(base_dir, file_part))
        if not os.path.exists(resolved):
            yield f"broken link: {file_part}"
            return
    else:
        resolved = os.path.abspath(path)
    if fragment:
        if not resolved.endswith(".md"):
            return  # anchors into non-markdown files: out of scope
        if resolved not in anchor_cache:
            with open(resolved, encoding="utf-8") as f:
                anchor_cache[resolved] = collect_anchors(f.read().splitlines())
        if fragment.lower() not in anchor_cache[resolved]:
            yield f"missing anchor: #{fragment} in {os.path.basename(resolved)}"


def tracked_markdown_files():
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            capture_output=True, text=True, check=True,
        ).stdout
        files = sorted(
            f for f in set(out.split())
            if os.path.basename(f) not in EXCLUDE
        )
        if files:
            return files
    except (OSError, subprocess.CalledProcessError):
        pass
    found = []
    for root, dirs, names in os.walk("."):
        dirs[:] = [d for d in dirs if not d.startswith(".") and d != "build"]
        found.extend(
            os.path.join(root, n)
            for n in names
            if n.endswith(".md") and n not in EXCLUDE
        )
    return sorted(found)


def main(argv):
    files = argv[1:] or tracked_markdown_files()
    if not files:
        print("check_markdown: no markdown files found", file=sys.stderr)
        return 1
    anchor_cache = {}
    failures = 0
    for path in files:
        for lineno, msg in check_file(path, anchor_cache):
            print(f"{path}:{lineno}: {msg}", file=sys.stderr)
            failures += 1
    print(
        f"check_markdown: {len(files)} file(s), "
        f"{failures} problem(s)", file=sys.stderr
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
