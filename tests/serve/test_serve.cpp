// The qlec_serve stack end to end, in process: HTTP framing, the
// JobService REST surface (validation errors, run lifecycle, manifests,
// cancellation), and the second-submission cache guarantee — all over a
// real loopback socket on an ephemeral port.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "config/runner.hpp"
#include "config/version.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"

namespace qlec::serve {
namespace {

const char* kTinyScenario = R"({
  "name": "serve-tiny",
  "scenario": {"n": 16},
  "sim": {"rounds": 2, "slots_per_round": 4, "trace": {"record": true}},
  "seeds": 1,
  "sweep": {"protocol.name": ["leach", "direct"]}
})";

/// One server + service per fixture, torn down after each test.
class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : service_(ServiceOptions{/*workers=*/2, /*cache_dir=*/"",
                                /*telemetry_dir=*/"", /*max_cells=*/100}),
        server_("127.0.0.1", 0,
                [this](const HttpRequest& req, HttpResponse& resp) {
                  service_.handle(req, resp);
                }) {}

  ClientResponse roundtrip(const std::string& method,
                           const std::string& target,
                           const std::string& body = "") {
    std::string error;
    auto resp =
        http_request("127.0.0.1", server_.port(), method, target, body,
                     &error);
    EXPECT_TRUE(resp.has_value()) << error;
    return resp.value_or(ClientResponse{});
  }

  JobService service_;
  HttpServer server_;
};

TEST(HttpParsing, RequestLineAndHeaders) {
  HttpRequest req;
  std::string error;
  ASSERT_TRUE(parse_http_request(
      "POST /v1/runs?wait=1&priority=3 HTTP/1.1\r\n"
      "Host: x\r\nContent-Type:  application/json \r\n\r\nbody",
      req, &error))
      << error;
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/v1/runs");
  EXPECT_EQ(req.query.at("wait"), "1");
  EXPECT_EQ(req.query.at("priority"), "3");
  EXPECT_EQ(req.headers.at("content-type"), "application/json");
  EXPECT_EQ(req.body, "body");
}

TEST(HttpParsing, RejectsMalformedRequests) {
  HttpRequest req;
  EXPECT_FALSE(parse_http_request("GET /\r\n\r\n", req, nullptr));
  EXPECT_FALSE(parse_http_request("GET / SPDY/3\r\n\r\n", req, nullptr));
  EXPECT_FALSE(parse_http_request("GET noslash HTTP/1.1\r\n\r\n", req,
                                  nullptr));
  EXPECT_FALSE(parse_http_request(
      "GET / HTTP/1.1\r\nbroken header line\r\n\r\n", req, nullptr));
}

TEST(HttpParsing, UrlSplitting) {
  std::string host, path;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_http_url("http://127.0.0.1:8423/v1/runs", host, port,
                             path));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8423);
  EXPECT_EQ(path, "/v1/runs");
  ASSERT_TRUE(parse_http_url("http://10.0.0.1", host, port, path));
  EXPECT_EQ(port, 80);
  EXPECT_EQ(path, "/");
  EXPECT_FALSE(parse_http_url("https://127.0.0.1/", host, port, path));
  EXPECT_FALSE(parse_http_url("http://:99/", host, port, path));
  EXPECT_FALSE(parse_http_url("http://1.2.3.4:99999/", host, port, path));
}

TEST_F(ServeTest, HealthzReportsVersions) {
  const ClientResponse r = roundtrip("GET", "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(r.body.find(config::kCodeVersion), std::string::npos);
}

TEST_F(ServeTest, UnknownEndpointsAndMethods) {
  EXPECT_EQ(roundtrip("GET", "/nope").status, 404);
  EXPECT_EQ(roundtrip("GET", "/v1/runs/r999").status, 404);
  EXPECT_EQ(roundtrip("DELETE", "/healthz").status, 405);
  EXPECT_EQ(roundtrip("GET", "/v1/runs").status, 405);
}

TEST_F(ServeTest, InvalidScenarioIsA400WithPath) {
  const ClientResponse r = roundtrip(
      "POST", "/v1/runs", R"({"scenario": {"n": -4}})");
  EXPECT_EQ(r.status, 400);
  // The strict schema's dotted path must surface to the client.
  EXPECT_NE(r.body.find("scenario.n"), std::string::npos);
  const ClientResponse bad_json = roundtrip("POST", "/v1/runs", "{nope");
  EXPECT_EQ(bad_json.status, 400);
}

TEST_F(ServeTest, OversizedGridIsRejected) {
  const ClientResponse r = roundtrip("POST", "/v1/runs", R"({
    "scenario": {"n": 16},
    "sweep": {"scenario.n": [16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
                             26, 27, 28, 29, 30, 31, 32, 33, 34, 35],
              "sim.rounds": [1, 2, 3, 4, 5, 6],
              "base_seed": [1, 2]}
  })");
  EXPECT_EQ(r.status, 400);  // 20*6*2 = 240 cells > max_cells=100
  EXPECT_NE(r.body.find("240 cells"), std::string::npos);
}

TEST_F(ServeTest, WaitedRunReturnsAStrictManifest) {
  const ClientResponse r =
      roundtrip("POST", "/v1/runs?wait=1", kTinyScenario);
  ASSERT_EQ(r.status, 200) << r.body;
  const config::RunManifest m = config::manifest_from_json(r.body);
  EXPECT_EQ(m.name, "serve-tiny");
  ASSERT_EQ(m.cells.size(), 2u);
  EXPECT_EQ(m.cells[0].config.protocol.name, "leach");
  EXPECT_EQ(m.cells[0].digests.size(), 1u);
}

TEST_F(ServeTest, RunLifecycleAndSecondSubmissionIsAllCache) {
  const ClientResponse first =
      roundtrip("POST", "/v1/runs", kTinyScenario);
  ASSERT_EQ(first.status, 202) << first.body;
  ASSERT_NE(first.body.find("\"run_id\":\"r1\""), std::string::npos)
      << first.body;

  // wait=1 on the identical scenario: coalesces or hits cache, never
  // re-simulates.
  const ClientResponse second =
      roundtrip("POST", "/v1/runs?wait=1", kTinyScenario);
  ASSERT_EQ(second.status, 200);
  const config::RunManifest m2 = config::manifest_from_json(second.body);

  // First run is now complete too (same jobs); its manifest must be
  // byte-identical — same cells, same digests, straight from the store.
  const ClientResponse m1 = roundtrip("GET", "/v1/runs/r1/manifest");
  ASSERT_EQ(m1.status, 200);
  EXPECT_EQ(m1.body, second.body);

  const ClientResponse status = roundtrip("GET", "/v1/runs/r1");
  ASSERT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"state\":\"done\""), std::string::npos);

  // Exactly 2 simulations total across both submissions.
  const ClientResponse stats = roundtrip("GET", "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"simulated\":2"), std::string::npos)
      << stats.body;
  (void)m2;
}

TEST_F(ServeTest, CancelledRunHasNoManifest) {
  // Saturate both workers AND leave a high-priority backlog, so the victim
  // (priority 0) cannot start until at least four heavier cells finish —
  // the cancel request arrives long before that.
  const char* kSlow = R"({
    "scenario": {"n": 120},
    "sim": {"rounds": 40, "slots_per_round": 10},
    "seeds": 2,
    "protocol": {"name": "qlec"},
    "sweep": {"base_seed": [1, 2, 3, 4]}
  })";
  const ClientResponse slow = roundtrip("POST", "/v1/runs?priority=9", kSlow);
  ASSERT_EQ(slow.status, 202);
  const ClientResponse queued = roundtrip("POST", "/v1/runs", R"({
    "scenario": {"n": 16},
    "sim": {"rounds": 2, "slots_per_round": 4},
    "seeds": 1,
    "sweep": {"protocol.name": ["heed"]}
  })");
  ASSERT_EQ(queued.status, 202);

  const ClientResponse cancel = roundtrip("POST", "/v1/runs/r2/cancel");
  ASSERT_EQ(cancel.status, 200);
  EXPECT_NE(cancel.body.find("\"cancelled\":1"), std::string::npos)
      << cancel.body;
  const ClientResponse manifest = roundtrip("GET", "/v1/runs/r2/manifest");
  EXPECT_EQ(manifest.status, 409);
  const ClientResponse status = roundtrip("GET", "/v1/runs/r2");
  EXPECT_NE(status.body.find("\"state\":\"cancelled\""), std::string::npos)
      << status.body;
}

}  // namespace
}  // namespace qlec::serve
