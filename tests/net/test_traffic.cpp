#include "net/traffic.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(PoissonTraffic, DisabledWhenMeanNonPositive) {
  Rng rng(1);
  PoissonTraffic t(10, 0.0, rng);
  for (std::int64_t s = 0; s < 100; ++s)
    EXPECT_TRUE(t.arrivals_in_slot(s, rng).empty());
}

TEST(PoissonTraffic, RateMatchesMeanInterarrival) {
  Rng rng(2);
  const std::size_t nodes = 50;
  const double lambda = 4.0;  // one packet per node every 4 slots
  PoissonTraffic t(nodes, lambda, rng);
  std::size_t total = 0;
  const std::int64_t slots = 2000;
  for (std::int64_t s = 0; s < slots; ++s)
    total += t.arrivals_in_slot(s, rng).size();
  const double expected =
      static_cast<double>(nodes) * static_cast<double>(slots) / lambda;
  EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.05);
}

TEST(PoissonTraffic, SmallerLambdaMeansMoreTraffic) {
  Rng rng1(3), rng2(3);
  PoissonTraffic fast(20, 2.0, rng1);
  PoissonTraffic slow(20, 16.0, rng2);
  std::size_t fast_total = 0, slow_total = 0;
  for (std::int64_t s = 0; s < 500; ++s) {
    fast_total += fast.arrivals_in_slot(s, rng1).size();
    slow_total += slow.arrivals_in_slot(s, rng2).size();
  }
  EXPECT_GT(fast_total, 4 * slow_total);
}

TEST(PoissonTraffic, ArrivalIndicesInRange) {
  Rng rng(4);
  PoissonTraffic t(7, 1.0, rng);
  for (std::int64_t s = 0; s < 200; ++s)
    for (const std::size_t i : t.arrivals_in_slot(s, rng)) EXPECT_LT(i, 7u);
}

TEST(PoissonTraffic, NoArrivalLostBetweenSlots) {
  // Querying every slot in order must enumerate each arrival exactly once:
  // total count is reproducible for a fixed seed regardless of chunking.
  Rng rng_a(5), rng_b(5);
  PoissonTraffic a(5, 3.0, rng_a);
  PoissonTraffic b(5, 3.0, rng_b);
  std::size_t total_a = 0;
  for (std::int64_t s = 0; s < 300; ++s)
    total_a += a.arrivals_in_slot(s, rng_a).size();
  std::size_t total_b = 0;
  for (std::int64_t s = 0; s < 300; ++s)
    total_b += b.arrivals_in_slot(s, rng_b).size();
  EXPECT_EQ(total_a, total_b);
  EXPECT_GT(total_a, 0u);
}

TEST(PoissonTraffic, BurstsPossibleWithinOneSlot) {
  Rng rng(6);
  PoissonTraffic t(1, 0.2, rng);  // ~5 arrivals per slot on one node
  bool saw_burst = false;
  for (std::int64_t s = 0; s < 100 && !saw_burst; ++s)
    saw_burst = t.arrivals_in_slot(s, rng).size() >= 2;
  EXPECT_TRUE(saw_burst);
}

TEST(PoissonTraffic, ZeroNodes) {
  Rng rng(7);
  PoissonTraffic t(0, 1.0, rng);
  EXPECT_TRUE(t.arrivals_in_slot(0, rng).empty());
}

}  // namespace
}  // namespace qlec
