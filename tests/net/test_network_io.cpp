#include "net/network_io.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

Network sample_network() {
  Rng rng(5);
  const Aabb box = Aabb::cube(200.0);
  Network net(sample_uniform(25, box, rng), 5.0, {100, 100, 200}, box);
  net.node(3).battery.consume(1.25);  // mid-run state
  net.node(7).battery.consume(5.0);   // dead node
  return net;
}

TEST(NetworkIo, RoundTripsEverything) {
  const Network original = sample_network();
  const auto restored = network_from_csv(network_to_csv(original));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->size(), original.size());
  EXPECT_EQ(restored->bs(), original.bs());
  EXPECT_EQ(restored->domain().lo, original.domain().lo);
  EXPECT_EQ(restored->domain().hi, original.domain().hi);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto id = static_cast<int>(i);
    EXPECT_EQ(restored->node(id).pos, original.node(id).pos);
    EXPECT_DOUBLE_EQ(restored->node(id).battery.initial(),
                     original.node(id).battery.initial());
    EXPECT_DOUBLE_EQ(restored->node(id).battery.residual(),
                     original.node(id).battery.residual());
  }
}

TEST(NetworkIo, DeadNodeStaysDead) {
  const auto restored = network_from_csv(network_to_csv(sample_network()));
  ASSERT_TRUE(restored.has_value());
  EXPECT_FALSE(restored->node(7).battery.alive(0.0));
}

TEST(NetworkIo, EmptyNetworkRoundTrips) {
  const Network net({}, std::vector<double>{}, {1, 2, 3}, Aabb::cube(10));
  const auto restored = network_from_csv(network_to_csv(net));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_EQ(restored->bs(), (Vec3{1, 2, 3}));
}

TEST(NetworkIo, RejectsMalformedInput) {
  EXPECT_FALSE(network_from_csv("").has_value());
  EXPECT_FALSE(network_from_csv("x,y\n1,2\n").has_value());
  EXPECT_FALSE(network_from_csv(
                   "kind,x,y,z,initial_j,residual_j\n"
                   "mystery,1,2,3,4,5\n")
                   .has_value());
  // Missing bs row.
  EXPECT_FALSE(network_from_csv(
                   "kind,x,y,z,initial_j,residual_j\n"
                   "domain,0,0,0,0,0\ndomain,9,9,9,0,0\n"
                   "node,1,1,1,5,5\n")
                   .has_value());
  // Unparseable numeric.
  EXPECT_FALSE(network_from_csv(
                   "kind,x,y,z,initial_j,residual_j\n"
                   "domain,0,0,0,0,0\ndomain,9,9,9,0,0\n"
                   "bs,4,4,4,0,0\nnode,abc,1,1,5,5\n")
                   .has_value());
}

TEST(NetworkIo, DomainExpandsToContainStrayNodes) {
  // A node outside the recorded domain still ends up inside the restored
  // box (expand semantics), so downstream k_opt math stays sane.
  const std::string csv =
      "kind,x,y,z,initial_j,residual_j\n"
      "domain,0,0,0,0,0\ndomain,10,10,10,0,0\n"
      "bs,5,5,10,0,0\n"
      "node,50,5,5,5,5\n";
  const auto restored = network_from_csv(csv);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->domain().contains({50, 5, 5}));
}

}  // namespace
}  // namespace qlec
