#include "net/link.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

TEST(LinkModel, PerfectAtZeroDistance) {
  const LinkModel m;
  EXPECT_DOUBLE_EQ(m.success_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.success_probability(-1.0), 1.0);
}

TEST(LinkModel, MonotoneDecreasingUntilFloor) {
  const LinkModel m;
  double prev = 1.1;
  for (double d = 0.0; d <= 2000.0; d += 50.0) {
    const double p = m.success_probability(d);
    EXPECT_LE(p, prev + 1e-15);
    EXPECT_GE(p, m.p_floor);
    prev = p;
  }
}

TEST(LinkModel, GaussianShape) {
  const LinkModel m{.d_ref = 100.0, .p_floor = 0.0};
  EXPECT_NEAR(m.success_probability(100.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(m.success_probability(200.0), std::exp(-4.0), 1e-12);
}

TEST(LinkModel, FloorApplies) {
  const LinkModel m{.d_ref = 10.0, .p_floor = 0.05};
  EXPECT_DOUBLE_EQ(m.success_probability(1000.0), 0.05);
}

TEST(LinkModel, BsUplinkMoreReliable) {
  const LinkModel m;
  for (double d = 10.0; d < 500.0; d += 37.0) {
    EXPECT_GE(m.bs_success_probability(d), m.success_probability(d));
  }
}

TEST(LinkModel, BsReliabilityFactorExtremes) {
  LinkModel m;
  m.bs_reliability_factor = 0.0;  // perfect BS uplink
  EXPECT_DOUBLE_EQ(m.bs_success_probability(1e6), 1.0);
  m.bs_reliability_factor = 1.0;  // same as normal link
  EXPECT_DOUBLE_EQ(m.bs_success_probability(300.0),
                   m.success_probability(300.0));
}

TEST(LinkModel, AttemptFrequencyMatchesProbability) {
  const LinkModel m{.d_ref = 100.0, .p_floor = 0.0};
  Rng rng(3);
  const double d = 120.0;
  const double p = m.success_probability(d);
  int hits = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) hits += m.attempt(d, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, p, 0.01);
}

TEST(LinkEstimator, PriorBeforeObservations) {
  const LinkEstimator est(16, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(est.estimate(0, 1), 1.0);  // optimistic prior 1/1
  EXPECT_EQ(est.observations(0, 1), 0u);
}

TEST(LinkEstimator, TracksSuccessRatio) {
  LinkEstimator est(32, 0.0, 1e-9);
  for (int i = 0; i < 8; ++i) est.record(0, 1, true);
  for (int i = 0; i < 8; ++i) est.record(0, 1, false);
  EXPECT_NEAR(est.estimate(0, 1), 0.5, 1e-6);
  EXPECT_EQ(est.observations(0, 1), 16u);
}

TEST(LinkEstimator, WindowEvictsOldOutcomes) {
  LinkEstimator est(4, 0.0, 1e-9);
  for (int i = 0; i < 4; ++i) est.record(0, 1, false);
  EXPECT_NEAR(est.estimate(0, 1), 0.0, 1e-6);
  for (int i = 0; i < 4; ++i) est.record(0, 1, true);
  // All failures evicted.
  EXPECT_NEAR(est.estimate(0, 1), 1.0, 1e-6);
  EXPECT_EQ(est.observations(0, 1), 4u);
}

TEST(LinkEstimator, LinksAreIndependent) {
  LinkEstimator est(8, 0.0, 1e-9);
  est.record(0, 1, true);
  est.record(0, 2, false);
  est.record(1, 0, false);
  EXPECT_NEAR(est.estimate(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(est.estimate(0, 2), 0.0, 1e-6);
  EXPECT_NEAR(est.estimate(1, 0), 0.0, 1e-6);
}

TEST(LinkEstimator, DirectionMatters) {
  LinkEstimator est(8, 0.0, 1e-9);
  est.record(3, 5, true);
  EXPECT_EQ(est.observations(5, 3), 0u);
}

TEST(LinkEstimator, BaseStationSentinelKeyWorks) {
  LinkEstimator est(8, 0.0, 1e-9);
  est.record(7, -1, true);  // kBaseStationId
  est.record(7, -1, true);
  EXPECT_NEAR(est.estimate(7, -1), 1.0, 1e-6);
  EXPECT_EQ(est.observations(7, -1), 2u);
}

TEST(LinkEstimator, ClearForgets) {
  LinkEstimator est(8, 1.0, 2.0);
  est.record(0, 1, false);
  est.clear();
  EXPECT_DOUBLE_EQ(est.estimate(0, 1), 0.5);  // back to prior 1/2
}

TEST(LinkEstimator, PriorSmoothsEarlyEstimates) {
  LinkEstimator est(32, 1.0, 2.0);  // Beta(1,1)-ish prior at 0.5
  est.record(0, 1, true);
  // (1 + 1) / (1 + 2) = 2/3, not 1.0: one success shouldn't saturate.
  EXPECT_NEAR(est.estimate(0, 1), 2.0 / 3.0, 1e-9);
}

TEST(LinkEstimator, WindowClampedToSupportedRange) {
  LinkEstimator est(1000, 0.0, 1e-9);  // clamped to 64
  for (int i = 0; i < 200; ++i) est.record(0, 1, i < 100);
  // Only the most recent 64 (all failures) should remain.
  EXPECT_NEAR(est.estimate(0, 1), 0.0, 1e-6);
  EXPECT_LE(est.observations(0, 1), 64u);
}

}  // namespace
}  // namespace qlec
