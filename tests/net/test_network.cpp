#include "net/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qlec {
namespace {

Network make_test_network() {
  const std::vector<Vec3> pts{{0, 0, 0}, {10, 0, 0}, {0, 10, 0}};
  const std::vector<double> energy{5.0, 3.0, 1.0};
  return Network(pts, energy, /*bs=*/{0, 0, 10}, Aabb::cube(10.0));
}

TEST(Network, ConstructionBasics) {
  const Network net = make_test_network();
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.node(0).id, 0);
  EXPECT_EQ(net.node(2).pos, (Vec3{0, 10, 0}));
  EXPECT_DOUBLE_EQ(net.node(1).battery.initial(), 3.0);
  EXPECT_EQ(net.bs(), (Vec3{0, 0, 10}));
}

TEST(Network, ScalarEnergyOverload) {
  const Network net({{1, 1, 1}, {2, 2, 2}}, 7.5, {0, 0, 0},
                    Aabb::cube(5.0));
  EXPECT_DOUBLE_EQ(net.node(0).battery.initial(), 7.5);
  EXPECT_DOUBLE_EQ(net.node(1).battery.initial(), 7.5);
}

TEST(Network, SizeMismatchThrows) {
  EXPECT_THROW(Network({{0, 0, 0}}, std::vector<double>{1.0, 2.0},
                       {0, 0, 0}, Aabb::cube(1.0)),
               std::invalid_argument);
}

TEST(Network, DistanceHelpers) {
  const Network net = make_test_network();
  EXPECT_DOUBLE_EQ(net.dist(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(net.dist(0, kBaseStationId), 10.0);
  EXPECT_DOUBLE_EQ(net.dist_to_bs(0), 10.0);
}

TEST(Network, AliveFiltering) {
  Network net = make_test_network();
  EXPECT_EQ(net.alive_count(0.0), 3u);
  EXPECT_EQ(net.alive_ids(2.0), (std::vector<int>{0, 1}));
  net.node(0).battery.consume(5.0);
  EXPECT_EQ(net.alive_count(0.0), 2u);
}

TEST(Network, HeadManagement) {
  Network net = make_test_network();
  EXPECT_TRUE(net.head_ids().empty());
  net.node(1).is_head = true;
  EXPECT_EQ(net.head_ids(), (std::vector<int>{1}));
  net.reset_heads();
  EXPECT_TRUE(net.head_ids().empty());
}

TEST(Network, EnergyTotals) {
  Network net = make_test_network();
  EXPECT_DOUBLE_EQ(net.total_initial_energy(), 9.0);
  EXPECT_DOUBLE_EQ(net.total_residual_energy(), 9.0);
  net.node(0).battery.consume(2.0);
  EXPECT_DOUBLE_EQ(net.total_residual_energy(), 7.0);
  EXPECT_DOUBLE_EQ(net.total_initial_energy(), 9.0);
}

TEST(Network, MeanResidualAlive) {
  Network net = make_test_network();
  // Above death line 2.0: nodes 0 (5 J) and 1 (3 J).
  EXPECT_DOUBLE_EQ(net.mean_residual_alive(2.0), 4.0);
  // Nobody above 10 J.
  EXPECT_DOUBLE_EQ(net.mean_residual_alive(10.0), 0.0);
}

TEST(Network, MeanDistToBs) {
  const Network net({{0, 0, 0}, {0, 0, 20}}, 1.0, {0, 0, 10},
                    Aabb::cube(20.0));
  EXPECT_DOUBLE_EQ(net.mean_dist_to_bs(), 10.0);
}

TEST(Network, PositionsSnapshot) {
  const Network net = make_test_network();
  const auto pos = net.positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[1], (Vec3{10, 0, 0}));
}

TEST(Network, EmptyNetwork) {
  const Network net;
  EXPECT_EQ(net.size(), 0u);
  EXPECT_EQ(net.mean_dist_to_bs(), 0.0);
  EXPECT_EQ(net.total_initial_energy(), 0.0);
  EXPECT_TRUE(net.head_ids().empty());
}

TEST(SensorNode, NeverHeadSentinel) {
  const SensorNode n(3, {1, 2, 3}, 5.0);
  EXPECT_EQ(n.last_head_round, kNeverHead);
  EXPECT_FALSE(n.is_head);
}

}  // namespace
}  // namespace qlec
