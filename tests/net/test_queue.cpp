#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

Packet make_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.bits = 4000.0;
  return p;
}

TEST(PacketQueue, StartsEmpty) {
  PacketQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(PacketQueue, FifoOrder) {
  PacketQueue q(10);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(q.push(make_packet(i)));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto p = q.pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->id, i);
  }
}

TEST(PacketQueue, DropsWhenFull) {
  PacketQueue q(2);
  EXPECT_TRUE(q.push(make_packet(0)));
  EXPECT_TRUE(q.push(make_packet(1)));
  EXPECT_FALSE(q.push(make_packet(2)));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(PacketQueue, PopFreesCapacity) {
  PacketQueue q(1);
  EXPECT_TRUE(q.push(make_packet(0)));
  EXPECT_FALSE(q.push(make_packet(1)));
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.push(make_packet(2)));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(PacketQueue, ZeroCapacityMeansUnbounded) {
  PacketQueue q(0);
  for (std::uint64_t i = 0; i < 1000; ++i)
    EXPECT_TRUE(q.push(make_packet(i)));
  EXPECT_EQ(q.size(), 1000u);
  EXPECT_EQ(q.drops(), 0u);
}

TEST(PacketQueue, ClearResetsEverything) {
  PacketQueue q(1);
  q.push(make_packet(0));
  q.push(make_packet(1));  // drop
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_TRUE(q.push(make_packet(2)));
}

TEST(PacketQueue, PreservesPacketContents) {
  PacketQueue q(4);
  Packet p = make_packet(7);
  p.src = 13;
  p.gen_slot = 99;
  p.hops = 3;
  q.push(p);
  const auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->src, 13);
  EXPECT_EQ(out->gen_slot, 99);
  EXPECT_EQ(out->hops, 3);
}

TEST(Packet, LatencyAndDeliveredFlags) {
  Packet p = make_packet(1);
  p.gen_slot = 10;
  EXPECT_FALSE(p.delivered());
  p.deliver_slot = 25;
  EXPECT_TRUE(p.delivered());
  EXPECT_EQ(p.latency(), 15);
}

}  // namespace
}  // namespace qlec
