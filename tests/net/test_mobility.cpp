#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

Network uniform_net(std::size_t n, Rng& rng) {
  const Aabb box = Aabb::cube(100.0);
  return Network(sample_uniform(n, box, rng), 5.0, box.center(), box);
}

TEST(Mobility, NoneKeepsPositionsFrozen) {
  Rng rng(1);
  Network net = uniform_net(30, rng);
  const auto before = net.positions();
  MobilityModel model({.kind = MobilityKind::kNone}, net.size());
  for (int r = 0; r < 10; ++r) model.step(net, 0.0, rng);
  EXPECT_EQ(net.positions(), before);
}

TEST(Mobility, RandomWalkMovesEveryAliveNode) {
  Rng rng(2);
  Network net = uniform_net(30, rng);
  const auto before = net.positions();
  MobilityModel model({.kind = MobilityKind::kRandomWalk, .speed = 3.0},
                      net.size());
  model.step(net, 0.0, rng);
  int moved = 0;
  for (std::size_t i = 0; i < net.size(); ++i)
    if (!(net.node(static_cast<int>(i)).pos == before[i])) ++moved;
  EXPECT_EQ(moved, 30);
}

TEST(Mobility, RandomWalkStaysInBox) {
  Rng rng(3);
  Network net = uniform_net(40, rng);
  MobilityModel model({.kind = MobilityKind::kRandomWalk, .speed = 30.0},
                      net.size());
  for (int r = 0; r < 50; ++r) {
    model.step(net, 0.0, rng);
    for (const SensorNode& n : net.nodes())
      EXPECT_TRUE(net.domain().contains(n.pos));
  }
}

TEST(Mobility, RandomWalkStepScaleMatchesSpeed) {
  Rng rng(4);
  Network net = uniform_net(200, rng);
  const auto before = net.positions();
  const double speed = 2.0;
  MobilityModel model({.kind = MobilityKind::kRandomWalk, .speed = speed},
                      net.size());
  model.step(net, 0.0, rng);
  // Mean squared displacement of an isotropic Gaussian step = 3 sigma^2.
  double msd = 0.0;
  for (std::size_t i = 0; i < net.size(); ++i)
    msd += distance2(net.node(static_cast<int>(i)).pos, before[i]);
  msd /= static_cast<double>(net.size());
  EXPECT_NEAR(msd, 3.0 * speed * speed, 3.0);
}

TEST(Mobility, WaypointMovesAtFixedSpeed) {
  Rng rng(5);
  Network net = uniform_net(50, rng);
  const auto before = net.positions();
  const double speed = 4.0;
  MobilityModel model(
      {.kind = MobilityKind::kRandomWaypoint, .speed = speed}, net.size());
  model.step(net, 0.0, rng);
  for (std::size_t i = 0; i < net.size(); ++i) {
    const double d = distance(net.node(static_cast<int>(i)).pos, before[i]);
    EXPECT_LE(d, speed + 1e-9);  // at most one speed-step (or arrival snap)
  }
}

TEST(Mobility, WaypointEventuallyReachesAndRedraws) {
  Rng rng(6);
  Network net = uniform_net(5, rng);
  MobilityModel model(
      {.kind = MobilityKind::kRandomWaypoint, .speed = 50.0}, net.size());
  // With a huge speed each node reaches its waypoint in a few rounds and
  // keeps wandering; track that motion never stalls permanently.
  Vec3 last = net.node(0).pos;
  int stalls = 0;
  for (int r = 0; r < 40; ++r) {
    model.step(net, 0.0, rng);
    if (distance(net.node(0).pos, last) < 1e-12) ++stalls;
    last = net.node(0).pos;
  }
  EXPECT_LT(stalls, 5);
}

TEST(Mobility, DeadNodesDoNotMove) {
  Rng rng(7);
  Network net = uniform_net(10, rng);
  net.node(3).battery.consume(5.0);
  const Vec3 frozen = net.node(3).pos;
  MobilityModel model({.kind = MobilityKind::kRandomWalk, .speed = 5.0},
                      net.size());
  for (int r = 0; r < 10; ++r) model.step(net, 0.0, rng);
  EXPECT_EQ(net.node(3).pos, frozen);
}

}  // namespace
}  // namespace qlec
