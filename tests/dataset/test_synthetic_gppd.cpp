#include "dataset/synthetic_gppd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/stats.hpp"

namespace qlec {
namespace {

TEST(SyntheticGppd, DefaultMatchesPaperCount) {
  const auto plants = generate_synthetic_gppd();
  EXPECT_EQ(plants.size(), 2896u);  // §5.3: 2896 nodes in China
}

TEST(SyntheticGppd, DeterministicForSameSeed) {
  const auto a = generate_synthetic_gppd();
  const auto b = generate_synthetic_gppd();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].latitude, b[i].latitude);
    EXPECT_DOUBLE_EQ(a[i].capacity_mw, b[i].capacity_mw);
  }
}

TEST(SyntheticGppd, DifferentSeedsDiffer) {
  SyntheticGppdConfig cfg;
  cfg.seed = 1;
  const auto a = generate_synthetic_gppd(cfg);
  cfg.seed = 2;
  const auto b = generate_synthetic_gppd(cfg);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); i += 10)
    same += a[i].latitude == b[i].latitude ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(SyntheticGppd, CoordinatesWithinChinaBounds) {
  for (const PowerPlant& p : generate_synthetic_gppd()) {
    EXPECT_GE(p.latitude, 18.0);
    EXPECT_LE(p.latitude, 53.0);
    EXPECT_GE(p.longitude, 74.0);
    EXPECT_LE(p.longitude, 134.0);
  }
}

TEST(SyntheticGppd, HeightsInConfiguredRange) {
  SyntheticGppdConfig cfg;
  cfg.height_min = 100.0;
  cfg.height_max = 500.0;
  for (const PowerPlant& p : generate_synthetic_gppd(cfg)) {
    EXPECT_GE(p.height_m, 100.0);
    EXPECT_LT(p.height_m, 500.0);
  }
}

TEST(SyntheticGppd, CapacitiesHeavyTailed) {
  const auto plants = generate_synthetic_gppd();
  std::vector<double> caps;
  caps.reserve(plants.size());
  for (const PowerPlant& p : plants) {
    EXPECT_GT(p.capacity_mw, 0.0);
    caps.push_back(p.capacity_mw);
  }
  // Log-normal: mean far above median.
  const double med = percentile(caps, 0.5);
  EXPECT_GT(mean_of(caps), 1.5 * med);
}

TEST(SyntheticGppd, SpatiallyClumpy) {
  // Plants concentrate near anchors: the fraction within 3 degrees of some
  // anchor should be large.
  const auto plants = generate_synthetic_gppd();
  const auto& anchors = china_city_anchors();
  int near = 0;
  for (const PowerPlant& p : plants) {
    for (const CityAnchor& a : anchors) {
      const double dlat = p.latitude - a.latitude;
      const double dlon = p.longitude - a.longitude;
      if (dlat * dlat + dlon * dlon < 9.0) {
        ++near;
        break;
      }
    }
  }
  EXPECT_GT(near, static_cast<int>(plants.size() * 0.7));
}

TEST(SyntheticGppd, RoundTripsThroughCsv) {
  SyntheticGppdConfig cfg;
  cfg.plants = 50;
  const auto plants = generate_synthetic_gppd(cfg);
  const auto again = parse_power_plants(format_power_plants(plants));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->size(), 50u);
}

TEST(SyntheticGppd, ConvertsToUsableNetwork) {
  SyntheticGppdConfig cfg;
  cfg.plants = 300;
  const auto plants = generate_synthetic_gppd(cfg);
  const Network net = dataset_to_network(plants);
  EXPECT_EQ(net.size(), 300u);
  EXPECT_GT(net.total_initial_energy(), 0.0);
  EXPECT_GT(net.mean_dist_to_bs(), 0.0);
}

TEST(ChinaCityAnchors, WellFormed) {
  const auto& anchors = china_city_anchors();
  EXPECT_GE(anchors.size(), 25u);
  for (const CityAnchor& a : anchors) {
    EXPECT_NE(a.name, nullptr);
    EXPECT_GT(a.weight, 0.0);
  }
}

}  // namespace
}  // namespace qlec
