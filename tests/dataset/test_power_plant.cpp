#include "dataset/power_plant.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

const char* kSampleCsv =
    "name,capacity_mw,latitude,longitude,height_m\n"
    "Plant A,100,30.5,114.2,120\n"
    "Plant B,2000,39.9,116.4,35\n"
    "\"Quoted, Plant\",5.5,23.1,113.3,0\n";

TEST(ParsePowerPlants, ParsesValidRows) {
  const auto plants = parse_power_plants(kSampleCsv);
  ASSERT_TRUE(plants.has_value());
  ASSERT_EQ(plants->size(), 3u);
  EXPECT_EQ((*plants)[0].name, "Plant A");
  EXPECT_DOUBLE_EQ((*plants)[0].capacity_mw, 100.0);
  EXPECT_DOUBLE_EQ((*plants)[1].latitude, 39.9);
  EXPECT_EQ((*plants)[2].name, "Quoted, Plant");
  EXPECT_DOUBLE_EQ((*plants)[2].height_m, 0.0);
}

TEST(ParsePowerPlants, HeightColumnOptional) {
  const auto plants = parse_power_plants(
      "name,capacity_mw,latitude,longitude\nX,10,30,110\n");
  ASSERT_TRUE(plants.has_value());
  ASSERT_EQ(plants->size(), 1u);
  EXPECT_DOUBLE_EQ((*plants)[0].height_m, 0.0);
}

TEST(ParsePowerPlants, ColumnOrderFlexible) {
  const auto plants = parse_power_plants(
      "longitude,latitude,name,capacity_mw\n110,30,X,10\n");
  ASSERT_TRUE(plants.has_value());
  ASSERT_EQ(plants->size(), 1u);
  EXPECT_DOUBLE_EQ((*plants)[0].longitude, 110.0);
  EXPECT_DOUBLE_EQ((*plants)[0].latitude, 30.0);
}

TEST(ParsePowerPlants, SkipsMalformedRows) {
  const auto plants = parse_power_plants(
      "name,capacity_mw,latitude,longitude\n"
      "good,10,30,110\n"
      "bad,notanumber,30,110\n"
      "alsogood,20,31,111\n");
  ASSERT_TRUE(plants.has_value());
  EXPECT_EQ(plants->size(), 2u);
}

TEST(ParsePowerPlants, MissingRequiredColumnFails) {
  EXPECT_FALSE(parse_power_plants("name,capacity_mw,latitude\nX,1,2\n")
                   .has_value());
  EXPECT_FALSE(parse_power_plants("").has_value());
}

TEST(FormatPowerPlants, RoundTrips) {
  const auto plants = parse_power_plants(kSampleCsv);
  ASSERT_TRUE(plants.has_value());
  const std::string csv = format_power_plants(*plants);
  const auto again = parse_power_plants(csv);
  ASSERT_TRUE(again.has_value());
  ASSERT_EQ(again->size(), plants->size());
  for (std::size_t i = 0; i < plants->size(); ++i) {
    EXPECT_EQ((*again)[i].name, (*plants)[i].name);
    EXPECT_NEAR((*again)[i].capacity_mw, (*plants)[i].capacity_mw, 1e-6);
    EXPECT_NEAR((*again)[i].latitude, (*plants)[i].latitude, 1e-6);
  }
}

TEST(DatasetToNetwork, BasicConversion) {
  const auto plants = parse_power_plants(kSampleCsv);
  ASSERT_TRUE(plants.has_value());
  const Network net = dataset_to_network(*plants);
  EXPECT_EQ(net.size(), 3u);
  // Highest-capacity plant gets the most initial energy.
  EXPECT_GT(net.node(1).battery.initial(), net.node(0).battery.initial());
  EXPECT_GT(net.node(0).battery.initial(), net.node(2).battery.initial());
}

TEST(DatasetToNetwork, EnergyRangeRespected) {
  const auto plants = parse_power_plants(kSampleCsv);
  DatasetNetworkConfig cfg;
  cfg.e_min = 1.0;
  cfg.e_max = 3.0;
  const Network net = dataset_to_network(*plants, cfg);
  for (const SensorNode& n : net.nodes()) {
    EXPECT_GE(n.battery.initial(), 1.0 - 1e-9);
    EXPECT_LE(n.battery.initial(), 3.0 + 1e-9);
  }
  // Extremes map to the endpoints.
  EXPECT_NEAR(net.node(1).battery.initial(), 3.0, 1e-9);
  EXPECT_NEAR(net.node(2).battery.initial(), 1.0, 1e-9);
}

TEST(DatasetToNetwork, HorizontalExtentNormalized) {
  const auto plants = parse_power_plants(kSampleCsv);
  DatasetNetworkConfig cfg;
  cfg.target_extent_m = 1000.0;
  const Network net = dataset_to_network(*plants, cfg);
  const Vec3 ext = net.domain().extent();
  EXPECT_NEAR(std::max(ext.x, ext.y), 1000.0, 1.0);
}

TEST(DatasetToNetwork, HeightsBecomeZ) {
  const auto plants = parse_power_plants(kSampleCsv);
  const Network net = dataset_to_network(*plants);
  EXPECT_DOUBLE_EQ(net.node(0).pos.z, 120.0);
  EXPECT_DOUBLE_EQ(net.node(1).pos.z, 35.0);
}

TEST(DatasetToNetwork, EmptyInput) {
  const Network net = dataset_to_network({});
  EXPECT_EQ(net.size(), 0u);
}

TEST(DatasetToNetwork, BsAtTopCenter) {
  const auto plants = parse_power_plants(kSampleCsv);
  const Network net = dataset_to_network(*plants);
  EXPECT_DOUBLE_EQ(net.bs().z, net.domain().hi.z);
}

}  // namespace
}  // namespace qlec
