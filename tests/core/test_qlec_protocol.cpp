#include "core/qlec.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace qlec {
namespace {

Network paper_network(Rng& rng) {
  ScenarioConfig cfg;  // N=100, M=200, 5 J, surface sink
  return make_uniform_network(cfg, rng);
}

QlecParams test_params() {
  QlecParams p;
  p.total_rounds = 20;
  return p;
}

TEST(QlecProtocol, ComputesKoptNearFive) {
  Rng rng(1);
  const Network net = paper_network(rng);
  const QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  // §5.1: k_opt approximately 5 for the paper's setting.
  EXPECT_GE(proto.k_opt(), 4u);
  EXPECT_LE(proto.k_opt(), 7u);
  EXPECT_GT(proto.coverage_radius(), 0.0);
}

TEST(QlecProtocol, ForceKOverridesTheorem1) {
  Rng rng(2);
  const Network net = paper_network(rng);
  QlecParams p = test_params();
  p.force_k = 12;
  const QlecProtocol proto(net, p, RadioModel{}, 0.0);
  EXPECT_EQ(proto.k_opt(), 12u);
}

TEST(QlecProtocol, RoundStartElectsHeadsAndChargesControl) {
  Rng rng(3);
  Network net = paper_network(rng);
  QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  EXPECT_FALSE(net.head_ids().empty());
  EXPECT_EQ(proto.current_heads(), net.head_ids());
  EXPECT_GT(ledger.by_use(EnergyUse::kControl), 0.0);
  EXPECT_LT(net.total_residual_energy(), net.total_initial_energy());
}

TEST(QlecProtocol, HeadCountTracksKopt) {
  Rng rng(4);
  Network net = paper_network(rng);
  QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EnergyLedger ledger;
  double total = 0.0;
  const int rounds = 15;
  for (int r = 0; r < rounds; ++r) {
    proto.on_round_start(net, r, rng, ledger);
    total += static_cast<double>(net.head_ids().size());
  }
  const double avg = total / rounds;
  EXPECT_GT(avg, 1.5);
  EXPECT_LT(avg, 3.0 * static_cast<double>(proto.k_opt()));
}

TEST(QlecProtocol, RouteReturnsHeadOrBs) {
  Rng rng(5);
  Network net = paper_network(rng);
  QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const auto heads = net.head_ids();
  for (int src = 0; src < 20; ++src) {
    if (net.node(src).is_head) continue;
    const int t = proto.route(net, src, 4000.0, rng);
    const bool valid =
        t == kBaseStationId ||
        std::find(heads.begin(), heads.end(), t) != heads.end();
    EXPECT_TRUE(valid) << "target " << t;
  }
}

TEST(QlecProtocol, LearningUpdatesAccumulate) {
  Rng rng(6);
  Network net = paper_network(rng);
  QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  // Round start performs one model-based V backup per elected head.
  EXPECT_EQ(proto.learning_updates(), net.head_ids().size());
  proto.route(net, 0, 4000.0, rng);
  EXPECT_GT(proto.learning_updates(), net.head_ids().size());
  const std::size_t after_route = proto.learning_updates();
  proto.on_uplink_result(net, net.head_ids().front(), true);
  EXPECT_GT(proto.learning_updates(), after_route);
}

TEST(QlecProtocol, TxFeedbackReachesEstimator) {
  Rng rng(7);
  Network net = paper_network(rng);
  QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const int head = net.head_ids().front();
  proto.on_tx_result(net, 0, head, false);
  proto.on_tx_result(net, 0, head, false);
  EXPECT_EQ(proto.router().estimator().observations(0, head), 2u);
  EXPECT_LT(proto.router().estimator().estimate(0, head), 1.0);
}

TEST(QlecProtocol, NameIsQlec) {
  Rng rng(8);
  const Network net = paper_network(rng);
  const QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EXPECT_EQ(proto.name(), "QLEC");
}

TEST(QlecProtocol, ElectionStatsExposed) {
  Rng rng(9);
  Network net = paper_network(rng);
  QlecProtocol proto(net, test_params(), RadioModel{}, 0.0);
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const ElectionStats& stats = proto.last_election();
  EXPECT_EQ(stats.alive, 100);
  EXPECT_EQ(stats.final_heads,
            static_cast<int>(net.head_ids().size()));
}

}  // namespace
}  // namespace qlec
