#include "core/qlec_routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

// Geometry: node 0 (member) between two heads; head 1 near, head 2 far.
Network routing_net() {
  const std::vector<Vec3> pts{
      {100, 100, 50},   // 0: member
      {110, 100, 50},   // 1: near head (d = 10)
      {180, 100, 50},   // 2: far head (d = 80)
      {100, 180, 50},   // 3: spare
  };
  return Network(pts, 5.0, /*bs=*/{100, 100, 200}, Aabb::cube(200.0));
}

QlecParams base_params() {
  QlecParams p;
  p.epsilon = 0.0;  // deterministic argmax for tests
  return p;
}

TEST(QlecRouter, InitialValuesAreZero) {
  const QlecRouter router(base_params(), RadioModel{}, 4);
  EXPECT_DOUBLE_EQ(router.v(0), 0.0);
  EXPECT_DOUBLE_EQ(router.v(kBaseStationId), 0.0);
}

TEST(QlecRouter, RewardSuccessStructure) {
  const Network net = routing_net();
  QlecParams p = base_params();
  const QlecRouter router(p, RadioModel{}, net.size());
  const double r_near = router.reward_success(net, 0, 1, 4000.0);
  const double r_far = router.reward_success(net, 0, 2, 4000.0);
  // Nearer head costs less energy => strictly better reward (same x terms).
  EXPECT_GT(r_near, r_far);
  // With full batteries, x terms are 1 each: -g + a1*2 - a2*y.
  const RadioModel radio;
  const double y_near = radio.amp_energy(4000.0, 10.0) /
                        radio.amp_energy(4000.0, radio.d0());
  EXPECT_NEAR(r_near, -p.g + p.alpha1 * 2.0 - p.alpha2 * y_near, 1e-12);
}

TEST(QlecRouter, DirectToBsCarriesPenalty) {
  const Network net = routing_net();
  QlecParams p = base_params();
  const QlecRouter router(p, RadioModel{}, net.size());
  const double r_bs = router.reward_success(net, 0, kBaseStationId, 4000.0);
  const double r_head = router.reward_success(net, 0, 1, 4000.0);
  EXPECT_LT(r_bs, r_head - p.l * 0.5);  // dominated by the -l penalty
}

TEST(QlecRouter, RewardFailureUsesBetaWeights) {
  const Network net = routing_net();
  QlecParams p = base_params();
  const QlecRouter router(p, RadioModel{}, net.size());
  const RadioModel radio;
  const double y = radio.amp_energy(4000.0, 10.0) /
                   radio.amp_energy(4000.0, radio.d0());
  EXPECT_NEAR(router.reward_failure(net, 0, 1, 4000.0),
              -p.g + p.beta1 * 1.0 - p.beta2 * y, 1e-12);
}

TEST(QlecRouter, ChoosesNearHeadInitially) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(1);
  EXPECT_EQ(router.choose_target(net, 0, 4000.0, rng), 1);
}

TEST(QlecRouter, NeverChoosesBsWhenHeadsExist) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(2);
  for (int i = 0; i < 20; ++i)
    EXPECT_NE(router.choose_target(net, 0, 4000.0, rng), kBaseStationId);
}

TEST(QlecRouter, BsIsOnlyOptionWithoutHeads) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({});
  Rng rng(3);
  EXPECT_EQ(router.choose_target(net, 0, 4000.0, rng), kBaseStationId);
}

TEST(QlecRouter, SelfExcludedFromActions) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({0, 2});  // src itself is a listed head
  Rng rng(4);
  const int target = router.choose_target(net, 0, 4000.0, rng);
  EXPECT_NE(target, 0);
}

TEST(QlecRouter, VUpdatedToMaxQ) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(5);
  router.choose_target(net, 0, 4000.0, rng);
  const double q1 = router.q_value(net, 0, 1, 4000.0);
  // After the update, V(0) equals max_a Q which recursively references
  // V(0) itself; verify it equals the best action's *current* Q.
  EXPECT_NEAR(router.v(0), q1, std::fabs(q1) * 0.5 + 1e-6);
  EXPECT_NE(router.v(0), 0.0);
}

TEST(QlecRouter, FailedAcksLowerLinkEstimateAndFlipChoice) {
  // Heads at 10 m and 40 m: close enough in transmission cost that link
  // quality decides, far enough that the choice starts at the near head.
  const std::vector<Vec3> pts{
      {100, 100, 50}, {110, 100, 50}, {140, 100, 50}};
  Network net(pts, 5.0, {100, 100, 200}, Aabb::cube(200.0));
  QlecParams p = base_params();
  QlecRouter router(p, RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(6);
  EXPECT_EQ(router.choose_target(net, 0, 4000.0, rng), 1);
  // Hammer the near link with failures and reinforce the far link. The
  // flip also needs V(b_0) to relax through a few Send-Data sweeps (the
  // self-transition compounds the expected retry cost).
  for (int i = 0; i < 64; ++i) router.record_outcome(0, 1, false);
  for (int i = 0; i < 8; ++i) router.record_outcome(0, 2, true);
  int chosen = -1;
  for (int sweep = 0; sweep < 20; ++sweep)
    chosen = router.choose_target(net, 0, 4000.0, rng);
  EXPECT_EQ(chosen, 2);
}

TEST(QlecRouter, QValueUsesEstimatedLinkProbability) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1});
  const double q_before = router.q_value(net, 0, 1, 4000.0);
  for (int i = 0; i < 32; ++i) router.record_outcome(0, 1, false);
  const double q_after = router.q_value(net, 0, 1, 4000.0);
  EXPECT_LT(q_after, q_before);
}

TEST(QlecRouter, HeadValueUpdateReflectsUplinkCost) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1, 2});
  // Head 1 is ~100 m from the BS; head 2 is ~sqrt(80^2+150^2) ~ 170 m.
  router.update_head_value(net, 1, 2000.0);
  router.update_head_value(net, 2, 2000.0);
  EXPECT_GT(router.v(1), router.v(2));
}

TEST(QlecRouter, HeadValuesInfluenceMemberChoice) {
  // Make the near head's V strongly negative; a sufficiently close far
  // head race shows the gamma*V(h) term at work.
  const std::vector<Vec3> pts{
      {100, 100, 50}, {110, 100, 50}, {112, 100, 50}};
  Network net(pts, 5.0, {100, 100, 200}, Aabb::cube(200.0));
  QlecParams p = base_params();
  QlecRouter router(p, RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(7);
  EXPECT_EQ(router.choose_target(net, 0, 4000.0, rng), 1);
  // Drive V(1) down via repeated failed uplinks.
  for (int i = 0; i < 64; ++i) {
    router.record_outcome(1, kBaseStationId, false);
    router.update_head_value(net, 1, 4000.0);
  }
  EXPECT_EQ(router.choose_target(net, 0, 4000.0, rng), 2);
}

TEST(QlecRouter, QEvaluationsCountKPlusOnePerSendData) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(8);
  const std::size_t before = router.q_evaluations();
  router.choose_target(net, 0, 4000.0, rng);
  // Algorithm 4 evaluates each head + the BS: k + 1 = 3.
  EXPECT_EQ(router.q_evaluations() - before, 3u);
}

TEST(QlecRouter, EpsilonExploresNonGreedyActions) {
  const Network net = routing_net();
  QlecParams p = base_params();
  p.epsilon = 1.0;  // always explore
  QlecRouter router(p, RadioModel{}, net.size());
  router.begin_round({1, 2});
  Rng rng(9);
  bool saw_other = false;
  for (int i = 0; i < 64 && !saw_other; ++i)
    saw_other = router.choose_target(net, 0, 4000.0, rng) != 1;
  EXPECT_TRUE(saw_other);
}

TEST(QlecRouter, RawJoulesModeMatchesPaperFormulas) {
  // With x_scale = y_scale = 1 the rewards use raw joules (paper-literal).
  const Network net = routing_net();
  QlecParams p = base_params();
  p.x_scale = 1.0;
  p.y_scale = 1.0;
  const QlecRouter router(p, RadioModel{}, net.size());
  const RadioModel radio;
  const double expect = -p.g + p.alpha1 * (5.0 + 5.0) -
                        p.alpha2 * radio.amp_energy(4000.0, 10.0);
  EXPECT_NEAR(router.reward_success(net, 0, 1, 4000.0), expect, 1e-12);
}

TEST(QlecRouter, MaxVDeltaResetsEachRound) {
  const Network net = routing_net();
  QlecRouter router(base_params(), RadioModel{}, net.size());
  router.begin_round({1});
  Rng rng(10);
  router.choose_target(net, 0, 4000.0, rng);
  EXPECT_GT(router.max_v_delta_this_round(), 0.0);
  router.begin_round({1});
  EXPECT_DOUBLE_EQ(router.max_v_delta_this_round(), 0.0);
}

}  // namespace
}  // namespace qlec
