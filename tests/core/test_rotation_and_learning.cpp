// Behavioural properties of the full QLEC protocol: head-rotation fairness
// across rounds (the energy-balancing mechanism behind Fig. 4) and the
// within-run learning effect of the Q-router under congestion.
#include <gtest/gtest.h>

#include <map>

#include "core/qlec.hpp"
#include "sim/experiment.hpp"

namespace qlec {
namespace {

TEST(Rotation, HeadDutyIsSpreadAcrossTheNetworkUnderDrain) {
  // The energy-proportional election only rotates when head duty actually
  // costs energy (Eq. 1 needs residuals to differentiate); charge each
  // stint a realistic head-round cost and check the duty spread.
  Rng rng(1);
  ScenarioConfig scenario;  // paper defaults
  Network net = make_uniform_network(scenario, rng);
  QlecParams params;
  params.total_rounds = 100000;  // keep Eq. 2/4 schedules loose
  QlecProtocol proto(net, params, RadioModel{}, 0.0);
  EnergyLedger ledger;
  std::map<int, int> duty;
  const int rounds = 120;
  for (int r = 0; r < rounds; ++r) {
    proto.on_round_start(net, r, rng, ledger);
    for (const int h : net.head_ids()) {
      ++duty[h];
      net.node(h).battery.consume(0.03);  // a head stint's drain
    }
  }
  // With k_opt ~ 5-7 heads per round over 120 rounds and 100 nodes, the
  // drain-driven rotation should give most of the network a stint...
  EXPECT_GT(duty.size(), 70u);
  // ...and nobody should hog the role.
  int max_duty = 0;
  for (const auto& [id, count] : duty) max_duty = std::max(max_duty, count);
  EXPECT_LE(max_duty, 30);
}

TEST(Rotation, DutySkewsTowardResidualEnergy) {
  Rng rng(2);
  ScenarioConfig scenario;
  scenario.n = 80;
  Network net = make_uniform_network(scenario, rng);
  // Pre-drain half the nodes.
  for (int i = 0; i < 40; ++i) net.node(i).battery.consume(3.5);
  QlecParams params;
  params.total_rounds = 100000;
  QlecProtocol proto(net, params, RadioModel{}, 0.0);
  EnergyLedger ledger;
  int rich = 0, poor = 0;
  for (int r = 0; r < 80; ++r) {
    proto.on_round_start(net, r, rng, ledger);
    for (const int h : net.head_ids()) (h < 40 ? poor : rich) += 1;
  }
  EXPECT_GT(rich, poor);
}

TEST(Learning, LinkEstimatesImproveDeliveryOverEarlyRounds) {
  // Under congestion, the first rounds pay the discovery cost (optimistic
  // priors, queue overflows); later rounds should deliver at least as
  // well. Compare the first-third PDR to the last-third PDR via the
  // cumulative trace.
  ExperimentConfig cfg;
  cfg.scenario.n = 100;
  cfg.sim.rounds = 21;
  cfg.sim.slots_per_round = 20;
  cfg.sim.mean_interarrival = 2.5;
  cfg.sim.trace.record = true;
  cfg.seeds = 3;
  cfg.protocol.qlec.total_rounds = 21;
  RunningStats early, late;
  for (const SimResult& r : run_replications("qlec", cfg)) {
    ASSERT_EQ(r.trace.size(), 21u);
    const RoundStats& a = r.trace[6];
    const RoundStats& b = r.trace[20];
    const double early_pdr =
        static_cast<double>(a.delivered) /
        static_cast<double>(std::max<std::uint64_t>(a.generated, 1));
    const double late_window_gen =
        static_cast<double>(b.generated - r.trace[13].generated);
    const double late_window_del =
        static_cast<double>(b.delivered - r.trace[13].delivered);
    early.add(early_pdr);
    late.add(late_window_del / std::max(late_window_gen, 1.0));
  }
  EXPECT_GE(late.mean(), early.mean() - 0.03);
}

TEST(Learning, QEvaluationsScaleWithTrafficAndHeads) {
  ExperimentConfig light;
  light.scenario.n = 60;
  light.sim.rounds = 6;
  light.sim.slots_per_round = 10;
  light.sim.mean_interarrival = 16.0;
  light.seeds = 1;
  light.protocol.qlec.total_rounds = 6;
  ExperimentConfig heavy = light;
  heavy.sim.mean_interarrival = 2.0;
  const auto a = run_replications("qlec", light);
  const auto b = run_replications("qlec", heavy);
  // Each routed packet costs k+1 Q evaluations (plus retries), so 8x the
  // traffic should cost several times the evaluations.
  EXPECT_GT(b[0].q_evaluations, 3 * a[0].q_evaluations);
}

}  // namespace
}  // namespace qlec
