// Cross-validation of the QLEC router's online backups against exact
// dynamic programming: the Data Transmission Phase MDP (Section 4.2) built
// explicitly and solved with value iteration must agree with the router's
// converged V values and greedy choices.
#include <gtest/gtest.h>

#include "core/qlec_routing.hpp"
#include "rl/value_iteration.hpp"

namespace qlec {
namespace {

// Member at the origin-ish, two heads, BS far above. Head values are held
// fixed (heads only change via uplink updates, which we do not run here),
// so the member's MDP has |A| = 3 actions, each a two-outcome transition.
struct Fixture {
  Network net{std::vector<Vec3>{{100, 100, 50},
                                {120, 100, 50},
                                {100, 150, 50}},
              5.0,
              Vec3{100, 100, 200},
              Aabb::cube(200.0)};
  QlecParams params = [] {
    QlecParams p;
    p.epsilon = 0.0;
    return p;
  }();
  RadioModel radio{};
};

TEST(QlecMdpValidation, RouterConvergesToValueIterationFixedPoint) {
  Fixture f;
  QlecRouter router(f.params, f.radio, f.net.size());
  router.begin_round({1, 2});

  // Pin link estimates by feeding the estimator a long deterministic
  // history: p(0->1) ~ 0.75, p(0->2) ~ 0.5, p(0->BS) ~ 0.25.
  for (int i = 0; i < 64; ++i) {
    router.record_outcome(0, 1, i % 4 != 3);
    router.record_outcome(0, 2, i % 2 == 0);
    router.record_outcome(0, kBaseStationId, i % 4 == 0);
  }
  const double p1 = router.estimator().estimate(0, 1);
  const double p2 = router.estimator().estimate(0, 2);
  const double pb = router.estimator().estimate(0, kBaseStationId);

  // Run Send-Data until V(b_0) converges.
  Rng rng(1);
  double prev = 1e18;
  int chosen = -1;
  for (int iter = 0; iter < 500; ++iter) {
    chosen = router.choose_target(f.net, 0, 4000.0, rng);
    if (std::abs(router.v(0) - prev) < 1e-12) break;
    prev = router.v(0);
  }

  // Build the same MDP exactly: state 0 = member, states 1..3 = absorbing
  // action outcomes (heads have fixed V = 0 here, folded into rewards).
  const double gamma = f.params.gamma;
  Mdp mdp = Mdp::make(2, 3);
  mdp.terminal[1] = true;
  const int targets[3] = {1, 2, kBaseStationId};
  const double probs[3] = {p1, p2, pb};
  for (int a = 0; a < 3; ++a) {
    const double r_s =
        router.reward_success(f.net, 0, targets[a], 4000.0) +
        gamma * router.v(targets[a]);
    const double r_f = router.reward_failure(f.net, 0, targets[a], 4000.0);
    mdp.add_transition(0, static_cast<std::size_t>(a), 1, probs[a], r_s);
    mdp.add_transition(0, static_cast<std::size_t>(a), 0, 1.0 - probs[a],
                       r_f);
  }
  const ValueIterationResult exact = value_iteration(mdp, gamma);

  EXPECT_NEAR(router.v(0), exact.v[0], 1e-9);
  EXPECT_EQ(chosen, targets[exact.policy[0]]);
}

TEST(QlecMdpValidation, QValuesMatchBellmanBackup) {
  Fixture f;
  QlecRouter router(f.params, f.radio, f.net.size());
  router.begin_round({1, 2});
  for (int i = 0; i < 32; ++i) router.record_outcome(0, 1, i % 3 != 0);

  const double gamma = f.params.gamma;
  for (const int target : {1, 2, kBaseStationId}) {
    const double p = router.estimator().estimate(0, target);
    const double expect =
        p * (router.reward_success(f.net, 0, target, 4000.0) +
             gamma * router.v(target)) +
        (1.0 - p) * (router.reward_failure(f.net, 0, target, 4000.0) +
                     gamma * router.v(0));
    EXPECT_NEAR(router.q_value(f.net, 0, target, 4000.0), expect, 1e-12)
        << "target " << target;
  }
}

TEST(QlecMdpValidation, HeadValueRecursionMatchesClosedForm) {
  Fixture f;
  QlecRouter router(f.params, f.radio, f.net.size());
  router.begin_round({1});
  // Pin the uplink success probability.
  for (int i = 0; i < 64; ++i)
    router.record_outcome(1, kBaseStationId, i % 2 == 0);
  const double p = router.estimator().estimate(1, kBaseStationId);

  // Iterate Algorithm 1 line 15 until fixed point.
  for (int i = 0; i < 2000; ++i) router.update_head_value(f.net, 1, 4000.0);

  // Closed form: V = Rt / (1 - gamma (1 - P)) with V(BS) = 0 and
  // Rt = P r_s + (1-P) r_f; r_s here is the head's (penalty-free) uplink
  // reward, which for a full-battery head equals the member formula + l.
  const double gamma = f.params.gamma;
  const double r_s =
      router.reward_success(f.net, 1, kBaseStationId, 4000.0) + f.params.l;
  const double r_f = router.reward_failure(f.net, 1, kBaseStationId, 4000.0);
  const double rt = p * r_s + (1.0 - p) * r_f;
  EXPECT_NEAR(router.v(1), rt / (1.0 - gamma * (1.0 - p)), 1e-9);
}

}  // namespace
}  // namespace qlec
