#include "core/optimal_k.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace qlec {
namespace {

TEST(Lemma1, ExpectedD2ToChClosedForm) {
  const double m = 200.0, k = 5.0;
  constexpr double four_pi = 4.0 * std::numbers::pi;
  const double expect = (four_pi / 5.0) *
                        std::pow(3.0 / four_pi, 5.0 / 3.0) * m * m /
                        std::pow(k, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(expected_d2_to_ch(m, k), expect);
}

TEST(Lemma1, MatchesDirectBallIntegral) {
  // E{d^2} over a uniform ball of radius d_c is (3/5) d_c^2, and d_c comes
  // from Eq. 5; the closed form must agree.
  const double m = 150.0, k = 7.0;
  const double dc = cluster_radius(m, k);
  EXPECT_NEAR(expected_d2_to_ch(m, k), 0.6 * dc * dc, 1e-9);
}

TEST(Lemma1, ShrinksWithMoreClusters) {
  const double m = 200.0;
  EXPECT_GT(expected_d2_to_ch(m, 2), expected_d2_to_ch(m, 10));
}

TEST(Lemma1, DegenerateK) {
  EXPECT_DOUBLE_EQ(expected_d2_to_ch(200.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_d2_to_ch(200.0, -3.0), 0.0);
}

TEST(Eq5, ClusterRadiusBallVolume) {
  // k balls of radius d_c should tile the cube's volume: k*(4/3)pi d_c^3 =
  // M^3.
  const double m = 200.0, k = 5.0;
  const double dc = cluster_radius(m, k);
  EXPECT_NEAR(k * (4.0 / 3.0) * std::numbers::pi * dc * dc * dc, m * m * m,
              1e-6);
}

TEST(Eq5, RadiusShrinksWithK) {
  EXPECT_GT(cluster_radius(100.0, 2), cluster_radius(100.0, 16));
}

TEST(Theorem1, ClosedFormValue) {
  // Direct evaluation of the printed formula.
  const RadioParams radio;
  const std::size_t n = 100;
  const double m = 200.0, d = 135.0;
  constexpr double pi = std::numbers::pi;
  const double inner =
      8.0 * pi * 100.0 * radio.eps_fs / (15.0 * radio.eps_mp);
  const double expect = (3.0 / (4.0 * pi)) * std::pow(inner, 0.6) *
                        std::pow(m, 1.2) / std::pow(d, 2.4);
  EXPECT_NEAR(optimal_cluster_count(n, m, d, radio), expect, 1e-9);
}

TEST(Theorem1, PaperSettingGivesAboutFive) {
  // §5.1: N = 100, M = 200 => k_opt ≈ 5. This holds for a surface sink
  // (mean node distance ≈ 0.66 M ≈ 133; see DESIGN.md §6).
  const double k = optimal_cluster_count(100, 200.0, 133.0);
  EXPECT_NEAR(k, 5.0, 0.6);
  EXPECT_EQ(optimal_cluster_count_rounded(100, 200.0, 133.0), 5u);
}

TEST(Theorem1, MatchesBruteForceMinimizer) {
  const RadioParams radio;
  for (const double d : {100.0, 135.0, 180.0, 250.0}) {
    const double k_closed = optimal_cluster_count(100, 200.0, d, radio);
    const std::size_t k_brute =
        brute_force_optimal_k(4000.0, 100, 200.0, d, 64, radio);
    // The integer minimizer should be the rounded closed form (+-1 for
    // near-half cases).
    EXPECT_NEAR(static_cast<double>(k_brute), k_closed, 1.0)
        << "d_toBS=" << d;
  }
}

TEST(Theorem1, MonotoneInN) {
  EXPECT_GT(optimal_cluster_count(400, 200.0, 135.0),
            optimal_cluster_count(100, 200.0, 135.0));
}

TEST(Theorem1, DecreasesWithBsDistance) {
  EXPECT_GT(optimal_cluster_count(100, 200.0, 100.0),
            optimal_cluster_count(100, 200.0, 200.0));
}

TEST(Theorem1, ScalesWithSideLength) {
  // k_opt ∝ M^(6/5) at fixed d_toBS.
  const double k1 = optimal_cluster_count(100, 100.0, 135.0);
  const double k2 = optimal_cluster_count(100, 200.0, 135.0);
  EXPECT_NEAR(k2 / k1, std::pow(2.0, 1.2), 1e-9);
}

TEST(Theorem1, DegenerateInputsGiveZeroOrOne) {
  EXPECT_DOUBLE_EQ(optimal_cluster_count(0, 200.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(optimal_cluster_count(100, 0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(optimal_cluster_count(100, 200.0, 0.0), 0.0);
  EXPECT_EQ(optimal_cluster_count_rounded(0, 200.0, 100.0), 1u);
}

TEST(Eq6, RoundEnergyConvexInK) {
  // Energy as a function of k should decrease then increase around the
  // optimum (unimodality is what makes Theorem 1 meaningful).
  const double d = 135.0;
  const double k_opt = optimal_cluster_count(100, 200.0, d);
  const double e_opt = round_energy_for_k(4000.0, 100, k_opt, 200.0, d);
  EXPECT_LT(e_opt, round_energy_for_k(4000.0, 100, k_opt / 3.0, 200.0, d));
  EXPECT_LT(e_opt, round_energy_for_k(4000.0, 100, k_opt * 3.0, 200.0, d));
}

TEST(Eq6, DerivativeNearZeroAtOptimum) {
  const double d = 135.0;
  const double k_opt = optimal_cluster_count(100, 200.0, d);
  const double h = 1e-4;
  const double de =
      (round_energy_for_k(4000.0, 100, k_opt + h, 200.0, d) -
       round_energy_for_k(4000.0, 100, k_opt - h, 200.0, d)) /
      (2 * h);
  const double scale = round_energy_for_k(4000.0, 100, k_opt, 200.0, d);
  EXPECT_NEAR(de / scale, 0.0, 1e-6);
}

// Property sweep: brute force agrees with the closed form across network
// sizes and geometries.
class Theorem1Property
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(Theorem1Property, BruteForceAgreesWithClosedForm) {
  const auto [n, d_frac] = GetParam();
  const double m = 200.0;
  const double d = d_frac * m;
  const double k_closed = optimal_cluster_count(n, m, d);
  if (k_closed < 1.0 || k_closed > 120.0) GTEST_SKIP();
  const std::size_t k_brute = brute_force_optimal_k(4000.0, n, m, d, 128);
  EXPECT_NEAR(static_cast<double>(k_brute), k_closed, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Property,
    ::testing::Combine(::testing::Values<std::size_t>(50, 100, 200, 500),
                       ::testing::Values(0.5, 0.66, 0.8, 1.0)));

}  // namespace
}  // namespace qlec
