#include "core/improved_deec.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"
#include "geom/spatial_grid.hpp"

namespace qlec {
namespace {

Network uniform_net(std::size_t n, double energy, Rng& rng,
                    double m_side = 100.0) {
  const Aabb box = Aabb::cube(m_side);
  return Network(sample_uniform(n, box, rng), energy, box.center(), box);
}

ImprovedDeecConfig base_config() {
  ImprovedDeecConfig cfg;
  cfg.p_opt = 0.1;
  cfg.total_rounds = 100;
  cfg.coverage_radius = 20.0;
  return cfg;
}

TEST(Eq4Threshold, FullAtRoundZero) {
  EXPECT_DOUBLE_EQ(deec_energy_threshold(5.0, 0, 20), 5.0);
}

TEST(Eq4Threshold, QuadraticDecay) {
  // 1 - (r/R)^2 at r = R/2 is 0.75.
  EXPECT_DOUBLE_EQ(deec_energy_threshold(4.0, 10, 20), 3.0);
}

TEST(Eq4Threshold, ZeroAtEndOfLife) {
  EXPECT_DOUBLE_EQ(deec_energy_threshold(5.0, 20, 20), 0.0);
  EXPECT_DOUBLE_EQ(deec_energy_threshold(5.0, 30, 20), 0.0);  // clamped
}

TEST(Eq4Threshold, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(deec_energy_threshold(5.0, 5, 0), 0.0);
  EXPECT_DOUBLE_EQ(deec_energy_threshold(-1.0, 0, 20), 0.0);
}

TEST(ImprovedDeec, ElectsSomeHeads) {
  Rng rng(1);
  Network net = uniform_net(100, 5.0, rng);
  ElectionStats stats;
  const auto heads =
      improved_deec_elect(net, base_config(), 0, rng, 0.0, &stats);
  EXPECT_FALSE(heads.empty());
  EXPECT_EQ(stats.final_heads, static_cast<int>(heads.size()));
  EXPECT_EQ(net.head_ids(), heads);
}

TEST(ImprovedDeec, EnergyThresholdExcludesDrainedNodes) {
  Rng rng(2);
  Network net = uniform_net(60, 5.0, rng);
  // Drain half below the round-0 threshold (which is the full initial
  // energy at r=0... so use a later round where threshold = 0.75*5 = 3.75).
  for (int i = 0; i < 30; ++i) net.node(i).battery.consume(2.0);  // 3 J left
  ImprovedDeecConfig cfg = base_config();
  cfg.total_rounds = 20;
  const int round = 10;  // threshold = 0.75 * 5 = 3.75 J
  for (int trial = 0; trial < 30; ++trial) {
    ElectionStats stats;
    const auto heads =
        improved_deec_elect(net, cfg, round, rng, 0.0, &stats);
    if (stats.used_fallback) continue;  // fallback may pick anyone
    for (const int h : heads) EXPECT_GE(h, 30) << "drained node elected";
  }
}

TEST(ImprovedDeec, ThresholdDisabledAllowsDrainedNodes) {
  Rng rng(3);
  Network net = uniform_net(60, 5.0, rng);
  for (int i = 0; i < 59; ++i) net.node(i).battery.consume(2.0);
  ImprovedDeecConfig cfg = base_config();
  cfg.total_rounds = 20;
  cfg.use_energy_threshold = false;
  cfg.p_opt = 0.5;
  bool drained_elected = false;
  for (int trial = 0; trial < 50 && !drained_elected; ++trial) {
    for (const int h : improved_deec_elect(net, cfg, 10, rng, 0.0))
      drained_elected |= h < 59;
    for (auto& n : net.nodes()) n.last_head_round = kNeverHead;  // re-arm
  }
  EXPECT_TRUE(drained_elected);
}

TEST(ImprovedDeec, RedundancyPruningEnforcesSpacingOrEnergyDominance) {
  Rng rng(4);
  Network net = uniform_net(200, 5.0, rng);
  ImprovedDeecConfig cfg = base_config();
  cfg.p_opt = 0.4;  // force many provisional heads
  cfg.coverage_radius = 30.0;
  const auto heads = improved_deec_elect(net, cfg, 0, rng, 0.0);
  // After Algorithm 3, no two surviving heads within d_c may both exist
  // unless... in fact no head should have a strictly richer head within
  // d_c. With equal energies, ties break by id: the lower id survives.
  for (const int a : heads) {
    for (const int b : heads) {
      if (a == b) continue;
      if (net.dist(a, b) <= cfg.coverage_radius) {
        const double ea = net.node(a).battery.residual();
        const double eb = net.node(b).battery.residual();
        EXPECT_FALSE(eb > ea) << "head " << a
                              << " should have quit hearing " << b;
      }
    }
  }
}

TEST(ImprovedDeec, PruningKeepsRicherHead) {
  Rng rng(5);
  // Two nodes close together, very different energy; high p_opt so both
  // get provisionally elected.
  const std::vector<Vec3> pts{{50, 50, 50}, {52, 50, 50}, {10, 10, 10}};
  Network net(pts, std::vector<double>{5.0, 1.0, 5.0}, {50, 50, 100},
              Aabb::cube(100.0));
  ImprovedDeecConfig cfg;
  cfg.p_opt = 1.0;  // everyone wins the draw
  cfg.total_rounds = 100;
  cfg.coverage_radius = 10.0;
  cfg.use_energy_threshold = false;
  const auto heads = improved_deec_elect(net, cfg, 0, rng, 0.0);
  // Node 1 (1 J) must have quit in favor of node 0 (5 J).
  EXPECT_TRUE(net.node(0).is_head);
  EXPECT_FALSE(net.node(1).is_head);
  EXPECT_TRUE(net.node(2).is_head);  // far away, unaffected
}

TEST(ImprovedDeec, PruningDisabledKeepsBoth) {
  Rng rng(6);
  // Equal energies so Eq. 1 gives p_i = 1 for both and each node certainly
  // wins the z-draw; only Algorithm 3 could remove one.
  const std::vector<Vec3> pts{{50, 50, 50}, {52, 50, 50}};
  Network net(pts, std::vector<double>{5.0, 5.0}, {50, 50, 100},
              Aabb::cube(100.0));
  ImprovedDeecConfig cfg;
  cfg.p_opt = 1.0;
  cfg.total_rounds = 100;
  cfg.coverage_radius = 10.0;
  cfg.reduce_redundancy = false;
  cfg.use_energy_threshold = false;
  const auto heads = improved_deec_elect(net, cfg, 0, rng, 0.0);
  EXPECT_EQ(heads.size(), 2u);
}

TEST(ImprovedDeec, FallbackDraftsMaxEnergyNode) {
  Rng rng(7);
  Network net = uniform_net(10, 5.0, rng);
  net.node(3).battery.recharge(0.0);  // noop; node 3 stays at 5 J
  for (int i = 0; i < 10; ++i)
    if (i != 3) net.node(i).battery.consume(1.0);
  ImprovedDeecConfig cfg = base_config();
  cfg.p_opt = 1e-12;     // nobody wins the draw
  cfg.top_up_to_k = false;  // exercise the last-resort fallback path
  ElectionStats stats;
  const auto heads = improved_deec_elect(net, cfg, 0, rng, 0.0, &stats);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 3);
  EXPECT_TRUE(stats.used_fallback);
}

TEST(ImprovedDeec, AllDeadElectsNobody) {
  Rng rng(8);
  Network net = uniform_net(5, 1.0, rng);
  for (auto& n : net.nodes()) n.battery.consume(1.0);
  const auto heads = improved_deec_elect(net, base_config(), 0, rng, 0.0);
  EXPECT_TRUE(heads.empty());
}

TEST(ImprovedDeec, RotatingEpochPreventsImmediateReelection) {
  Rng rng(9);
  Network net = uniform_net(30, 5.0, rng);
  ImprovedDeecConfig cfg = base_config();
  cfg.p_opt = 0.2;
  const auto heads0 = improved_deec_elect(net, cfg, 0, rng, 0.0);
  ElectionStats stats;
  const auto heads1 = improved_deec_elect(net, cfg, 1, rng, 0.0, &stats);
  if (!stats.used_fallback) {
    for (const int h : heads1) {
      for (const int h0 : heads0) EXPECT_NE(h, h0);
    }
  }
}

TEST(ImprovedDeec, StatsAreConsistent) {
  Rng rng(10);
  Network net = uniform_net(150, 5.0, rng);
  ImprovedDeecConfig cfg = base_config();
  cfg.p_opt = 0.3;
  ElectionStats stats;
  improved_deec_elect(net, cfg, 0, rng, 0.0, &stats);
  EXPECT_EQ(stats.alive, 150);
  EXPECT_LE(stats.eligible, stats.alive);
  EXPECT_LE(stats.elected, stats.eligible);
  if (stats.used_fallback) {
    EXPECT_EQ(stats.final_heads, 1);
    EXPECT_EQ(stats.elected - stats.pruned + stats.drafted, 0);
  } else {
    EXPECT_EQ(stats.final_heads,
              stats.elected - stats.pruned + stats.drafted);
  }
  EXPECT_GT(stats.eligible, 0);  // fresh 5 J nodes qualify at round 0
}

TEST(ImprovedDeec, AverageHeadCountTracksPopt) {
  Rng rng(11);
  Network net = uniform_net(200, 5.0, rng);
  ImprovedDeecConfig cfg = base_config();
  cfg.p_opt = 0.05;
  cfg.total_rounds = 10000;  // keep Eq. 2 average ~constant
  cfg.reduce_redundancy = false;
  double total = 0.0;
  const int rounds = 50;
  for (int r = 0; r < rounds; ++r)
    total += static_cast<double>(
        improved_deec_elect(net, cfg, r, rng, 0.0).size());
  EXPECT_NEAR(total / rounds, 10.0, 4.0);  // p_opt * N = 10
}

}  // namespace
}  // namespace qlec
