#include "analysis/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(RenderChart, EmptyDataHandled) {
  EXPECT_EQ(render_chart({}), "(no data)\n");
  EXPECT_EQ(render_chart({Series{"empty", {}, {}}}), "(no data)\n");
}

TEST(RenderChart, ContainsTitleAndLegend) {
  ChartOptions opt;
  opt.title = "My Chart";
  opt.x_label = "lambda";
  opt.y_label = "pdr";
  const std::string out =
      render_chart({Series{"qlec", {1, 2, 3}, {0.9, 0.8, 0.7}}}, opt);
  EXPECT_NE(out.find("My Chart"), std::string::npos);
  EXPECT_NE(out.find("qlec"), std::string::npos);
  EXPECT_NE(out.find("lambda"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(RenderChart, PlotsMarkersForEachSeries) {
  const std::string out = render_chart(
      {Series{"a", {0, 1}, {0, 1}}, Series{"b", {0, 1}, {1, 0}}});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(RenderChart, SinglePointDoesNotDivideByZero) {
  const std::string out = render_chart({Series{"p", {5.0}, {3.0}}});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(RenderChart, ForcedYRangeClipsOutliers) {
  ChartOptions opt;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  const std::string out = render_chart(
      {Series{"s", {0, 1, 2}, {0.5, 100.0, 0.7}}}, opt);
  // Renders without crashing; the outlier is simply outside the plot area.
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(RenderChart, AxisLabelsShowRange) {
  const std::string out =
      render_chart({Series{"s", {2.0, 16.0}, {10.0, 20.0}}});
  EXPECT_NE(out.find("16"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(RenderChart, HigherYValuesRenderedHigher) {
  // One series with a clear upward trend: the first data row (top of the
  // chart) should contain the marker for the max, found left-to-right
  // later than the min's marker would be.
  const std::string out =
      render_chart({Series{"s", {0, 10}, {0.0, 1.0}}});
  const std::size_t first_line_end = out.find('\n');
  const std::string first_line = out.substr(0, first_line_end);
  // Top row holds the y-max point, which is the right-most x.
  const std::size_t star = first_line.rfind('*');
  ASSERT_NE(star, std::string::npos);
  EXPECT_GT(star, first_line.size() / 2);
}

}  // namespace
}  // namespace qlec
