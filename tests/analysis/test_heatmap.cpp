#include "analysis/heatmap.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

TEST(GridHeatmap, EmptyRendersPlaceholder) {
  const GridHeatmap h(0, 10, 0, 10, 4, 4);
  EXPECT_EQ(h.render(), "(empty heatmap)\n");
  EXPECT_TRUE(std::isnan(h.cell_mean(0, 0)));
  EXPECT_EQ(h.cell_count(0, 0), 0u);
}

TEST(GridHeatmap, AccumulatesMeans) {
  GridHeatmap h(0, 10, 0, 10, 2, 2);
  h.add(2.0, 2.0, 1.0);
  h.add(3.0, 3.0, 3.0);  // same cell (0,0)
  EXPECT_EQ(h.cell_count(0, 0), 2u);
  EXPECT_DOUBLE_EQ(h.cell_mean(0, 0), 2.0);
}

TEST(GridHeatmap, CellIndexingByPosition) {
  GridHeatmap h(0, 10, 0, 10, 2, 2);
  h.add(7.5, 2.0, 5.0);  // (1, 0)
  h.add(2.0, 7.5, 9.0);  // (0, 1)
  EXPECT_DOUBLE_EQ(h.cell_mean(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(h.cell_mean(0, 1), 9.0);
  EXPECT_EQ(h.cell_count(0, 0), 0u);
}

TEST(GridHeatmap, OutOfRangeClampsToBorder) {
  GridHeatmap h(0, 10, 0, 10, 2, 2);
  h.add(-5.0, -5.0, 1.0);
  h.add(100.0, 100.0, 2.0);
  EXPECT_EQ(h.cell_count(0, 0), 1u);
  EXPECT_EQ(h.cell_count(1, 1), 1u);
}

TEST(GridHeatmap, RenderShowsShadingGradient) {
  GridHeatmap h(0, 10, 0, 10, 2, 1);
  h.add(2.0, 5.0, 0.0);   // low cell
  h.add(7.0, 5.0, 10.0);  // high cell
  const std::string out = h.render();
  EXPECT_NE(out.find('.'), std::string::npos);  // low shade
  EXPECT_NE(out.find('@'), std::string::npos);  // high shade
  EXPECT_NE(out.find("shading"), std::string::npos);
}

TEST(GridHeatmap, DegenerateDimensionsClamped) {
  GridHeatmap h(0, 0, 0, 0, 0, 0);  // all degenerate
  h.add(0.0, 0.0, 1.0);
  EXPECT_EQ(h.nx(), 1u);
  EXPECT_EQ(h.ny(), 1u);
  EXPECT_EQ(h.cell_count(0, 0), 1u);
}

TEST(ComputeEvenness, UniformValues) {
  const EvennessStats s = compute_evenness({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

TEST(ComputeEvenness, SkewedValues) {
  std::vector<double> v(99, 0.1);
  v.push_back(100.0);
  const EvennessStats s = compute_evenness(v);
  EXPECT_GT(s.cv, 2.0);
  EXPECT_GT(s.gini, 0.8);
  EXPECT_LT(s.p50, 1.0);
}

TEST(ComputeEvenness, EmptyInput) {
  const EvennessStats s = compute_evenness({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.gini, 0.0);
}

TEST(ComputeEvenness, PercentilesOrdered) {
  const EvennessStats s =
      compute_evenness({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_LE(s.p10, s.p50);
  EXPECT_LE(s.p50, s.p90);
}

}  // namespace
}  // namespace qlec
