#include "analysis/spatial_stats.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

TEST(MoransI, DegenerateInputs) {
  EXPECT_EQ(morans_i({}, {}, 10.0), 0.0);
  EXPECT_EQ(morans_i({{0, 0, 0}}, {1.0}, 10.0), 0.0);
  // Size mismatch.
  EXPECT_EQ(morans_i({{0, 0, 0}, {1, 0, 0}}, {1.0}, 10.0), 0.0);
  // Zero variance.
  EXPECT_EQ(morans_i({{0, 0, 0}, {1, 0, 0}}, {2.0, 2.0}, 10.0), 0.0);
  // No neighbour pairs within radius.
  EXPECT_EQ(morans_i({{0, 0, 0}, {100, 0, 0}}, {1.0, 2.0}, 10.0), 0.0);
  EXPECT_EQ(morans_i({{0, 0, 0}, {1, 0, 0}}, {1.0, 2.0}, 0.0), 0.0);
}

TEST(MoransI, PerfectClusteringIsPositive) {
  // Two spatial blobs, each with homogeneous values far from the other's.
  std::vector<Vec3> pts;
  std::vector<double> vals;
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10), 0});
    vals.push_back(10.0 + rng.uniform(-0.1, 0.1));
  }
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(90, 100), rng.uniform(90, 100), 0});
    vals.push_back(-10.0 + rng.uniform(-0.1, 0.1));
  }
  EXPECT_GT(morans_i(pts, vals, 15.0), 0.8);
}

TEST(MoransI, CheckerboardIsNegative) {
  // Alternating values on a line with radius covering one step only.
  std::vector<Vec3> pts;
  std::vector<double> vals;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({static_cast<double>(i), 0, 0});
    vals.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_LT(morans_i(pts, vals, 1.0), -0.8);
}

TEST(MoransI, RandomLabelsNearZero) {
  Rng rng(2);
  const auto pts = sample_uniform(400, Aabb::cube(100.0), rng);
  std::vector<double> vals;
  for (std::size_t i = 0; i < 400; ++i) vals.push_back(rng.uniform01());
  const double i_stat = morans_i(pts, vals, 20.0);
  EXPECT_NEAR(i_stat, 0.0, 0.05);
}

TEST(MoransI, ScaleAndShiftInvariant) {
  Rng rng(3);
  const auto pts = sample_uniform(50, Aabb::cube(50.0), rng);
  std::vector<double> vals;
  for (std::size_t i = 0; i < 50; ++i) vals.push_back(rng.uniform(0, 5));
  std::vector<double> transformed;
  for (const double v : vals) transformed.push_back(3.0 * v + 17.0);
  EXPECT_NEAR(morans_i(pts, vals, 15.0),
              morans_i(pts, transformed, 15.0), 1e-9);
}

TEST(MoransIPvalue, ClusteredPatternIsSignificant) {
  std::vector<Vec3> pts;
  std::vector<double> vals;
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0, 10), 0, 0});
    vals.push_back(5.0 + rng.uniform(-0.1, 0.1));
  }
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(50, 60), 0, 0});
    vals.push_back(-5.0 + rng.uniform(-0.1, 0.1));
  }
  EXPECT_LT(morans_i_pvalue(pts, vals, 12.0, 99, 7), 0.05);
}

TEST(MoransIPvalue, RandomPatternIsNot) {
  Rng rng(5);
  const auto pts = sample_uniform(120, Aabb::cube(100.0), rng);
  std::vector<double> vals;
  for (std::size_t i = 0; i < 120; ++i) vals.push_back(rng.uniform01());
  EXPECT_GT(morans_i_pvalue(pts, vals, 25.0, 99, 8), 0.05);
}

TEST(MoransIPvalue, DeterministicForSeed) {
  Rng rng(6);
  const auto pts = sample_uniform(40, Aabb::cube(40.0), rng);
  std::vector<double> vals;
  for (std::size_t i = 0; i < 40; ++i) vals.push_back(rng.uniform01());
  EXPECT_DOUBLE_EQ(morans_i_pvalue(pts, vals, 15.0, 49, 11),
                   morans_i_pvalue(pts, vals, 15.0, 49, 11));
}

}  // namespace
}  // namespace qlec
