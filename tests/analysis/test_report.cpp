#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include "util/csv.hpp"

namespace qlec {
namespace {

std::vector<SweepSeries> sample_series() {
  return {
      SweepSeries{"qlec", {2, 4, 8}, {0.99, 0.95, 0.9}, {0.01, 0.01, 0.02}},
      SweepSeries{"fcm", {2, 4, 8}, {0.9, 0.85, 0.8}, {0.02, 0.02, 0.03}},
  };
}

TEST(RenderSweepTable, ContainsAllRows) {
  const std::string out =
      render_sweep_table("lambda", "pdr", sample_series());
  EXPECT_NE(out.find("lambda"), std::string::npos);
  EXPECT_NE(out.find("qlec"), std::string::npos);
  EXPECT_NE(out.find("fcm"), std::string::npos);
  EXPECT_NE(out.find("0.990"), std::string::npos);
  EXPECT_NE(out.find("+/-"), std::string::npos);
}

TEST(RenderSweepTable, RowMajorByX) {
  const std::string out =
      render_sweep_table("x", "m", sample_series());
  // At a given x, qlec row precedes fcm row; the first x=4.00 appearance
  // comes after both x=2.00 rows.
  const std::size_t first_qlec = out.find("qlec");
  const std::size_t first_fcm = out.find("fcm");
  EXPECT_LT(first_qlec, first_fcm);
}

TEST(SweepToCsv, ParsesBack) {
  const std::string csv = sweep_to_csv(sample_series());
  const auto rows = parse_csv(csv);
  ASSERT_EQ(rows.size(), 7u);  // header + 6 data rows
  EXPECT_EQ(rows[0], (CsvRow{"x", "protocol", "mean", "ci95"}));
  EXPECT_EQ(rows[1][1], "qlec");
  EXPECT_NEAR(std::stod(rows[1][2]), 0.99, 1e-6);
}

TEST(RenderSweepChart, ProducesChartWithLegend) {
  const std::string out =
      render_sweep_chart("Fig 3(a)", "lambda", "pdr", sample_series());
  EXPECT_NE(out.find("Fig 3(a)"), std::string::npos);
  EXPECT_NE(out.find("qlec"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(MetricPoint, ExtractsMeanAndCi) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const MetricPoint p = metric_point(s);
  EXPECT_DOUBLE_EQ(p.mean, 2.0);
  EXPECT_GT(p.ci95, 0.0);
}

TEST(RenderSweepTable, EmptySeries) {
  const std::string out = render_sweep_table("x", "m", {});
  EXPECT_NE(out.find("x"), std::string::npos);  // header only
}

}  // namespace
}  // namespace qlec
