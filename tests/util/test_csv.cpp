#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace qlec {
namespace {

TEST(ParseCsv, SimpleRows) {
  const auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(ParseCsv, MissingTrailingNewline) {
  const auto rows = parse_csv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(ParseCsv, CrLfLineEndings) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(ParseCsv, QuotedFieldWithComma) {
  const auto rows = parse_csv("\"x,y\",z\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"x,y", "z"}));
}

TEST(ParseCsv, EscapedQuotes) {
  const auto rows = parse_csv("\"he said \"\"hi\"\"\",ok\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(ParseCsv, QuotedNewline) {
  const auto rows = parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseCsv, EmptyFields) {
  const auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"", "", ""}));
}

TEST(ParseCsv, EmptyInput) {
  EXPECT_TRUE(parse_csv("").empty());
}

TEST(ParseCsvLine, SingleLine) {
  EXPECT_EQ(parse_csv_line("p,q,r"), (CsvRow{"p", "q", "r"}));
  EXPECT_TRUE(parse_csv_line("").empty());
}

TEST(FormatCsvRow, PlainFields) {
  EXPECT_EQ(format_csv_row({"a", "b"}), "a,b");
}

TEST(FormatCsvRow, QuotesWhenNeeded) {
  EXPECT_EQ(format_csv_row({"x,y"}), "\"x,y\"");
  EXPECT_EQ(format_csv_row({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(format_csv_row({"a\nb"}), "\"a\nb\"");
}

TEST(FormatCsvRow, RoundTripsThroughParse) {
  const CsvRow original{"plain", "with,comma", "with\"quote", "multi\nline",
                        ""};
  const auto rows = parse_csv(format_csv_row(original) + "\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(CsvRow{"h1", "h2"});
  w.write_row(std::vector<double>{1.5, 2.25});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"h1", "h2"}));
  EXPECT_DOUBLE_EQ(std::stod(rows[1][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[1][1]), 2.25);
}

TEST(CsvWriter, DoublesRoundTripExactly) {
  std::ostringstream out;
  CsvWriter w(out);
  const double v = 0.1 + 0.2;  // 0.30000000000000004
  w.write_row(std::vector<double>{v});
  const auto rows = parse_csv(out.str());
  EXPECT_EQ(std::stod(rows[0][0]), v);
}

TEST(TextFileIo, WriteThenRead) {
  const std::string path = ::testing::TempDir() + "/qlec_csv_test.txt";
  ASSERT_TRUE(write_text_file(path, "hello\nworld"));
  const auto content = read_text_file(path);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "hello\nworld");
  std::remove(path.c_str());
}

TEST(TextFileIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_text_file("/nonexistent/definitely/missing.csv")
                   .has_value());
}

}  // namespace
}  // namespace qlec
