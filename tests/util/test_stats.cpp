#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace qlec {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
  EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, CvZeroMean) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.cv(), 0.0);  // mean is 0 -> defined as 0
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(6);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, ExtremesAndClamping) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 5.0);
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, ZeroBinsClampedToOne) {
  Histogram h(0.0, 1.0, 0);
  h.add(0.5);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  h.add(0.75);
  const std::string out = h.render(20);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(Gini, PerfectEqualityIsZero) {
  EXPECT_NEAR(gini({5.0, 5.0, 5.0, 5.0}), 0.0, 1e-12);
}

TEST(Gini, ExtremeInequalityApproachesOne) {
  std::vector<double> v(100, 0.0);
  v.back() = 100.0;
  EXPECT_GT(gini(v), 0.95);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_EQ(gini({}), 0.0);
  EXPECT_EQ(gini({3.0}), 0.0);
  EXPECT_EQ(gini({0.0, 0.0}), 0.0);
}

TEST(Gini, KnownTwoValueCase) {
  // {1, 3}: gini = 1/4.
  EXPECT_NEAR(gini({1.0, 3.0}), 0.25, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> v{1.0, 2.0, 5.0, 9.0};
  std::vector<double> scaled;
  for (const double x : v) scaled.push_back(x * 7.5);
  EXPECT_NEAR(gini(v), gini(scaled), 1e-12);
}

// Property sweep: RunningStats against a brute-force computation.
class RunningStatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunningStatsProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  RunningStats s;
  std::vector<double> values;
  const int n = 10 + static_cast<int>(rng.uniform_int(std::uint64_t{200}));
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    values.push_back(v);
    s.add(v);
  }
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace qlec
