// The QLEC_* environment knob accessors (util/env.hpp).
#include <cstdlib>

#include <gtest/gtest.h>

#include "util/env.hpp"

namespace qlec {
namespace {

// Scoped setenv so a failing assertion can't leak state into other tests.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvVar() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Env, FlagSemantics) {
  ::unsetenv("QLEC_TEST_FLAG");
  EXPECT_FALSE(env::flag("QLEC_TEST_FLAG"));
  {
    EnvVar v("QLEC_TEST_FLAG", "1");
    EXPECT_TRUE(env::flag("QLEC_TEST_FLAG"));
  }
  {
    EnvVar v("QLEC_TEST_FLAG", "0");  // explicit off
    EXPECT_FALSE(env::flag("QLEC_TEST_FLAG"));
  }
  {
    EnvVar v("QLEC_TEST_FLAG", "");
    EXPECT_FALSE(env::flag("QLEC_TEST_FLAG"));
  }
  {
    EnvVar v("QLEC_TEST_FLAG", "yes");
    EXPECT_TRUE(env::flag("QLEC_TEST_FLAG"));
  }
}

TEST(Env, PositiveIntParsesAndFallsBack) {
  ::unsetenv("QLEC_TEST_INT");
  EXPECT_EQ(env::positive_int("QLEC_TEST_INT", 7), 7);
  {
    EnvVar v("QLEC_TEST_INT", "12");
    EXPECT_EQ(env::positive_int("QLEC_TEST_INT", 7), 12);
  }
  {
    EnvVar v("QLEC_TEST_INT", "0");  // counts must be positive
    EXPECT_EQ(env::positive_int("QLEC_TEST_INT", 7), 7);
  }
  {
    EnvVar v("QLEC_TEST_INT", "-3");
    EXPECT_EQ(env::positive_int("QLEC_TEST_INT", 7), 7);
  }
  {
    EnvVar v("QLEC_TEST_INT", "notanumber");
    EXPECT_EQ(env::positive_int("QLEC_TEST_INT", 7), 7);
  }
}

TEST(Env, StrReturnsFallbackWhenUnset) {
  ::unsetenv("QLEC_TEST_STR");
  EXPECT_EQ(env::str("QLEC_TEST_STR", "dflt"), "dflt");
  EXPECT_EQ(env::str("QLEC_TEST_STR"), "");
  EnvVar v("QLEC_TEST_STR", "path/to/file");
  EXPECT_EQ(env::str("QLEC_TEST_STR", "dflt"), "path/to/file");
}

TEST(Env, BenchSeedsHonorsOverrideThenFastThenDefault) {
  ::unsetenv("QLEC_BENCH_SEEDS");
  ::unsetenv("QLEC_BENCH_FAST");
  EXPECT_EQ(env::bench_seeds(5), 5u);
  {
    EnvVar fast("QLEC_BENCH_FAST", "1");
    EXPECT_EQ(env::bench_seeds(5), 2u);  // fast mode shrinks the default
    EnvVar seeds("QLEC_BENCH_SEEDS", "9");
    EXPECT_EQ(env::bench_seeds(5), 9u);  // explicit count wins over fast
  }
  EXPECT_EQ(env::bench_seeds(3), 3u);
}

TEST(Env, PerfKnobs) {
  ::unsetenv("QLEC_PERF_REPEATS");
  ::unsetenv("QLEC_PERF_BASELINE");
  EXPECT_EQ(env::perf_repeats(4), 4u);
  EXPECT_EQ(env::perf_baseline(), "");
  EnvVar r("QLEC_PERF_REPEATS", "11");
  EnvVar b("QLEC_PERF_BASELINE", "/tmp/baseline.json");
  EXPECT_EQ(env::perf_repeats(4), 11u);
  EXPECT_EQ(env::perf_baseline(), "/tmp/baseline.json");
}

}  // namespace
}  // namespace qlec
