#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, EqualsForm) {
  const CliArgs args = parse({"--n=100", "--name=qlec"});
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_EQ(args.get_string("name", ""), "qlec");
}

TEST(CliArgs, SpaceForm) {
  const CliArgs args = parse({"--n", "42", "--lambda", "2.5"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0.0), 2.5);
}

TEST(CliArgs, BareFlagIsTrue) {
  const CliArgs args = parse({"--verbose", "--n=3"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(CliArgs, TrailingBareFlag) {
  const CliArgs args = parse({"--n=3", "--lifespan"});
  EXPECT_TRUE(args.get_bool("lifespan", false));
}

TEST(CliArgs, PositionalArguments) {
  const CliArgs args = parse({"input.csv", "--n=1", "output.csv"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(CliArgs, MissingUsesFallback) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "dft"), "dft");
  EXPECT_FALSE(args.get_bool("b", false));
  EXPECT_FALSE(args.has("n"));
}

TEST(CliArgs, BadNumericRecordsError) {
  const CliArgs args = parse({"--n=abc"});
  EXPECT_EQ(args.get_int("n", 9), 9);
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_EQ(args.errors()[0], "n");
}

TEST(CliArgs, BadDoubleSuffixRejected) {
  const CliArgs args = parse({"--x=1.5abc"});
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.0), 2.0);
  EXPECT_FALSE(args.errors().empty());
}

TEST(CliArgs, BoolSpellings) {
  const CliArgs args = parse({"--a=YES", "--b=off", "--c=1", "--d=False"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(CliArgs, BadBoolFallsBack) {
  const CliArgs args = parse({"--a=maybe"});
  EXPECT_TRUE(args.get_bool("a", true));
  EXPECT_FALSE(args.errors().empty());
}

TEST(CliArgs, LastOccurrenceWins) {
  const CliArgs args = parse({"--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(CliArgs, NegativeNumbersParse) {
  const CliArgs args = parse({"--x=-3.5", "--n=-7"});
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), -3.5);
  EXPECT_EQ(args.get_int("n", 0), -7);
}

TEST(CliArgs, GetAllPreservesRepeatsInOrder) {
  const CliArgs args = parse({"--set", "a=1", "--n=5", "--set", "b=2",
                              "--set=c=3"});
  const std::vector<std::string> sets = args.get_all("set");
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], "a=1");
  EXPECT_EQ(sets[1], "b=2");
  EXPECT_EQ(sets[2], "c=3");
  EXPECT_TRUE(args.get_all("missing").empty());
  // Scalar getters still see the last occurrence.
  EXPECT_EQ(args.get_string("set", ""), "c=3");
}

TEST(RenderUsage, ContainsAllOptions) {
  const std::string out = render_usage(
      "tool", {{"--alpha <x>", "does alpha"}, {"--b", "flag b"}});
  EXPECT_NE(out.find("usage: tool"), std::string::npos);
  EXPECT_NE(out.find("--alpha <x>"), std::string::npos);
  EXPECT_NE(out.find("does alpha"), std::string::npos);
  EXPECT_NE(out.find("flag b"), std::string::npos);
}

}  // namespace
}  // namespace qlec
