#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace qlec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[r.uniform_int(std::uint64_t{10})];
  for (const int c : counts) EXPECT_GT(c, 800);  // fair-ish
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.uniform_int(std::int64_t{-3}, std::int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntZeroReturnsZero) {
  Rng r(1);
  EXPECT_EQ(r.uniform_int(std::uint64_t{0}), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(21);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(31);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(33);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.exponential(2.0), 0.0);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, PoissonMeanMatchesSmall) {
  Rng r(41);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i)
    sum += static_cast<double>(r.poisson(3.5));
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(Rng, PoissonMeanMatchesLargeNormalApprox) {
  Rng r(43);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    sum += static_cast<double>(r.poisson(120.0));
  EXPECT_NEAR(sum / kN, 120.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(45);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-2.0), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(51);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng r(53);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(61);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(63);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(71);
  const std::vector<double> w{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(Rng, WeightedIndexDegenerateInputs) {
  Rng r(73);
  EXPECT_EQ(r.weighted_index({}), 0u);
  // All-zero weights fall back to uniform over the indices.
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_LT(r.weighted_index(zeros), 3u);
  // Negative weights are treated as zero.
  const std::vector<double> mixed{-1.0, 2.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.weighted_index(mixed), 1u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// Chi-square sanity sweep across several seeds: uniform_int(16) buckets
// should not be wildly skewed for any seed.
class RngChiSquare : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngChiSquare, UniformBucketsBalanced) {
  Rng r(GetParam());
  constexpr int kBuckets = 16;
  constexpr int kN = 16000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i)
    ++counts[r.uniform_int(std::uint64_t{kBuckets})];
  const double expected = static_cast<double>(kN) / kBuckets;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof; 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngChiSquare,
                         ::testing::Values(1u, 2u, 42u, 1234u, 99999u,
                                           0xDEADBEEFu));

}  // namespace
}  // namespace qlec
