// Arena bump-allocator unit + stress tests. The stress cases are sized to
// be meaningful under ASan (poisoned-redzone adjacency, use-after-free) and
// TSan (one arena per thread, concurrent lifecycles) in the sanitizer CI
// jobs — the sharded round core hands each shard task a private Arena, so
// per-thread isolation is the property that matters.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace qlec {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena a;
  double* d = a.alloc<double>(100);
  std::int32_t* i = a.alloc<std::int32_t>(50);
  for (int k = 0; k < 100; ++k) d[k] = k * 1.5;
  for (int k = 0; k < 50; ++k) i[k] = -k;
  for (int k = 0; k < 100; ++k) EXPECT_EQ(d[k], k * 1.5);
  for (int k = 0; k < 50; ++k) EXPECT_EQ(i[k], -k);
}

TEST(Arena, RespectsAlignment) {
  Arena a;
  a.alloc<char>(3);  // misalign the cursor
  double* d = a.alloc<double>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  a.alloc<char>(1);
  std::uint64_t* u = a.alloc<std::uint64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) % alignof(std::uint64_t), 0u);
}

TEST(Arena, AllocZeroedZeroes) {
  Arena a;
  // Dirty some storage first so reuse after reset would show through.
  int* dirty = a.alloc<int>(256);
  std::memset(dirty, 0xAB, 256 * sizeof(int));
  a.reset();
  const int* z = a.alloc_zeroed<int>(256);
  for (int k = 0; k < 256; ++k) EXPECT_EQ(z[k], 0);
}

TEST(Arena, GrowthKeepsEarlierAllocationsValid) {
  Arena a(64);  // tiny first chunk forces chaining
  std::uint8_t* first = a.alloc<std::uint8_t>(48);
  std::memset(first, 0x5A, 48);
  // Force several growth steps.
  for (int k = 0; k < 10; ++k) a.alloc<std::uint8_t>(1000);
  for (int k = 0; k < 48; ++k) EXPECT_EQ(first[k], 0x5A);
  EXPECT_GE(a.bytes_used(), 48u + 10u * 1000u);
}

TEST(Arena, ResetRecyclesStorageAllocationFree) {
  Arena a(64);
  for (int k = 0; k < 8; ++k) a.alloc<double>(300);  // chain chunks
  a.reset();  // coalesces to one high-water chunk
  const std::size_t reserved = a.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  void* p0 = a.alloc<double>(300);
  a.reset();
  // Steady state: same storage handed back, nothing new reserved.
  EXPECT_EQ(a.alloc<double>(300), p0);
  EXPECT_EQ(a.bytes_reserved(), reserved);
  EXPECT_EQ(a.bytes_used(), 300 * sizeof(double));
}

TEST(Arena, ReleaseReturnsToEmpty) {
  Arena a;
  a.alloc<double>(1000);
  EXPECT_GT(a.bytes_reserved(), 0u);
  a.release();
  EXPECT_EQ(a.bytes_reserved(), 0u);
  EXPECT_EQ(a.bytes_used(), 0u);
  // Still usable after release.
  double* d = a.alloc<double>(4);
  d[3] = 7.0;
  EXPECT_EQ(d[3], 7.0);
}

TEST(Arena, ZeroLengthAllocationsAreDistinctNonNull) {
  Arena a;
  int* p = a.alloc<int>(0);
  int* q = a.alloc<int>(0);
  EXPECT_NE(p, nullptr);
  EXPECT_NE(q, nullptr);
  EXPECT_NE(p, q);
}

TEST(Arena, MoveTransfersStorage) {
  Arena a(64);
  int* p = a.alloc<int>(10);
  p[9] = 99;
  Arena b = std::move(a);
  EXPECT_EQ(p[9], 99);
  int* q = b.alloc<int>(10);
  q[0] = 1;
  EXPECT_EQ(p[9], 99);
}

// Randomized single-thread stress: interleaved variable-size allocations
// with per-allocation fill patterns, verified before each reset. Under ASan
// this sweeps chunk boundaries and the coalescing path for overlap bugs.
TEST(ArenaStress, RandomizedPatternsSurviveResetCycles) {
  Rng rng(77);
  Arena a(128);
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<std::pair<std::uint8_t*, std::size_t>> spans;
    const int allocs = 1 + static_cast<int>(rng.uniform_int(40));
    for (int k = 0; k < allocs; ++k) {
      const std::size_t len = 1 + rng.uniform_int(2048);
      std::uint8_t* p = a.alloc<std::uint8_t>(len);
      std::memset(p, static_cast<int>(k & 0xFF), len);
      spans.emplace_back(p, len);
    }
    for (std::size_t k = 0; k < spans.size(); ++k)
      for (std::size_t j = 0; j < spans[k].second; ++j)
        ASSERT_EQ(spans[k].first[j], static_cast<std::uint8_t>(k & 0xFF))
            << "cycle " << cycle << " span " << k << " byte " << j;
    a.reset();
    EXPECT_EQ(a.bytes_used(), 0u);
  }
}

// Thread-per-arena stress for the TSan job: shards never share an Arena, so
// fully independent arenas hammered concurrently must be race-free.
TEST(ArenaStress, OneArenaPerThreadIsRaceFree) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Rng rng(1000 + t);
      Arena a(256);
      for (int cycle = 0; cycle < 30; ++cycle) {
        double* d = a.alloc<double>(1 + rng.uniform_int(500));
        d[0] = t;
        std::uint32_t* u = a.alloc_zeroed<std::uint32_t>(64);
        ASSERT_EQ(u[63], 0u);
        ASSERT_EQ(d[0], t);
        a.reset();
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace qlec
