// Differential battery pinning every qlec::simd backend to the scalar
// oracle BIT-FOR-BIT (ISSUE 6 satellite): randomized inputs across sizes
// that exercise full vector blocks, misaligned tails, and empty lanes, plus
// adversarial values — denormals, NaNs, ±inf, -0.0, negative distances —
// and the QLEC_SIMD forcing values. Comparison is on the raw bit pattern
// (memcmp of the doubles), so even NaN payloads must agree.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace qlec::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

// Sizes straddling every vector-width boundary: empty, sub-width, exact
// blocks, and block+tail for both 2-wide and 4-wide backends.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 257};

std::vector<Backend> vector_backends() {
  std::vector<Backend> out;
  if (kernels_for(Backend::kSse2) != nullptr) out.push_back(Backend::kSse2);
  if (kernels_for(Backend::kAvx2) != nullptr) out.push_back(Backend::kAvx2);
  return out;
}

const Kernels& oracle() { return *kernels_for(Backend::kScalar); }

bool same_bits(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

void expect_same_bits(const double* got, const double* want, std::size_t n,
                      const std::string& what) {
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_TRUE(same_bits(got[i], want[i]))
        << what << " diverges at [" << i << "]: got " << got[i] << " want "
        << want[i];
}

/// A buffer whose usable span starts `offset` doubles past the allocation,
/// so offset=1 breaks 16- and 32-byte alignment (the misaligned-tail case).
struct Span {
  explicit Span(std::size_t n, std::size_t offset)
      : store(n + offset, 0.0), off(offset), len(n) {}
  double* data() { return store.data() + off; }
  const double* data() const { return store.data() + off; }
  std::vector<double> store;
  std::size_t off, len;
};

/// Randomized values spanning magnitudes, plus adversarial specials salted
/// in at fixed positions so every size hits at least some of them.
void fill_adversarial(double* p, std::size_t n, Rng& rng,
                      bool allow_nan = true) {
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.uniform_int(10)) {
      case 0:
        p[i] = kDenorm * static_cast<double>(1 + rng.uniform_int(100));
        break;
      case 1:
        p[i] = -rng.uniform01() * 100.0;  // negative distance / value
        break;
      case 2:
        p[i] = rng.uniform01() * 1e12;
        break;
      case 3:
        p[i] = -0.0;
        break;
      case 4:
        p[i] = allow_nan && rng.uniform_int(2) == 0 ? kNan : kInf;
        break;
      case 5:
        p[i] = -kInf;
        break;
      default:
        p[i] = rng.uniform(-200.0, 200.0);
        break;
    }
  }
}

TEST(SimdOracle, Dist2AndDistMatchScalar) {
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    Rng rng(101);
    for (const std::size_t n : kSizes) {
      for (const std::size_t off : {std::size_t{0}, std::size_t{1}}) {
        Span xs(n, off), ys(n, off), zs(n, off), got(n, off), want(n, off);
        fill_adversarial(xs.data(), n, rng);
        fill_adversarial(ys.data(), n, rng);
        fill_adversarial(zs.data(), n, rng);
        const double cx = rng.uniform(-100.0, 100.0);
        const double cy = rng.uniform(-100.0, 100.0);
        const double cz = rng.uniform(-100.0, 100.0);
        k.dist2_to_point(xs.data(), ys.data(), zs.data(), n, cx, cy, cz,
                         got.data());
        oracle().dist2_to_point(xs.data(), ys.data(), zs.data(), n, cx, cy,
                                cz, want.data());
        expect_same_bits(got.data(), want.data(), n,
                         std::string("dist2/") + backend_name(b));
        k.dist_to_point(xs.data(), ys.data(), zs.data(), n, cx, cy, cz,
                        got.data());
        oracle().dist_to_point(xs.data(), ys.data(), zs.data(), n, cx, cy,
                               cz, want.data());
        expect_same_bits(got.data(), want.data(), n,
                         std::string("dist/") + backend_name(b));
      }
    }
  }
}

TEST(SimdOracle, RadioEnergyMatchesScalar) {
  // Parameters bracketing the Eq. 18 regimes, including a d0 that lands
  // inside the random distance range so both branches are taken, and
  // degenerate d0 = 0 / d0 = inf (single-branch) cases.
  const double kD0s[] = {0.0, 25.0, 87.7, kInf};
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    Rng rng(202);
    for (const std::size_t n : kSizes) {
      for (const double d0 : kD0s) {
        for (const std::size_t off : {std::size_t{0}, std::size_t{1}}) {
          Span d(n, off), got(n, off), want(n, off);
          fill_adversarial(d.data(), n, rng);
          const double bits = 4000.0;
          const double eps_fs = 10e-12, eps_mp = 0.0013e-12;
          const double e_elec = 50e-9;
          k.amp_energy(d.data(), n, bits, eps_fs, eps_mp, d0, got.data());
          oracle().amp_energy(d.data(), n, bits, eps_fs, eps_mp, d0,
                              want.data());
          expect_same_bits(got.data(), want.data(), n,
                           std::string("amp/") + backend_name(b));
          k.tx_energy(d.data(), n, bits, e_elec, eps_fs, eps_mp, d0,
                      got.data());
          oracle().tx_energy(d.data(), n, bits, e_elec, eps_fs, eps_mp, d0,
                             want.data());
          expect_same_bits(got.data(), want.data(), n,
                           std::string("tx/") + backend_name(b));
        }
      }
    }
  }
}

TEST(SimdOracle, ScaleDivMatchesScalar) {
  const double kDenoms[] = {3.7, 1e-300, 1e300, kDenorm};
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    Rng rng(303);
    for (const std::size_t n : kSizes) {
      for (const double denom : kDenoms) {
        Span num(n, 1), got(n, 1), want(n, 1);
        fill_adversarial(num.data(), n, rng);
        k.scale_div(num.data(), n, denom, got.data());
        oracle().scale_div(num.data(), n, denom, want.data());
        expect_same_bits(got.data(), want.data(), n,
                         std::string("scale_div/") + backend_name(b));
      }
    }
  }
}

QScanConsts random_consts(Rng& rng) {
  QScanConsts c;
  c.x_src = rng.uniform01();
  c.v_src = rng.uniform(-5.0, 5.0);
  c.g = rng.uniform01();
  c.alpha1 = rng.uniform01() * 2.0;
  c.alpha2 = rng.uniform01() * 2.0;
  c.beta1 = rng.uniform01();
  c.beta2 = rng.uniform01();
  c.gamma = rng.uniform01();
  return c;
}

TEST(SimdOracle, QScanMatchesScalar) {
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    Rng rng(404);
    for (const std::size_t n : kSizes) {
      for (const std::size_t off : {std::size_t{0}, std::size_t{1}}) {
        Span p(n, off), y(n, off), xt(n, off), vt(n, off);
        Span got(n, off), want(n, off);
        for (std::size_t i = 0; i < n; ++i) p.data()[i] = rng.uniform01();
        fill_adversarial(y.data(), n, rng);
        fill_adversarial(xt.data(), n, rng);
        fill_adversarial(vt.data(), n, rng);
        const QScanConsts c = random_consts(rng);
        k.q_scan(p.data(), y.data(), xt.data(), vt.data(), n, c, got.data());
        oracle().q_scan(p.data(), y.data(), xt.data(), vt.data(), n, c,
                        want.data());
        expect_same_bits(got.data(), want.data(), n,
                         std::string("q_scan/") + backend_name(b));
      }
    }
  }
}

TEST(SimdOracle, ArgExtremaMatchScalarIncludingTies) {
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    Rng rng(505);
    for (const std::size_t n : kSizes) {
      for (int rep = 0; rep < 8; ++rep) {
        Span v(n, static_cast<std::size_t>(rep % 2));
        // Draw from a tiny value set so duplicate extrema are common: the
        // first-wins tie rule is the property under test.
        for (std::size_t i = 0; i < n; ++i) {
          const int pick = rng.uniform_int(6);
          v.data()[i] = pick == 5 ? kNan : static_cast<double>(pick);
        }
        ASSERT_EQ(k.argmax(v.data(), n), oracle().argmax(v.data(), n))
            << "argmax/" << backend_name(b) << " n=" << n;
        ASSERT_EQ(k.argmin(v.data(), n), oracle().argmin(v.data(), n))
            << "argmin/" << backend_name(b) << " n=" << n;
      }
    }
  }
}

TEST(SimdOracle, ArgExtremaGuardNaNAndHandleAllDead) {
  // All-NaN and all--inf inputs model "every candidate dead": the scalar
  // loop never updates and reports npos; every backend must agree.
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    for (const std::size_t n : kSizes) {
      const std::vector<double> nans(n, kNan);
      const std::vector<double> neg_inf(n, -kInf);
      const std::vector<double> pos_inf(n, kInf);
      EXPECT_EQ(k.argmax(nans.data(), n), npos);
      EXPECT_EQ(k.argmin(nans.data(), n), npos);
      EXPECT_EQ(k.argmax(neg_inf.data(), n), npos);
      EXPECT_EQ(k.argmin(pos_inf.data(), n), npos);
      if (n > 0) {
        EXPECT_EQ(k.argmax(pos_inf.data(), n), 0u);
        EXPECT_EQ(k.argmin(neg_inf.data(), n), 0u);
      }
    }
  }
}

TEST(SimdOracle, SingleElementAndEmpty) {
  for (const Backend b : vector_backends()) {
    const Kernels& k = *kernels_for(b);
    EXPECT_EQ(k.argmax(nullptr, 0), npos);
    EXPECT_EQ(k.argmin(nullptr, 0), npos);
    const double one = 42.0;
    EXPECT_EQ(k.argmax(&one, 1), 0u);
    EXPECT_EQ(k.argmin(&one, 1), 0u);
    // Empty-lane calls must be no-ops, not crashes.
    k.dist2_to_point(nullptr, nullptr, nullptr, 0, 0, 0, 0, nullptr);
    k.amp_energy(nullptr, 0, 1, 1, 1, 1, nullptr);
    k.q_scan(nullptr, nullptr, nullptr, nullptr, 0, QScanConsts{}, nullptr);
  }
}

class SimdEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("QLEC_SIMD");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
  }
  void TearDown() override {
    if (had_prev_)
      ::setenv("QLEC_SIMD", prev_.c_str(), 1);
    else
      ::unsetenv("QLEC_SIMD");
    reset_to_env();
  }
  bool had_prev_ = false;
  std::string prev_;
};

TEST_F(SimdEnvTest, EveryForcingValueResolvesToAnAvailableBackend) {
  const struct {
    const char* value;
    Backend want;  // expected when that backend is available
  } kCases[] = {
      {"scalar", Backend::kScalar},
      {"sse2", Backend::kSse2},
      {"avx2", Backend::kAvx2},
  };
  for (const auto& c : kCases) {
    ::setenv("QLEC_SIMD", c.value, 1);
    const Backend got = reset_to_env();
    EXPECT_TRUE(available(got)) << c.value;
    if (available(c.want)) {
      EXPECT_EQ(got, c.want) << c.value;
    }
    EXPECT_EQ(&kernels(), kernels_for(got));
  }
  ::setenv("QLEC_SIMD", "auto", 1);
  EXPECT_TRUE(available(reset_to_env()));
  ::setenv("QLEC_SIMD", "bogus-backend", 1);
  EXPECT_TRUE(available(reset_to_env()));  // falls back, never crashes
}

TEST_F(SimdEnvTest, ForcedScalarStillPassesDifferentialSpotCheck) {
  // Run one kernel through the public dispatch under each forcing value and
  // pin it to the oracle — the dispatch layer itself must never change
  // results, whatever QLEC_SIMD says.
  Rng rng(606);
  const std::size_t n = 33;
  std::vector<double> p(n), y(n), xt(n), vt(n), got(n), want(n);
  for (auto* v : {&p, &y, &xt, &vt})
    fill_adversarial(v->data(), n, rng, /*allow_nan=*/false);
  const QScanConsts c = random_consts(rng);
  oracle().q_scan(p.data(), y.data(), xt.data(), vt.data(), n, c,
                  want.data());
  for (const char* mode : {"scalar", "sse2", "avx2", "auto"}) {
    ::setenv("QLEC_SIMD", mode, 1);
    reset_to_env();
    kernels().q_scan(p.data(), y.data(), xt.data(), vt.data(), n, c,
                     got.data());
    expect_same_bits(got.data(), want.data(), n,
                     std::string("dispatch q_scan under QLEC_SIMD=") + mode);
  }
}

TEST(SimdDispatch, ForceClampsToAvailable) {
  const Backend prev = active();
  EXPECT_EQ(force(Backend::kScalar), Backend::kScalar);
  EXPECT_EQ(active(), Backend::kScalar);
  const Backend b = force(Backend::kAvx2);
  EXPECT_TRUE(available(b));  // clamped if avx2 is unavailable
  force(prev);
}

TEST(SimdDispatch, BackendNamesAreStable) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kSse2), "sse2");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_TRUE(available(Backend::kScalar));
  EXPECT_NE(kernels_for(Backend::kScalar), nullptr);
}

}  // namespace
}  // namespace qlec::simd
