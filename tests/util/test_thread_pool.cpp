#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qlec {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ResultsAreOrderedByIndexNotCompletion) {
  ThreadPool pool(4);
  std::vector<int> out(32, -1);
  pool.parallel_for(32, [&out](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&counter] { ++counter; });
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace qlec
