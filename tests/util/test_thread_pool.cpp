#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace qlec {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ResultsAreOrderedByIndexNotCompletion) {
  ThreadPool pool(4);
  std::vector<int> out(32, -1);
  pool.parallel_for(32, [&out](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2);
}

TEST(ThreadPool, ParallelForDeterministicWithPerSeedRngStreams) {
  // The experiment runner's contract: each index derives its own Rng from
  // its seed, so a pool fan-out must reproduce the serial trajectory
  // bit-for-bit regardless of scheduling.
  constexpr std::size_t kN = 48;
  const auto draw = [](std::size_t i) {
    Rng rng(1000 + i);
    std::uint64_t acc = 0;
    for (int k = 0; k < 100; ++k) acc ^= rng.next_u64();
    return acc;
  };
  std::vector<std::uint64_t> serial(kN);
  for (std::size_t i = 0; i < kN; ++i) serial[i] = draw(i);

  ThreadPool pool(4);
  std::vector<std::uint64_t> parallel(kN);
  pool.parallel_for(kN, [&](std::size_t i) { parallel[i] = draw(i); });
  EXPECT_EQ(parallel, serial);
  // And a second fan-out with a different thread count agrees too.
  ThreadPool pool2(2);
  std::vector<std::uint64_t> again(kN);
  pool2.parallel_for(kN, [&](std::size_t i) { again[i] = draw(i); });
  EXPECT_EQ(again, serial);
}

TEST(ThreadPool, SubmitPreservesExceptionMessage) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::invalid_argument("bad seed 17"); });
  try {
    f.get();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "bad seed 17");
  }
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.submit([&ran] { ++ran; });
  f.get();
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(3);
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a crash
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  pool.shutdown();
  for (auto& f : futures) f.get();  // all ran, none dropped
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&counter] { ++counter; });
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace qlec
