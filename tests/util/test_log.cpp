#include "util/log.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log::level()) {}
  ~LogLevelGuard() { log::set_level(saved_); }

 private:
  log::Level saved_;
};

TEST(Log, LevelThresholding) {
  LogLevelGuard guard;
  log::set_level(log::Level::kWarn);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_FALSE(log::enabled(log::Level::kInfo));
  EXPECT_TRUE(log::enabled(log::Level::kWarn));
  EXPECT_TRUE(log::enabled(log::Level::kError));
}

TEST(Log, OffDisablesEverything) {
  LogLevelGuard guard;
  log::set_level(log::Level::kOff);
  EXPECT_FALSE(log::enabled(log::Level::kError));
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  log::set_level(log::Level::kDebug);
  EXPECT_EQ(log::level(), log::Level::kDebug);
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
}

TEST(Log, VariadicFormattingDoesNotCrash) {
  LogLevelGuard guard;
  log::set_level(log::Level::kOff);  // discard output
  log::info("x=", 42, " y=", 3.14, " s=", std::string("str"));
  log::debug("nothing");
  log::warn();
  log::error("e");
  SUCCEED();
}

}  // namespace
}  // namespace qlec
