#include "util/log.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qlec {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log::level()) {}
  ~LogLevelGuard() { log::set_level(saved_); }

 private:
  log::Level saved_;
};

TEST(Log, LevelThresholding) {
  LogLevelGuard guard;
  log::set_level(log::Level::kWarn);
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  EXPECT_FALSE(log::enabled(log::Level::kInfo));
  EXPECT_TRUE(log::enabled(log::Level::kWarn));
  EXPECT_TRUE(log::enabled(log::Level::kError));
}

TEST(Log, OffDisablesEverything) {
  LogLevelGuard guard;
  log::set_level(log::Level::kOff);
  EXPECT_FALSE(log::enabled(log::Level::kError));
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  log::set_level(log::Level::kDebug);
  EXPECT_EQ(log::level(), log::Level::kDebug);
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
}

TEST(Log, VariadicFormattingDoesNotCrash) {
  LogLevelGuard guard;
  log::set_level(log::Level::kOff);  // discard output
  log::info("x=", 42, " y=", 3.14, " s=", std::string("str"));
  log::debug("nothing");
  log::warn();
  log::error("e");
  SUCCEED();
}

/// RAII: restores the stderr default even when an assertion fails.
class WriterGuard {
 public:
  ~WriterGuard() { log::set_writer(nullptr); }
};

TEST(Log, CustomWriterReceivesLevelAndMessage) {
  LogLevelGuard guard;
  WriterGuard writer_guard;
  log::set_level(log::Level::kDebug);
  std::vector<std::pair<log::Level, std::string>> got;
  log::set_writer([&got](log::Level l, const std::string& m) {
    got.emplace_back(l, m);
  });
  log::info("count=", 3);
  log::error("boom");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, log::Level::kInfo);
  EXPECT_EQ(got[0].second, "count=3");
  EXPECT_EQ(got[1].first, log::Level::kError);
  EXPECT_EQ(got[1].second, "boom");
}

TEST(Log, WriterStillGatedByLevel) {
  LogLevelGuard guard;
  WriterGuard writer_guard;
  log::set_level(log::Level::kError);
  int calls = 0;
  log::set_writer([&calls](log::Level, const std::string&) { ++calls; });
  log::debug("dropped");
  log::warn("dropped");
  log::error("kept");
  EXPECT_EQ(calls, 1);
}

TEST(Log, ConcurrentEmitsArriveWholeAndComplete) {
  // The pool-mode contract (header comment): emits serialize on one mutex,
  // so each message arrives intact — never torn or interleaved — no matter
  // how many replication threads log at once.
  LogLevelGuard guard;
  WriterGuard writer_guard;
  log::set_level(log::Level::kInfo);
  std::mutex mu;
  std::vector<std::string> got;
  log::set_writer([&](log::Level, const std::string& m) {
    const std::lock_guard<std::mutex> lock(mu);
    got.push_back(m);
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        log::info("thread-", t, "-msg-", i, "-end");
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_EQ(got.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  for (const std::string& m : got) {
    EXPECT_EQ(m.rfind("thread-", 0), 0u) << m;
    EXPECT_NE(m.find("-end"), std::string::npos) << m;
  }
}

}  // namespace
}  // namespace qlec
