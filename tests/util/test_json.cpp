#include "util/json.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter j;
  j.begin_object();
  j.end_object();
  EXPECT_EQ(j.str(), "{}");
  JsonWriter a;
  a.begin_array();
  a.end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter j;
  j.begin_object();
  j.key("name");
  j.value("qlec");
  j.key("pdr");
  j.value(0.5);
  j.key("count");
  j.value(42);
  j.key("ok");
  j.value(true);
  j.key("missing");
  j.null();
  j.end_object();
  EXPECT_EQ(j.str(),
            "{\"name\":\"qlec\",\"pdr\":0.5,\"count\":42,\"ok\":true,"
            "\"missing\":null}");
}

TEST(JsonWriter, ArrayCommas) {
  JsonWriter j;
  j.begin_array();
  j.value(1);
  j.value(2);
  j.value(3);
  j.end_array();
  EXPECT_EQ(j.str(), "[1,2,3]");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter j;
  j.begin_object();
  j.key("rows");
  j.begin_array();
  j.begin_object();
  j.key("x");
  j.value(1);
  j.end_object();
  j.begin_object();
  j.key("x");
  j.value(2);
  j.end_object();
  j.end_array();
  j.key("tail");
  j.value("end");
  j.end_object();
  EXPECT_EQ(j.str(), "{\"rows\":[{\"x\":1},{\"x\":2}],\"tail\":\"end\"}");
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, DoubleRoundTrips) {
  JsonWriter j;
  j.begin_array();
  const double v = 0.1 + 0.2;
  j.value(v);
  j.end_array();
  const std::string body = j.str().substr(1, j.str().size() - 2);
  EXPECT_EQ(std::stod(body), v);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter j;
  j.begin_array();
  j.value(std::numeric_limits<double>::infinity());
  j.value(std::numeric_limits<double>::quiet_NaN());
  j.end_array();
  EXPECT_EQ(j.str(), "[null,null]");
}

TEST(JsonWriter, NegativeAndLargeIntegers) {
  JsonWriter j;
  j.begin_array();
  j.value(static_cast<long long>(-7));
  j.value(static_cast<unsigned long long>(1) << 62);
  j.end_array();
  EXPECT_EQ(j.str(), "[-7,4611686018427387904]");
}

TEST(JsonParser, ScalarDocuments) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2")->as_double(), -1250.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
  EXPECT_EQ(parse_json("  42  ")->as_int(), 42);
}

TEST(JsonParser, ObjectsPreserveMemberOrder) {
  const auto doc = parse_json("{\"b\":1,\"a\":{\"nested\":[1,2,3]}}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->members().size(), 2u);
  EXPECT_EQ(doc->members()[0].first, "b");
  EXPECT_EQ(doc->members()[1].first, "a");
  const JsonValue* nested = doc->get("a")->get("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_EQ(nested->size(), 3u);
  EXPECT_EQ(nested->at(2).as_int(), 3);
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(JsonParser, StringEscapesDecodeIncludingUnicode) {
  const auto doc =
      parse_json("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(doc.has_value());
  // A = 'A'; é = e-acute (2-byte UTF-8); the surrogate pair is
  // the 4-byte grinning-face emoji.
  EXPECT_EQ(doc->as_string(), "a\"b\\c\n\tA\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonParser, RejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(parse_json("", &err).has_value());
  EXPECT_FALSE(parse_json("{", &err).has_value());
  EXPECT_FALSE(parse_json("[1,]", &err).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}", &err).has_value());
  EXPECT_FALSE(parse_json("{'a':1}", &err).has_value());
  EXPECT_FALSE(parse_json("01", &err).has_value());
  EXPECT_FALSE(parse_json("1 2", &err).has_value());  // trailing garbage
  EXPECT_FALSE(parse_json("nul", &err).has_value());
  EXPECT_FALSE(parse_json("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse_json("\"bad\\q\"", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(JsonParser, RejectsPathologicalNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse_json(deep).has_value());
}

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonWriter j;
  j.begin_object();
  j.key("name");
  j.value("q\"lec\n");
  j.key("pdr");
  j.value(0.1 + 0.2);
  j.key("count");
  j.value(static_cast<unsigned long long>(1) << 53);
  j.key("tags");
  j.begin_array();
  j.value(true);
  j.null();
  j.end_array();
  j.end_object();

  std::string err;
  const auto doc = parse_json(j.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->get("name")->as_string(), "q\"lec\n");
  EXPECT_DOUBLE_EQ(doc->get("pdr")->as_double(), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(doc->get("count")->as_double(), 9007199254740992.0);
  EXPECT_TRUE(doc->get("tags")->at(0).as_bool());
  EXPECT_TRUE(doc->get("tags")->at(1).is_null());
}

TEST(JsonDump, CompactDumpIsParseInverse) {
  const std::string text =
      R"({"a":1,"b":[true,null,"x\n"],"c":{"d":0.5,"e":-3}})";
  const auto doc = parse_json(text);
  ASSERT_TRUE(doc.has_value());
  // Member order and exact values are preserved, so dump == input here.
  EXPECT_EQ(dump_json(*doc), text);
  // And the generic inverse property: parse(dump(v)) == dump-stable.
  const auto again = parse_json(dump_json(*doc));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(dump_json(*again), dump_json(*doc));
}

TEST(JsonDump, PrettyPrintNests) {
  const auto doc = parse_json(R"({"a":{"b":[1,2]},"c":[]})");
  const std::string pretty = dump_json(*doc, 2);
  EXPECT_NE(pretty.find("{\n  \"a\": {\n    \"b\": [\n      1,"),
            std::string::npos)
      << pretty;
  EXPECT_NE(pretty.find("\"c\": []"), std::string::npos) << pretty;
  // Pretty form parses back to the same tree.
  EXPECT_EQ(dump_json(*parse_json(pretty)), dump_json(*doc));
}

TEST(JsonDump, WriteValueSplicesIntoStream) {
  const auto doc = parse_json(R"({"inner":[1,"two"]})");
  JsonWriter w;
  w.begin_object();
  w.key("echo");
  write_value(w, *doc);
  w.key("after");
  w.value(7);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"echo":{"inner":[1,"two"]},"after":7})");
}

TEST(JsonDump, LargeIntegersStayIntegral) {
  const auto doc = parse_json("[9007199254740992,-42,0]");
  EXPECT_EQ(dump_json(*doc), "[9007199254740992,-42,0]");
}

}  // namespace
}  // namespace qlec
