#include "util/json.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter j;
  j.begin_object();
  j.end_object();
  EXPECT_EQ(j.str(), "{}");
  JsonWriter a;
  a.begin_array();
  a.end_array();
  EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter j;
  j.begin_object();
  j.key("name");
  j.value("qlec");
  j.key("pdr");
  j.value(0.5);
  j.key("count");
  j.value(42);
  j.key("ok");
  j.value(true);
  j.key("missing");
  j.null();
  j.end_object();
  EXPECT_EQ(j.str(),
            "{\"name\":\"qlec\",\"pdr\":0.5,\"count\":42,\"ok\":true,"
            "\"missing\":null}");
}

TEST(JsonWriter, ArrayCommas) {
  JsonWriter j;
  j.begin_array();
  j.value(1);
  j.value(2);
  j.value(3);
  j.end_array();
  EXPECT_EQ(j.str(), "[1,2,3]");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter j;
  j.begin_object();
  j.key("rows");
  j.begin_array();
  j.begin_object();
  j.key("x");
  j.value(1);
  j.end_object();
  j.begin_object();
  j.key("x");
  j.value(2);
  j.end_object();
  j.end_array();
  j.key("tail");
  j.value("end");
  j.end_object();
  EXPECT_EQ(j.str(), "{\"rows\":[{\"x\":1},{\"x\":2}],\"tail\":\"end\"}");
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, DoubleRoundTrips) {
  JsonWriter j;
  j.begin_array();
  const double v = 0.1 + 0.2;
  j.value(v);
  j.end_array();
  const std::string body = j.str().substr(1, j.str().size() - 2);
  EXPECT_EQ(std::stod(body), v);
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter j;
  j.begin_array();
  j.value(std::numeric_limits<double>::infinity());
  j.value(std::numeric_limits<double>::quiet_NaN());
  j.end_array();
  EXPECT_EQ(j.str(), "[null,null]");
}

TEST(JsonWriter, NegativeAndLargeIntegers) {
  JsonWriter j;
  j.begin_array();
  j.value(static_cast<long long>(-7));
  j.value(static_cast<unsigned long long>(1) << 62);
  j.end_array();
  EXPECT_EQ(j.str(), "[-7,4611686018427387904]");
}

}  // namespace
}  // namespace qlec
