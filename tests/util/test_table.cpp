#include "util/table.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22.0"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.0"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"k", "metric"});
  t.add_row({"1", "10"});
  t.add_row({"100", "2"});
  const std::string out = t.render();
  // Each line should have the same length (aligned columns).
  std::size_t line_len = 0;
  std::size_t start = 0;
  bool first = true;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (first) {
      line_len = len;
      first = false;
    } else {
      EXPECT_EQ(len, line_len);
    }
    start = end + 1;
  }
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(FmtSci, Format) {
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(FmtPm, CombinesMeanAndError) {
  EXPECT_EQ(fmt_pm(1.5, 0.25, 2), "1.50 +/- 0.25");
}

}  // namespace
}  // namespace qlec
