// End-to-end runs exercising the paper's headline claims at reduced scale:
// QLEC vs FCM vs k-means on PDR, energy, and lifespan.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace qlec {
namespace {

ExperimentConfig paper_like(double lambda, int rounds = 20,
                            std::size_t seeds = 3) {
  ExperimentConfig cfg;
  cfg.scenario.n = 100;
  cfg.scenario.m_side = 200.0;
  cfg.scenario.initial_energy = 5.0;
  cfg.sim.rounds = rounds;
  cfg.sim.slots_per_round = 20;
  cfg.sim.mean_interarrival = lambda;
  cfg.sim.queue_capacity = 32;
  cfg.sim.service_per_slot = 8;
  cfg.seeds = seeds;
  cfg.protocol.qlec.total_rounds = rounds;
  return cfg;
}

TEST(EndToEnd, QlecRunsFullPaperConfiguration) {
  const AggregatedMetrics m = run_experiment("qlec", paper_like(4.0));
  EXPECT_GT(m.generated.mean(), 0.0);
  EXPECT_GT(m.pdr.mean(), 0.5);
  EXPECT_GT(m.total_energy.mean(), 0.0);
  EXPECT_GT(m.heads_per_round.mean(), 1.0);
}

TEST(EndToEnd, QlecPdrBeatsKmeansWhenCongested) {
  const ExperimentConfig cfg = paper_like(2.0);
  const AggregatedMetrics q = run_experiment("qlec", cfg);
  const AggregatedMetrics k = run_experiment("kmeans", cfg);
  // Fig. 3(a): QLEC retains a higher delivery rate under congestion.
  EXPECT_GT(q.pdr.mean(), k.pdr.mean() - 0.02);
}

TEST(EndToEnd, QlecPdrBeatsFcmWhenCongested) {
  const ExperimentConfig cfg = paper_like(2.0);
  const AggregatedMetrics q = run_experiment("qlec", cfg);
  const AggregatedMetrics f = run_experiment("fcm", cfg);
  EXPECT_GT(q.pdr.mean(), f.pdr.mean() - 0.02);
}

TEST(EndToEnd, FcmLatencyHigherThanQlec) {
  // The FCM comparator's multi-hop uplink adds relay delay.
  const ExperimentConfig cfg = paper_like(4.0);
  const AggregatedMetrics q = run_experiment("qlec", cfg);
  const AggregatedMetrics f = run_experiment("fcm", cfg);
  EXPECT_GT(f.mean_latency.mean(), q.mean_latency.mean() * 0.9);
}

TEST(EndToEnd, LifespanQlecOutlastsKmeans) {
  // Lifespan mode: tiny batteries, high death line pressure; run until the
  // first node dies (Fig. 3(c) metric).
  ExperimentConfig cfg = paper_like(4.0, /*rounds=*/400, /*seeds=*/3);
  cfg.scenario.initial_energy = 3.0;
  cfg.sim.trace.stop_at_first_death = true;
  // R = a-priori lifespan estimate for the Eq. 2 / Eq. 4 schedules.
  cfg.protocol.qlec.total_rounds = 60;
  const AggregatedMetrics q = run_experiment("qlec", cfg);
  const AggregatedMetrics k = run_experiment("kmeans", cfg);
  EXPECT_GT(q.first_death.mean(), 1.0);
  // Energy-aware rotation should outlast energy-blind geometric heads.
  EXPECT_GT(q.first_death.mean(), k.first_death.mean() * 0.8);
}

TEST(EndToEnd, DirectUplinkWastesEnergyVsQlec) {
  const ExperimentConfig cfg = paper_like(4.0);
  const AggregatedMetrics q = run_experiment("qlec", cfg);
  const AggregatedMetrics d = run_experiment("direct", cfg);
  // Clustering exists for a reason: direct multi-path uplinks burn much
  // more energy per delivered packet.
  const double q_per_packet =
      q.total_energy.mean() / std::max(q.delivered.mean(), 1.0);
  const double d_per_packet =
      d.total_energy.mean() / std::max(d.delivered.mean(), 1.0);
  EXPECT_GT(d_per_packet, q_per_packet);
}

TEST(EndToEnd, TerrainDeploymentWorks) {
  ExperimentConfig cfg = paper_like(4.0, 10, 2);
  cfg.deployment = Deployment::kTerrain;
  const AggregatedMetrics m = run_experiment("qlec", cfg);
  EXPECT_GT(m.pdr.mean(), 0.3);
}

TEST(EndToEnd, QlecEnergySpreadIsEven) {
  // Fig. 4's qualitative claim: consumption rates are evenly spread. Check
  // the coefficient of variation across nodes stays moderate.
  ExperimentConfig cfg = paper_like(4.0, 20, 1);
  const auto results = run_replications("qlec", cfg);
  ASSERT_EQ(results.size(), 1u);
  RunningStats per_node;
  for (const double c : results[0].per_node_consumed) per_node.add(c);
  EXPECT_GT(per_node.mean(), 0.0);
  EXPECT_LT(per_node.cv(), 3.0);
}

}  // namespace
}  // namespace qlec
