// Additional property sweeps: radio-model laws, HEED coverage across
// ranges, Q-learning vs exact DP on random MDPs, and QLEC's paper-literal
// (raw-joules) reward mode.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/heed.hpp"
#include "core/qlec_routing.hpp"
#include "geom/sampling.hpp"
#include "rl/value_iteration.hpp"
#include "sim/experiment.hpp"

namespace qlec {
namespace {

// --- Radio model laws over a (bits, distance) grid -----------------------

class RadioLaw
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RadioLaw, TxDecomposesIntoElectronicsPlusAmp) {
  const auto [bits, d] = GetParam();
  const RadioModel m;
  EXPECT_NEAR(m.tx_energy(bits, d),
              bits * m.params().e_elec + m.amp_energy(bits, d), 1e-18);
}

TEST_P(RadioLaw, AmpRegimeMatchesDistance) {
  const auto [bits, d] = GetParam();
  const RadioModel m;
  const double amp = m.amp_energy(bits, d);
  if (d < m.d0()) {
    EXPECT_NEAR(amp, bits * m.params().eps_fs * d * d, 1e-18);
  } else {
    EXPECT_NEAR(amp, bits * m.params().eps_mp * std::pow(d, 4), 1e-18);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RadioLaw,
    ::testing::Combine(::testing::Values(500.0, 4000.0, 20000.0),
                       ::testing::Values(1.0, 50.0, 87.0, 88.0, 200.0)));

// --- HEED coverage across cluster ranges ---------------------------------

class HeedRange : public ::testing::TestWithParam<double> {};

TEST_P(HeedRange, EveryNodeWithinTwoRangesOfAHead) {
  const double range = GetParam();
  Rng rng(11);
  const Aabb box = Aabb::cube(100.0);
  Network net(sample_uniform(120, box, rng), 5.0, box.center(), box);
  HeedConfig cfg;
  cfg.cluster_range = range;
  const HeedResult r = heed_elect(net, cfg, 0, rng, 0.0);
  ASSERT_FALSE(r.heads.empty());
  for (const SensorNode& n : net.nodes()) {
    double best = 1e18;
    for (const int h : r.heads) best = std::min(best, net.dist(n.id, h));
    EXPECT_LE(best, 2.0 * range + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, HeedRange,
                         ::testing::Values(10.0, 20.0, 35.0, 60.0, 120.0));

// --- Q-learning vs exact DP on random MDPs --------------------------------

Mdp random_mdp(Rng& rng, std::size_t states, std::size_t actions) {
  Mdp m = Mdp::make(states, actions);
  m.terminal[states - 1] = true;
  for (std::size_t s = 0; s + 1 < states; ++s) {
    for (std::size_t a = 0; a < actions; ++a) {
      // Two-branch stochastic transitions to random successors.
      const double p = rng.uniform(0.2, 0.8);
      const std::size_t s1 = rng.uniform_int(states);
      const std::size_t s2 = rng.uniform_int(states);
      m.add_transition(s, a, s1, p, rng.uniform(-1.0, 1.0));
      m.add_transition(s, a, s2, 1.0 - p, rng.uniform(-1.0, 1.0));
    }
  }
  return m;
}

class RandomMdp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMdp, ValueIterationSatisfiesBellmanOptimality) {
  Rng rng(GetParam());
  const Mdp m = random_mdp(rng, 6, 3);
  const double gamma = 0.9;
  const ValueIterationResult r = value_iteration(m, gamma);
  for (std::size_t s = 0; s + 1 < m.states; ++s) {
    double best = -1e18;
    for (std::size_t a = 0; a < m.actions; ++a)
      best = std::max(best, q_from_values(m, r.v, s, a, gamma));
    EXPECT_NEAR(r.v[s], best, 1e-8) << "state " << s;
    // The recorded policy attains the max.
    EXPECT_NEAR(q_from_values(m, r.v, s, r.policy[s], gamma), best, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMdp,
                         ::testing::Values(1u, 7u, 13u, 42u, 99u));

// --- Paper-literal raw-joules reward mode ---------------------------------

TEST(RawJoulesMode, FullPipelineStillConservesAndDelivers) {
  ExperimentConfig cfg;
  cfg.scenario.n = 50;
  cfg.sim.rounds = 8;
  cfg.sim.slots_per_round = 10;
  cfg.seeds = 2;
  cfg.protocol.qlec.total_rounds = 8;
  cfg.protocol.qlec.x_scale = 1.0;  // raw joules, as printed in the paper
  cfg.protocol.qlec.y_scale = 1.0;
  cfg.protocol.qlec.y_scale_bs = 1.0;
  for (const SimResult& r : run_replications("qlec", cfg)) {
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
    EXPECT_GT(r.pdr(), 0.5);
  }
}

TEST(RawJoulesMode, DistanceTermIsNumericallyInvisible) {
  // The documented pathology (DESIGN.md §6): with raw joules, y ~ 1e-5 J
  // cannot move a reward built from x ~ 5 J terms.
  const std::vector<Vec3> pts{{100, 100, 50}, {110, 100, 50},
                              {100, 180, 50}};
  const Network net(pts, 5.0, {100, 100, 200}, Aabb::cube(200.0));
  QlecParams p;
  p.x_scale = 1.0;
  p.y_scale = 1.0;
  p.y_scale_bs = 1.0;
  const QlecRouter router(p, RadioModel{}, net.size());
  const double near = router.reward_success(net, 0, 1, 4000.0);
  const double far = router.reward_success(net, 0, 2, 4000.0);
  EXPECT_NEAR(near, far, 1e-3);  // 10 m vs 80 m: nearly indistinguishable
  EXPECT_GT(near, far);          // ...though technically ordered
}

// --- Aggregation-mode invariants ------------------------------------------

class AggregationMode : public ::testing::TestWithParam<Aggregation> {};

TEST_P(AggregationMode, ConservationHoldsForAllProtocols) {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 5;
  cfg.sim.slots_per_round = 10;
  cfg.sim.aggregation = GetParam();
  cfg.seeds = 1;
  cfg.protocol.qlec.total_rounds = 5;
  for (const char* name : {"qlec", "fcm", "tl-leach"}) {
    for (const SimResult& r : run_replications(name, cfg)) {
      EXPECT_EQ(r.generated,
                r.delivered + r.lost_link + r.lost_queue + r.lost_dead)
          << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, AggregationMode,
                         ::testing::Values(Aggregation::kRatioCompress,
                                           Aggregation::kFixedSummary));

}  // namespace
}  // namespace qlec
