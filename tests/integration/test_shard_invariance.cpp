// Shard-invariance battery for the sharded round core (DESIGN.md §12).
//
// The determinism contract of util/exec.hpp is that sim.exec.shards is a
// pure performance knob: every shard count — including 1, the fully serial
// core — must produce bit-identical traces. This suite proves it end to
// end: for every protocol in the registry, the golden-trace digests at
// shard counts {2, 3, 7, 16} must equal the serial digests AND the
// committed tests/golden/ files (so a sharded run can never drift from the
// frozen replay baseline either). Fault-storm and telemetry variants cover
// the paths where sharded phases interleave with fault liveness flips and
// observational instrumentation.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace qlec {
namespace {

#ifndef QLEC_GOLDEN_DIR
#error "QLEC_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

// Shard counts chosen to hit the interesting decompositions: the serial
// baseline, even/odd splits, a count that does not divide typical node
// counts, and one far above the pool width of any CI machine.
const int kShardCounts[] = {1, 2, 3, 7, 16};

/// The SAME frozen scenario as tests/sim/test_golden_traces.cpp — that is
/// the point: a sharded run must reproduce the committed digests exactly.
ExperimentConfig golden_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 10;
  cfg.sim.slots_per_round = 10;
  cfg.sim.trace.record = true;
  cfg.seeds = 2;
  cfg.base_seed = 42;
  cfg.protocol.qlec.total_rounds = 10;
  return cfg;
}

std::vector<std::string> digests_for(const std::string& protocol,
                                     ExperimentConfig cfg, int shards) {
  cfg.sim.exec.shards = shards;
  const auto results = run_replications(protocol, cfg);
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const SimResult& r : results) out.push_back(trace_digest_hex(r.trace));
  return out;
}

std::vector<std::string> read_golden(const std::string& protocol) {
  std::ifstream in(std::string(QLEC_GOLDEN_DIR) + "/" + protocol + ".digest");
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  return lines;
}

TEST(ShardInvariance, EveryProtocolMatchesCommittedGoldensAtEveryShardCount) {
  const ExperimentConfig cfg = golden_config();
  for (const std::string& name : protocol_names()) {
    const std::vector<std::string> golden = read_golden(name);
    ASSERT_FALSE(golden.empty())
        << name << ": missing committed golden digests";
    for (const int shards : kShardCounts) {
      EXPECT_EQ(digests_for(name, cfg, shards), golden)
          << name << " diverged from the committed goldens at shards="
          << shards << " — the sharded round core is NOT bit-identical "
          << "to the serial one.";
    }
  }
}

TEST(ShardInvariance, LargerScenarioIsShardCountInvariant) {
  // Big enough that the grid-backed assignment path and the sharded HELLO
  // walk actually engage (k_opt well above the brute-scan threshold).
  ExperimentConfig cfg = golden_config();
  cfg.scenario.n = 300;
  cfg.seeds = 1;
  const std::vector<std::string> serial = digests_for("qlec", cfg, 1);
  for (const int shards : kShardCounts)
    EXPECT_EQ(digests_for("qlec", cfg, shards), serial) << shards;
}

TEST(ShardInvariance, FaultStormDigestsAreShardCountInvariant) {
  // A dense fault mix: crashes, stuns, fades, degradation episodes and BS
  // outages all enabled, so shard-phase inputs (liveness, batteries)
  // churn mid-run. The fault layer draws from its own replayed stream;
  // sharding must not perturb it or the main stream.
  ExperimentConfig cfg = golden_config();
  cfg.sim.fault.enabled = true;
  cfg.sim.fault.hazards.crash_per_node = 0.02;
  cfg.sim.fault.hazards.stun_per_node = 0.04;
  cfg.sim.fault.hazards.fade_per_node = 0.02;
  cfg.sim.fault.hazards.degrade_episode = 0.15;
  cfg.sim.fault.hazards.bs_outage = 0.05;
  for (const std::string& name : protocol_names()) {
    const std::vector<std::string> serial = digests_for(name, cfg, 1);
    for (const int shards : kShardCounts)
      EXPECT_EQ(digests_for(name, cfg, shards), serial)
          << name << " at shards=" << shards;
  }
}

TEST(ShardInvariance, TelemetryAndAuditRunsAreShardCountInvariant) {
  // Observational layers on top of the sharded core: neither telemetry
  // counters nor the per-round auditor may perturb — or be perturbed by —
  // the shard decomposition.
  ExperimentConfig cfg = golden_config();
  cfg.sim.telemetry.enabled = true;
  cfg.sim.audit.enabled = true;
  cfg.sim.audit.throw_on_violation = true;
  const std::vector<std::string> serial = digests_for("qlec", cfg, 1);
  EXPECT_EQ(serial, read_golden("qlec"))
      << "telemetry+audit must not change the trace";
  for (const int shards : kShardCounts)
    EXPECT_EQ(digests_for("qlec", cfg, shards), serial) << shards;
}

TEST(ShardInvariance, TerrainWorldDigestsAreShardCountInvariant) {
  // The full environment stack at once — terrain + obstacle occlusion,
  // underwater amp scaling, depth-decayed harvesting, and an orbiting
  // sink — on top of the audited sharded core. Env and trajectory are
  // RNG-free pure functions of geometry and the round index, so the
  // shard decomposition must not perturb a terrain-aware world either.
  ExperimentConfig cfg = golden_config();
  cfg.sim.audit.enabled = true;
  cfg.sim.audit.throw_on_violation = true;
  cfg.sim.env.enabled = true;
  cfg.sim.env.atten_per_unit = 0.015;
  cfg.sim.env.sever_depth = 120.0;
  cfg.sim.env.obstacles.push_back(
      EnvObstacle{Aabb{{40, 40, 0}, {120, 120, 160}}, 0.01});
  cfg.sim.env.terrain = EnvTerrain{true, 0.25, 0.5};
  cfg.sim.env.water = EnvWater{true, 0.9, 0.002, 0.005};
  cfg.sim.env.harvest = EnvHarvest{0.01, 0.02, 0.1};
  cfg.sim.bs_trajectory.kind = TrajectoryKind::kOrbit;
  cfg.sim.bs_trajectory.orbit_center = {100, 100, 190};
  cfg.sim.bs_trajectory.orbit_radius = 60.0;
  cfg.sim.bs_trajectory.orbit_period = 4;
  for (const std::string& name : {std::string("qlec"), std::string("leach")}) {
    const std::vector<std::string> serial = digests_for(name, cfg, 1);
    for (const int shards : kShardCounts)
      EXPECT_EQ(digests_for(name, cfg, shards), serial)
          << name << " at shards=" << shards;
  }
}

TEST(ShardInvariance, ShardedRerunsAreBitIdentical) {
  // Same shard count twice: the pool schedule varies between runs, the
  // digests must not.
  ExperimentConfig cfg = golden_config();
  EXPECT_EQ(digests_for("qlec", cfg, 7), digests_for("qlec", cfg, 7));
}

}  // namespace
}  // namespace qlec
