// Cross-protocol invariants checked over a (protocol x lambda) grid.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/experiment.hpp"

namespace qlec {
namespace {

class ProtocolLambdaGrid
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {
 protected:
  static ExperimentConfig config(double lambda) {
    ExperimentConfig cfg;
    cfg.scenario.n = 50;
    cfg.sim.rounds = 8;
    cfg.sim.slots_per_round = 12;
    cfg.sim.mean_interarrival = lambda;
    cfg.seeds = 2;
    cfg.protocol.qlec.total_rounds = 8;
    return cfg;
  }
};

TEST_P(ProtocolLambdaGrid, PacketConservation) {
  const auto [name, lambda] = GetParam();
  for (const SimResult& r :
       run_replications(name, config(lambda))) {
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead)
        << name << " lambda=" << lambda;
  }
}

TEST_P(ProtocolLambdaGrid, EnergyNeverExceedsProvisioned) {
  const auto [name, lambda] = GetParam();
  const ExperimentConfig cfg = config(lambda);
  const double provisioned =
      static_cast<double>(cfg.scenario.n) * cfg.scenario.initial_energy;
  for (const SimResult& r : run_replications(name, cfg)) {
    EXPECT_LE(r.total_energy_consumed, provisioned + 1e-9);
    EXPECT_GE(r.total_energy_consumed, 0.0);
  }
}

TEST_P(ProtocolLambdaGrid, LedgerMatchesBatteries) {
  const auto [name, lambda] = GetParam();
  for (const SimResult& r : run_replications(name, config(lambda))) {
    EXPECT_NEAR(r.energy.total(), r.total_energy_consumed,
                r.total_energy_consumed * 1e-9 + 1e-12);
  }
}

TEST_P(ProtocolLambdaGrid, PdrAndLatencyWellFormed) {
  const auto [name, lambda] = GetParam();
  for (const SimResult& r : run_replications(name, config(lambda))) {
    EXPECT_GE(r.pdr(), 0.0);
    EXPECT_LE(r.pdr(), 1.0);
    EXPECT_EQ(r.latency.count(), r.delivered);
    if (r.delivered > 0) {
      EXPECT_GE(r.latency.min(), 0.0);
      EXPECT_LT(r.latency.mean(),
                static_cast<double>(r.rounds_completed + 1) * 12.0);
    }
  }
}

TEST_P(ProtocolLambdaGrid, PerNodeRatesBounded) {
  const auto [name, lambda] = GetParam();
  for (const SimResult& r : run_replications(name, config(lambda))) {
    for (const double rate : r.per_node_rate) {
      EXPECT_GE(rate, 0.0);
      EXPECT_LE(rate, 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProtocolLambdaGrid,
    ::testing::Combine(::testing::Values("qlec", "kmeans", "fcm", "leach",
                                         "deec", "direct"),
                       ::testing::Values(2.0, 8.0)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_lambda" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// Congestion monotonicity: generated traffic strictly grows as lambda
// shrinks, for every protocol.
class CongestionMonotonicity
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CongestionMonotonicity, TrafficGrowsWithCongestion) {
  const std::string name = GetParam();
  ExperimentConfig idle;
  idle.scenario.n = 40;
  idle.sim.rounds = 6;
  idle.sim.slots_per_round = 10;
  idle.sim.mean_interarrival = 16.0;
  idle.seeds = 2;
  ExperimentConfig congested = idle;
  congested.sim.mean_interarrival = 2.0;
  const AggregatedMetrics a = run_experiment(name, idle);
  const AggregatedMetrics b = run_experiment(name, congested);
  EXPECT_GT(b.generated.mean(), 4.0 * a.generated.mean());
}

INSTANTIATE_TEST_SUITE_P(Protocols, CongestionMonotonicity,
                         ::testing::Values("qlec", "kmeans", "fcm"));

// Failure injection: protocols must survive mid-run node deaths.
class FailureInjection : public ::testing::TestWithParam<std::string> {};

TEST_P(FailureInjection, SurvivesMassNodeDeath) {
  const std::string name = GetParam();
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.scenario.initial_energy = 5e-4;  // most nodes die mid-run
  cfg.sim.rounds = 60;
  cfg.sim.slots_per_round = 10;
  cfg.sim.mean_interarrival = 2.0;
  cfg.seeds = 2;
  cfg.protocol.qlec.total_rounds = 60;
  for (const SimResult& r : run_replications(name, cfg)) {
    // Conservation still holds through deaths and stranded packets.
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
    EXPECT_GE(r.first_death_round, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, FailureInjection,
                         ::testing::Values("qlec", "kmeans", "fcm", "leach",
                                           "deec"));

}  // namespace
}  // namespace qlec
