// Property battery for the schema binding: serialize -> parse must be the
// identity over the representable config space. 200+ randomized
// ExperimentConfigs (seeded Rng, every enum corner, nested fault plans and
// telemetry blocks) plus targeted corners the fuzzer would only hit by
// luck.
#include "config/schema.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace qlec::config {
namespace {

template <typename T>
T pick(Rng& rng, std::initializer_list<T> values) {
  auto it = values.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(
                       rng.uniform_int(std::uint64_t{values.size()})));
  return *it;
}

FaultEvent random_event(Rng& rng) {
  FaultEvent e;
  e.kind = pick(rng, {FaultKind::kCrash, FaultKind::kStun,
                      FaultKind::kBlackout, FaultKind::kLinkDegrade,
                      FaultKind::kBsOutage, FaultKind::kBatteryFade});
  e.round = static_cast<int>(rng.uniform_int(std::uint64_t{50}));
  e.node = static_cast<int>(rng.uniform_int(std::int64_t{-1}, 99));
  e.duration = static_cast<int>(rng.uniform_int(std::uint64_t{10}));
  e.severity = rng.uniform01();
  e.permanent = rng.bernoulli(0.5);
  e.region = Aabb{{rng.uniform(0, 50), rng.uniform(0, 50), 0.0},
                  {rng.uniform(50, 200), rng.uniform(50, 200), 200.0}};
  return e;
}

/// Every field gets a randomized (but in-domain) value so a field the
/// writer or reader skips cannot hide behind its default.
ExperimentConfig random_config(Rng& rng) {
  ExperimentConfig c;
  c.scenario.n = 1 + rng.uniform_int(std::uint64_t{1000});
  c.scenario.m_side = rng.uniform(1.0, 500.0);
  c.scenario.initial_energy = rng.uniform(0.0, 10.0);
  c.scenario.energy_heterogeneity = rng.uniform01();
  c.scenario.bs = pick(rng, {BsPlacement::kCenter, BsPlacement::kTopFaceCenter,
                             BsPlacement::kCorner, BsPlacement::kExternal});

  c.sim.rounds = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{100}));
  c.sim.slots_per_round =
      1 + static_cast<int>(rng.uniform_int(std::uint64_t{40}));
  c.sim.mean_interarrival = rng.uniform(-1.0, 16.0);
  c.sim.packet_bits = rng.uniform(1.0, 8000.0);
  c.sim.queue_capacity = 1 + rng.uniform_int(std::uint64_t{64});
  c.sim.service_per_slot =
      static_cast<int>(rng.uniform_int(std::uint64_t{16}));
  c.sim.compression = rng.uniform01();
  c.sim.aggregation =
      pick(rng, {Aggregation::kRatioCompress, Aggregation::kFixedSummary});
  c.sim.death_line = rng.uniform(0.0, 0.1);
  c.sim.max_retries = static_cast<int>(rng.uniform_int(std::uint64_t{5}));
  c.sim.radio.e_elec = rng.uniform(1e-9, 100e-9);
  c.sim.radio.e_da = rng.uniform(1e-9, 10e-9);
  c.sim.radio.eps_fs = rng.uniform(1e-12, 20e-12);
  c.sim.radio.eps_mp = rng.uniform(1e-16, 1e-14);
  c.sim.link.d_ref = rng.uniform(10.0, 400.0);
  c.sim.link.p_floor = rng.uniform01();
  c.sim.link.bs_reliability_factor = rng.uniform01();
  c.sim.mobility.kind = pick(rng, {MobilityKind::kNone,
                                   MobilityKind::kRandomWalk,
                                   MobilityKind::kRandomWaypoint});
  c.sim.mobility.speed = rng.uniform(0.0, 20.0);
  c.sim.mobility.arrival_tolerance = rng.uniform(0.1, 5.0);
  c.sim.harvest_per_round = rng.uniform(0.0, 0.01);
  c.sim.idle_listen_j_per_slot = rng.uniform(0.0, 1e-6);
  c.sim.audit.enabled = rng.bernoulli(0.5);
  c.sim.audit.throw_on_violation = rng.bernoulli(0.5);
  c.sim.trace.record = rng.bernoulli(0.5);
  c.sim.trace.stop_at_first_death = rng.bernoulli(0.5);

  c.sim.fault.enabled = rng.bernoulli(0.5);
  c.sim.fault.seed = rng.uniform_int(std::uint64_t{1} << 53);
  const std::size_t events = rng.uniform_int(std::uint64_t{4});
  for (std::size_t i = 0; i < events; ++i)
    c.sim.fault.plan.events.push_back(random_event(rng));
  c.sim.fault.hazards.crash_per_node = rng.uniform01();
  c.sim.fault.hazards.stun_per_node = rng.uniform01();
  c.sim.fault.hazards.stun_rounds =
      static_cast<int>(rng.uniform_int(std::uint64_t{6}));
  c.sim.fault.hazards.fade_per_node = rng.uniform01();
  c.sim.fault.hazards.fade_fraction = rng.uniform01();
  c.sim.fault.hazards.degrade_episode = rng.uniform01();
  c.sim.fault.hazards.degrade_rounds =
      static_cast<int>(rng.uniform_int(std::uint64_t{6}));
  c.sim.fault.hazards.degrade_factor = rng.uniform01();
  c.sim.fault.hazards.bs_outage = rng.uniform01();
  c.sim.fault.hazards.bs_outage_rounds =
      static_cast<int>(rng.uniform_int(std::uint64_t{4}));

  c.sim.mac.enabled = rng.bernoulli(0.5);
  c.sim.mac.seed = rng.uniform_int(std::uint64_t{1} << 53);
  c.sim.mac.airtime_subslots =
      1 + static_cast<int>(rng.uniform_int(std::uint64_t{8}));
  c.sim.mac.cca_range = rng.uniform(1.0, 500.0);
  c.sim.mac.capture_ratio = rng.uniform(1.0, 10.0);
  c.sim.mac.max_retries = static_cast<int>(rng.uniform_int(std::uint64_t{8}));
  c.sim.mac.cw_min = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{16}));
  c.sim.mac.cw_max = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{128}));
  c.sim.mac.duty_cycle = rng.uniform(0.01, 1.0);
  c.sim.mac.idle_j_per_subslot = rng.uniform(0.0, 1e-3);

  c.sim.telemetry.enabled = rng.bernoulli(0.5);
  c.sim.telemetry.sink = pick(rng, {obs::TelemetryOptions::Sink::kNull,
                                    obs::TelemetryOptions::Sink::kRing,
                                    obs::TelemetryOptions::Sink::kFile});
  c.sim.telemetry.events_path =
      rng.bernoulli(0.5) ? "ev \"quoted\"\n.jsonl" : "";
  c.sim.telemetry.ring_capacity = 1 + rng.uniform_int(std::uint64_t{8192});
  c.sim.telemetry.per_packet_events = rng.bernoulli(0.5);
  c.sim.telemetry.trace_phases = rng.bernoulli(0.5);
  c.sim.telemetry.trace_path = rng.bernoulli(0.5) ? "trace.json" : "";
  c.sim.telemetry.metrics_path = rng.bernoulli(0.5) ? "metrics.json" : "";

  c.sim.env.enabled = rng.bernoulli(0.5);
  c.sim.env.atten_per_unit = rng.uniform(0.0, 0.1);
  c.sim.env.sever_depth = rng.uniform(0.0, 200.0);
  const std::size_t obstacles = rng.uniform_int(std::uint64_t{4});
  for (std::size_t i = 0; i < obstacles; ++i) {
    EnvObstacle o;
    o.box = Aabb{{rng.uniform(0, 100), rng.uniform(0, 100),
                  rng.uniform(0, 100)},
                 {rng.uniform(100, 200), rng.uniform(100, 200),
                  rng.uniform(100, 200)}};
    o.extra_atten = rng.uniform(0.0, 0.05);
    c.sim.env.obstacles.push_back(o);
  }
  c.sim.env.terrain.enabled = rng.bernoulli(0.5);
  c.sim.env.terrain.amplitude_frac = rng.uniform(0.0, 1.0);
  c.sim.env.terrain.base_frac = rng.uniform01();
  c.sim.env.water.enabled = rng.bernoulli(0.5);
  c.sim.env.water.surface_frac = rng.uniform01();
  c.sim.env.water.alpha_per_unit = rng.uniform(0.0, 0.05);
  c.sim.env.water.amp_depth_scale = rng.uniform(0.0, 0.05);
  c.sim.env.harvest.per_round = rng.uniform(0.0, 0.1);
  c.sim.env.harvest.depth_decay = rng.uniform(0.0, 0.2);
  c.sim.env.harvest.min_factor = rng.uniform01();

  c.sim.bs_trajectory.kind =
      pick(rng, {TrajectoryKind::kNone, TrajectoryKind::kWaypoint,
                 TrajectoryKind::kOrbit});
  const std::size_t waypoints = rng.uniform_int(std::uint64_t{5});
  for (std::size_t i = 0; i < waypoints; ++i)
    c.sim.bs_trajectory.waypoints.push_back(
        {rng.uniform(0, 200), rng.uniform(0, 200), rng.uniform(0, 200)});
  c.sim.bs_trajectory.speed = rng.uniform(0.0, 50.0);
  c.sim.bs_trajectory.loop = rng.bernoulli(0.5);
  c.sim.bs_trajectory.orbit_center = {rng.uniform(0, 200),
                                      rng.uniform(0, 200),
                                      rng.uniform(0, 200)};
  c.sim.bs_trajectory.orbit_radius = rng.uniform(0.0, 100.0);
  c.sim.bs_trajectory.orbit_period =
      1 + static_cast<int>(rng.uniform_int(std::uint64_t{12}));

  c.protocol.name = pick<std::string>(
      rng, {"qlec", "kmeans", "fcm", "leach", "deec", "heed", "ideec",
            "tl-leach", "qelar", "direct", "q-leach", "reech-me",
            "leach-rlc"});
  c.protocol.qlec.gamma = rng.uniform01();
  c.protocol.qlec.alpha1 = rng.uniform(-2.0, 2.0);
  c.protocol.qlec.alpha2 = rng.uniform(-2.0, 2.0);
  c.protocol.qlec.beta1 = rng.uniform(-2.0, 2.0);
  c.protocol.qlec.beta2 = rng.uniform(-2.0, 2.0);
  c.protocol.qlec.compression = rng.uniform01();
  c.protocol.qlec.g = rng.uniform(0.0, 1.0);
  c.protocol.qlec.l = rng.uniform(0.0, 1000.0);
  c.protocol.qlec.epsilon = rng.uniform01();
  c.protocol.qlec.x_scale = rng.uniform(-1.0, 10.0);
  c.protocol.qlec.y_scale = rng.uniform(-1.0, 10.0);
  c.protocol.qlec.y_scale_bs = rng.uniform(-1.0, 10.0);
  c.protocol.qlec.x_bs = rng.uniform(0.0, 2.0);
  c.protocol.qlec.total_rounds =
      1 + static_cast<int>(rng.uniform_int(std::uint64_t{100}));
  c.protocol.qlec.use_energy_threshold = rng.bernoulli(0.5);
  c.protocol.qlec.reduce_redundancy = rng.bernoulli(0.5);
  c.protocol.qlec.top_up_to_k = rng.bernoulli(0.5);
  c.protocol.qlec.hello_bits = rng.uniform(0.0, 500.0);
  c.protocol.qlec.force_k = static_cast<int>(rng.uniform_int(std::uint64_t{20}));
  c.protocol.k = rng.uniform_int(std::uint64_t{20});
  c.protocol.fcm_levels =
      1 + static_cast<int>(rng.uniform_int(std::uint64_t{5}));
  c.protocol.death_line = rng.uniform(0.0, 0.1);
  c.protocol.hello_bits = rng.uniform(0.0, 500.0);
  c.protocol.radio.eps_mp = rng.uniform(1e-16, 1e-14);
  c.protocol.sector_mode =
      pick(rng, {SectorMode::kQuadrant, SectorMode::kOctant});
  c.protocol.controller.kind =
      pick(rng, {ControllerKind::kRlLite, ControllerKind::kPassthrough});
  c.protocol.controller.alpha = rng.uniform01();
  c.protocol.controller.gamma = rng.uniform01();
  c.protocol.controller.epsilon = rng.uniform01();

  c.seeds = 1 + rng.uniform_int(std::uint64_t{16});
  c.base_seed = rng.uniform_int(std::uint64_t{1} << 53);
  c.deployment = pick(rng, {Deployment::kUniform, Deployment::kTerrain});
  return c;
}

TEST(ConfigRoundTrip, DefaultConfigSurvives) {
  const ExperimentConfig def;
  EXPECT_EQ(parse_experiment(experiment_to_json(def)), def);
}

TEST(ConfigRoundTrip, EmptyDocumentYieldsAllDefaults) {
  // Absent fields keep the compiled defaults (backward compatibility).
  EXPECT_EQ(parse_experiment("{}"), ExperimentConfig{});
}

TEST(ConfigRoundTrip, TwoHundredRandomConfigs) {
  Rng rng(20260807);
  for (int i = 0; i < 220; ++i) {
    const ExperimentConfig cfg = random_config(rng);
    const std::string text = experiment_to_json(cfg);
    ExperimentConfig back;
    ASSERT_NO_THROW(back = parse_experiment(text)) << "case " << i << "\n"
                                                   << text;
    EXPECT_EQ(back, cfg) << "case " << i << "\n" << text;
    // And the serialization itself is a fixed point.
    EXPECT_EQ(experiment_to_json(back), text) << "case " << i;
  }
}

TEST(ConfigRoundTrip, EnumCornersAllSurvive) {
  ExperimentConfig cfg;
  for (const auto bs : {BsPlacement::kCenter, BsPlacement::kTopFaceCenter,
                        BsPlacement::kCorner, BsPlacement::kExternal}) {
    for (const auto agg :
         {Aggregation::kRatioCompress, Aggregation::kFixedSummary}) {
      for (const auto mob : {MobilityKind::kNone, MobilityKind::kRandomWalk,
                             MobilityKind::kRandomWaypoint}) {
        for (const auto sink : {obs::TelemetryOptions::Sink::kNull,
                                obs::TelemetryOptions::Sink::kRing,
                                obs::TelemetryOptions::Sink::kFile}) {
          for (const auto dep :
               {Deployment::kUniform, Deployment::kTerrain}) {
            cfg.scenario.bs = bs;
            cfg.sim.aggregation = agg;
            cfg.sim.mobility.kind = mob;
            cfg.sim.telemetry.sink = sink;
            cfg.deployment = dep;
            EXPECT_EQ(parse_experiment(experiment_to_json(cfg)), cfg);
          }
        }
      }
    }
  }
}

TEST(ConfigRoundTrip, AllFaultKindsSurvive) {
  ExperimentConfig cfg;
  for (const auto kind :
       {FaultKind::kCrash, FaultKind::kStun, FaultKind::kBlackout,
        FaultKind::kLinkDegrade, FaultKind::kBsOutage,
        FaultKind::kBatteryFade}) {
    FaultEvent e;
    e.kind = kind;
    e.round = 3;
    e.node = 7;
    e.severity = 0.25;
    cfg.sim.fault.plan.events.push_back(e);
  }
  cfg.sim.fault.enabled = true;
  EXPECT_EQ(parse_experiment(experiment_to_json(cfg)), cfg);
}

TEST(ConfigRoundTrip, ExtremeRepresentableIntegersSurvive) {
  ExperimentConfig cfg;
  cfg.base_seed = (std::uint64_t{1} << 53);  // largest exact seed
  cfg.sim.fault.seed = (std::uint64_t{1} << 53) - 1;
  cfg.seeds = 1;
  cfg.scenario.n = 1;
  EXPECT_EQ(parse_experiment(experiment_to_json(cfg)), cfg);
}

TEST(ConfigRoundTrip, PathologicalStringsSurviveEscaping) {
  ExperimentConfig cfg;
  cfg.sim.telemetry.events_path = "a\"b\\c\nd\te\x01f/unicode\xC3\xA9";
  cfg.sim.telemetry.trace_path = std::string("nul\0byte-free", 3);
  EXPECT_EQ(parse_experiment(experiment_to_json(cfg)), cfg);
}

TEST(ConfigRoundTrip, TrajectoryKindCornersSurvive) {
  for (const auto kind : {TrajectoryKind::kNone, TrajectoryKind::kWaypoint,
                          TrajectoryKind::kOrbit}) {
    ExperimentConfig cfg;
    cfg.sim.bs_trajectory.kind = kind;
    cfg.sim.bs_trajectory.waypoints = {{0, 0, 0}, {200, 200, 200}};
    cfg.sim.bs_trajectory.loop = true;
    EXPECT_EQ(parse_experiment(experiment_to_json(cfg)), cfg)
        << trajectory_kind_name(kind);
  }
  // An empty waypoint list must survive too (orbit configs carry none).
  ExperimentConfig cfg;
  cfg.sim.bs_trajectory.kind = TrajectoryKind::kOrbit;
  cfg.sim.bs_trajectory.waypoints.clear();
  EXPECT_EQ(parse_experiment(experiment_to_json(cfg)), cfg);
}

TEST(ConfigRoundTrip, EnumNamesAreBijective) {
  EXPECT_STREQ(bs_placement_name(BsPlacement::kTopFaceCenter),
               "top_face_center");
  EXPECT_STREQ(aggregation_name(Aggregation::kFixedSummary), "fixed_summary");
  EXPECT_STREQ(mobility_kind_name(MobilityKind::kRandomWaypoint),
               "random_waypoint");
  EXPECT_STREQ(telemetry_sink_name(obs::TelemetryOptions::Sink::kFile),
               "file");
  EXPECT_STREQ(trajectory_kind_name(TrajectoryKind::kWaypoint), "waypoint");
  EXPECT_STREQ(trajectory_kind_name(TrajectoryKind::kOrbit), "orbit");
}

}  // namespace
}  // namespace qlec::config
