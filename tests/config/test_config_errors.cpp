// Adversarial battery for the schema binding: every rejection must be a
// ConfigError whose path() names the exact offending node and whose what()
// reads "<path>: <problem>". Covers malformed documents, wrong-typed
// leaves, duplicate keys, unknown keys, NaN/Inf smuggling, depth-cap
// nesting, out-of-domain values, and a deterministic mutation fuzzer over
// a valid document.
#include "config/schema.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace qlec::config {
namespace {

/// Asserts `text` is rejected and the error anchors at `path` with a
/// message containing `fragment`.
void expect_rejected(const std::string& text, const std::string& path,
                     const std::string& fragment = "") {
  try {
    parse_experiment(text);
    FAIL() << "accepted: " << text;
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.path(), path) << text << "\n  what(): " << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "what() = \"" << e.what() << "\" lacks \"" << fragment << '"';
    if (!path.empty()) {
      EXPECT_EQ(std::string(e.what()).rfind(path + ": ", 0), 0u)
          << "what() must start with the path: " << e.what();
    }
  }
}

TEST(ConfigErrors, MalformedJsonIsConfigError) {
  expect_rejected("", "", "malformed JSON");
  expect_rejected("{", "", "malformed JSON");
  expect_rejected("{\"scenario\": }", "", "malformed JSON");
  expect_rejected("{} trailing", "", "malformed JSON");
  expect_rejected("'single quotes'", "", "malformed JSON");
}

TEST(ConfigErrors, RootMustBeObject) {
  expect_rejected("[]", "", "expected object, got array");
  expect_rejected("42", "", "expected object, got 42");
  expect_rejected("null", "", "expected object, got null");
  expect_rejected("\"qlec\"", "", "expected object");
}

TEST(ConfigErrors, WrongTypedLeaves) {
  expect_rejected(R"({"scenario": {"n": "many"}})", "scenario.n",
                  "expected integer ≥ 1, got \"many\"");
  expect_rejected(R"({"scenario": {"n": 2.5}})", "scenario.n",
                  "expected integer");
  expect_rejected(R"({"sim": {"rounds": true}})", "sim.rounds",
                  "expected integer ≥ 1, got true");
  expect_rejected(R"({"sim": {"trace": {"record": "yes"}}})",
                  "sim.trace.record", "expected true or false, got \"yes\"");
  expect_rejected(R"({"sim": {"telemetry": {"events_path": 3}}})",
                  "sim.telemetry.events_path", "expected string, got 3");
  expect_rejected(R"({"scenario": 7})", "scenario", "expected object, got 7");
  expect_rejected(R"({"sim": {"radio": []}})", "sim.radio",
                  "expected object, got array");
}

TEST(ConfigErrors, OutOfDomainNumbers) {
  expect_rejected(R"({"scenario": {"n": 0}})", "scenario.n", "≥ 1");
  expect_rejected(R"({"scenario": {"m_side": 0}})", "scenario.m_side",
                  "number > 0, got 0");
  expect_rejected(R"({"scenario": {"energy_heterogeneity": 1.5}})",
                  "scenario.energy_heterogeneity",
                  "expected number in [0, 1], got 1.5");
  expect_rejected(R"({"sim": {"compression": -0.1}})", "sim.compression",
                  "in [0, 1]");
  expect_rejected(
      R"({"sim": {"fault": {"hazards": {"crash_per_node": "high"}}}})",
      "sim.fault.hazards.crash_per_node",
      "expected number in [0, 1], got \"high\"");
  expect_rejected(R"({"sim": {"radio": {"eps_mp": 0}}})", "sim.radio.eps_mp",
                  "number > 0");
  expect_rejected(R"({"protocol": {"controller": {"alpha": 1.5}}})",
                  "protocol.controller.alpha",
                  "expected number in [0, 1], got 1.5");
  expect_rejected(R"({"protocol": {"controller": {"epsilon": -0.2}}})",
                  "protocol.controller.epsilon", "in [0, 1]");
  expect_rejected(R"({"seeds": 0})", "seeds", "≥ 1");
  expect_rejected(R"({"base_seed": -1})", "base_seed", "≥ 0");
}

TEST(ConfigErrors, MacBlockValidated) {
  // The sim.mac.* schema: strict unknown-key rejection plus the domain
  // bounds documented in sim/mac/mac.hpp, all path-qualified.
  expect_rejected(R"({"sim": {"mac": {"slot_len": 3}}})", "sim.mac.slot_len",
                  "unknown key");
  expect_rejected(R"({"sim": {"mac": {"airtime_subslots": 0}}})",
                  "sim.mac.airtime_subslots", "expected integer ≥ 1, got 0");
  expect_rejected(R"({"sim": {"mac": {"airtime_subslots": -2}}})",
                  "sim.mac.airtime_subslots", "≥ 1");
  expect_rejected(R"({"sim": {"mac": {"cca_range": 0}}})", "sim.mac.cca_range",
                  "expected number > 0, got 0");
  expect_rejected(R"({"sim": {"mac": {"capture_ratio": 0.5}}})",
                  "sim.mac.capture_ratio", "expected number ≥ 1, got 0.5");
  expect_rejected(R"({"sim": {"mac": {"max_retries": -1}}})",
                  "sim.mac.max_retries", "≥ 0");
  expect_rejected(R"({"sim": {"mac": {"cw_min": 0}}})", "sim.mac.cw_min",
                  "≥ 1");
  expect_rejected(R"({"sim": {"mac": {"cw_max": 0}}})", "sim.mac.cw_max",
                  "≥ 1");
  expect_rejected(R"({"sim": {"mac": {"duty_cycle": 0}}})",
                  "sim.mac.duty_cycle", "expected number in [0, 1], got 0");
  expect_rejected(R"({"sim": {"mac": {"duty_cycle": 1.5}}})",
                  "sim.mac.duty_cycle", "in [0, 1]");
  expect_rejected(R"({"sim": {"mac": {"idle_j_per_subslot": -0.1}}})",
                  "sim.mac.idle_j_per_subslot", "≥ 0");
  expect_rejected(R"({"sim": {"mac": {"enabled": "on"}}})", "sim.mac.enabled",
                  "expected true or false, got \"on\"");
  expect_rejected(R"({"sim": {"mac": {"seed": -1}}})", "sim.mac.seed", "≥ 0");
  expect_rejected(R"({"sim": {"mac": []}})", "sim.mac",
                  "expected object, got array");
}

TEST(ConfigErrors, IntegersBeyondExactDoubleRangeRejected) {
  // 2^53 + 2 is representable as a double but not an exact odd integer
  // neighborhood; anything above the exact window is refused outright.
  expect_rejected(R"({"base_seed": 9007199254740994})", "base_seed",
                  "expected integer");
  expect_rejected(R"({"base_seed": 1e300})", "base_seed", "expected integer");
}

TEST(ConfigErrors, NanAndInfRejected) {
  // Bare tokens are malformed JSON at the parser layer...
  expect_rejected(R"({"sim": {"death_line": NaN}})", "", "malformed JSON");
  expect_rejected(R"({"sim": {"death_line": Infinity}})", "",
                  "malformed JSON");
  // ...and overflow-to-inf literals die at the binding layer.
  expect_rejected(R"({"sim": {"death_line": 1e999}})", "sim.death_line",
                  "finite number");
  expect_rejected(R"({"sim": {"death_line": -1e999}})", "sim.death_line",
                  "finite number");
}

TEST(ConfigErrors, UnknownKeysRejectedAtEveryLevel) {
  expect_rejected(R"({"scenariox": {}})", "scenariox", "unknown key");
  expect_rejected(R"({"scenario": {"nn": 5}})", "scenario.nn", "unknown key");
  expect_rejected(R"({"sim": {"fault": {"hazard": {}}}})", "sim.fault.hazard",
                  "unknown key");
  expect_rejected(R"({"protocol": {"qlec": {"gama": 0.9}}})",
                  "protocol.qlec.gama", "unknown key");
  expect_rejected(R"({"sim": {"telemetry": {"sinks": "ring"}}})",
                  "sim.telemetry.sinks", "unknown key");
}

TEST(ConfigErrors, DuplicateKeysRejected) {
  expect_rejected(R"({"seeds": 1, "seeds": 2})", "seeds", "duplicate key");
  expect_rejected(R"({"scenario": {"n": 5, "n": 6}})", "scenario.n",
                  "duplicate key");
  expect_rejected(
      R"({"sim": {"audit": {"enabled": true, "enabled": true}}})",
      "sim.audit.enabled", "duplicate key");
}

TEST(ConfigErrors, EnumTokensValidated) {
  expect_rejected(R"({"scenario": {"bs": "middle"}})", "scenario.bs",
                  "expected one of center|top_face_center|corner|external, "
                  "got \"middle\"");
  expect_rejected(R"({"sim": {"aggregation": "zip"}})", "sim.aggregation",
                  "ratio_compress|fixed_summary");
  expect_rejected(R"({"sim": {"mobility": {"kind": 3}}})",
                  "sim.mobility.kind", "none|random_walk|random_waypoint");
  expect_rejected(R"({"deployment": "underwater"}      )", "deployment",
                  "uniform|terrain");
  expect_rejected(R"({"protocol": {"name": "aodv"}})", "protocol.name",
                  "got \"aodv\"");
  expect_rejected(R"({"protocol": {"sector_mode": "hemisphere"}})",
                  "protocol.sector_mode", "quadrant|octant");
  expect_rejected(R"({"protocol": {"controller": {"kind": "ppo"}}})",
                  "protocol.controller.kind", "rl-lite|passthrough");
  expect_rejected(R"({"sim": {"fault": {"plan": {"events":
      [{"kind": "meteor"}]}}}})",
                  "sim.fault.plan.events[0].kind", "crash|");
}

TEST(ConfigErrors, ArrayElementPathsAreIndexed) {
  expect_rejected(R"({"sim": {"fault": {"plan": {"events":
      [{"round": 1}, {"severity": 2}]}}}})",
                  "sim.fault.plan.events[1].severity", "in [0, 1]");
  expect_rejected(R"({"sim": {"fault": {"plan": {"events": {}}}}})",
                  "sim.fault.plan.events", "expected array, got object");
  expect_rejected(
      R"({"sim": {"fault": {"plan": {"events": [{"region":
      {"lo": [1, 2]}}]}}}})",
      "sim.fault.plan.events[0].region.lo", "[x, y, z]");
}

TEST(ConfigErrors, DepthCapNesting) {
  // The JSON parser caps nesting at 128 levels; a hostile document dies
  // there as malformed input, not by overflowing the binder's stack.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "{\"sim\":";
  deep += "null";
  for (int i = 0; i < 200; ++i) deep += "}";
  expect_rejected(deep, "", "malformed JSON");
}

TEST(ConfigErrors, MutationFuzzValidDocumentNeverCrashes) {
  // Deterministic byte-level fuzz: mutate a valid document and require that
  // parse_experiment either succeeds or throws ConfigError — never anything
  // else, never a crash.
  const std::string base = experiment_to_json(ExperimentConfig{});
  Rng rng(0xF002);
  int rejected = 0, accepted = 0;
  for (int i = 0; i < 600; ++i) {
    std::string doc = base;
    const int edits = 1 + static_cast<int>(rng.uniform_int(std::uint64_t{3}));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.uniform_int(std::uint64_t{doc.size()});
      switch (rng.uniform_int(std::uint64_t{3})) {
        case 0: doc[pos] = static_cast<char>(rng.uniform_int(
                    std::int64_t{32}, 126)); break;
        case 1: doc.erase(pos, 1); break;
        default: doc.insert(pos, 1, static_cast<char>(rng.uniform_int(
                     std::int64_t{32}, 126)));
      }
    }
    try {
      (void)parse_experiment(doc);
      ++accepted;
    } catch (const ConfigError&) {
      ++rejected;
    }
  }
  // The overwhelming majority of random mutations must be caught.
  EXPECT_GT(rejected, 400) << "accepted " << accepted << " mutants";
}

TEST(ConfigErrors, EnvBlockValidated) {
  // Every sim.env.* knob: wrong types, out-of-domain values, unknown keys,
  // and indexed obstacle paths — all anchored at the exact offending node.
  expect_rejected(R"({"sim": {"env": []}})", "sim.env",
                  "expected object, got array");
  expect_rejected(R"({"sim": {"env": {"enabled": "on"}}})",
                  "sim.env.enabled", "expected true or false, got \"on\"");
  expect_rejected(R"({"sim": {"env": {"atten_per_unit": -0.1}}})",
                  "sim.env.atten_per_unit", "number ≥ 0, got -0.1");
  expect_rejected(R"({"sim": {"env": {"sever_depth": -5}}})",
                  "sim.env.sever_depth", "number ≥ 0");
  expect_rejected(R"({"sim": {"env": {"obstacles": {}}}})",
                  "sim.env.obstacles", "expected array, got object");
  expect_rejected(
      R"({"sim": {"env": {"obstacles": [{}, {"extra_atten": -1}]}}})",
      "sim.env.obstacles[1].extra_atten", "number ≥ 0, got -1");
  expect_rejected(
      R"({"sim": {"env": {"obstacles": [{"box": {"lo": [1, 2]}}]}}})",
      "sim.env.obstacles[0].box.lo", "[x, y, z]");
  expect_rejected(
      R"({"sim": {"env": {"obstacles": [{"cube": {}}]}}})",
      "sim.env.obstacles[0].cube", "unknown key");
  expect_rejected(R"({"sim": {"env": {"terrain": 1}}})", "sim.env.terrain",
                  "expected object, got 1");
  expect_rejected(R"({"sim": {"env": {"terrain": {"amplitude_frac": -1}}}})",
                  "sim.env.terrain.amplitude_frac", "number ≥ 0, got -1");
  expect_rejected(R"({"sim": {"env": {"terrain": {"base_frac": 1.5}}}})",
                  "sim.env.terrain.base_frac",
                  "expected number in [0, 1], got 1.5");
  expect_rejected(R"({"sim": {"env": {"water": {"surface_frac": -0.2}}}})",
                  "sim.env.water.surface_frac", "in [0, 1]");
  expect_rejected(R"({"sim": {"env": {"water": {"alpha_per_unit": -1}}}})",
                  "sim.env.water.alpha_per_unit", "number ≥ 0");
  expect_rejected(R"({"sim": {"env": {"water": {"amp_depth_scale": -1}}}})",
                  "sim.env.water.amp_depth_scale", "number ≥ 0");
  expect_rejected(R"({"sim": {"env": {"harvest": {"per_round": -0.01}}}})",
                  "sim.env.harvest.per_round", "number ≥ 0");
  expect_rejected(R"({"sim": {"env": {"harvest": {"depth_decay": -1}}}})",
                  "sim.env.harvest.depth_decay", "number ≥ 0");
  expect_rejected(R"({"sim": {"env": {"harvest": {"min_factor": 2}}}})",
                  "sim.env.harvest.min_factor",
                  "expected number in [0, 1], got 2");
  expect_rejected(R"({"sim": {"env": {"grid": true}}})", "sim.env.grid",
                  "unknown key");
}

TEST(ConfigErrors, BsTrajectoryBlockValidated) {
  expect_rejected(R"({"bs": 7})", "bs", "expected object, got 7");
  expect_rejected(R"({"bs": {"placement": "corner"}})", "bs.placement",
                  "unknown key");
  expect_rejected(R"({"bs": {"trajectory": {"kind": "tour"}}})",
                  "bs.trajectory.kind",
                  "expected one of none|waypoint|orbit, got \"tour\"");
  expect_rejected(R"({"bs": {"trajectory": {"waypoints": 3}}})",
                  "bs.trajectory.waypoints", "expected array, got 3");
  expect_rejected(
      R"({"bs": {"trajectory": {"waypoints": [[0, 0, 0], [1, 2]]}}})",
      "bs.trajectory.waypoints[1]", "[x, y, z] array of 3 finite numbers");
  expect_rejected(R"({"bs": {"trajectory": {"speed": -1}}})",
                  "bs.trajectory.speed", "number ≥ 0, got -1");
  expect_rejected(R"({"bs": {"trajectory": {"loop": "yes"}}})",
                  "bs.trajectory.loop", "expected true or false");
  expect_rejected(R"({"bs": {"trajectory": {"orbit_center": "mid"}}})",
                  "bs.trajectory.orbit_center", "[x, y, z]");
  expect_rejected(R"({"bs": {"trajectory": {"orbit_radius": -2}}})",
                  "bs.trajectory.orbit_radius", "number ≥ 0");
  expect_rejected(R"({"bs": {"trajectory": {"orbit_period": 0}}})",
                  "bs.trajectory.orbit_period", "integer ≥ 1, got 0");
  expect_rejected(R"({"bs": {"trajectory": {"dwell": 2}}})",
                  "bs.trajectory.dwell", "unknown key");
}

TEST(ConfigErrors, WhatIsPathColonProblem) {
  const ConfigError e("sim.fault.hazards.crash_per_node",
                      "expected number ≥ 0, got \"high\"");
  EXPECT_EQ(e.path(), "sim.fault.hazards.crash_per_node");
  EXPECT_STREQ(e.what(),
               "sim.fault.hazards.crash_per_node: expected number ≥ 0, "
               "got \"high\"");
  const ConfigError root("", "malformed JSON: oops");
  EXPECT_STREQ(root.what(), "malformed JSON: oops");
}

}  // namespace
}  // namespace qlec::config
