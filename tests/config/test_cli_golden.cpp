// Golden integration tests for the committed scenario files: the
// declarative path (scenario JSON -> expand -> run) must reproduce the
// exact digests the code-driven golden harness committed, and the Fig. 3
// sweep file must expand to the documented grid. The ctest targets
// qlec_run.golden_paper51 / qlec_run.dry_run_grid cover the same ground
// through the real binary.
//
// Regenerate tests/golden/paper_51.qlec.digest after an intentional model
// change with  QLEC_REGEN_GOLDEN=1 ctest -R CliGolden  (the per-protocol
// digests are owned by tests/sim/test_golden_traces.cpp).
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "config/runner.hpp"
#include "sim/protocols/registry.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"

namespace qlec::config {
namespace {

#ifndef QLEC_SCENARIO_DIR
#error "QLEC_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef QLEC_GOLDEN_DIR
#error "QLEC_GOLDEN_DIR must point at tests/golden"
#endif

std::string scenario_text(const std::string& file) {
  const auto text =
      read_text_file(std::string(QLEC_SCENARIO_DIR) + "/" + file);
  EXPECT_TRUE(text.has_value()) << "missing scenario " << file;
  return text.value_or("{}");
}

std::vector<std::string> read_digest_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  return lines;
}

TEST(CliGolden, GoldenReplayScenarioMatchesPerProtocolDigests) {
  // The file-driven run of the frozen golden scenario must equal the
  // code-driven digests committed by tests/sim/test_golden_traces.cpp —
  // proving config parsing changes nothing about the simulation.
  const auto cells =
      expand_grid(parse_scenario(scenario_text("golden_replay.json")));
  ASSERT_EQ(cells.size(), protocol_names().size());  // one per protocol
  const RunManifest m = run_grid(cells);
  for (const CellResult& c : m.cells) {
    const std::string protocol = c.config.protocol.name;
    const std::vector<std::string> golden = read_digest_lines(
        std::string(QLEC_GOLDEN_DIR) + "/" + protocol + ".digest");
    ASSERT_FALSE(golden.empty()) << protocol;
    EXPECT_EQ(c.digests, golden)
        << protocol << ": scenario-file run diverged from the committed "
        << "golden digest — the config layer altered the simulation.";
  }
}

TEST(CliGolden, Paper51MatchesCommittedDigest) {
  const std::string golden_path =
      std::string(QLEC_GOLDEN_DIR) + "/paper_51.qlec.digest";
  auto cells = expand_grid(parse_scenario(scenario_text("paper_51.json")));
  ASSERT_EQ(cells.size(), 1u);
  // The CLI's --digest switch: recording traces is observational.
  cells[0].config.sim.trace.record = true;
  const RunManifest m = run_grid(cells);
  ASSERT_EQ(m.cells.size(), 1u);
  ASSERT_EQ(m.cells[0].digests.size(), cells[0].config.seeds);

  if (env::regen_golden()) {
    std::ofstream out(golden_path);
    out << "# (base)\n";
    for (const std::string& d : m.cells[0].digests) out << d << "\n";
    return;
  }
  const std::vector<std::string> golden = read_digest_lines(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing " << golden_path
      << " — run with QLEC_REGEN_GOLDEN=1 to (re)generate";
  EXPECT_EQ(m.cells[0].digests, golden)
      << "paper_51 scenario diverged from its committed digest. If the "
      << "model change is intentional, regenerate with QLEC_REGEN_GOLDEN=1 "
      << "and commit tests/golden/paper_51.qlec.digest.";
}

TEST(CliGolden, Fig3SweepExpandsToDocumentedGrid) {
  // The --dry-run grid-shape contract for the committed sweep file.
  const auto cells =
      expand_grid(parse_scenario(scenario_text("fig3_sweep.json")));
  ASSERT_EQ(cells.size(), 9u);
  const std::vector<std::string> protocols = {"qlec", "fcm", "kmeans"};
  const std::vector<double> lambdas = {2.0, 4.0, 8.0};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].config.protocol.name, protocols[i / 3]) << i;
    EXPECT_DOUBLE_EQ(cells[i].config.sim.mean_interarrival, lambdas[i % 3])
        << i;
    EXPECT_EQ(cells[i].config.scenario.n, 100u);
    EXPECT_EQ(cells[i].config.seeds, 3u);
  }
}

TEST(CliGolden, AllCommittedScenariosParseAndExpand) {
  for (const char* file : {"paper_51.json", "golden_replay.json",
                           "fig3_sweep.json", "resilience.json"}) {
    std::vector<SweepCell> cells;
    ASSERT_NO_THROW(cells = expand_grid(parse_scenario(scenario_text(file))))
        << file;
    EXPECT_FALSE(cells.empty()) << file;
  }
}

TEST(CliGolden, ResilienceScenarioCarriesFaultBlock) {
  const auto cells =
      expand_grid(parse_scenario(scenario_text("resilience.json")));
  ASSERT_EQ(cells.size(), 3u);
  for (const SweepCell& c : cells) {
    EXPECT_TRUE(c.config.sim.fault.enabled);
    EXPECT_DOUBLE_EQ(c.config.sim.fault.hazards.crash_per_node, 0.004);
    EXPECT_EQ(c.config.sim.fault.seed, 0xFA17u);
  }
}

}  // namespace
}  // namespace qlec::config
