// The job-oriented runner API (config/jobs.hpp): content-addressed keys,
// the ResultStore cache (memory + disk tiers), scheduler dedup and
// cancellation, manifest/cell-record schema versioning, and the golden
// cached-replay guarantee — a cached cell serves the exact digests the
// simulation produced.
#include "config/jobs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "config/runner.hpp"
#include "config/sweep.hpp"
#include "config/version.hpp"
#include "sim/protocols/registry.hpp"
#include "util/csv.hpp"

namespace qlec::config {
namespace {

/// Small-but-real cell: 16 nodes, 3 rounds, traces on so results carry
/// digests.
SweepCell tiny_cell(const std::string& protocol = "leach") {
  const ScenarioFile s = parse_scenario(R"({
    "scenario": {"n": 16},
    "sim": {"rounds": 3, "slots_per_round": 4, "trace": {"record": true}},
    "protocol": {"name": ")" + protocol + R"("},
    "seeds": 2,
    "base_seed": 7
  })");
  return expand_grid(s).at(0);
}

std::string fresh_dir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(JobKey, StableAcrossCallsAndObjects) {
  const SweepCell cell = tiny_cell();
  const std::string k1 = job_key(cell.config);
  const std::string k2 = job_key(tiny_cell().config);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 16u);
  EXPECT_EQ(k1.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(JobKey, AnyConfigDeltaChangesTheKey) {
  const SweepCell base = tiny_cell();
  SweepCell other = tiny_cell();
  other.config.base_seed += 1;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.rounds += 1;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  // MAC knobs are simulation-relevant (digests diverge when enabled), so
  // they must shift the key even though the default is inert.
  other = tiny_cell();
  other.config.sim.mac.enabled = true;
  EXPECT_NE(job_key(base.config), job_key(other.config));
  other = tiny_cell();
  other.config.sim.mac.cca_range += 1.0;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  EXPECT_NE(job_key(base.config), job_key(tiny_cell("direct").config));
}

TEST(JobKey, EnvironmentAndTrajectoryKnobsShiftTheKey) {
  // sim.env.* and bs.trajectory.* are simulation-relevant (digests diverge
  // once enabled), so every knob must shift the key even while the block
  // defaults are inert.
  const SweepCell base = tiny_cell();
  SweepCell other = tiny_cell();
  other.config.sim.env.enabled = true;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.env.atten_per_unit += 0.01;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.env.obstacles.push_back(
      EnvObstacle{Aabb{{0, 0, 0}, {50, 50, 50}}, 0.0});
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.env.terrain.enabled = true;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.env.water.surface_frac = 0.5;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.env.harvest.per_round = 0.02;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.bs_trajectory.kind = TrajectoryKind::kOrbit;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.bs_trajectory.orbit_period = 7;
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.bs_trajectory.waypoints.push_back({10, 10, 10});
  EXPECT_NE(job_key(base.config), job_key(other.config));

  other = tiny_cell();
  other.config.sim.bs_trajectory.speed = 12.5;
  EXPECT_NE(job_key(base.config), job_key(other.config));
}

TEST(JobKey, CodeVersionDeltaChangesTheKey) {
  const SweepCell cell = tiny_cell();
  EXPECT_NE(job_key(cell.config, kCodeVersion),
            job_key(cell.config, "qlec-sim-9999.99"));
}

TEST(JobKey, TelemetryIsExcluded) {
  // Telemetry is strictly observational, so it must not shift the key —
  // that is what lets a daemon respool event files per job without
  // invalidating the cache.
  const SweepCell base = tiny_cell();
  SweepCell noisy = tiny_cell();
  noisy.config.sim.telemetry.enabled = true;
  noisy.config.sim.telemetry.events_path = "/tmp/somewhere.jsonl";
  EXPECT_EQ(job_key(base.config), job_key(noisy.config));
}

TEST(Plan, PreservesCellOrderAndIdentity) {
  const ScenarioFile s = parse_scenario(R"({
    "scenario": {"n": 16},
    "sim": {"rounds": 2, "slots_per_round": 4},
    "seeds": 1,
    "sweep": {"protocol.name": ["leach", "direct"]}
  })");
  const std::vector<SweepCell> cells = expand_grid(s);
  const std::vector<JobSpec> specs = plan(cells);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].label, cells[0].label);
  EXPECT_EQ(specs[1].label, cells[1].label);
  EXPECT_EQ(specs[0].key, job_key(cells[0].config));
  EXPECT_NE(specs[0].key, specs[1].key);
}

TEST(ResultStore, MemoryRoundTrip) {
  ResultStore store;
  const SweepCell cell = tiny_cell();
  const std::string key = job_key(cell.config);
  EXPECT_FALSE(store.lookup(key).has_value());
  const CellResult r = run_cell(cell);
  store.insert(key, r);
  const auto back = store.lookup(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->digests, r.digests);
  const ResultStore::Stats st = store.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.disk_hits, 0u);
}

TEST(ResultStore, DiskTierWarmsAcrossInstances) {
  const std::string dir = fresh_dir("qlec_store_disk");
  const SweepCell cell = tiny_cell();
  const std::string key = job_key(cell.config);
  const CellResult r = run_cell(cell);
  {
    ResultStore store(dir);
    store.insert(key, r);
    ASSERT_TRUE(std::filesystem::exists(dir + "/" + key + ".json"));
  }
  ResultStore warmed(dir);  // fresh instance, same directory
  const auto back = warmed.lookup(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->digests, r.digests);
  EXPECT_EQ(back->label, r.label);
  EXPECT_DOUBLE_EQ(back->metrics.pdr.mean(), r.metrics.pdr.mean());
  EXPECT_EQ(warmed.stats().disk_hits, 1u);
  // Second lookup is served from the promoted memory entry.
  ASSERT_TRUE(warmed.lookup(key).has_value());
  EXPECT_EQ(warmed.stats().disk_hits, 1u);
  EXPECT_EQ(warmed.stats().hits, 2u);
}

TEST(ResultStore, CorruptOrForeignDiskEntriesReadAsMisses) {
  const std::string dir = fresh_dir("qlec_store_bad");
  const SweepCell cell = tiny_cell();
  const std::string key = job_key(cell.config);
  write_text_file(dir + "/" + key + ".json", "{not json");
  ResultStore store(dir);
  EXPECT_FALSE(store.lookup(key).has_value());
  // A record written under a different code version must also miss.
  write_text_file(dir + "/" + key + ".json",
                  cell_record_to_json(run_cell(cell), key, "other-build"));
  EXPECT_FALSE(store.lookup(key).has_value());
}

TEST(JobRunner, ConcurrentIdenticalSubmitsSimulateOnce) {
  ResultStore store;
  JobRunnerOptions opts;
  opts.workers = 4;
  opts.store = &store;
  JobRunner runner(opts);
  const JobSpec spec = plan_cell(tiny_cell());

  std::vector<std::thread> submitters;
  std::vector<JobHandle> handles(8);
  for (std::size_t i = 0; i < handles.size(); ++i)
    submitters.emplace_back(
        [&runner, &spec, &handles, i] { handles[i] = runner.submit(spec); });
  for (std::thread& t : submitters) t.join();

  const CellResult first = handles[0].await();
  for (JobHandle& h : handles) {
    const CellResult r = h.await();
    EXPECT_EQ(r.digests, first.digests);
    EXPECT_EQ(h.state(), JobState::kDone);
  }
  const JobRunner::Stats st = runner.stats();
  EXPECT_EQ(st.submitted, 8u);
  EXPECT_EQ(st.simulated, 1u);  // the whole point of the dedup layer
  EXPECT_EQ(st.coalesced + st.cache_hits, 7u);
}

TEST(JobRunner, SubmitAfterCompletionHitsTheStore) {
  ResultStore store;
  JobRunnerOptions opts;
  opts.store = &store;
  JobRunner runner(opts);
  const JobSpec spec = plan_cell(tiny_cell());
  const CellResult r1 = runner.submit(spec).await();
  JobHandle again = runner.submit(spec);
  const CellResult r2 = again.await();
  EXPECT_TRUE(again.from_cache());
  EXPECT_EQ(r1.digests, r2.digests);
  EXPECT_EQ(runner.stats().simulated, 1u);
  EXPECT_EQ(runner.stats().cache_hits, 1u);
}

TEST(JobRunner, PriorityOrdersTheQueue) {
  // One worker, occupied by a first job; then a low- and a high-priority
  // job. The high one must run (and finish) before the low one.
  ResultStore store;
  JobRunnerOptions opts;
  opts.workers = 1;
  opts.store = &store;
  JobRunner runner(opts);
  runner.submit(plan_cell(tiny_cell("leach")));
  JobHandle low = runner.submit(plan_cell(tiny_cell("direct")), -5);
  JobHandle high = runner.submit(plan_cell(tiny_cell("kmeans")), 5);
  runner.wait_idle();
  EXPECT_EQ(low.state(), JobState::kDone);
  EXPECT_EQ(high.state(), JobState::kDone);
  // Both completed; ordering itself is observable via await() not blocking
  // and the stats showing three distinct simulations.
  EXPECT_EQ(runner.stats().simulated, 3u);
}

TEST(JobRunner, CancelQueuedLeavesNoCacheEntry) {
  const std::string dir = fresh_dir("qlec_cancel_cache");
  ResultStore store(dir);
  JobRunnerOptions opts;
  opts.workers = 1;
  opts.store = &store;
  JobRunner runner(opts);
  // Occupy the single worker so the victim stays queued (priority pins the
  // pop order even if the worker has not yet dequeued).
  JobHandle busy = runner.submit(plan_cell(tiny_cell("leach")), 10);
  const JobSpec victim = plan_cell(tiny_cell("qlec"));
  JobHandle doomed = runner.submit(victim);
  EXPECT_TRUE(doomed.cancel());
  EXPECT_THROW(doomed.await(), JobCancelled);
  EXPECT_EQ(doomed.state(), JobState::kCancelled);
  runner.wait_idle();
  EXPECT_FALSE(store.lookup(victim.key).has_value());
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + victim.key + ".json"));
  // No partial/tmp droppings either.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // just the completed busy job's record
  busy.await();
}

TEST(RunCell, HonorsCancelBetweenSeeds) {
  const SweepCell cell = tiny_cell();
  const std::atomic<bool> already_cancelled{true};
  EXPECT_THROW(run_cell(cell, ExecPolicy::serial(), &already_cancelled),
               JobCancelled);
}

TEST(RunCell, PerSeedSplitIsBitIdenticalToBatch) {
  // The cancellable executor splits a cell into per-seed runs; it must
  // reproduce the batch path exactly or cancellation would change science.
  const SweepCell cell = tiny_cell();
  const std::atomic<bool> never{false};
  const CellResult split = run_cell(cell, ExecPolicy::serial(), &never);
  const CellResult batch = run_cell(cell);
  EXPECT_EQ(split.digests, batch.digests);
  EXPECT_DOUBLE_EQ(split.metrics.pdr.mean(), batch.metrics.pdr.mean());
  EXPECT_DOUBLE_EQ(split.metrics.total_energy.mean(),
                   batch.metrics.total_energy.mean());
}

TEST(Manifest, JsonRoundTripIsExact) {
  RunManifest m;
  m.name = "roundtrip";
  m.description = "exactness check";
  m.cells.push_back(run_cell(tiny_cell("leach")));
  m.cells.push_back(run_cell(tiny_cell("direct")));
  const std::string once = manifest_to_json(m);
  const RunManifest back = manifest_from_json(once);
  EXPECT_EQ(manifest_to_json(back), once);  // fixed point
  ASSERT_EQ(back.cells.size(), 2u);
  EXPECT_EQ(back.cells[0].digests, m.cells[0].digests);
  EXPECT_DOUBLE_EQ(back.cells[1].metrics.pdr.mean(),
                   m.cells[1].metrics.pdr.mean());
}

TEST(Manifest, DeclaresCurrentSchemaVersion) {
  const std::string text = manifest_to_json(RunManifest{});
  EXPECT_NE(text.find("\"schema_version\":1"), std::string::npos);
}

TEST(Manifest, RejectsFutureSchemaVersion) {
  try {
    manifest_from_json(R"({"schema_version": 2, "name": "", )"
                       R"("description": "", "cells": []})");
    FAIL() << "future schema_version must not parse";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.path(), "schema_version");
    EXPECT_NE(std::string(e.what()).find("unsupported future version 2"),
              std::string::npos);
  }
}

TEST(Manifest, RejectsMissingSchemaVersion) {
  try {
    manifest_from_json(R"({"name": "", "description": "", "cells": []})");
    FAIL() << "unversioned manifest must not parse";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.path(), "schema_version");
  }
}

TEST(CellRecord, RoundTripAndGuards) {
  const SweepCell cell = tiny_cell();
  const std::string key = job_key(cell.config);
  const CellResult r = run_cell(cell);
  const std::string rec = cell_record_to_json(r, key, kCodeVersion);
  const CellResult back = cell_record_from_json(rec, key, kCodeVersion);
  EXPECT_EQ(back.digests, r.digests);
  EXPECT_EQ(back.label, r.label);
  EXPECT_THROW(cell_record_from_json(rec, "0000000000000000", kCodeVersion),
               ConfigError);
  EXPECT_THROW(cell_record_from_json(rec, key, "other-build"), ConfigError);
}

TEST(RunGridCompat, WrapperMatchesDirectCells) {
  // run_grid is now a shim over the job layer; its output must be the
  // historical one: cells in grid order, digests identical to run_cell.
  const ScenarioFile s = parse_scenario(R"({
    "scenario": {"n": 16},
    "sim": {"rounds": 2, "slots_per_round": 4, "trace": {"record": true}},
    "seeds": 1,
    "sweep": {"protocol.name": ["leach", "direct"]}
  })");
  const std::vector<SweepCell> cells = expand_grid(s);
  const RunManifest m = run_grid(cells);
  ASSERT_EQ(m.cells.size(), 2u);
  EXPECT_EQ(m.cells[0].label, cells[0].label);
  EXPECT_EQ(m.cells[0].digests, run_cell(cells[0]).digests);
  EXPECT_EQ(m.cells[1].digests, run_cell(cells[1]).digests);
}

/// The acceptance criterion in full: every committed golden digest is
/// reproduced through the job layer, and a second pass over the same store
/// is served entirely from cache with bit-identical digests.
TEST(GoldenReplay, CachedReplayServesCommittedDigests) {
  const auto scenario_text =
      read_text_file(std::string(QLEC_SCENARIO_DIR) + "/golden_replay.json");
  ASSERT_TRUE(scenario_text.has_value());
  const std::vector<SweepCell> cells =
      expand_grid(parse_scenario(*scenario_text));
  ASSERT_EQ(cells.size(), protocol_names().size());

  const std::string dir = fresh_dir("qlec_golden_cache");
  std::vector<std::vector<std::string>> first_digests;
  {
    ResultStore store(dir);
    JobRunnerOptions opts;
    opts.store = &store;
    JobRunner runner(opts);
    for (const JobSpec& spec : plan(cells))
      first_digests.push_back(runner.submit(spec).await().digests);
    EXPECT_EQ(runner.stats().simulated, cells.size());
  }

  // Against the committed goldens, cell-major / seed-minor.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string proto = cells[i].config.protocol.name;
    const auto golden =
        read_text_file(std::string(QLEC_GOLDEN_DIR) + "/" + proto + ".digest");
    ASSERT_TRUE(golden.has_value()) << proto;
    std::string joined;
    for (const std::string& d : first_digests[i]) joined += d + "\n";
    EXPECT_EQ(joined, *golden) << proto;
  }

  // Second pass: fresh runner + fresh store instance, same directory. All
  // cache, zero simulation, identical digests.
  ResultStore warmed(dir);
  JobRunnerOptions opts;
  opts.store = &warmed;
  JobRunner replay(opts);
  std::vector<JobHandle> handles;
  for (const JobSpec& spec : plan(cells)) handles.push_back(replay.submit(spec));
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i].await().digests, first_digests[i]);
    EXPECT_TRUE(handles[i].from_cache());
  }
  EXPECT_EQ(replay.stats().simulated, 0u);
  EXPECT_EQ(replay.stats().cache_hits, cells.size());
}

}  // namespace
}  // namespace qlec::config
