// Sweep-grid expansion and the run manifest: grid shape, cell ordering,
// --set override semantics, label rendering, and the manifest's resolved
// config echo re-parsing to the identical grid.
#include "config/sweep.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/runner.hpp"

namespace qlec::config {
namespace {

const char* kFig3 = R"({
  "name": "fig3-grid",
  "description": "3x3 comparison",
  "scenario": {"n": 40},
  "sim": {"rounds": 3, "slots_per_round": 4},
  "seeds": 2,
  "sweep": {
    "protocol.name": ["qlec", "fcm", "kmeans"],
    "sim.mean_interarrival": [2, 4, 8]
  }
})";

TEST(Sweep, ParseScenarioSeparatesMetaFromBase) {
  const ScenarioFile s = parse_scenario(kFig3);
  EXPECT_EQ(s.name, "fig3-grid");
  EXPECT_EQ(s.description, "3x3 comparison");
  ASSERT_EQ(s.axes.size(), 2u);
  EXPECT_EQ(s.axes[0].path, "protocol.name");
  EXPECT_EQ(s.axes[1].path, "sim.mean_interarrival");
  // The base document holds only config keys — no meta leakage.
  EXPECT_EQ(s.base.get("sweep"), nullptr);
  EXPECT_EQ(s.base.get("name"), nullptr);
  ASSERT_NE(s.base.get("scenario"), nullptr);
}

TEST(Sweep, ThreeByThreeExpandsToNineCells) {
  const auto cells = expand_grid(parse_scenario(kFig3));
  ASSERT_EQ(cells.size(), 9u);
  // Declaration order, last axis fastest.
  EXPECT_EQ(cells[0].label, "protocol.name=qlec sim.mean_interarrival=2");
  EXPECT_EQ(cells[1].label, "protocol.name=qlec sim.mean_interarrival=4");
  EXPECT_EQ(cells[3].label, "protocol.name=fcm sim.mean_interarrival=2");
  EXPECT_EQ(cells[8].label, "protocol.name=kmeans sim.mean_interarrival=8");
  // Bindings landed in the configs, and base keys survived.
  EXPECT_EQ(cells[3].config.protocol.name, "fcm");
  EXPECT_DOUBLE_EQ(cells[3].config.sim.mean_interarrival, 2.0);
  EXPECT_EQ(cells[3].config.scenario.n, 40u);
  EXPECT_EQ(cells[3].config.seeds, 2u);
  ASSERT_EQ(cells[3].bindings.size(), 2u);
  EXPECT_EQ(cells[3].bindings[0].first, "protocol.name");
}

TEST(Sweep, MacKnobsAreSweepable) {
  // The contention knobs ride the generic path machinery: a boolean
  // enabled axis crossed with a numeric cca_range axis.
  const auto cells = expand_grid(parse_scenario(R"({
    "sweep": {"sim.mac.enabled": [false, true],
              "sim.mac.cca_range": [75, 150]}
  })"));
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_FALSE(cells[0].config.sim.mac.enabled);
  EXPECT_TRUE(cells[2].config.sim.mac.enabled);
  EXPECT_DOUBLE_EQ(cells[1].config.sim.mac.cca_range, 150.0);
  EXPECT_EQ(cells[3].label, "sim.mac.enabled=true sim.mac.cca_range=150");
}

TEST(Sweep, NoSweepBlockIsOneCell) {
  const auto cells = expand_grid(parse_scenario(R"({"scenario":{"n":7}})"));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].label.empty());
  EXPECT_TRUE(cells[0].bindings.empty());
  EXPECT_EQ(cells[0].config.scenario.n, 7u);
}

TEST(Sweep, OverridePinsMatchingAxis) {
  const ScenarioFile s = parse_scenario(kFig3);
  const auto cells =
      expand_grid(s, {{"protocol.name", JsonValue::make_string("qlec")}});
  ASSERT_EQ(cells.size(), 3u);  // the 3-protocol axis collapsed
  for (const SweepCell& c : cells) EXPECT_EQ(c.config.protocol.name, "qlec");
}

TEST(Sweep, OverrideOnNonAxisPathJustSets) {
  const auto cells = expand_grid(parse_scenario(kFig3),
                                 {{"scenario.n", JsonValue::make_number(99)}});
  ASSERT_EQ(cells.size(), 9u);
  for (const SweepCell& c : cells) EXPECT_EQ(c.config.scenario.n, 99u);
}

TEST(Sweep, TypoedAxisPathDiesPathQualified) {
  try {
    expand_grid(parse_scenario(
        R"({"sweep": {"scenario.nn": [1, 2]}})"));
    FAIL() << "typo'd axis accepted";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.path(), "scenario.nn");
  }
}

TEST(Sweep, AxisValueOutOfDomainDiesPathQualified) {
  try {
    expand_grid(parse_scenario(R"({"sweep": {"scenario.n": [10, 0]}})"));
    FAIL();
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.path(), "scenario.n");
  }
}

TEST(Sweep, MalformedSweepBlocksRejected) {
  EXPECT_THROW(parse_scenario(R"({"sweep": []})"), ConfigError);
  EXPECT_THROW(parse_scenario(R"({"sweep": {"scenario.n": []}})"),
               ConfigError);
  EXPECT_THROW(parse_scenario(R"({"sweep": {"scenario.n": 5}})"),
               ConfigError);
  EXPECT_THROW(parse_scenario(R"({"sweep": {"a..b": [1]}})"), ConfigError);
  EXPECT_THROW(parse_scenario(R"({"name": 3})"), ConfigError);
  EXPECT_THROW(parse_scenario("[1,2]"), ConfigError);
  EXPECT_THROW(parse_scenario("{nope"), ConfigError);
}

TEST(Sweep, GridExplosionGuard) {
  // 40^3 = 64000 cells > the 10k cap.
  std::string axis = "[";
  for (int i = 1; i <= 40; ++i)
    axis += (i > 1 ? "," : "") + std::to_string(i);
  axis += "]";
  const std::string doc = R"({"sweep": {"sim.rounds": )" + axis +
                          R"(, "sim.slots_per_round": )" + axis +
                          R"(, "sim.max_retries": )" + axis + "}}";
  EXPECT_THROW(expand_grid(parse_scenario(doc)), ConfigError);
}

TEST(Sweep, WithPathSetCreatesAndReplaces) {
  const JsonValue doc = *parse_json(R"({"a": {"b": 1}})");
  const JsonValue r1 = with_path_set(doc, "a.b", JsonValue::make_number(2));
  EXPECT_EQ(r1.get("a")->get("b")->as_double(), 2.0);
  const JsonValue r2 = with_path_set(doc, "a.c.d", JsonValue::make_bool(true));
  EXPECT_TRUE(r2.get("a")->get("c")->get("d")->as_bool());
  EXPECT_EQ(r2.get("a")->get("b")->as_double(), 1.0);  // untouched sibling
  EXPECT_THROW(with_path_set(doc, "a.b.c", JsonValue::make_number(3)),
               ConfigError);
}

TEST(Sweep, LeafLabelRendersScalars) {
  EXPECT_EQ(leaf_label(JsonValue::make_string("qlec")), "qlec");
  EXPECT_EQ(leaf_label(JsonValue::make_number(100)), "100");
  EXPECT_EQ(leaf_label(JsonValue::make_bool(true)), "true");
}

TEST(SweepManifest, EchoReparsesToIdenticalGrid) {
  // The acceptance bar: a manifest's fully-resolved config echo, parsed
  // back through the strict binding, reproduces the expanded grid exactly.
  const auto cells = expand_grid(parse_scenario(kFig3));
  RunManifest m;  // echo only — no need to actually simulate here
  for (const SweepCell& c : cells) {
    CellResult r;
    r.bindings = c.bindings;
    r.label = c.label;
    r.config = c.config;
    m.cells.push_back(r);
  }
  const std::string json = manifest_to_json(m);
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const JsonValue* echoed = doc->get("cells");
  ASSERT_NE(echoed, nullptr);
  ASSERT_EQ(echoed->size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue* cfg = echoed->at(i).get("config");
    ASSERT_NE(cfg, nullptr);
    EXPECT_EQ(experiment_from_json(*cfg), cells[i].config) << "cell " << i;
  }
}

TEST(SweepManifest, RunGridProducesMetricsAndCsv) {
  const auto cells = expand_grid(parse_scenario(R"({
    "scenario": {"n": 25},
    "sim": {"rounds": 2, "slots_per_round": 4, "trace": {"record": true}},
    "seeds": 2,
    "sweep": {"protocol.name": ["kmeans", "direct"]}
  })"));
  const RunManifest m = run_grid(cells);
  ASSERT_EQ(m.cells.size(), 2u);
  for (const CellResult& c : m.cells) {
    EXPECT_EQ(c.metrics.pdr.count(), 2u);
    ASSERT_EQ(c.digests.size(), 2u);  // trace.record => per-seed digests
    EXPECT_EQ(c.digests[0].size(), 16u);
  }
  const std::string csv = manifest_to_csv(m);
  EXPECT_NE(csv.find("label,protocol,seeds"), std::string::npos);
  EXPECT_NE(csv.find("protocol.name=kmeans"), std::string::npos);
  const std::string digest_lines = manifest_digest_lines(m);
  EXPECT_NE(digest_lines.find("# protocol.name=direct"), std::string::npos);
}

TEST(SweepManifest, PoolPolicyMatchesSerial) {
  const auto cells = expand_grid(parse_scenario(R"({
    "scenario": {"n": 25},
    "sim": {"rounds": 2, "slots_per_round": 4, "trace": {"record": true}},
    "seeds": 3,
    "sweep": {"protocol.name": ["kmeans", "leach"]}
  })"));
  const RunManifest serial = run_grid(cells, ExecPolicy::serial());
  const RunManifest pooled = run_grid(cells, ExecPolicy::pool(3));
  ASSERT_EQ(serial.cells.size(), pooled.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i)
    EXPECT_EQ(serial.cells[i].digests, pooled.cells[i].digests) << i;
}

}  // namespace
}  // namespace qlec::config
