// Golden pins for the terrain-aware world library (DESIGN.md §16). Three
// representative worlds — terrain occlusion, an underwater column, and an
// orbiting sink — run through the declarative path and must reproduce the
// committed tests/golden/world_*.digest files bit-for-bit. Alongside them,
// the library-wide parse sweep and the env-neutrality guard: enabling an
// empty environment on the frozen golden scenario must leave every
// committed per-protocol digest untouched.
//
// Regenerate after an intentional model change with
//   QLEC_REGEN_GOLDEN=1 ctest -R WorldGolden
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "config/runner.hpp"
#include "sim/protocols/registry.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"

namespace qlec::config {
namespace {

#ifndef QLEC_SCENARIO_DIR
#error "QLEC_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef QLEC_GOLDEN_DIR
#error "QLEC_GOLDEN_DIR must point at tests/golden"
#endif

// The pinned trio: one per environment pillar (terrain occlusion, water
// column, mobile sink). The golden file holds every sweep cell's digests
// in expansion order.
const char* const kGoldenWorlds[] = {"mountain_ridge", "underwater_column",
                                     "mule_orbit"};

std::string world_text(const std::string& stem) {
  const std::string path =
      std::string(QLEC_SCENARIO_DIR) + "/worlds/" + stem + ".json";
  const auto text = read_text_file(path);
  EXPECT_TRUE(text.has_value()) << "missing world scenario " << path;
  return text.value_or("{}");
}

std::vector<std::string> read_digest_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  return lines;
}

TEST(WorldGolden, PinnedWorldsMatchCommittedDigests) {
  for (const char* stem : kGoldenWorlds) {
    const std::string golden_path =
        std::string(QLEC_GOLDEN_DIR) + "/world_" + stem + ".digest";
    const ScenarioFile scenario = parse_scenario(world_text(stem));
    const RunManifest m = run_grid(expand_grid(scenario));
    ASSERT_FALSE(m.cells.empty()) << stem;

    if (env::regen_golden()) {
      std::ofstream out(golden_path);
      out << "# " << scenario.name << "\n";
      for (const CellResult& c : m.cells) {
        out << "# cell: " << (c.label.empty() ? "(base)" : c.label) << "\n";
        for (const std::string& d : c.digests) out << d << "\n";
      }
      continue;
    }

    std::vector<std::string> digests;
    for (const CellResult& c : m.cells)
      for (const std::string& d : c.digests) digests.push_back(d);
    const std::vector<std::string> golden = read_digest_lines(golden_path);
    ASSERT_FALSE(golden.empty())
        << "missing " << golden_path
        << " — run with QLEC_REGEN_GOLDEN=1 to (re)generate";
    EXPECT_EQ(digests, golden)
        << stem << " diverged from its committed world digests. If the "
        << "model change is intentional, regenerate with "
        << "QLEC_REGEN_GOLDEN=1 and commit tests/golden/world_" << stem
        << ".digest.";
  }
}

TEST(WorldGolden, WholeWorldLibraryParsesAndExpands) {
  const std::string dir = std::string(QLEC_SCENARIO_DIR) + "/worlds";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  EXPECT_GE(files.size(), 10u) << "the world library shrank below spec";
  for (const std::string& file : files) {
    const auto text = read_text_file(file);
    ASSERT_TRUE(text.has_value()) << file;
    std::vector<SweepCell> cells;
    ASSERT_NO_THROW(cells = expand_grid(parse_scenario(*text))) << file;
    EXPECT_FALSE(cells.empty()) << file;
    // Every world must be replayable: the digest contract needs traces.
    for (const SweepCell& c : cells)
      EXPECT_TRUE(c.config.sim.trace.record) << file;
  }
}

TEST(WorldGolden, EmptyEnvironmentIsDigestNeutralOnGoldenReplay) {
  // The tentpole contract, pinned against the frozen baseline itself:
  // flipping sim.env.enabled with no obstacles/terrain/water/harvest
  // configured must reproduce every committed per-protocol digest.
  const auto text =
      read_text_file(std::string(QLEC_SCENARIO_DIR) + "/golden_replay.json");
  ASSERT_TRUE(text.has_value());
  const std::vector<Override> overrides = {
      {"sim.env.enabled", JsonValue::make_bool(true)}};
  const RunManifest m =
      run_grid(expand_grid(parse_scenario(*text), overrides));
  ASSERT_EQ(m.cells.size(), protocol_names().size());
  for (const CellResult& c : m.cells) {
    const std::string protocol = c.config.protocol.name;
    EXPECT_TRUE(c.config.sim.env.enabled);
    const std::vector<std::string> golden = read_digest_lines(
        std::string(QLEC_GOLDEN_DIR) + "/" + protocol + ".digest");
    ASSERT_FALSE(golden.empty()) << protocol;
    EXPECT_EQ(c.digests, golden)
        << protocol << ": an empty enabled environment changed the trace — "
        << "the digest-neutral-when-disabled contract is broken.";
  }
}

}  // namespace
}  // namespace qlec::config
