#include "obs/phase_timer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace qlec {
namespace {

TEST(PhaseTimer, NullRecorderIsANoOp) {
  obs::PhaseTimer t(nullptr, "phase");
  SUCCEED();
}

TEST(PhaseTimer, RecordsNestedSpansWithDepths) {
  obs::TraceRecorder rec;
  rec.set_round(3);
  {
    obs::PhaseTimer outer(&rec, "round");
    EXPECT_EQ(rec.open_depth(), 1);
    {
      obs::PhaseTimer inner(&rec, "election");
      EXPECT_EQ(rec.open_depth(), 2);
    }
    EXPECT_EQ(rec.open_depth(), 1);
  }
  EXPECT_EQ(rec.open_depth(), 0);

  // Inner closes first, so it is recorded first.
  ASSERT_EQ(rec.spans().size(), 2u);
  const obs::TraceRecorder::Span& inner = rec.spans()[0];
  const obs::TraceRecorder::Span& outer = rec.spans()[1];
  EXPECT_EQ(inner.name, "election");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(outer.name, "round");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.round, 3);
  EXPECT_EQ(outer.round, 3);

  // Monotone and properly contained.
  EXPECT_LE(inner.begin_ns, inner.end_ns);
  EXPECT_LE(outer.begin_ns, outer.end_ns);
  EXPECT_LE(outer.begin_ns, inner.begin_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
}

TEST(TraceRecorder, NowNsIsMonotone) {
  obs::TraceRecorder rec;
  const std::uint64_t a = rec.now_ns();
  const std::uint64_t b = rec.now_ns();
  EXPECT_LE(a, b);
}

TEST(TraceRecorder, TotalNsSumsByName) {
  obs::TraceRecorder rec;
  rec.record("tx", 0, 100, 0, 0);
  rec.record("tx", 200, 250, 0, 1);
  rec.record("uplink", 100, 180, 0, 0);
  EXPECT_EQ(rec.total_ns("tx"), 150u);
  EXPECT_EQ(rec.total_ns("uplink"), 80u);
  EXPECT_EQ(rec.total_ns("absent"), 0u);
}

TEST(TraceRecorder, ChromeJsonParsesWithExpectedShape) {
  obs::TraceRecorder rec;
  rec.set_round(5);
  { obs::PhaseTimer t(&rec, "round"); }

  std::string err;
  const auto doc = parse_json(rec.to_chrome_json(1, 2), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 1u);
  const JsonValue& e = events->at(0);
  EXPECT_EQ(e.get("name")->as_string(), "round");
  EXPECT_EQ(e.get("ph")->as_string(), "X");
  EXPECT_EQ(e.get("pid")->as_int(), 1);
  EXPECT_EQ(e.get("tid")->as_int(), 2);
  EXPECT_GE(e.get("dur")->as_double(), 0.0);
  const JsonValue* args = e.get("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->get("round")->as_int(), 5);
}

TEST(TraceRecorder, WriteChromeJsonProducesLoadableFile) {
  obs::TraceRecorder rec;
  { obs::PhaseTimer t(&rec, "round"); }
  const std::string path = "test_obs_trace.json";
  ASSERT_TRUE(rec.write_chrome_json(path));
  std::ifstream in(path);
  std::ostringstream body;
  body << in.rdbuf();
  std::string err;
  EXPECT_TRUE(parse_json(body.str(), &err).has_value()) << err;
  std::remove(path.c_str());
}

TEST(TraceRecorder, RoundAnnotationFollowsSetRound) {
  obs::TraceRecorder rec;
  EXPECT_EQ(rec.round(), -1);
  { obs::PhaseTimer t(&rec, "setup"); }  // before any round
  rec.set_round(0);
  { obs::PhaseTimer t(&rec, "round"); }
  ASSERT_EQ(rec.spans().size(), 2u);
  EXPECT_EQ(rec.spans()[0].round, -1);
  EXPECT_EQ(rec.spans()[1].round, 0);
}

}  // namespace
}  // namespace qlec
