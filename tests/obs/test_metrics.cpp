#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/json.hpp"

namespace qlec {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  obs::MetricsRegistry m;
  obs::Counter& a = m.counter("sim.rounds");
  a.inc(7);
  EXPECT_EQ(&m.counter("sim.rounds"), &a);
  EXPECT_EQ(m.counter("sim.rounds").value(), 7u);
  obs::Gauge& g = m.gauge("sim.alive");
  g.set(9.0);
  EXPECT_EQ(&m.gauge("sim.alive"), &g);
}

TEST(MetricsRegistry, ReferencesStayValidAcrossManyInserts) {
  obs::MetricsRegistry m;
  obs::Counter& first = m.counter("a.first");
  first.inc();
  // Stable node-based storage: inserting many more instruments must not
  // invalidate the reference hot paths cached at attach time.
  for (int i = 0; i < 200; ++i)
    m.counter("bulk." + std::to_string(i)).inc();
  first.inc();
  EXPECT_EQ(m.counter_value("a.first"), 2u);
  EXPECT_EQ(m.size(), 201u);
}

TEST(MetricsRegistry, LookupOnlyAccessorsDoNotCreate) {
  obs::MetricsRegistry m;
  EXPECT_EQ(m.counter_value("never.registered"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge_value("never.registered"), 0.0);
  EXPECT_EQ(m.size(), 0u);
}

TEST(MetricsRegistry, HistogramBoundsFixedByFirstRegistration) {
  obs::MetricsRegistry m;
  Histogram& h = m.histogram("sim.heads", 0.0, 10.0, 5);
  h.add(1.0);
  // A later registration with different bounds returns the same histogram.
  Histogram& again = m.histogram("sim.heads", -100.0, 100.0, 50);
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bins(), 5u);
  EXPECT_EQ(again.total(), 1u);
}

TEST(MetricsRegistry, ToJsonParsesAndCarriesValues) {
  obs::MetricsRegistry m;
  m.counter("sim.packets.generated").inc(123);
  m.gauge("qlec.k_opt").set(5.0);
  m.histogram("sim.heads", 0.0, 8.0, 4).add(3.0);

  std::string err;
  const auto doc = parse_json(m.to_json(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());
  const JsonValue* counters = doc->get("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* gen = counters->get("sim.packets.generated");
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->as_int(), 123);
  const JsonValue* gauges = doc->get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->get("qlec.k_opt")->as_double(), 5.0);
  const JsonValue* hists = doc->get("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* heads = hists->get("sim.heads");
  ASSERT_NE(heads, nullptr);
  EXPECT_EQ(heads->get("total")->as_int(), 1);
  ASSERT_NE(heads->get("bins"), nullptr);
  EXPECT_EQ(heads->get("bins")->size(), 4u);
}

TEST(MetricsRegistry, EmptyRegistryStillEmitsValidJson) {
  obs::MetricsRegistry m;
  std::string err;
  const auto doc = parse_json(m.to_json(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_TRUE(doc->get("counters")->is_object());
}

}  // namespace
}  // namespace qlec
