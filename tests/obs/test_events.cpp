#include "obs/event.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/log.hpp"

namespace qlec {
namespace {

TEST(Event, BuilderPreservesFieldOrderAndTypes) {
  obs::Event e("election", 7);
  e.with("heads", 5)
      .with("ratio", 0.25)
      .with("ok", true)
      .with("proto", "qlec")
      .with("big", std::uint64_t{1} << 60);
  EXPECT_EQ(e.type(), "election");
  EXPECT_EQ(e.round(), 7);
  ASSERT_EQ(e.fields().size(), 5u);
  EXPECT_EQ(e.fields()[0].key, "heads");
  EXPECT_EQ(e.fields()[4].key, "big");
  const obs::Event::Field* ratio = e.field("ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_EQ(ratio->kind, obs::Event::FieldKind::kDouble);
  EXPECT_DOUBLE_EQ(ratio->d, 0.25);
  EXPECT_EQ(e.field("absent"), nullptr);
}

TEST(Event, RvalueChainWorksOnTemporaries) {
  const obs::Event e =
      obs::Event("retry", 3).with("src", 1).with("attempt", 2);
  EXPECT_EQ(e.field("attempt")->i, 2);
}

TEST(Event, JsonlRoundTripsThroughParser) {
  obs::Event e("q_update", 12);
  e.with("head", -3)
      .with("v", 0.5)
      .with("success", false)
      .with("note", "quote\" and \\ backslash\nnewline");
  std::string err;
  const auto doc = parse_json(e.to_jsonl(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->get("type")->as_string(), "q_update");
  EXPECT_EQ(doc->get("round")->as_int(), 12);
  EXPECT_EQ(doc->get("head")->as_int(), -3);
  EXPECT_DOUBLE_EQ(doc->get("v")->as_double(), 0.5);
  EXPECT_FALSE(doc->get("success")->as_bool());
  EXPECT_EQ(doc->get("note")->as_string(),
            "quote\" and \\ backslash\nnewline");
}

TEST(NullSink, DropsEverything) {
  obs::NullSink sink;
  sink.emit(obs::Event("x", 0));
  sink.flush();
  SUCCEED();
}

TEST(RingBufferSink, KeepsNewestAndReportsTotals) {
  obs::RingBufferSink ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  for (int i = 0; i < 5; ++i) ring.emit(obs::Event("e", i));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_emitted(), 5u);
  const std::vector<obs::Event> got = ring.snapshot();
  ASSERT_EQ(got.size(), 3u);
  // Oldest first: rounds 2, 3, 4 survive the wraparound.
  EXPECT_EQ(got[0].round(), 2);
  EXPECT_EQ(got[1].round(), 3);
  EXPECT_EQ(got[2].round(), 4);
}

TEST(RingBufferSink, PartialFillSnapshotsInOrder) {
  obs::RingBufferSink ring(8);
  ring.emit(obs::Event("a", 0));
  ring.emit(obs::Event("b", 1));
  const auto got = ring.snapshot();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type(), "a");
  EXPECT_EQ(got[1].type(), "b");
}

TEST(RingBufferSink, ZeroCapacityClampsToOne) {
  obs::RingBufferSink ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.emit(obs::Event("only", 9));
  ASSERT_EQ(ring.snapshot().size(), 1u);
  EXPECT_EQ(ring.snapshot()[0].round(), 9);
}

TEST(FileSink, WritesOneParsableLinePerEvent) {
  const std::string path = "test_obs_filesink.jsonl";
  {
    obs::FileSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.emit(obs::Event("a", 0).with("k", 1));
    sink.emit(obs::Event("b", 1).with("k", 2));
    sink.flush();
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    std::string err;
    EXPECT_TRUE(parse_json(line, &err).has_value()) << err;
  }
  std::remove(path.c_str());
}

TEST(LogCapture, BridgesLogLinesIntoSinkAndRestores) {
  const log::Level saved = log::level();
  log::set_level(log::Level::kInfo);
  obs::RingBufferSink ring(16);
  {
    obs::LogCapture capture(ring);
    log::warn("telemetry ", 42);
  }
  // Restored: logging after the capture dies must not reach the sink.
  std::string outside;
  log::set_writer(
      [&outside](log::Level, const std::string& m) { outside = m; });
  log::warn("after capture");
  log::set_writer(nullptr);
  log::set_level(saved);

  EXPECT_EQ(outside, "after capture");
  ASSERT_EQ(ring.size(), 1u);
  const obs::Event e = ring.snapshot()[0];
  EXPECT_EQ(e.type(), "log");
  EXPECT_EQ(e.round(), -1);
  EXPECT_EQ(e.field("level")->s, "warn");
  EXPECT_EQ(e.field("message")->s, "telemetry 42");
}

}  // namespace
}  // namespace qlec
