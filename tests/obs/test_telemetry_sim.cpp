// Telemetry/simulator integration: the determinism contract (enabled
// telemetry changes NO trajectory for any protocol in the registry), the
// event-stream and metrics consistency against SimResult, and the per-seed
// output-file suffixing used by pool-mode replications.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sim/experiment.hpp"
#include "util/json.hpp"

namespace qlec {
namespace {

/// Same shape as the golden-trace scenario: small but busy enough that all
/// instrumented paths (retries, prunes, uplinks, round metrics) run.
ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 10;
  cfg.sim.slots_per_round = 10;
  cfg.sim.trace.record = true;
  cfg.seeds = 2;
  cfg.base_seed = 42;
  cfg.protocol.qlec.total_rounds = 10;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetrySim, EnabledTelemetryKeepsEveryProtocolTraceIdentical) {
  // Stronger than the audit guarantee: telemetry stays bit-identical even
  // when ENABLED (it draws nothing from any Rng stream), so the digests
  // must match with the full instrument set running.
  const ExperimentConfig plain_cfg = small_config();
  ExperimentConfig tele_cfg = plain_cfg;
  tele_cfg.sim.telemetry.enabled = true;
  tele_cfg.sim.telemetry.sink = obs::TelemetryOptions::Sink::kRing;
  tele_cfg.sim.telemetry.trace_phases = true;
  tele_cfg.sim.telemetry.per_packet_events = true;
  for (const std::string& name : protocol_names()) {
    const auto plain = run_replications(name, plain_cfg);
    const auto instrumented = run_replications(name, tele_cfg);
    ASSERT_EQ(plain.size(), instrumented.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
      EXPECT_EQ(trace_digest(plain[i].trace),
                trace_digest(instrumented[i].trace))
          << name << " seed " << i;
  }
}

TEST(TelemetrySim, EventStreamMatchesRoundCount) {
  const std::string path = "test_telemetry_events.jsonl";
  ExperimentConfig cfg = small_config();
  cfg.seeds = 1;
  cfg.sim.telemetry.enabled = true;
  cfg.sim.telemetry.sink = obs::TelemetryOptions::Sink::kFile;
  cfg.sim.telemetry.events_path = path;
  const auto results = run_replications("qlec", cfg);
  ASSERT_EQ(results.size(), 1u);
  const int rounds = results[0].rounds_completed;

  std::ifstream in(path);
  std::size_t elections = 0, round_ends = 0, stats = 0, lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ++lines;
    std::string err;
    const auto v = parse_json(line, &err);
    ASSERT_TRUE(v.has_value()) << err << " in: " << line;
    const std::string type = v->get("type")->as_string();
    if (type == "election") ++elections;
    if (type == "round_end") ++round_ends;
    if (type == "election_stats") ++stats;
  }
  EXPECT_EQ(elections, static_cast<std::size_t>(rounds));
  EXPECT_EQ(round_ends, static_cast<std::size_t>(rounds));
  EXPECT_EQ(stats, static_cast<std::size_t>(rounds));
  EXPECT_GE(lines, 3u * static_cast<std::size_t>(rounds));
  std::remove(path.c_str());
}

TEST(TelemetrySim, MetricsExportAgreesWithSimResult) {
  const std::string path = "test_telemetry_metrics.json";
  ExperimentConfig cfg = small_config();
  cfg.seeds = 1;
  cfg.sim.telemetry.enabled = true;
  cfg.sim.telemetry.sink = obs::TelemetryOptions::Sink::kNull;
  cfg.sim.telemetry.metrics_path = path;
  const auto results = run_replications("qlec", cfg);
  ASSERT_EQ(results.size(), 1u);
  const SimResult& r = results[0];

  std::string err;
  const auto doc = parse_json(slurp(path), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* counters = doc->get("counters");
  ASSERT_NE(counters, nullptr);
  const auto counter = [&](const char* name) -> std::uint64_t {
    const JsonValue* v = counters->get(name);
    return v != nullptr ? static_cast<std::uint64_t>(v->as_double()) : 0;
  };
  EXPECT_EQ(counter("sim.rounds"),
            static_cast<std::uint64_t>(r.rounds_completed));
  EXPECT_EQ(counter("sim.packets.generated"), r.generated);
  EXPECT_EQ(counter("sim.packets.delivered"), r.delivered);
  EXPECT_EQ(counter("sim.packets.lost.link"), r.lost_link);
  EXPECT_EQ(counter("sim.packets.lost.queue"), r.lost_queue);
  EXPECT_EQ(counter("sim.packets.lost.dead"), r.lost_dead);
  std::remove(path.c_str());
}

TEST(TelemetrySim, SeedSuffixRewritesPathsBeforeTheExtension) {
  obs::TelemetryOptions opts;
  opts.events_path = "out/ev.jsonl";
  opts.trace_path = "trace.json";
  opts.metrics_path = "plain";  // no extension: plain append
  const obs::TelemetryOptions got =
      obs::Telemetry::with_seed_suffix(opts, 3);
  EXPECT_EQ(got.events_path, "out/ev.seed3.jsonl");
  EXPECT_EQ(got.trace_path, "trace.seed3.json");
  EXPECT_EQ(got.metrics_path, "plain.seed3");

  // A dot inside a directory name is not an extension.
  obs::TelemetryOptions dir;
  dir.events_path = "out.d/events";
  EXPECT_EQ(obs::Telemetry::with_seed_suffix(dir, 0).events_path,
            "out.d/events.seed0");

  // Empty paths stay empty (no output configured).
  obs::TelemetryOptions empty;
  EXPECT_EQ(obs::Telemetry::with_seed_suffix(empty, 1).events_path, "");
}

TEST(TelemetrySim, ReplicationsWriteOneEventFilePerSeed) {
  ExperimentConfig cfg = small_config();
  cfg.seeds = 2;
  cfg.sim.rounds = 3;
  cfg.sim.telemetry.enabled = true;
  cfg.sim.telemetry.sink = obs::TelemetryOptions::Sink::kFile;
  cfg.sim.telemetry.events_path = "test_telemetry_rep.jsonl";
  run_replications("qlec", cfg);
  for (const char* path : {"test_telemetry_rep.seed0.jsonl",
                           "test_telemetry_rep.seed1.jsonl"}) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path << " missing";
    std::string first;
    std::getline(in, first);
    EXPECT_TRUE(parse_json(first).has_value()) << path;
    in.close();
    std::remove(path);
  }
}

}  // namespace
}  // namespace qlec
