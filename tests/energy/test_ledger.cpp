#include "energy/ledger.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(EnergyLedger, StartsEmpty) {
  const EnergyLedger l;
  EXPECT_DOUBLE_EQ(l.total(), 0.0);
  EXPECT_DOUBLE_EQ(l.by_use(EnergyUse::kTransmit), 0.0);
  EXPECT_DOUBLE_EQ(l.fraction(EnergyUse::kTransmit), 0.0);
}

TEST(EnergyLedger, ChargesAccumulate) {
  EnergyLedger l;
  l.charge(EnergyUse::kTransmit, 1.0);
  l.charge(EnergyUse::kTransmit, 2.0);
  l.charge(EnergyUse::kReceive, 0.5);
  EXPECT_DOUBLE_EQ(l.by_use(EnergyUse::kTransmit), 3.0);
  EXPECT_DOUBLE_EQ(l.by_use(EnergyUse::kReceive), 0.5);
  EXPECT_DOUBLE_EQ(l.total(), 3.5);
}

TEST(EnergyLedger, NegativeChargeIgnored) {
  EnergyLedger l;
  l.charge(EnergyUse::kAggregate, -5.0);
  EXPECT_DOUBLE_EQ(l.total(), 0.0);
}

TEST(EnergyLedger, FractionsSumToOne) {
  EnergyLedger l;
  l.charge(EnergyUse::kTransmit, 6.0);
  l.charge(EnergyUse::kReceive, 3.0);
  l.charge(EnergyUse::kAggregate, 1.0);
  EXPECT_DOUBLE_EQ(l.fraction(EnergyUse::kTransmit), 0.6);
  EXPECT_DOUBLE_EQ(l.fraction(EnergyUse::kReceive), 0.3);
  EXPECT_DOUBLE_EQ(l.fraction(EnergyUse::kAggregate), 0.1);
  EXPECT_DOUBLE_EQ(l.fraction(EnergyUse::kControl), 0.0);
}

TEST(EnergyLedger, MergeAddsBuckets) {
  EnergyLedger a, b;
  a.charge(EnergyUse::kTransmit, 1.0);
  b.charge(EnergyUse::kTransmit, 2.0);
  b.charge(EnergyUse::kControl, 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.by_use(EnergyUse::kTransmit), 3.0);
  EXPECT_DOUBLE_EQ(a.by_use(EnergyUse::kControl), 4.0);
  EXPECT_DOUBLE_EQ(a.total(), 7.0);
}

TEST(EnergyLedger, SummaryMentionsAllBuckets) {
  EnergyLedger l;
  l.charge(EnergyUse::kTransmit, 1.0);
  const std::string s = l.summary();
  EXPECT_NE(s.find("tx="), std::string::npos);
  EXPECT_NE(s.find("rx="), std::string::npos);
  EXPECT_NE(s.find("agg="), std::string::npos);
  EXPECT_NE(s.find("ctl="), std::string::npos);
  EXPECT_NE(s.find("mac="), std::string::npos);
  EXPECT_NE(s.find("total="), std::string::npos);
}

TEST(EnergyUseName, AllNamed) {
  EXPECT_STREQ(energy_use_name(EnergyUse::kTransmit), "tx");
  EXPECT_STREQ(energy_use_name(EnergyUse::kReceive), "rx");
  EXPECT_STREQ(energy_use_name(EnergyUse::kAggregate), "agg");
  EXPECT_STREQ(energy_use_name(EnergyUse::kControl), "ctl");
  EXPECT_STREQ(energy_use_name(EnergyUse::kMac), "mac");
}

}  // namespace
}  // namespace qlec
