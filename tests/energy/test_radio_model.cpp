#include "energy/radio_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

TEST(RadioParams, DefaultsMatchTable2) {
  const RadioParams p;
  EXPECT_DOUBLE_EQ(p.eps_fs, 10e-12);
  EXPECT_DOUBLE_EQ(p.eps_mp, 0.0013e-12);
  EXPECT_DOUBLE_EQ(p.e_elec, 50e-9);
  EXPECT_DOUBLE_EQ(p.e_da, 5e-9);
}

TEST(RadioParams, CrossoverDistance) {
  const RadioParams p;
  // d0 = sqrt(10 / 0.0013) ~ 87.7 m.
  EXPECT_NEAR(p.d0(), 87.7058, 1e-3);
}

TEST(RadioModel, FreeSpaceRegimeBelowD0) {
  const RadioModel m;
  const double bits = 1000.0;
  const double d = 50.0;  // < d0
  EXPECT_DOUBLE_EQ(m.amp_energy(bits, d),
                   bits * m.params().eps_fs * d * d);
  EXPECT_DOUBLE_EQ(m.tx_energy(bits, d),
                   bits * m.params().e_elec + m.amp_energy(bits, d));
}

TEST(RadioModel, MultiPathRegimeAboveD0) {
  const RadioModel m;
  const double bits = 1000.0;
  const double d = 200.0;  // > d0
  EXPECT_DOUBLE_EQ(m.amp_energy(bits, d),
                   bits * m.params().eps_mp * d * d * d * d);
}

TEST(RadioModel, ContinuousAtCrossover) {
  const RadioModel m;
  const double d0 = m.d0();
  const double below = m.amp_energy(1000.0, d0 * (1 - 1e-9));
  const double above = m.amp_energy(1000.0, d0);
  // eps_fs d0^2 == eps_mp d0^4 by construction of d0.
  EXPECT_NEAR(below, above, above * 1e-6);
}

TEST(RadioModel, NegativeDistanceClampsToZero) {
  const RadioModel m;
  EXPECT_DOUBLE_EQ(m.amp_energy(1000.0, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(m.tx_energy(1000.0, -5.0),
                   1000.0 * m.params().e_elec);
}

TEST(RadioModel, RxAndAggregationScaleWithBits) {
  const RadioModel m;
  EXPECT_DOUBLE_EQ(m.rx_energy(4000.0), 4000.0 * 50e-9);
  EXPECT_DOUBLE_EQ(m.aggregation_energy(4000.0), 4000.0 * 5e-9);
  EXPECT_DOUBLE_EQ(m.rx_energy(0.0), 0.0);
}

TEST(RadioModel, TxMonotoneInDistance) {
  const RadioModel m;
  double prev = -1.0;
  for (double d = 0.0; d <= 400.0; d += 10.0) {
    const double e = m.tx_energy(2000.0, d);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(RadioModel, TxLinearInBits) {
  const RadioModel m;
  const double e1 = m.tx_energy(1000.0, 120.0);
  const double e2 = m.tx_energy(2000.0, 120.0);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-18);
}

TEST(RadioModel, RoundEnergyEq6Structure) {
  const RadioModel m;
  const double bits = 4000.0;
  // With k = 0 and d_to_ch = 0 only the electronics + aggregation remain.
  const double base = m.round_energy(bits, 100, 0, 130.0, 0.0);
  EXPECT_DOUBLE_EQ(base, bits * (2.0 * 100 * 50e-9 + 100 * 5e-9));
  // Adding heads adds k * eps_mp * d^4 per bit.
  const double with_heads = m.round_energy(bits, 100, 5, 130.0, 0.0);
  EXPECT_NEAR(with_heads - base,
              bits * 5 * 0.0013e-12 * std::pow(130.0, 4), 1e-12);
  // Adding member distance adds N * eps_fs * d_to_ch^2 per bit.
  const double with_members = m.round_energy(bits, 100, 5, 130.0, 40.0);
  EXPECT_NEAR(with_members - with_heads, bits * 100 * 10e-12 * 1600.0,
              1e-12);
}

TEST(RadioModel, CustomParamsRespected) {
  RadioParams p;
  p.e_elec = 1e-9;
  p.eps_fs = 2e-12;
  p.eps_mp = 2e-12;  // d0 = 1
  const RadioModel m(p);
  EXPECT_DOUBLE_EQ(m.d0(), 1.0);
  EXPECT_DOUBLE_EQ(m.tx_energy(100.0, 0.5),
                   100.0 * 1e-9 + 100.0 * 2e-12 * 0.25);
}

}  // namespace
}  // namespace qlec
