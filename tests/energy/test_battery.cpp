#include "energy/battery.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(Battery, StartsFull) {
  const Battery b(5.0);
  EXPECT_DOUBLE_EQ(b.initial(), 5.0);
  EXPECT_DOUBLE_EQ(b.residual(), 5.0);
  EXPECT_DOUBLE_EQ(b.consumed(), 0.0);
  EXPECT_DOUBLE_EQ(b.consumption_rate(), 0.0);
}

TEST(Battery, NegativeCapacityClampsToZero) {
  const Battery b(-2.0);
  EXPECT_DOUBLE_EQ(b.initial(), 0.0);
  EXPECT_DOUBLE_EQ(b.residual(), 0.0);
}

TEST(Battery, ConsumeDrains) {
  Battery b(5.0);
  EXPECT_DOUBLE_EQ(b.consume(1.5), 1.5);
  EXPECT_DOUBLE_EQ(b.residual(), 3.5);
  EXPECT_DOUBLE_EQ(b.consumed(), 1.5);
  EXPECT_DOUBLE_EQ(b.consumption_rate(), 0.3);
}

TEST(Battery, ConsumeClampsAtEmpty) {
  Battery b(1.0);
  EXPECT_DOUBLE_EQ(b.consume(3.0), 1.0);  // only 1 J available
  EXPECT_DOUBLE_EQ(b.residual(), 0.0);
  EXPECT_DOUBLE_EQ(b.consume(1.0), 0.0);  // nothing left
}

TEST(Battery, NegativeConsumeIsNoop) {
  Battery b(2.0);
  EXPECT_DOUBLE_EQ(b.consume(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(b.residual(), 2.0);
}

TEST(Battery, AliveAgainstDeathLine) {
  Battery b(5.0);
  EXPECT_TRUE(b.alive(0.0));
  EXPECT_TRUE(b.alive(4.9));
  EXPECT_FALSE(b.alive(5.0));  // strict >
  b.consume(5.0);
  EXPECT_FALSE(b.alive(0.0));
  EXPECT_TRUE(b.alive(-0.1));
}

TEST(Battery, RechargeCapsAtInitial) {
  Battery b(5.0);
  b.consume(3.0);
  b.recharge(1.0);
  EXPECT_DOUBLE_EQ(b.residual(), 3.0);
  b.recharge(100.0);
  EXPECT_DOUBLE_EQ(b.residual(), 5.0);
  b.recharge(-2.0);  // ignored
  EXPECT_DOUBLE_EQ(b.residual(), 5.0);
}

TEST(Battery, ZeroCapacityRateIsZero) {
  const Battery b(0.0);
  EXPECT_DOUBLE_EQ(b.consumption_rate(), 0.0);
}

TEST(Battery, ManySmallDrawsSumExactly) {
  Battery b(1.0);
  for (int i = 0; i < 1000; ++i) b.consume(1e-4);
  EXPECT_NEAR(b.consumed(), 0.1, 1e-12);
  EXPECT_NEAR(b.residual(), 0.9, 1e-12);
}

}  // namespace
}  // namespace qlec
