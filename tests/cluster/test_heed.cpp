#include "cluster/heed.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

Network uniform_net(std::size_t n, Rng& rng, double energy = 5.0) {
  const Aabb box = Aabb::cube(100.0);
  return Network(sample_uniform(n, box, rng), energy, box.center(), box);
}

HeedConfig config(double range = 30.0) {
  HeedConfig cfg;
  cfg.cluster_range = range;
  cfg.c_prob = 0.1;
  return cfg;
}

TEST(Heed, CoverageGuarantee) {
  Rng rng(1);
  Network net = uniform_net(150, rng);
  const HeedResult r = heed_elect(net, config(25.0), 0, rng, 0.0);
  ASSERT_FALSE(r.heads.empty());
  // Every alive node is within range of a TENTATIVE head; after the
  // suppression pass a surviving head may be a bit farther, but never more
  // than two ranges away (a removed head was itself within one range of
  // its dominator).
  for (const SensorNode& n : net.nodes()) {
    double best = 1e18;
    for (const int h : r.heads) best = std::min(best, net.dist(n.id, h));
    EXPECT_LE(best, 2 * 25.0 + 1e-9) << "node " << n.id;
  }
}

TEST(Heed, HeadsAreFlaggedAndStamped) {
  Rng rng(2);
  Network net = uniform_net(60, rng);
  const HeedResult r = heed_elect(net, config(), 7, rng, 0.0);
  EXPECT_EQ(net.head_ids(), r.heads);
  for (const int h : r.heads)
    EXPECT_EQ(net.node(h).last_head_round, 7);
}

TEST(Heed, NoTwoHeadsWithinRangeUnlessEnergyJustifies) {
  Rng rng(3);
  Network net = uniform_net(200, rng);
  const HeedConfig cfg = config(30.0);
  const HeedResult r = heed_elect(net, cfg, 0, rng, 0.0);
  for (const int a : r.heads) {
    for (const int b : r.heads) {
      if (a == b) continue;
      if (net.dist(a, b) <= cfg.cluster_range) {
        // Survivor pairs within range can only happen when each dominated
        // the other's remover — with equal energies, ties break on id, so
        // this must not occur at all.
        ADD_FAILURE() << "heads " << a << " and " << b << " overlap";
      }
    }
  }
}

TEST(Heed, RicherNodesBecomeHeadsMoreOften) {
  Rng rng(4);
  Network net = uniform_net(100, rng);
  for (int i = 0; i < 50; ++i) net.node(i).battery.consume(4.0);
  int rich = 0, poor = 0;
  for (int r = 0; r < 30; ++r) {
    for (const int h : heed_elect(net, config(), r, rng, 0.0).heads)
      (h < 50 ? poor : rich) += 1;
  }
  EXPECT_GT(rich, poor);
}

TEST(Heed, SmallerRangeMeansMoreHeads) {
  Rng rng(5);
  Network net_a = uniform_net(200, rng);
  Rng rng2(5);
  Network net_b = uniform_net(200, rng2);
  Rng ra(9), rb(9);
  const auto many = heed_elect(net_a, config(15.0), 0, ra, 0.0);
  const auto few = heed_elect(net_b, config(60.0), 0, rb, 0.0);
  EXPECT_GT(many.heads.size(), few.heads.size());
}

TEST(Heed, AllDeadElectsNobody) {
  Rng rng(6);
  Network net = uniform_net(10, rng);
  for (auto& n : net.nodes()) n.battery.consume(5.0);
  const HeedResult r = heed_elect(net, config(), 0, rng, 0.0);
  EXPECT_TRUE(r.heads.empty());
}

TEST(Heed, SingleNodeBecomesHead) {
  Rng rng(7);
  Network net = uniform_net(1, rng);
  const HeedResult r = heed_elect(net, config(), 0, rng, 0.0);
  ASSERT_EQ(r.heads.size(), 1u);
  EXPECT_EQ(r.heads[0], 0);
}

TEST(Heed, IterationsBounded) {
  Rng rng(8);
  Network net = uniform_net(150, rng);
  HeedConfig cfg = config();
  cfg.max_iterations = 5;
  const HeedResult r = heed_elect(net, cfg, 0, rng, 0.0);
  EXPECT_LE(r.iterations, 5);
  EXPECT_FALSE(r.heads.empty());
}

}  // namespace
}  // namespace qlec
