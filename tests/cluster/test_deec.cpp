#include "cluster/deec.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

Network uniform_net(std::size_t n, double energy, Rng& rng) {
  const Aabb box = Aabb::cube(100.0);
  return Network(sample_uniform(n, box, rng), energy, box.center(), box);
}

TEST(DeecAvgEnergy, Eq2LinearDecay) {
  // Ebar(r) = (1/N) * E_init_total * (1 - r/R).
  EXPECT_DOUBLE_EQ(deec_avg_energy_estimate(500.0, 100, 0, 20), 5.0);
  EXPECT_DOUBLE_EQ(deec_avg_energy_estimate(500.0, 100, 10, 20), 2.5);
  EXPECT_DOUBLE_EQ(deec_avg_energy_estimate(500.0, 100, 20, 20), 0.0);
}

TEST(DeecAvgEnergy, ClampsPastEndOfLife) {
  EXPECT_DOUBLE_EQ(deec_avg_energy_estimate(500.0, 100, 30, 20), 0.0);
}

TEST(DeecAvgEnergy, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(deec_avg_energy_estimate(500.0, 0, 0, 20), 0.0);
  EXPECT_DOUBLE_EQ(deec_avg_energy_estimate(500.0, 100, 0, 0), 0.0);
}

TEST(DeecProbability, Eq1Proportionality) {
  // p_i = p_opt * E_i / Ebar.
  EXPECT_DOUBLE_EQ(deec_probability(0.05, 5.0, 5.0), 0.05);
  EXPECT_DOUBLE_EQ(deec_probability(0.05, 10.0, 5.0), 0.10);
  EXPECT_DOUBLE_EQ(deec_probability(0.05, 2.5, 5.0), 0.025);
}

TEST(DeecProbability, ClampedToUnitInterval) {
  EXPECT_DOUBLE_EQ(deec_probability(0.5, 100.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(deec_probability(0.05, 0.0, 5.0), 0.0);
}

TEST(DeecProbability, ZeroAverageFallsBackToPopt) {
  EXPECT_DOUBLE_EQ(deec_probability(0.05, 3.0, 0.0), 0.05);
}

TEST(DeecThreshold, MatchesLeachFormWithScaledP) {
  EXPECT_DOUBLE_EQ(deec_threshold(0.1, 0), 0.1);
  EXPECT_NEAR(deec_threshold(0.1, 9), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(deec_threshold(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(deec_threshold(1.5, 3), 1.0);
}

TEST(DeecEligible, RotatingEpochFromPi) {
  EXPECT_TRUE(deec_eligible(kNeverHead, 0, 0.1));
  EXPECT_FALSE(deec_eligible(5, 10, 0.1));  // epoch 10, only 5 rounds
  EXPECT_TRUE(deec_eligible(5, 15, 0.1));
}

TEST(DeecElect, HigherEnergyNodesElectedMoreOften) {
  Rng rng(1);
  Network net = uniform_net(100, 5.0, rng);
  // Drain half the nodes to 20%.
  for (int i = 0; i < 50; ++i) net.node(i).battery.consume(4.0);
  DeecParams params;
  params.p_opt = 0.1;
  params.total_rounds = 200;
  params.use_estimated_average = false;  // use the true average
  int rich_heads = 0, poor_heads = 0;
  for (int r = 0; r < 100; ++r) {
    for (const int h : deec_elect(net, params, r, rng, 0.0))
      (h < 50 ? poor_heads : rich_heads) += 1;
  }
  EXPECT_GT(rich_heads, 2 * poor_heads);
}

TEST(DeecElect, NeverEmptyWhileAlive) {
  Rng rng(2);
  Network net = uniform_net(30, 5.0, rng);
  DeecParams params;
  params.p_opt = 0.03;
  params.total_rounds = 50;
  for (int r = 0; r < 50; ++r)
    EXPECT_FALSE(deec_elect(net, params, r, rng, 0.0).empty());
}

TEST(DeecElect, RespectsDeathLine) {
  Rng rng(3);
  Network net = uniform_net(20, 5.0, rng);
  for (int i = 0; i < 10; ++i) net.node(i).battery.consume(4.5);  // 0.5 J left
  DeecParams params;
  params.p_opt = 0.3;
  params.total_rounds = 100;
  for (int r = 0; r < 20; ++r) {
    for (const int h : deec_elect(net, params, r, rng, /*death_line=*/1.0))
      EXPECT_GE(h, 10);
  }
}

TEST(DeecElect, StampsLastHeadRound) {
  Rng rng(4);
  Network net = uniform_net(25, 5.0, rng);
  DeecParams params;
  params.p_opt = 0.2;
  params.total_rounds = 30;
  const auto heads = deec_elect(net, params, 7, rng, 0.0);
  for (const int h : heads) EXPECT_EQ(net.node(h).last_head_round, 7);
}

TEST(DeecElect, EstimatedVsMeasuredAverageBothWork) {
  Rng rng(5);
  Network net_a = uniform_net(60, 5.0, rng);
  Rng rng2(5);
  Network net_b = uniform_net(60, 5.0, rng2);
  DeecParams est;
  est.p_opt = 0.1;
  est.total_rounds = 40;
  est.use_estimated_average = true;
  DeecParams meas = est;
  meas.use_estimated_average = false;
  Rng ra(9), rb(9);
  EXPECT_FALSE(deec_elect(net_a, est, 0, ra, 0.0).empty());
  EXPECT_FALSE(deec_elect(net_b, meas, 0, rb, 0.0).empty());
}

}  // namespace
}  // namespace qlec
