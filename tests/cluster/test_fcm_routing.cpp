#include "cluster/fcm_routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qlec {
namespace {

// A line of heads at increasing distance from the BS at the origin.
Network line_network() {
  std::vector<Vec3> pts;
  for (int i = 0; i < 8; ++i)
    pts.push_back({static_cast<double>(10 * (i + 1)), 0, 0});
  return Network(pts, 5.0, /*bs=*/{0, 0, 0}, Aabb::cube(100.0));
}

TEST(FcmHierarchy, EmptyHeads) {
  const Network net = line_network();
  const FcmHierarchy h = build_fcm_hierarchy(net, {}, 3);
  EXPECT_EQ(h.levels, 0);
  EXPECT_TRUE(h.head_ids.empty());
}

TEST(FcmHierarchy, LevelsPartitionByDistance) {
  const Network net = line_network();
  const std::vector<int> heads{0, 1, 2, 3, 4, 5, 6, 7};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 4);
  ASSERT_EQ(h.level_of.size(), 8u);
  EXPECT_EQ(h.levels, 4);
  EXPECT_DOUBLE_EQ(h.band_width, 20.0);
  // Distances 10..80; band width 20 with floor(d / band), clamped:
  // d=10 -> 0, d=20 -> 1, d=40 -> 2, d=80 -> 4 clamped to 3.
  EXPECT_EQ(h.level_of[0], 0);
  EXPECT_EQ(h.level_of[1], 1);
  EXPECT_EQ(h.level_of[3], 2);
  EXPECT_EQ(h.level_of[7], 3);
}

TEST(FcmHierarchy, LevelsMonotoneInDistance) {
  const Network net = line_network();
  const std::vector<int> heads{0, 1, 2, 3, 4, 5, 6, 7};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 3);
  for (std::size_t i = 1; i < heads.size(); ++i)
    EXPECT_GE(h.level_of[i], h.level_of[i - 1]);
}

TEST(FcmHierarchy, LevelsClampedToHeadCount) {
  const Network net = line_network();
  const std::vector<int> heads{0, 1};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 10);
  EXPECT_LE(h.levels, 2);
}

TEST(FcmNextHop, InnermostGoesToBs) {
  const Network net = line_network();
  const std::vector<int> heads{0, 3, 7};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 3);
  EXPECT_EQ(fcm_next_hop(net, h, 0), kBaseStationId);
}

TEST(FcmNextHop, OuterHopsToNearestInnerHead) {
  const Network net = line_network();
  const std::vector<int> heads{0, 3, 7};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 3);
  // Head 7 (d=80, outermost) should relay via head 3 (d=40) — the nearest
  // strictly-inner head — not jump to 0 or the BS.
  EXPECT_EQ(fcm_next_hop(net, h, 7), 3);
  EXPECT_EQ(fcm_next_hop(net, h, 3), 0);
}

TEST(FcmNextHop, UnknownHeadGoesToBs) {
  const Network net = line_network();
  const FcmHierarchy h = build_fcm_hierarchy(net, {1, 5}, 2);
  EXPECT_EQ(fcm_next_hop(net, h, 6), kBaseStationId);
}

TEST(FcmRouteToBs, PathTerminatesAtBs) {
  const Network net = line_network();
  const std::vector<int> heads{0, 2, 4, 6};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 4);
  const auto path = fcm_route_to_bs(net, h, 6);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), kBaseStationId);
  // Strictly descending levels => no repeats, bounded length.
  EXPECT_LE(path.size(), heads.size() + 1);
}

TEST(FcmRouteToBs, OuterPathsAreLonger) {
  const Network net = line_network();
  const std::vector<int> heads{0, 2, 4, 6};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 4);
  EXPECT_GT(fcm_route_to_bs(net, h, 6).size(),
            fcm_route_to_bs(net, h, 0).size());
}

TEST(FcmRouteToBs, SingleLevelEveryoneDirect) {
  const Network net = line_network();
  const std::vector<int> heads{1, 4, 7};
  const FcmHierarchy h = build_fcm_hierarchy(net, heads, 1);
  for (const int head : heads) {
    const auto path = fcm_route_to_bs(net, h, head);
    EXPECT_EQ(path, (std::vector<int>{kBaseStationId}));
  }
}

}  // namespace
}  // namespace qlec
