#include "cluster/tl_leach.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

Network uniform_net(std::size_t n, Rng& rng) {
  const Aabb box = Aabb::cube(100.0);
  return Network(sample_uniform(n, box, rng), 5.0, box.center(), box);
}

TEST(TlLeach, ElectsTwoLevels) {
  Rng rng(1);
  Network net = uniform_net(200, rng);
  const TlLeachLevels levels =
      tl_leach_elect(net, 0.05, 0.2, 0, rng, 0.0);
  EXPECT_FALSE(levels.primaries.empty());
  EXPECT_FALSE(levels.secondaries.empty());
  // Levels are disjoint.
  for (const int p : levels.primaries)
    EXPECT_TRUE(std::find(levels.secondaries.begin(),
                          levels.secondaries.end(),
                          p) == levels.secondaries.end());
}

TEST(TlLeach, AllLevelHeadsAreFlagged) {
  Rng rng(2);
  Network net = uniform_net(100, rng);
  const TlLeachLevels levels =
      tl_leach_elect(net, 0.05, 0.15, 0, rng, 0.0);
  for (const int p : levels.primaries) EXPECT_TRUE(net.node(p).is_head);
  for (const int s : levels.secondaries) EXPECT_TRUE(net.node(s).is_head);
  EXPECT_EQ(net.head_ids().size(),
            levels.primaries.size() + levels.secondaries.size());
}

TEST(TlLeach, SecondariesOutnumberPrimariesOnAverage) {
  Rng rng(3);
  Network net = uniform_net(300, rng);
  std::size_t primaries = 0, secondaries = 0;
  for (int r = 0; r < 20; ++r) {
    const TlLeachLevels levels =
        tl_leach_elect(net, 0.03, 0.15, r, rng, 0.0);
    primaries += levels.primaries.size();
    secondaries += levels.secondaries.size();
  }
  EXPECT_GT(secondaries, primaries);
}

TEST(TlLeach, AlwaysHasAPrimaryWhileAlive) {
  Rng rng(4);
  Network net = uniform_net(20, rng);
  for (int r = 0; r < 50; ++r) {
    const TlLeachLevels levels =
        tl_leach_elect(net, 0.01, 0.05, r, rng, 0.0);
    EXPECT_FALSE(levels.primaries.empty()) << "round " << r;
  }
}

TEST(TlLeach, DeadNodesExcluded) {
  Rng rng(5);
  Network net = uniform_net(50, rng);
  for (int i = 0; i < 25; ++i) net.node(i).battery.consume(5.0);
  for (int r = 0; r < 10; ++r) {
    const TlLeachLevels levels =
        tl_leach_elect(net, 0.1, 0.3, r, rng, 0.0);
    for (const int p : levels.primaries) EXPECT_GE(p, 25);
    for (const int s : levels.secondaries) EXPECT_GE(s, 25);
  }
}

TEST(TlLeachPrimaryFor, PicksNearestLivePrimary) {
  const std::vector<Vec3> pts{
      {10, 0, 0}, {20, 0, 0}, {85, 0, 0}, {50, 0, 0}};
  Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(100.0));
  TlLeachLevels levels;
  levels.primaries = {1, 2};    // at x=20 (30 m away) and x=85 (35 m)
  levels.secondaries = {3};     // at x=50
  EXPECT_EQ(tl_leach_primary_for(net, levels, 3, 0.0), 1);
  net.node(1).battery.consume(5.0);  // kill the near primary
  EXPECT_EQ(tl_leach_primary_for(net, levels, 3, 0.0), 2);
}

TEST(TlLeachPrimaryFor, NoPrimariesFallsBackToBs) {
  const std::vector<Vec3> pts{{10, 0, 0}};
  Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(100.0));
  TlLeachLevels levels;
  EXPECT_EQ(tl_leach_primary_for(net, levels, 0, 0.0), kBaseStationId);
}

}  // namespace
}  // namespace qlec
