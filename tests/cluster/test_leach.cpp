#include "cluster/leach.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

Network uniform_net(std::size_t n, double energy, Rng& rng) {
  const Aabb box = Aabb::cube(100.0);
  return Network(sample_uniform(n, box, rng), energy, box.center(), box);
}

TEST(LeachThreshold, BaseProbabilityAtRoundZero) {
  EXPECT_DOUBLE_EQ(leach_threshold(0.1, 0), 0.1);
}

TEST(LeachThreshold, GrowsWithinEpoch) {
  const double p = 0.1;  // epoch 10
  double prev = 0.0;
  for (int r = 0; r < 10; ++r) {
    const double t = leach_threshold(p, r);
    EXPECT_GT(t, prev);
    prev = t;
  }
  // Last round of the epoch: p / (1 - p*9) = 1.0.
  EXPECT_NEAR(leach_threshold(p, 9), 1.0, 1e-9);
}

TEST(LeachThreshold, ResetsEachEpoch) {
  EXPECT_DOUBLE_EQ(leach_threshold(0.1, 10), leach_threshold(0.1, 0));
}

TEST(LeachThreshold, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(leach_threshold(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(leach_threshold(-0.3, 5), 0.0);
  EXPECT_DOUBLE_EQ(leach_threshold(1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(leach_threshold(1.7, 5), 1.0);
}

TEST(LeachEligible, RotationEpochBlocksRecentHeads) {
  const double p = 0.2;  // epoch 5
  EXPECT_TRUE(leach_eligible(kNeverHead, 0, p));
  EXPECT_FALSE(leach_eligible(3, 4, p));  // was head 1 round ago
  EXPECT_FALSE(leach_eligible(3, 7, p));  // 4 rounds ago, epoch is 5
  EXPECT_TRUE(leach_eligible(3, 8, p));   // 5 rounds ago
}

TEST(LeachEligible, ZeroProbabilityNeverEligible) {
  EXPECT_FALSE(leach_eligible(kNeverHead, 0, 0.0));
}

TEST(LeachElect, ElectsApproximatelyPN) {
  Rng rng(1);
  Network net = uniform_net(200, 5.0, rng);
  double total = 0.0;
  const int rounds = 40;
  for (int r = 0; r < rounds; ++r)
    total += static_cast<double>(
        leach_elect(net, 0.1, r, rng, 0.0).size());
  // Expect on average ~p*N = 20 heads/round; rotation makes it exact-ish
  // over an epoch. Allow generous slack.
  EXPECT_NEAR(total / rounds, 20.0, 8.0);
}

TEST(LeachElect, FlagsMatchReturnedIds) {
  Rng rng(2);
  Network net = uniform_net(50, 5.0, rng);
  const auto heads = leach_elect(net, 0.2, 0, rng, 0.0);
  EXPECT_EQ(net.head_ids(), heads);
  for (const int h : heads) EXPECT_EQ(net.node(h).last_head_round, 0);
}

TEST(LeachElect, NeverEmptyWhileNodesAlive) {
  Rng rng(3);
  Network net = uniform_net(30, 5.0, rng);
  for (int r = 0; r < 100; ++r)
    EXPECT_FALSE(leach_elect(net, 0.05, r, rng, 0.0).empty()) << r;
}

TEST(LeachElect, DeadNodesNeverElected) {
  Rng rng(4);
  Network net = uniform_net(40, 5.0, rng);
  for (int i = 0; i < 20; ++i) net.node(i).battery.consume(5.0);
  for (int r = 0; r < 20; ++r) {
    for (const int h : leach_elect(net, 0.2, r, rng, 0.0))
      EXPECT_GE(h, 20);
  }
}

TEST(LeachElect, AllDeadElectsNobody) {
  Rng rng(5);
  Network net = uniform_net(10, 1.0, rng);
  for (auto& n : net.nodes()) n.battery.consume(1.0);
  EXPECT_TRUE(leach_elect(net, 0.2, 0, rng, 0.0).empty());
}

TEST(LeachElect, RotationSpreadsHeadRole) {
  Rng rng(6);
  Network net = uniform_net(20, 5.0, rng);
  std::vector<int> times_head(20, 0);
  for (int r = 0; r < 60; ++r)
    for (const int h : leach_elect(net, 0.25, r, rng, 0.0))
      ++times_head[static_cast<std::size_t>(h)];
  // With a 4-round epoch over 60 rounds, nearly everyone should serve.
  int served = 0;
  for (const int t : times_head) served += t > 0 ? 1 : 0;
  EXPECT_GT(served, 16);
}

}  // namespace
}  // namespace qlec
