#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

std::vector<Vec3> three_blobs(Rng& rng, std::size_t per_blob) {
  const std::vector<Vec3> centers{
      {10, 10, 10}, {90, 90, 90}, {10, 90, 50}};
  return sample_clustered(per_blob * 3, Aabb::cube(100.0), centers, {},
                          /*sigma=*/2.0, rng);
}

TEST(Kmeans, EmptyInput) {
  Rng rng(1);
  const Clustering c = kmeans({}, 3, rng);
  EXPECT_TRUE(c.centroids.empty());
  EXPECT_TRUE(c.assignment.empty());
}

TEST(Kmeans, SinglePoint) {
  Rng rng(2);
  const Clustering c = kmeans({{1, 2, 3}}, 5, rng);  // k clamps to 1
  ASSERT_EQ(c.centroids.size(), 1u);
  EXPECT_EQ(c.centroids[0], (Vec3{1, 2, 3}));
  EXPECT_EQ(c.assignment, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(c.objective, 0.0);
}

TEST(Kmeans, AssignmentInRange) {
  Rng rng(3);
  const auto pts = sample_uniform(200, Aabb::cube(50.0), rng);
  const Clustering c = kmeans(pts, 7, rng);
  ASSERT_EQ(c.assignment.size(), 200u);
  for (const int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 7);
  }
}

TEST(Kmeans, RecoversWellSeparatedBlobs) {
  Rng rng(4);
  const auto pts = three_blobs(rng, 50);
  const Clustering c = kmeans(pts, 3, rng);
  // Every point should be within a few sigma of its centroid.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_LT(distance(pts[i],
                       c.centroids[static_cast<std::size_t>(
                           c.assignment[i])]),
              15.0);
  }
  EXPECT_LT(c.objective, 150.0 * 9.0 * 3.0);  // ~n * sigma^2 * dims scale
}

TEST(Kmeans, EachPointAssignedToNearestCentroid) {
  Rng rng(5);
  const auto pts = sample_uniform(120, Aabb::cube(80.0), rng);
  const Clustering c = kmeans(pts, 5, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double assigned = distance2(
        pts[i], c.centroids[static_cast<std::size_t>(c.assignment[i])]);
    for (const Vec3& cent : c.centroids)
      EXPECT_LE(assigned, distance2(pts[i], cent) + 1e-9);
  }
}

TEST(Kmeans, MoreClustersNeverWorseInertia) {
  Rng rng(6);
  const auto pts = sample_uniform(150, Aabb::cube(60.0), rng);
  // k-means is a heuristic, but with a common seed and well-behaved data
  // inertia should broadly decrease as k grows.
  Rng r2(7), r8(7);
  const double inertia2 = kmeans(pts, 2, r2).objective;
  const double inertia8 = kmeans(pts, 8, r8).objective;
  EXPECT_LT(inertia8, inertia2);
}

TEST(Kmeans, KEqualsNGivesZeroInertia) {
  Rng rng(8);
  const auto pts = sample_uniform(12, Aabb::cube(30.0), rng);
  const Clustering c = kmeans(pts, 12, rng);
  EXPECT_NEAR(c.objective, 0.0, 1e-9);
}

TEST(Kmeans, DuplicatePointsHandled) {
  Rng rng(9);
  const std::vector<Vec3> pts(20, Vec3{5, 5, 5});
  const Clustering c = kmeans(pts, 3, rng);
  ASSERT_EQ(c.assignment.size(), 20u);
  EXPECT_NEAR(c.objective, 0.0, 1e-9);
}

TEST(Kmeans, IterationsReported) {
  Rng rng(10);
  const auto pts = sample_uniform(100, Aabb::cube(40.0), rng);
  const Clustering c = kmeans(pts, 4, rng);
  EXPECT_GE(c.iterations, 1);
  EXPECT_LE(c.iterations, 100);
}

TEST(Inertia, MatchesManualComputation) {
  const std::vector<Vec3> pts{{0, 0, 0}, {2, 0, 0}};
  const std::vector<Vec3> cents{{1, 0, 0}};
  EXPECT_DOUBLE_EQ(inertia(pts, cents, {0, 0}), 2.0);
}

TEST(NearestPointsToCentroids, PicksDistinctNearest) {
  const std::vector<Vec3> pts{{0, 0, 0}, {10, 0, 0}, {20, 0, 0}};
  const std::vector<Vec3> cents{{1, 0, 0}, {19, 0, 0}};
  const auto heads = nearest_points_to_centroids(pts, cents);
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], 0u);
  EXPECT_EQ(heads[1], 2u);
}

TEST(NearestPointsToCentroids, SharedNearestResolvedGreedily) {
  // Both centroids are nearest to point 0; the second must take another.
  const std::vector<Vec3> pts{{0, 0, 0}, {5, 0, 0}};
  const std::vector<Vec3> cents{{0.1, 0, 0}, {0.2, 0, 0}};
  const auto heads = nearest_points_to_centroids(pts, cents);
  ASSERT_EQ(heads.size(), 2u);
  const std::set<std::size_t> unique(heads.begin(), heads.end());
  EXPECT_EQ(unique.size(), 2u);
}

TEST(NearestPointsToCentroids, MoreCentroidsThanPoints) {
  const std::vector<Vec3> pts{{0, 0, 0}};
  const std::vector<Vec3> cents{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}};
  const auto heads = nearest_points_to_centroids(pts, cents);
  EXPECT_EQ(heads.size(), 1u);
}

// Property sweep: the k-means objective never increases when re-running
// assignment against the returned centroids (fixed-point consistency).
class KmeansProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KmeansProperty, ReturnedAssignmentIsStable) {
  Rng rng(100 + GetParam());
  const auto pts = sample_uniform(100, Aabb::cube(70.0), rng);
  const Clustering c = kmeans(pts, GetParam(), rng);
  // Reassigning against final centroids should not change the objective.
  std::vector<int> re(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    int best = 0;
    double best_d2 = distance2(pts[i], c.centroids[0]);
    for (std::size_t k = 1; k < c.centroids.size(); ++k) {
      const double d2 = distance2(pts[i], c.centroids[k]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<int>(k);
      }
    }
    re[i] = best;
  }
  EXPECT_NEAR(inertia(pts, c.centroids, re), c.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ks, KmeansProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace qlec
