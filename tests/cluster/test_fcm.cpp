#include "cluster/fcm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

TEST(Fcm, EmptyInput) {
  Rng rng(1);
  const FcmResult r = fuzzy_cmeans({}, 3, rng);
  EXPECT_TRUE(r.centers.empty());
  EXPECT_TRUE(r.membership.empty());
}

TEST(Fcm, MembershipRowsSumToOne) {
  Rng rng(2);
  const auto pts = sample_uniform(80, Aabb::cube(50.0), rng);
  const FcmResult r = fuzzy_cmeans(pts, 4, rng);
  ASSERT_EQ(r.membership.size(), 80u);
  for (const auto& row : r.membership) {
    ASSERT_EQ(row.size(), 4u);
    double sum = 0.0;
    for (const double u : row) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0 + 1e-12);
      sum += u;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Fcm, SeparatedBlobsGetCrispMemberships) {
  Rng rng(3);
  const std::vector<Vec3> centers{{10, 10, 10}, {90, 90, 90}};
  const auto pts = sample_clustered(100, Aabb::cube(100.0), centers, {},
                                    2.0, rng);
  const FcmResult r = fuzzy_cmeans(pts, 2, rng);
  // Points near a blob center should be dominated by one membership.
  int crisp = 0;
  for (const auto& row : r.membership)
    if (std::max(row[0], row[1]) > 0.9) ++crisp;
  EXPECT_GT(crisp, 90);
}

TEST(Fcm, CentersNearBlobCenters) {
  Rng rng(4);
  const std::vector<Vec3> centers{{10, 10, 10}, {90, 90, 90}};
  const auto pts = sample_clustered(200, Aabb::cube(100.0), centers, {},
                                    2.0, rng);
  const FcmResult r = fuzzy_cmeans(pts, 2, rng);
  ASSERT_EQ(r.centers.size(), 2u);
  // Each true center should have an FCM center within a few units.
  for (const Vec3& c : centers) {
    const double d = std::min(distance(r.centers[0], c),
                              distance(r.centers[1], c));
    EXPECT_LT(d, 5.0);
  }
}

TEST(Fcm, HardenPicksArgmax) {
  FcmResult r;
  r.membership = {{0.2, 0.8}, {0.9, 0.1}};
  r.centers = {{0, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(r.harden(), (std::vector<int>{1, 0}));
}

TEST(Fcm, CoincidentPointGetsFullMembership) {
  Rng rng(5);
  // A point exactly on a center must not divide by zero.
  std::vector<Vec3> pts{{0, 0, 0}, {0, 0, 0}, {10, 10, 10}, {10, 10, 10}};
  const FcmResult r = fuzzy_cmeans(pts, 2, rng);
  for (const auto& row : r.membership) {
    double sum = 0.0;
    for (const double u : row) {
      EXPECT_TRUE(std::isfinite(u));
      sum += u;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Fcm, ObjectiveIsFiniteAndNonNegative) {
  Rng rng(6);
  const auto pts = sample_uniform(60, Aabb::cube(40.0), rng);
  const FcmResult r = fuzzy_cmeans(pts, 3, rng);
  EXPECT_TRUE(std::isfinite(r.objective));
  EXPECT_GE(r.objective, 0.0);
}

TEST(Fcm, KClampedToPointCount) {
  Rng rng(7);
  const std::vector<Vec3> pts{{0, 0, 0}, {5, 5, 5}};
  const FcmResult r = fuzzy_cmeans(pts, 10, rng);
  EXPECT_EQ(r.centers.size(), 2u);
}

TEST(FcmSelectHeads, EnergyBreaksMembershipTies) {
  // Two nodes equally central; the one with more residual energy heads.
  FcmResult r;
  r.centers = {{0, 0, 0}};
  r.membership = {{1.0}, {1.0}};
  const std::vector<double> residual{1.0, 4.0};
  const std::vector<double> initial{5.0, 5.0};
  const auto heads = fcm_select_heads(r, residual, initial);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 1u);
}

TEST(FcmSelectHeads, MembershipMattersWhenEnergyEqual) {
  FcmResult r;
  r.centers = {{0, 0, 0}};
  r.membership = {{0.3}, {0.9}};
  const std::vector<double> residual{5.0, 5.0};
  const std::vector<double> initial{5.0, 5.0};
  const auto heads = fcm_select_heads(r, residual, initial);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 1u);
}

TEST(FcmSelectHeads, HeadsAreDistinct) {
  Rng rng(8);
  const auto pts = sample_uniform(40, Aabb::cube(60.0), rng);
  const FcmResult r = fuzzy_cmeans(pts, 5, rng);
  const std::vector<double> residual(40, 3.0);
  const std::vector<double> initial(40, 5.0);
  const auto heads = fcm_select_heads(r, residual, initial);
  EXPECT_EQ(heads.size(), 5u);
  const std::set<std::size_t> unique(heads.begin(), heads.end());
  EXPECT_EQ(unique.size(), heads.size());
}

TEST(FcmSelectHeads, EmptyInputs) {
  EXPECT_TRUE(fcm_select_heads(FcmResult{}, {}, {}).empty());
}

// Sweep the fuzzifier: memberships must stay a valid partition for every m.
class FcmFuzzifierSweep : public ::testing::TestWithParam<double> {};

TEST_P(FcmFuzzifierSweep, ValidPartitionMatrix) {
  Rng rng(9);
  const auto pts = sample_uniform(50, Aabb::cube(30.0), rng);
  FcmConfig cfg;
  cfg.fuzzifier = GetParam();
  const FcmResult r = fuzzy_cmeans(pts, 3, rng, cfg);
  for (const auto& row : r.membership) {
    double sum = 0.0;
    for (const double u : row) {
      EXPECT_TRUE(std::isfinite(u));
      EXPECT_GE(u, -1e-12);
      sum += u;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzzifiers, FcmFuzzifierSweep,
                         ::testing::Values(1.2, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace qlec
