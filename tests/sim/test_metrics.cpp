#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(SimResult, PdrComputations) {
  SimResult r;
  EXPECT_DOUBLE_EQ(r.pdr(), 1.0);  // nothing generated
  r.generated = 10;
  r.delivered = 7;
  EXPECT_DOUBLE_EQ(r.pdr(), 0.7);
}

TEST(AggregatedMetrics, CollectsAcrossResults) {
  AggregatedMetrics agg;
  SimResult a;
  a.protocol = "test";
  a.generated = 100;
  a.delivered = 90;
  a.total_energy_consumed = 2.0;
  a.first_death_round = 5;
  a.rounds_completed = 20;
  SimResult b = a;
  b.delivered = 80;
  b.total_energy_consumed = 4.0;
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.protocol, "test");
  EXPECT_EQ(agg.pdr.count(), 2u);
  EXPECT_NEAR(agg.pdr.mean(), 0.85, 1e-12);
  EXPECT_DOUBLE_EQ(agg.total_energy.mean(), 3.0);
  EXPECT_DOUBLE_EQ(agg.first_death.mean(), 5.0);
}

TEST(AggregatedMetrics, MissingDeathFallsBackToRoundsCompleted) {
  AggregatedMetrics agg;
  SimResult r;
  r.first_death_round = -1;  // no node died
  r.half_death_round = -1;
  r.rounds_completed = 40;
  agg.add(r);
  EXPECT_DOUBLE_EQ(agg.first_death.mean(), 40.0);
  EXPECT_DOUBLE_EQ(agg.half_death.mean(), 40.0);
}

TEST(AggregatedMetrics, FirstProtocolNameWins) {
  AggregatedMetrics agg;
  SimResult a;
  a.protocol = "one";
  SimResult b;
  b.protocol = "two";
  agg.add(a);
  agg.add(b);
  EXPECT_EQ(agg.protocol, "one");
}

}  // namespace
}  // namespace qlec
