#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

ExperimentConfig fast_experiment() {
  ExperimentConfig cfg;
  cfg.scenario.n = 30;
  cfg.sim.rounds = 4;
  cfg.sim.slots_per_round = 8;
  cfg.seeds = 3;
  cfg.protocol.k = 3;
  return cfg;
}

TEST(Experiment, BuildNetworkUniformAndTerrain) {
  ExperimentConfig cfg = fast_experiment();
  const Network u = build_network(cfg, 1);
  EXPECT_EQ(u.size(), 30u);
  cfg.deployment = Deployment::kTerrain;
  const Network t = build_network(cfg, 1);
  EXPECT_EQ(t.size(), 30u);
}

TEST(Experiment, DeploymentNamesRoundTrip) {
  // The closed enum replaced the stringly seam: unknown deployments are now
  // rejected at config-parse time (see tests/config), so the only name
  // surface left is this bijection.
  for (const Deployment d : {Deployment::kUniform, Deployment::kTerrain}) {
    const auto back = deployment_from_name(deployment_name(d));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, d);
  }
  EXPECT_FALSE(deployment_from_name("bogus").has_value());
  EXPECT_FALSE(deployment_from_name("").has_value());
}

TEST(Experiment, ReplicationsProduceOnePerSeed) {
  const auto results = run_replications("kmeans", fast_experiment());
  ASSERT_EQ(results.size(), 3u);
  for (const SimResult& r : results) {
    EXPECT_EQ(r.protocol, "k-means");
    EXPECT_EQ(r.rounds_completed, 4);
  }
}

TEST(Experiment, SeedsDifferButAreReproducible) {
  const auto a = run_replications("kmeans", fast_experiment());
  const auto b = run_replications("kmeans", fast_experiment());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].generated, b[i].generated);
    EXPECT_DOUBLE_EQ(a[i].total_energy_consumed,
                     b[i].total_energy_consumed);
  }
  // Different seeds should (almost surely) produce different trajectories.
  EXPECT_FALSE(a[0].generated == a[1].generated &&
               a[0].delivered == a[1].delivered &&
               a[0].total_energy_consumed == a[1].total_energy_consumed);
}

TEST(Experiment, ThreadPoolMatchesSerial) {
  const auto serial = run_replications("kmeans", fast_experiment());
  const auto parallel = run_replications("kmeans", fast_experiment(),
                                         ExecPolicy::pool(2));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].generated, parallel[i].generated);
    EXPECT_EQ(serial[i].delivered, parallel[i].delivered);
    EXPECT_DOUBLE_EQ(serial[i].total_energy_consumed,
                     parallel[i].total_energy_consumed);
  }
}

TEST(Experiment, AggregateCountsSeeds) {
  const AggregatedMetrics agg =
      run_experiment("kmeans", fast_experiment());
  EXPECT_EQ(agg.pdr.count(), 3u);
  EXPECT_EQ(agg.total_energy.count(), 3u);
  EXPECT_GT(agg.generated.mean(), 0.0);
}

TEST(Experiment, AllRegistryProtocolsRun) {
  for (const std::string& name : protocol_names()) {
    ExperimentConfig cfg = fast_experiment();
    cfg.seeds = 1;
    const auto results = run_replications(name, cfg);
    ASSERT_EQ(results.size(), 1u) << name;
    EXPECT_GT(results[0].generated, 0u) << name;
  }
}

TEST(Experiment, UnknownProtocolThrows) {
  EXPECT_THROW(run_replications("nope", fast_experiment()),
               std::invalid_argument);
}

TEST(ExecPolicyApi, ModesExposeTheirConfiguration) {
  const ExecPolicy s = ExecPolicy::serial();
  EXPECT_TRUE(s.is_serial());
  EXPECT_FALSE(s.is_pool());
  EXPECT_EQ(s.borrowed(), nullptr);

  const ExecPolicy p = ExecPolicy::pool(6);
  EXPECT_TRUE(p.is_pool());
  EXPECT_EQ(p.threads(), 6u);
  EXPECT_EQ(ExecPolicy::pool().threads(), 0u);  // 0 = hardware default

  ThreadPool tp(1);
  const ExecPolicy b = ExecPolicy::borrow(tp);
  EXPECT_TRUE(b.is_borrow());
  EXPECT_EQ(b.borrowed(), &tp);
}

TEST(ExecPolicyApi, BorrowedPoolMatchesSerial) {
  ThreadPool tp(2);
  const auto serial = run_replications("kmeans", fast_experiment());
  const auto borrowed = run_replications("kmeans", fast_experiment(),
                                         ExecPolicy::borrow(tp));
  ASSERT_EQ(serial.size(), borrowed.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].generated, borrowed[i].generated);
    EXPECT_EQ(serial[i].delivered, borrowed[i].delivered);
    EXPECT_DOUBLE_EQ(serial[i].total_energy_consumed,
                     borrowed[i].total_energy_consumed);
  }
}

}  // namespace
}  // namespace qlec
