#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "sim/protocols/direct_protocol.hpp"
#include "sim/protocols/kmeans_protocol.hpp"
#include "sim/scenario.hpp"

namespace qlec {
namespace {

Network small_network(Rng& rng, std::size_t n = 40, double energy = 5.0) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.m_side = 200.0;
  cfg.initial_energy = energy;
  return make_uniform_network(cfg, rng);
}

SimConfig fast_config() {
  SimConfig cfg;
  cfg.rounds = 5;
  cfg.slots_per_round = 10;
  cfg.mean_interarrival = 4.0;
  return cfg;
}

TEST(Simulator, PacketAccountingBalances) {
  Rng rng(1);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  const SimConfig cfg = fast_config();
  Rng sim_rng(2);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_GT(r.generated, 0u);
  // Conservation: every generated packet is delivered or lost somewhere.
  EXPECT_EQ(r.generated,
            r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
}

TEST(Simulator, PdrInUnitInterval) {
  Rng rng(3);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  Rng sim_rng(4);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_GE(r.pdr(), 0.0);
  EXPECT_LE(r.pdr(), 1.0);
}

TEST(Simulator, EnergyLedgerMatchesBatteryDrain) {
  Rng rng(5);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  Rng sim_rng(6);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  // Everything the ledger recorded was actually drawn from batteries (and
  // vice versa; clamping at empty batteries can only make the ledger equal,
  // since charge() records the drawn amount).
  EXPECT_NEAR(r.energy.total(), r.total_energy_consumed,
              r.total_energy_consumed * 1e-9 + 1e-12);
  EXPECT_GT(r.total_energy_consumed, 0.0);
}

TEST(Simulator, PerNodeVectorsSized) {
  Rng rng(7);
  Network net = small_network(rng);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  Rng sim_rng(8);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_EQ(r.per_node_consumed.size(), net.size());
  EXPECT_EQ(r.per_node_rate.size(), net.size());
  for (const double rate : r.per_node_rate) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
}

TEST(Simulator, NoTrafficMeansNoPackets) {
  Rng rng(9);
  Network net = small_network(rng);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.mean_interarrival = 0.0;  // disabled
  Rng sim_rng(10);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_EQ(r.generated, 0u);
  EXPECT_DOUBLE_EQ(r.pdr(), 1.0);  // vacuous
}

TEST(Simulator, RoundsCompletedMatchesConfig) {
  Rng rng(11);
  Network net = small_network(rng);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  Rng sim_rng(12);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_EQ(r.rounds_completed, 5);
}

TEST(Simulator, DirectProtocolDeliversWithoutHeads) {
  Rng rng(13);
  Network net = small_network(rng);
  DirectProtocol proto;
  SimConfig cfg = fast_config();
  cfg.link.bs_reliability_factor = 0.0;  // perfect BS uplink
  cfg.max_retries = 3;
  Rng sim_rng(14);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_GT(r.generated, 0u);
  EXPECT_EQ(r.delivered, r.generated);
  EXPECT_DOUBLE_EQ(r.heads_per_round.mean(), 0.0);
}

TEST(Simulator, DeathBookkeepingOrdersFndHndLnd) {
  Rng rng(15);
  // Tiny batteries so everyone dies quickly.
  Network net = small_network(rng, 20, 5e-4);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.rounds = 300;
  cfg.mean_interarrival = 1.0;
  Rng sim_rng(16);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  ASSERT_GE(r.first_death_round, 0);
  ASSERT_GE(r.half_death_round, r.first_death_round);
  if (r.last_death_round >= 0)
    EXPECT_GE(r.last_death_round, r.half_death_round);
}

TEST(Simulator, StopAtFirstDeathHaltsEarly) {
  Rng rng(17);
  Network net = small_network(rng, 20, 5e-4);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.rounds = 1000;
  cfg.mean_interarrival = 1.0;
  cfg.trace.stop_at_first_death = true;
  Rng sim_rng(18);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  ASSERT_GE(r.first_death_round, 0);
  EXPECT_EQ(r.rounds_completed, r.first_death_round + 1);
}

TEST(Simulator, DeterministicForSameSeeds) {
  const auto run_once = [] {
    Rng rng(19);
    Network net = small_network(rng);
    KmeansProtocol proto(4, 0.0, RadioModel{});
    Rng sim_rng(20);
    return run_simulation(net, proto, fast_config(), sim_rng);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.total_energy_consumed, b.total_energy_consumed);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

TEST(Simulator, CongestionIncreasesQueueLoss) {
  const auto run_with_lambda = [](double lambda) {
    Rng rng(21);
    Network net = small_network(rng, 60);
    KmeansProtocol proto(3, 0.0, RadioModel{});
    SimConfig cfg = fast_config();
    cfg.rounds = 10;
    cfg.mean_interarrival = lambda;
    cfg.queue_capacity = 6;
    cfg.service_per_slot = 1;
    Rng sim_rng(22);
    return run_simulation(net, proto, cfg, sim_rng);
  };
  const SimResult idle = run_with_lambda(16.0);
  const SimResult congested = run_with_lambda(1.0);
  EXPECT_GT(congested.generated, idle.generated);
  EXPECT_LT(congested.pdr(), idle.pdr());
  EXPECT_GT(congested.lost_queue, idle.lost_queue);
}

TEST(Simulator, LatencyOnlyCountsDeliveredPackets) {
  Rng rng(23);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  Rng sim_rng(24);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_EQ(r.latency.count(), r.delivered);
  if (r.delivered > 0) EXPECT_GE(r.latency.min(), 0.0);
}

TEST(Simulator, DeadNodesStopGeneratingTraffic) {
  Rng rng(25);
  Network net = small_network(rng, 10, 1e-5);  // near-zero batteries
  KmeansProtocol proto(2, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.rounds = 50;
  cfg.mean_interarrival = 1.0;
  Rng sim_rng(26);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  // After all die, generation stops: generated count is far below the
  // no-death expectation of ~ N * rounds * slots / lambda = 5000.
  EXPECT_LT(r.generated, 2000u);
}

TEST(Simulator, HigherServiceRateImprovesPdrUnderLoad) {
  const auto run_with_service = [](int service) {
    Rng rng(27);
    Network net = small_network(rng, 60);
    KmeansProtocol proto(3, 0.0, RadioModel{});
    SimConfig cfg = fast_config();
    cfg.rounds = 10;
    cfg.mean_interarrival = 1.5;
    cfg.queue_capacity = 8;
    cfg.service_per_slot = service;
    Rng sim_rng(28);
    return run_simulation(net, proto, cfg, sim_rng);
  };
  EXPECT_GT(run_with_service(6).pdr(), run_with_service(1).pdr());
}

// Routes every member packet at one fixed target and mirrors the learning
// protocols' ACK bookkeeping (LinkEstimator trained on every attempt), so
// the dead-target retry path of deliver_from can be pinned down exactly.
class FixedTargetProtocol final : public ClusteringProtocol {
 public:
  /// `mark_head`: also flag the target as a cluster head each round (gives
  /// it a cache slot; leave false to aim at a plain dead node).
  FixedTargetProtocol(int target, bool mark_head)
      : target_(target), mark_head_(mark_head) {}
  std::string name() const override { return "fixed-target"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override {
    (void)round;
    (void)rng;
    (void)ledger;
    net.reset_heads();
    if (mark_head_) net.node(target_).is_head = true;
  }
  int route(const Network& net, int src, double bits, Rng& rng) override {
    (void)net;
    (void)src;
    (void)bits;
    (void)rng;
    return target_;
  }
  void on_tx_result(const Network& net, int src, int target,
                    bool success) override {
    (void)net;
    estimator.record(src, target, success);
    if (success) {
      ++acks;
    } else {
      ++nacks;
    }
  }

  LinkEstimator estimator;
  std::uint64_t acks = 0;
  std::uint64_t nacks = 0;

 private:
  int target_;
  bool mark_head_;
};

TEST(Simulator, DeadTargetRetriesChargeSenderAndClassifyAsLinkLoss) {
  Rng rng(29);
  Network net = small_network(rng, 8);
  // Node 0 is battery-dead before the run starts; everyone aims at it.
  net.node(0).battery.consume(net.node(0).battery.residual());
  ASSERT_FALSE(net.node(0).battery.alive(0.0));
  FixedTargetProtocol proto(0, /*mark_head=*/false);
  SimConfig cfg = fast_config();
  cfg.max_retries = 2;
  Rng sim_rng(30);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);

  ASSERT_GT(r.generated, 0u);
  // A dead relay is a LINK failure (no ACK), never a queue overflow and
  // never a loss "at" the live sender.
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.lost_link, r.generated);
  EXPECT_EQ(r.lost_queue, 0u);
  EXPECT_EQ(r.lost_dead, 0u);
  // The sender pays tx energy for every attempt even though the target
  // never listens; the dead target never pays rx energy.
  EXPECT_GT(r.energy.by_use(EnergyUse::kTransmit), 0.0);
  EXPECT_DOUBLE_EQ(r.energy.by_use(EnergyUse::kReceive), 0.0);
  EXPECT_DOUBLE_EQ(net.node(0).battery.residual(), 0.0);
  // Every attempt (first try + max_retries) came back as a negative ACK.
  EXPECT_EQ(r.lost_link * static_cast<std::uint64_t>(cfg.max_retries + 1),
            proto.nacks);
  EXPECT_EQ(proto.acks, 0u);
}

TEST(Simulator, DeadTargetNacksTrainTheLinkEstimatorDown) {
  Rng rng(31);
  Network net = small_network(rng, 8);
  net.node(0).battery.consume(net.node(0).battery.residual());
  FixedTargetProtocol proto(0, /*mark_head=*/false);
  SimConfig cfg = fast_config();
  Rng sim_rng(32);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  ASSERT_GT(r.generated, 0u);
  // Every observed link into the dead node has collapsed well below the
  // optimistic prior the estimator starts from.
  const double prior = LinkEstimator().estimate(1, 0);
  bool observed_any = false;
  for (int src = 1; src < static_cast<int>(net.size()); ++src) {
    if (proto.estimator.observations(src, 0) == 0) continue;
    observed_any = true;
    EXPECT_LT(proto.estimator.estimate(src, 0), prior);
  }
  EXPECT_TRUE(observed_any);
}

TEST(Simulator, OverflowAtLiveHeadClassifiesAsQueueLoss) {
  Rng rng(33);
  Network net = small_network(rng, 8);
  FixedTargetProtocol proto(0, /*mark_head=*/true);
  SimConfig cfg = fast_config();
  cfg.rounds = 2;
  cfg.mean_interarrival = 1.0;   // heavy traffic into one head
  cfg.queue_capacity = 1;        // cache full after a single packet
  cfg.service_per_slot = 0;      // and it never drains
  cfg.link.d_ref = 1e12;         // perfect channel: p rounds to exactly 1
  cfg.link.p_floor = 1.0;
  Rng sim_rng(34);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);

  ASSERT_GT(r.generated, 0u);
  // With a perfect channel the ONLY failure mode is cache overflow, so the
  // retry loop's terminal classification must be lost_queue, not lost_link.
  EXPECT_GT(r.lost_queue, 0u);
  EXPECT_EQ(r.lost_link, 0u);
  EXPECT_EQ(r.generated,
            r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
  // Overflow still trains the estimator negatively (no ACK came back).
  EXPECT_GT(proto.nacks, 0u);
}

}  // namespace
}  // namespace qlec
