#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "sim/protocols/direct_protocol.hpp"
#include "sim/protocols/kmeans_protocol.hpp"
#include "sim/scenario.hpp"

namespace qlec {
namespace {

Network small_network(Rng& rng, std::size_t n = 40, double energy = 5.0) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.m_side = 200.0;
  cfg.initial_energy = energy;
  return make_uniform_network(cfg, rng);
}

SimConfig fast_config() {
  SimConfig cfg;
  cfg.rounds = 5;
  cfg.slots_per_round = 10;
  cfg.mean_interarrival = 4.0;
  return cfg;
}

TEST(Simulator, PacketAccountingBalances) {
  Rng rng(1);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  const SimConfig cfg = fast_config();
  Rng sim_rng(2);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_GT(r.generated, 0u);
  // Conservation: every generated packet is delivered or lost somewhere.
  EXPECT_EQ(r.generated,
            r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
}

TEST(Simulator, PdrInUnitInterval) {
  Rng rng(3);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  Rng sim_rng(4);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_GE(r.pdr(), 0.0);
  EXPECT_LE(r.pdr(), 1.0);
}

TEST(Simulator, EnergyLedgerMatchesBatteryDrain) {
  Rng rng(5);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  Rng sim_rng(6);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  // Everything the ledger recorded was actually drawn from batteries (and
  // vice versa; clamping at empty batteries can only make the ledger equal,
  // since charge() records the drawn amount).
  EXPECT_NEAR(r.energy.total(), r.total_energy_consumed,
              r.total_energy_consumed * 1e-9 + 1e-12);
  EXPECT_GT(r.total_energy_consumed, 0.0);
}

TEST(Simulator, PerNodeVectorsSized) {
  Rng rng(7);
  Network net = small_network(rng);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  Rng sim_rng(8);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_EQ(r.per_node_consumed.size(), net.size());
  EXPECT_EQ(r.per_node_rate.size(), net.size());
  for (const double rate : r.per_node_rate) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
}

TEST(Simulator, NoTrafficMeansNoPackets) {
  Rng rng(9);
  Network net = small_network(rng);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.mean_interarrival = 0.0;  // disabled
  Rng sim_rng(10);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_EQ(r.generated, 0u);
  EXPECT_DOUBLE_EQ(r.pdr(), 1.0);  // vacuous
}

TEST(Simulator, RoundsCompletedMatchesConfig) {
  Rng rng(11);
  Network net = small_network(rng);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  Rng sim_rng(12);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_EQ(r.rounds_completed, 5);
}

TEST(Simulator, DirectProtocolDeliversWithoutHeads) {
  Rng rng(13);
  Network net = small_network(rng);
  DirectProtocol proto;
  SimConfig cfg = fast_config();
  cfg.link.bs_reliability_factor = 0.0;  // perfect BS uplink
  cfg.max_retries = 3;
  Rng sim_rng(14);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_GT(r.generated, 0u);
  EXPECT_EQ(r.delivered, r.generated);
  EXPECT_DOUBLE_EQ(r.heads_per_round.mean(), 0.0);
}

TEST(Simulator, DeathBookkeepingOrdersFndHndLnd) {
  Rng rng(15);
  // Tiny batteries so everyone dies quickly.
  Network net = small_network(rng, 20, 5e-4);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.rounds = 300;
  cfg.mean_interarrival = 1.0;
  Rng sim_rng(16);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  ASSERT_GE(r.first_death_round, 0);
  ASSERT_GE(r.half_death_round, r.first_death_round);
  if (r.last_death_round >= 0)
    EXPECT_GE(r.last_death_round, r.half_death_round);
}

TEST(Simulator, StopAtFirstDeathHaltsEarly) {
  Rng rng(17);
  Network net = small_network(rng, 20, 5e-4);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.rounds = 1000;
  cfg.mean_interarrival = 1.0;
  cfg.trace.stop_at_first_death = true;
  Rng sim_rng(18);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  ASSERT_GE(r.first_death_round, 0);
  EXPECT_EQ(r.rounds_completed, r.first_death_round + 1);
}

TEST(Simulator, DeterministicForSameSeeds) {
  const auto run_once = [] {
    Rng rng(19);
    Network net = small_network(rng);
    KmeansProtocol proto(4, 0.0, RadioModel{});
    Rng sim_rng(20);
    return run_simulation(net, proto, fast_config(), sim_rng);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.total_energy_consumed, b.total_energy_consumed);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

TEST(Simulator, CongestionIncreasesQueueLoss) {
  const auto run_with_lambda = [](double lambda) {
    Rng rng(21);
    Network net = small_network(rng, 60);
    KmeansProtocol proto(3, 0.0, RadioModel{});
    SimConfig cfg = fast_config();
    cfg.rounds = 10;
    cfg.mean_interarrival = lambda;
    cfg.queue_capacity = 6;
    cfg.service_per_slot = 1;
    Rng sim_rng(22);
    return run_simulation(net, proto, cfg, sim_rng);
  };
  const SimResult idle = run_with_lambda(16.0);
  const SimResult congested = run_with_lambda(1.0);
  EXPECT_GT(congested.generated, idle.generated);
  EXPECT_LT(congested.pdr(), idle.pdr());
  EXPECT_GT(congested.lost_queue, idle.lost_queue);
}

TEST(Simulator, LatencyOnlyCountsDeliveredPackets) {
  Rng rng(23);
  Network net = small_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  Rng sim_rng(24);
  const SimResult r = run_simulation(net, proto, fast_config(), sim_rng);
  EXPECT_EQ(r.latency.count(), r.delivered);
  if (r.delivered > 0) EXPECT_GE(r.latency.min(), 0.0);
}

TEST(Simulator, DeadNodesStopGeneratingTraffic) {
  Rng rng(25);
  Network net = small_network(rng, 10, 1e-5);  // near-zero batteries
  KmeansProtocol proto(2, 0.0, RadioModel{});
  SimConfig cfg = fast_config();
  cfg.rounds = 50;
  cfg.mean_interarrival = 1.0;
  Rng sim_rng(26);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  // After all die, generation stops: generated count is far below the
  // no-death expectation of ~ N * rounds * slots / lambda = 5000.
  EXPECT_LT(r.generated, 2000u);
}

TEST(Simulator, HigherServiceRateImprovesPdrUnderLoad) {
  const auto run_with_service = [](int service) {
    Rng rng(27);
    Network net = small_network(rng, 60);
    KmeansProtocol proto(3, 0.0, RadioModel{});
    SimConfig cfg = fast_config();
    cfg.rounds = 10;
    cfg.mean_interarrival = 1.5;
    cfg.queue_capacity = 8;
    cfg.service_per_slot = service;
    Rng sim_rng(28);
    return run_simulation(net, proto, cfg, sim_rng);
  };
  EXPECT_GT(run_with_service(6).pdr(), run_with_service(1).pdr());
}

}  // namespace
}  // namespace qlec
