// The slotted-CSMA MAC/PHY sub-phase (sim/mac, DESIGN.md §14).
//
// Two contracts are pinned here:
//   * disabled (the default) is bit-identical to the pre-MAC model — every
//     committed golden digest reproduces even with the other sim.mac knobs
//     set to exotic values, and
//   * enabled is deterministic: a fixed (config, seed) pair reproduces the
//     identical trajectory and MAC counters across reruns, shard counts,
//     and seed-fanout policies, because the engine draws from its own
//     stream in event order on the calling thread.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "energy/ledger.hpp"
#include "net/link.hpp"
#include "sim/experiment.hpp"
#include "sim/mac/engine.hpp"
#include "util/env.hpp"

namespace qlec {
namespace {

#ifndef QLEC_GOLDEN_DIR
#error "QLEC_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

/// Same frozen scenario as the golden-trace harness.
ExperimentConfig golden_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 10;
  cfg.sim.slots_per_round = 10;
  cfg.sim.trace.record = true;
  cfg.seeds = 2;
  cfg.base_seed = 42;
  cfg.protocol.qlec.total_rounds = 10;
  return cfg;
}

/// A small congested setup where contention actually bites: dense traffic
/// and a carrier-sense radius spanning the whole deployment cube, so every
/// concurrent sender defers or interferes with every other.
ExperimentConfig contended_config() {
  ExperimentConfig cfg = golden_config();
  cfg.sim.mean_interarrival = 1.0;
  cfg.sim.mac.enabled = true;
  cfg.sim.mac.cca_range = 500.0;
  cfg.sim.mac.airtime_subslots = 3;
  return cfg;
}

std::vector<std::string> digests_for(
    const std::string& protocol, const ExperimentConfig& cfg,
    const ExecPolicy& exec = ExecPolicy::serial()) {
  const auto results = run_replications(protocol, cfg, exec);
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const SimResult& r : results) out.push_back(trace_digest_hex(r.trace));
  return out;
}

std::vector<std::string> read_golden(const std::string& protocol) {
  std::ifstream in(std::string(QLEC_GOLDEN_DIR) + "/" + protocol + ".digest");
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  return lines;
}

std::uint64_t drop_total(const MacCounters& c) {
  return c.drop_collision + c.drop_channel + c.drop_overflow +
         c.drop_target_down + c.drop_sender_down;
}

TEST(MacDisabled, KnobsInertAndCommittedGoldensReproduce) {
  // Every non-`enabled` knob tweaked to a non-default value: with the
  // master switch off the engine must never be constructed, no extra Rng
  // draw may happen, and the committed digests of EVERY protocol in the
  // registry must reproduce bit-for-bit.
  ExperimentConfig cfg = golden_config();
  cfg.sim.mac.seed = 0xFEEDFACEULL;
  cfg.sim.mac.airtime_subslots = 7;
  cfg.sim.mac.cca_range = 9999.0;
  cfg.sim.mac.capture_ratio = 1.0;
  cfg.sim.mac.max_retries = 0;
  cfg.sim.mac.cw_min = 1;
  cfg.sim.mac.cw_max = 1;
  cfg.sim.mac.duty_cycle = 0.125;
  cfg.sim.mac.idle_j_per_subslot = 0.5;
  ASSERT_FALSE(cfg.sim.mac.enabled);
  for (const std::string& name : protocol_names()) {
    const std::vector<std::string> golden = read_golden(name);
    ASSERT_FALSE(golden.empty()) << name << ": missing committed golden";
    EXPECT_EQ(digests_for(name, cfg), golden)
        << name << ": disabled sim.mac perturbed the trajectory";
  }
  // And the result record stays inert.
  const auto results = run_replications("qlec", cfg);
  for (const SimResult& r : results) {
    EXPECT_FALSE(r.mac.enabled);
    EXPECT_EQ(r.mac.totals, MacCounters{});
    EXPECT_TRUE(r.mac.per_round.empty());
    EXPECT_EQ(r.energy.by_use(EnergyUse::kMac), 0.0);
  }
}

TEST(MacEnabled, ChangesTrajectoryAndSeedMatters) {
  ExperimentConfig base = golden_config();
  ExperimentConfig mac = base;
  mac.sim.mac.enabled = true;
  const auto ideal = digests_for("qlec", base);
  const auto contended = digests_for("qlec", mac);
  EXPECT_NE(ideal, contended)
      << "enabling the MAC sub-phase must change the trajectory";
  ExperimentConfig reseeded = mac;
  reseeded.sim.mac.seed = 1;
  EXPECT_NE(contended, digests_for("qlec", reseeded))
      << "sim.mac.seed must decouple the contention stream";
}

TEST(MacEnabled, DeterministicAcrossRerunsShardsAndExecPolicy) {
  const ExperimentConfig cfg = contended_config();
  for (const std::string& name :
       {std::string("qlec"), std::string("fcm"), std::string("qelar")}) {
    const auto baseline = digests_for(name, cfg);
    EXPECT_EQ(baseline, digests_for(name, cfg)) << name << ": rerun";
    for (int shards : {2, 7, 16}) {
      ExperimentConfig sharded = cfg;
      sharded.sim.exec.shards = shards;
      EXPECT_EQ(baseline, digests_for(name, sharded))
          << name << ": shards=" << shards
          << " changed a MAC-enabled trajectory";
    }
    ThreadPool pool(3);
    EXPECT_EQ(baseline, digests_for(name, cfg, ExecPolicy::borrow(pool)))
        << name << ": seed fan-out policy changed a MAC-enabled trajectory";
  }
}

TEST(MacEnabled, StatsPopulatedAndPerRoundRowsSumToTotals) {
  const ExperimentConfig cfg = contended_config();
  for (const SimResult& r : run_replications("qlec", cfg)) {
    ASSERT_TRUE(r.mac.enabled);
    EXPECT_GT(r.mac.totals.tx_attempts, 0u);
    EXPECT_GT(r.mac.totals.subslots, 0u);
    // Wall-to-wall carrier sensing: some attempt must have deferred or
    // collided somewhere in a 40-node cube fully inside cca_range.
    EXPECT_GT(r.mac.totals.cca_busy + r.mac.totals.collisions, 0u);
    ASSERT_EQ(r.mac.per_round.size(),
              static_cast<std::size_t>(r.rounds_completed));
    MacCounters sum;
    for (std::size_t i = 0; i < r.mac.per_round.size(); ++i) {
      EXPECT_EQ(r.mac.per_round[i].round, static_cast<int>(i));
      sum += r.mac.per_round[i].c;
    }
    EXPECT_EQ(sum, r.mac.totals)
        << "per-round deltas must partition the cumulative totals";
    // Packet conservation holds on the MAC path too.
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
  }
}

TEST(MacEnabled, RetransmitAndDutyCycleEnergyLandsInKMacAndReconciles) {
  ExperimentConfig cfg = contended_config();
  cfg.sim.mac.idle_j_per_subslot = 1e-6;
  cfg.sim.mac.duty_cycle = 0.5;
  cfg.sim.audit.enabled = true;
  cfg.sim.audit.throw_on_violation = true;  // AuditError would fail the test
  for (const SimResult& r : run_replications("qlec", cfg)) {
    EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
    EXPECT_GT(r.energy.by_use(EnergyUse::kMac), 0.0)
        << "duty-cycle listening must charge the kMac bucket";
    EXPECT_GT(r.energy.total(), 0.0);
  }
  // The summary line names the bucket.
  const auto results = run_replications("qlec", cfg);
  EXPECT_NE(results[0].energy.summary().find("mac="), std::string::npos);
}

TEST(MacEnabled, FaultStormDropsPendingFramesUncharged) {
  // Satellite regression: FaultPlan storms + hazards while the MAC engine
  // is live. Down nodes must spend nothing (auditor invariant d2) — the
  // sender-eligibility check at event dispatch drops their pending frames
  // without an on_attempt charge — and the books must still reconcile, so
  // the run survives throw_on_violation.
  ExperimentConfig cfg = contended_config();
  cfg.sim.rounds = 8;
  cfg.sim.audit.enabled = true;
  cfg.sim.audit.throw_on_violation = true;
  cfg.sim.fault.enabled = true;
  cfg.sim.fault.plan.events = {
      FaultEvent{FaultKind::kCrash, 1, 0, 1, 0.5, false, {}},
      FaultEvent{FaultKind::kStun, 2, 5, 2, 0.5, false, {}},
      FaultEvent{FaultKind::kBlackout, 3, -1, 2, 0.5, false,
                 Aabb::cube(120.0)},
      FaultEvent{FaultKind::kBsOutage, 4, -1, 2, 0.5, false, {}},
      FaultEvent{FaultKind::kLinkDegrade, 5, -1, 2, 0.3, false, {}},
  };
  cfg.sim.fault.hazards.crash_per_node = 0.01;
  cfg.sim.fault.hazards.stun_per_node = 0.02;
  for (const SimResult& r : run_replications("qlec", cfg)) {
    EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
    ASSERT_TRUE(r.mac.enabled);
    // The BS outage round alone guarantees terminal down-target drops.
    EXPECT_GT(r.mac.totals.drop_target_down, 0u);
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
    // Every terminal drop surfaced as at least one lost packet (a dropped
    // uplink frame fans out to its whole fused aggregate, hence <=).
    EXPECT_LE(drop_total(r.mac.totals),
              r.lost_link + r.lost_queue + r.lost_dead);
  }
  // The identical storm replays bit-for-bit.
  const auto a = digests_for("qlec", cfg);
  const auto b = digests_for("qlec", cfg);
  EXPECT_EQ(a, b);
}

/// Minimal protocol that pins node 0 as the sole head and records every
/// ACK/NACK the simulator feeds back, so the test can replay the exact
/// feedback sequence into a LinkEstimator.
class RecordingProtocol final : public ClusteringProtocol {
 public:
  std::string name() const override { return "recorder"; }
  void on_round_start(Network& net, int, Rng&, EnergyLedger&) override {
    net.reset_heads();
    net.node(0).is_head = true;
  }
  int route(const Network&, int, double, Rng&) override { return 0; }
  void on_tx_result(const Network&, int src, int target,
                    bool success) override {
    feedback.emplace_back(src, target, success);
  }
  std::vector<std::tuple<int, int, bool>> feedback;
};

TEST(MacEnabled, CollisionNacksTrainTheLinkEstimator) {
  // Satellite: MAC-layer losses (collision, channel, overflow) must reach
  // on_tx_result as plain NACKs — indistinguishable from the ideal path's
  // failures — so estimator-driven protocols learn from contention.
  ExperimentConfig cfg = contended_config();
  cfg.scenario.n = 30;
  Network net = build_network(cfg, /*seed=*/7);
  RecordingProtocol proto;
  Rng rng(7 ^ 0xD1B54A32D192ED03ULL);
  const SimResult r = run_simulation(net, proto, cfg.sim, rng);
  ASSERT_TRUE(r.mac.enabled);
  std::size_t nacks = 0;
  LinkEstimator replayed;
  for (const auto& [src, target, success] : proto.feedback) {
    EXPECT_EQ(target, 0) << "route() pinned every member to head 0";
    replayed.record(src, target, success);
    nacks += success ? 0u : 1u;
  }
  ASSERT_GT(proto.feedback.size(), 0u);
  ASSERT_GT(nacks, 0u) << "a fully-contended cube must produce NACKs";
  // Replaying the feedback trains the estimator exactly like direct
  // record() calls with the same outcomes (the NACK path carries no
  // MAC-specific side channel).
  LinkEstimator direct;
  for (const auto& [src, target, success] : proto.feedback)
    direct.record(src, target, success);
  for (const auto& [src, target, success] : proto.feedback) {
    EXPECT_DOUBLE_EQ(replayed.estimate(src, target),
                     direct.estimate(src, target));
    EXPECT_EQ(replayed.observations(src, target),
              direct.observations(src, target));
  }
}

TEST(MacEnabled, FlatRoutingContendsDeterministically) {
  // QELAR's store-and-forward hops go through the same contention phases.
  const ExperimentConfig cfg = contended_config();
  const auto results = run_replications("qelar", cfg);
  for (const SimResult& r : results) {
    ASSERT_TRUE(r.mac.enabled);
    EXPECT_GT(r.mac.totals.tx_attempts, 0u);
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
  }
  EXPECT_EQ(digests_for("qelar", cfg), digests_for("qelar", cfg));
}

TEST(MacEnabled, ZeroRetriesAndTinyWindowsStillTerminate) {
  // Degenerate corner: no retransmissions, 1-subslot windows, capture at
  // the permissive floor. The event loop must still terminate and conserve
  // packets.
  ExperimentConfig cfg = contended_config();
  cfg.sim.mac.max_retries = 0;
  cfg.sim.mac.cw_min = 1;
  cfg.sim.mac.cw_max = 1;
  cfg.sim.mac.capture_ratio = 1.0;
  cfg.sim.mac.airtime_subslots = 1;
  for (const SimResult& r : run_replications("qlec", cfg)) {
    EXPECT_EQ(r.mac.totals.retransmits, 0u);
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
  }
}

TEST(MacEngine, LossCauseNamesAreTotal) {
  for (MacLossCause c :
       {MacLossCause::kNone, MacLossCause::kCollision, MacLossCause::kChannel,
        MacLossCause::kOverflow, MacLossCause::kTargetDown,
        MacLossCause::kSenderDown}) {
    EXPECT_NE(mac_loss_cause_name(c), nullptr);
    EXPECT_GT(std::string(mac_loss_cause_name(c)).size(), 0u);
  }
}

}  // namespace
}  // namespace qlec
