// Property battery for the terrain-aware environment subsystem (sim/env,
// DESIGN.md §16): occlusion symmetry and grid-vs-brute bit-identity on
// randomized worlds, attenuation monotonicity, the zero-obstruction
// byte-identity leg of the digest contract, water/harvest math, BsTrajectory
// determinism across shard counts and ExecPolicy, harvest-credit ledger
// reconciliation (fault storms included), and the moved-BS memo-invalidation
// regression for the QlecRouter.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/qlec_routing.hpp"
#include "energy/ledger.hpp"
#include "sim/env/env.hpp"
#include "sim/env/trajectory.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

constexpr double kSide = 200.0;

Vec3 random_point(Rng& rng) {
  return {rng.uniform(0.0, kSide), rng.uniform(0.0, kSide),
          rng.uniform(0.0, kSide)};
}

/// A randomized obstacle course; `n_obstacles` >= 9 engages the spatial
/// grid inside Environment, below stays on the brute scan.
EnvConfig random_world(Rng& rng, std::size_t n_obstacles) {
  EnvConfig cfg;
  cfg.enabled = true;
  cfg.atten_per_unit = rng.uniform(0.005, 0.05);
  for (std::size_t i = 0; i < n_obstacles; ++i) {
    const Vec3 lo = {rng.uniform(0.0, kSide - 30.0),
                     rng.uniform(0.0, kSide - 30.0),
                     rng.uniform(0.0, kSide - 30.0)};
    const Vec3 hi = {lo.x + rng.uniform(5.0, 30.0),
                     lo.y + rng.uniform(5.0, 30.0),
                     lo.z + rng.uniform(5.0, 30.0)};
    cfg.obstacles.push_back(
        EnvObstacle{Aabb{lo, hi}, rng.uniform(0.0, 0.02)});
  }
  if (rng.bernoulli(0.5))
    cfg.terrain = EnvTerrain{true, 0.25, 0.5};
  if (rng.bernoulli(0.5))
    cfg.water = EnvWater{true, 0.8, 0.01, 0.005};
  return cfg;
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 8;
  cfg.sim.slots_per_round = 8;
  cfg.sim.trace.record = true;
  cfg.seeds = 2;
  cfg.base_seed = 42;
  cfg.protocol.qlec.total_rounds = 8;
  return cfg;
}

std::vector<std::string> digests(const std::string& protocol,
                                 const ExperimentConfig& cfg,
                                 const ExecPolicy& exec =
                                     ExecPolicy::serial()) {
  std::vector<std::string> out;
  for (const SimResult& r : run_replications(protocol, cfg, exec))
    out.push_back(trace_digest_hex(r.trace));
  return out;
}

// ---- occlusion geometry ----

TEST(Env, OcclusionSymmetryBitExact) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const Environment env(random_world(rng, 12), Aabb::cube(kSide));
    for (int i = 0; i < 200; ++i) {
      const Vec3 a = random_point(rng);
      const Vec3 b = random_point(rng);
      // Bit-for-bit, not approximate: endpoints are canonicalized before
      // any float math, so both directions run the identical arithmetic.
      EXPECT_EQ(env.obstruction_depth(a, b), env.obstruction_depth(b, a));
      EXPECT_EQ(env.link_factor(a, b), env.link_factor(b, a));
      EXPECT_EQ(env.blocked(a, b), env.blocked(b, a));
      EXPECT_EQ(env.tx_amp_factor(a, b), env.tx_amp_factor(b, a));
    }
  }
}

TEST(Env, GridMatchesBruteForceOnRandomWorlds) {
  for (const std::uint64_t seed : {11ull, 12ull}) {
    Rng rng(seed);
    // 40 obstacles is far past the grid-build threshold.
    const Environment env(random_world(rng, 40), Aabb::cube(kSide));
    for (int i = 0; i < 300; ++i) {
      const Vec3 a = random_point(rng);
      const Vec3 b = random_point(rng);
      EXPECT_EQ(env.obstruction_depth(a, b),
                env.obstruction_depth_brute(a, b))
          << "grid-accelerated occlusion diverged from the oracle";
    }
  }
}

TEST(Env, AttenuationMonotonicInObstructionDepth) {
  EnvConfig cfg;
  cfg.enabled = true;
  cfg.atten_per_unit = 0.05;
  cfg.obstacles.push_back(
      EnvObstacle{Aabb{{100, 0, 0}, {140, 200, 200}}, 0.0});
  const Environment env(cfg, Aabb::cube(kSide));
  const Vec3 src{90, 50, 50};
  double prev_factor = 1.0;
  double prev_depth = 0.0;
  for (const double x : {105.0, 115.0, 130.0, 150.0}) {
    const Vec3 dst{x, 50, 50};
    const double depth = env.obstruction_depth(src, dst);
    const double factor = env.link_factor(src, dst);
    EXPECT_GT(depth, prev_depth);
    EXPECT_LT(factor, prev_factor);
    EXPECT_NEAR(factor, std::exp(-cfg.atten_per_unit * depth), 1e-12);
    prev_depth = depth;
    prev_factor = factor;
  }
  // A clean line of sight (in front of the slab) is exactly 1.0.
  EXPECT_EQ(env.link_factor(src, Vec3{95, 50, 50}), 1.0);
}

TEST(Env, SeverDepthBlocksOutright) {
  EnvConfig cfg;
  cfg.enabled = true;
  cfg.atten_per_unit = 0.01;
  cfg.sever_depth = 30.0;
  cfg.obstacles.push_back(
      EnvObstacle{Aabb{{80, 0, 0}, {160, 200, 200}}, 0.0});
  const Environment env(cfg, Aabb::cube(kSide));
  const Vec3 a{70, 100, 100};
  EXPECT_FALSE(env.blocked(a, Vec3{100, 100, 100}));  // 20 units deep
  EXPECT_TRUE(env.blocked(a, Vec3{120, 100, 100}));   // 40 units deep
  EXPECT_EQ(env.link_factor(a, Vec3{120, 100, 100}), 0.0);
}

TEST(Env, WaterColumnAttenuatesAndScalesAmp) {
  EnvConfig cfg;
  cfg.enabled = true;
  cfg.water = EnvWater{true, 0.5, 0.01, 0.02};  // surface at z = 100
  const Environment env(cfg, Aabb::cube(kSide));
  EXPECT_DOUBLE_EQ(env.water_surface_z(), 100.0);
  // Fully submerged link: attenuated, amp-scaled by the mean depth.
  const Vec3 a{50, 50, 40};
  const Vec3 b{150, 50, 40};
  EXPECT_LT(env.link_factor(a, b), 1.0);
  EXPECT_NEAR(env.tx_amp_factor(a, b), 1.0 + 0.02 * 60.0, 1e-12);
  // Fully above the surface: untouched.
  const Vec3 c{50, 50, 150};
  const Vec3 d{150, 50, 150};
  EXPECT_EQ(env.link_factor(c, d), 1.0);
  EXPECT_EQ(env.tx_amp_factor(c, d), 1.0);
}

TEST(Env, HarvestRateDecaysWithDepthToFloor) {
  EnvConfig cfg;
  cfg.enabled = true;
  cfg.water = EnvWater{true, 1.0, 0.0, 0.0};  // surface at the domain top
  cfg.harvest = EnvHarvest{0.02, 0.05, 0.1};
  const Environment env(cfg, Aabb::cube(kSide));
  const double at_surface = env.harvest_rate(Vec3{100, 100, 200});
  const double shallow = env.harvest_rate(Vec3{100, 100, 180});
  const double deep = env.harvest_rate(Vec3{100, 100, 10});
  EXPECT_DOUBLE_EQ(at_surface, 0.02);
  EXPECT_LT(shallow, at_surface);
  EXPECT_GT(shallow, deep);
  // 190 units down, exp(-9.5) is far below the 10% floor.
  EXPECT_DOUBLE_EQ(deep, 0.02 * 0.1);
}

// ---- the digest contract ----

TEST(Env, ZeroObstructionWorldByteIdenticalToDisabled) {
  ExperimentConfig off = small_config();
  ExperimentConfig on = off;
  on.sim.env.enabled = true;  // no obstacles, terrain, water, or harvest
  for (const std::string protocol : {"qlec", "leach", "qelar"}) {
    EXPECT_EQ(digests(protocol, off), digests(protocol, on))
        << protocol
        << ": an empty enabled environment must be value-neutral";
  }
}

TEST(Env, ObstructedWorldChangesTheTraceButStaysDeterministic) {
  ExperimentConfig cfg = small_config();
  ExperimentConfig world = cfg;
  world.sim.env.enabled = true;
  world.sim.env.atten_per_unit = 0.02;
  world.sim.env.obstacles.push_back(
      EnvObstacle{Aabb{{40, 40, 0}, {120, 120, 160}}, 0.0});
  const auto a = digests("qlec", world);
  EXPECT_NE(digests("qlec", cfg), a) << "the obstacle course must bite";
  EXPECT_EQ(digests("qlec", world), a) << "reruns must replay exactly";
}

TEST(Env, EnvWorldInvariantAcrossShardsAndPolicies) {
  ExperimentConfig world = small_config();
  world.sim.env.enabled = true;
  world.sim.env.atten_per_unit = 0.015;
  world.sim.env.terrain = EnvTerrain{true, 0.25, 0.5};
  world.sim.env.obstacles.push_back(
      EnvObstacle{Aabb{{20, 100, 0}, {180, 140, 120}}, 0.01});
  const auto base = digests("qlec", world);
  for (const int shards : {2, 7, 16}) {
    ExperimentConfig sharded = world;
    sharded.sim.exec.shards = shards;
    EXPECT_EQ(digests("qlec", sharded), base) << "shards=" << shards;
  }
  EXPECT_EQ(digests("qlec", world, ExecPolicy::pool(4)), base);
}

// ---- BsTrajectory ----

TEST(Trajectory, WaypointWalkIsExactAndLoops) {
  BsTrajectoryConfig cfg;
  cfg.kind = TrajectoryKind::kWaypoint;
  cfg.waypoints = {{100, 0, 0}, {100, 100, 0}};
  cfg.speed = 50.0;
  const Vec3 anchor{0, 0, 0};
  {
    const BsTrajectory t(cfg, anchor);
    EXPECT_EQ(t.position(0), anchor);                 // starts at the anchor
    EXPECT_EQ(t.position(1), (Vec3{50, 0, 0}));       // halfway up leg 1
    EXPECT_EQ(t.position(2), (Vec3{100, 0, 0}));      // waypoint 0
    EXPECT_EQ(t.position(3), (Vec3{100, 50, 0}));     // halfway up leg 2
    EXPECT_EQ(t.position(4), (Vec3{100, 100, 0}));    // parked at the end
    EXPECT_EQ(t.position(9), (Vec3{100, 100, 0}));    // still parked
  }
  cfg.loop = true;  // closed patrol: ... -> back toward the anchor
  {
    const BsTrajectory t(cfg, anchor);
    // Total loop length: 100 + 100 + sqrt(100^2 + 100^2) ~ 341.4.
    EXPECT_EQ(t.position(4), (Vec3{100, 100, 0}));
    const Vec3 late = t.position(6);  // s = 300, on the return diagonal
    EXPECT_LT(late.x, 100.0);
    EXPECT_LT(late.y, 100.0);
    EXPECT_GT(late.x, 0.0);
    EXPECT_EQ(late.x, late.y);  // the diagonal heads straight at the anchor
  }
}

TEST(Trajectory, OrbitIsPeriodicAndOnTheCircle) {
  BsTrajectoryConfig cfg;
  cfg.kind = TrajectoryKind::kOrbit;
  cfg.orbit_center = {100, 100, 200};
  cfg.orbit_radius = 70.0;
  cfg.orbit_period = 6;
  const BsTrajectory t(cfg, Vec3{100, 100, 200});
  for (int r = 0; r < 12; ++r) {
    const Vec3 p = t.position(r);
    EXPECT_NEAR(distance(p, cfg.orbit_center), 70.0, 1e-9) << r;
    EXPECT_EQ(p, t.position(r + 6)) << "orbit must be exactly periodic";
    EXPECT_EQ(p, t.position(r)) << "position must be a pure function";
  }
  EXPECT_EQ(t.position(0), (Vec3{170, 100, 200}));  // theta = 0
}

TEST(Trajectory, MobileSinkDeterministicAcrossShardsAndPolicies) {
  ExperimentConfig world = small_config();
  world.sim.bs_trajectory.kind = TrajectoryKind::kOrbit;
  world.sim.bs_trajectory.orbit_center = {100, 100, 200};
  world.sim.bs_trajectory.orbit_radius = 70.0;
  world.sim.bs_trajectory.orbit_period = 4;
  const auto base = digests("qlec", world);
  EXPECT_NE(digests("qlec", small_config()), base)
      << "the orbiting sink must change the trace";
  for (const int shards : {2, 7, 16}) {
    ExperimentConfig sharded = world;
    sharded.sim.exec.shards = shards;
    EXPECT_EQ(digests("qlec", sharded), base) << "shards=" << shards;
  }
  EXPECT_EQ(digests("qlec", world, ExecPolicy::pool(4)), base);
  EXPECT_EQ(digests("qlec", world), base) << "reruns must replay exactly";
}

// ---- harvest credit books ----

TEST(Env, HarvestCreditsReconcileInLedger) {
  ExperimentConfig cfg = small_config();
  cfg.scenario.initial_energy = 1.0;
  cfg.sim.audit.enabled = true;
  cfg.sim.audit.throw_on_violation = true;
  cfg.sim.env.enabled = true;
  cfg.sim.env.terrain = EnvTerrain{true, 0.25, 0.5};
  cfg.sim.env.harvest = EnvHarvest{0.02, 0.05, 0.1};
  for (const SimResult& r : run_replications("qlec", cfg)) {
    EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
    // The credit bucket filled, and total() stayed drain-side only.
    const double harvested = r.energy.by_use(EnergyUse::kHarvest);
    EXPECT_GT(harvested, 0.0);
    double drains = 0.0;
    for (int u = 0; u < static_cast<int>(EnergyUse::kCount_); ++u)
      if (static_cast<EnergyUse>(u) != EnergyUse::kHarvest)
        drains += r.energy.by_use(static_cast<EnergyUse>(u));
    EXPECT_NEAR(drains, r.energy.total(), 1e-9 * std::max(1.0, drains));
  }
}

TEST(Env, HarvestCreditsReconcileUnderFaultStorm) {
  ExperimentConfig cfg = small_config();
  cfg.scenario.initial_energy = 1.0;
  cfg.sim.audit.enabled = true;
  cfg.sim.env.enabled = true;
  cfg.sim.env.harvest = EnvHarvest{0.02, 0.0, 0.0};
  cfg.sim.harvest_per_round = 0.005;  // both harvest paths at once
  cfg.sim.fault.enabled = true;
  cfg.sim.fault.hazards.crash_per_node = 0.01;
  cfg.sim.fault.hazards.stun_per_node = 0.02;
  cfg.sim.fault.hazards.stun_rounds = 2;
  cfg.sim.fault.hazards.fade_per_node = 0.01;
  cfg.sim.fault.hazards.fade_fraction = 0.1;
  cfg.sim.fault.hazards.degrade_episode = 0.1;
  cfg.sim.fault.hazards.degrade_rounds = 2;
  cfg.sim.fault.hazards.degrade_factor = 0.5;
  for (const SimResult& r : run_replications("qlec", cfg)) {
    EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
    EXPECT_GT(r.energy.by_use(EnergyUse::kHarvest), 0.0);
  }
}

// ---- the BsPlacement x trajectory seam ----

TEST(QlecRouterMemo, MovedBsInvalidatesCachedDistances) {
  // The per-round y memo caches normalized BS transmission costs. A
  // trajectory moves the sink at the round boundary, so a new round MUST
  // see fresh y values — a stale memo would keep routing toward where the
  // BS used to be.
  Rng rng(5);
  ScenarioConfig sc;
  sc.n = 20;
  sc.bs = BsPlacement::kCorner;  // BS starts far away at (200, 200, 200)
  Network net = make_uniform_network(sc, rng);
  // Deterministic geometry: the head sits 5 units from src, the corner BS
  // ~340 away — with a stale memo the head wins, with a fresh one the
  // co-located BS must.
  const int src = 0;
  const int head = 1;
  net.node(src).pos = {5, 5, 5};
  net.node(head).pos = {10, 5, 5};
  net.node(head).is_head = true;
  QlecParams params;
  params.epsilon = 0.0;  // greedy: the argmax is deterministic
  // Zero the Eq. 19 direct-BS penalty: it is an additive constant that
  // would mask the y(src, BS) distance term this regression is probing.
  params.l = 0.0;
  QlecRouter router(params, RadioModel{}, net.size());
  const double bits = 4000.0;

  // Round 0: fill the memo with the far-corner BS geometry.
  router.begin_round({head});
  (void)router.choose_target(net, src, bits, rng);

  // The sink lands right on top of src; round 1 begins.
  net.set_bs(net.node(src).pos);
  router.begin_round({head});
  const int chosen = router.choose_target(net, src, bits, rng);

  // Memo-free oracle: with the BS co-located, direct uplink dominates.
  EXPECT_GT(router.q_value(net, src, kBaseStationId, bits),
            router.q_value(net, src, head, bits));
  EXPECT_EQ(chosen, kBaseStationId)
      << "choose_target routed by a stale BS-distance memo";
}

}  // namespace
}  // namespace qlec
