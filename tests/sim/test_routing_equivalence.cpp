// Equivalence oracles for the hot-path rewrites: the grid-backed
// nearest-head assignment must reproduce the brute-force scan exactly
// (argmin AND tie-break), and the flat per-source link estimator must match
// a straightforward hash-map reference on arbitrary record/estimate
// sequences. These pin the optimizations to the committed golden digests.
#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "sim/experiment.hpp"
#include "sim/protocols/common.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

Network random_network(std::size_t n, double side, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.scenario.n = n;
  cfg.scenario.m_side = side;
  return build_network(cfg, seed);
}

// Flags every `stride`-th node as head and returns the head list in a
// deliberately scrambled (non-ascending) order, since the tie-break is
// defined by list order, not id order.
std::vector<int> pick_heads(Network& net, std::size_t stride) {
  std::vector<int> heads;
  for (std::size_t i = 0; i < net.size(); i += stride) {
    net.node(static_cast<int>(i)).is_head = true;
    heads.push_back(static_cast<int>(i));
  }
  std::reverse(heads.begin(), heads.end());
  return heads;
}

TEST(RoutingEquivalence, GridMatchesBruteAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Network net = random_network(400, 300.0, seed);
    const std::vector<int> heads = pick_heads(net, 13);  // ~31 heads
    ASSERT_GE(heads.size(), 16u);  // grid path engaged
    const auto grid = detail::assign_nearest_head(net, heads, 0.0);
    const auto brute = detail::assign_nearest_head_brute(net, heads, 0.0);
    ASSERT_EQ(grid.size(), brute.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
      EXPECT_EQ(grid[i], brute[i]) << "node " << i << " seed " << seed;
  }
}

TEST(RoutingEquivalence, GridMatchesBruteWithDeadHeads) {
  Network net = random_network(500, 250.0, 99);
  const std::vector<int> heads = pick_heads(net, 9);  // ~56 heads
  // Kill every third head: the assignment must skip them identically.
  for (std::size_t i = 0; i < heads.size(); i += 3) {
    Battery& b = net.node(heads[i]).battery;
    b.consume(b.residual() + 1.0);
  }
  const auto grid = detail::assign_nearest_head(net, heads, 0.0);
  const auto brute = detail::assign_nearest_head_brute(net, heads, 0.0);
  EXPECT_EQ(grid, brute);
}

TEST(RoutingEquivalence, ExactDistanceTiesFollowHeadListOrder) {
  // 18 heads stacked pairwise on 9 positions: every query has an exact
  // distance tie that must resolve to the earlier entry of the heads list.
  std::vector<Vec3> pos;
  std::vector<int> heads;
  for (int i = 0; i < 9; ++i) {
    const Vec3 p{10.0 * i, 5.0 * i, 3.0 * i};
    pos.push_back(p);
    pos.push_back(p);  // duplicate position, distinct node
  }
  for (int i = 0; i < 30; ++i)
    pos.push_back(Vec3{7.0 * i, 11.0 * (i % 5), 2.0 * i});
  Network net(pos, 1.0, Vec3{0, 0, 0}, Aabb::cube(200.0));
  for (int i = 0; i < 18; ++i) {
    net.node(i).is_head = true;
    heads.push_back(i);
  }
  std::swap(heads[0], heads[1]);  // make list order differ from id order
  const auto grid = detail::assign_nearest_head(net, heads, 0.0);
  const auto brute = detail::assign_nearest_head_brute(net, heads, 0.0);
  EXPECT_EQ(grid, brute);
}

TEST(RoutingEquivalence, SmallHeadSetsUseIdenticalBrutePath) {
  Network net = random_network(120, 150.0, 7);
  const std::vector<int> heads = pick_heads(net, 20);  // 6 heads < threshold
  EXPECT_EQ(detail::assign_nearest_head(net, heads, 0.0),
            detail::assign_nearest_head_brute(net, heads, 0.0));
}

TEST(RoutingEquivalence, NoAliveHeadsAssignsBaseStation) {
  Network net = random_network(50, 100.0, 3);
  const auto a = detail::assign_nearest_head(net, {}, 0.0);
  for (const int t : a) EXPECT_EQ(t, kBaseStationId);
}

// Reference estimator: the pre-optimization semantics, one hash map over
// (from, to) pairs with the same sliding window and prior.
class ReferenceEstimator {
 public:
  ReferenceEstimator(std::size_t window, double ps, double pn)
      : window_(window), prior_s_(ps), prior_n_(pn) {}

  void record(int from, int to, bool success) {
    auto& w = map_[key(from, to)];
    if (w.outcomes.size() == window_) w.outcomes.erase(w.outcomes.begin());
    w.outcomes.push_back(success);
  }
  double estimate(int from, int to) const {
    const auto it = map_.find(key(from, to));
    if (it == map_.end()) return prior_s_ / prior_n_;
    std::size_t s = 0;
    for (const bool b : it->second.outcomes) s += b ? 1 : 0;
    return (static_cast<double>(s) + prior_s_) /
           (static_cast<double>(it->second.outcomes.size()) + prior_n_);
  }

 private:
  struct Hist {
    std::vector<bool> outcomes;
  };
  static std::uint64_t key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  std::size_t window_;
  double prior_s_;
  double prior_n_;
  std::unordered_map<std::uint64_t, Hist> map_;
};

TEST(RoutingEquivalence, FlatEstimatorMatchesMapReference) {
  constexpr std::size_t kWindow = 8;
  LinkEstimator flat(kWindow, 1.0, 2.0);
  ReferenceEstimator ref(kWindow, 1.0, 2.0);
  Rng rng(2024);
  // Random traffic over a small id set, including the BS sentinel and a
  // negative source (the estimator's fallback-map path).
  const int sources[] = {0, 1, 5, 17, -3};
  const int targets[] = {kBaseStationId, 0, 2, 9, 31};
  for (int step = 0; step < 5000; ++step) {
    const int f = sources[rng.uniform_int(5)];
    const int t = targets[rng.uniform_int(5)];
    const bool ok = rng.bernoulli(0.6);
    flat.record(f, t, ok);
    ref.record(f, t, ok);
    if (step % 7 == 0) {
      const int qf = sources[rng.uniform_int(5)];
      const int qt = targets[rng.uniform_int(5)];
      ASSERT_DOUBLE_EQ(flat.estimate(qf, qt), ref.estimate(qf, qt))
          << "step " << step << " (" << qf << " -> " << qt << ")";
    }
  }
}

TEST(RoutingEquivalence, EstimatorObservationsCapAtWindow) {
  LinkEstimator e(4, 1.0, 1.0);
  for (int i = 0; i < 10; ++i) e.record(3, 7, i % 2 == 0);
  EXPECT_EQ(e.observations(3, 7), 4u);
  EXPECT_EQ(e.observations(7, 3), 0u);
  e.clear();
  EXPECT_EQ(e.observations(3, 7), 0u);
}

}  // namespace
}  // namespace qlec
