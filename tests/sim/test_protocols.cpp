#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/experiment.hpp"
#include "sim/protocols/deec_protocol.hpp"
#include "sim/protocols/direct_protocol.hpp"
#include "sim/protocols/fcm_protocol.hpp"
#include "sim/protocols/kmeans_protocol.hpp"
#include "sim/protocols/leach_protocol.hpp"
#include "sim/protocols/qleach_protocol.hpp"
#include "sim/protocols/reech_me_protocol.hpp"
#include "sim/protocols/registry.hpp"
#include "sim/scenario.hpp"

namespace qlec {
namespace {

Network test_network(Rng& rng, std::size_t n = 60) {
  ScenarioConfig cfg;
  cfg.n = n;
  return make_uniform_network(cfg, rng);
}

TEST(KmeansProtocol, ElectsExactlyKHeads) {
  Rng rng(1);
  Network net = test_network(rng);
  KmeansProtocol proto(5, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  EXPECT_EQ(net.head_ids().size(), 5u);
}

TEST(KmeansProtocol, MembersRouteToNearestHead) {
  Rng rng(2);
  Network net = test_network(rng);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const auto heads = net.head_ids();
  for (int src = 0; src < 10; ++src) {
    if (net.node(src).is_head) continue;
    const int target = proto.route(net, src, 4000.0, rng);
    ASSERT_NE(target, kBaseStationId);
    const double d = net.dist(src, target);
    for (const int h : heads) EXPECT_LE(d, net.dist(src, h) + 1e-9);
  }
}

TEST(KmeansProtocol, IgnoresEnergyInHeadChoice) {
  Rng rng(3);
  Network net = test_network(rng);
  // Drain a specific node heavily; k-means may still pick it as head if it
  // is geometrically central. Just assert election still works and charges
  // HELLO energy.
  net.node(0).battery.consume(4.9);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  EXPECT_EQ(net.head_ids().size(), 4u);
  EXPECT_GT(ledger.by_use(EnergyUse::kControl), 0.0);
}

TEST(KmeansProtocol, SkipsDeadNodes) {
  Rng rng(4);
  Network net = test_network(rng);
  for (int i = 0; i < 30; ++i) net.node(i).battery.consume(5.0);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  for (const int h : net.head_ids()) EXPECT_GE(h, 30);
}

TEST(KmeansProtocol, AllDeadNoHeadsAndBsRouting) {
  Rng rng(5);
  Network net = test_network(rng, 10);
  for (auto& n : net.nodes()) n.battery.consume(5.0);
  KmeansProtocol proto(3, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  EXPECT_TRUE(net.head_ids().empty());
  EXPECT_EQ(proto.route(net, 0, 4000.0, rng), kBaseStationId);
}

TEST(FcmProtocol, ElectsKHeadsWithEnergyBias) {
  Rng rng(6);
  Network net = test_network(rng, 80);
  // Drain odd nodes; FCM head choice weighs residual energy, so heads
  // should be predominantly even ids.
  for (int i = 1; i < 80; i += 2) net.node(i).battery.consume(4.5);
  FcmProtocol proto(6, 3, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const auto heads = net.head_ids();
  EXPECT_EQ(heads.size(), 6u);
  int even = 0;
  for (const int h : heads) even += (h % 2 == 0) ? 1 : 0;
  EXPECT_GE(even, 5);
}

TEST(FcmProtocol, UplinkChainsDescendTowardBs) {
  Rng rng(7);
  Network net = test_network(rng, 80);
  FcmProtocol proto(6, 3, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  for (const int h : net.head_ids()) {
    int current = h;
    int hops = 0;
    while (current != kBaseStationId && hops < 20) {
      const int next = proto.uplink_target(net, current, rng);
      if (next != kBaseStationId)
        EXPECT_LT(net.dist_to_bs(next), net.dist_to_bs(current) + 1e-9);
      current = next;
      ++hops;
    }
    EXPECT_EQ(current, kBaseStationId);
  }
}

TEST(FcmProtocol, SomeHeadRelaysMultiHop) {
  Rng rng(8);
  Network net = test_network(rng, 100);
  FcmProtocol proto(8, 4, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  bool saw_relay = false;
  for (const int h : net.head_ids())
    saw_relay |= proto.uplink_target(net, h, rng) != kBaseStationId;
  EXPECT_TRUE(saw_relay);
}

TEST(FcmProtocol, RouteReturnsLiveHead) {
  Rng rng(9);
  Network net = test_network(rng, 60);
  FcmProtocol proto(5, 3, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const auto heads = net.head_ids();
  for (int src = 0; src < 20; ++src) {
    if (net.node(src).is_head) continue;
    const int t = proto.route(net, src, 4000.0, rng);
    EXPECT_TRUE(std::find(heads.begin(), heads.end(), t) != heads.end());
  }
}

TEST(LeachProtocol, ElectionVariesAcrossRounds) {
  Rng rng(10);
  Network net = test_network(rng);
  LeachProtocol proto(0.1, 0.0, RadioModel{});
  EnergyLedger ledger;
  std::set<int> all_heads;
  for (int r = 0; r < 20; ++r) {
    proto.on_round_start(net, r, rng, ledger);
    for (const int h : net.head_ids()) all_heads.insert(h);
  }
  EXPECT_GT(all_heads.size(), 10u);  // rotation spreads the role
}

TEST(DeecProtocol, PrefersRicherHeads) {
  Rng rng(11);
  Network net = test_network(rng, 100);
  for (int i = 0; i < 50; ++i) net.node(i).battery.consume(4.0);
  DeecParams params;
  params.p_opt = 0.08;
  params.total_rounds = 1000;
  DeecProtocol proto(params, 0.0, RadioModel{});
  EnergyLedger ledger;
  int rich = 0, poor = 0;
  for (int r = 0; r < 40; ++r) {
    proto.on_round_start(net, r, rng, ledger);
    for (const int h : net.head_ids()) (h < 50 ? poor : rich) += 1;
  }
  EXPECT_GT(rich, poor);
}

TEST(QLeachProtocol, EveryPopulatedSectorGetsAHead) {
  Rng rng(31);
  Network net = test_network(rng, 120);
  QLeachProtocol proto(0.05, SectorMode::kOctant, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const SectorGrid grid = SectorGrid::octants(net.domain());
  std::vector<int> heads_per_sector(grid.count(), 0);
  std::vector<int> nodes_per_sector(grid.count(), 0);
  for (const SensorNode& n : net.nodes()) {
    const auto s = static_cast<std::size_t>(grid.sector_of(n.pos));
    ++nodes_per_sector[s];
    if (n.is_head) ++heads_per_sector[s];
  }
  for (std::size_t s = 0; s < grid.count(); ++s)
    if (nodes_per_sector[s] > 0)
      EXPECT_GE(heads_per_sector[s], 1) << "sector " << s;
  EXPECT_GT(ledger.by_use(EnergyUse::kControl), 0.0);
}

TEST(QLeachProtocol, MembersJoinAHeadOfTheirOwnSector) {
  Rng rng(32);
  Network net = test_network(rng, 120);
  QLeachProtocol proto(0.05, SectorMode::kQuadrant, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const SectorGrid grid = SectorGrid::quadrants(net.domain());
  for (int src = 0; src < static_cast<int>(net.size()); ++src) {
    if (net.node(src).is_head) continue;
    const int target = proto.route(net, src, 4000.0, rng);
    ASSERT_NE(target, kBaseStationId);
    EXPECT_TRUE(net.node(target).is_head);
    // Quadrant coverage is guaranteed for populated sectors, so every
    // member's head lives in its own sector.
    EXPECT_EQ(grid.sector_of(net.node(target).pos),
              grid.sector_of(net.node(src).pos));
  }
}

TEST(QLeachProtocol, RotationEventuallyMovesHeads) {
  Rng rng(33);
  Network net = test_network(rng, 80);
  QLeachProtocol proto(0.1, SectorMode::kOctant, 0.0, RadioModel{});
  EnergyLedger ledger;
  std::set<int> ever_heads;
  for (int round = 0; round < 12; ++round) {
    proto.on_round_start(net, round, rng, ledger);
    for (const int h : net.head_ids()) ever_heads.insert(h);
  }
  // The per-sector rotation must spread the role well past one round's set.
  EXPECT_GT(ever_heads.size(), net.head_ids().size() * 2);
}

TEST(ReechMeProtocol, RegionHeadIsTheRegionsRichestNode) {
  Rng rng(34);
  Network net = test_network(rng, 100);
  // Perturb energies so every region has a unique argmax. hello_bits = 0:
  // the post-election HELLO charge must not disturb the ranking under test.
  for (int i = 0; i < 100; ++i)
    net.node(i).battery.consume(1e-4 * static_cast<double>(i % 37));
  ReechMeProtocol proto(SectorMode::kOctant, 0.0, RadioModel{}, 0.0);
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const SectorGrid grid = SectorGrid::octants(net.domain());
  for (const SensorNode& n : net.nodes()) {
    if (!n.is_head) continue;
    const auto s = grid.sector_of(n.pos);
    for (const SensorNode& m : net.nodes()) {
      if (grid.sector_of(m.pos) != s) continue;
      EXPECT_LE(m.battery.residual(), n.battery.residual() + 1e-12)
          << "node " << m.id << " outranks head " << n.id;
    }
  }
}

TEST(ReechMeProtocol, MembersReportToTheirRegionHead) {
  Rng rng(35);
  Network net = test_network(rng, 100);
  ReechMeProtocol proto(SectorMode::kOctant, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const SectorGrid grid = SectorGrid::octants(net.domain());
  for (int src = 0; src < static_cast<int>(net.size()); ++src) {
    if (net.node(src).is_head) continue;
    const int target = proto.route(net, src, 4000.0, rng);
    ASSERT_NE(target, kBaseStationId);
    EXPECT_EQ(grid.sector_of(net.node(target).pos),
              grid.sector_of(net.node(src).pos));
  }
}

TEST(ReechMeProtocol, HeadsTrackEnergyTopologyAcrossRounds) {
  Rng rng(36);
  Network net = test_network(rng, 60);
  ReechMeProtocol proto(SectorMode::kOctant, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  const std::vector<int> first = net.head_ids();
  // Drain round-0 heads hard: the next election must move off them.
  for (const int h : first) net.node(h).battery.consume(0.4);
  proto.on_round_start(net, 1, rng, ledger);
  for (const int h : net.head_ids())
    EXPECT_EQ(std::count(first.begin(), first.end(), h), 0);
}

TEST(Registry, AllNamesConstruct) {
  Rng rng(12);
  const Network net = test_network(rng);
  ProtocolOptions opt;
  for (const std::string& name : protocol_names()) {
    const auto proto = make_protocol(name, net, opt);
    ASSERT_NE(proto, nullptr) << name;
    EXPECT_FALSE(proto->name().empty());
  }
}

TEST(Registry, CoversTheFullThirteenProtocolShelf) {
  const std::vector<std::string> names = protocol_names();
  EXPECT_EQ(names.size(), 13u);
  for (const char* expected : {"q-leach", "reech-me", "leach-rlc"})
    EXPECT_EQ(std::count(names.begin(), names.end(), expected), 1)
        << expected;
}

TEST(Registry, UnknownNameThrows) {
  Rng rng(13);
  const Network net = test_network(rng);
  EXPECT_THROW(make_protocol("bogus", net, ProtocolOptions{}),
               std::invalid_argument);
}

TEST(Registry, KOverrideRespected) {
  Rng rng(14);
  Network net = test_network(rng);
  ProtocolOptions opt;
  opt.k = 9;
  const auto proto = make_protocol("kmeans", net, opt);
  EnergyLedger ledger;
  proto->on_round_start(net, 0, rng, ledger);
  EXPECT_EQ(net.head_ids().size(), 9u);
}

TEST(Registry, ForceKFlowsToQlec) {
  Rng rng(15);
  const Network net = test_network(rng);
  ProtocolOptions opt;
  opt.qlec.force_k = 7;
  const auto proto = make_protocol("qlec", net, opt);
  // Indirect check: the default learning_updates starts at 0 and route
  // evaluates k+1 actions; we can't see k_opt through the base pointer, so
  // just ensure construction succeeded with the override in place.
  EXPECT_EQ(proto->name(), "QLEC");
}

// --- Audit-driven ledger reconciliation across the whole registry ------

ExperimentConfig ledger_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 6;
  cfg.sim.slots_per_round = 10;
  cfg.sim.audit.enabled = true;
  cfg.seeds = 1;
  cfg.protocol.qlec.total_rounds = 6;
  return cfg;
}

TEST(LedgerReconciliation, TotalsMatchBatteryDrainAllProtocols) {
  // Without harvesting, the ledger's grand total must equal the summed
  // battery drain that SimResult reports (same joules, different books).
  for (const std::string& name : protocol_names()) {
    const auto results = run_replications(name, ledger_config());
    const SimResult& r = results[0];
    EXPECT_TRUE(r.audit.ok()) << name << ": " << r.audit.summary();
    EXPECT_NEAR(r.energy.total(), r.total_energy_consumed,
                1e-9 * std::max(1.0, r.total_energy_consumed))
        << name;
  }
}

TEST(LedgerReconciliation, CategoryTotalsSumToGrandTotal) {
  for (const std::string& name : protocol_names()) {
    const auto results = run_replications(name, ledger_config());
    const EnergyLedger& e = results[0].energy;
    double by_category = 0.0;
    for (int u = 0; u < static_cast<int>(EnergyUse::kCount_); ++u)
      by_category += e.by_use(static_cast<EnergyUse>(u));
    EXPECT_NEAR(by_category, e.total(), 1e-12 * std::max(1.0, e.total()))
        << name;
    EXPECT_GT(e.by_use(EnergyUse::kTransmit), 0.0) << name;
  }
}

TEST(LedgerReconciliation, PerNodeTotalsMatchPerNodeConsumption) {
  // Audited runs attribute every charge to a node id; node-by-node the
  // ledger must agree with the battery's own consumed() accounting.
  for (const std::string& name : protocol_names()) {
    const auto results = run_replications(name, ledger_config());
    const SimResult& r = results[0];
    ASSERT_TRUE(r.energy.per_node_enabled()) << name;
    double attributed = 0.0;
    for (std::size_t i = 0; i < r.per_node_consumed.size(); ++i) {
      EXPECT_NEAR(r.energy.node_total(static_cast<int>(i)),
                  r.per_node_consumed[i],
                  1e-9 * std::max(1.0, r.per_node_consumed[i]))
          << name << " node " << i;
      attributed += r.energy.node_total(static_cast<int>(i));
    }
    EXPECT_NEAR(attributed, r.energy.total(),
                1e-9 * std::max(1.0, r.energy.total()))
        << name << ": some charge was not node-attributed";
  }
}

TEST(DirectProtocol, AlwaysRoutesToBs) {
  Rng rng(16);
  Network net = test_network(rng, 10);
  DirectProtocol proto;
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  EXPECT_TRUE(net.head_ids().empty());
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(proto.route(net, i, 4000.0, rng), kBaseStationId);
  EXPECT_EQ(proto.learning_updates(), 0u);
}

}  // namespace
}  // namespace qlec
