#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "util/csv.hpp"

namespace qlec {
namespace {

ExperimentConfig traced_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 30;
  cfg.sim.rounds = 8;
  cfg.sim.slots_per_round = 10;
  cfg.sim.trace.record = true;
  cfg.seeds = 1;
  cfg.protocol.qlec.total_rounds = 8;
  return cfg;
}

TEST(Trace, DisabledByDefault) {
  ExperimentConfig cfg = traced_config();
  cfg.sim.trace.record = false;
  const auto results = run_replications("kmeans", cfg);
  EXPECT_TRUE(results[0].trace.empty());
}

TEST(Trace, OneEntryPerCompletedRound) {
  const auto results = run_replications("kmeans", traced_config());
  const SimResult& r = results[0];
  ASSERT_EQ(r.trace.size(), static_cast<std::size_t>(r.rounds_completed));
  for (int i = 0; i < r.rounds_completed; ++i)
    EXPECT_EQ(r.trace[static_cast<std::size_t>(i)].round, i);
}

TEST(Trace, CumulativeCountersMonotone) {
  const auto results = run_replications("qlec", traced_config());
  const SimResult& r = results[0];
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i].generated, r.trace[i - 1].generated);
    EXPECT_GE(r.trace[i].delivered, r.trace[i - 1].delivered);
    EXPECT_LE(r.trace[i].delivered, r.trace[i].generated);
  }
  EXPECT_EQ(r.trace.back().generated, r.generated);
}

TEST(Trace, ResidualEnergyNonIncreasingWithoutHarvest) {
  const auto results = run_replications("fcm", traced_config());
  const SimResult& r = results[0];
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_LE(r.trace[i].total_residual,
              r.trace[i - 1].total_residual + 1e-12);
}

TEST(Trace, AliveNeverIncreasesWithoutHarvest) {
  ExperimentConfig cfg = traced_config();
  cfg.scenario.initial_energy = 0.01;  // force deaths
  cfg.sim.rounds = 60;
  cfg.sim.mean_interarrival = 2.0;
  const auto results = run_replications("kmeans", cfg);
  const SimResult& r = results[0];
  for (std::size_t i = 1; i < r.trace.size(); ++i)
    EXPECT_LE(r.trace[i].alive, r.trace[i - 1].alive);
}

TEST(Trace, CsvRoundTripsStructure) {
  const auto results = run_replications("qlec", traced_config());
  const std::string csv = trace_to_csv(results[0].trace);
  const auto rows = parse_csv(csv);
  ASSERT_EQ(rows.size(), results[0].trace.size() + 1);
  EXPECT_EQ(rows[0][0], "round");
  EXPECT_EQ(rows[0].size(), 6u);
  // Spot-check a data row.
  const RoundStats& rs = results[0].trace[2];
  EXPECT_EQ(std::stoi(rows[3][0]), rs.round);
  EXPECT_EQ(std::stoul(rows[3][1]), rs.alive);
  EXPECT_NEAR(std::stod(rows[3][3]), rs.total_residual, 1e-6);
}

TEST(Trace, HeadsColumnMatchesProtocolBehaviour) {
  ExperimentConfig cfg = traced_config();
  cfg.protocol.k = 4;
  const auto results = run_replications("kmeans", cfg);
  for (const RoundStats& rs : results[0].trace) EXPECT_EQ(rs.heads, 4u);
}

}  // namespace
}  // namespace qlec
