// SimAuditor invariant-checking tests: clean audited runs for every
// registered protocol (the acceptance sweep), violation detection on
// hand-corrupted books, and the throw-vs-accumulate modes.
#include <gtest/gtest.h>

#include <string>

#include "sim/audit.hpp"
#include "sim/experiment.hpp"

namespace qlec {
namespace {

ExperimentConfig audited_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 30;
  cfg.sim.rounds = 6;
  cfg.sim.slots_per_round = 10;
  cfg.sim.audit.enabled = true;
  cfg.seeds = 2;
  cfg.protocol.qlec.total_rounds = 6;
  return cfg;
}

TEST(SimAuditor, AcceptanceSweepAllProtocols100Nodes20Rounds5Seeds) {
  // The ISSUE acceptance bar: every registered protocol passes the
  // energy/packet/structural invariants on a 20-round, 100-node scenario
  // across 5 seeds.
  ExperimentConfig cfg;
  cfg.scenario.n = 100;
  cfg.sim.rounds = 20;
  cfg.sim.audit.enabled = true;
  cfg.seeds = 5;
  cfg.protocol.qlec.total_rounds = 20;
  for (const std::string& name : protocol_names()) {
    const auto results = run_replications(name, cfg);
    ASSERT_EQ(results.size(), 5u) << name;
    for (const SimResult& r : results) {
      EXPECT_TRUE(r.audit.ok()) << name << ": " << r.audit.summary();
      EXPECT_EQ(r.audit.rounds_audited, r.rounds_completed) << name;
      EXPECT_TRUE(r.audit.finalized) << name;
    }
  }
}

TEST(SimAuditor, CleanUnderStressConfigs) {
  // Congested caches, deaths mid-run, retries exhausted — the invariants
  // must hold through every loss path, not just the happy one.
  ExperimentConfig cfg = audited_config();
  cfg.sim.queue_capacity = 2;          // force queue-overflow losses
  cfg.sim.mean_interarrival = 1.0;     // heavy traffic
  cfg.scenario.initial_energy = 0.05;  // force deaths
  cfg.sim.rounds = 30;
  for (const std::string& name :
       {std::string("qlec"), std::string("leach"), std::string("fcm"),
        std::string("qelar"), std::string("direct")}) {
    for (const SimResult& r : run_replications(name, cfg)) {
      EXPECT_TRUE(r.audit.ok()) << name << ": " << r.audit.summary();
      EXPECT_GT(r.audit.rounds_audited, 0) << name;
    }
  }
}

TEST(SimAuditor, CleanWithHarvestingAndIdleDrain) {
  ExperimentConfig cfg = audited_config();
  cfg.sim.harvest_per_round = 0.01;
  cfg.sim.idle_listen_j_per_slot = 1e-5;
  for (const SimResult& r : run_replications("qlec", cfg))
    EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
}

TEST(SimAuditor, CleanWithMobilityAndHeterogeneousEnergy) {
  ExperimentConfig cfg = audited_config();
  cfg.scenario.energy_heterogeneity = 0.5;
  cfg.sim.mobility.kind = MobilityKind::kRandomWaypoint;
  cfg.sim.mobility.speed = 5.0;
  for (const SimResult& r : run_replications("kmeans", cfg))
    EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
}

TEST(SimAuditor, DetectsUnledgeredBatteryDrain) {
  // Drain a battery behind the ledger's back between the round snapshot and
  // the round-end check: conservation must flag it.
  Rng rng(7);
  ScenarioConfig sc;
  sc.n = 10;
  Network net = make_uniform_network(sc, rng);
  EnergyLedger ledger;
  SimAuditor auditor(net, 0.0, false, false, false);
  auditor.begin_round(net, 0, ledger);
  auditor.on_heads_elected(net, {});
  net.node(3).battery.consume(0.5);  // joules vanish without a ledger entry
  SimResult partial;
  auditor.end_round(net, ledger, partial, 0);
  ASSERT_FALSE(auditor.report().ok());
  EXPECT_EQ(auditor.report().violations[0].kind,
            AuditKind::kEnergyConservation);
  EXPECT_EQ(auditor.report().violations[0].round, 0);
}

TEST(SimAuditor, DetectsPacketLeak) {
  Rng rng(8);
  ScenarioConfig sc;
  sc.n = 5;
  Network net = make_uniform_network(sc, rng);
  EnergyLedger ledger;
  SimAuditor auditor(net, 0.0, false, false, false);
  auditor.begin_round(net, 0, ledger);
  SimResult partial;
  partial.generated = 10;
  partial.delivered = 4;  // 6 packets unaccounted for
  auditor.end_round(net, ledger, partial, 0);
  ASSERT_FALSE(auditor.report().ok());
  EXPECT_EQ(auditor.report().violations[0].kind,
            AuditKind::kPacketConservation);
  // The same books balance once the missing packets show up in flight.
  SimAuditor balanced(net, 0.0, false, false, false);
  balanced.begin_round(net, 1, ledger);
  balanced.end_round(net, ledger, partial, 6);
  EXPECT_TRUE(balanced.report().ok());
}

TEST(SimAuditor, DetectsDeadElectedHead) {
  Rng rng(9);
  ScenarioConfig sc;
  sc.n = 6;
  Network net = make_uniform_network(sc, rng);
  net.node(2).is_head = true;
  net.node(2).battery.consume(1e9);  // dead BEFORE the round starts
  EnergyLedger ledger;
  SimAuditor auditor(net, 0.0, false, false, false);
  auditor.begin_round(net, 0, ledger);
  auditor.on_heads_elected(net, net.head_ids());
  ASSERT_FALSE(auditor.report().ok());
  EXPECT_EQ(auditor.report().violations[0].kind, AuditKind::kStructural);
  EXPECT_EQ(auditor.report().violations[0].node, 2);
}

TEST(SimAuditor, DetectsRelayAcceptAtNonHead) {
  Rng rng(10);
  ScenarioConfig sc;
  sc.n = 6;
  Network net = make_uniform_network(sc, rng);
  EnergyLedger ledger;
  SimAuditor cluster_auditor(net, 0.0, /*flat=*/false, false, false);
  cluster_auditor.begin_round(net, 0, ledger);
  cluster_auditor.on_relay_accept(net, 4, true);  // node 4 is not a head
  EXPECT_FALSE(cluster_auditor.report().ok());
  // Flat-routing mode has no head structure: any alive node may relay.
  SimAuditor flat_auditor(net, 0.0, /*flat=*/true, false, false);
  flat_auditor.begin_round(net, 0, ledger);
  flat_auditor.on_relay_accept(net, 4, true);
  EXPECT_TRUE(flat_auditor.report().ok());
  // Accepting at a node that was already dead at attempt time is flagged
  // even in flat mode.
  flat_auditor.on_relay_accept(net, 4, /*alive_at_attempt=*/false);
  EXPECT_FALSE(flat_auditor.report().ok());
}

TEST(SimAuditor, ThrowModeRaisesAuditError) {
  Rng rng(11);
  ScenarioConfig sc;
  sc.n = 4;
  Network net = make_uniform_network(sc, rng);
  EnergyLedger ledger;
  SimAuditor auditor(net, 0.0, false, false, /*throw=*/true);
  auditor.begin_round(net, 3, ledger);
  net.node(0).battery.consume(1.0);
  SimResult partial;
  try {
    auditor.end_round(net, ledger, partial, 0);
    FAIL() << "expected AuditError";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.violation.kind, AuditKind::kEnergyConservation);
    EXPECT_EQ(e.violation.round, 3);
    EXPECT_NE(std::string(e.what()).find("energy-conservation"),
              std::string::npos);
  }
}

TEST(SimAuditor, ThrowModePropagatesOutOfSimulation) {
  // throw_on_violation surfaces the violation to the caller of run_simulation; on
  // a correct simulator nothing throws, so assert the plumbing by running
  // a clean config and checking it completes with an ok report.
  ExperimentConfig cfg = audited_config();
  cfg.sim.audit.throw_on_violation = true;
  cfg.seeds = 1;
  const auto results = run_replications("leach", cfg);
  EXPECT_TRUE(results[0].audit.ok());
}

TEST(SimAuditor, ReportSummaryFormats) {
  AuditReport report;
  report.rounds_audited = 4;
  EXPECT_NE(report.summary().find("audit ok"), std::string::npos);
  report.violations.push_back(
      {AuditKind::kEnergyBounds, 2, 7, "residual -1 J is negative"});
  EXPECT_NE(report.summary().find("FAILED"), std::string::npos);
  EXPECT_NE(report.summary().find("node 7"), std::string::npos);
  EXPECT_NE(report.violations[0].to_string().find("energy-bounds"),
            std::string::npos);
}

TEST(SimAuditor, DisabledByDefault) {
  ExperimentConfig cfg = audited_config();
  cfg.sim.audit.enabled = false;
  const auto results = run_replications("kmeans", cfg);
  EXPECT_EQ(results[0].audit.rounds_audited, 0);
  EXPECT_FALSE(results[0].audit.finalized);
  EXPECT_FALSE(results[0].energy.per_node_enabled());
}

}  // namespace
}  // namespace qlec
