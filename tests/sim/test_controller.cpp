// The centralized-controller seam (sim/controller.hpp, DESIGN.md §15),
// tested independently of the simulator: the passthrough controller must
// replay classic LEACH's election draw-for-draw, and the RL-lite
// controller must respect its head budget, keep its draws data-independent,
// and perform exactly one Q backup per completed round.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/leach.hpp"
#include "sim/controller.hpp"
#include "sim/protocols/leach_rlc_protocol.hpp"
#include "sim/protocols/registry.hpp"
#include "sim/scenario.hpp"

namespace qlec {
namespace {

Network test_network(Rng& rng, std::size_t n = 60) {
  ScenarioConfig cfg;
  cfg.n = n;
  return make_uniform_network(cfg, rng);
}

TEST(ControllerSeam, PassthroughReplaysDistributedLeachElection) {
  Rng build(1);
  Network net_a = test_network(build);
  Rng build2(1);
  Network net_b = test_network(build2);
  PassthroughController ctrl(0.1);
  for (int round = 0; round < 5; ++round) {
    // Same seed per round: the centralized replay must consume the stream
    // exactly like the distributed election and pick the same heads.
    Rng rng_a(100 + static_cast<std::uint64_t>(round));
    Rng rng_b(100 + static_cast<std::uint64_t>(round));
    const std::vector<int> distributed =
        leach_elect(net_a, 0.1, round, rng_a, 0.0);
    std::vector<int> central;
    net_b.reset_heads();
    ctrl.select_heads(net_b, round, 0.0, rng_b, central);
    EXPECT_EQ(central, distributed) << "round " << round;
    // Stamp rotation state so the next round's eligibility matches.
    for (const int h : central) {
      net_b.node(h).is_head = true;
      net_b.node(h).last_head_round = round;
    }
    EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
  }
}

TEST(ControllerSeam, PassthroughGuaranteesAHeadWhileAnyNodeLives) {
  Rng build(2);
  Network net = test_network(build, 10);
  for (int i = 1; i < 10; ++i) net.node(i).battery.consume(5.0);
  PassthroughController ctrl(0.0);  // p = 0: no draw can win
  std::vector<int> heads;
  Rng rng(7);
  ctrl.select_heads(net, 0, 0.0, rng, heads);
  EXPECT_EQ(heads, std::vector<int>{0});
}

TEST(ControllerSeam, RlLiteRespectsBudgetAndPicksTopResidual) {
  Rng build(3);
  Network net = test_network(build, 40);
  // Make node residuals strictly decreasing in id: top-k = lowest ids.
  for (int i = 0; i < 40; ++i)
    net.node(i).battery.consume(1e-3 * static_cast<double>(i));
  ControllerOptions opt;
  opt.epsilon = 0.0;  // greedy: with an all-zero Q table, action 0 (x0.5)
  RlLiteController ctrl(8, opt);
  std::vector<int> heads;
  Rng rng(9);
  ctrl.select_heads(net, 0, 0.0, rng, heads);
  EXPECT_EQ(heads, (std::vector<int>{0, 1, 2, 3}));  // 8 * 0.5 = 4 heads
  EXPECT_TRUE(std::is_sorted(heads.begin(), heads.end()));
}

TEST(ControllerSeam, RlLiteSkipsFaultedAndDeadNodes) {
  Rng build(4);
  Network net = test_network(build, 12);
  net.node(0).up = false;              // faulted: max residual but not up
  net.node(1).battery.consume(5.0);    // dead
  ControllerOptions opt;
  opt.epsilon = 0.0;
  RlLiteController ctrl(24, opt);      // budget far above the alive count
  std::vector<int> heads;
  Rng rng(10);
  ctrl.select_heads(net, 0, 0.0, rng, heads);
  EXPECT_EQ(std::count(heads.begin(), heads.end(), 0), 0);
  EXPECT_EQ(std::count(heads.begin(), heads.end(), 1), 0);
  EXPECT_EQ(heads.size(), 10u);
}

TEST(ControllerSeam, RlLiteBacksUpOncePerRound) {
  Rng build(5);
  Network net = test_network(build, 30);
  ControllerOptions opt;
  opt.epsilon = 0.0;
  RlLiteController ctrl(5, opt);
  EXPECT_EQ(ctrl.updates(), 0u);
  std::vector<int> heads;
  Rng rng(11);
  ctrl.select_heads(net, 0, 0.0, rng, heads);
  EXPECT_EQ(ctrl.updates(), 0u);  // backup waits for the round to settle
  net.node(heads[0]).battery.consume(0.5);  // some round energy burn
  ctrl.on_round_end(net, 0);
  EXPECT_EQ(ctrl.updates(), 1u);
  // Energy dropped, so the greedy action's value went negative.
  EXPECT_LT(ctrl.q_value(RlLiteController::kStates - 1, 0), 0.0);
  // A second on_round_end without a new selection is a no-op.
  ctrl.on_round_end(net, 0);
  EXPECT_EQ(ctrl.updates(), 1u);
}

TEST(ControllerSeam, MakeControllerDispatchesOnKind) {
  ControllerOptions opt;
  opt.kind = ControllerKind::kPassthrough;
  EXPECT_EQ(make_controller(opt, 5, 0.1)->name(), "passthrough");
  opt.kind = ControllerKind::kRlLite;
  EXPECT_EQ(make_controller(opt, 5, 0.1)->name(), "rl-lite");
  EXPECT_STREQ(controller_kind_name(ControllerKind::kRlLite), "rl-lite");
  EXPECT_STREQ(controller_kind_name(ControllerKind::kPassthrough),
               "passthrough");
}

TEST(ControllerSeam, LeachRlcAdapterStampsHeadsAndSurfacesUpdates) {
  Rng build(6);
  Network net = test_network(build, 50);
  ControllerOptions opt;
  opt.epsilon = 0.0;
  LeachRlcProtocol proto(std::make_unique<RlLiteController>(5, opt), 0.0,
                         RadioModel{});
  EnergyLedger ledger;
  Rng rng(12);
  proto.on_round_start(net, 0, rng, ledger);
  const std::vector<int> heads = net.head_ids();
  EXPECT_FALSE(heads.empty());
  for (const int h : heads) {
    EXPECT_TRUE(net.node(h).is_head);
    EXPECT_EQ(net.node(h).last_head_round, 0);
  }
  EXPECT_GT(ledger.by_use(EnergyUse::kControl), 0.0);
  // Members route to an alive head.
  for (int src = 0; src < 10; ++src) {
    if (net.node(src).is_head) continue;
    const int target = proto.route(net, src, 4000.0, rng);
    ASSERT_NE(target, kBaseStationId);
    EXPECT_TRUE(net.node(target).is_head);
  }
  EXPECT_EQ(proto.learning_updates(), 0u);
  proto.on_round_end(net, 0);
  EXPECT_EQ(proto.learning_updates(), 1u);
}

TEST(ControllerSeam, RegistryBuildsLeachRlcWithConfiguredController) {
  Rng build(7);
  Network net = test_network(build, 40);
  ProtocolOptions opt;
  auto rl = make_protocol("leach-rlc", net, opt);
  EXPECT_EQ(rl->name(), "LEACH-RLC");
  opt.controller.kind = ControllerKind::kPassthrough;
  auto pass = make_protocol("leach-rlc", net, opt);
  const auto& adapter = dynamic_cast<const LeachRlcProtocol&>(*pass);
  EXPECT_EQ(adapter.controller().name(), "passthrough");
}

}  // namespace
}  // namespace qlec
