// The flat-routing data plane (QELAR protocol integration).
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/protocols/qelar_protocol.hpp"

namespace qlec {
namespace {

ExperimentConfig flat_config(double lambda = 4.0) {
  ExperimentConfig cfg;
  cfg.scenario.n = 50;
  cfg.sim.rounds = 6;
  cfg.sim.slots_per_round = 12;
  cfg.sim.mean_interarrival = lambda;
  cfg.seeds = 2;
  return cfg;
}

TEST(FlatRouting, QelarRunsViaRegistry) {
  for (const SimResult& r : run_replications("qelar", flat_config())) {
    EXPECT_EQ(r.protocol, "QELAR");
    EXPECT_GT(r.generated, 0u);
    EXPECT_GT(r.pdr(), 0.8);
    EXPECT_EQ(r.heads_per_round.mean(), 0.0);  // no cluster heads
  }
}

TEST(FlatRouting, PacketConservationHolds) {
  for (const double lambda : {2.0, 8.0}) {
    for (const SimResult& r :
         run_replications("qelar", flat_config(lambda))) {
      EXPECT_EQ(r.generated,
                r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
    }
  }
}

TEST(FlatRouting, LedgerMatchesBatteries) {
  for (const SimResult& r : run_replications("qelar", flat_config())) {
    EXPECT_NEAR(r.energy.total(), r.total_energy_consumed,
                r.total_energy_consumed * 1e-9 + 1e-12);
  }
}

TEST(FlatRouting, MultiHopLatencyScalesWithHops) {
  // Relay hops cost at least a slot; with the BS on the top face, typical
  // paths take 1-4 hops, so the mean latency sits well above the
  // same-slot 0 and far below cluster-mode round-end batching (~10).
  const auto results = run_replications("qelar", flat_config(8.0));
  for (const SimResult& r : results) {
    EXPECT_GT(r.latency.mean(), 0.3);
    EXPECT_LT(r.latency.mean(), 6.0);
  }
}

TEST(FlatRouting, NoAggregationEnergyCharged) {
  for (const SimResult& r : run_replications("qelar", flat_config())) {
    EXPECT_DOUBLE_EQ(r.energy.by_use(EnergyUse::kAggregate), 0.0);
    EXPECT_DOUBLE_EQ(r.energy.by_use(EnergyUse::kControl), 0.0);
    EXPECT_GT(r.energy.by_use(EnergyUse::kReceive), 0.0);  // relays rx
  }
}

TEST(FlatRouting, LearningUpdatesReported) {
  const auto results = run_replications("qelar", flat_config());
  for (const SimResult& r : results) EXPECT_GT(r.q_evaluations, 0u);
}

TEST(FlatRouting, SurvivesMassDeath) {
  ExperimentConfig cfg = flat_config(2.0);
  cfg.scenario.initial_energy = 5e-3;
  cfg.sim.rounds = 40;
  for (const SimResult& r : run_replications("qelar", cfg)) {
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
    EXPECT_GE(r.first_death_round, 0);
  }
}

TEST(FlatRouting, MobilityKeepsWorking) {
  ExperimentConfig cfg = flat_config();
  cfg.sim.mobility.kind = MobilityKind::kRandomWaypoint;
  cfg.sim.mobility.speed = 15.0;
  for (const SimResult& r : run_replications("qelar", cfg)) {
    EXPECT_GT(r.pdr(), 0.5);  // graph rebuilt every round
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
  }
}

TEST(FlatRouting, ProtocolFlagConsistency) {
  Rng rng(1);
  ScenarioConfig scenario;
  scenario.n = 20;
  const Network net = make_uniform_network(scenario, rng);
  const auto qelar = make_protocol("qelar", net, ProtocolOptions{});
  const auto qlec = make_protocol("qlec", net, ProtocolOptions{});
  EXPECT_TRUE(qelar->flat_routing());
  EXPECT_FALSE(qlec->flat_routing());
}

}  // namespace
}  // namespace qlec
