#include "sim/scenario.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(BsPosition, AllPlacements) {
  const Aabb box = Aabb::cube(200.0);
  EXPECT_EQ(bs_position(BsPlacement::kCenter, box), (Vec3{100, 100, 100}));
  EXPECT_EQ(bs_position(BsPlacement::kTopFaceCenter, box),
            (Vec3{100, 100, 200}));
  EXPECT_EQ(bs_position(BsPlacement::kCorner, box), (Vec3{200, 200, 200}));
  EXPECT_EQ(bs_position(BsPlacement::kExternal, box),
            (Vec3{100, 100, 300}));
}

TEST(MakeUniformNetwork, PaperDefaults) {
  ScenarioConfig cfg;
  Rng rng(1);
  const Network net = make_uniform_network(cfg, rng);
  EXPECT_EQ(net.size(), 100u);
  EXPECT_DOUBLE_EQ(net.domain().volume(), 200.0 * 200.0 * 200.0);
  for (const SensorNode& n : net.nodes()) {
    EXPECT_TRUE(net.domain().contains(n.pos));
    EXPECT_DOUBLE_EQ(n.battery.initial(), 5.0);
  }
  EXPECT_EQ(net.bs(), (Vec3{100, 100, 200}));
}

TEST(MakeUniformNetwork, SurfaceSinkDistanceSupportsKopt5) {
  // The §5.1 claim k_opt ≈ 5 requires mean d_toBS ≈ 0.66 M (DESIGN.md §6).
  ScenarioConfig cfg;
  cfg.n = 5000;
  Rng rng(2);
  const Network net = make_uniform_network(cfg, rng);
  EXPECT_NEAR(net.mean_dist_to_bs() / cfg.m_side, 0.66, 0.03);
}

TEST(MakeUniformNetwork, HeterogeneousEnergySpread) {
  ScenarioConfig cfg;
  cfg.n = 500;
  cfg.energy_heterogeneity = 0.5;
  Rng rng(3);
  const Network net = make_uniform_network(cfg, rng);
  double lo = 1e9, hi = -1e9;
  for (const SensorNode& n : net.nodes()) {
    lo = std::min(lo, n.battery.initial());
    hi = std::max(hi, n.battery.initial());
  }
  EXPECT_GE(lo, 2.5 - 1e-9);
  EXPECT_LE(hi, 7.5 + 1e-9);
  EXPECT_GT(hi - lo, 1.0);  // actually spread out
}

TEST(MakeUniformNetwork, DeterministicGivenRngState) {
  ScenarioConfig cfg;
  Rng a(7), b(7);
  const Network na = make_uniform_network(cfg, a);
  const Network nb = make_uniform_network(cfg, b);
  for (std::size_t i = 0; i < na.size(); ++i)
    EXPECT_EQ(na.node(static_cast<int>(i)).pos,
              nb.node(static_cast<int>(i)).pos);
}

TEST(MakeTerrainNetwork, ProducesValidNetwork) {
  ScenarioConfig cfg;
  cfg.n = 200;
  Rng rng(4);
  const Network net = make_terrain_network(cfg, rng);
  EXPECT_EQ(net.size(), 200u);
  for (const SensorNode& n : net.nodes())
    EXPECT_TRUE(net.domain().contains(n.pos));
}

TEST(MakeTerrainNetwork, HeightsFollowRidges) {
  ScenarioConfig cfg;
  cfg.n = 2000;
  Rng rng(5);
  const Network net = make_terrain_network(cfg, rng);
  // Terrain z-variance should be well below a uniform deployment's.
  double mean_z = 0.0;
  for (const SensorNode& n : net.nodes()) mean_z += n.pos.z;
  mean_z /= static_cast<double>(net.size());
  double var_z = 0.0;
  for (const SensorNode& n : net.nodes())
    var_z += (n.pos.z - mean_z) * (n.pos.z - mean_z);
  var_z /= static_cast<double>(net.size());
  const double uniform_var = 200.0 * 200.0 / 12.0;
  EXPECT_LT(var_z, uniform_var * 0.8);
}

}  // namespace
}  // namespace qlec
