// Simulator extensions: mobility integration, energy harvesting, fixed-
// summary aggregation, and the TL-LEACH / HEED protocol adapters.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/protocols/heed_protocol.hpp"
#include "sim/protocols/tl_leach_protocol.hpp"

namespace qlec {
namespace {

ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 6;
  cfg.sim.slots_per_round = 10;
  cfg.seeds = 2;
  cfg.protocol.qlec.total_rounds = 6;
  return cfg;
}

TEST(SimExtensions, MobilityChangesTrajectories) {
  ExperimentConfig still = fast_config();
  ExperimentConfig moving = fast_config();
  moving.sim.mobility.kind = MobilityKind::kRandomWaypoint;
  moving.sim.mobility.speed = 20.0;
  const auto a = run_replications("qlec", still);
  const auto b = run_replications("qlec", moving);
  // Same seeds, different physics => different packet outcomes.
  EXPECT_FALSE(a[0].delivered == b[0].delivered &&
               a[0].total_energy_consumed == b[0].total_energy_consumed);
}

TEST(SimExtensions, MobilityPreservesConservation) {
  ExperimentConfig cfg = fast_config();
  cfg.sim.mobility.kind = MobilityKind::kRandomWalk;
  cfg.sim.mobility.speed = 15.0;
  for (const char* name : {"qlec", "kmeans", "fcm"}) {
    for (const SimResult& r : run_replications(name, cfg)) {
      EXPECT_EQ(r.generated,
                r.delivered + r.lost_link + r.lost_queue + r.lost_dead)
          << name;
    }
  }
}

TEST(SimExtensions, HarvestingExtendsLifespan) {
  ExperimentConfig drained = fast_config();
  drained.scenario.initial_energy = 0.3;
  drained.sim.rounds = 150;
  drained.sim.mean_interarrival = 4.0;
  drained.sim.trace.stop_at_first_death = true;
  drained.protocol.qlec.total_rounds = 40;
  ExperimentConfig harvested = drained;
  harvested.sim.harvest_per_round = 0.05;  // solar top-up
  const AggregatedMetrics a = run_experiment("qlec", drained);
  const AggregatedMetrics b = run_experiment("qlec", harvested);
  EXPECT_GT(b.first_death.mean(), a.first_death.mean());
}

TEST(SimExtensions, FixedSummaryCheaperThanRatioUnderLoad) {
  ExperimentConfig ratio = fast_config();
  ratio.sim.mean_interarrival = 2.0;
  ExperimentConfig fixed = ratio;
  fixed.sim.aggregation = Aggregation::kFixedSummary;
  const AggregatedMetrics a = run_experiment("kmeans", ratio);
  const AggregatedMetrics b = run_experiment("kmeans", fixed);
  // A single L-bit summary per head per round beats shipping 50% of all
  // collected bits.
  EXPECT_LT(b.total_energy.mean(), a.total_energy.mean());
  EXPECT_GT(b.pdr.mean(), 0.5);
}

TEST(SimExtensions, TlLeachRunsViaRegistry) {
  const auto results = run_replications("tl-leach", fast_config());
  for (const SimResult& r : results) {
    EXPECT_EQ(r.protocol, "TL-LEACH");
    EXPECT_GT(r.generated, 0u);
    EXPECT_EQ(r.generated,
              r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
  }
}

TEST(SimExtensions, HeedRunsViaRegistry) {
  const auto results = run_replications("heed", fast_config());
  for (const SimResult& r : results) {
    EXPECT_EQ(r.protocol, "HEED");
    EXPECT_GT(r.pdr(), 0.3);
  }
}

TEST(SimExtensions, TlLeachSecondariesRelayThroughPrimaries) {
  Rng rng(3);
  ScenarioConfig scenario;
  scenario.n = 120;
  Network net = make_uniform_network(scenario, rng);
  TlLeachProtocol proto(0.04, 0.15, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  bool saw_relay = false;
  for (const int s : proto.levels().secondaries) {
    const int up = proto.uplink_target(net, s, rng);
    if (up != kBaseStationId) {
      saw_relay = true;
      // Must be a live primary.
      const auto& prim = proto.levels().primaries;
      EXPECT_TRUE(std::find(prim.begin(), prim.end(), up) != prim.end());
    }
  }
  if (!proto.levels().primaries.empty() &&
      !proto.levels().secondaries.empty()) {
    EXPECT_TRUE(saw_relay);
  }
}

TEST(SimExtensions, HeedProtocolCoversMembers) {
  Rng rng(4);
  ScenarioConfig scenario;
  scenario.n = 100;
  Network net = make_uniform_network(scenario, rng);
  HeedConfig hc;
  hc.cluster_range = 60.0;
  HeedProtocol proto(hc, 0.0, RadioModel{});
  EnergyLedger ledger;
  proto.on_round_start(net, 0, rng, ledger);
  EXPECT_FALSE(net.head_ids().empty());
  for (int i = 0; i < 20; ++i) {
    if (net.node(i).is_head) continue;
    const int t = proto.route(net, i, 4000.0, rng);
    EXPECT_NE(t, kBaseStationId);
  }
}

TEST(SimExtensions, RegistryListsNewProtocols) {
  const auto names = protocol_names();
  EXPECT_TRUE(std::find(names.begin(), names.end(), "heed") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "tl-leach") !=
              names.end());
}


TEST(SimExtensions, IdleListeningDrainsAndIsLedgered) {
  ExperimentConfig quiet = fast_config();
  quiet.sim.mean_interarrival = 0.0;  // no traffic at all
  quiet.protocol.hello_bits = 0.0;    // no control plane either
  ExperimentConfig idle = quiet;
  idle.sim.idle_listen_j_per_slot = 1e-4;
  const auto a = run_replications("kmeans", quiet);
  const auto b = run_replications("kmeans", idle);
  EXPECT_DOUBLE_EQ(a[0].total_energy_consumed, 0.0);
  // 40 nodes * 6 rounds * 10 slots * 1e-4 J.
  EXPECT_NEAR(b[0].total_energy_consumed, 40 * 6 * 10 * 1e-4, 1e-9);
  EXPECT_NEAR(b[0].energy.by_use(EnergyUse::kIdle),
              b[0].total_energy_consumed, 1e-12);
}

TEST(SimExtensions, IdleListeningRespectsDeaths) {
  ExperimentConfig cfg = fast_config();
  cfg.sim.mean_interarrival = 0.0;
  cfg.protocol.hello_bits = 0.0;
  cfg.scenario.initial_energy = 25e-4;  // dies after 25 slots of idling
  cfg.sim.idle_listen_j_per_slot = 1e-4;
  cfg.sim.rounds = 10;
  const auto results = run_replications("kmeans", cfg);
  // Every battery fully drains, and drain stops at zero (no negatives).
  EXPECT_NEAR(results[0].total_energy_consumed, 40 * 25e-4, 1e-9);
  EXPECT_GE(results[0].first_death_round, 0);
}

}  // namespace
}  // namespace qlec
