// Fault-injection subsystem tests: determinism contract (a disabled
// FaultConfig is invisible to the trace), per-kind fault semantics,
// ledger-reconciled battery fades, loss attribution, recovery metrics, and
// registry-wide audited faulted runs.
#include "sim/fault/fault.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/fault/resilience.hpp"
#include "sim/protocols/direct_protocol.hpp"
#include "sim/protocols/kmeans_protocol.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace qlec {
namespace {

Network fault_network(Rng& rng, std::size_t n = 30) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.m_side = 200.0;
  cfg.initial_energy = 5.0;
  return make_uniform_network(cfg, rng);
}

SimConfig traced_config(int rounds = 6) {
  SimConfig cfg;
  cfg.rounds = rounds;
  cfg.slots_per_round = 8;
  cfg.mean_interarrival = 3.0;
  cfg.trace.record = true;
  return cfg;
}

SimResult run_direct(const SimConfig& cfg, std::uint64_t seed = 7,
                     std::size_t n = 30) {
  Rng net_rng(seed);
  Network net = fault_network(net_rng, n);
  DirectProtocol proto;
  Rng sim_rng(seed ^ 0x9E3779B97F4A7C15ULL);
  return run_simulation(net, proto, cfg, sim_rng);
}

// --- Determinism contract -------------------------------------------------

TEST(Fault, DisabledConfigLeavesTraceBitIdentical) {
  // A fully populated but DISABLED FaultConfig must not perturb the Rng
  // stream or the trace in any way: same digest as a default config.
  SimConfig plain = traced_config();
  SimConfig armed_but_off = traced_config();
  armed_but_off.fault.enabled = false;
  armed_but_off.fault.seed = 1234;
  armed_but_off.fault.plan.events.push_back(
      FaultEvent{FaultKind::kCrash, 1, 0, 1, 0.5, false, Aabb::cube(200.0)});
  armed_but_off.fault.hazards.crash_per_node = 0.5;

  const SimResult a = run_direct(plain);
  const SimResult b = run_direct(armed_but_off);
  EXPECT_EQ(trace_digest(a.trace), trace_digest(b.trace));
  EXPECT_FALSE(b.resilience.enabled);
  EXPECT_EQ(b.resilience.per_round.size(), 0u);
}

TEST(Fault, FaultedRunIsReproducible) {
  SimConfig cfg = traced_config();
  cfg.fault.enabled = true;
  cfg.fault.seed = 99;
  cfg.fault.hazards.crash_per_node = 0.02;
  cfg.fault.hazards.stun_per_node = 0.05;
  cfg.fault.hazards.degrade_episode = 0.2;
  cfg.fault.hazards.bs_outage = 0.1;

  const SimResult a = run_direct(cfg);
  const SimResult b = run_direct(cfg);
  EXPECT_EQ(trace_digest(a.trace), trace_digest(b.trace));
  EXPECT_EQ(a.resilience.crashes, b.resilience.crashes);
  EXPECT_EQ(a.resilience.stuns, b.resilience.stuns);
  EXPECT_EQ(a.resilience.bs_outage_rounds, b.resilience.bs_outage_rounds);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_DOUBLE_EQ(a.total_energy_consumed, b.total_energy_consumed);
}

TEST(Fault, DistinctFaultSeedsDecoupleScenarios) {
  SimConfig cfg = traced_config();
  cfg.fault.enabled = true;
  cfg.fault.hazards.crash_per_node = 0.05;
  cfg.fault.seed = 1;
  const SimResult a = run_direct(cfg);
  cfg.fault.seed = 2;
  const SimResult b = run_direct(cfg);
  // Same simulation seed, different fault stream: the fault sequences (and
  // almost surely the traces) differ.
  EXPECT_NE(trace_digest(a.trace), trace_digest(b.trace));
}

// --- Per-kind semantics ---------------------------------------------------

TEST(Fault, ScheduledCrashTakesNodeDownForGood) {
  Rng net_rng(11);
  Network net = fault_network(net_rng);
  DirectProtocol proto;
  SimConfig cfg = traced_config(6);
  cfg.fault.enabled = true;
  cfg.fault.plan.events.push_back(FaultEvent{FaultKind::kCrash, 2, 4});
  cfg.audit.enabled = true;
  cfg.audit.throw_on_violation = true;
  Rng sim_rng(12);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);

  EXPECT_EQ(r.resilience.crashes, 1u);
  EXPECT_FALSE(net.node(4).up);
  EXPECT_FALSE(net.node(4).operational(cfg.death_line));
  EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
  // Rounds 0-1 see the full population, rounds 2+ one fewer.
  ASSERT_GE(r.trace.size(), 3u);
  EXPECT_EQ(r.trace[0].alive, net.size());
  EXPECT_EQ(r.trace[2].alive, net.size() - 1);
}

TEST(Fault, StunnedNodeSleepsThenWakes) {
  Rng net_rng(13);
  Network net = fault_network(net_rng);
  DirectProtocol proto;
  SimConfig cfg = traced_config(6);
  cfg.mean_interarrival = 0.0;  // no traffic: aliveness is purely fault-driven
  cfg.fault.enabled = true;
  cfg.fault.plan.events.push_back(FaultEvent{FaultKind::kStun, 1, 3, 2});
  cfg.audit.enabled = true;
  cfg.audit.throw_on_violation = true;
  Rng sim_rng(14);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);

  EXPECT_EQ(r.resilience.stuns, 1u);
  EXPECT_TRUE(net.node(3).up);  // the sleep window expired before the end
  EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
  // Down exactly for rounds 1 and 2, operational again from round 3.
  ASSERT_EQ(r.trace.size(), 6u);
  EXPECT_EQ(r.trace[0].alive, net.size());
  EXPECT_EQ(r.trace[1].alive, net.size() - 1);
  EXPECT_EQ(r.trace[2].alive, net.size() - 1);
  EXPECT_EQ(r.trace[3].alive, net.size());
  // A stunned radio is silent: with no traffic at all, no node spent any
  // energy, including the stunned one.
  EXPECT_DOUBLE_EQ(net.node(3).battery.residual(),
                   net.node(3).battery.initial());
}

TEST(Fault, RegionalBlackoutDownsEveryContainedNode) {
  Rng net_rng(15);
  Network net = fault_network(net_rng);
  DirectProtocol proto;
  SimConfig cfg = traced_config(5);
  cfg.fault.enabled = true;
  FaultEvent e;
  e.kind = FaultKind::kBlackout;
  e.round = 1;
  e.permanent = true;
  e.region = Aabb::cube(200.0);  // the whole deployment volume
  cfg.fault.plan.events.push_back(e);
  cfg.audit.enabled = true;
  cfg.audit.throw_on_violation = true;
  Rng sim_rng(16);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);

  EXPECT_EQ(r.resilience.blackouts, 1u);
  EXPECT_EQ(r.resilience.crashes, net.size());
  for (const SensorNode& n : net.nodes()) EXPECT_FALSE(n.up);
  // The whole network is down from round 1: the run ends there.
  EXPECT_EQ(r.rounds_completed, 2);
  EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
}

TEST(Fault, BatteryFadeReconcilesThroughTheLedger) {
  Rng net_rng(17);
  Network net = fault_network(net_rng);
  DirectProtocol proto;
  SimConfig cfg = traced_config(4);
  cfg.fault.enabled = true;
  FaultEvent e;
  e.kind = FaultKind::kBatteryFade;
  e.round = 1;
  e.node = 2;
  e.severity = 0.25;
  cfg.fault.plan.events.push_back(e);
  cfg.audit.enabled = true;
  cfg.audit.throw_on_violation = true;
  Rng sim_rng(18);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);

  EXPECT_EQ(r.resilience.fades, 1u);
  EXPECT_GT(r.resilience.energy_faded_j, 0.0);
  // The fade went through the EnergyLedger under its own bucket, so the
  // audited conservation books still balance (audit would have thrown).
  EXPECT_DOUBLE_EQ(r.energy.by_use(EnergyUse::kFault),
                   r.resilience.energy_faded_j);
  EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
}

TEST(Fault, BsOutageSuppressesAllDirectDeliveries) {
  SimConfig cfg = traced_config(4);
  cfg.fault.enabled = true;
  FaultEvent e;
  e.kind = FaultKind::kBsOutage;
  e.round = 0;
  e.duration = 4;  // covers the whole run
  cfg.fault.plan.events.push_back(e);
  const SimResult r = run_direct(cfg);

  EXPECT_GT(r.generated, 0u);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.resilience.bs_outage_rounds, 4u);
  // Every loss is a link loss whose final attempt hit the silent BS.
  EXPECT_EQ(r.lost_link, r.generated);
  EXPECT_EQ(r.resilience.lost_to_bs_outage, r.lost_link);
}

TEST(Fault, TotalLinkDegradationKillsEveryAttempt) {
  SimConfig cfg = traced_config(4);
  cfg.fault.enabled = true;
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.round = 0;
  e.duration = 4;
  e.severity = 0.0;  // success probability scaled to zero
  cfg.fault.plan.events.push_back(e);
  const SimResult r = run_direct(cfg);

  EXPECT_GT(r.generated, 0u);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.resilience.degraded_rounds, 4u);
  EXPECT_EQ(r.lost_link, r.generated);
  EXPECT_EQ(r.resilience.lost_during_degradation, r.lost_link);
}

TEST(Fault, CrashedMemberStopsSensing) {
  // Packets can only be charged against operational sources: crash every
  // node at round 0 and nothing is ever generated.
  SimConfig cfg = traced_config(3);
  cfg.fault.enabled = true;
  FaultEvent e;
  e.kind = FaultKind::kBlackout;
  e.round = 0;
  e.permanent = true;
  e.region = Aabb::cube(200.0);
  cfg.fault.plan.events.push_back(e);
  const SimResult r = run_direct(cfg);
  EXPECT_EQ(r.generated, 0u);
}

// --- Per-round rows and recovery ------------------------------------------

TEST(Fault, PerRoundRowsCoverEveryCompletedRound) {
  SimConfig cfg = traced_config(6);
  cfg.fault.enabled = true;
  cfg.fault.plan.events.push_back(FaultEvent{FaultKind::kStun, 2, 1, 2});
  const SimResult r = run_direct(cfg);
  ASSERT_EQ(r.resilience.per_round.size(),
            static_cast<std::size_t>(r.rounds_completed));
  std::uint64_t gen = 0;
  std::uint64_t del = 0;
  for (const RoundResilience& row : r.resilience.per_round) {
    gen += row.generated;
    del += row.delivered;
  }
  EXPECT_EQ(gen, r.generated);
  EXPECT_EQ(del, r.delivered);
  EXPECT_EQ(r.resilience.per_round[2].disruptions, 1u);
  EXPECT_EQ(r.resilience.per_round[2].nodes_down, 1u);
}

TEST(Recovery, NoDisruptionMeansNoMetric) {
  EXPECT_DOUBLE_EQ(mean_recovery_rounds({}), -1.0);
  std::vector<RoundResilience> rows(4);
  for (int i = 0; i < 4; ++i) {
    rows[static_cast<std::size_t>(i)].round = i;
    rows[static_cast<std::size_t>(i)].generated = 10;
    rows[static_cast<std::size_t>(i)].delivered = 10;
  }
  EXPECT_DOUBLE_EQ(mean_recovery_rounds(rows), -1.0);
}

TEST(Recovery, ImmediateRecoveryCountsZeroRounds) {
  // The disruption round itself still delivers at baseline: recovery = 0.
  std::vector<RoundResilience> rows(3);
  for (int i = 0; i < 3; ++i) {
    rows[static_cast<std::size_t>(i)].round = i;
    rows[static_cast<std::size_t>(i)].generated = 10;
    rows[static_cast<std::size_t>(i)].delivered = 10;
  }
  rows[1].disruptions = 1;
  EXPECT_DOUBLE_EQ(mean_recovery_rounds(rows), 0.0);
}

TEST(Recovery, DelayedRecoveryCountsTheGap) {
  // Healthy rounds 0-1 set a PDR-1.0 baseline; the round-2 disruption
  // zeroes delivery for rounds 2-3; round 4 is back at baseline -> 2.
  std::vector<RoundResilience> rows(5);
  for (int i = 0; i < 5; ++i) {
    rows[static_cast<std::size_t>(i)].round = i;
    rows[static_cast<std::size_t>(i)].generated = 10;
    rows[static_cast<std::size_t>(i)].delivered = 10;
  }
  rows[2].disruptions = 1;
  rows[2].delivered = 0;
  rows[3].delivered = 0;
  EXPECT_DOUBLE_EQ(mean_recovery_rounds(rows), 2.0);
}

TEST(Recovery, UnrecoveredDisruptionCountsRemainingHorizon) {
  std::vector<RoundResilience> rows(5);
  for (int i = 0; i < 5; ++i) {
    rows[static_cast<std::size_t>(i)].round = i;
    rows[static_cast<std::size_t>(i)].generated = 10;
    rows[static_cast<std::size_t>(i)].delivered = 10;
  }
  rows[2].disruptions = 1;
  for (int i = 2; i < 5; ++i) rows[static_cast<std::size_t>(i)].delivered = 0;
  EXPECT_DOUBLE_EQ(mean_recovery_rounds(rows), 3.0);
}

// --- Cluster-mode interactions --------------------------------------------

TEST(Fault, CrashedNodeIsNeverElectedHead) {
  Rng net_rng(21);
  Network net = fault_network(net_rng, 20);
  KmeansProtocol proto(4, 0.0, RadioModel{});
  SimConfig cfg = traced_config(8);
  cfg.fault.enabled = true;
  cfg.fault.seed = 5;
  cfg.fault.hazards.crash_per_node = 0.05;
  cfg.audit.enabled = true;
  cfg.audit.throw_on_violation = true;  // election of a down node -> throw
  Rng sim_rng(22);
  const SimResult r = run_simulation(net, proto, cfg, sim_rng);
  EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
}

// --- Registry-wide audited faulted runs -----------------------------------

TEST(Fault, EveryProtocolSurvivesAnAuditedFaultStorm) {
  ExperimentConfig cfg;
  cfg.scenario.n = 30;
  cfg.sim.rounds = 8;
  cfg.sim.slots_per_round = 8;
  cfg.sim.trace.record = true;
  cfg.sim.audit.enabled = true;
  cfg.sim.audit.throw_on_violation = true;
  cfg.sim.fault.enabled = true;
  cfg.sim.fault.seed = 31;
  cfg.sim.fault.hazards.crash_per_node = 0.02;
  cfg.sim.fault.hazards.stun_per_node = 0.04;
  cfg.sim.fault.hazards.fade_per_node = 0.02;
  cfg.sim.fault.hazards.degrade_episode = 0.15;
  cfg.sim.fault.hazards.bs_outage = 0.05;
  cfg.seeds = 2;
  cfg.protocol.qlec.total_rounds = 8;

  for (const std::string& name : protocol_names()) {
    SCOPED_TRACE(name);
    const auto results = run_replications(name, cfg);  // throws on violation
    for (const SimResult& r : results) {
      EXPECT_TRUE(r.resilience.enabled);
      EXPECT_TRUE(r.audit.ok()) << r.audit.summary();
      EXPECT_EQ(r.generated,
                r.delivered + r.lost_link + r.lost_queue + r.lost_dead);
      // Fault-class attributions refine the classic loss counters, never
      // exceed them.
      EXPECT_LE(r.resilience.lost_to_bs_outage +
                    r.resilience.lost_to_down_target +
                    r.resilience.lost_during_degradation,
                r.lost_link);
      EXPECT_LE(r.resilience.lost_at_down_node, r.lost_dead);
    }
  }
}

}  // namespace
}  // namespace qlec
