// Deterministic-replay golden-trace harness.
//
// A fixed small scenario is run for every protocol in the registry; the
// per-round RoundStats trace is hashed with trace_digest() and compared
// against the digests committed under tests/golden/ (one file per
// protocol, one hex digest per seed). Any change to simulator semantics,
// protocol behaviour, or Rng stream consumption shows up as a digest
// mismatch here before it can silently skew Fig. 3/4 style results.
//
// When the simulation model changes INTENTIONALLY, regenerate with
//   QLEC_REGEN_GOLDEN=1 ctest -R GoldenTraces --output-on-failure
// and commit the rewritten tests/golden/ files with the change.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "util/env.hpp"

namespace qlec {
namespace {

#ifndef QLEC_GOLDEN_DIR
#error "QLEC_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

/// The frozen replay scenario. Do not tweak casually: every digest under
/// tests/golden/ is a function of these numbers.
ExperimentConfig golden_config() {
  ExperimentConfig cfg;
  cfg.scenario.n = 40;
  cfg.sim.rounds = 10;
  cfg.sim.slots_per_round = 10;
  cfg.sim.trace.record = true;
  cfg.seeds = 2;
  cfg.base_seed = 42;
  cfg.protocol.qlec.total_rounds = 10;
  return cfg;
}

std::string golden_path(const std::string& protocol) {
  return std::string(QLEC_GOLDEN_DIR) + "/" + protocol + ".digest";
}

std::vector<std::string> digests_for(
    const std::string& protocol,
    const ExecPolicy& exec = ExecPolicy::serial()) {
  const auto results = run_replications(protocol, golden_config(), exec);
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const SimResult& r : results) out.push_back(trace_digest_hex(r.trace));
  return out;
}

std::vector<std::string> read_golden(const std::string& protocol) {
  std::ifstream in(golden_path(protocol));
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  return lines;
}

void write_golden(const std::string& protocol,
                  const std::vector<std::string>& digests) {
  std::ofstream out(golden_path(protocol));
  for (const std::string& d : digests) out << d << "\n";
}

TEST(GoldenTraces, DigestIsStableAndFieldSensitive) {
  std::vector<RoundStats> trace{{0, 40, 5, 199.5, 100, 90},
                                {1, 39, 5, 180.25, 210, 195}};
  EXPECT_EQ(trace_digest(trace), trace_digest(trace));
  EXPECT_EQ(trace_digest_hex(trace).size(), 16u);

  std::vector<RoundStats> tweaked = trace;
  tweaked[1].delivered += 1;
  EXPECT_NE(trace_digest(trace), trace_digest(tweaked));
  tweaked = trace;
  tweaked[0].total_residual += 1e-9;
  EXPECT_NE(trace_digest(trace), trace_digest(tweaked));

  // Empty trace hashes to the FNV-1a offset basis.
  EXPECT_EQ(trace_digest({}), 0xcbf29ce484222325ULL);
}

TEST(GoldenTraces, SameSeedRerunsAreBitIdentical) {
  for (const std::string& name : protocol_names())
    EXPECT_EQ(digests_for(name), digests_for(name)) << name;
}

TEST(GoldenTraces, SerialMatchesThreadPoolFanout) {
  ThreadPool pool(3);
  const ExecPolicy borrowed = ExecPolicy::borrow(pool);
  for (const std::string& name : protocol_names())
    EXPECT_EQ(digests_for(name), digests_for(name, borrowed)) << name;
}

TEST(GoldenTraces, MatchesCommittedDigests) {
  const bool regen = env::regen_golden();
  for (const std::string& name : protocol_names()) {
    const std::vector<std::string> now = digests_for(name);
    if (regen) {
      write_golden(name, now);
      continue;
    }
    const std::vector<std::string> golden = read_golden(name);
    ASSERT_FALSE(golden.empty())
        << name << ": missing " << golden_path(name)
        << " — run with QLEC_REGEN_GOLDEN=1 to (re)generate";
    EXPECT_EQ(now, golden)
        << name << ": simulator trace diverged from the committed golden "
        << "digest. If the model change is intentional, regenerate with "
        << "QLEC_REGEN_GOLDEN=1 and commit tests/golden/.";
  }
}

TEST(GoldenTraces, AuditedRunProducesIdenticalTrace) {
  // The auditor must be strictly observational: enabling it cannot change
  // the trajectory (it shares no Rng draws with the simulation).
  ExperimentConfig cfg = golden_config();
  for (const std::string& name : {std::string("qlec"), std::string("fcm"),
                                  std::string("qelar")}) {
    const auto plain = run_replications(name, cfg);
    ExperimentConfig audited_cfg = cfg;
    audited_cfg.sim.audit.enabled = true;
    const auto audited = run_replications(name, audited_cfg);
    ASSERT_EQ(plain.size(), audited.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(trace_digest(plain[i].trace),
                trace_digest(audited[i].trace))
          << name << " seed " << i;
      EXPECT_TRUE(audited[i].audit.ok()) << audited[i].audit.summary();
    }
  }
}

}  // namespace
}  // namespace qlec
