#include "routing/qelar.hpp"

#include <gtest/gtest.h>

#include "geom/sampling.hpp"

namespace qlec {
namespace {

Network line_network(int n, double spacing = 30.0) {
  std::vector<Vec3> pts;
  for (int i = 1; i <= n; ++i)
    pts.push_back({spacing * static_cast<double>(i), 0, 0});
  return Network(pts, 5.0, {0, 0, 0}, Aabb::cube(spacing * (n + 1)));
}

QelarParams deterministic_params() {
  QelarParams p;
  p.epsilon = 0.0;
  p.p_success = 1.0;
  return p;
}

TEST(Qelar, LearnsToReachBsOnLine) {
  const Network net = line_network(6);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  Rng rng(1);
  router.train_to_convergence(1e-10, 200, rng);
  for (int src = 0; src < 6; ++src) {
    const auto path = router.route(src);
    ASSERT_FALSE(path.empty()) << src;
    EXPECT_EQ(path.back(), kBaseStationId) << src;
    // On a line, the only route is down the chain: src hops each time.
    EXPECT_EQ(path.size(), static_cast<std::size_t>(src + 1));
  }
}

TEST(Qelar, ValuesDecreaseWithDistanceFromBs) {
  const Network net = line_network(6);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  Rng rng(2);
  router.train_to_convergence(1e-10, 200, rng);
  for (int i = 1; i < 6; ++i) EXPECT_LT(router.v(i), router.v(i - 1));
}

TEST(Qelar, PrefersRelayOverLongDirectHop) {
  // 160 m direct (d^4 regime) vs two 80 m hops: the energy term must steer
  // the learned route through the relay, like Dijkstra does.
  const std::vector<Vec3> pts{{80, 0, 0}, {160, 0, 0}};
  const Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(300.0));
  const ConnectivityGraph g(net, 200.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  Rng rng(3);
  router.train_to_convergence(1e-10, 200, rng);
  const auto path = router.route(1);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], kBaseStationId);
}

TEST(Qelar, RouteEnergyNearDijkstraOptimum) {
  Rng deploy(4);
  const Aabb box = Aabb::cube(150.0);
  const Network net(sample_uniform(50, box, deploy), 5.0, {0, 0, 0}, box);
  const ConnectivityGraph g(net, 70.0, 4000.0, RadioModel{});
  const ShortestPaths sp = min_energy_paths(g);
  QelarRouter router(g, net, deterministic_params());
  Rng rng(5);
  router.train_to_convergence(1e-10, 400, rng);
  int reachable = 0, routed = 0;
  double stretch_worst = 0.0;
  for (int src = 0; src < 50; ++src) {
    if (std::isinf(sp.cost[static_cast<std::size_t>(src)])) continue;
    ++reachable;
    const auto path = router.route(src);
    if (path.empty() || path.back() != kBaseStationId) continue;
    ++routed;
    const double e = router.route_energy(src, path);
    stretch_worst = std::max(
        stretch_worst, e / sp.cost[static_cast<std::size_t>(src)]);
  }
  ASSERT_GT(reachable, 20);
  EXPECT_EQ(routed, reachable);  // everything reachable gets routed
  // The discounted-reward objective is not exactly min-energy (the -g
  // punishment rewards fewer hops), but routes must stay near-optimal.
  EXPECT_LT(stretch_worst, 3.0);
}

TEST(Qelar, TrainEpisodeReportsFailureWithoutNeighbours) {
  const std::vector<Vec3> pts{{500, 0, 0}};
  const Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(600.0));
  const ConnectivityGraph g(net, 50.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  Rng rng(6);
  EXPECT_LT(router.train_episode(0, 32, rng), 0);
  EXPECT_EQ(router.best_hop(0), -2);
  EXPECT_TRUE(router.route(0).empty());
}

TEST(Qelar, LossyLinksSlowButDoNotBreakTraining) {
  const Network net = line_network(4);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  QelarParams params = deterministic_params();
  params.p_success = 0.7;
  QelarRouter router(g, net, params);
  Rng rng(7);
  router.train_to_convergence(1e-8, 500, rng);
  const auto path = router.route(3);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.back(), kBaseStationId);
  // Self-transition probability lowers the values vs the lossless case.
  EXPECT_LT(router.v(3), 0.0);
}

TEST(Qelar, RouteEnergyInfiniteForNonBsPath) {
  const Network net = line_network(3);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  EXPECT_TRUE(std::isinf(router.route_energy(2, {1})));
  EXPECT_TRUE(std::isinf(router.route_energy(2, {})));
}

TEST(Qelar, UpdatesCounterAdvances) {
  const Network net = line_network(3);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  Rng rng(8);
  EXPECT_EQ(router.updates(), 0u);
  router.train_episode(2, 16, rng);
  EXPECT_GT(router.updates(), 0u);
}

TEST(Qelar, DrainedRelayLosesAttraction) {
  // Two parallel relays at the same distance; drain one and confirm the
  // energy-aware reward steers the route through the healthy one.
  const std::vector<Vec3> pts{
      {80, 20, 0}, {80, -20, 0}, {160, 0, 0}};
  Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(300.0));
  net.node(0).battery.consume(4.9);  // relay 0 nearly dead
  const ConnectivityGraph g(net, 130.0, 4000.0, RadioModel{});
  QelarRouter router(g, net, deterministic_params());
  Rng rng(9);
  router.train_to_convergence(1e-10, 300, rng);
  const auto path = router.route(2);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path[0], 1);  // the healthy relay
}

}  // namespace
}  // namespace qlec
