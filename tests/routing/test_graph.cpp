#include "routing/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/sampling.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

// Line of nodes 30 m apart; BS at the origin.
Network line_network(int n, double spacing = 30.0) {
  std::vector<Vec3> pts;
  for (int i = 1; i <= n; ++i)
    pts.push_back({spacing * static_cast<double>(i), 0, 0});
  return Network(pts, 5.0, {0, 0, 0}, Aabb::cube(spacing * (n + 1)));
}

TEST(ConnectivityGraph, EdgesRespectRange) {
  const Network net = line_network(5);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  // Each interior node sees exactly its two 30 m neighbours.
  EXPECT_EQ(g.neighbours(2).size(), 2u);
  // Node 0 (x=30): neighbour node 1 plus the BS at 30 m.
  EXPECT_EQ(g.neighbours(0).size(), 2u);
  EXPECT_TRUE(g.reaches_bs(0));
  EXPECT_FALSE(g.reaches_bs(3));
}

TEST(ConnectivityGraph, EdgeEnergyMatchesRadioModel) {
  const Network net = line_network(2);
  const RadioModel radio;
  const ConnectivityGraph g(net, 100.0, 4000.0, radio);
  for (const Edge& e : g.neighbours(0)) {
    EXPECT_NEAR(e.energy, radio.tx_energy(4000.0, e.distance), 1e-15);
  }
}

TEST(ConnectivityGraph, SymmetricNeighbours) {
  Rng rng(1);
  const Aabb box = Aabb::cube(100.0);
  const Network net(sample_uniform(60, box, rng), 5.0, box.center(), box);
  const ConnectivityGraph g(net, 40.0, 4000.0, RadioModel{});
  for (int u = 0; u < 60; ++u) {
    for (const Edge& e : g.neighbours(u)) {
      if (e.to == kBaseStationId) continue;
      bool back = false;
      for (const Edge& r : g.neighbours(e.to)) back |= r.to == u;
      EXPECT_TRUE(back) << u << "->" << e.to;
    }
  }
}

TEST(MinEnergyPaths, LineGraphChainsToBs) {
  const Network net = line_network(5);
  const ConnectivityGraph g(net, 35.0, 4000.0, RadioModel{});
  const ShortestPaths sp = min_energy_paths(g);
  // Node 0 hops straight to the BS; the rest chain down the line.
  EXPECT_EQ(sp.first_hop[0], kBaseStationId);
  EXPECT_EQ(sp.first_hop[1], 0);
  EXPECT_EQ(sp.first_hop[4], 3);
  // Costs strictly increase along the line.
  for (int i = 1; i < 5; ++i)
    EXPECT_GT(sp.cost[static_cast<std::size_t>(i)],
              sp.cost[static_cast<std::size_t>(i - 1)]);
  // Exact cost for node 2: three 30 m hops.
  const RadioModel radio;
  EXPECT_NEAR(sp.cost[2], 3.0 * radio.tx_energy(4000.0, 30.0), 1e-12);
}

TEST(MinEnergyPaths, UnreachableNodesFlagged) {
  // Two nodes far apart; only one is in range of the BS.
  const std::vector<Vec3> pts{{30, 0, 0}, {500, 0, 0}};
  const Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(600.0));
  const ConnectivityGraph g(net, 50.0, 4000.0, RadioModel{});
  const ShortestPaths sp = min_energy_paths(g);
  EXPECT_EQ(sp.first_hop[0], kBaseStationId);
  EXPECT_EQ(sp.first_hop[1], ShortestPaths::kUnreachable);
  EXPECT_TRUE(std::isinf(sp.cost[1]));
}

TEST(MinEnergyPaths, MultiHopBeatsLongDirectHop) {
  // Node at 160 m with a relay at 80 m: two free-space-ish hops cost less
  // than one direct hop in the d^4 regime, and Dijkstra must find that.
  const std::vector<Vec3> pts{{80, 0, 0}, {160, 0, 0}};
  const Network net(pts, 5.0, {0, 0, 0}, Aabb::cube(300.0));
  const RadioModel radio;
  const ConnectivityGraph g(net, 200.0, 4000.0, radio);
  const ShortestPaths sp = min_energy_paths(g);
  EXPECT_EQ(sp.first_hop[1], 0);  // via the relay
  EXPECT_LT(sp.cost[1], radio.tx_energy(4000.0, 160.0));
}

TEST(MinEnergyPaths, MatchesBruteForceOnSmallRandomGraphs) {
  Rng rng(7);
  const Aabb box = Aabb::cube(120.0);
  const Network net(sample_uniform(12, box, rng), 5.0, {0, 0, 0}, box);
  const ConnectivityGraph g(net, 80.0, 4000.0, RadioModel{});
  const ShortestPaths sp = min_energy_paths(g);
  // Brute force: Bellman-Ford style relaxation.
  std::vector<double> cost(12, 1e18);
  for (int i = 0; i < 12; ++i)
    for (const Edge& e : g.neighbours(i))
      if (e.to == kBaseStationId)
        cost[static_cast<std::size_t>(i)] =
            std::min(cost[static_cast<std::size_t>(i)], e.energy);
  for (int pass = 0; pass < 12; ++pass) {
    for (int u = 0; u < 12; ++u) {
      for (const Edge& e : g.neighbours(u)) {
        if (e.to == kBaseStationId) continue;
        cost[static_cast<std::size_t>(u)] =
            std::min(cost[static_cast<std::size_t>(u)],
                     cost[static_cast<std::size_t>(e.to)] + e.energy);
      }
    }
  }
  for (int i = 0; i < 12; ++i) {
    if (cost[static_cast<std::size_t>(i)] > 1e17) {
      EXPECT_TRUE(std::isinf(sp.cost[static_cast<std::size_t>(i)]));
    } else {
      EXPECT_NEAR(sp.cost[static_cast<std::size_t>(i)],
                  cost[static_cast<std::size_t>(i)], 1e-12);
    }
  }
}

}  // namespace
}  // namespace qlec
