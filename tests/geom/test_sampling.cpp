#include "geom/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

TEST(SampleUniform, CountAndContainment) {
  Rng rng(1);
  const Aabb box = Aabb::cube(200.0);
  const auto pts = sample_uniform(500, box, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Vec3& p : pts) EXPECT_TRUE(box.contains(p));
}

TEST(SampleUniform, MeanNearCenter) {
  Rng rng(2);
  const Aabb box = Aabb::cube(100.0);
  const auto pts = sample_uniform(20000, box, rng);
  const Vec3 c = centroid(pts);
  EXPECT_NEAR(c.x, 50.0, 1.0);
  EXPECT_NEAR(c.y, 50.0, 1.0);
  EXPECT_NEAR(c.z, 50.0, 1.0);
}

TEST(SampleUniform, ZeroCount) {
  Rng rng(3);
  EXPECT_TRUE(sample_uniform(0, Aabb::cube(10), rng).empty());
}

TEST(SampleClustered, PointsNearCenters) {
  Rng rng(4);
  const Aabb box = Aabb::cube(1000.0);
  const std::vector<Vec3> centers{{100, 100, 100}, {900, 900, 900}};
  const auto pts =
      sample_clustered(400, box, centers, {}, /*sigma=*/10.0, rng);
  ASSERT_EQ(pts.size(), 400u);
  for (const Vec3& p : pts) {
    const double d0 = distance(p, centers[0]);
    const double d1 = distance(p, centers[1]);
    EXPECT_LT(std::min(d0, d1), 100.0);  // within ~10 sigma of some center
    EXPECT_TRUE(box.contains(p));
  }
}

TEST(SampleClustered, WeightsBiasCenterChoice) {
  Rng rng(5);
  const Aabb box = Aabb::cube(1000.0);
  const std::vector<Vec3> centers{{100, 100, 100}, {900, 900, 900}};
  const auto pts =
      sample_clustered(2000, box, centers, {9.0, 1.0}, 5.0, rng);
  int near_first = 0;
  for (const Vec3& p : pts)
    if (distance(p, centers[0]) < distance(p, centers[1])) ++near_first;
  EXPECT_GT(near_first, 1600);  // ~90%
}

TEST(SampleClustered, EmptyCentersFallsBackToUniform) {
  Rng rng(6);
  const Aabb box = Aabb::cube(50.0);
  const auto pts = sample_clustered(100, box, {}, {}, 1.0, rng);
  ASSERT_EQ(pts.size(), 100u);
  for (const Vec3& p : pts) EXPECT_TRUE(box.contains(p));
}

TEST(SampleTerrain, StaysInBoxAndVariesHeight) {
  Rng rng(7);
  const Aabb box = Aabb::cube(200.0);
  const auto pts = sample_terrain(1000, box, 40.0, 5.0, rng);
  ASSERT_EQ(pts.size(), 1000u);
  double z_min = 1e9, z_max = -1e9;
  for (const Vec3& p : pts) {
    EXPECT_TRUE(box.contains(p));
    z_min = std::min(z_min, p.z);
    z_max = std::max(z_max, p.z);
  }
  // Terrain should produce meaningful vertical relief.
  EXPECT_GT(z_max - z_min, 40.0);
}

TEST(DistanceMoments, KnownConfiguration) {
  const std::vector<Vec3> pts{{3, 4, 0}, {0, 0, 5}};
  const DistanceMoments m = distance_moments(pts, {0, 0, 0});
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.mean_sq, 25.0);
  EXPECT_DOUBLE_EQ(m.max, 5.0);
}

TEST(DistanceMoments, EmptyIsZero) {
  const DistanceMoments m = distance_moments({}, {1, 2, 3});
  EXPECT_EQ(m.mean, 0.0);
  EXPECT_EQ(m.mean_sq, 0.0);
  EXPECT_EQ(m.max, 0.0);
}

TEST(DistanceMoments, UniformCubeToCenterMatchesTheory) {
  // E[d^2] from a uniform cube side M to its center is M^2 / 4.
  Rng rng(8);
  const double m_side = 200.0;
  const Aabb box = Aabb::cube(m_side);
  const auto pts = sample_uniform(50000, box, rng);
  const DistanceMoments m = distance_moments(pts, box.center());
  EXPECT_NEAR(m.mean_sq, m_side * m_side / 4.0, 150.0);
}

TEST(Centroid, Basics) {
  EXPECT_EQ(centroid({}), (Vec3{0, 0, 0}));
  EXPECT_EQ(centroid({{2, 4, 6}}), (Vec3{2, 4, 6}));
  EXPECT_EQ(centroid({{0, 0, 0}, {2, 2, 2}}), (Vec3{1, 1, 1}));
}

}  // namespace
}  // namespace qlec
