#include "geom/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

TEST(Vec3, DefaultIsOrigin) {
  constexpr Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(b / 2.0, (Vec3{2, 2.5, 3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= Vec3{1, 1, 1};
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3, 6, 9}));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{1, 2, 2};
  EXPECT_DOUBLE_EQ(a.dot(a), 9.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 9.0);
  EXPECT_DOUBLE_EQ(a.norm(), 3.0);
  EXPECT_DOUBLE_EQ(Vec3{}.norm(), 0.0);
}

TEST(Vec3, DotIsBilinear) {
  const Vec3 a{1, -2, 3}, b{4, 0, -1}, c{2, 2, 2};
  EXPECT_DOUBLE_EQ((a + b).dot(c), a.dot(c) + b.dot(c));
  EXPECT_DOUBLE_EQ((a * 3.0).dot(b), 3.0 * a.dot(b));
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1, 1, 1}, {2, 2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(distance({7, 7, 7}, {7, 7, 7}), 0.0);
}

TEST(Vec3, DistanceIsSymmetric) {
  const Vec3 a{1, 2, 3}, b{-4, 0, 9};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Vec3, TriangleInequality) {
  const Vec3 a{0, 0, 0}, b{1, 5, -2}, c{3, -1, 4};
  EXPECT_LE(distance(a, c), distance(a, b) + distance(b, c) + 1e-12);
}

TEST(Vec3, Lerp) {
  const Vec3 a{0, 0, 0}, b{10, 20, 30};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec3{5, 10, 15}));
}

}  // namespace
}  // namespace qlec
