#include "geom/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "geom/sampling.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

std::vector<std::size_t> brute_query(const std::vector<Vec3>& pts,
                                     const Vec3& c, double r) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (distance(pts[i], c) <= r) out.push_back(i);
  return out;
}

TEST(SpatialGrid, EmptyGrid) {
  const SpatialGrid grid({}, 10.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.query({0, 0, 0}, 100.0).empty());
  EXPECT_EQ(grid.nearest({0, 0, 0}), SpatialGrid::npos);
}

TEST(SpatialGrid, SinglePoint) {
  const SpatialGrid grid({{5, 5, 5}}, 2.0);
  EXPECT_EQ(grid.query({5, 5, 5}, 0.0).size(), 1u);
  EXPECT_TRUE(grid.query({50, 50, 50}, 1.0).empty());
  EXPECT_EQ(grid.nearest({100, 100, 100}), 0u);
}

TEST(SpatialGrid, RadiusIsInclusive) {
  const SpatialGrid grid({{0, 0, 0}, {3, 0, 0}}, 1.0);
  const auto hits = grid.query({0, 0, 0}, 3.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(SpatialGrid, NegativeRadiusEmpty) {
  const SpatialGrid grid({{0, 0, 0}}, 1.0);
  EXPECT_TRUE(grid.query({0, 0, 0}, -1.0).empty());
}

TEST(SpatialGrid, NeighboursExcludesSelf) {
  const SpatialGrid grid({{0, 0, 0}, {1, 0, 0}, {10, 0, 0}}, 2.0);
  const auto nbrs = grid.neighbours_of(0, 2.0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], 1u);
}

TEST(SpatialGrid, NearestSkipsRequestedIndex) {
  const SpatialGrid grid({{0, 0, 0}, {1, 0, 0}, {5, 0, 0}}, 1.0);
  EXPECT_EQ(grid.nearest({0.1, 0, 0}), 0u);
  EXPECT_EQ(grid.nearest({0.1, 0, 0}, /*skip=*/0), 1u);
}

TEST(SpatialGrid, HandlesNegativeCoordinates) {
  const SpatialGrid grid({{-50, -50, -50}, {50, 50, 50}}, 10.0);
  const auto hits = grid.query({-50, -50, -50}, 1.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(SpatialGrid, DegenerateCellSizeClamped) {
  const SpatialGrid grid({{1, 1, 1}}, 0.0);
  EXPECT_GT(grid.cell_size(), 0.0);
  EXPECT_EQ(grid.query({1, 1, 1}, 0.5).size(), 1u);
}

// Property: grid query == brute force, across radii and cell sizes.
class SpatialGridProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SpatialGridProperty, QueryMatchesBruteForce) {
  const auto [cell, radius] = GetParam();
  Rng rng(77);
  const auto pts = sample_uniform(300, Aabb::cube(100.0), rng);
  const SpatialGrid grid(pts, cell);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 c{rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.uniform(0, 100)};
    auto got = grid.query(c, radius);
    auto want = brute_query(pts, c, radius);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "cell=" << cell << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellRadiusSweep, SpatialGridProperty,
    ::testing::Combine(::testing::Values(3.0, 10.0, 40.0, 150.0),
                       ::testing::Values(0.5, 5.0, 25.0, 80.0)));

TEST(SpatialGrid, NearestMatchesBruteForce) {
  Rng rng(88);
  const auto pts = sample_uniform(200, Aabb::cube(50.0), rng);
  const SpatialGrid grid(pts, 7.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec3 c{rng.uniform(-10, 60), rng.uniform(-10, 60),
                 rng.uniform(-10, 60)};
    const std::size_t got = grid.nearest(c);
    std::size_t want = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const double d = distance(pts[i], c);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    ASSERT_NE(got, SpatialGrid::npos);
    EXPECT_DOUBLE_EQ(distance(pts[got], c), distance(pts[want], c));
  }
}

}  // namespace
}  // namespace qlec
