// Properties of the shared sector/region partitioner (geom/sectors): a
// disjoint id-sorted cover, quadrant vs octant cell layout, clamping of
// out-of-box points, and sane handling of degenerate boxes. The regional
// protocols (Q-LEACH, REECH-ME) and the sharded round core all sit on this
// one primitive.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geom/sectors.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed,
                               double side = 100.0) {
  Rng rng(seed);
  std::vector<Vec3> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pos.push_back({rng.uniform(0.0, side), rng.uniform(0.0, side),
                   rng.uniform(0.0, side)});
  return pos;
}

/// Every id in [0, n) appears exactly once, ascending within its bucket.
void expect_sorted_disjoint_cover(
    const std::vector<std::vector<std::uint32_t>>& parts, std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& p : parts) {
    EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
    for (const std::uint32_t id : p) {
      ASSERT_LT(id, n);
      ++seen[id];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(Sectors, ModeNamesAreStableTokens) {
  EXPECT_STREQ(sector_mode_name(SectorMode::kQuadrant), "quadrant");
  EXPECT_STREQ(sector_mode_name(SectorMode::kOctant), "octant");
}

TEST(Sectors, QuadrantAndOctantCounts) {
  const Aabb box = Aabb::cube(100.0);
  EXPECT_EQ(SectorGrid::quadrants(box).count(), 4u);
  EXPECT_EQ(SectorGrid::octants(box).count(), 8u);
  EXPECT_EQ(SectorGrid::for_mode(box, SectorMode::kQuadrant).count(), 4u);
  EXPECT_EQ(SectorGrid::for_mode(box, SectorMode::kOctant).count(), 8u);
}

TEST(Sectors, QuadrantsSplitAtTheCenterAndIgnoreZ) {
  const SectorGrid grid = SectorGrid::quadrants(Aabb::cube(100.0));
  // x varies fastest, then y; z never changes the index in quadrant mode.
  EXPECT_EQ(grid.sector_of({10, 10, 0}), 0u);
  EXPECT_EQ(grid.sector_of({90, 10, 99}), 1u);
  EXPECT_EQ(grid.sector_of({10, 90, 50}), 2u);
  EXPECT_EQ(grid.sector_of({90, 90, 1}), 3u);
}

TEST(Sectors, OctantsSplitAllThreeAxes) {
  const SectorGrid grid = SectorGrid::octants(Aabb::cube(100.0));
  EXPECT_EQ(grid.sector_of({10, 10, 10}), 0u);
  EXPECT_EQ(grid.sector_of({90, 10, 10}), 1u);
  EXPECT_EQ(grid.sector_of({10, 90, 10}), 2u);
  EXPECT_EQ(grid.sector_of({90, 90, 10}), 3u);
  EXPECT_EQ(grid.sector_of({10, 10, 90}), 4u);
  EXPECT_EQ(grid.sector_of({90, 90, 90}), 7u);
}

TEST(Sectors, EveryIndexStaysInRange) {
  const SectorGrid grid(Aabb::cube(50.0), 3, 4, 5);
  EXPECT_EQ(grid.count(), 60u);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    // Include points well outside the box: they clamp to boundary cells.
    const Vec3 p{rng.uniform(-100.0, 150.0), rng.uniform(-100.0, 150.0),
                 rng.uniform(-100.0, 150.0)};
    EXPECT_LT(grid.sector_of(p), grid.count());
  }
}

TEST(Sectors, PartitionIsASortedDisjointCover) {
  const auto pos = random_cloud(333, 1);
  for (const SectorMode mode : {SectorMode::kQuadrant, SectorMode::kOctant}) {
    const SectorGrid grid = SectorGrid::for_mode(bounding_box(pos), mode);
    const auto parts = sector_partition(pos, grid);
    ASSERT_EQ(parts.size(), grid.count());
    expect_sorted_disjoint_cover(parts, pos.size());
  }
}

TEST(Sectors, PartitionIsDeterministic) {
  const auto pos = random_cloud(200, 2);
  const SectorGrid grid(bounding_box(pos), 3, 3, 3);
  EXPECT_EQ(sector_partition(pos, grid), sector_partition(pos, grid));
}

TEST(Sectors, UniformCloudPopulatesEveryOctant) {
  const auto pos = random_cloud(400, 3);
  const auto parts =
      sector_partition(pos, SectorGrid::octants(bounding_box(pos)));
  for (const auto& p : parts) EXPECT_FALSE(p.empty());
}

TEST(Sectors, DegenerateBoxesCollapseToOneCellPerFlatAxis) {
  // Zero-extent box: everything lands in sector 0, whatever the counts.
  const SectorGrid flat(Aabb{{5, 5, 5}, {5, 5, 5}}, 4, 4, 4);
  EXPECT_EQ(flat.sector_of({5, 5, 5}), 0u);
  EXPECT_EQ(flat.sector_of({-10, 99, 3}), 0u);
  // A planar box (z flat) still sectors in xy.
  const SectorGrid plane(Aabb{{0, 0, 7}, {100, 100, 7}}, 2, 2, 2);
  EXPECT_EQ(plane.sector_of({10, 10, 7}), 0u);
  EXPECT_EQ(plane.sector_of({90, 90, 7}), 3u);
  // Inverted box (hi < lo): degenerate on every axis, never out of range.
  const SectorGrid inverted(Aabb{{10, 10, 10}, {0, 0, 0}}, 3, 3, 3);
  EXPECT_EQ(inverted.sector_of({5, 5, 5}), 0u);
}

TEST(Sectors, NonPositiveCountsClampToOne) {
  const SectorGrid grid(Aabb::cube(10.0), 0, -3, 2);
  EXPECT_EQ(grid.nx(), 1);
  EXPECT_EQ(grid.ny(), 1);
  EXPECT_EQ(grid.nz(), 2);
  EXPECT_EQ(grid.count(), 2u);
}

TEST(Sectors, BoundingBoxIsTight) {
  const auto pos = random_cloud(100, 4);
  const Aabb box = bounding_box(pos);
  for (const Vec3& p : pos) EXPECT_TRUE(box.contains(p));
  // Each face is touched by at least one point.
  bool lo_x = false, hi_x = false;
  for (const Vec3& p : pos) {
    lo_x |= p.x == box.lo.x;
    hi_x |= p.x == box.hi.x;
  }
  EXPECT_TRUE(lo_x);
  EXPECT_TRUE(hi_x);
  EXPECT_EQ(bounding_box({}), (Aabb{{0, 0, 0}, {0, 0, 0}}));
}

TEST(Sectors, EmptyCloudYieldsEmptyBuckets) {
  const auto parts =
      sector_partition({}, SectorGrid::octants(Aabb::cube(10.0)));
  ASSERT_EQ(parts.size(), 8u);
  for (const auto& p : parts) EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace qlec
