#include "geom/aabb.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(Aabb, CubeConstruction) {
  constexpr Aabb box = Aabb::cube(200.0);
  EXPECT_EQ(box.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(box.hi, (Vec3{200, 200, 200}));
  EXPECT_DOUBLE_EQ(box.volume(), 8e6);
  EXPECT_EQ(box.center(), (Vec3{100, 100, 100}));
}

TEST(Aabb, Contains) {
  constexpr Aabb box = Aabb::cube(10.0);
  EXPECT_TRUE(box.contains({5, 5, 5}));
  EXPECT_TRUE(box.contains({0, 0, 0}));     // inclusive lower
  EXPECT_TRUE(box.contains({10, 10, 10}));  // inclusive upper
  EXPECT_FALSE(box.contains({-0.1, 5, 5}));
  EXPECT_FALSE(box.contains({5, 10.1, 5}));
  EXPECT_FALSE(box.contains({5, 5, 11}));
}

TEST(Aabb, Clamp) {
  const Aabb box = Aabb::cube(10.0);
  EXPECT_EQ(box.clamp({-5, 5, 20}), (Vec3{0, 5, 10}));
  EXPECT_EQ(box.clamp({3, 3, 3}), (Vec3{3, 3, 3}));
}

TEST(Aabb, Expand) {
  Aabb box{{0, 0, 0}, {1, 1, 1}};
  box.expand({5, -2, 0.5});
  EXPECT_EQ(box.lo, (Vec3{0, -2, 0}));
  EXPECT_EQ(box.hi, (Vec3{5, 1, 1}));
  EXPECT_TRUE(box.contains({5, -2, 0.5}));
}

TEST(Aabb, ExtentAndVolume) {
  const Aabb box{{1, 2, 3}, {4, 6, 8}};
  EXPECT_EQ(box.extent(), (Vec3{3, 4, 5}));
  EXPECT_DOUBLE_EQ(box.volume(), 60.0);
}

}  // namespace
}  // namespace qlec
