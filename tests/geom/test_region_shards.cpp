// Properties of the spatial region partitioner behind the sharded round
// core: a disjoint cover, near-equal sizes, determinism, and sane handling
// of degenerate geometries. (Whether the partition can influence simulation
// output is covered end-to-end by tests/integration/test_shard_invariance.)
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geom/region_shards.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pos.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0),
                   rng.uniform(0.0, 100.0)});
  return pos;
}

/// Every id in [0, n) appears exactly once across all shards.
void expect_disjoint_cover(
    const std::vector<std::vector<std::uint32_t>>& parts, std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& p : parts)
    for (const std::uint32_t id : p) {
      ASSERT_LT(id, n);
      ++seen[id];
    }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(RegionShards, DisjointCoverAtManyShardCounts) {
  const auto pos = random_cloud(257, 1);
  for (const int s : {1, 2, 3, 7, 16, 64, 257, 400}) {
    const auto parts = region_partition(pos, s);
    ASSERT_EQ(parts.size(), static_cast<std::size_t>(s));
    expect_disjoint_cover(parts, pos.size());
  }
}

TEST(RegionShards, SizesAreBalancedWithinOne) {
  const auto pos = random_cloud(1000, 2);
  for (const int s : {2, 3, 7, 16}) {
    const auto parts = region_partition(pos, s);
    std::size_t lo = pos.size(), hi = 0;
    for (const auto& p : parts) {
      lo = std::min(lo, p.size());
      hi = std::max(hi, p.size());
    }
    EXPECT_LE(hi - lo, 1u) << "shards=" << s;
  }
}

TEST(RegionShards, DeterministicForIdenticalInput) {
  const auto pos = random_cloud(500, 3);
  EXPECT_EQ(region_partition(pos, 7), region_partition(pos, 7));
}

TEST(RegionShards, SingleShardHoldsEveryNodeInIdOrder) {
  const auto pos = random_cloud(25, 4);
  const auto parts = region_partition(pos, 1);
  ASSERT_EQ(parts.size(), 1u);
  ASSERT_EQ(parts[0].size(), pos.size());
  for (std::uint32_t i = 0; i < parts[0].size(); ++i)
    EXPECT_EQ(parts[0][i], i);
}

TEST(RegionShards, DegenerateGeometriesStillCover) {
  // All nodes coincident: zero extent on every axis.
  std::vector<Vec3> same(33, Vec3{5.0, 5.0, 5.0});
  expect_disjoint_cover(region_partition(same, 4), same.size());
  // A line: two axes degenerate.
  std::vector<Vec3> line;
  for (int i = 0; i < 50; ++i)
    line.push_back({static_cast<double>(i), 0.0, 0.0});
  expect_disjoint_cover(region_partition(line, 6), line.size());
  // Fewer nodes than shards: one node per shard, the rest empty.
  const auto tiny = random_cloud(3, 5);
  const auto parts = region_partition(tiny, 8);
  ASSERT_EQ(parts.size(), 8u);
  expect_disjoint_cover(parts, tiny.size());
  // Empty input, zero/negative shard counts.
  expect_disjoint_cover(region_partition({}, 4), 0);
  EXPECT_EQ(region_partition(random_cloud(5, 6), 0).size(), 1u);
  EXPECT_EQ(region_partition(random_cloud(5, 6), -3).size(), 1u);
}

TEST(RegionShards, ShardsAreSpatiallyCoherent) {
  // With clearly separated clusters and a matching shard count, nodes of
  // one cluster should land mostly in one shard: compare each shard's
  // bounding-box span against the full cloud's. z is held flat — each axis
  // is normalized by its own extent, so a planar deployment sweeps in xy.
  std::vector<Vec3> pos;
  Rng rng(7);
  for (const double cx : {0.0, 500.0})
    for (const double cy : {0.0, 500.0})
      for (int i = 0; i < 50; ++i)
        pos.push_back({cx + rng.uniform(0.0, 10.0),
                       cy + rng.uniform(0.0, 10.0), 0.0});
  const auto parts = region_partition(pos, 4);
  for (const auto& p : parts) {
    ASSERT_FALSE(p.empty());
    Vec3 lo = pos[p[0]], hi = pos[p[0]];
    for (const std::uint32_t id : p) {
      lo.x = std::min(lo.x, pos[id].x);
      lo.y = std::min(lo.y, pos[id].y);
      hi.x = std::max(hi.x, pos[id].x);
      hi.y = std::max(hi.y, pos[id].y);
    }
    // Each shard spans far less than the ~700-unit cloud diagonal.
    EXPECT_LT(hi.x - lo.x + (hi.y - lo.y), 600.0);
  }
}

}  // namespace
}  // namespace qlec
