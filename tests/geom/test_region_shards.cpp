// Properties of the spatial region partitioner behind the sharded round
// core: a disjoint cover, near-equal sizes, determinism, and sane handling
// of degenerate geometries. (Whether the partition can influence simulation
// output is covered end-to-end by tests/integration/test_shard_invariance.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geom/region_shards.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

/// The pre-refactor region_partition implementation (before it was rebuilt
/// on geom/sectors' SectorGrid), kept verbatim as the equivalence oracle:
/// the refactor must produce byte-identical shard assignments, since the
/// partition feeds the sharded round core whose digests are golden-pinned.
std::vector<std::vector<std::uint32_t>> region_partition_oracle(
    const std::vector<Vec3>& pos, int shards) {
  const std::size_t n = pos.size();
  const int s = std::max(1, shards);
  std::vector<std::vector<std::uint32_t>> parts(static_cast<std::size_t>(s));
  if (n == 0) return parts;
  if (s == 1 || n <= static_cast<std::size_t>(s)) {
    for (std::size_t i = 0; i < n; ++i)
      parts[i % static_cast<std::size_t>(s)].push_back(
          static_cast<std::uint32_t>(i));
    return parts;
  }
  Vec3 lo = pos[0], hi = pos[0];
  for (const Vec3& p : pos) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  const int cells = std::max(
      2, static_cast<int>(std::ceil(std::cbrt(8.0 * static_cast<double>(s)))));
  const auto axis_cell = [cells](double v, double lo_a, double hi_a) {
    const double ext = hi_a - lo_a;
    if (!(ext > 0.0)) return std::uint64_t{0};
    const double t = (v - lo_a) / ext * static_cast<double>(cells);
    const auto c = static_cast<long long>(t);
    return static_cast<std::uint64_t>(std::clamp<long long>(c, 0, cells - 1));
  };
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t cx = axis_cell(pos[i].x, lo.x, hi.x);
    const std::uint64_t cy = axis_cell(pos[i].y, lo.y, hi.y);
    const std::uint64_t cz = axis_cell(pos[i].z, lo.z, hi.z);
    const std::uint64_t cell =
        (cz * static_cast<std::uint64_t>(cells) + cy) *
            static_cast<std::uint64_t>(cells) +
        cx;
    keys[i] = (cell << 32) | static_cast<std::uint64_t>(i);
  }
  std::sort(keys.begin(), keys.end());
  const std::size_t base = n / static_cast<std::size_t>(s);
  const std::size_t extra = n % static_cast<std::size_t>(s);
  std::size_t at = 0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(s); ++k) {
    const std::size_t len = base + (k < extra ? 1 : 0);
    parts[k].reserve(len);
    for (std::size_t i = 0; i < len; ++i, ++at)
      parts[k].push_back(static_cast<std::uint32_t>(keys[at] & 0xFFFFFFFFu));
  }
  return parts;
}

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pos.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0),
                   rng.uniform(0.0, 100.0)});
  return pos;
}

/// Every id in [0, n) appears exactly once across all shards.
void expect_disjoint_cover(
    const std::vector<std::vector<std::uint32_t>>& parts, std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& p : parts)
    for (const std::uint32_t id : p) {
      ASSERT_LT(id, n);
      ++seen[id];
    }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(RegionShards, DisjointCoverAtManyShardCounts) {
  const auto pos = random_cloud(257, 1);
  for (const int s : {1, 2, 3, 7, 16, 64, 257, 400}) {
    const auto parts = region_partition(pos, s);
    ASSERT_EQ(parts.size(), static_cast<std::size_t>(s));
    expect_disjoint_cover(parts, pos.size());
  }
}

TEST(RegionShards, SizesAreBalancedWithinOne) {
  const auto pos = random_cloud(1000, 2);
  for (const int s : {2, 3, 7, 16}) {
    const auto parts = region_partition(pos, s);
    std::size_t lo = pos.size(), hi = 0;
    for (const auto& p : parts) {
      lo = std::min(lo, p.size());
      hi = std::max(hi, p.size());
    }
    EXPECT_LE(hi - lo, 1u) << "shards=" << s;
  }
}

TEST(RegionShards, DeterministicForIdenticalInput) {
  const auto pos = random_cloud(500, 3);
  EXPECT_EQ(region_partition(pos, 7), region_partition(pos, 7));
}

TEST(RegionShards, SingleShardHoldsEveryNodeInIdOrder) {
  const auto pos = random_cloud(25, 4);
  const auto parts = region_partition(pos, 1);
  ASSERT_EQ(parts.size(), 1u);
  ASSERT_EQ(parts[0].size(), pos.size());
  for (std::uint32_t i = 0; i < parts[0].size(); ++i)
    EXPECT_EQ(parts[0][i], i);
}

TEST(RegionShards, DegenerateGeometriesStillCover) {
  // All nodes coincident: zero extent on every axis.
  std::vector<Vec3> same(33, Vec3{5.0, 5.0, 5.0});
  expect_disjoint_cover(region_partition(same, 4), same.size());
  // A line: two axes degenerate.
  std::vector<Vec3> line;
  for (int i = 0; i < 50; ++i)
    line.push_back({static_cast<double>(i), 0.0, 0.0});
  expect_disjoint_cover(region_partition(line, 6), line.size());
  // Fewer nodes than shards: one node per shard, the rest empty.
  const auto tiny = random_cloud(3, 5);
  const auto parts = region_partition(tiny, 8);
  ASSERT_EQ(parts.size(), 8u);
  expect_disjoint_cover(parts, tiny.size());
  // Empty input, zero/negative shard counts.
  expect_disjoint_cover(region_partition({}, 4), 0);
  EXPECT_EQ(region_partition(random_cloud(5, 6), 0).size(), 1u);
  EXPECT_EQ(region_partition(random_cloud(5, 6), -3).size(), 1u);
}

TEST(RegionShards, RefactorOntoSectorsIsByteIdenticalToOracle) {
  for (const std::uint64_t seed : {10u, 11u, 12u}) {
    const auto pos = random_cloud(509, seed);
    for (const int s : {1, 2, 3, 7, 16, 64, 509, 600})
      EXPECT_EQ(region_partition(pos, s), region_partition_oracle(pos, s))
          << "seed=" << seed << " shards=" << s;
  }
  // Degenerate geometries go through the same oracle comparison.
  const std::vector<Vec3> same(33, Vec3{5.0, 5.0, 5.0});
  std::vector<Vec3> line;
  for (int i = 0; i < 50; ++i)
    line.push_back({static_cast<double>(i), 0.0, 0.0});
  for (const int s : {1, 2, 4, 6, 16}) {
    EXPECT_EQ(region_partition(same, s), region_partition_oracle(same, s));
    EXPECT_EQ(region_partition(line, s), region_partition_oracle(line, s));
  }
  EXPECT_EQ(region_partition({}, 4), region_partition_oracle({}, 4));
}

TEST(RegionShards, ShardsAreSpatiallyCoherent) {
  // With clearly separated clusters and a matching shard count, nodes of
  // one cluster should land mostly in one shard: compare each shard's
  // bounding-box span against the full cloud's. z is held flat — each axis
  // is normalized by its own extent, so a planar deployment sweeps in xy.
  std::vector<Vec3> pos;
  Rng rng(7);
  for (const double cx : {0.0, 500.0})
    for (const double cy : {0.0, 500.0})
      for (int i = 0; i < 50; ++i)
        pos.push_back({cx + rng.uniform(0.0, 10.0),
                       cy + rng.uniform(0.0, 10.0), 0.0});
  const auto parts = region_partition(pos, 4);
  for (const auto& p : parts) {
    ASSERT_FALSE(p.empty());
    Vec3 lo = pos[p[0]], hi = pos[p[0]];
    for (const std::uint32_t id : p) {
      lo.x = std::min(lo.x, pos[id].x);
      lo.y = std::min(lo.y, pos[id].y);
      hi.x = std::max(hi.x, pos[id].x);
      hi.y = std::max(hi.y, pos[id].y);
    }
    // Each shard spans far less than the ~700-unit cloud diagonal.
    EXPECT_LT(hi.x - lo.x + (hi.y - lo.y), 600.0);
  }
}

}  // namespace
}  // namespace qlec
