#include "rl/qtable.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qlec {
namespace {

TEST(QTable, InitialValue) {
  const QTable q(3, 4, 1.5);
  EXPECT_EQ(q.states(), 3u);
  EXPECT_EQ(q.actions(), 4u);
  for (std::size_t s = 0; s < 3; ++s)
    for (std::size_t a = 0; a < 4; ++a) EXPECT_DOUBLE_EQ(q.get(s, a), 1.5);
}

TEST(QTable, SetGetRoundTrip) {
  QTable q(2, 2);
  q.set(1, 0, -3.25);
  EXPECT_DOUBLE_EQ(q.get(1, 0), -3.25);
  EXPECT_DOUBLE_EQ(q.get(0, 0), 0.0);
}

TEST(QTable, OutOfRangeThrows) {
  QTable q(2, 2);
  EXPECT_THROW(q.get(2, 0), std::out_of_range);
  EXPECT_THROW(q.get(0, 2), std::out_of_range);
  EXPECT_THROW(q.set(5, 5, 1.0), std::out_of_range);
}

TEST(QTable, BlendMovesTowardTarget) {
  QTable q(1, 1);
  const double delta = q.blend(0, 0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(q.get(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(delta, 5.0);
  q.blend(0, 0, 10.0, 0.5);
  EXPECT_DOUBLE_EQ(q.get(0, 0), 7.5);
}

TEST(QTable, BlendWithAlphaOneJumpsToTarget) {
  QTable q(1, 1, 3.0);
  q.blend(0, 0, -2.0, 1.0);
  EXPECT_DOUBLE_EQ(q.get(0, 0), -2.0);
}

TEST(QTable, BlendReturnsAbsoluteDelta) {
  QTable q(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(q.blend(0, 0, 1.0, 0.5), 2.0);
}

TEST(QTable, BestActionAndMaxQ) {
  QTable q(1, 3);
  q.set(0, 0, 1.0);
  q.set(0, 1, 5.0);
  q.set(0, 2, 3.0);
  EXPECT_EQ(q.best_action(0), 1u);
  EXPECT_DOUBLE_EQ(q.max_q(0), 5.0);
}

TEST(QTable, BestActionTieBreaksLowestIndex) {
  QTable q(1, 3, 2.0);
  EXPECT_EQ(q.best_action(0), 0u);
}

TEST(QTable, NoActionsEdgeCases) {
  QTable q(2, 0);
  EXPECT_DOUBLE_EQ(q.max_q(0), 0.0);
  EXPECT_THROW(q.best_action(0), std::logic_error);
}

TEST(QTable, FillResets) {
  QTable q(2, 2, 1.0);
  q.set(0, 0, 9.0);
  q.fill(-1.0);
  for (std::size_t s = 0; s < 2; ++s)
    for (std::size_t a = 0; a < 2; ++a) EXPECT_DOUBLE_EQ(q.get(s, a), -1.0);
}

}  // namespace
}  // namespace qlec
