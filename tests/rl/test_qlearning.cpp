#include "rl/qlearning.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qlec {
namespace {

TEST(ExpectedQ, EmptyBranchesIsZero) {
  EXPECT_DOUBLE_EQ(expected_q({}, 0.9), 0.0);
}

TEST(ExpectedQ, SingleDeterministicBranch) {
  // Q = r + gamma * v.
  EXPECT_DOUBLE_EQ(expected_q({{1.0, 2.0, 10.0}}, 0.5), 2.0 + 5.0);
}

TEST(ExpectedQ, MixesBranchesByProbability) {
  const std::vector<Branch> b{{0.25, 4.0, 8.0}, {0.75, 0.0, 0.0}};
  // R = 0.25*4 = 1; V = 0.25*8 = 2; Q = 1 + 0.9*2.
  EXPECT_DOUBLE_EQ(expected_q(b, 0.9), 1.0 + 1.8);
}

TEST(TwoOutcomeTransition, MatchesPaperEq15Substitution) {
  const TwoOutcomeTransition t{
      .p_success = 0.8,
      .reward_success = 1.0,
      .reward_failure = -0.5,
      .v_success = 2.0,
      .v_failure = -1.0,
  };
  const double gamma = 0.95;
  const double rt = 0.8 * 1.0 + 0.2 * -0.5;
  const double expect = rt + gamma * (0.8 * 2.0 + 0.2 * -1.0);
  EXPECT_DOUBLE_EQ(t.q_value(gamma), expect);
}

TEST(TwoOutcomeTransition, CertainSuccessIgnoresFailureBranch) {
  const TwoOutcomeTransition t{
      .p_success = 1.0,
      .reward_success = 3.0,
      .reward_failure = -100.0,
      .v_success = 1.0,
      .v_failure = -100.0,
  };
  EXPECT_DOUBLE_EQ(t.q_value(0.5), 3.0 + 0.5);
}

TEST(TwoOutcomeTransition, EquivalentToGenericExpectedQ) {
  const TwoOutcomeTransition t{
      .p_success = 0.3,
      .reward_success = 0.7,
      .reward_failure = -0.2,
      .v_success = 1.5,
      .v_failure = 0.4,
  };
  const std::vector<Branch> branches{{0.3, 0.7, 1.5}, {0.7, -0.2, 0.4}};
  EXPECT_NEAR(t.q_value(0.9), expected_q(branches, 0.9), 1e-12);
}

TEST(TabularQLearner, GreedySelectionWhenEpsilonZero) {
  TabularQLearner learner(1, 3, {.gamma = 0.9, .alpha = 0.5, .epsilon = 0.0});
  learner.table().set(0, 2, 5.0);
  Rng rng(1);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(learner.select_action(0, rng), 2u);
}

TEST(TabularQLearner, EpsilonOneIsUniform) {
  TabularQLearner learner(1, 4, {.gamma = 0.9, .alpha = 0.5, .epsilon = 1.0});
  learner.table().set(0, 0, 100.0);
  Rng rng(2);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[learner.select_action(0, rng)];
  for (const int c : counts) EXPECT_GT(c, 700);
}

TEST(TabularQLearner, UpdateMovesTowardTarget) {
  TabularQLearner learner(2, 1, {.gamma = 0.5, .alpha = 1.0, .epsilon = 0.0});
  learner.table().set(1, 0, 4.0);
  // Target = r + gamma * max_a Q(s2) = 2 + 0.5*4 = 4.
  learner.update(0, 0, 2.0, 1, /*terminal=*/false);
  EXPECT_DOUBLE_EQ(learner.table().get(0, 0), 4.0);
}

TEST(TabularQLearner, TerminalIgnoresBootstrap) {
  TabularQLearner learner(2, 1, {.gamma = 0.9, .alpha = 1.0, .epsilon = 0.0});
  learner.table().set(1, 0, 1000.0);
  learner.update(0, 0, 7.0, 1, /*terminal=*/true);
  EXPECT_DOUBLE_EQ(learner.table().get(0, 0), 7.0);
}

// A 4-state deterministic chain 0 -> 1 -> 2 -> 3(goal). Actions: 0 =
// forward, 1 = stay. Reward 1 on entering the goal, 0 otherwise.
StepResult chain_step(std::size_t s, std::size_t a, Rng&) {
  if (a == 1) return {0.0, s, false};
  const std::size_t next = s + 1;
  if (next == 3) return {1.0, 3, true};
  return {0.0, next, false};
}

TEST(TrainEpisodes, LearnsOptimalChainPolicy) {
  TabularQLearner learner(4, 2,
                          {.gamma = 0.9, .alpha = 0.2, .epsilon = 0.2});
  Rng rng(7);
  const std::size_t updates =
      train_episodes(learner, chain_step, 0, 400, 50, rng);
  EXPECT_GT(updates, 400u);
  // Greedy policy should be "forward" everywhere before the goal.
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(learner.table().best_action(s), 0u) << "state " << s;
  // Q(0, fwd) should approximate gamma^2 * 1.
  EXPECT_NEAR(learner.table().get(0, 0), 0.81, 0.1);
}

TEST(TrainEpisodes, ValueOrderingReflectsDistanceToGoal) {
  TabularQLearner learner(4, 2,
                          {.gamma = 0.9, .alpha = 0.2, .epsilon = 0.3});
  Rng rng(9);
  train_episodes(learner, chain_step, 0, 500, 50, rng);
  EXPECT_GT(learner.table().max_q(2), learner.table().max_q(1));
  EXPECT_GT(learner.table().max_q(1), learner.table().max_q(0));
}

TEST(TrainEpisodes, ConvergenceTrackerEventuallyQuiet) {
  TabularQLearner learner(4, 2,
                          {.gamma = 0.9, .alpha = 0.5, .epsilon = 0.1});
  Rng rng(11);
  train_episodes(learner, chain_step, 0, 2000, 50, rng);
  // The deterministic chain drives deltas to ~0 once converged.
  EXPECT_TRUE(learner.convergence().converged());
}

// Parametric sweep over gamma: nearer-goal states always dominate and the
// start-state value scales like gamma^2.
class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, StartValueScalesWithDiscount) {
  const double gamma = GetParam();
  TabularQLearner learner(4, 2,
                          {.gamma = gamma, .alpha = 0.3, .epsilon = 0.3});
  Rng rng(13);
  train_episodes(learner, chain_step, 0, 800, 50, rng);
  EXPECT_NEAR(learner.table().get(0, 0), gamma * gamma, 0.15)
      << "gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

}  // namespace
}  // namespace qlec
