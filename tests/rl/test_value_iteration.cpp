#include "rl/value_iteration.hpp"

#include <gtest/gtest.h>

#include "rl/qlearning.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

// 4-state chain: 0 -> 1 -> 2 -> 3(goal). Action 0 = forward (reward 1 on
// reaching the goal), action 1 = stay (reward 0).
Mdp chain_mdp() {
  Mdp m = Mdp::make(4, 2);
  for (std::size_t s = 0; s < 3; ++s) {
    m.add_transition(s, 0, s + 1, 1.0, s + 1 == 3 ? 1.0 : 0.0);
    m.add_transition(s, 1, s, 1.0, 0.0);
  }
  m.terminal[3] = true;
  return m;
}

TEST(ValueIteration, SolvesChainExactly) {
  const ValueIterationResult r = value_iteration(chain_mdp(), 0.9);
  EXPECT_NEAR(r.v[2], 1.0, 1e-9);
  EXPECT_NEAR(r.v[1], 0.9, 1e-9);
  EXPECT_NEAR(r.v[0], 0.81, 1e-9);
  EXPECT_DOUBLE_EQ(r.v[3], 0.0);  // terminal pinned
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(r.policy[s], 0u);
  EXPECT_LT(r.residual, 1e-10);
}

TEST(ValueIteration, GammaZeroIsMyopic) {
  const ValueIterationResult r = value_iteration(chain_mdp(), 0.0);
  EXPECT_NEAR(r.v[2], 1.0, 1e-12);  // immediate reward only
  EXPECT_NEAR(r.v[1], 0.0, 1e-12);
  EXPECT_NEAR(r.v[0], 0.0, 1e-12);
}

TEST(ValueIteration, StochasticTransition) {
  // One state, one action: succeed (p=0.7, r=1, terminal) or stay
  // (p=0.3, r=-0.1). V = (0.7 - 0.03) / (1 - 0.3*gamma).
  Mdp m = Mdp::make(2, 1);
  m.add_transition(0, 0, 1, 0.7, 1.0);
  m.add_transition(0, 0, 0, 0.3, -0.1);
  m.terminal[1] = true;
  const double gamma = 0.95;
  const ValueIterationResult r = value_iteration(m, gamma);
  EXPECT_NEAR(r.v[0], (0.7 * 1.0 + 0.3 * -0.1) / (1.0 - 0.3 * gamma),
              1e-9);
}

TEST(ValueIteration, MatchesTwoOutcomeTransitionFixedPoint) {
  // The QLEC one-action MDP: forward to a head (success -> absorbing head
  // state with value v_h, failure -> self). Build it as an MDP where the
  // "head" state is terminal but carries its value through the reward.
  const double gamma = 0.95;
  const double p = 0.8, r_s = 0.4, r_f = -0.2, v_h = -1.0;
  Mdp m = Mdp::make(2, 1);
  // Fold gamma*v_h into the success reward since state 1 is terminal:
  m.add_transition(0, 0, 1, p, r_s + gamma * v_h);
  m.add_transition(0, 0, 0, 1.0 - p, r_f);
  m.terminal[1] = true;
  const ValueIterationResult exact = value_iteration(m, gamma);

  // Iterating the paper's Eq. 15 backup (TwoOutcomeTransition with
  // v_failure = the previous V) must converge to the same fixed point.
  double v = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const TwoOutcomeTransition t{p, r_s, r_f, v_h, v};
    v = t.q_value(gamma);
  }
  EXPECT_NEAR(v, exact.v[0], 1e-9);
}

TEST(ValueIteration, QFromValuesConsistentWithPolicy) {
  const Mdp m = chain_mdp();
  const ValueIterationResult r = value_iteration(m, 0.9);
  for (std::size_t s = 0; s < 3; ++s) {
    const double q_fwd = q_from_values(m, r.v, s, 0, 0.9);
    const double q_stay = q_from_values(m, r.v, s, 1, 0.9);
    EXPECT_GT(q_fwd, q_stay);
    EXPECT_NEAR(r.v[s], q_fwd, 1e-9);  // V = max_a Q
  }
}

TEST(ValueIteration, QLearnerConvergesToExactValues) {
  const Mdp m = chain_mdp();
  const ValueIterationResult exact = value_iteration(m, 0.9);

  TabularQLearner learner(4, 2,
                          {.gamma = 0.9, .alpha = 0.1, .epsilon = 0.3});
  Rng rng(11);
  const StepFn step = [&m](std::size_t s, std::size_t a,
                           Rng& r) -> StepResult {
    // Sample the MDP.
    const auto& branches = m.transitions[s][a];
    double u = r.uniform01();
    for (const MdpBranch& b : branches) {
      if (u < b.probability)
        return {b.reward, b.next_state, m.terminal[b.next_state]};
      u -= b.probability;
    }
    const MdpBranch& last = branches.back();
    return {last.reward, last.next_state, m.terminal[last.next_state]};
  };
  train_episodes(learner, step, 0, 3000, 50, rng);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_NEAR(learner.table().max_q(s), exact.v[s], 0.05) << s;
}

TEST(ValueIteration, UnreachableActionIgnored) {
  Mdp m = Mdp::make(2, 2);
  m.add_transition(0, 0, 1, 1.0, 2.0);
  // action 1 has no branches in state 0 (unavailable)
  m.terminal[1] = true;
  const ValueIterationResult r = value_iteration(m, 0.9);
  EXPECT_NEAR(r.v[0], 2.0, 1e-9);
  EXPECT_EQ(r.policy[0], 0u);
}

TEST(ValueIteration, IterationCapRespected) {
  const ValueIterationResult r =
      value_iteration(chain_mdp(), 0.999, 1e-15, 3);
  EXPECT_EQ(r.iterations, 3);
}

}  // namespace
}  // namespace qlec
