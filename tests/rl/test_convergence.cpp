#include "rl/convergence.hpp"

#include <gtest/gtest.h>

namespace qlec {
namespace {

TEST(ConvergenceTracker, NotConvergedInitially) {
  const ConvergenceTracker t(1e-3, 3);
  EXPECT_FALSE(t.converged());
  EXPECT_EQ(t.updates(), 0u);
}

TEST(ConvergenceTracker, RequiresPatienceConsecutiveQuietUpdates) {
  ConvergenceTracker t(1e-3, 3);
  EXPECT_FALSE(t.record(1e-5));
  EXPECT_FALSE(t.record(1e-5));
  EXPECT_TRUE(t.record(1e-5));
  EXPECT_TRUE(t.converged());
  EXPECT_EQ(t.updates_to_convergence(), 3u);
}

TEST(ConvergenceTracker, LoudUpdateResetsStreak) {
  ConvergenceTracker t(1e-3, 2);
  t.record(1e-5);
  t.record(1.0);  // streak broken
  t.record(1e-5);
  EXPECT_FALSE(t.converged());
  t.record(1e-5);
  EXPECT_TRUE(t.converged());
  EXPECT_EQ(t.updates_to_convergence(), 4u);
}

TEST(ConvergenceTracker, NegativeDeltasUseMagnitude) {
  ConvergenceTracker t(1e-3, 1);
  EXPECT_FALSE(t.record(-1.0));
  EXPECT_TRUE(t.record(-1e-9));
}

TEST(ConvergenceTracker, StaysConvergedAfterCriterionMet) {
  ConvergenceTracker t(1e-3, 1);
  t.record(1e-9);
  EXPECT_TRUE(t.converged());
  t.record(100.0);  // converged is latched (X is "updates to converge")
  EXPECT_TRUE(t.converged());
  EXPECT_EQ(t.updates_to_convergence(), 1u);
  EXPECT_EQ(t.updates(), 2u);
}

TEST(ConvergenceTracker, ZeroPatienceClampedToOne) {
  ConvergenceTracker t(1e-3, 0);
  EXPECT_TRUE(t.record(0.0));
}

TEST(ConvergenceTracker, ResetClearsState) {
  ConvergenceTracker t(1e-3, 1);
  t.record(0.0);
  EXPECT_TRUE(t.converged());
  t.reset();
  EXPECT_FALSE(t.converged());
  EXPECT_EQ(t.updates(), 0u);
}

TEST(ConvergenceTracker, UpdatesToConvergenceBeforeConverging) {
  ConvergenceTracker t(1e-3, 5);
  t.record(1.0);
  t.record(1.0);
  EXPECT_EQ(t.updates_to_convergence(), 2u);  // == updates() so far
}

}  // namespace
}  // namespace qlec
