// Figure/table reporting: turns aggregated sweep results into the row/series
// layout the paper's figures use, as both an ASCII table and CSV.
#pragma once

#include <string>
#include <vector>

#include "analysis/ascii_plot.hpp"
#include "sim/metrics.hpp"

namespace qlec {

/// One protocol's curve over a swept parameter (e.g. PDR vs lambda).
struct SweepSeries {
  std::string protocol;
  std::vector<double> x;      ///< swept parameter values
  std::vector<double> mean;
  std::vector<double> ci95;   ///< half-widths
};

/// Table with one row per (x, protocol): columns x, protocol, mean±ci.
std::string render_sweep_table(const std::string& x_name,
                               const std::string& metric_name,
                               const std::vector<SweepSeries>& series,
                               int precision = 3);

/// CSV equivalent: header `x,protocol,mean,ci95`.
std::string sweep_to_csv(const std::vector<SweepSeries>& series);

/// Chart of the same series.
std::string render_sweep_chart(const std::string& title,
                               const std::string& x_name,
                               const std::string& metric_name,
                               const std::vector<SweepSeries>& series);

/// Extracts one metric (by accessor) from aggregated results into a series
/// point; convenience for the figure benches.
struct MetricPoint {
  double mean = 0.0;
  double ci95 = 0.0;
};
MetricPoint metric_point(const RunningStats& stats);

}  // namespace qlec
