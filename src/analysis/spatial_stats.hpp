// Spatial statistics for the Fig. 4 analysis. The paper's claim is that
// nodes with high energy consumption "are evenly distributed in the
// network" — a statement about *spatial* structure, which a plain CV/Gini
// cannot test. Moran's I measures exactly that: +1 = hot nodes clump
// together, 0 = spatially random, negative = dispersed/checkerboard.
#pragma once

#include <vector>

#include "geom/vec3.hpp"

namespace qlec {

/// Moran's I with binary neighbourhood weights (w_ij = 1 when
/// 0 < d(i,j) <= radius):
///   I = (n / W) * sum_ij w_ij (x_i - xbar)(x_j - xbar)
///               / sum_i (x_i - xbar)^2.
/// Returns 0 for degenerate inputs (fewer than 2 points, zero variance,
/// or no neighbour pairs within the radius).
double morans_i(const std::vector<Vec3>& positions,
                const std::vector<double>& values, double radius);

/// Permutation significance: returns the fraction of `permutations`
/// random relabelings whose |I| meets or exceeds |I_observed| (a
/// two-sided pseudo p-value; small = the observed spatial structure is
/// unlikely under randomness). Deterministic given `seed`.
double morans_i_pvalue(const std::vector<Vec3>& positions,
                       const std::vector<double>& values, double radius,
                       int permutations, unsigned long long seed);

}  // namespace qlec
