#include "analysis/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/stats.hpp"

namespace qlec {
namespace {
constexpr const char* kShades = " .:-=+*#%@";  // index 0 unused for occupied
}

GridHeatmap::GridHeatmap(double x_lo, double x_hi, double y_lo, double y_hi,
                         std::size_t nx, std::size_t ny)
    : x_lo_(x_lo),
      x_hi_(x_hi > x_lo ? x_hi : x_lo + 1.0),
      y_lo_(y_lo),
      y_hi_(y_hi > y_lo ? y_hi : y_lo + 1.0),
      nx_(std::max<std::size_t>(nx, 1)),
      ny_(std::max<std::size_t>(ny, 1)),
      sum_(nx_ * ny_, 0.0),
      count_(nx_ * ny_, 0) {}

void GridHeatmap::add(double x, double y, double value) {
  const double fx = (x - x_lo_) / (x_hi_ - x_lo_);
  const double fy = (y - y_lo_) / (y_hi_ - y_lo_);
  const auto ix = static_cast<std::size_t>(std::clamp(
      fx * static_cast<double>(nx_), 0.0, static_cast<double>(nx_ - 1)));
  const auto iy = static_cast<std::size_t>(std::clamp(
      fy * static_cast<double>(ny_), 0.0, static_cast<double>(ny_ - 1)));
  sum_[idx(ix, iy)] += value;
  ++count_[idx(ix, iy)];
}

double GridHeatmap::cell_mean(std::size_t ix, std::size_t iy) const {
  const std::size_t c = count_.at(idx(ix, iy));
  if (c == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum_[idx(ix, iy)] / static_cast<double>(c);
}

std::size_t GridHeatmap::cell_count(std::size_t ix, std::size_t iy) const {
  return count_.at(idx(ix, iy));
}

std::string GridHeatmap::render() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t iy = 0; iy < ny_; ++iy) {
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const double m = cell_mean(ix, iy);
      if (std::isnan(m)) continue;
      lo = std::min(lo, m);
      hi = std::max(hi, m);
    }
  }
  std::ostringstream out;
  if (lo > hi) return "(empty heatmap)\n";
  const double span = hi > lo ? hi - lo : 1.0;
  const std::size_t shades = std::string(kShades).size();
  for (std::size_t row = 0; row < ny_; ++row) {
    const std::size_t iy = ny_ - 1 - row;  // highest y first
    out << "  |";
    for (std::size_t ix = 0; ix < nx_; ++ix) {
      const double m = cell_mean(ix, iy);
      if (std::isnan(m)) {
        out << ' ';
        continue;
      }
      auto level = static_cast<std::size_t>(
          (m - lo) / span * static_cast<double>(shades - 2));
      level = std::min(level, shades - 2);
      out << kShades[level + 1];
    }
    out << "|\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "  shading '%s': %.4g (low) -> %.4g (high)",
                kShades, lo, hi);
  out << buf << '\n';
  return out.str();
}

EvennessStats compute_evenness(const std::vector<double>& values) {
  EvennessStats s;
  if (values.empty()) return s;
  RunningStats rs;
  for (const double v : values) rs.add(v);
  s.mean = rs.mean();
  s.cv = rs.cv();
  s.gini = gini(values);
  s.p10 = percentile(values, 0.10);
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  return s;
}

}  // namespace qlec
