#include "analysis/spatial_stats.hpp"

#include <cmath>

#include "geom/spatial_grid.hpp"
#include "util/rng.hpp"

namespace qlec {
namespace {

struct MoranParts {
  double numerator = 0.0;  ///< sum_ij w_ij (xi - xbar)(xj - xbar)
  double w_total = 0.0;    ///< W
  double variance_sum = 0.0;
  std::size_t n = 0;
};

MoranParts moran_parts(const SpatialGrid& grid,
                       const std::vector<Vec3>& positions,
                       const std::vector<double>& values, double radius) {
  MoranParts parts;
  parts.n = values.size();
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());

  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double di = values[i] - mean;
    parts.variance_sum += di * di;
    for (const std::size_t j : grid.neighbours_of(i, radius)) {
      parts.numerator += di * (values[j] - mean);
      parts.w_total += 1.0;
    }
  }
  return parts;
}

}  // namespace

double morans_i(const std::vector<Vec3>& positions,
                const std::vector<double>& values, double radius) {
  if (positions.size() != values.size() || values.size() < 2 ||
      radius <= 0.0)
    return 0.0;
  const SpatialGrid grid(positions, radius);
  const MoranParts parts = moran_parts(grid, positions, values, radius);
  if (parts.w_total <= 0.0 || parts.variance_sum <= 0.0) return 0.0;
  return (static_cast<double>(parts.n) / parts.w_total) * parts.numerator /
         parts.variance_sum;
}

double morans_i_pvalue(const std::vector<Vec3>& positions,
                       const std::vector<double>& values, double radius,
                       int permutations, unsigned long long seed) {
  if (permutations <= 0) return 1.0;
  const double observed = std::fabs(morans_i(positions, values, radius));
  Rng rng(seed);
  std::vector<double> shuffled = values;
  int extreme = 0;
  for (int p = 0; p < permutations; ++p) {
    rng.shuffle(shuffled);
    if (std::fabs(morans_i(positions, shuffled, radius)) >= observed)
      ++extreme;
  }
  return static_cast<double>(extreme) / static_cast<double>(permutations);
}

}  // namespace qlec
