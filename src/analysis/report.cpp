#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace qlec {

std::string render_sweep_table(const std::string& x_name,
                               const std::string& metric_name,
                               const std::vector<SweepSeries>& series,
                               int precision) {
  TextTable table({x_name, "protocol", metric_name + " (mean +/- ci95)"});
  // Row-major by x so algorithms at the same operating point sit together.
  std::size_t max_len = 0;
  for (const SweepSeries& s : series) max_len = std::max(max_len, s.x.size());
  for (std::size_t i = 0; i < max_len; ++i) {
    for (const SweepSeries& s : series) {
      if (i >= s.x.size()) continue;
      table.add_row({fmt_double(s.x[i], 2), s.protocol,
                     fmt_pm(s.mean[i], s.ci95[i], precision)});
    }
  }
  return table.render();
}

std::string sweep_to_csv(const std::vector<SweepSeries>& series) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(CsvRow{"x", "protocol", "mean", "ci95"});
  for (const SweepSeries& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      w.write_row(CsvRow{fmt_sci(s.x[i], 6), s.protocol,
                         fmt_sci(s.mean[i], 6), fmt_sci(s.ci95[i], 6)});
    }
  }
  return out.str();
}

std::string render_sweep_chart(const std::string& title,
                               const std::string& x_name,
                               const std::string& metric_name,
                               const std::vector<SweepSeries>& series) {
  std::vector<Series> chart;
  chart.reserve(series.size());
  for (const SweepSeries& s : series)
    chart.push_back(Series{s.protocol, s.x, s.mean});
  ChartOptions opt;
  opt.title = title;
  opt.x_label = x_name;
  opt.y_label = metric_name;
  return render_chart(chart, opt);
}

MetricPoint metric_point(const RunningStats& stats) {
  return MetricPoint{stats.mean(), stats.ci95_halfwidth()};
}

}  // namespace qlec
