// 2-D spatial heat map (x/y projection) for the Fig. 4 energy-consumption
// map, plus the evenness statistics the figure argues for visually.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qlec {

class GridHeatmap {
 public:
  GridHeatmap(double x_lo, double x_hi, double y_lo, double y_hi,
              std::size_t nx, std::size_t ny);

  /// Accumulates one sample at (x, y); out-of-range samples clamp to the
  /// border cell.
  void add(double x, double y, double value);

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  /// Mean of samples in cell (ix, iy); NaN when the cell is empty.
  double cell_mean(std::size_t ix, std::size_t iy) const;
  std::size_t cell_count(std::size_t ix, std::size_t iy) const;

  /// Character rendering: cells shaded ' .:-=+*#%@' by mean value between
  /// the occupied-cell min and max; empty cells print ' '. One row per
  /// y-band, highest y first, with a legend line.
  std::string render() const;

 private:
  std::size_t idx(std::size_t ix, std::size_t iy) const {
    return iy * nx_ + ix;
  }

  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::size_t nx_, ny_;
  std::vector<double> sum_;
  std::vector<std::size_t> count_;
};

/// Evenness summary of a per-node metric (Fig. 4's "energy dissipated
/// evenly" claim, quantified).
struct EvennessStats {
  double mean = 0.0;
  double cv = 0.0;    ///< coefficient of variation
  double gini = 0.0;  ///< 0 = perfectly even
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};
EvennessStats compute_evenness(const std::vector<double>& values);

}  // namespace qlec
