// Terminal line charts so each figure bench can render the same series the
// paper plots, directly in its stdout.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace qlec {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  std::size_t width = 64;   ///< plot-area columns
  std::size_t height = 18;  ///< plot-area rows
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Force the y range; NaN entries auto-fit to the data.
  double y_min = std::numeric_limits<double>::quiet_NaN();
  double y_max = std::numeric_limits<double>::quiet_NaN();
};

/// Renders up to 6 series as an ASCII scatter/line chart with a legend.
/// Points in the same cell show the later series' marker.
std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opt = {});

}  // namespace qlec
