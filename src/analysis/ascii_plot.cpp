#include "analysis/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace qlec {
namespace {

constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi - lo; }
};

}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& opt) {
  Range xr, yr;
  for (const Series& s : series) {
    for (const double v : s.x) xr.include(v);
    for (const double v : s.y) yr.include(v);
  }
  if (!xr.valid() || !yr.valid()) return "(no data)\n";
  if (!std::isnan(opt.y_min)) yr.lo = opt.y_min;
  if (!std::isnan(opt.y_max)) yr.hi = opt.y_max;
  if (xr.span() <= 0.0) xr.hi = xr.lo + 1.0;
  if (yr.span() <= 0.0) yr.hi = yr.lo + 1.0;

  const std::size_t w = std::max<std::size_t>(opt.width, 8);
  const std::size_t h = std::max<std::size_t>(opt.height, 4);
  std::vector<std::string> grid(h, std::string(w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = kMarkers[si % (sizeof kMarkers)];
    const Series& s = series[si];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double fx = (s.x[i] - xr.lo) / xr.span();
      const double fy = (s.y[i] - yr.lo) / yr.span();
      if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) continue;
      const auto cx = static_cast<std::size_t>(
          std::min(fx * static_cast<double>(w - 1), static_cast<double>(w - 1)));
      const auto cy = static_cast<std::size_t>(
          std::min(fy * static_cast<double>(h - 1), static_cast<double>(h - 1)));
      grid[h - 1 - cy][cx] = mark;  // y grows upward
    }
  }

  std::ostringstream out;
  if (!opt.title.empty()) out << opt.title << '\n';
  char buf[64];
  for (std::size_t r = 0; r < h; ++r) {
    // y tick labels on first/middle/last rows.
    double ytick = std::numeric_limits<double>::quiet_NaN();
    if (r == 0) ytick = yr.hi;
    else if (r == h - 1) ytick = yr.lo;
    else if (r == h / 2) ytick = yr.lo + 0.5 * yr.span();
    if (!std::isnan(ytick)) {
      std::snprintf(buf, sizeof buf, "%10.3g |", ytick);
    } else {
      std::snprintf(buf, sizeof buf, "%10s |", "");
    }
    out << buf << grid[r] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(w, '-') << '\n';
  std::snprintf(buf, sizeof buf, "%10.3g", xr.lo);
  out << ' ' << buf;
  std::snprintf(buf, sizeof buf, "%.3g", xr.hi);
  const std::string hi_str = buf;
  const std::size_t pad =
      w + 1 > hi_str.size() + 11 ? w + 1 - hi_str.size() : 1;
  out << std::string(pad, ' ') << hi_str << '\n';
  if (!opt.x_label.empty() || !opt.y_label.empty()) {
    out << "   x: " << opt.x_label << "   y: " << opt.y_label << '\n';
  }
  out << "   legend:";
  for (std::size_t si = 0; si < series.size(); ++si)
    out << "  " << kMarkers[si % (sizeof kMarkers)] << " = "
        << series[si].label;
  out << '\n';
  return out.str();
}

}  // namespace qlec
