// Data packet moving from a sensor toward the base station.
#pragma once

#include <cstdint>

namespace qlec {

/// Sentinel node id for the base station (it has no battery and no index in
/// Network::nodes()).
inline constexpr int kBaseStationId = -1;

struct Packet {
  std::uint64_t id = 0;
  int src = 0;              ///< originating sensor node id
  double bits = 0.0;        ///< payload size
  std::int64_t gen_slot = 0;    ///< global slot of generation
  std::int64_t deliver_slot = -1;  ///< global slot of BS delivery (-1 = not yet)
  int hops = 0;             ///< transmissions taken so far

  bool delivered() const noexcept { return deliver_slot >= 0; }
  /// End-to-end latency in slots; only meaningful once delivered.
  std::int64_t latency() const noexcept { return deliver_slot - gen_slot; }
};

}  // namespace qlec
