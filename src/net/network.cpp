#include "net/network.hpp"

#include <stdexcept>

namespace qlec {

Network::Network(const std::vector<Vec3>& positions,
                 const std::vector<double>& initial_energy, const Vec3& bs,
                 const Aabb& domain)
    : bs_(bs), domain_(domain) {
  if (positions.size() != initial_energy.size())
    throw std::invalid_argument(
        "Network: positions/energies size mismatch");
  nodes_.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    nodes_.emplace_back(static_cast<int>(i), positions[i], initial_energy[i]);
}

Network::Network(const std::vector<Vec3>& positions, double initial_energy,
                 const Vec3& bs, const Aabb& domain)
    : Network(positions,
              std::vector<double>(positions.size(), initial_energy), bs,
              domain) {}

double Network::dist(int from, int to) const {
  const Vec3& a = node(from).pos;
  const Vec3& b = to == kBaseStationId ? bs_ : node(to).pos;
  return distance(a, b);
}

double Network::dist_to_bs(int id) const { return dist(id, kBaseStationId); }

std::vector<int> Network::alive_ids(double death_line) const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const SensorNode& n : nodes_)
    if (n.operational(death_line)) out.push_back(n.id);
  return out;
}

std::size_t Network::alive_count(double death_line) const {
  std::size_t c = 0;
  for (const SensorNode& n : nodes_)
    if (n.operational(death_line)) ++c;
  return c;
}

std::vector<int> Network::head_ids() const {
  std::vector<int> out;
  head_ids_into(out);
  return out;
}

void Network::head_ids_into(std::vector<int>& out) const {
  out.clear();
  for (const SensorNode& n : nodes_)
    if (n.is_head) out.push_back(n.id);
}

void Network::reset_heads() {
  for (SensorNode& n : nodes_) n.is_head = false;
}

double Network::total_initial_energy() const {
  double t = 0.0;
  for (const SensorNode& n : nodes_) t += n.battery.initial();
  return t;
}

double Network::total_residual_energy() const {
  double t = 0.0;
  for (const SensorNode& n : nodes_) t += n.battery.residual();
  return t;
}

double Network::mean_residual_alive(double death_line) const {
  double t = 0.0;
  std::size_t c = 0;
  for (const SensorNode& n : nodes_) {
    if (!n.operational(death_line)) continue;
    t += n.battery.residual();
    ++c;
  }
  return c ? t / static_cast<double>(c) : 0.0;
}

double Network::mean_dist_to_bs() const {
  if (nodes_.empty()) return 0.0;
  double t = 0.0;
  for (const SensorNode& n : nodes_) t += distance(n.pos, bs_);
  return t / static_cast<double>(nodes_.size());
}

std::vector<Vec3> Network::positions() const {
  std::vector<Vec3> out;
  out.reserve(nodes_.size());
  for (const SensorNode& n : nodes_) out.push_back(n.pos);
  return out;
}

}  // namespace qlec
