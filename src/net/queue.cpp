#include "net/queue.hpp"

namespace qlec {

bool PacketQueue::push(const Packet& p) {
  if (capacity_ != 0 && items_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  items_.push_back(p);
  return true;
}

std::optional<Packet> PacketQueue::pop() {
  if (items_.empty()) return std::nullopt;
  Packet p = items_.front();
  items_.pop_front();
  return p;
}

void PacketQueue::clear() noexcept {
  items_.clear();
  drops_ = 0;
}

}  // namespace qlec
