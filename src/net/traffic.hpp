// Poisson traffic generation. Section 5.2: "the packet generation time in
// the network follows the poisson distribution. lambda is the average packet
// inter-arrival time ... the smaller lambda is, the more congested the
// network is."
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace qlec {

/// Per-node Poisson process: exponential inter-arrival with mean
/// `mean_interarrival` slots. Arrivals are materialized slot by slot so the
/// simulator can interleave traffic with queue service.
class PoissonTraffic {
 public:
  /// `nodes` independent processes. `mean_interarrival <= 0` disables
  /// generation entirely.
  PoissonTraffic(std::size_t nodes, double mean_interarrival, Rng& rng);

  /// Node indices that generate a packet during global slot `slot`. A node
  /// can appear multiple times if several arrivals land in one slot.
  std::vector<std::size_t> arrivals_in_slot(std::int64_t slot, Rng& rng);

  /// Allocation-free variant: clears `out` and refills it with this slot's
  /// arrivals. Draw order (node id ascending, then arrival time) is
  /// identical to arrivals_in_slot, so mixing the two is seed-stable.
  void arrivals_into(std::int64_t slot, Rng& rng,
                     std::vector<std::size_t>& out);

  double mean_interarrival() const noexcept { return mean_; }

 private:
  double mean_;
  std::vector<double> next_arrival_;  // continuous time of next arrival
};

}  // namespace qlec
