// Link layer: distance-dependent delivery probability plus the ACK-driven
// success-rate estimator the paper uses for P^{a_j}_{b_i h_j} ("the link
// probability can be estimated by the ratio between the successfully
// transmitted packets and all the packets sent ... recently", following
// HyDRO/QELAR).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace qlec {

/// Ground-truth channel model: p(d) = max(p_floor, exp(-(d/d_ref)^2)).
/// A Gaussian-in-distance success curve is a standard smooth stand-in for
/// log-normal shadowing link quality; d_ref tunes the harshness (underwater
/// scenarios use a smaller d_ref).
struct LinkModel {
  double d_ref = 220.0;  ///< distance at which success drops to 1/e
  double p_floor = 0.02; ///< residual success probability at any range
  /// BS uplinks land on the sink's high-gain receiver; their probability is
  /// boosted as p' = 1 - (1-p)*bs_reliability_factor.
  double bs_reliability_factor = 0.25;

  double success_probability(double d) const noexcept;
  double bs_success_probability(double d) const noexcept;
  /// One Bernoulli transmission attempt over distance d.
  bool attempt(double d, Rng& rng) const noexcept;
  bool attempt_bs(double d, Rng& rng) const noexcept;

  friend bool operator==(const LinkModel&, const LinkModel&) = default;
};

/// Sliding-window per-link success estimator. Keyed by (from, to) node ids;
/// starts from an optimistic prior so unexplored links get tried (classic
/// optimism-in-the-face-of-uncertainty).
///
/// Storage is a flat per-source array of small contiguous entry lists
/// rather than one global hash map: estimate() sits on the innermost
/// Q-evaluation loop (one call per candidate head per packet), and a source
/// only ever observes a handful of distinct targets, so a linear scan of a
/// tiny cache-resident vector beats a hash lookup by a wide margin. Sources
/// with a negative id (never produced by the simulator) fall back to a side
/// map so the estimator stays total over all int pairs.
class LinkEstimator {
 public:
  /// `window` = number of most recent attempts remembered per link;
  /// `prior_successes`/`prior_attempts` form the Beta-style prior.
  explicit LinkEstimator(std::size_t window = 32, double prior_successes = 1.0,
                         double prior_attempts = 1.0) noexcept;

  /// Records the outcome of one transmission attempt from -> to.
  void record(int from, int to, bool success);

  /// Estimated success probability for from -> to (prior when unobserved).
  double estimate(int from, int to) const;

  /// Number of recorded attempts currently inside the window.
  std::size_t observations(int from, int to) const;

  void clear();

 private:
  struct Window {
    std::uint64_t bits = 0;   // most recent outcome in LSB
    std::size_t count = 0;    // valid bits (<= window size)
    std::size_t successes = 0;
  };
  struct Entry {
    int to = 0;
    Window w;
  };

  double window_estimate(const Window& w) const noexcept {
    return (static_cast<double>(w.successes) + prior_s_) /
           (static_cast<double>(w.count) + prior_n_);
  }
  void push_outcome(Window& w, bool success) noexcept;
  const Window* find(int from, int to) const noexcept;

  std::size_t window_;
  double prior_s_;
  double prior_n_;
  std::vector<std::vector<Entry>> by_src_;            // index == from (>= 0)
  std::unordered_map<std::uint64_t, Window> other_;   // from < 0 fallback
};

}  // namespace qlec
