// Deployment (de)serialization: save/load a Network as CSV so experiments
// can be replayed on the exact same topology across machines and versions.
// Schema (one header + one row per node, then one `bs` row):
//   kind,x,y,z,initial_j,residual_j
//   node,12.5,80.1,33.0,5,4.7
//   ...
//   bs,100,100,200,0,0
// The domain box is recomputed as the bounding box of all positions
// expanded to include the original domain corners (stored as two `domain`
// rows).
#pragma once

#include <optional>
#include <string>

#include "net/network.hpp"

namespace qlec {

/// Serializes positions, energies (initial AND residual, so mid-run state
/// round-trips), the BS, and the domain box.
std::string network_to_csv(const Network& net);

/// Parses a document produced by network_to_csv. Returns nullopt on a
/// malformed header, unknown row kind, or missing bs/domain rows.
std::optional<Network> network_from_csv(const std::string& text);

}  // namespace qlec
