#include "net/link.hpp"

#include <algorithm>
#include <cmath>

namespace qlec {

double LinkModel::success_probability(double d) const noexcept {
  if (d <= 0.0) return 1.0;
  const double ratio = d / (d_ref > 0.0 ? d_ref : 1.0);
  return std::max(p_floor, std::exp(-ratio * ratio));
}

double LinkModel::bs_success_probability(double d) const noexcept {
  const double p = success_probability(d);
  return 1.0 - (1.0 - p) * std::clamp(bs_reliability_factor, 0.0, 1.0);
}

bool LinkModel::attempt(double d, Rng& rng) const noexcept {
  return rng.bernoulli(success_probability(d));
}

bool LinkModel::attempt_bs(double d, Rng& rng) const noexcept {
  return rng.bernoulli(bs_success_probability(d));
}

LinkEstimator::LinkEstimator(std::size_t window, double prior_successes,
                             double prior_attempts) noexcept
    : window_(std::clamp<std::size_t>(window, 1, 64)),
      prior_s_(std::max(prior_successes, 0.0)),
      prior_n_(std::max(prior_attempts, 1e-9)) {}

std::uint64_t LinkEstimator::key(int from, int to) noexcept {
  // Shift ids so the BS sentinel (-1) maps cleanly.
  const auto f = static_cast<std::uint64_t>(static_cast<std::uint32_t>(from + 2));
  const auto t = static_cast<std::uint64_t>(static_cast<std::uint32_t>(to + 2));
  return (f << 32) | t;
}

void LinkEstimator::record(int from, int to, bool success) {
  Window& w = links_[key(from, to)];
  if (w.count == window_) {
    // Evict the oldest outcome (highest tracked bit).
    const std::uint64_t oldest = (w.bits >> (window_ - 1)) & 1ULL;
    w.successes -= static_cast<std::size_t>(oldest);
    w.bits &= ~(1ULL << (window_ - 1));
  } else {
    ++w.count;
  }
  w.bits = (w.bits << 1) | static_cast<std::uint64_t>(success ? 1 : 0);
  w.successes += static_cast<std::size_t>(success ? 1 : 0);
}

double LinkEstimator::estimate(int from, int to) const {
  const auto it = links_.find(key(from, to));
  if (it == links_.end()) return prior_s_ / prior_n_;
  const Window& w = it->second;
  return (static_cast<double>(w.successes) + prior_s_) /
         (static_cast<double>(w.count) + prior_n_);
}

std::size_t LinkEstimator::observations(int from, int to) const {
  const auto it = links_.find(key(from, to));
  return it == links_.end() ? 0 : it->second.count;
}

void LinkEstimator::clear() { links_.clear(); }

}  // namespace qlec
