#include "net/link.hpp"

#include <algorithm>
#include <cmath>

namespace qlec {

double LinkModel::success_probability(double d) const noexcept {
  if (d <= 0.0) return 1.0;
  const double ratio = d / (d_ref > 0.0 ? d_ref : 1.0);
  return std::max(p_floor, std::exp(-ratio * ratio));
}

double LinkModel::bs_success_probability(double d) const noexcept {
  const double p = success_probability(d);
  return 1.0 - (1.0 - p) * std::clamp(bs_reliability_factor, 0.0, 1.0);
}

bool LinkModel::attempt(double d, Rng& rng) const noexcept {
  return rng.bernoulli(success_probability(d));
}

bool LinkModel::attempt_bs(double d, Rng& rng) const noexcept {
  return rng.bernoulli(bs_success_probability(d));
}

LinkEstimator::LinkEstimator(std::size_t window, double prior_successes,
                             double prior_attempts) noexcept
    : window_(std::clamp<std::size_t>(window, 1, 64)),
      prior_s_(std::max(prior_successes, 0.0)),
      prior_n_(std::max(prior_attempts, 1e-9)) {}

namespace {

// Packs a (from, to) pair for the negative-id fallback map; ids are shifted
// so the BS sentinel (-1) maps cleanly.
std::uint64_t pair_key(int from, int to) noexcept {
  const auto f = static_cast<std::uint64_t>(static_cast<std::uint32_t>(from + 2));
  const auto t = static_cast<std::uint64_t>(static_cast<std::uint32_t>(to + 2));
  return (f << 32) | t;
}

}  // namespace

void LinkEstimator::push_outcome(Window& w, bool success) noexcept {
  if (w.count == window_) {
    // Evict the oldest outcome (highest tracked bit).
    const std::uint64_t oldest = (w.bits >> (window_ - 1)) & 1ULL;
    w.successes -= static_cast<std::size_t>(oldest);
    w.bits &= ~(1ULL << (window_ - 1));
  } else {
    ++w.count;
  }
  w.bits = (w.bits << 1) | static_cast<std::uint64_t>(success ? 1 : 0);
  w.successes += static_cast<std::size_t>(success ? 1 : 0);
}

const LinkEstimator::Window* LinkEstimator::find(int from,
                                                 int to) const noexcept {
  if (from < 0) {
    const auto it = other_.find(pair_key(from, to));
    return it == other_.end() ? nullptr : &it->second;
  }
  const auto src = static_cast<std::size_t>(from);
  if (src >= by_src_.size()) return nullptr;
  for (const Entry& e : by_src_[src])
    if (e.to == to) return &e.w;
  return nullptr;
}

void LinkEstimator::record(int from, int to, bool success) {
  if (from < 0) {
    push_outcome(other_[pair_key(from, to)], success);
    return;
  }
  const auto src = static_cast<std::size_t>(from);
  if (src >= by_src_.size()) by_src_.resize(src + 1);
  for (Entry& e : by_src_[src]) {
    if (e.to == to) {
      push_outcome(e.w, success);
      return;
    }
  }
  by_src_[src].push_back(Entry{to, Window{}});
  push_outcome(by_src_[src].back().w, success);
}

double LinkEstimator::estimate(int from, int to) const {
  const Window* w = find(from, to);
  return w == nullptr ? prior_s_ / prior_n_ : window_estimate(*w);
}

std::size_t LinkEstimator::observations(int from, int to) const {
  const Window* w = find(from, to);
  return w == nullptr ? 0 : w->count;
}

void LinkEstimator::clear() {
  by_src_.clear();
  other_.clear();
}

}  // namespace qlec
