#include "net/mobility.hpp"

namespace qlec {

MobilityModel::MobilityModel(MobilityConfig cfg, std::size_t nodes)
    : cfg_(cfg), waypoints_(nodes), has_waypoint_(nodes, false) {}

Vec3 MobilityModel::waypoint_for(const Aabb& box, Rng& rng) const {
  return {rng.uniform(box.lo.x, box.hi.x), rng.uniform(box.lo.y, box.hi.y),
          rng.uniform(box.lo.z, box.hi.z)};
}

void MobilityModel::step(Network& net, double death_line, Rng& rng) {
  if (cfg_.kind == MobilityKind::kNone) return;
  const Aabb& box = net.domain();
  for (SensorNode& n : net.nodes()) {
    if (!n.operational(death_line)) continue;
    const auto i = static_cast<std::size_t>(n.id);
    switch (cfg_.kind) {
      case MobilityKind::kNone:
        break;
      case MobilityKind::kRandomWalk: {
        const Vec3 step{rng.normal(0.0, cfg_.speed),
                        rng.normal(0.0, cfg_.speed),
                        rng.normal(0.0, cfg_.speed)};
        n.pos = box.clamp(n.pos + step);
        break;
      }
      case MobilityKind::kRandomWaypoint: {
        if (!has_waypoint_[i]) {
          waypoints_[i] = waypoint_for(box, rng);
          has_waypoint_[i] = true;
        }
        const Vec3 to_target = waypoints_[i] - n.pos;
        const double dist = to_target.norm();
        if (dist <= std::max(cfg_.speed, cfg_.arrival_tolerance)) {
          n.pos = waypoints_[i];
          has_waypoint_[i] = false;  // re-draw next round
        } else {
          n.pos = box.clamp(n.pos + to_target * (cfg_.speed / dist));
        }
        break;
      }
    }
  }
}

}  // namespace qlec
