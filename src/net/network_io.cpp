#include "net/network_io.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "util/csv.hpp"

namespace qlec {
namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool parse_num(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string network_to_csv(const Network& net) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(CsvRow{"kind", "x", "y", "z", "initial_j", "residual_j"});
  w.write_row(CsvRow{"domain", num(net.domain().lo.x),
                     num(net.domain().lo.y), num(net.domain().lo.z), "0",
                     "0"});
  w.write_row(CsvRow{"domain", num(net.domain().hi.x),
                     num(net.domain().hi.y), num(net.domain().hi.z), "0",
                     "0"});
  w.write_row(CsvRow{"bs", num(net.bs().x), num(net.bs().y),
                     num(net.bs().z), "0", "0"});
  for (const SensorNode& n : net.nodes()) {
    w.write_row(CsvRow{"node", num(n.pos.x), num(n.pos.y), num(n.pos.z),
                       num(n.battery.initial()),
                       num(n.battery.residual())});
  }
  return out.str();
}

std::optional<Network> network_from_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (rows.empty() || rows.front().size() < 6 ||
      rows.front()[0] != "kind")
    return std::nullopt;

  std::vector<Vec3> positions;
  std::vector<double> initial;
  std::vector<double> residual;
  std::vector<Vec3> domain_corners;
  std::optional<Vec3> bs;

  for (std::size_t i = 1; i < rows.size(); ++i) {
    const CsvRow& row = rows[i];
    if (row.size() < 6) return std::nullopt;
    double x, y, z, e0, e1;
    if (!parse_num(row[1], x) || !parse_num(row[2], y) ||
        !parse_num(row[3], z) || !parse_num(row[4], e0) ||
        !parse_num(row[5], e1))
      return std::nullopt;
    if (row[0] == "node") {
      positions.push_back({x, y, z});
      initial.push_back(e0);
      residual.push_back(e1);
    } else if (row[0] == "bs") {
      bs = Vec3{x, y, z};
    } else if (row[0] == "domain") {
      domain_corners.push_back({x, y, z});
    } else {
      return std::nullopt;
    }
  }
  if (!bs || domain_corners.size() != 2) return std::nullopt;

  Aabb box{domain_corners[0], domain_corners[0]};
  box.expand(domain_corners[1]);
  for (const Vec3& p : positions) box.expand(p);

  Network net(positions, initial, *bs, box);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double drained = initial[i] - residual[i];
    if (drained > 0.0)
      net.node(static_cast<int>(i)).battery.consume(drained);
  }
  return net;
}

}  // namespace qlec
