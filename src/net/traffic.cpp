#include "net/traffic.hpp"

namespace qlec {

PoissonTraffic::PoissonTraffic(std::size_t nodes, double mean_interarrival,
                               Rng& rng)
    : mean_(mean_interarrival) {
  next_arrival_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    next_arrival_.push_back(mean_ > 0.0 ? rng.exponential(mean_)
                                        : -1.0 /* never */);
  }
}

std::vector<std::size_t> PoissonTraffic::arrivals_in_slot(std::int64_t slot,
                                                          Rng& rng) {
  std::vector<std::size_t> out;
  arrivals_into(slot, rng, out);
  return out;
}

void PoissonTraffic::arrivals_into(std::int64_t slot, Rng& rng,
                                   std::vector<std::size_t>& out) {
  out.clear();
  if (mean_ <= 0.0) return;
  const double slot_end = static_cast<double>(slot) + 1.0;
  for (std::size_t i = 0; i < next_arrival_.size(); ++i) {
    while (next_arrival_[i] < slot_end) {
      out.push_back(i);
      next_arrival_[i] += rng.exponential(mean_);
    }
  }
}

}  // namespace qlec
