// Node mobility. Section 3.1 motivates round-based re-election with "the
// mobility of wireless sensor networks"; this module supplies the standard
// models so experiments can actually move the nodes: a Gaussian random walk
// and random-waypoint, both confined to the deployment box.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace qlec {

enum class MobilityKind {
  kNone,            ///< static deployment (the paper's §5.1 setting)
  kRandomWalk,      ///< isotropic Gaussian step each round, reflected
  kRandomWaypoint,  ///< move toward a waypoint at fixed speed, re-draw on
                    ///< arrival
};

struct MobilityConfig {
  MobilityKind kind = MobilityKind::kNone;
  /// Step scale in meters per round: random-walk sigma, or waypoint speed.
  double speed = 5.0;
  /// Waypoint arrival tolerance, meters.
  double arrival_tolerance = 1.0;

  friend bool operator==(const MobilityConfig&, const MobilityConfig&) =
      default;
};

/// Stateful mover; owns per-node waypoints. One instance per simulation.
class MobilityModel {
 public:
  MobilityModel(MobilityConfig cfg, std::size_t nodes);

  /// Advances every node by one round of motion. Dead nodes stay put
  /// (their hardware still exists; it just stops moving on duty cycles —
  /// and a drained actuator cannot move anyway).
  void step(Network& net, double death_line, Rng& rng);

  const MobilityConfig& config() const noexcept { return cfg_; }

 private:
  Vec3 waypoint_for(const Aabb& box, Rng& rng) const;

  MobilityConfig cfg_;
  std::vector<Vec3> waypoints_;
  std::vector<bool> has_waypoint_;
};

}  // namespace qlec
