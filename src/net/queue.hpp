// Bounded FIFO modelling a cluster head's packet cache. The paper attributes
// congestion loss to "limited storage caches of cluster heads" and "the long
// queue at cluster heads"; overflow here is exactly that loss.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "net/packet.hpp"

namespace qlec {

class PacketQueue {
 public:
  /// `capacity == 0` means unbounded.
  explicit PacketQueue(std::size_t capacity = 0) noexcept
      : capacity_(capacity) {}

  /// Enqueues; returns false (and counts a drop) when full.
  bool push(const Packet& p);

  /// Removes and returns the oldest packet, or nullopt when empty.
  std::optional<Packet> pop();

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Total packets rejected by push() since construction/clear.
  std::size_t drops() const noexcept { return drops_; }

  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::size_t drops_ = 0;
  std::deque<Packet> items_;
};

}  // namespace qlec
