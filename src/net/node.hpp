// Sensor node state shared by every protocol.
#pragma once

#include "energy/battery.hpp"
#include "geom/vec3.hpp"

namespace qlec {

/// Round value meaning "never elected head yet"; far enough in the past that
/// any rotating-epoch eligibility test passes.
inline constexpr int kNeverHead = -1'000'000;

struct SensorNode {
  int id = 0;
  Vec3 pos;
  Battery battery;
  bool is_head = false;
  /// Fault-layer liveness (sim/fault): false while the node is crashed or
  /// stunned by an injected fault. Orthogonal to battery state — a faulted
  /// node keeps its residual energy but cannot sense, transmit, receive,
  /// move, harvest, or be elected head. Always true when fault injection is
  /// disabled, so `operational()` degrades to `battery.alive()` exactly.
  bool up = true;
  /// Last round this node served as a cluster head (rotating-epoch rule).
  int last_head_round = kNeverHead;

  /// True when the node can participate in the network this instant:
  /// fault-up AND above the energy death line. Every eligibility check
  /// (election, routing targets, mobility, harvesting, idle drain) goes
  /// through this, so injected faults are visible to every protocol.
  bool operational(double death_line) const noexcept {
    return up && battery.alive(death_line);
  }

  SensorNode() = default;
  SensorNode(int node_id, const Vec3& position, double initial_energy)
      : id(node_id), pos(position), battery(initial_energy) {}
};

}  // namespace qlec
