// Sensor node state shared by every protocol.
#pragma once

#include "energy/battery.hpp"
#include "geom/vec3.hpp"

namespace qlec {

/// Round value meaning "never elected head yet"; far enough in the past that
/// any rotating-epoch eligibility test passes.
inline constexpr int kNeverHead = -1'000'000;

struct SensorNode {
  int id = 0;
  Vec3 pos;
  Battery battery;
  bool is_head = false;
  /// Last round this node served as a cluster head (rotating-epoch rule).
  int last_head_round = kNeverHead;

  SensorNode() = default;
  SensorNode(int node_id, const Vec3& position, double initial_energy)
      : id(node_id), pos(position), battery(initial_energy) {}
};

}  // namespace qlec
