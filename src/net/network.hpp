// The wireless sensor network: N nodes in a 3-D deployment box plus one
// base station (sink). Owns node state; protocols and the simulator mutate
// it through this interface.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"

namespace qlec {

class Network {
 public:
  Network() = default;
  /// Builds nodes at `positions` with per-node initial energies (scalar
  /// overload gives every node the same budget).
  Network(const std::vector<Vec3>& positions,
          const std::vector<double>& initial_energy, const Vec3& bs,
          const Aabb& domain);
  Network(const std::vector<Vec3>& positions, double initial_energy,
          const Vec3& bs, const Aabb& domain);

  std::size_t size() const noexcept { return nodes_.size(); }
  const Aabb& domain() const noexcept { return domain_; }
  const Vec3& bs() const noexcept { return bs_; }
  /// Moves the sink (BsTrajectory advances it at round boundaries). Every
  /// BS-distance consumer reads through bs()/dist_to_bs per round — the
  /// QlecRouter y-memo is round-token-invalidated — so a moved sink is
  /// visible immediately and nothing caches the old position.
  void set_bs(const Vec3& bs) noexcept { bs_ = bs; }

  SensorNode& node(int id) { return nodes_.at(static_cast<std::size_t>(id)); }
  const SensorNode& node(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }
  std::vector<SensorNode>& nodes() noexcept { return nodes_; }
  const std::vector<SensorNode>& nodes() const noexcept { return nodes_; }

  /// Distance helpers; `to == kBaseStationId` measures to the sink.
  double dist(int from, int to) const;
  double dist_to_bs(int id) const;

  /// Node ids with residual energy above `death_line`.
  std::vector<int> alive_ids(double death_line) const;
  std::size_t alive_count(double death_line) const;
  /// Ids currently flagged as cluster heads.
  std::vector<int> head_ids() const;
  /// Allocation-free variant: clears `out` and refills it with the current
  /// head ids (for per-round buffers reused across rounds).
  void head_ids_into(std::vector<int>& out) const;
  /// Clears every is_head flag (start of an election round).
  void reset_heads();

  double total_initial_energy() const;
  double total_residual_energy() const;
  /// Mean residual among nodes above `death_line` (0 when none).
  double mean_residual_alive(double death_line) const;
  /// Mean node -> BS distance, the d_toBS approximation from [1].
  double mean_dist_to_bs() const;

  /// Position snapshot (index == node id), for clustering substrates.
  std::vector<Vec3> positions() const;

 private:
  std::vector<SensorNode> nodes_;
  Vec3 bs_;
  Aabb domain_;
};

}  // namespace qlec
