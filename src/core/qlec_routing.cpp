#include "core/qlec_routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qlec {

QlecRouter::QlecRouter(QlecParams params, RadioModel radio,
                       std::size_t n_nodes)
    : params_(params), radio_(radio), v_(n_nodes, 0.0) {}

void QlecRouter::begin_round(std::vector<int> heads) {
  heads_ = std::move(heads);
  max_v_delta_ = 0.0;
}

double QlecRouter::x_of(const Network& net, int node_or_bs) const {
  if (node_or_bs == kBaseStationId) return params_.x_bs;
  const SensorNode& n = net.node(node_or_bs);
  const double scale = params_.x_scale > 0.0 ? params_.x_scale
                                             : n.battery.initial();
  return scale > 0.0 ? n.battery.residual() / scale : 0.0;
}

double QlecRouter::y_of(const Network& net, int src, int target,
                        double bits) const {
  const double d = net.dist(src, target);
  const double raw = radio_.amp_energy(bits, d);
  double scale;
  if (target == kBaseStationId) {
    scale = params_.y_scale_bs > 0.0
                ? bits * params_.y_scale_bs
                : radio_.amp_energy(bits, radio_.d0());
  } else {
    scale = params_.y_scale > 0.0 ? params_.y_scale
                                  : radio_.amp_energy(bits, radio_.d0());
  }
  return scale > 0.0 ? raw / scale : raw;
}

double QlecRouter::reward_success(const Network& net, int src, int target,
                                  double bits) const {
  // Eq. 17 for a head target, Eq. 19 (extra -l penalty) for the BS.
  const double base = -params_.g +
                      params_.alpha1 * (x_of(net, src) + x_of(net, target)) -
                      params_.alpha2 * y_of(net, src, target, bits);
  return target == kBaseStationId ? base - params_.l : base;
}

double QlecRouter::reward_failure(const Network& net, int src, int target,
                                  double bits) const {
  // Eq. 20: transmission attempted but not acknowledged.
  return -params_.g + params_.beta1 * x_of(net, src) -
         params_.beta2 * y_of(net, src, target, bits);
}

double& QlecRouter::v_slot(int node_or_bs) {
  if (node_or_bs == kBaseStationId) return v_bs_;
  return v_.at(static_cast<std::size_t>(node_or_bs));
}

double QlecRouter::v(int node_or_bs) const {
  if (node_or_bs == kBaseStationId) return v_bs_;
  return v_.at(static_cast<std::size_t>(node_or_bs));
}

double QlecRouter::q_value(const Network& net, int src, int target,
                           double bits) const {
  const TwoOutcomeTransition t{
      .p_success = estimator_.estimate(src, target),
      .reward_success = reward_success(net, src, target, bits),
      .reward_failure = reward_failure(net, src, target, bits),
      .v_success = v(target),
      .v_failure = v(src),
  };
  return t.q_value(params_.gamma);
}

int QlecRouter::choose_target(const Network& net, int src, double bits,
                              Rng& rng) {
  // Action set A(b_i): every current head except itself, plus the BS.
  int best = kBaseStationId;
  double best_q = -std::numeric_limits<double>::infinity();
  std::vector<int> actions;
  actions.reserve(heads_.size() + 1);
  for (const int h : heads_)
    if (h != src) actions.push_back(h);
  actions.push_back(kBaseStationId);

  for (const int a : actions) {
    const double q = q_value(net, src, a, bits);
    ++q_evals_;
    if (q > best_q) {
      best_q = q;
      best = a;
    }
  }

  // Algorithm 4 line 2: V*(b_i) <- max_a Q*(b_i, a).
  double& v_src = v_slot(src);
  max_v_delta_ = std::max(max_v_delta_, std::fabs(best_q - v_src));
  v_src = best_q;

  if (params_.epsilon > 0.0 && rng.bernoulli(params_.epsilon))
    return actions[rng.uniform_int(actions.size())];
  return best;
}

void QlecRouter::record_outcome(int from, int to, bool success) {
  estimator_.record(from, to, success);
}

void QlecRouter::update_head_value(const Network& net, int head,
                                   double bits) {
  // Algorithm 1 line 15: V*(h_j) = Q*(h_j, a_BS)
  //   = R_t + gamma (P V*(h_BS) + (1-P) V*(h_j)).
  // The head's uplink carries no direct-to-BS penalty — uplinking the fused
  // data IS its job (Eq. 19's l penalizes members bypassing the hierarchy).
  const double p = estimator_.estimate(head, kBaseStationId);
  const double r_s = -params_.g +
                     params_.alpha1 * (x_of(net, head) + params_.x_bs) -
                     params_.alpha2 * y_of(net, head, kBaseStationId, bits);
  const double r_f = reward_failure(net, head, kBaseStationId, bits);
  const double rt = p * r_s + (1.0 - p) * r_f;
  double& v_head = v_slot(head);
  const double next =
      rt + params_.gamma * (p * v_bs_ + (1.0 - p) * v_head);
  max_v_delta_ = std::max(max_v_delta_, std::fabs(next - v_head));
  v_head = next;
  ++q_evals_;
}

}  // namespace qlec
