#include "core/qlec_routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/exec.hpp"
#include "util/simd.hpp"

namespace qlec {

QlecRouter::QlecRouter(QlecParams params, RadioModel radio,
                       std::size_t n_nodes)
    : params_(params),
      radio_(radio),
      v_(n_nodes, 0.0),
      slot_of_(n_nodes, -1) {}

void QlecRouter::begin_round(std::vector<int> heads) {
  // Retire the outgoing round's action slots before installing the new set.
  for (const int h : heads_)
    if (h >= 0 && static_cast<std::size_t>(h) < slot_of_.size())
      slot_of_[static_cast<std::size_t>(h)] = -1;
  heads_ = std::move(heads);
  max_v_delta_ = 0.0;

  ++round_serial_;
  const std::size_t want_stride = heads_.size() + 1;  // + the BS action
  if (want_stride > stride_) {
    stride_ = want_stride;
    y_val_.assign(v_.size() * stride_, 0.0);
    y_token_.assign(v_.size() * stride_, 0);
    // Every row needs a token no surviving entry can match.
    row_token_.assign(v_.size(), 0);
    row_round_.assign(v_.size(), 0);
    row_bits_.assign(v_.size(), 0.0);
  }
  for (std::size_t i = 0; i < heads_.size(); ++i) {
    const int h = heads_[i];
    if (h >= 0 && static_cast<std::size_t>(h) < slot_of_.size())
      slot_of_[static_cast<std::size_t>(h)] = static_cast<std::int32_t>(i);
  }
}

double QlecRouter::y_cached(const Network& net, int src, int target,
                            double bits) {
  const std::size_t s = static_cast<std::size_t>(src);
  if (src < 0 || s >= v_.size() || stride_ == 0)
    return y_of(net, src, target, bits);
  std::int32_t slot;
  if (target == kBaseStationId) {
    slot = static_cast<std::int32_t>(heads_.size());
  } else if (target >= 0 && static_cast<std::size_t>(target) < slot_of_.size()) {
    slot = slot_of_[static_cast<std::size_t>(target)];
  } else {
    slot = -1;
  }
  if (slot < 0) return y_of(net, src, target, bits);

  if (row_round_[s] != round_serial_ || row_bits_[s] != bits) {
    row_round_[s] = round_serial_;
    row_bits_[s] = bits;
    if (++token_counter_ == 0) {  // u32 wrap: no stale entry may match
      std::fill(y_token_.begin(), y_token_.end(), 0u);
      token_counter_ = 1;
    }
    row_token_[s] = token_counter_;
  }
  const std::size_t idx = s * stride_ + static_cast<std::size_t>(slot);
  if (y_token_[idx] != row_token_[s]) {
    y_val_[idx] = y_of(net, src, target, bits);
    y_token_[idx] = row_token_[s];
  }
  return y_val_[idx];
}

double QlecRouter::x_of(const Network& net, int node_or_bs) const {
  if (node_or_bs == kBaseStationId) return params_.x_bs;
  const SensorNode& n = net.node(node_or_bs);
  const double scale = params_.x_scale > 0.0 ? params_.x_scale
                                             : n.battery.initial();
  return scale > 0.0 ? n.battery.residual() / scale : 0.0;
}

double QlecRouter::y_of(const Network& net, int src, int target,
                        double bits) const {
  const double d = net.dist(src, target);
  const double raw = radio_.amp_energy(bits, d);
  double scale;
  if (target == kBaseStationId) {
    scale = params_.y_scale_bs > 0.0
                ? bits * params_.y_scale_bs
                : radio_.amp_energy(bits, radio_.d0());
  } else {
    scale = params_.y_scale > 0.0 ? params_.y_scale
                                  : radio_.amp_energy(bits, radio_.d0());
  }
  return scale > 0.0 ? raw / scale : raw;
}

double QlecRouter::reward_success(const Network& net, int src, int target,
                                  double bits) const {
  // Eq. 17 for a head target, Eq. 19 (extra -l penalty) for the BS.
  const double base = -params_.g +
                      params_.alpha1 * (x_of(net, src) + x_of(net, target)) -
                      params_.alpha2 * y_of(net, src, target, bits);
  return target == kBaseStationId ? base - params_.l : base;
}

double QlecRouter::reward_failure(const Network& net, int src, int target,
                                  double bits) const {
  // Eq. 20: transmission attempted but not acknowledged.
  return -params_.g + params_.beta1 * x_of(net, src) -
         params_.beta2 * y_of(net, src, target, bits);
}

double& QlecRouter::v_slot(int node_or_bs) {
  if (node_or_bs == kBaseStationId) return v_bs_;
  return v_.at(static_cast<std::size_t>(node_or_bs));
}

double QlecRouter::v(int node_or_bs) const {
  if (node_or_bs == kBaseStationId) return v_bs_;
  return v_.at(static_cast<std::size_t>(node_or_bs));
}

double QlecRouter::q_value(const Network& net, int src, int target,
                           double bits) const {
  const TwoOutcomeTransition t{
      .p_success = estimator_.estimate(src, target),
      .reward_success = reward_success(net, src, target, bits),
      .reward_failure = reward_failure(net, src, target, bits),
      .v_success = v(target),
      .v_failure = v(src),
  };
  return t.q_value(params_.gamma);
}

int QlecRouter::choose_target(const Network& net, int src, double bits,
                              Rng& rng) {
  // Action set A(b_i): every current head except itself, plus the BS.
  int best = kBaseStationId;
  double best_q = -std::numeric_limits<double>::infinity();
  actions_.clear();
  for (const int h : heads_)
    if (h != src) actions_.push_back(h);
  actions_.push_back(kBaseStationId);

  // Inner Q loop, with the per-action-invariant terms hoisted and y served
  // from the per-round memo. Every arithmetic expression below matches
  // q_value()/reward_success()/reward_failure() operation for operation, so
  // the result is bit-identical to calling q_value() per action.
  const double x_src = x_of(net, src);
  const double v_src_now = v(src);
  const std::size_t kh = actions_.size() - 1;  // head actions; BS is last
  constexpr std::size_t kSimdThreshold = 8;
  if (kh >= kSimdThreshold) {
    // SoA gather in actions_ order (y_cached mutates the memo in the same
    // order as the scalar loop), one q_scan + argmax over the head actions,
    // then the BS action scalar — the exact inline expressions of the else
    // branch, so best/best_q land bit-identically (the simd oracle suite
    // pins q_scan and the first-strict-max argmax to scalar semantics).
    qs_p_.resize(kh);
    qs_y_.resize(kh);
    qs_x_.resize(kh);
    qs_v_.resize(kh);
    qs_q_.resize(kh);
    for (std::size_t i = 0; i < kh; ++i) {
      const int a = actions_[i];
      qs_y_[i] = y_cached(net, src, a, bits);
      qs_p_[i] = estimator_.estimate(src, a);
      qs_x_[i] = x_of(net, a);
      qs_v_[i] = v(a);
    }
    const simd::QScanConsts c{.x_src = x_src,
                              .v_src = v_src_now,
                              .g = params_.g,
                              .alpha1 = params_.alpha1,
                              .alpha2 = params_.alpha2,
                              .beta1 = params_.beta1,
                              .beta2 = params_.beta2,
                              .gamma = params_.gamma};
    const simd::Kernels& kr = simd::kernels();
    kr.q_scan(qs_p_.data(), qs_y_.data(), qs_x_.data(), qs_v_.data(), kh, c,
              qs_q_.data());
    const std::size_t am = kr.argmax(qs_q_.data(), kh);
    if (am != simd::npos) {
      best_q = qs_q_[am];
      best = actions_[am];
    }
    {  // the BS action, exactly as the scalar loop's last iteration
      const double y = y_cached(net, src, kBaseStationId, bits);
      double r_s = -params_.g +
                   params_.alpha1 * (x_src + x_of(net, kBaseStationId)) -
                   params_.alpha2 * y;
      r_s -= params_.l;  // Eq. 19's direct-BS penalty
      const double r_f =
          -params_.g + params_.beta1 * x_src - params_.beta2 * y;
      const TwoOutcomeTransition t{
          .p_success = estimator_.estimate(src, kBaseStationId),
          .reward_success = r_s,
          .reward_failure = r_f,
          .v_success = v(kBaseStationId),
          .v_failure = v_src_now,
      };
      const double q = t.q_value(params_.gamma);
      if (q > best_q) {
        best_q = q;
        best = kBaseStationId;
      }
    }
    q_evals_ += actions_.size();
  } else {
    for (const int a : actions_) {
      const double y = y_cached(net, src, a, bits);
      double r_s = -params_.g + params_.alpha1 * (x_src + x_of(net, a)) -
                   params_.alpha2 * y;
      if (a == kBaseStationId) r_s -= params_.l;  // Eq. 19's direct-BS penalty
      const double r_f =
          -params_.g + params_.beta1 * x_src - params_.beta2 * y;
      const TwoOutcomeTransition t{
          .p_success = estimator_.estimate(src, a),
          .reward_success = r_s,
          .reward_failure = r_f,
          .v_success = v(a),
          .v_failure = v_src_now,
      };
      const double q = t.q_value(params_.gamma);
      ++q_evals_;
      if (q > best_q) {
        best_q = q;
        best = a;
      }
    }
  }

  // Algorithm 4 line 2: V*(b_i) <- max_a Q*(b_i, a).
  double& v_src = v_slot(src);
  max_v_delta_ = std::max(max_v_delta_, std::fabs(best_q - v_src));
  v_src = best_q;

  if (params_.epsilon > 0.0 && rng.bernoulli(params_.epsilon))
    return actions_[rng.uniform_int(actions_.size())];
  return best;
}

void QlecRouter::prefill_rows(const Network& net, double bits,
                              ExecContext* exec, double death_line) {
  if (stride_ == 0 || heads_.empty() || v_.empty()) return;
  const std::size_t k = heads_.size();
  if (k + 1 > stride_) return;  // begin_round() guarantees otherwise

  // Head-position SoA, slot-ordered to match the memo's row layout.
  hx_.resize(k);
  hy_.resize(k);
  hz_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Vec3& p = net.node(heads_[i]).pos;
    hx_[i] = p.x;
    hy_[i] = p.y;
    hz_[i] = p.z;
  }
  // The head-target normalizer of y_of, lane-invariant across slots.
  const double scale_head = params_.y_scale > 0.0
                                ? params_.y_scale
                                : radio_.amp_energy(bits, radio_.d0());

  const std::size_t n = std::min<std::size_t>(v_.size(), net.size());
  const auto is_member = [&](std::uint32_t id) {
    const SensorNode& node = net.node(static_cast<int>(id));
    return node.operational(death_line) && !node.is_head;
  };

  // Serial token pass in id order: exactly the row-refresh bookkeeping that
  // y_cached performs on a row's first touch with these (round, bits) —
  // token_counter_ is shared state, so it never fans out. Token values may
  // differ from what a lazy first-route order would have assigned, but
  // tokens are pure cache metadata; the y values below are what the digest
  // can observe, and those are bit-identical to y_of.
  for (std::uint32_t id = 0; id < static_cast<std::uint32_t>(n); ++id) {
    if (!is_member(id)) continue;
    if (row_round_[id] != round_serial_ || row_bits_[id] != bits) {
      row_round_[id] = round_serial_;
      row_bits_[id] = bits;
      if (++token_counter_ == 0) {  // u32 wrap: no stale entry may match
        std::fill(y_token_.begin(), y_token_.end(), 0u);
        token_counter_ = 1;
      }
      row_token_[id] = token_counter_;
    }
  }

  // Parallel fill: each member's row is written only by its own shard
  // (disjoint rows), through the SIMD distance -> Eq. 18 -> normalize
  // chain, each kernel bit-identical to the scalar y_of pipeline.
  const RadioParams& rp = radio_.params();
  const double d0 = radio_.d0();
  const simd::Kernels& kr = simd::kernels();
  const auto fill_node = [&](std::uint32_t id, double* dbuf, double* ebuf) {
    const Vec3& p = net.node(static_cast<int>(id)).pos;
    kr.dist_to_point(hx_.data(), hy_.data(), hz_.data(), k, p.x, p.y, p.z,
                     dbuf);
    kr.amp_energy(dbuf, k, bits, rp.eps_fs, rp.eps_mp, d0, ebuf);
    double* row = y_val_.data() + static_cast<std::size_t>(id) * stride_;
    if (scale_head > 0.0) {
      kr.scale_div(ebuf, k, scale_head, row);
    } else {
      std::copy(ebuf, ebuf + k, row);
    }
    // The BS slot keeps the scalar path (distinct normalizer, one entry).
    row[k] = y_of(net, static_cast<int>(id), kBaseStationId, bits);
    std::uint32_t* trow =
        y_token_.data() + static_cast<std::size_t>(id) * stride_;
    const std::uint32_t tok = row_token_[id];
    for (std::size_t i = 0; i <= k; ++i) trow[i] = tok;
  };
  if (exec != nullptr && exec->has_partition()) {
    exec->for_shards([&](int s) {
      Arena& arena = exec->arena(s);
      double* dbuf = arena.alloc<double>(k);
      double* ebuf = arena.alloc<double>(k);
      for (const std::uint32_t id : exec->shard_nodes(s)) {
        if (id < n && is_member(id)) fill_node(id, dbuf, ebuf);
      }
    });
  } else {
    std::vector<double> dbuf(k), ebuf(k);
    for (std::uint32_t id = 0; id < static_cast<std::uint32_t>(n); ++id)
      if (is_member(id)) fill_node(id, dbuf.data(), ebuf.data());
  }
}

void QlecRouter::record_outcome(int from, int to, bool success) {
  estimator_.record(from, to, success);
}

void QlecRouter::update_head_value(const Network& net, int head,
                                   double bits) {
  // Algorithm 1 line 15: V*(h_j) = Q*(h_j, a_BS)
  //   = R_t + gamma (P V*(h_BS) + (1-P) V*(h_j)).
  // The head's uplink carries no direct-to-BS penalty — uplinking the fused
  // data IS its job (Eq. 19's l penalizes members bypassing the hierarchy).
  const double p = estimator_.estimate(head, kBaseStationId);
  const double y = y_cached(net, head, kBaseStationId, bits);
  const double r_s = -params_.g +
                     params_.alpha1 * (x_of(net, head) + params_.x_bs) -
                     params_.alpha2 * y;
  const double r_f =
      -params_.g + params_.beta1 * x_of(net, head) - params_.beta2 * y;
  const double rt = p * r_s + (1.0 - p) * r_f;
  double& v_head = v_slot(head);
  const double next =
      rt + params_.gamma * (p * v_bs_ + (1.0 - p) * v_head);
  max_v_delta_ = std::max(max_v_delta_, std::fabs(next - v_head));
  v_head = next;
  ++q_evals_;
}

}  // namespace qlec
