#include "core/qlec.hpp"

#include <algorithm>

#include "geom/spatial_grid.hpp"
#include "obs/telemetry.hpp"

namespace qlec {

QlecProtocol::QlecProtocol(const Network& net, QlecParams params,
                           RadioModel radio, double death_line)
    : params_(params),
      radio_(radio),
      death_line_(death_line),
      router_(params, radio, net.size()) {
  // Regime-appropriate uplink normalization (see params.hpp): scale the
  // uplink y by the amplifier energy at the deployment's mean BS distance.
  if (params_.y_scale_bs <= 0.0 && net.size() > 0) {
    params_.y_scale_bs = radio_.amp_energy(1.0, net.mean_dist_to_bs());
    router_ = QlecRouter(params_, radio_, net.size());
  }
  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  if (params_.force_k > 0) {
    k_opt_ = static_cast<std::size_t>(params_.force_k);
  } else {
    k_opt_ = optimal_cluster_count_rounded(net.size(), m_side,
                                           net.mean_dist_to_bs(),
                                           radio_.params());
  }
  k_opt_ = std::clamp<std::size_t>(k_opt_, 1, std::max<std::size_t>(net.size(), 1));
  d_c_ = cluster_radius(m_side, static_cast<double>(k_opt_));
}

void QlecProtocol::on_round_start(Network& net, int round, Rng& rng,
                                  EnergyLedger& ledger) {
  cur_round_ = round;
  ImprovedDeecConfig cfg;
  cfg.p_opt = static_cast<double>(k_opt_) /
              static_cast<double>(std::max<std::size_t>(net.size(), 1));
  cfg.total_rounds = params_.total_rounds;
  cfg.coverage_radius = d_c_;
  cfg.use_energy_threshold = params_.use_energy_threshold;
  cfg.reduce_redundancy = params_.reduce_redundancy;
  cfg.top_up_to_k = params_.top_up_to_k;
  heads_ = improved_deec_elect(net, cfg, round, rng, death_line_,
                               &last_stats_, exec_);

  // Control plane: each surviving head broadcasts its HELLO across d_c, and
  // every alive node inside the coverage ball spends receive energy on it.
  if (params_.hello_bits > 0.0 && !heads_.empty()) {
    if (exec_ != nullptr && exec_->has_partition() && exec_->shards() > 1) {
      charge_hello_sharded(net, ledger);
    } else {
      const SpatialGrid grid(net.positions(), std::max(d_c_, 1.0));
      for (const int h : heads_) {
        SensorNode& head = net.node(h);
        const double tx = radio_.tx_energy(params_.hello_bits, d_c_);
        ledger.charge(EnergyUse::kControl, head.battery.consume(tx), h);
        for (const std::size_t j : grid.query(head.pos, d_c_)) {
          const int jid = static_cast<int>(j);
          if (jid == h) continue;
          SensorNode& nbr = net.node(jid);
          if (!nbr.operational(death_line_)) continue;
          const double rx = radio_.rx_energy(params_.hello_bits);
          ledger.charge(EnergyUse::kControl, nbr.battery.consume(rx), jid);
        }
      }
    }
  }

  router_.begin_round(heads_);
  // Seed each head's V with one model-based Eq. 15 backup (known y, prior
  // P estimate). Without this, never-elected heads keep the optimistic
  // V = 0 of initialization and members flood the freshest head every
  // round regardless of its uplink cost.
  for (const int h : heads_)
    router_.update_head_value(net, h, uplink_bits_hint_);

  if (telemetry_ != nullptr) {
    const ElectionStats& s = last_stats_;
    obs::MetricsRegistry& m = telemetry_->metrics();
    m.counter("qlec.election.elected").inc(s.elected);
    m.counter("qlec.election.pruned").inc(s.pruned);
    m.counter("qlec.election.drafted").inc(s.drafted);
    if (s.used_fallback) m.counter("qlec.election.fallbacks").inc();
    m.gauge("qlec.k_opt").set(static_cast<double>(k_opt_));
    m.gauge("qlec.router.q_evals")
        .set(static_cast<double>(router_.q_evaluations()));
    m.gauge("qlec.router.max_v_delta").set(router_.max_v_delta_this_round());
    telemetry_->emit(obs::Event("election_stats", round)
                         .with("alive", s.alive)
                         .with("eligible", s.eligible)
                         .with("elected", s.elected)
                         .with("pruned", s.pruned)
                         .with("drafted", s.drafted)
                         .with("final_heads", s.final_heads)
                         .with("k_opt", k_opt_)
                         .with("used_fallback", s.used_fallback));
    // Algorithm 3 fired: the redundancy pass actually removed heads.
    if (s.pruned > 0)
      telemetry_->emit(obs::Event("prune", round)
                           .with("pruned", s.pruned)
                           .with("final_heads", s.final_heads));
  }
}

void QlecProtocol::charge_hello_sharded(Network& net, EnergyLedger& ledger) {
  // Receiver-centric rewrite of the h-major HELLO walk. Equivalence: the
  // h-major loop touches node j's battery exactly for the covering heads h
  // (distance2(h, j) <= d_c², a bitwise-symmetric predicate), in ascending
  // head order (heads_ is sorted): its own tx when h == j, else an rx
  // gated on j being operational *at that moment*. operational() reads only
  // j's own battery, so each node's charge sequence is independent of every
  // other node's — replaying it per node in id order leaves every battery
  // bit-identical, and only the ledger's bucket accumulation order changes
  // (digest-free; the energy audit compares with tolerance).
  const std::size_t n = net.size();
  std::vector<Vec3> head_pos;
  head_pos.reserve(heads_.size());
  for (const int h : heads_) head_pos.push_back(net.node(h).pos);
  const SpatialGrid grid(head_pos, std::max(d_c_, 1.0));

  // Parallel half (RNG-free, disjoint per-node writes): each shard queries
  // the head grid around its own nodes and records the covering head slots,
  // sorted so the walk below sees them in head-id order.
  HelloScratch& sc = hello_scratch_;
  sc.off.assign(n, 0);
  sc.cnt.assign(n, 0);
  sc.per_shard.resize(static_cast<std::size_t>(exec_->shards()));
  exec_->for_shards([&](int s) {
    std::vector<std::uint32_t>& buf =
        sc.per_shard[static_cast<std::size_t>(s)];
    buf.clear();
    std::vector<std::size_t> q;
    for (const std::uint32_t id : exec_->shard_nodes(s)) {
      grid.query_into(net.node(static_cast<int>(id)).pos, d_c_, q);
      std::sort(q.begin(), q.end());
      sc.off[id] = static_cast<std::uint32_t>(buf.size());
      sc.cnt[id] = static_cast<std::uint32_t>(q.size());
      for (const std::size_t slot : q)
        buf.push_back(static_cast<std::uint32_t>(slot));
    }
  });

  // Serial half: commit the battery charges node by node.
  const double tx = radio_.tx_energy(params_.hello_bits, d_c_);
  const double rx = radio_.rx_energy(params_.hello_bits);
  for (std::uint32_t id = 0; id < static_cast<std::uint32_t>(n); ++id) {
    SensorNode& node = net.node(static_cast<int>(id));
    const std::vector<std::uint32_t>& buf =
        sc.per_shard[static_cast<std::size_t>(exec_->shard_of(id))];
    bool self_txed = false;
    const std::uint32_t off = sc.off[id];
    for (std::uint32_t k = 0; k < sc.cnt[id]; ++k) {
      const int h = heads_[buf[off + k]];
      if (h == static_cast<int>(id)) {
        ledger.charge(EnergyUse::kControl, node.battery.consume(tx), h);
        self_txed = true;
      } else if (node.operational(death_line_)) {
        ledger.charge(EnergyUse::kControl, node.battery.consume(rx),
                      static_cast<int>(id));
      }
    }
    // A head's broadcast tx is unconditional in the h-major loop even if a
    // degenerate radius keeps it out of its own coverage query.
    if (node.is_head && !self_txed)
      ledger.charge(EnergyUse::kControl, node.battery.consume(tx),
                    static_cast<int>(id));
  }
}

void QlecProtocol::prepare_tx(const Network& net, double packet_bits) {
  if (exec_ == nullptr || exec_->shards() <= 1) return;
  router_.prefill_rows(net, packet_bits, exec_, death_line_);
}

int QlecProtocol::route(const Network& net, int src, double bits, Rng& rng) {
  uplink_bits_hint_ = bits;
  return router_.choose_target(net, src, bits, rng);
}

void QlecProtocol::on_tx_result(const Network& net, int src, int target,
                                bool success) {
  (void)net;
  router_.record_outcome(src, target, success);
}

void QlecProtocol::on_uplink_result(const Network& net, int head,
                                    bool success) {
  router_.record_outcome(head, kBaseStationId, success);
  router_.update_head_value(net, head, uplink_bits_hint_);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("qlec.q_updates").inc();
    if (telemetry_->per_packet_events())
      telemetry_->emit(obs::Event("q_update", cur_round_)
                           .with("head", head)
                           .with("success", success)
                           .with("v", router_.v(head)));
  }
}

}  // namespace qlec
