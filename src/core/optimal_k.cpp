#include "core/optimal_k.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace qlec {

double expected_d2_to_ch(double m_side, double k) {
  if (k <= 0.0) return 0.0;
  constexpr double four_pi = 4.0 * std::numbers::pi;
  const double c = (four_pi / 5.0) * std::pow(3.0 / four_pi, 5.0 / 3.0);
  return c * m_side * m_side / std::pow(k, 2.0 / 3.0);
}

double cluster_radius(double m_side, double k) {
  if (k <= 0.0) return 0.0;
  return std::cbrt(3.0 / (4.0 * std::numbers::pi * k)) * m_side;
}

double optimal_cluster_count(std::size_t n, double m_side, double d_to_bs,
                             const RadioParams& radio) {
  if (n == 0 || m_side <= 0.0 || d_to_bs <= 0.0 || radio.eps_mp <= 0.0)
    return 0.0;
  constexpr double pi = std::numbers::pi;
  const double inner = 8.0 * pi * static_cast<double>(n) * radio.eps_fs /
                       (15.0 * radio.eps_mp);
  return (3.0 / (4.0 * pi)) * std::pow(inner, 3.0 / 5.0) *
         std::pow(m_side, 6.0 / 5.0) / std::pow(d_to_bs, 12.0 / 5.0);
}

std::size_t optimal_cluster_count_rounded(std::size_t n, double m_side,
                                          double d_to_bs,
                                          const RadioParams& radio) {
  const double k = optimal_cluster_count(n, m_side, d_to_bs, radio);
  const auto rounded = static_cast<long long>(std::llround(k));
  return static_cast<std::size_t>(std::max(1LL, rounded));
}

double round_energy_for_k(double bits, std::size_t n, double k, double m_side,
                          double d_to_bs, const RadioParams& radio) {
  const double nn = static_cast<double>(n);
  return bits * (2.0 * nn * radio.e_elec + nn * radio.e_da +
                 k * radio.eps_mp * std::pow(d_to_bs, 4) +
                 nn * radio.eps_fs * expected_d2_to_ch(m_side, k));
}

std::size_t brute_force_optimal_k(double bits, std::size_t n, double m_side,
                                  double d_to_bs, std::size_t k_max,
                                  const RadioParams& radio) {
  std::size_t best_k = 1;
  double best_e = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= std::max<std::size_t>(k_max, 1); ++k) {
    const double e = round_energy_for_k(bits, n, static_cast<double>(k),
                                        m_side, d_to_bs, radio);
    if (e < best_e) {
      best_e = e;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace qlec
