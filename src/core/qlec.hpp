// The complete QLEC protocol (Algorithm 1): improved-DEEC head election per
// round + Q-learning relay choice for the data transmission phase. This is
// the object applications plug into the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/improved_deec.hpp"
#include "core/optimal_k.hpp"
#include "core/params.hpp"
#include "core/qlec_routing.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class QlecProtocol final : public ClusteringProtocol {
 public:
  /// `net` fixes N/M/d_toBS, from which k_opt (Theorem 1) and d_c (Eq. 5)
  /// are derived once up front (or taken from params.force_k).
  QlecProtocol(const Network& net, QlecParams params, RadioModel radio,
               double death_line);

  std::string name() const override { return "QLEC"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  /// Prefills the router's per-round y-cost rows with the SIMD kernels when
  /// a sharded ExecContext is attached; behaviorally invisible (the rows
  /// hold exactly the values the lazy per-route path would compute).
  void prepare_tx(const Network& net, double packet_bits) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;
  void on_tx_result(const Network& net, int src, int target,
                    bool success) override;
  void on_uplink_result(const Network& net, int head, bool success) override;
  std::size_t learning_updates() const override {
    return router_.q_evaluations();
  }

  std::size_t k_opt() const noexcept { return k_opt_; }
  double coverage_radius() const noexcept { return d_c_; }
  const QlecRouter& router() const noexcept { return router_; }
  QlecRouter& router() noexcept { return router_; }
  const ElectionStats& last_election() const noexcept { return last_stats_; }
  const std::vector<int>& current_heads() const noexcept { return heads_; }
  const QlecParams& params() const noexcept { return params_; }

 private:
  /// The sharded HELLO charge (receiver-centric rewrite of the h-major
  /// broadcast walk; bit-identical batteries, see qlec.cpp).
  void charge_hello_sharded(Network& net, EnergyLedger& ledger);

  QlecParams params_;
  RadioModel radio_;
  double death_line_;
  std::size_t k_opt_ = 1;
  double d_c_ = 0.0;
  QlecRouter router_;
  std::vector<int> heads_;
  ElectionStats last_stats_{};
  double uplink_bits_hint_ = 4000.0;  // refreshed from route() calls
  int cur_round_ = -1;                // for telemetry emitted off-round

  /// Round-reused scratch for charge_hello_sharded: per-node [off, cnt)
  /// windows into per-shard covering-head-slot buffers.
  struct HelloScratch {
    std::vector<std::uint32_t> off, cnt;
    std::vector<std::vector<std::uint32_t>> per_shard;
  };
  HelloScratch hello_scratch_;
};

}  // namespace qlec
