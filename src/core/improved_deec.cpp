#include "core/improved_deec.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/deec.hpp"
#include "geom/spatial_grid.hpp"

namespace qlec {

double deec_energy_threshold(double initial_energy, int r, int total_rounds) {
  if (total_rounds <= 0) return 0.0;
  const double frac = std::clamp(
      static_cast<double>(r) / static_cast<double>(total_rounds), 0.0, 1.0);
  return (1.0 - frac * frac) * std::max(initial_energy, 0.0);
}

std::vector<int> improved_deec_elect(Network& net,
                                     const ImprovedDeecConfig& cfg, int round,
                                     Rng& rng, double death_line,
                                     ElectionStats* stats, ExecContext* exec) {
  ElectionStats local;
  net.reset_heads();

  const double avg =
      cfg.use_estimated_average
          ? deec_avg_energy_estimate(net.total_initial_energy(), net.size(),
                                     round, cfg.total_rounds)
          : net.mean_residual_alive(death_line);

  // Pass 1 — RNG-free classification, fanned over shards: per node, the
  // alive flag, the Eq. 4 / rotation eligibility, and the draw threshold
  // T(b_i). Pure reads + disjoint per-node writes, so shard-invariant.
  const std::size_t n_nodes = net.size();
  std::vector<std::uint8_t> alive_flag(n_nodes, 0);
  std::vector<std::uint8_t> eligible(n_nodes, 0);
  std::vector<double> thr(n_nodes, 0.0);
  const auto classify = [&](std::uint32_t i) {
    const SensorNode& n = net.node(static_cast<int>(i));
    if (!n.operational(death_line)) return;
    alive_flag[i] = 1;
    const double p_i =
        deec_probability(cfg.p_opt, n.battery.residual(), avg);
    if (!deec_eligible(n.last_head_round, round, p_i)) return;
    // Eq. 4 restriction: too drained to serve. Qualification is non-strict
    // (residual >= threshold): at round 0 the threshold equals the full
    // initial energy, and a paper-literal strict test would disqualify
    // every fresh node.
    if (cfg.use_energy_threshold &&
        n.battery.residual() < deec_energy_threshold(n.battery.initial(),
                                                     round,
                                                     cfg.total_rounds))
      return;
    eligible[i] = 1;
    thr[i] = deec_threshold(p_i, round);
  };
  if (exec != nullptr && exec->has_partition()) {
    exec->for_shards([&](int s) {
      for (const std::uint32_t id : exec->shard_nodes(s)) classify(id);
    });
  } else {
    for (std::uint32_t i = 0; i < n_nodes; ++i) classify(i);
  }

  // Pass 2 — the draw, strictly serial in id order: every rng.uniform01()
  // is consumed for exactly the eligible nodes, in exactly the order the
  // single-loop election consumed them.
  std::vector<int> elected;
  int best_fallback = kBaseStationId;
  double best_energy = -1.0;
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    if (!alive_flag[i]) continue;
    ++local.alive;
    SensorNode& n = net.node(static_cast<int>(i));
    if (n.battery.residual() > best_energy) {
      best_energy = n.battery.residual();
      best_fallback = n.id;
    }
    if (!eligible[i]) continue;
    ++local.eligible;
    if (rng.uniform01() < thr[i]) {
      n.is_head = true;  // provisional until Algorithm 3 runs
      elected.push_back(n.id);
    }
  }
  local.elected = static_cast<int>(elected.size());

  // Algorithm 3 — Reduce-Redundancy: each provisional head broadcasts a
  // HELLO with its energy to everything within d_c; a head hearing a HELLO
  // from a strictly richer neighbour head quits. Ties break on id so the
  // outcome is deterministic.
  if (cfg.reduce_redundancy && cfg.coverage_radius > 0.0 &&
      elected.size() > 1) {
    std::vector<Vec3> head_pos;
    head_pos.reserve(elected.size());
    for (const int id : elected) head_pos.push_back(net.node(id).pos);
    const SpatialGrid grid(head_pos, cfg.coverage_radius);
    const std::size_t m = elected.size();

    // Parallel half: collect each head's threat list (richer neighbours
    // within d_c, in the grid's deterministic walk order). Pure reads.
    std::vector<std::vector<std::uint32_t>> threats(m);
    const auto collect = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double e_i = net.node(elected[i]).battery.residual();
        for (const std::size_t j :
             grid.neighbours_of(i, cfg.coverage_radius)) {
          const double e_j = net.node(elected[j]).battery.residual();
          if (e_j > e_i || (e_j == e_i && elected[j] < elected[i]))
            threats[i].push_back(static_cast<std::uint32_t>(j));
        }
      }
    };
    if (exec != nullptr) {
      exec->for_blocks(m, collect);
    } else {
      collect(0, m);
    }

    // Serial half: resolve quits in index order. Identical outcome to the
    // original break-on-first grid walk — neighbours that are not threats
    // never set removed[i] or break the walk, so skipping them is
    // invisible, and removed[j] is read at the same point of the i-sweep.
    std::vector<bool> removed(m, false);
    for (std::size_t i = 0; i < m; ++i) {
      for (const std::uint32_t j : threats[i]) {
        if (removed[j]) continue;  // a head that quit no longer competes
        removed[i] = true;
        ++local.pruned;
        break;
      }
    }
    std::vector<int> kept;
    kept.reserve(elected.size());
    for (std::size_t i = 0; i < elected.size(); ++i) {
      if (removed[i]) {
        net.node(elected[i]).is_head = false;
      } else {
        kept.push_back(elected[i]);
      }
    }
    elected.swap(kept);
  }

  // Replacement rule from Section 3.1 ("choose another node up to the
  // demand"): top the head set up to k = round(p_opt * N) with the
  // highest-energy qualified nodes, preferring ones outside d_c of any
  // existing head so the redundancy invariant is preserved.
  if (cfg.top_up_to_k) {
    const auto target_k = static_cast<std::size_t>(std::max<long long>(
        1, std::llround(cfg.p_opt * static_cast<double>(net.size()))));
    if (elected.size() < target_k) {
      // Candidates sorted by residual energy, richest first. Pass 1 already
      // decided rotation/Eq. 4 eligibility and nothing it reads (batteries,
      // last_head_round) has changed since, so reuse it; only the is_head
      // flags moved (election + pruning), and those are filtered here.
      std::vector<int> candidates;
      for (std::uint32_t i = 0; i < n_nodes; ++i) {
        if (!eligible[i] || net.node(static_cast<int>(i)).is_head) continue;
        candidates.push_back(static_cast<int>(i));
      }
      std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        return net.node(a).battery.residual() >
               net.node(b).battery.residual();
      });
      for (const int id : candidates) {
        if (elected.size() >= target_k) break;
        if (cfg.reduce_redundancy && cfg.coverage_radius > 0.0) {
          bool covered = false;
          for (const int h : elected) {
            if (net.dist(id, h) <= cfg.coverage_radius) {
              covered = true;
              break;
            }
          }
          if (covered) continue;
        }
        net.node(id).is_head = true;
        elected.push_back(id);
        ++local.drafted;
      }
    }
  }

  // Never leave the round headless — draft the highest-energy alive node.
  if (elected.empty() && best_fallback != kBaseStationId) {
    net.node(best_fallback).is_head = true;
    elected.push_back(best_fallback);
    local.used_fallback = true;
  }

  std::sort(elected.begin(), elected.end());
  for (const int id : elected) net.node(id).last_head_round = round;
  local.final_heads = static_cast<int>(elected.size());
  if (stats != nullptr) *stats = local;
  return elected;
}

}  // namespace qlec
