#include "core/improved_deec.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/deec.hpp"
#include "geom/spatial_grid.hpp"

namespace qlec {

double deec_energy_threshold(double initial_energy, int r, int total_rounds) {
  if (total_rounds <= 0) return 0.0;
  const double frac = std::clamp(
      static_cast<double>(r) / static_cast<double>(total_rounds), 0.0, 1.0);
  return (1.0 - frac * frac) * std::max(initial_energy, 0.0);
}

std::vector<int> improved_deec_elect(Network& net,
                                     const ImprovedDeecConfig& cfg, int round,
                                     Rng& rng, double death_line,
                                     ElectionStats* stats) {
  ElectionStats local;
  net.reset_heads();

  const double avg =
      cfg.use_estimated_average
          ? deec_avg_energy_estimate(net.total_initial_energy(), net.size(),
                                     round, cfg.total_rounds)
          : net.mean_residual_alive(death_line);

  std::vector<int> elected;
  int best_fallback = kBaseStationId;
  double best_energy = -1.0;
  for (SensorNode& n : net.nodes()) {
    if (!n.operational(death_line)) continue;
    ++local.alive;
    if (n.battery.residual() > best_energy) {
      best_energy = n.battery.residual();
      best_fallback = n.id;
    }
    const double p_i =
        deec_probability(cfg.p_opt, n.battery.residual(), avg);
    if (!deec_eligible(n.last_head_round, round, p_i)) continue;
    // Eq. 4 restriction: too drained to serve. Qualification is non-strict
    // (residual >= threshold): at round 0 the threshold equals the full
    // initial energy, and a paper-literal strict test would disqualify
    // every fresh node.
    if (cfg.use_energy_threshold &&
        n.battery.residual() < deec_energy_threshold(n.battery.initial(),
                                                     round,
                                                     cfg.total_rounds))
      continue;
    ++local.eligible;
    if (rng.uniform01() < deec_threshold(p_i, round)) {
      n.is_head = true;  // provisional until Algorithm 3 runs
      elected.push_back(n.id);
    }
  }
  local.elected = static_cast<int>(elected.size());

  // Algorithm 3 — Reduce-Redundancy: each provisional head broadcasts a
  // HELLO with its energy to everything within d_c; a head hearing a HELLO
  // from a strictly richer neighbour head quits. Ties break on id so the
  // outcome is deterministic.
  if (cfg.reduce_redundancy && cfg.coverage_radius > 0.0 &&
      elected.size() > 1) {
    std::vector<Vec3> head_pos;
    head_pos.reserve(elected.size());
    for (const int id : elected) head_pos.push_back(net.node(id).pos);
    const SpatialGrid grid(head_pos, cfg.coverage_radius);
    std::vector<bool> removed(elected.size(), false);
    for (std::size_t i = 0; i < elected.size(); ++i) {
      const double e_i = net.node(elected[i]).battery.residual();
      for (const std::size_t j :
           grid.neighbours_of(i, cfg.coverage_radius)) {
        if (removed[j]) continue;  // a head that quit no longer competes
        const double e_j = net.node(elected[j]).battery.residual();
        if (e_j > e_i || (e_j == e_i && elected[j] < elected[i])) {
          removed[i] = true;
          ++local.pruned;
          break;
        }
      }
    }
    std::vector<int> kept;
    kept.reserve(elected.size());
    for (std::size_t i = 0; i < elected.size(); ++i) {
      if (removed[i]) {
        net.node(elected[i]).is_head = false;
      } else {
        kept.push_back(elected[i]);
      }
    }
    elected.swap(kept);
  }

  // Replacement rule from Section 3.1 ("choose another node up to the
  // demand"): top the head set up to k = round(p_opt * N) with the
  // highest-energy qualified nodes, preferring ones outside d_c of any
  // existing head so the redundancy invariant is preserved.
  if (cfg.top_up_to_k) {
    const auto target_k = static_cast<std::size_t>(std::max<long long>(
        1, std::llround(cfg.p_opt * static_cast<double>(net.size()))));
    if (elected.size() < target_k) {
      // Candidates sorted by residual energy, richest first.
      std::vector<int> candidates;
      for (const SensorNode& n : net.nodes()) {
        if (n.is_head || !n.operational(death_line)) continue;
        const double p_i =
            deec_probability(cfg.p_opt, n.battery.residual(), avg);
        if (!deec_eligible(n.last_head_round, round, p_i))
          continue;  // drafting still honors the rotating epoch
        if (cfg.use_energy_threshold &&
            n.battery.residual() <
                deec_energy_threshold(n.battery.initial(), round,
                                      cfg.total_rounds))
          continue;
        candidates.push_back(n.id);
      }
      std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        return net.node(a).battery.residual() >
               net.node(b).battery.residual();
      });
      for (const int id : candidates) {
        if (elected.size() >= target_k) break;
        if (cfg.reduce_redundancy && cfg.coverage_radius > 0.0) {
          bool covered = false;
          for (const int h : elected) {
            if (net.dist(id, h) <= cfg.coverage_radius) {
              covered = true;
              break;
            }
          }
          if (covered) continue;
        }
        net.node(id).is_head = true;
        elected.push_back(id);
        ++local.drafted;
      }
    }
  }

  // Never leave the round headless — draft the highest-energy alive node.
  if (elected.empty() && best_fallback != kBaseStationId) {
    net.node(best_fallback).is_head = true;
    elected.push_back(best_fallback);
    local.used_fallback = true;
  }

  std::sort(elected.begin(), elected.end());
  for (const int id : elected) net.node(id).last_head_round = round;
  local.final_heads = static_cast<int>(elected.size());
  if (stats != nullptr) *stats = local;
  return elected;
}

}  // namespace qlec
