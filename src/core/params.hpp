// QLEC hyper-parameters. Table 2 of the paper fixes gamma and the reward
// weights; the remaining constants (g, l, exploration) are unstated in the
// paper and documented here with our choices (see DESIGN.md §6).
#pragma once

namespace qlec {

struct QlecParams {
  // --- Table 2 ---
  double gamma = 0.95;   ///< discount rate
  double alpha1 = 0.05;  ///< weight of x(b_i)+x(h_j) in Eq. 17 / 19
  double alpha2 = 1.05;  ///< weight of y(b_i,h_j) in Eq. 17 / 19
  double beta1 = 0.05;   ///< weight of x(b_i) in Eq. 20
  double beta2 = 1.05;   ///< weight of y(b_i,h_j) in Eq. 20
  double compression = 0.5;  ///< data-fusion ratio at cluster heads

  // --- constants the paper leaves unstated ---
  /// Constant punishment -g applied to every transmission attempt (Eq. 17).
  double g = 0.1;
  /// Direct-to-BS penalty l, "set to be an arbitrarily large number"
  /// (Eq. 19). Large enough to dominate any energy/distance difference.
  double l = 100.0;
  /// Exploration rate for action choice. The paper's Algorithm 4 is purely
  /// greedy (argmax), which the default reproduces; the optimistic link
  /// prior already makes unexplored links attractive, so extra epsilon
  /// exploration mostly wastes packets on far heads.
  double epsilon = 0.0;

  // --- reward normalization (DESIGN.md §6) ---
  // The paper plugs raw joules into Eq. 17-20. With 5 J batteries and
  // micro-joule packet costs that makes the y-term numerically invisible, so
  // we evaluate the rewards on dimensionless inputs:
  //   x(b)  = residual(b)  / x_scale   (x_scale = node initial energy)
  //   y(..) = amp_energy(L, d) / y_scale (y_scale = amp_energy(L, d0))
  // Setting both scales to 1 reproduces the raw-joules formulas.
  /// x normalization; <= 0 means "use each node's initial energy".
  double x_scale = -1.0;
  /// y normalization for member links; <= 0 means "use the amplifier
  /// energy at d0".
  double y_scale = -1.0;
  /// y normalization for the BS uplink leg; <= 0 means "use the amplifier
  /// energy at the deployment's mean node-to-BS distance" (set by
  /// QlecProtocol). Uplinks run in the multi-path (d^4) regime, so without
  /// a regime-appropriate scale the V(h_j) values from Algorithm 1 line 15
  /// dwarf the member-side y and over-concentrate load on BS-proximal
  /// heads.
  double y_scale_bs = -1.0;
  /// The BS has mains power; its normalized residual energy x(h_BS).
  double x_bs = 1.0;

  // --- election / control plane ---
  /// Total rounds R used by the Eq. 2 / Eq. 4 schedules.
  int total_rounds = 20;
  /// Enable the Eq. 4 minimum-energy threshold (improvement #1).
  bool use_energy_threshold = true;
  /// Enable the Algorithm 3 HELLO redundancy reduction (improvement #2).
  bool reduce_redundancy = true;
  /// Enable the §3.1 replacement rule (top the head set up to k_opt with
  /// the highest-energy qualified nodes when the draw under-elects).
  bool top_up_to_k = true;
  /// HELLO message size in bits (control-plane energy cost).
  double hello_bits = 200.0;
  /// Override the computed k_opt when > 0 (used by the k-sweep ablation and
  /// the Fig. 4 run, which pins k = 272 to match the paper).
  int force_k = 0;

  friend bool operator==(const QlecParams&, const QlecParams&) = default;
};

}  // namespace qlec
