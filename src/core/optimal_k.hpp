// The analytic results of Section 3.2: expected member-to-head distance in a
// 3-D deployment (Lemma 1), the optimal cluster count (Theorem 1), and the
// cluster coverage radius (Eq. 5). A brute-force minimizer of the Eq. 6
// round energy is included so tests can confirm the closed form.
#pragma once

#include <cstddef>

#include "energy/radio_model.hpp"

namespace qlec {

/// Lemma 1: E{d_toCH^2} = (4*pi/5) * (3/(4*pi))^(5/3) * M^2 / k^(2/3).
double expected_d2_to_ch(double m_side, double k);

/// Eq. 5: cluster coverage radius d_c = (3 / (4*pi*k))^(1/3) * M — the
/// radius of a ball whose volume is M^3 / k.
double cluster_radius(double m_side, double k);

/// Theorem 1:
///   k_opt = (3/(4*pi)) * (8*pi*N*eps_fs / (15*eps_mp))^(3/5)
///           * M^(6/5) / d_toBS^(12/5).
/// Returns the continuous optimum (callers round as needed).
double optimal_cluster_count(std::size_t n, double m_side, double d_to_bs,
                             const RadioParams& radio = {});

/// k_opt rounded to the nearest integer >= 1.
std::size_t optimal_cluster_count_rounded(std::size_t n, double m_side,
                                          double d_to_bs,
                                          const RadioParams& radio = {});

/// Eq. 6 evaluated with the Lemma 1 distance: per-round network energy as a
/// function of k. Uses the multi-path uplink / free-space member-link split
/// as printed in the paper.
double round_energy_for_k(double bits, std::size_t n, double k, double m_side,
                          double d_to_bs, const RadioParams& radio = {});

/// Integer k in [1, k_max] minimizing round_energy_for_k — the ground truth
/// Theorem 1 must match.
std::size_t brute_force_optimal_k(double bits, std::size_t n, double m_side,
                                  double d_to_bs, std::size_t k_max,
                                  const RadioParams& radio = {});

}  // namespace qlec
