// The Data Transmission Phase of QLEC (Section 4.2 / Algorithm 4): each
// non-cluster-head node picks a relay by a model-based Q-learning backup over
// the action set {forward to head h_j} ∪ {direct to BS}, with transition
// probabilities estimated from ACK history and rewards from Eq. 16-20.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.hpp"
#include "energy/radio_model.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "rl/qlearning.hpp"
#include "util/rng.hpp"

namespace qlec {

class ExecContext;  // util/exec.hpp

class QlecRouter {
 public:
  QlecRouter(QlecParams params, RadioModel radio, std::size_t n_nodes);

  /// Installs this round's head set (Algorithm 1 line 8-9 output). V values
  /// persist across rounds — a node's V survives its head/member role
  /// changes, which is what lets learning accumulate.
  void begin_round(std::vector<int> heads);

  /// Algorithm 4 Send-Data(b_i): computes Q*(b_i, a_j) for every action,
  /// updates V*(b_i) to the max, and returns the argmax target (a head id or
  /// kBaseStationId). With params.epsilon > 0, explores uniformly with that
  /// probability (V is still updated from the greedy max).
  int choose_target(const Network& net, int src, double bits, Rng& rng);

  /// Bulk-fills the per-round y memo for every alive member through the
  /// SIMD kernels, sharded over `exec` (head rows and the lazy path stay as
  /// they are). Value-transparent: each filled entry is bit-identical to
  /// what y_cached would have computed on demand, so routing decisions and
  /// digests do not depend on whether (or at what shard count) this ran.
  /// Token bookkeeping runs serially on the caller; only the disjoint
  /// per-row value writes fan out.
  void prefill_rows(const Network& net, double bits, ExecContext* exec,
                    double death_line);

  /// ACK outcome of a member -> target attempt; feeds the link estimator.
  void record_outcome(int from, int to, bool success);

  /// Algorithm 1 line 15: after head h_j uplinks to the BS, refresh
  /// V*(h_j) = Q*(h_j, a_BS).
  void update_head_value(const Network& net, int head, double bits);

  /// Q*(b_i, a) for one candidate target (exposed for tests/benches).
  double q_value(const Network& net, int src, int target, double bits) const;

  /// Eq. 17 / 19 success reward and Eq. 20 failure reward.
  double reward_success(const Network& net, int src, int target,
                        double bits) const;
  double reward_failure(const Network& net, int src, int target,
                        double bits) const;

  double v(int node_or_bs) const;
  const std::vector<int>& heads() const noexcept { return heads_; }
  LinkEstimator& estimator() noexcept { return estimator_; }
  const LinkEstimator& estimator() const noexcept { return estimator_; }
  /// Total Q evaluations performed — the footprint behind Theorem 3's
  /// O(kX) bound (each Send-Data call performs k+1 of them).
  std::size_t q_evaluations() const noexcept { return q_evals_; }
  /// Largest |V delta| seen in the most recent begin_round()..now window;
  /// used by convergence instrumentation.
  double max_v_delta_this_round() const noexcept { return max_v_delta_; }

  const QlecParams& params() const noexcept { return params_; }
  const RadioModel& radio() const noexcept { return radio_; }

 private:
  /// Normalized residual energy x(node); x(BS) = params.x_bs.
  double x_of(const Network& net, int node_or_bs) const;
  /// Normalized transmission cost y(src, target).
  double y_of(const Network& net, int src, int target, double bits) const;
  /// y_of through the per-round memo below; bit-identical to y_of.
  double y_cached(const Network& net, int src, int target, double bits);
  double& v_slot(int node_or_bs);

  QlecParams params_;
  RadioModel radio_;
  std::vector<double> v_;  // per node id
  double v_bs_ = 0.0;      // V*(h_BS); the sink is absorbing, stays 0
  LinkEstimator estimator_;
  std::vector<int> heads_;
  std::size_t q_evals_ = 0;
  double max_v_delta_ = 0.0;

  // ---- Hot-path state (no behavioural effect) ----
  // Scratch action list rebuilt by each choose_target call; a member so the
  // per-packet path allocates nothing once warm.
  std::vector<int> actions_;
  // Per-round memo of y_of(src, target, bits): y depends only on geometry
  // (positions are fixed within a round) and `bits`, so each (src, action)
  // pair is computed once per round instead of once per Q evaluation. Rows
  // are validated lazily via tokens: an entry is live iff its token matches
  // its row's token, and a row gets a fresh token whenever the round or the
  // row's `bits` changes — O(1) invalidation, no per-round clearing of the
  // value arrays. Slot layout: heads_[i] -> slot i, BS -> slot
  // heads_.size(); `slot_of_` maps a head id to its slot this round.
  std::uint32_t round_serial_ = 0;
  std::uint32_t token_counter_ = 0;
  std::size_t stride_ = 0;  // max actions per source seen so far
  std::vector<std::int32_t> slot_of_;
  std::vector<double> y_val_;
  std::vector<std::uint32_t> y_token_;
  std::vector<std::uint32_t> row_token_;
  std::vector<std::uint32_t> row_round_;
  std::vector<double> row_bits_;
  // SoA gather buffers for the SIMD Q-scan in choose_target and the head
  // positions for prefill_rows; members so the steady state allocates
  // nothing. Contents are transient within one call.
  std::vector<double> qs_p_, qs_y_, qs_x_, qs_v_, qs_q_;
  std::vector<double> hx_, hy_, hz_;
};

}  // namespace qlec
