// The Cluster Head Selection Phase of QLEC: the improved DEEC election of
// Section 3.1 / Algorithms 2-3. On top of plain DEEC it adds
//   (1) the minimum-energy threshold Eq. 4
//       E_i,th(r) = [1 - (r/R)^2] * E_i,initial, and
//   (2) HELLO-based redundancy reduction within the coverage radius d_c:
//       of two heads within d_c, the lower-energy one quits (Algorithm 3).
#pragma once

#include <vector>

#include "net/network.hpp"
#include "util/exec.hpp"
#include "util/rng.hpp"

namespace qlec {

/// Eq. 4 energy threshold. Negative r clamps to 0; r >= R yields 0 (any
/// residual energy qualifies at end of life).
double deec_energy_threshold(double initial_energy, int r, int total_rounds);

struct ImprovedDeecConfig {
  double p_opt = 0.05;        ///< k_opt / N
  int total_rounds = 20;      ///< R in Eq. 2 / Eq. 4
  double coverage_radius = 0; ///< d_c from Eq. 5
  bool use_energy_threshold = true;  ///< improvement (1)
  bool reduce_redundancy = true;     ///< improvement (2)
  bool use_estimated_average = true; ///< Eq. 2 estimate vs measured average
  /// Section 3.1's replacement rule, "choose another node up to the demand
  /// to replace it": after the draw and Algorithm 3, draft the
  /// highest-energy qualified nodes (outside d_c of existing heads) until
  /// the head count reaches round(p_opt * N). Keeps k near k_opt, which is
  /// the point of the improved election.
  bool top_up_to_k = true;
};

struct ElectionStats {
  int alive = 0;
  int eligible = 0;          ///< passed rotation + energy threshold
  int elected = 0;           ///< won the z < T(b_i) draw
  int pruned = 0;            ///< removed by Algorithm 3
  int drafted = 0;           ///< added by the replacement (top-up) rule
  int final_heads = 0;
  bool used_fallback = false;  ///< election was empty; max-energy node drafted
};

/// One improved-DEEC election round over nodes above `death_line`. Sets
/// is_head / last_head_round on the final head set and returns its ids.
/// The HELLO control-plane energy is NOT charged here (the protocol layer
/// charges it so the cost can be attributed to the ledger).
///
/// With an ExecContext the RNG-free phases (per-node eligibility/threshold
/// precompute, Algorithm 3 threat scans) fan out over shards; the
/// T(b_i)-draw loop and every order-sensitive merge stay serial in id
/// order, so the elected set — and the Rng stream — is bit-identical at
/// every shard count including the serial exec = nullptr path.
std::vector<int> improved_deec_elect(Network& net,
                                     const ImprovedDeecConfig& cfg, int round,
                                     Rng& rng, double death_line,
                                     ElectionStats* stats = nullptr,
                                     ExecContext* exec = nullptr);

}  // namespace qlec
