#include "dataset/power_plant.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numbers>
#include <sstream>

#include "util/csv.hpp"

namespace qlec {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size() && std::isfinite(out);
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<std::vector<PowerPlant>> parse_power_plants(
    const std::string& csv_text) {
  const std::vector<CsvRow> rows = parse_csv(csv_text);
  if (rows.empty()) return std::nullopt;

  // Map required columns from the header.
  const CsvRow& header = rows.front();
  int col_name = -1, col_cap = -1, col_lat = -1, col_lon = -1, col_h = -1;
  for (std::size_t c = 0; c < header.size(); ++c) {
    const std::string h = lower(header[c]);
    if (h == "name") col_name = static_cast<int>(c);
    else if (h == "capacity_mw") col_cap = static_cast<int>(c);
    else if (h == "latitude") col_lat = static_cast<int>(c);
    else if (h == "longitude") col_lon = static_cast<int>(c);
    else if (h == "height_m") col_h = static_cast<int>(c);
  }
  if (col_cap < 0 || col_lat < 0 || col_lon < 0) return std::nullopt;

  std::vector<PowerPlant> plants;
  plants.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    const auto cell = [&](int c) -> std::string {
      return (c >= 0 && static_cast<std::size_t>(c) < row.size())
                 ? row[static_cast<std::size_t>(c)]
                 : std::string{};
    };
    PowerPlant p;
    p.name = cell(col_name);
    if (!parse_double(cell(col_cap), p.capacity_mw)) continue;
    if (!parse_double(cell(col_lat), p.latitude)) continue;
    if (!parse_double(cell(col_lon), p.longitude)) continue;
    if (col_h >= 0) {
      double h = 0.0;
      if (parse_double(cell(col_h), h)) p.height_m = h;
    }
    plants.push_back(std::move(p));
  }
  return plants;
}

std::string format_power_plants(const std::vector<PowerPlant>& plants) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(CsvRow{"name", "capacity_mw", "latitude", "longitude",
                     "height_m"});
  for (const PowerPlant& p : plants) {
    char cap[32], lat[32], lon[32], h[32];
    std::snprintf(cap, sizeof cap, "%.6g", p.capacity_mw);
    std::snprintf(lat, sizeof lat, "%.8g", p.latitude);
    std::snprintf(lon, sizeof lon, "%.8g", p.longitude);
    std::snprintf(h, sizeof h, "%.6g", p.height_m);
    w.write_row(CsvRow{p.name, cap, lat, lon, h});
  }
  return out.str();
}

Network dataset_to_network(const std::vector<PowerPlant>& plants,
                           const DatasetNetworkConfig& cfg) {
  if (plants.empty()) return Network({}, std::vector<double>{}, {}, {});

  // Equirectangular projection about the centroid latitude.
  double lat0 = 0.0;
  for (const PowerPlant& p : plants) lat0 += p.latitude;
  lat0 /= static_cast<double>(plants.size());
  const double cos_lat0 = std::cos(lat0 * std::numbers::pi / 180.0);

  std::vector<Vec3> raw;
  raw.reserve(plants.size());
  double cap_min = plants.front().capacity_mw;
  double cap_max = cap_min;
  for (const PowerPlant& p : plants) {
    raw.push_back({p.longitude * cos_lat0, p.latitude, p.height_m});
    cap_min = std::min(cap_min, p.capacity_mw);
    cap_max = std::max(cap_max, p.capacity_mw);
  }

  // Normalize the horizontal footprint to target_extent_m.
  Aabb raw_box{raw.front(), raw.front()};
  for (const Vec3& p : raw) raw_box.expand(p);
  const Vec3 ext = raw_box.extent();
  const double horiz = std::max({ext.x, ext.y, 1e-9});
  const double scale = cfg.target_extent_m / horiz;

  std::vector<Vec3> pts;
  pts.reserve(raw.size());
  Aabb box{{0, 0, 0}, {0, 0, 0}};
  for (const Vec3& p : raw) {
    const Vec3 q{(p.x - raw_box.lo.x) * scale, (p.y - raw_box.lo.y) * scale,
                 p.z};
    pts.push_back(q);
    box.expand(q);
  }

  // log-capacity -> initial energy.
  const double lmin = std::log10(std::max(cap_min, 1e-3));
  const double lmax = std::log10(std::max(cap_max, 1e-3));
  const double span = std::max(lmax - lmin, 1e-9);
  std::vector<double> energy;
  energy.reserve(plants.size());
  for (const PowerPlant& p : plants) {
    const double t =
        (std::log10(std::max(p.capacity_mw, 1e-3)) - lmin) / span;
    energy.push_back(cfg.e_min + t * (cfg.e_max - cfg.e_min));
  }

  const Vec3 bs{box.center().x, box.center().y, box.hi.z};
  return Network(pts, energy, bs, box);
}

}  // namespace qlec
