#include "dataset/synthetic_gppd.hpp"

#include <algorithm>
#include <cstdio>

namespace qlec {

const std::vector<CityAnchor>& china_city_anchors() {
  // Rough coordinates of major Chinese load centers; weights approximate
  // regional generation shares (coastal/industrial provinces heavier).
  static const std::vector<CityAnchor> anchors = {
      {"Beijing", 39.9, 116.4, 5.0},    {"Tianjin", 39.1, 117.2, 3.0},
      {"Shanghai", 31.2, 121.5, 6.0},   {"Guangzhou", 23.1, 113.3, 6.0},
      {"Shenzhen", 22.5, 114.1, 4.0},   {"Chengdu", 30.7, 104.1, 4.0},
      {"Chongqing", 29.6, 106.5, 4.0},  {"Wuhan", 30.6, 114.3, 4.0},
      {"Xian", 34.3, 108.9, 3.0},       {"Nanjing", 32.1, 118.8, 4.0},
      {"Hangzhou", 30.3, 120.2, 4.0},   {"Jinan", 36.7, 117.0, 4.0},
      {"Qingdao", 36.1, 120.4, 3.0},    {"Shenyang", 41.8, 123.4, 3.0},
      {"Harbin", 45.8, 126.5, 2.0},     {"Changchun", 43.9, 125.3, 2.0},
      {"Zhengzhou", 34.7, 113.7, 4.0},  {"Shijiazhuang", 38.0, 114.5, 3.0},
      {"Taiyuan", 37.9, 112.6, 4.0},    {"Hohhot", 40.8, 111.7, 3.0},
      {"Lanzhou", 36.1, 103.8, 2.0},    {"Urumqi", 43.8, 87.6, 2.0},
      {"Kunming", 25.0, 102.7, 3.0},    {"Guiyang", 26.6, 106.7, 2.0},
      {"Nanning", 22.8, 108.3, 2.0},    {"Changsha", 28.2, 113.0, 3.0},
      {"Nanchang", 28.7, 115.9, 2.0},   {"Fuzhou", 26.1, 119.3, 3.0},
      {"Hefei", 31.9, 117.3, 3.0},      {"Xining", 36.6, 101.8, 1.0},
  };
  return anchors;
}

std::vector<PowerPlant> generate_synthetic_gppd(
    const SyntheticGppdConfig& cfg) {
  Rng rng(cfg.seed);
  const auto& anchors = china_city_anchors();
  std::vector<double> weights;
  weights.reserve(anchors.size());
  for (const CityAnchor& a : anchors) weights.push_back(a.weight);

  std::vector<PowerPlant> plants;
  plants.reserve(cfg.plants);
  for (std::size_t i = 0; i < cfg.plants; ++i) {
    const CityAnchor& a = anchors[rng.weighted_index(weights)];
    PowerPlant p;
    char name[64];
    std::snprintf(name, sizeof name, "synthetic-%s-%04zu", a.name, i);
    p.name = name;
    p.latitude = std::clamp(a.latitude + rng.normal(0.0, cfg.spread_deg),
                            18.0, 53.0);
    p.longitude = std::clamp(a.longitude + rng.normal(0.0, cfg.spread_deg),
                             74.0, 134.0);
    p.capacity_mw = rng.lognormal(cfg.log_cap_mu, cfg.log_cap_sigma);
    p.height_m = rng.uniform(cfg.height_min, cfg.height_max);
    plants.push_back(std::move(p));
  }
  return plants;
}

}  // namespace qlec
