// Power-plant records for the Section 5.3 experiment. The paper uses the
// WRI Global Power Plant Database (2896 plants in China), treating each
// plant's energy value as a sensor's initial energy and assigning a random
// height to lift the data into 3-D. The loader accepts a CSV in the real
// GPPD column subset (name,capacity_mw,latitude,longitude[,height_m]) so a
// genuine extract can be dropped in; src/dataset/synthetic_gppd.* generates
// a statistically matched substitute (DESIGN.md §4).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace qlec {

struct PowerPlant {
  std::string name;
  double capacity_mw = 0.0;
  double latitude = 0.0;   // degrees
  double longitude = 0.0;  // degrees
  double height_m = 0.0;   // the paper's random height assignment
};

/// Parses plants from CSV text with header
/// `name,capacity_mw,latitude,longitude[,height_m]`. Rows with
/// unparseable numerics are skipped. Returns nullopt when the header is
/// malformed.
std::optional<std::vector<PowerPlant>> parse_power_plants(
    const std::string& csv_text);

/// Serializes with the same schema (always includes height_m).
std::string format_power_plants(const std::vector<PowerPlant>& plants);

/// Conversion knobs for dataset -> Network.
struct DatasetNetworkConfig {
  /// Initial energy mapped affinely from log10(capacity): a plant at the
  /// dataset's minimum capacity gets e_min J, the maximum gets e_max J.
  double e_min = 2.0;
  double e_max = 10.0;
  /// Degrees -> meters scale is chosen so the bounding box's largest
  /// horizontal extent equals `target_extent_m` (keeps radio distances in a
  /// regime where the energy model is meaningful).
  double target_extent_m = 500.0;
};

/// Builds a 3-D Network from plant records: equirectangular projection of
/// (lon, lat), height as z, capacity -> initial energy, BS at the centroid
/// of the deployment (top of the box).
Network dataset_to_network(const std::vector<PowerPlant>& plants,
                           const DatasetNetworkConfig& cfg = {});

}  // namespace qlec
