// Synthetic stand-in for the WRI Global Power Plant Database's China subset
// (DESIGN.md §4). Deterministic given the seed: 2896 plants clumped around
// real province/load-center coordinates with heavy-tailed (log-normal)
// capacities, plus the paper's random-height lift to 3-D.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/power_plant.hpp"
#include "util/rng.hpp"

namespace qlec {

struct SyntheticGppdConfig {
  std::size_t plants = 2896;  ///< the paper's China count
  /// Random height range in meters (the paper assigns a random height to
  /// each node to convert the 2-D dataset into a 3-D network).
  double height_min = 0.0;
  double height_max = 250.0;
  /// Log-normal capacity parameters in MW (median ~ 50 MW, heavy tail).
  double log_cap_mu = 3.9;     // ln MW
  double log_cap_sigma = 1.4;
  /// Gaussian spread of plants around their anchor city, in degrees.
  double spread_deg = 1.6;
  std::uint64_t seed = 20190805;  ///< ICPP 2019 dates, for flavor
};

/// Anchor cities: (name, lat, lon, weight) for ~30 Chinese load centers.
struct CityAnchor {
  const char* name;
  double latitude;
  double longitude;
  double weight;  ///< relative share of plants
};
const std::vector<CityAnchor>& china_city_anchors();

/// Generates the synthetic plant list (deterministic given cfg.seed).
std::vector<PowerPlant> generate_synthetic_gppd(
    const SyntheticGppdConfig& cfg = {});

}  // namespace qlec
