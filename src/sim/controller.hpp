// The centralized-controller seam (DESIGN.md §15): a Controller is a
// base-station-side object the simulator's round loop consults at every
// round boundary, with read-only visibility of the *global* network state,
// to select that round's clustering. This is the structural opposite of the
// distributed protocols (LEACH/DEEC/HEED...), where each node decides from
// local state: here the BS observes everything and dictates the head set.
//
// Contract:
//   - `select_heads` is called exactly once per round, on the main thread,
//     before any per-node phase. It must fill `heads` with ids of nodes
//     that are operational above `death_line`; RNG draws happen only here
//     and in a data-independent order, so the digest/shard-invariance
//     contract of the round core is preserved. The controller never
//     mutates the network — the adapting protocol stamps is_head /
//     last_head_round from the returned set.
//   - `on_round_end` is called once after the round's uplinks settle, with
//     the post-round state; it is RNG-free and is where a learning
//     controller does its value backup.
//
// Two implementations ship: a trivial passthrough (classic LEACH rotation
// run centrally, so the seam is testable independent of any learning
// logic) and the RL-lite controller of LEACH-RLC (arXiv 2401.15767), a
// tabular Q-learner over coarse global-energy states that tunes the
// cluster-count budget to minimize energy burn.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace qlec {

/// Which Controller implementation `make_controller` builds.
enum class ControllerKind { kRlLite, kPassthrough };

/// Stable lowercase token for `k` ("rl-lite" / "passthrough"); used by the
/// config schema.
const char* controller_kind_name(ControllerKind k) noexcept;

/// Hyper-parameters for the BS-side controller (config: protocol.controller).
struct ControllerOptions {
  ControllerKind kind = ControllerKind::kRlLite;
  double alpha = 0.2;    ///< Q-table learning rate, [0, 1]
  double gamma = 0.9;    ///< discount factor, [0, 1]
  double epsilon = 0.1;  ///< exploration probability, [0, 1]

  friend bool operator==(const ControllerOptions&, const ControllerOptions&) =
      default;
};

class Controller {
 public:
  virtual ~Controller() = default;

  virtual std::string name() const = 0;

  /// Selects the head set for `round` from the global state. Clears and
  /// fills `heads` with operational node ids in ascending order; an empty
  /// result means "no head" and members fall back to direct BS uplink.
  virtual void select_heads(const Network& net, int round, double death_line,
                            Rng& rng, std::vector<int>& heads) = 0;

  /// Post-round feedback with the settled global state. RNG-free.
  virtual void on_round_end(const Network& net, int round) {
    (void)net;
    (void)round;
  }

  /// Value/Q backups performed so far (0 for non-learning controllers).
  virtual std::size_t updates() const { return 0; }
};

/// Classic LEACH rotation evaluated centrally: the same threshold draws a
/// distributed LEACH network would make, replayed at the BS in id order
/// (one uniform01 per eligible node, max-energy fallback when no draw
/// wins). Exists so the Controller seam is testable with zero learning
/// state in the loop.
class PassthroughController final : public Controller {
 public:
  explicit PassthroughController(double p) : p_(p) {}

  std::string name() const override { return "passthrough"; }
  void select_heads(const Network& net, int round, double death_line,
                    Rng& rng, std::vector<int>& heads) override;

 private:
  double p_;
};

/// RL-lite controller of LEACH-RLC (arXiv 2401.15767): a tabular
/// Q-learner whose state is a coarse bucket of the network's residual
/// energy fraction and whose action scales the cluster-count budget k by a
/// fixed multiplier. Heads are the top-k residual-energy operational nodes
/// (ties to the lower id). Reward is the negative per-round energy drop
/// normalized by the initial budget, so the controller learns the head
/// budget that minimizes energy burn as the network drains.
class RlLiteController final : public Controller {
 public:
  /// Number of residual-energy-fraction buckets (states).
  static constexpr std::size_t kStates = 4;
  /// Cluster-count multipliers (actions) applied to the base budget.
  static constexpr std::array<double, 4> kMultipliers = {0.5, 1.0, 1.5,
                                                         2.0};

  RlLiteController(std::size_t base_k, const ControllerOptions& opt)
      : base_k_(base_k == 0 ? 1 : base_k), opt_(opt) {}

  std::string name() const override { return "rl-lite"; }
  void select_heads(const Network& net, int round, double death_line,
                    Rng& rng, std::vector<int>& heads) override;
  void on_round_end(const Network& net, int round) override;
  std::size_t updates() const override { return updates_; }

  /// Current Q-value for (state, action); exposed for the seam tests.
  double q_value(std::size_t state, std::size_t action) const {
    return q_.at(state).at(action);
  }

 private:
  static std::size_t state_bucket(const Network& net);

  std::size_t base_k_;
  ControllerOptions opt_;
  std::array<std::array<double, kMultipliers.size()>, kStates> q_{};
  std::size_t updates_ = 0;
  // Pending (state, action) awaiting its end-of-round backup.
  bool pending_ = false;
  std::size_t state_ = 0;
  std::size_t action_ = 0;
  double residual_before_ = 0.0;
};

/// Builds the controller `opt.kind` names. `base_k` is the resolved
/// cluster-count budget and `p` the per-node head probability k/N (used by
/// the passthrough rotation).
std::unique_ptr<Controller> make_controller(const ControllerOptions& opt,
                                            std::size_t base_k, double p);

}  // namespace qlec
