// Terrain-aware propagation environment (DESIGN.md §16): an optional seam
// the simulator consults for link viability, attenuation, underwater amp
// cost, and position-dependent energy harvesting. Composes three occluder
// families over the deployment box:
//
//   * AABB obstacles ("urban canyon" blocks) that attenuate — or, past
//     sever_depth, sever — every line of sight crossing them;
//   * a procedural ridged height-field (the same two-crossed-sinusoid
//     formula behind geom/sampling's sample_terrain), treated as solid
//     rock below the surface;
//   * a water column with depth-dependent path loss (absorption per unit
//     of submerged path) and an amp-energy multiplier that grows with the
//     link's mean submerged depth.
//
// Contract (the repo-wide one): disabled ⇒ the Environment is never
// constructed and every committed golden digest is bit-identical. Enabled,
// the seam is RNG-free and a pure function of geometry, so traces stay
// invariant to shard count and ExecPolicy. A zero-obstruction enabled
// world yields link_factor == 1.0 and tx_amp_factor == 1.0 exactly, which
// keeps its trajectory byte-identical to an env-disabled run (the
// simulator multiplies probabilities by 1.0 or takes the unscaled branch).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/spatial_grid.hpp"
#include "geom/vec3.hpp"

namespace qlec {

/// One solid box obstruction. `extra_atten` is added to the world-wide
/// EnvConfig::atten_per_unit for path length inside THIS box (dense
/// material), so a world can mix glass and concrete.
struct EnvObstacle {
  Aabb box;
  double extra_atten = 0.0;  ///< >= 0, nepers per unit of path inside box

  friend bool operator==(const EnvObstacle&, const EnvObstacle&) = default;
};

/// Procedural ridge occluder. The surface height over (x, y) is
///   z(u, v) = lo.z + base_frac * ez + amplitude_frac * ez * h(u, v)
/// with h the sample_terrain ridge formula and ez the domain z-extent, so
/// amplitude_frac = 0.25, base_frac = 0.5 matches the deployment surface
/// of Deployment::kTerrain (minus its per-node jitter).
struct EnvTerrain {
  bool enabled = false;
  double amplitude_frac = 0.25;  ///< >= 0, ridge amplitude / domain z-extent
  double base_frac = 0.5;        ///< [0, 1], base height / domain z-extent

  friend bool operator==(const EnvTerrain&, const EnvTerrain&) = default;
};

/// Water column below surface_frac of the domain z-range. Submerged path
/// attenuates at alpha_per_unit (absorption; it never severs) and the amp
/// energy of a transmission scales with the link's mean submerged depth.
struct EnvWater {
  bool enabled = false;
  double surface_frac = 1.0;     ///< [0, 1], surface z / domain z-range
  double alpha_per_unit = 0.0;   ///< >= 0, nepers per unit submerged path
  double amp_depth_scale = 0.0;  ///< >= 0, amp multiplier slope per unit depth

  friend bool operator==(const EnvWater&, const EnvWater&) = default;
};

/// Position-dependent solar/surface harvesting: a node at depth d below
/// the water surface (water worlds) or below the terrain surface (buried
/// nodes in ridge worlds) harvests
///   per_round * max(min_factor, exp(-depth_decay * d))  joules per round.
struct EnvHarvest {
  double per_round = 0.0;    ///< >= 0, joules per node per round at depth 0
  double depth_decay = 0.0;  ///< >= 0, exponential decay per unit depth
  double min_factor = 0.0;   ///< [0, 1], harvest floor fraction

  friend bool operator==(const EnvHarvest&, const EnvHarvest&) = default;
};

struct EnvConfig {
  /// Master switch. Disabled ⇒ no Environment is constructed, no extra Rng
  /// draws happen, and every golden digest is bit-identical.
  bool enabled = false;
  /// Baseline attenuation per unit of obstructed path (AABB + terrain),
  /// applied as a success-probability factor exp(-atten_per_unit * depth).
  double atten_per_unit = 0.0;  ///< >= 0
  /// Obstruction depth at which a link is severed outright (factor 0).
  /// 0 disables severing (attenuation only).
  double sever_depth = 0.0;  ///< >= 0
  std::vector<EnvObstacle> obstacles;
  EnvTerrain terrain;
  EnvWater water;
  EnvHarvest harvest;

  friend bool operator==(const EnvConfig&, const EnvConfig&) = default;
};

class Environment {
 public:
  /// `domain` is the deployment box (Network::domain()); it anchors the
  /// terrain surface and the water column. Construction precomputes the
  /// obstacle index; no Rng is ever consulted.
  Environment(EnvConfig cfg, const Aabb& domain);

  /// Total obstructed path length of segment a—b through the AABB
  /// obstacles and the terrain body, in position units. Exactly symmetric:
  /// endpoints are canonicalized before any arithmetic, so
  /// obstruction_depth(a, b) == obstruction_depth(b, a) bit-for-bit.
  double obstruction_depth(const Vec3& a, const Vec3& b) const;

  /// Grid-free oracle with the identical per-obstacle math (the property
  /// battery cross-checks the accelerated path against this on randomized
  /// worlds; results are bit-identical).
  double obstruction_depth_brute(const Vec3& a, const Vec3& b) const;

  /// Multiplicative success-probability factor for the link a—b, in
  /// [0, 1]. 1.0 exactly for an unobstructed, surface link; 0.0 when the
  /// obstruction depth reaches sever_depth.
  double link_factor(const Vec3& a, const Vec3& b) const;

  /// True when the line of sight is severed (link_factor == 0).
  bool blocked(const Vec3& a, const Vec3& b) const {
    return link_factor(a, b) == 0.0;
  }

  /// Amp-energy multiplier (>= 1) for a transmission a -> b: 1 + the
  /// water amp_depth_scale times the link's mean submerged depth. The
  /// simulator scales only the amplifier part of tx_energy by this.
  double tx_amp_factor(const Vec3& a, const Vec3& b) const;

  /// Joules a node at `p` harvests this round (>= 0).
  double harvest_rate(const Vec3& p) const;
  bool harvest_active() const noexcept { return cfg_.harvest.per_round > 0.0; }

  /// Terrain surface height over (x, y); domain lo.z when terrain is off.
  double terrain_height(double x, double y) const;
  /// Water surface z (domain hi.z when water is off).
  double water_surface_z() const noexcept { return surface_z_; }

  const EnvConfig& config() const noexcept { return cfg_; }
  const Aabb& domain() const noexcept { return domain_; }

 private:
  struct Occlusion {
    double depth = 0.0;  ///< obstructed path length (AABB + terrain)
    double atten = 0.0;  ///< accumulated attenuation exponent (water excl.)
  };
  /// Canonicalizes the endpoint order, then accumulates depth/attenuation
  /// over `candidates` (obstacle indices, ascending) plus the terrain.
  Occlusion occlude(Vec3 a, Vec3 b,
                    const std::vector<std::size_t>& candidates) const;
  /// Length of segment a—b below the water surface, and the mean submerged
  /// depth over the whole segment (both 0 when water is off).
  void water_clip(const Vec3& a, const Vec3& b, double* submerged_len,
                  double* mean_depth) const;

  EnvConfig cfg_;
  Aabb domain_;
  double surface_z_ = 0.0;
  /// Obstacle index: grid over box centers, queried with the segment
  /// midpoint and a radius of half the segment length plus the largest
  /// obstacle half-diagonal. Built only past a small obstacle count — the
  /// brute scan wins below it.
  std::unique_ptr<SpatialGrid> grid_;
  double max_half_diag_ = 0.0;
  std::vector<std::size_t> all_indices_;    // 0..n-1, for the brute path
  mutable std::vector<std::size_t> scratch_;  // grid query buffer
};

}  // namespace qlec
