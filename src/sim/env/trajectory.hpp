// Mobile base-station / data-mule trajectories (DESIGN.md §16). The BS
// position becomes a pure function of the round index — a waypoint
// polyline walked at constant speed, or a circular orbit — advanced by the
// simulator at the top of every round, on the main thread, before any
// other phase runs. The layer draws no randomness and touches no per-node
// state, so RNG streams, shard invariance, and (with kind == none, the
// default) every committed golden digest are untouched.
//
// Composition with BsPlacement: the scenario's placement keeps its role as
// the ANCHOR. Waypoint paths start at the placed position and walk toward
// the configured waypoints; orbits ignore the anchor's x/y (the circle is
// explicit) but default their center to it when unset is not expressible —
// worlds state the center explicitly.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "geom/vec3.hpp"

namespace qlec {

enum class TrajectoryKind {
  kNone = 0,  ///< static BS (the default; digest-neutral)
  kWaypoint,  ///< constant-speed polyline through `waypoints`
  kOrbit,     ///< circle of `orbit_radius` around `orbit_center`
};

/// Canonical config-file token ("none" / "waypoint" / "orbit").
const char* trajectory_kind_name(TrajectoryKind k) noexcept;
/// Inverse of trajectory_kind_name; nullopt for unknown tokens.
std::optional<TrajectoryKind> trajectory_kind_from_name(
    std::string_view name) noexcept;

/// Serialized as the top-level "bs": {"trajectory": {...}} config block.
struct BsTrajectoryConfig {
  TrajectoryKind kind = TrajectoryKind::kNone;
  /// Waypoint mode: the polyline the BS walks, starting from the
  /// scenario's BsPlacement anchor toward waypoints[0], [1], ...
  std::vector<Vec3> waypoints;
  double speed = 0.0;  ///< >= 0, position units advanced per round
  /// Waypoint mode: wrap back to the anchor after the last waypoint
  /// (closed patrol loop) instead of parking there.
  bool loop = false;
  Vec3 orbit_center{};        ///< orbit mode: circle center
  double orbit_radius = 0.0;  ///< >= 0
  int orbit_period = 1;       ///< >= 1, rounds per full revolution

  friend bool operator==(const BsTrajectoryConfig&,
                         const BsTrajectoryConfig&) = default;
};

class BsTrajectory {
 public:
  /// `anchor` is the scenario's static BS position (bs_position of the
  /// configured BsPlacement) — the waypoint path's starting point.
  BsTrajectory(const BsTrajectoryConfig& cfg, const Vec3& anchor);

  bool active() const noexcept { return cfg_.kind != TrajectoryKind::kNone; }

  /// BS position at the START of `round` (round 0 is the first simulated
  /// round). A pure function of `round`: replays, shard counts, and
  /// ExecPolicy cannot perturb it.
  Vec3 position(int round) const;

  const BsTrajectoryConfig& config() const noexcept { return cfg_; }

 private:
  BsTrajectoryConfig cfg_;
  Vec3 anchor_;             ///< the static placement (kNone fallback)
  std::vector<Vec3> pts_;   ///< anchor + waypoints (waypoint mode)
  std::vector<double> cum_; ///< cumulative arc length at pts_[i]
  double total_ = 0.0;      ///< full path length
};

}  // namespace qlec
