#include "sim/env/trajectory.hpp"

#include <cmath>
#include <numbers>

namespace qlec {

const char* trajectory_kind_name(TrajectoryKind k) noexcept {
  switch (k) {
    case TrajectoryKind::kNone: return "none";
    case TrajectoryKind::kWaypoint: return "waypoint";
    case TrajectoryKind::kOrbit: return "orbit";
  }
  return "?";
}

std::optional<TrajectoryKind> trajectory_kind_from_name(
    std::string_view name) noexcept {
  if (name == "none") return TrajectoryKind::kNone;
  if (name == "waypoint") return TrajectoryKind::kWaypoint;
  if (name == "orbit") return TrajectoryKind::kOrbit;
  return std::nullopt;
}

BsTrajectory::BsTrajectory(const BsTrajectoryConfig& cfg, const Vec3& anchor)
    : cfg_(cfg), anchor_(anchor) {
  if (cfg_.kind != TrajectoryKind::kWaypoint) return;
  pts_.push_back(anchor);
  for (const Vec3& w : cfg_.waypoints) pts_.push_back(w);
  if (cfg_.loop && pts_.size() > 1) pts_.push_back(anchor);  // close the loop
  cum_.assign(pts_.size(), 0.0);
  for (std::size_t i = 1; i < pts_.size(); ++i)
    cum_[i] = cum_[i - 1] + distance(pts_[i - 1], pts_[i]);
  total_ = cum_.empty() ? 0.0 : cum_.back();
}

Vec3 BsTrajectory::position(int round) const {
  switch (cfg_.kind) {
    case TrajectoryKind::kNone:
      break;
    case TrajectoryKind::kWaypoint: {
      if (pts_.empty()) break;
      if (total_ <= 0.0 || cfg_.speed <= 0.0) return pts_.front();
      double s = cfg_.speed * static_cast<double>(round);
      if (cfg_.loop) {
        s = std::fmod(s, total_);
      } else if (s >= total_) {
        return pts_.back();  // parked at the final waypoint
      }
      // Walk the polyline to the segment containing arc distance s.
      std::size_t i = 1;
      while (i + 1 < cum_.size() && cum_[i] <= s) ++i;
      const double seg = cum_[i] - cum_[i - 1];
      const double t = seg > 0.0 ? (s - cum_[i - 1]) / seg : 0.0;
      return lerp(pts_[i - 1], pts_[i], t);
    }
    case TrajectoryKind::kOrbit: {
      const int period = cfg_.orbit_period > 0 ? cfg_.orbit_period : 1;
      // Integer phase first: round N*period reproduces round 0 exactly.
      const int phase = round % period;
      const double theta = 2.0 * std::numbers::pi *
                           static_cast<double>(phase) /
                           static_cast<double>(period);
      return cfg_.orbit_center + Vec3{cfg_.orbit_radius * std::cos(theta),
                                      cfg_.orbit_radius * std::sin(theta),
                                      0.0};
    }
  }
  return anchor_;
}

}  // namespace qlec
