#include "sim/env/env.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <utility>

namespace qlec {
namespace {

/// Below this obstacle count the linear scan beats the grid (build cost +
/// hash lookups); the two paths are bit-identical either way.
constexpr std::size_t kGridMinObstacles = 9;

/// Midpoint samples per segment for the terrain submersion test. The
/// sample set { (i + 0.5) / K } is symmetric under t -> 1 - t, and the
/// endpoints are canonicalized before sampling, so the terrain depth is
/// exactly symmetric in (a, b).
constexpr int kTerrainSamples = 16;

/// Orders the segment endpoints lexicographically so every downstream
/// float operation sees the same operands regardless of call direction.
void canonicalize(Vec3& a, Vec3& b) {
  const bool swap =
      (b.x < a.x) ||
      (b.x == a.x && (b.y < a.y || (b.y == a.y && b.z < a.z)));
  if (swap) std::swap(a, b);
}

/// Path length of segment a—b (param length `len`) inside `box`, by slab
/// clipping. 0 for a miss or a degenerate graze.
double segment_box_overlap(const Vec3& a, const Vec3& b, const Aabb& box,
                           double len) {
  const double av[3] = {a.x, a.y, a.z};
  const double bv[3] = {b.x, b.y, b.z};
  const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
  const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
  double t0 = 0.0;
  double t1 = 1.0;
  for (int i = 0; i < 3; ++i) {
    const double d = bv[i] - av[i];
    if (d == 0.0) {
      if (av[i] < lo[i] || av[i] > hi[i]) return 0.0;
      continue;
    }
    double ta = (lo[i] - av[i]) / d;
    double tb = (hi[i] - av[i]) / d;
    if (ta > tb) std::swap(ta, tb);
    if (ta > t0) t0 = ta;
    if (tb < t1) t1 = tb;
    if (t0 >= t1) return 0.0;
  }
  return (t1 - t0) * len;
}

/// The sample_terrain ridge function (geom/sampling.cpp): two crossed
/// sinusoids over normalized (u, v).
double ridge(double u, double v) {
  return 0.5 * (std::sin(2.0 * std::numbers::pi * (2.0 * u + 0.3)) +
                std::cos(2.0 * std::numbers::pi * (1.5 * v - 0.1)));
}

}  // namespace

Environment::Environment(EnvConfig cfg, const Aabb& domain)
    : cfg_(std::move(cfg)), domain_(domain) {
  const double ez = domain_.extent().z;
  surface_z_ = cfg_.water.enabled
                   ? domain_.lo.z + cfg_.water.surface_frac * ez
                   : domain_.hi.z;
  all_indices_.resize(cfg_.obstacles.size());
  std::iota(all_indices_.begin(), all_indices_.end(), std::size_t{0});
  for (const EnvObstacle& o : cfg_.obstacles)
    max_half_diag_ = std::max(max_half_diag_, 0.5 * o.box.extent().norm());
  if (cfg_.obstacles.size() >= kGridMinObstacles && max_half_diag_ > 0.0) {
    std::vector<Vec3> centers;
    centers.reserve(cfg_.obstacles.size());
    for (const EnvObstacle& o : cfg_.obstacles)
      centers.push_back(o.box.center());
    grid_ = std::make_unique<SpatialGrid>(centers, 2.0 * max_half_diag_);
  }
}

Environment::Occlusion Environment::occlude(
    Vec3 a, Vec3 b, const std::vector<std::size_t>& candidates) const {
  canonicalize(a, b);
  const double len = distance(a, b);
  Occlusion occ;
  if (len == 0.0) return occ;
  for (const std::size_t i : candidates) {
    const EnvObstacle& o = cfg_.obstacles[i];
    const double d = segment_box_overlap(a, b, o.box, len);
    if (d > 0.0) {
      occ.depth += d;
      occ.atten += (cfg_.atten_per_unit + o.extra_atten) * d;
    }
  }
  if (cfg_.terrain.enabled) {
    int below = 0;
    for (int i = 0; i < kTerrainSamples; ++i) {
      const double t = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(kTerrainSamples);
      const Vec3 p = lerp(a, b, t);
      if (p.z < terrain_height(p.x, p.y)) ++below;
    }
    if (below > 0) {
      const double d = len * static_cast<double>(below) /
                       static_cast<double>(kTerrainSamples);
      occ.depth += d;
      occ.atten += cfg_.atten_per_unit * d;
    }
  }
  return occ;
}

double Environment::obstruction_depth(const Vec3& a, const Vec3& b) const {
  if (grid_ == nullptr) return occlude(a, b, all_indices_).depth;
  const Vec3 mid = (a + b) * 0.5;
  const double radius = 0.5 * distance(a, b) + max_half_diag_;
  grid_->query_into(mid, radius, scratch_);
  // Ascending index order: candidate sums accumulate in the same order the
  // brute path visits them, so the two are bit-identical (misses add 0).
  std::sort(scratch_.begin(), scratch_.end());
  return occlude(a, b, scratch_).depth;
}

double Environment::obstruction_depth_brute(const Vec3& a,
                                            const Vec3& b) const {
  return occlude(a, b, all_indices_).depth;
}

double Environment::link_factor(const Vec3& a, const Vec3& b) const {
  Occlusion occ;
  if (grid_ == nullptr) {
    occ = occlude(a, b, all_indices_);
  } else {
    const Vec3 mid = (a + b) * 0.5;
    const double radius = 0.5 * distance(a, b) + max_half_diag_;
    grid_->query_into(mid, radius, scratch_);
    std::sort(scratch_.begin(), scratch_.end());
    occ = occlude(a, b, scratch_);
  }
  if (cfg_.sever_depth > 0.0 && occ.depth >= cfg_.sever_depth) return 0.0;
  double atten = occ.atten;
  if (cfg_.water.enabled && cfg_.water.alpha_per_unit > 0.0) {
    double submerged = 0.0;
    double mean_depth = 0.0;
    water_clip(a, b, &submerged, &mean_depth);
    atten += cfg_.water.alpha_per_unit * submerged;
  }
  // atten == 0 returns exactly 1.0 — the zero-obstruction world stays
  // byte-identical to an env-disabled run.
  return atten > 0.0 ? std::exp(-atten) : 1.0;
}

double Environment::tx_amp_factor(const Vec3& a, const Vec3& b) const {
  if (!cfg_.water.enabled || cfg_.water.amp_depth_scale <= 0.0) return 1.0;
  double submerged = 0.0;
  double mean_depth = 0.0;
  water_clip(a, b, &submerged, &mean_depth);
  return mean_depth > 0.0 ? 1.0 + cfg_.water.amp_depth_scale * mean_depth
                          : 1.0;
}

double Environment::harvest_rate(const Vec3& p) const {
  if (cfg_.harvest.per_round <= 0.0) return 0.0;
  double depth = 0.0;
  if (cfg_.water.enabled) {
    depth = std::max(0.0, surface_z_ - p.z);
  } else if (cfg_.terrain.enabled) {
    depth = std::max(0.0, terrain_height(p.x, p.y) - p.z);
  }
  double factor = 1.0;
  if (depth > 0.0 && cfg_.harvest.depth_decay > 0.0)
    factor = std::max(cfg_.harvest.min_factor,
                      std::exp(-cfg_.harvest.depth_decay * depth));
  return cfg_.harvest.per_round * factor;
}

double Environment::terrain_height(double x, double y) const {
  if (!cfg_.terrain.enabled) return domain_.lo.z;
  const Vec3 e = domain_.extent();
  const double u = (x - domain_.lo.x) / (e.x > 0 ? e.x : 1.0);
  const double v = (y - domain_.lo.y) / (e.y > 0 ? e.y : 1.0);
  return domain_.lo.z + cfg_.terrain.base_frac * e.z +
         cfg_.terrain.amplitude_frac * e.z * ridge(u, v);
}

void Environment::water_clip(const Vec3& a_in, const Vec3& b_in,
                             double* submerged_len,
                             double* mean_depth) const {
  *submerged_len = 0.0;
  *mean_depth = 0.0;
  if (!cfg_.water.enabled) return;
  Vec3 a = a_in;
  Vec3 b = b_in;
  canonicalize(a, b);
  const double len = distance(a, b);
  const double da = surface_z_ - a.z;  // endpoint depths (positive = under)
  const double db = surface_z_ - b.z;
  if (da <= 0.0 && db <= 0.0) return;
  if (da >= 0.0 && db >= 0.0) {
    *submerged_len = len;
    *mean_depth = 0.5 * (da + db);
    return;
  }
  // One endpoint above, one below: the linear depth crosses zero at t*.
  const double t_star = da / (da - db);
  if (da > 0.0) {
    *submerged_len = len * t_star;
    *mean_depth = 0.5 * da * t_star;
  } else {
    *submerged_len = len * (1.0 - t_star);
    *mean_depth = 0.5 * db * (1.0 - t_star);
  }
}

}  // namespace qlec
