#include "sim/controller.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/leach.hpp"

namespace qlec {

const char* controller_kind_name(ControllerKind k) noexcept {
  return k == ControllerKind::kRlLite ? "rl-lite" : "passthrough";
}

void PassthroughController::select_heads(const Network& net, int round,
                                         double death_line, Rng& rng,
                                         std::vector<int>& heads) {
  heads.clear();
  int best_fallback = kBaseStationId;
  double best_energy = -1.0;
  for (const SensorNode& n : net.nodes()) {
    if (!n.operational(death_line)) continue;
    if (n.battery.residual() > best_energy) {
      best_energy = n.battery.residual();
      best_fallback = n.id;
    }
    if (!leach_eligible(n.last_head_round, round, p_)) continue;
    if (rng.uniform01() < leach_threshold(p_, round)) heads.push_back(n.id);
  }
  if (heads.empty() && best_fallback != kBaseStationId)
    heads.push_back(best_fallback);
}

std::size_t RlLiteController::state_bucket(const Network& net) {
  const double init = net.total_initial_energy();
  const double frac =
      init > 0.0 ? net.total_residual_energy() / init : 0.0;
  const auto b = static_cast<long long>(frac * static_cast<double>(kStates));
  return static_cast<std::size_t>(
      std::clamp<long long>(b, 0, static_cast<long long>(kStates) - 1));
}

void RlLiteController::select_heads(const Network& net, int round,
                                    double death_line, Rng& rng,
                                    std::vector<int>& heads) {
  (void)round;
  heads.clear();
  const std::size_t s = state_bucket(net);

  // Epsilon-greedy over the k-multiplier actions; the explore draw comes
  // first so the stream position is identical whichever branch wins.
  std::size_t a;
  if (rng.uniform01() < opt_.epsilon) {
    a = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kMultipliers.size())));
  } else {
    a = 0;
    for (std::size_t i = 1; i < kMultipliers.size(); ++i)
      if (q_[s][i] > q_[s][a]) a = i;  // strict >: ties keep the lower index
  }

  const auto want = static_cast<std::size_t>(std::max<long long>(
      1, std::llround(static_cast<double>(base_k_) * kMultipliers[a])));

  // Centralized selection: the `want` operational nodes with the most
  // residual energy (ties to the lower id), reported in ascending id order.
  std::vector<int> alive = net.alive_ids(death_line);
  std::erase_if(alive, [&](int id) { return !net.node(id).up; });
  std::sort(alive.begin(), alive.end(), [&](int lhs, int rhs) {
    const double el = net.node(lhs).battery.residual();
    const double er = net.node(rhs).battery.residual();
    if (el != er) return el > er;
    return lhs < rhs;
  });
  if (alive.size() > want) alive.resize(want);
  std::sort(alive.begin(), alive.end());
  heads = std::move(alive);

  pending_ = true;
  state_ = s;
  action_ = a;
  residual_before_ = net.total_residual_energy();
}

void RlLiteController::on_round_end(const Network& net, int round) {
  (void)round;
  if (!pending_) return;
  pending_ = false;
  const double init = net.total_initial_energy();
  const double drop = residual_before_ - net.total_residual_energy();
  // Negative normalized energy burn, scaled so one round's signal is O(1)
  // against the Q-values' unit initialization.
  const double reward = init > 0.0 ? -100.0 * drop / init : 0.0;
  const std::size_t s2 = state_bucket(net);
  const double best_next =
      *std::max_element(q_[s2].begin(), q_[s2].end());
  double& q = q_[state_][action_];
  q += opt_.alpha * (reward + opt_.gamma * best_next - q);
  ++updates_;
}

std::unique_ptr<Controller> make_controller(const ControllerOptions& opt,
                                            std::size_t base_k, double p) {
  if (opt.kind == ControllerKind::kPassthrough)
    return std::make_unique<PassthroughController>(p);
  return std::make_unique<RlLiteController>(base_k, opt);
}

}  // namespace qlec
