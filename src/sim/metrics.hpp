// Result records produced by the simulator and their cross-seed aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/ledger.hpp"
#include "sim/audit.hpp"
#include "sim/fault/resilience.hpp"
#include "sim/mac/mac.hpp"
#include "util/stats.hpp"

namespace qlec {

/// Per-round snapshot for time-series analysis (alive-nodes curves,
/// residual-energy decay, head-count stability).
struct RoundStats {
  int round = 0;
  std::size_t alive = 0;
  std::size_t heads = 0;
  double total_residual = 0.0;
  std::uint64_t generated = 0;   ///< cumulative
  std::uint64_t delivered = 0;   ///< cumulative
};

/// Outcome of a single simulation run.
struct SimResult {
  std::string protocol;

  // Packet accounting.
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost_link = 0;   ///< exceeded retries on a lossy link
  std::uint64_t lost_queue = 0;  ///< overflowed a cluster-head cache
  std::uint64_t lost_dead = 0;   ///< stranded at a node that died
  /// Packet delivery rate in [0,1]; 1 when nothing was generated.
  double pdr() const noexcept;

  // Energy.
  EnergyLedger energy;
  /// Sum of battery draw across nodes (== ledger total up to clamping at
  /// empty batteries).
  double total_energy_consumed = 0.0;
  std::vector<double> per_node_consumed;  ///< joules, indexed by node id
  std::vector<double> per_node_rate;      ///< consumed / initial

  // Lifespan (rounds, 0-based; -1 = did not happen within the run).
  int first_death_round = -1;  ///< FND — the paper's lifespan metric
  int half_death_round = -1;   ///< HND
  int last_death_round = -1;   ///< LND (all nodes below the death line)
  int rounds_completed = 0;

  // Latency of delivered packets, in slots.
  RunningStats latency;

  // Cluster structure.
  RunningStats heads_per_round;

  /// Total Q evaluations when the protocol is QLEC (0 otherwise).
  std::size_t q_evaluations = 0;

  /// One entry per completed round when TraceOptions::record is set;
  /// empty otherwise.
  std::vector<RoundStats> trace;

  /// Invariant-check outcome when SimConfig::audit is set (rounds_audited
  /// == 0 otherwise). See sim/audit.hpp for what is verified.
  AuditReport audit;

  /// Fault counts, per-class loss attribution, per-round delivery rows, and
  /// recovery time when SimConfig::fault is enabled (inert otherwise). See
  /// sim/fault/resilience.hpp.
  ResilienceStats resilience;

  /// MAC-layer contention counters (collisions, retransmits, backoff,
  /// capture wins, per-cause drops) with per-round rows when
  /// SimConfig::mac is enabled (inert otherwise). See sim/mac/mac.hpp.
  MacStats mac;
};

/// Canonical 64-bit FNV-1a digest of a RoundStats trace. Hashes every field
/// (doubles by bit pattern) in little-endian byte order, so the digest is
/// stable across runs, thread counts, and platforms with IEEE-754 doubles —
/// the foundation of the golden-trace replay harness in tests/golden/.
std::uint64_t trace_digest(const std::vector<RoundStats>& trace) noexcept;

/// `trace_digest` formatted as 16 lowercase hex digits (the on-disk golden
/// format).
std::string trace_digest_hex(const std::vector<RoundStats>& trace);

/// CSV export of a trace: header `round,alive,heads,residual_j,generated,
/// delivered` plus one row per round.
std::string trace_to_csv(const std::vector<RoundStats>& trace);

/// Mean/CI aggregation of SimResults across seeds.
struct AggregatedMetrics {
  std::string protocol;
  RunningStats pdr;
  RunningStats total_energy;
  RunningStats first_death;   ///< runs where FND never happened contribute
                              ///< rounds_completed (a lower bound)
  RunningStats half_death;
  RunningStats mean_latency;
  RunningStats heads_per_round;
  RunningStats delivered;
  RunningStats generated;
  // Loss breakdown (same classification as the SimResult counters).
  RunningStats lost_link;
  RunningStats lost_queue;
  RunningStats lost_dead;
  /// Recovery time across faulted runs that saw a disruption (runs with
  /// recovery_rounds < 0 contribute nothing).
  RunningStats recovery_rounds;

  void add(const SimResult& r);
};

}  // namespace qlec
