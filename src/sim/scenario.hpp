// Scenario builders: deployment geometry + energy provisioning for the
// paper's experiments and the examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace qlec {

/// Deployment geometry for an experiment. A closed enum (rather than a
/// free-form string) so the config layer can reject unknown deployments at
/// parse time with a path-qualified error instead of mid-run.
enum class Deployment {
  kUniform,  ///< uniform random placement in the cube (the paper's setting)
  kTerrain,  ///< ridged height-field placement (mountain scenarios)
};

/// Canonical token ("uniform" / "terrain") — the config-file spelling.
const char* deployment_name(Deployment d) noexcept;

/// Inverse of deployment_name; nullopt for unknown tokens.
std::optional<Deployment> deployment_from_name(std::string_view name) noexcept;

/// Where the sink sits relative to the M x M x M cube. The paper's §5.1
/// (k_opt ≈ 5 for N = 100, M = 200) is consistent with a sink on the cube
/// surface — the natural placement for its underwater/mountain motivation —
/// so kTopFaceCenter is the default; kCenter matches the Fig. 1 sketch.
enum class BsPlacement {
  kCenter,         ///< cube centroid (Fig. 1)
  kTopFaceCenter,  ///< center of the z = M face (surface sink; default)
  kCorner,         ///< cube corner
  kExternal,       ///< M/2 above the top face (remote collector)
};

Vec3 bs_position(BsPlacement placement, const Aabb& box);

struct ScenarioConfig {
  std::size_t n = 100;          ///< node count (paper: 100)
  double m_side = 200.0;        ///< cube side (paper: 200 units)
  double initial_energy = 5.0;  ///< joules per node (paper: 5 J)
  /// Relative spread of initial energy: node i gets
  /// initial_energy * (1 + U(-h, +h)). 0 = homogeneous (paper §5.1).
  double energy_heterogeneity = 0.0;
  BsPlacement bs = BsPlacement::kTopFaceCenter;

  friend bool operator==(const ScenarioConfig&, const ScenarioConfig&) =
      default;
};

/// Uniform random deployment in the cube (the paper's setting).
Network make_uniform_network(const ScenarioConfig& cfg, Rng& rng);

/// Mountainous deployment: nodes follow a ridged height-field (DESIGN.md;
/// exercises the paper's non-flat motivation).
Network make_terrain_network(const ScenarioConfig& cfg, Rng& rng);

}  // namespace qlec
