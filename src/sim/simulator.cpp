#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "energy/radio_model.hpp"
#include "geom/region_shards.hpp"
#include "net/queue.hpp"
#include "net/traffic.hpp"
#include "obs/telemetry.hpp"
#include "sim/audit.hpp"
#include "sim/mac/engine.hpp"
#include "util/thread_pool.hpp"

namespace qlec {
namespace {

/// A packet waiting at a node that is no longer able to forward it this
/// round (leftover head-cache content); re-injected next round.
struct Stranded {
  int holder;
  Packet packet;
};

/// Structure-of-arrays round state (DESIGN.md §8). The per-node facts the
/// inner loops touch — position, residual energy, liveness, head flag — are
/// mirrored into flat contiguous arrays indexed by node id, refreshed once
/// per round after election and written through on every battery mutation.
/// The authoritative state stays in Network/Battery; the mirrors exist so
/// the per-packet path never chases SensorNode pointers or recomputes
/// predicates, and they are kept exact (every value is read back from the
/// battery right after the mutation), so traces stay bit-identical.
struct RoundState {
  std::vector<Vec3> pos;              // position snapshot (post-mobility)
  std::vector<double> residual;       // battery residual, write-through
  std::vector<std::uint8_t> alive;    // residual > death_line, write-through
  std::vector<std::uint8_t> is_head;  // this round's head flags
  std::vector<int> heads;             // this round's head ids, in id order
  /// node id -> queue slot in the reusable queue/fused pools below, or -1.
  /// Flat mode: identity (every node owns a persistent relay buffer).
  /// Cluster mode: heads[i] -> i, refreshed each round.
  std::vector<std::int32_t> queue_slot;
};

class SimRun {
 public:
  SimRun(Network& net, ClusteringProtocol& protocol, const SimConfig& cfg,
         Rng& rng)
      : net_(net),
        protocol_(protocol),
        cfg_(cfg),
        rng_(rng),
        radio_(cfg.radio),
        traffic_(net.size(), cfg.mean_interarrival, rng),
        mobility_(cfg.mobility, net.size()),
        bs_(net.bs()),
        flat_(protocol.flat_routing()) {
    result_.protocol = protocol.name();
    const std::size_t n = net.size();
    rs_.pos.resize(n);
    rs_.residual.resize(n);
    rs_.alive.resize(n);
    rs_.is_head.resize(n);
    rs_.queue_slot.assign(n, -1);
    if (cfg.fault.enabled) {
      // The fault stream folds one simulation-Rng draw into its seed so it
      // varies per seed yet replays exactly; with faults disabled the draw
      // never happens and the main stream is untouched.
      fault_.emplace(cfg.fault, n, cfg.death_line,
                     rng.next_u64() ^ cfg.fault.seed);
      result_.resilience.enabled = true;
    }
    if (cfg.mac.enabled) {
      // Same RNG-stream discipline as the fault injector: exactly one
      // main-stream draw folds into the MAC seed, and only when the
      // subsystem is on — disabled runs never see it, so their trajectory
      // (and every golden digest) is untouched. The order is part of the
      // contract: the fault draw (above) happens first when both are on.
      mac_.emplace(cfg.mac, rng.next_u64() ^ cfg.mac.seed);
      result_.mac.enabled = true;
    }
    if (cfg.env.enabled) {
      // The environment is RNG-free by construction (a pure function of
      // geometry), so unlike fault/mac it folds nothing into any seed and
      // the main stream is untouched whether it is on or off.
      env_.emplace(cfg.env, net.domain());
    }
    if (cfg.bs_trajectory.kind != TrajectoryKind::kNone) {
      // Also RNG-free: the sink advances along a closed-form path at round
      // boundaries on the main thread, so shard invariance is untouched.
      traj_.emplace(cfg.bs_trajectory, net.bs());
    }
    if (cfg.audit.enabled) {
      result_.energy.enable_per_node(n);
      auditor_.emplace(net, cfg.death_line, flat_,
                       cfg.harvest_per_round > 0.0 ||
                           (cfg.env.enabled && cfg.env.harvest.per_round > 0.0),
                       cfg.audit.throw_on_violation, cfg.fault.enabled);
    }
    if (cfg.telemetry.enabled) {
      // Strictly observational (no Rng draws, no state influence): the
      // trajectory is bit-identical with telemetry on or off.
      telemetry_ = std::make_unique<obs::Telemetry>(cfg.telemetry);
      tracer_ = telemetry_->tracer();
      retries_ = &telemetry_->metrics().counter("sim.tx.retries");
      protocol.set_telemetry(telemetry_.get());
      if (fault_) fault_->set_telemetry(telemetry_.get());
    }
    if (cfg.exec.shards > 1) {
      // The run owns its OWN pool (never a caller's): a SimRun executing
      // inside the experiment fan-out pool must not schedule shard tasks
      // onto the pool it is itself a task of — nested parallel_for on one
      // pool can deadlock. Pool width caps at the hardware, but the shard
      // DECOMPOSITION follows cfg exactly, so output is identical however
      // many workers actually run it.
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      shard_pool_ = std::make_unique<ThreadPool>(std::min<std::size_t>(
          static_cast<std::size_t>(cfg.exec.shards), hw));
      exec_ = std::make_unique<ExecContext>(shard_pool_.get(),
                                            cfg.exec.shards);
      protocol.set_exec(exec_.get());
    }
  }

  ~SimRun() {
    // The protocol outlives this run; never leave it a dangling context.
    if (telemetry_ != nullptr) protocol_.set_telemetry(nullptr);
    if (exec_ != nullptr) protocol_.set_exec(nullptr);
  }

  SimResult run();

 private:
  bool alive(int id) const {
    return rs_.alive[static_cast<std::size_t>(id)] != 0;
  }

  double dist(int from, int to) const {
    const Vec3& a = rs_.pos[static_cast<std::size_t>(from)];
    const Vec3& b = to == kBaseStationId
                        ? bs_
                        : rs_.pos[static_cast<std::size_t>(to)];
    return distance(a, b);
  }

  void charge(int id, EnergyUse use, double joules) {
    Battery& b = net_.node(id).battery;
    result_.energy.charge(use, b.consume(joules), id);
    sync_battery(id, b);
  }

  /// Re-reads one node's battery into the SoA mirror (after any mutation).
  /// Liveness folds in the fault-layer up flag: a crashed or stunned node
  /// is not alive no matter its residual.
  void sync_battery(int id, const Battery& b) {
    const auto i = static_cast<std::size_t>(id);
    rs_.residual[i] = b.residual();
    rs_.alive[i] =
        (b.alive(cfg_.death_line) && net_.node(id).up) ? 1 : 0;
  }

  /// Refreshes the whole round state from the network: positions (mobility
  /// ran), batteries (the protocol's control phase drained energy), and the
  /// freshly elected head set.
  void refresh_round_state() {
    const std::vector<SensorNode>& nodes = net_.nodes();
    const auto refresh_one = [&](std::size_t i) {
      const SensorNode& n = nodes[i];
      rs_.pos[i] = n.pos;
      rs_.residual[i] = n.battery.residual();
      rs_.alive[i] = n.operational(cfg_.death_line) ? 1 : 0;
      rs_.is_head[i] = n.is_head ? 1 : 0;
    };
    // Pure per-node mirror writes: sharded when the round partition is
    // live, with values independent of the decomposition.
    if (exec_ != nullptr && exec_->has_partition()) {
      exec_->for_shards([&](int s) {
        for (const std::uint32_t id : exec_->shard_nodes(s)) refresh_one(id);
      });
    } else {
      for (std::size_t i = 0; i < nodes.size(); ++i) refresh_one(i);
    }
    net_.head_ids_into(rs_.heads);
  }

  /// Member data path: route + transmit (with retries) + enqueue at a head
  /// or deliver straight to the BS.
  void deliver_from(int src, Packet p);

  /// Round-end uplink of one head's fused aggregate, following the
  /// protocol's uplink chain toward the BS.
  struct HeadBuffer {
    double bits = 0.0;
    std::vector<Packet> packets;
  };
  void deliver_aggregate(int head, HeadBuffer& buf);

  // ---- Contention-aware MAC sub-phase (engaged when cfg.mac.enabled;
  // DESIGN.md §14). deliver_from defers to a per-slot frame batch that one
  // MacEngine::resolve call plays out; round-end uplink chains advance one
  // hop per contention phase. ----

  /// Per-attempt channel success probability for `src` toward `target`
  /// over distance `d`, folding in any active fault link-degradation
  /// episode and the environment's obstruction factor (the MAC engine
  /// draws the Bernoulli from its own stream).
  double mac_link_p(int src, int target, double d) const {
    double p = target == kBaseStationId
                   ? cfg_.link.bs_success_probability(d)
                   : cfg_.link.success_probability(d);
    if (fault_ && fault_->link_factor() < 1.0) p *= fault_->link_factor();
    if (env_) p *= env_scale(src, target);
    return p;
  }

  /// Routes `p` once (main stream, canonical call order — this is what
  /// keeps MAC digests shard-invariant) and stages the frame for this
  /// slot's contention phase. MAC retransmissions keep the routed target:
  /// the engine retransmits a frame, it does not re-route the packet.
  void mac_enqueue(int src, Packet p) {
    const int target = protocol_.route(net_, src, p.bits, rng_);
    const double d = dist(src, target);
    MacFrame f;
    f.src = src;
    f.target = target;
    f.tag = static_cast<std::uint32_t>(mac_payload_.size());
    f.bits = p.bits;
    f.tx_j = tx_energy(src, target, p.bits, d);
    f.link_p = mac_link_p(src, target, d);
    f.src_pos = rs_.pos[static_cast<std::size_t>(src)];
    f.dst_pos = target == kBaseStationId
                    ? bs_
                    : rs_.pos[static_cast<std::size_t>(target)];
    ++p.hops;
    mac_frames_.push_back(f);
    mac_payload_.push_back(p);
  }

  /// Maps a terminal MAC drop of `count` packets onto the classic loss
  /// counters (packet conservation) and the fault-class refinements —
  /// mirroring the ideal path's attribution; the per-cause MAC refinement
  /// lives in MacCounters.
  void mac_attribute_loss(const MacFrame& f, MacLossCause cause,
                          std::uint64_t count) {
    switch (cause) {
      case MacLossCause::kSenderDown:
        result_.lost_dead += count;
        if (fault_down(f.src))
          result_.resilience.lost_at_down_node += count;
        break;
      case MacLossCause::kOverflow:
        result_.lost_queue += count;
        break;
      case MacLossCause::kTargetDown:
        result_.lost_link += count;
        if (fault_) {
          if (f.target == kBaseStationId && !bs_up())
            result_.resilience.lost_to_bs_outage += count;
          else if (f.target != kBaseStationId && fault_down(f.target))
            result_.resilience.lost_to_down_target += count;
        }
        break;
      case MacLossCause::kChannel:
        result_.lost_link += count;
        if (fault_ && fault_->link_factor() < 1.0)
          result_.resilience.lost_during_degradation += count;
        break;
      case MacLossCause::kCollision:
        result_.lost_link += count;
        break;
      case MacLossCause::kNone:
        break;
    }
  }

  /// Duty-cycle idle-listening drain for one contention phase: every
  /// operational radio listens for duty_cycle of each subslot the phase
  /// lasted. Fault-down radios are off (audit invariant d2).
  void mac_idle_energy() {
    const double j = cfg_.mac.duty_cycle * cfg_.mac.idle_j_per_subslot *
                     static_cast<double>(mac_->last_phase_subslots());
    if (j <= 0.0) return;
    for (SensorNode& node : net_.nodes()) {
      if (!node.operational(cfg_.death_line)) continue;
      result_.energy.charge(EnergyUse::kMac, node.battery.consume(j),
                            node.id);
      sync_battery(node.id, node.battery);
    }
  }

  /// Side effects for member/arrival frames (payload = mac_payload_[tag]).
  struct MemberMacHost final : MacHost {
    SimRun& s;
    explicit MemberMacHost(SimRun& r) : s(r) {}
    bool sender_up(const MacFrame& f) override { return s.alive(f.src); }
    bool target_listening(const MacFrame& f) override {
      return f.target == kBaseStationId ? s.bs_up() : s.alive(f.target);
    }
    void on_attempt(MacFrame& f, int attempt) override {
      // First attempt stays in the kTransmit bucket (comparable with the
      // ideal model); retransmissions are MAC overhead.
      s.charge(f.src,
               attempt == 0 ? EnergyUse::kTransmit : EnergyUse::kMac,
               f.tx_j);
    }
    bool on_decode(MacFrame& f) override {
      Packet& p = s.mac_payload_[f.tag];
      if (f.target == kBaseStationId) {
        s.record_delivery(p, s.global_slot_);
        return true;
      }
      s.charge(f.target, EnergyUse::kReceive, s.radio_.rx_energy(f.bits));
      const std::int32_t qs =
          s.rs_.queue_slot[static_cast<std::size_t>(f.target)];
      if (qs >= 0 && s.queues_[static_cast<std::size_t>(qs)].push(p)) {
        if (s.auditor_) s.auditor_->on_relay_accept(s.net_, f.target, true);
        return true;
      }
      return false;
    }
    void on_feedback(MacFrame& f, bool ack) override {
      s.protocol_.on_tx_result(s.net_, f.src, f.target, ack);
    }
    void on_drop(MacFrame& f, MacLossCause cause) override {
      s.mac_attribute_loss(f, cause, 1);
    }
  };

  /// Side effects for head-uplink frames (payload = the fused buffer of
  /// chain mac_chains_[tag]; a drop loses the whole aggregate).
  struct UplinkMacHost final : MacHost {
    SimRun& s;
    explicit UplinkMacHost(SimRun& r) : s(r) {}
    bool sender_up(const MacFrame& f) override { return s.alive(f.src); }
    bool target_listening(const MacFrame& f) override {
      return f.target == kBaseStationId ? s.bs_up() : s.alive(f.target);
    }
    void on_attempt(MacFrame& f, int attempt) override {
      s.charge(f.src,
               attempt == 0 ? EnergyUse::kTransmit : EnergyUse::kMac,
               f.tx_j);
    }
    bool on_decode(MacFrame& f) override {
      if (f.target == kBaseStationId) return true;  // recorded by the chain walk
      s.charge(f.target, EnergyUse::kReceive, s.radio_.rx_energy(f.bits));
      // Congestion check against the relay's remaining cache headroom, as
      // in deliver_aggregate.
      const std::int32_t qs =
          s.rs_.queue_slot[static_cast<std::size_t>(f.target)];
      if (qs >= 0 && s.cfg_.queue_capacity != 0 &&
          s.queues_[static_cast<std::size_t>(qs)].size() >=
              s.cfg_.queue_capacity)
        return false;
      if (s.auditor_) s.auditor_->on_relay_accept(s.net_, f.target, true);
      return true;
    }
    void on_feedback(MacFrame& f, bool ack) override {
      if (f.target == kBaseStationId)
        s.protocol_.on_uplink_result(s.net_, f.src, ack);
      else
        s.protocol_.on_tx_result(s.net_, f.src, f.target, ack);
    }
    void on_drop(MacFrame& f, MacLossCause cause) override {
      const HeadBuffer& buf = s.fused_[static_cast<std::size_t>(
          s.mac_chains_[f.tag].buf)];
      s.mac_attribute_loss(f, cause, buf.packets.size());
    }
  };

  /// Plays this slot's staged frame batch through one contention phase.
  void mac_resolve_slot() {
    if (mac_frames_.empty()) return;
    MemberMacHost host(*this);
    mac_->resolve(mac_frames_, host);
    mac_idle_energy();
    mac_frames_.clear();
    mac_payload_.clear();
  }

  /// Round-end uplinks under MAC: all live chains' current hops form one
  /// contention phase per wave (relaying heads genuinely interfere with
  /// each other), delivered chains to intermediate heads advance and
  /// contend again next wave.
  void mac_deliver_uplinks(const std::vector<int>& heads);

  /// Per-round telemetry roll-up (called only while telemetry is attached):
  /// packet counters advance by this round's cumulative deltas, liveness
  /// gauges refresh, and one "round_end" event summarizes the round.
  [[gnu::cold]] void emit_round_metrics(int round, std::size_t alive_now,
                                        std::size_t head_ct);

  /// MAC counter roll-up into the metrics registry (telemetry-attached,
  /// MAC-enabled rounds only). Naming: OBSERVABILITY.md "sim.mac.*".
  [[gnu::cold]] void emit_mac_metrics(const MacCounters& d) {
    obs::MetricsRegistry& m = telemetry_->metrics();
    m.counter("sim.mac.tx_attempts").inc(d.tx_attempts);
    m.counter("sim.mac.retransmits").inc(d.retransmits);
    m.counter("sim.mac.collisions").inc(d.collisions);
    m.counter("sim.mac.capture_wins").inc(d.capture_wins);
    m.counter("sim.mac.cca_busy").inc(d.cca_busy);
    m.counter("sim.mac.backoff_subslots").inc(d.backoff_subslots);
    m.counter("sim.mac.subslots").inc(d.subslots);
  }

  /// Retry bookkeeping, outlined so the Event construction never bloats
  /// the deliver loops (the hot path keeps only the null-telemetry test).
  [[gnu::noinline, gnu::cold]] void note_retry(int src, int target,
                                               int attempt) {
    retries_->inc();
    if (telemetry_->per_packet_events())
      telemetry_->emit(obs::Event("retry", cur_round_)
                           .with("src", src)
                           .with("target", target)
                           .with("attempt", attempt));
  }

  void record_delivery(Packet& p, std::int64_t slot) {
    p.deliver_slot = slot;
    ++result_.delivered;
    result_.latency.add(static_cast<double>(p.latency()));
  }

  /// Environment success-probability factor for the src -> target line of
  /// sight (1.0 with the environment off — and, critically, 1.0 EXACTLY
  /// for a zero-obstruction enabled world, which keeps the unscaled branch
  /// below and byte-identical traces).
  double env_scale(int src, int target) const {
    if (!env_) return 1.0;
    const Vec3& a = rs_.pos[static_cast<std::size_t>(src)];
    const Vec3& b = target == kBaseStationId
                        ? bs_
                        : rs_.pos[static_cast<std::size_t>(target)];
    return env_->link_factor(a, b);
  }

  /// Transmission cost src -> target: the radio model's tx_energy, with
  /// only the AMPLIFIER part scaled up for submerged links (underwater
  /// acoustics; the electronics cost is depth-independent). Factor 1.0
  /// reproduces radio_.tx_energy bit-for-bit.
  double tx_energy(int src, int target, double bits, double d) const {
    const double e = radio_.tx_energy(bits, d);
    if (!env_) return e;
    const Vec3& a = rs_.pos[static_cast<std::size_t>(src)];
    const Vec3& b = target == kBaseStationId
                        ? bs_
                        : rs_.pos[static_cast<std::size_t>(target)];
    const double f = env_->tx_amp_factor(a, b);
    if (f <= 1.0) return e;
    return e + (f - 1.0) * radio_.amp_energy(bits, d);
  }

  /// Channel attempt to a node target, scaled by any active link-quality
  /// degradation episode and the environment's obstruction factor. With
  /// both at exactly 1.0 the pre-fault/pre-env code path runs, so the
  /// Bernoulli compare — and the trace — is bit-identical; a scaled
  /// attempt still consumes exactly one draw (severed links included),
  /// keeping the main stream aligned with the unscaled run.
  bool link_attempt(int src, int target, double d) {
    double scale = env_scale(src, target);
    if (fault_) scale *= fault_->link_factor();
    if (scale >= 1.0) return cfg_.link.attempt(d, rng_);
    return rng_.bernoulli(cfg_.link.success_probability(d) * scale);
  }
  bool link_attempt_bs(int src, double d) {
    double scale = env_scale(src, kBaseStationId);
    if (fault_) scale *= fault_->link_factor();
    if (scale >= 1.0) return cfg_.link.attempt_bs(d, rng_);
    return rng_.bernoulli(cfg_.link.bs_success_probability(d) * scale);
  }
  /// False while a fault-injected BS outage window is active.
  bool bs_up() const { return !fault_ || fault_->bs_up(); }
  /// True when `id` is down specifically because of an injected fault.
  bool fault_down(int id) const { return fault_ && fault_->down(id); }

  Network& net_;
  ClusteringProtocol& protocol_;
  const SimConfig& cfg_;
  Rng& rng_;
  RadioModel radio_;
  PoissonTraffic traffic_;
  MobilityModel mobility_;
  SimResult result_;
  /// Current BS position. Static by default; a BsTrajectory rewrites it at
  /// the top of every round (together with net_.set_bs) before any phase
  /// reads a distance, so the whole round sees one consistent sink.
  Vec3 bs_;

  std::optional<SimAuditor> auditor_;  // engaged when cfg.audit.enabled
  std::optional<Environment> env_;     // engaged when cfg.env.enabled
  std::optional<BsTrajectory> traj_;   // engaged when a trajectory is set

  // Engaged when cfg.telemetry.enabled; all instrumented sites below guard
  // on these pointers, so the disabled path costs one null test each.
  std::unique_ptr<obs::Telemetry> telemetry_;
  obs::TraceRecorder* tracer_ = nullptr;  // null unless trace_phases
  obs::Counter* retries_ = nullptr;
  int cur_round_ = -1;  // for events emitted from the packet path
  // Previous-round cumulative totals, for per-round counter deltas.
  struct {
    std::uint64_t generated = 0, delivered = 0;
    std::uint64_t lost_link = 0, lost_queue = 0, lost_dead = 0;
  } emitted_;

  std::optional<MacEngine> mac_;  // engaged when cfg.mac.enabled
  std::vector<MacFrame> mac_frames_;  // per-phase frame batch scratch
  std::vector<Packet> mac_payload_;   // member-frame payloads, by tag
  /// One head-uplink chain: the fused_ buffer index it carries plus its
  /// current holder and hop count.
  struct UpChain {
    int holder;
    int buf;
    int hops;
  };
  std::vector<UpChain> mac_chains_;  // this wave's chains, by frame tag
  std::vector<UpChain> mac_active_;  // chains still short of the BS
  MacCounters mac_prev_;  // last round's cumulative totals, for deltas

  std::optional<FaultInjector> fault_;  // engaged when cfg.fault.enabled
  std::vector<FaultInjector::Fade> fade_ops_;  // per-round fade scratch
  std::vector<int> crashed_scratch_;           // per-round new-crash scratch
  std::uint64_t gen_at_round_start_ = 0;  // per-round resilience deltas
  std::uint64_t del_at_round_start_ = 0;
  bool saw_heads_ = false;  // protocol has elected >= 1 head at least once

  RoundState rs_;
  // Reusable pools indexed by rs_.queue_slot (grow-only; cleared per round
  // in cluster mode, persistent per node in flat mode). With these plus the
  // scratch buffers below, the slot loop performs no allocation once every
  // container has reached its high-water capacity.
  std::vector<PacketQueue> queues_;
  std::vector<HeadBuffer> fused_;
  std::vector<Stranded> carryover_;
  std::vector<Stranded> injections_;       // last round's carryover
  std::vector<Stranded> staged_;           // flat-mode two-phase service
  std::vector<std::size_t> arrivals_;      // per-slot Poisson arrivals

  // Engaged when cfg.exec.shards > 1: the run-owned shard pool and the
  // execution context handed to the protocol (see the ctor note on why the
  // pool is never borrowed from a caller).
  std::unique_ptr<ThreadPool> shard_pool_;
  std::unique_ptr<ExecContext> exec_;

  std::int64_t global_slot_ = 0;
  std::uint64_t next_packet_id_ = 0;
  bool flat_ = false;
  /// Hop budget per packet in flat mode; beyond it the route has cycled.
  static constexpr int kFlatHopCap = 64;
};

void SimRun::deliver_from(int src, Packet p) {
  if (!alive(src)) {
    ++result_.lost_dead;
    if (fault_down(src)) ++result_.resilience.lost_at_down_node;
    return;
  }
  if (flat_ && p.hops >= kFlatHopCap) {
    ++result_.lost_link;  // routing cycle / unreachable sink
    return;
  }
  // A node that is itself a head this round feeds its own cache directly
  // (sensing costs no radio energy).
  if (rs_.is_head[static_cast<std::size_t>(src)] != 0) {
    const std::int32_t qs = rs_.queue_slot[static_cast<std::size_t>(src)];
    if (qs >= 0 && queues_[static_cast<std::size_t>(qs)].push(p)) return;
    ++result_.lost_queue;
    return;
  }
  if (mac_) {
    // Contention-aware path: stage the frame for this slot's phase instead
    // of resolving the transmission inline.
    mac_enqueue(src, p);
    return;
  }

  bool last_failure_was_overflow = false;
  bool last_fail_bs_outage = false;
  bool last_fail_down_target = false;
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    // Re-consult the protocol on every retry: the failed b_i -> b_i
    // transition leaves the agent free to pick a different action.
    const int target = protocol_.route(net_, src, p.bits, rng_);
    if (attempt > 0 && telemetry_ != nullptr)
      note_retry(src, target, attempt);
    const double d = dist(src, target);
    charge(src, EnergyUse::kTransmit, tx_energy(src, target, p.bits, d));
    ++p.hops;
    // A BS in an outage window behaves like a down relay: the sender pays
    // for the attempt and gets no ACK (no channel draw — the receiver is
    // simply not listening).
    const bool target_up =
        target == kBaseStationId ? bs_up() : alive(target);
    const bool link_ok =
        target_up && (target == kBaseStationId ? link_attempt_bs(src, d)
                                               : link_attempt(src, target, d));
    last_fail_bs_outage = target == kBaseStationId && !target_up;
    last_fail_down_target =
        target != kBaseStationId && !target_up && fault_down(target);
    // The ACK only comes back if the radio delivered AND the head had
    // cache room ("limited storage caches of cluster heads may lead to
    // packet loss") — so queue overflow also trains the link estimator.
    bool ack = link_ok;
    if (link_ok && target != kBaseStationId) {
      charge(target, EnergyUse::kReceive, radio_.rx_energy(p.bits));
      const std::int32_t qs = rs_.queue_slot[static_cast<std::size_t>(target)];
      ack = qs >= 0 && queues_[static_cast<std::size_t>(qs)].push(p);
    }
    protocol_.on_tx_result(net_, src, target, ack);
    if (ack) {
      if (target == kBaseStationId) {
        record_delivery(p, global_slot_);
      } else if (auditor_) {
        auditor_->on_relay_accept(net_, target, target_up);
      }
      return;  // delivered to BS or safely cached at a head
    }
    last_failure_was_overflow = link_ok;
  }
  if (last_failure_was_overflow) {
    ++result_.lost_queue;  // congestion loss at a head cache
  } else {
    ++result_.lost_link;
    if (fault_) {
      // Attribute the loss to its fault class by what the final attempt
      // hit (refines lost_link; see ResilienceStats).
      ResilienceStats& res = result_.resilience;
      if (last_fail_bs_outage) {
        ++res.lost_to_bs_outage;
      } else if (last_fail_down_target) {
        ++res.lost_to_down_target;
      } else if (fault_->link_factor() < 1.0) {
        ++res.lost_during_degradation;
      }
    }
  }
}

void SimRun::deliver_aggregate(int head, HeadBuffer& buf) {
  if (buf.packets.empty()) return;
  int holder = head;
  int relay_hops = 0;
  // Head chains strictly descend toward the BS for well-formed protocols;
  // the cap guards against a buggy uplink_target cycling.
  constexpr int kMaxRelayHops = 64;
  while (relay_hops <= kMaxRelayHops) {
    if (!alive(holder)) {
      result_.lost_dead += buf.packets.size();
      if (fault_down(holder))
        result_.resilience.lost_at_down_node += buf.packets.size();
      return;
    }
    const int target = protocol_.uplink_target(net_, holder, rng_);
    bool success = false;
    bool target_up = false;
    for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
      if (attempt > 0 && telemetry_ != nullptr) retries_->inc();
      const double d = dist(holder, target);
      charge(holder, EnergyUse::kTransmit,
             tx_energy(holder, target, buf.bits, d));
      target_up = target == kBaseStationId ? bs_up() : alive(target);
      success = target_up && (target == kBaseStationId
                                  ? link_attempt_bs(holder, d)
                                  : link_attempt(holder, target, d));
      if (target == kBaseStationId) {
        protocol_.on_uplink_result(net_, holder, success);
      } else {
        protocol_.on_tx_result(net_, holder, target, success);
      }
      if (success) break;
    }
    if (!success) {
      result_.lost_link += buf.packets.size();
      if (fault_) {
        ResilienceStats& res = result_.resilience;
        if (target == kBaseStationId && !target_up) {
          res.lost_to_bs_outage += buf.packets.size();
        } else if (target != kBaseStationId && !target_up &&
                   fault_->down(target)) {
          res.lost_to_down_target += buf.packets.size();
        } else if (fault_->link_factor() < 1.0) {
          res.lost_during_degradation += buf.packets.size();
        }
      }
      return;
    }
    if (target == kBaseStationId) {
      // One slot of delay per relay hop taken on the way up.
      for (Packet& p : buf.packets)
        record_delivery(p, global_slot_ + relay_hops);
      return;
    }
    // Intermediate head relay: receive energy, congestion check against the
    // relay's remaining cache headroom (the multi-hop loss mechanism the
    // paper attributes to the FCM comparator).
    charge(target, EnergyUse::kReceive, radio_.rx_energy(buf.bits));
    const std::int32_t qs = rs_.queue_slot[static_cast<std::size_t>(target)];
    if (qs >= 0 && cfg_.queue_capacity != 0 &&
        queues_[static_cast<std::size_t>(qs)].size() >= cfg_.queue_capacity) {
      result_.lost_queue += buf.packets.size();
      return;
    }
    if (auditor_) auditor_->on_relay_accept(net_, target, target_up);
    holder = target;
    ++relay_hops;
  }
  result_.lost_link += buf.packets.size();
}

void SimRun::mac_deliver_uplinks(const std::vector<int>& heads) {
  // Hop budget per chain, as in deliver_aggregate: beyond it the protocol's
  // uplink graph has cycled.
  constexpr int kMaxRelayHops = 64;
  mac_active_.clear();
  for (std::size_t i = 0; i < heads.size(); ++i) {
    if (!fused_[i].packets.empty())
      mac_active_.push_back(UpChain{heads[i], static_cast<int>(i), 0});
  }
  UplinkMacHost host(*this);
  while (!mac_active_.empty()) {
    mac_frames_.clear();
    mac_chains_.clear();
    for (const UpChain& c : mac_active_) {
      const HeadBuffer& buf = fused_[static_cast<std::size_t>(c.buf)];
      if (c.hops > kMaxRelayHops) {
        result_.lost_link += buf.packets.size();
        continue;
      }
      if (!alive(c.holder)) {
        result_.lost_dead += buf.packets.size();
        if (fault_down(c.holder))
          result_.resilience.lost_at_down_node += buf.packets.size();
        continue;
      }
      const int target = protocol_.uplink_target(net_, c.holder, rng_);
      const double d = dist(c.holder, target);
      MacFrame f;
      f.src = c.holder;
      f.target = target;
      f.tag = static_cast<std::uint32_t>(mac_chains_.size());
      f.bits = buf.bits;
      f.tx_j = tx_energy(c.holder, target, buf.bits, d);
      f.link_p = mac_link_p(c.holder, target, d);
      f.src_pos = rs_.pos[static_cast<std::size_t>(c.holder)];
      f.dst_pos = target == kBaseStationId
                      ? bs_
                      : rs_.pos[static_cast<std::size_t>(target)];
      mac_frames_.push_back(f);
      mac_chains_.push_back(c);
    }
    if (mac_frames_.empty()) break;
    mac_->resolve(mac_frames_, host);
    mac_idle_energy();
    mac_active_.clear();
    for (std::size_t k = 0; k < mac_frames_.size(); ++k) {
      const MacFrame& f = mac_frames_[k];
      const UpChain& c = mac_chains_[k];
      if (!f.delivered) continue;  // the host already attributed the loss
      if (f.target == kBaseStationId) {
        // One slot of delay per relay hop taken on the way up.
        for (Packet& p : fused_[static_cast<std::size_t>(c.buf)].packets)
          record_delivery(p, global_slot_ + c.hops);
      } else {
        mac_active_.push_back(UpChain{f.target, c.buf, c.hops + 1});
      }
    }
  }
  mac_frames_.clear();
  mac_chains_.clear();
}

void SimRun::emit_round_metrics(int round, std::size_t alive_now,
                                std::size_t head_ct) {
  obs::MetricsRegistry& m = telemetry_->metrics();
  m.counter("sim.rounds").inc();
  m.counter("sim.packets.generated")
      .inc(result_.generated - emitted_.generated);
  m.counter("sim.packets.delivered")
      .inc(result_.delivered - emitted_.delivered);
  m.counter("sim.packets.lost.link")
      .inc(result_.lost_link - emitted_.lost_link);
  m.counter("sim.packets.lost.queue")
      .inc(result_.lost_queue - emitted_.lost_queue);
  m.counter("sim.packets.lost.dead")
      .inc(result_.lost_dead - emitted_.lost_dead);
  emitted_ = {result_.generated, result_.delivered, result_.lost_link,
              result_.lost_queue, result_.lost_dead};
  m.gauge("sim.alive").set(static_cast<double>(alive_now));
  m.histogram("sim.heads_per_round", 0.0, 64.0, 32)
      .add(static_cast<double>(head_ct));
  telemetry_->emit(obs::Event("round_end", round)
                       .with("alive", alive_now)
                       .with("heads", head_ct)
                       .with("residual_j", net_.total_residual_energy())
                       .with("generated", result_.generated)
                       .with("delivered", result_.delivered));
}

SimResult SimRun::run() {
  const std::size_t n = net_.size();
  for (int round = 0; round < cfg_.rounds; ++round) {
    cur_round_ = round;
    if (tracer_ != nullptr) tracer_->set_round(round);
    // Spans nest: "round" encloses the election/transmission/uplink/
    // maintenance child phases below (Chrome trace "X" events reconstruct
    // the hierarchy from containment on one track).
    obs::PhaseTimer round_span(tracer_, "round");
    // A mobile sink advances FIRST, on the main thread: everything this
    // round — routing distances, link draws, the QlecRouter y-memo (whose
    // round tokens invalidate below in on_round_start) — sees the new
    // position, and no Rng is consulted, so stream alignment holds.
    if (traj_) {
      bs_ = traj_->position(round);
      net_.set_bs(bs_);
    }
    // Faults fire strictly at the round boundary, before the auditor
    // snapshots state and before election — so every downstream phase (and
    // the auditor's down-at-round-start view) sees a consistent topology.
    if (fault_) {
      fault_->begin_round(net_, round, fade_ops_, crashed_scratch_);
      for (const FaultInjector::Fade& f : fade_ops_) {
        charge(f.node, EnergyUse::kFault, f.joules);
        result_.resilience.energy_faded_j += f.joules;
      }
      if (auditor_)
        for (const int id : crashed_scratch_) auditor_->on_fault_crash(id);
      gen_at_round_start_ = result_.generated;
      del_at_round_start_ = result_.delivered;
    }
    if (auditor_) auditor_->begin_round(net_, round, result_.energy);
    const std::vector<int>& heads = rs_.heads;
    {
      obs::PhaseTimer election_span(tracer_, "election");
      mobility_.step(net_, cfg_.death_line, rng_);
      // The spatial partition for this round's sharded phases, built from
      // the post-mobility positions. A pure function of positions + shard
      // count, so replays are deterministic.
      if (exec_ != nullptr)
        exec_->begin_round(
            region_partition(net_.positions(), exec_->shards()), net_.size());
      protocol_.on_round_start(net_, round, rng_, result_.energy);
      // Retire the outgoing round's queue-slot mapping before the refresh
      // overwrites rs_.heads (flat mode keeps the identity mapping forever).
      if (!flat_)
        for (const int h : heads)
          rs_.queue_slot[static_cast<std::size_t>(h)] = -1;
      refresh_round_state();
      // Per-round TX precompute hook (QLEC prefills its y rows through the
      // SIMD kernels when sharded); behaviorally invisible by contract.
      protocol_.prepare_tx(net_, cfg_.packet_bits);
    }
    result_.heads_per_round.add(static_cast<double>(heads.size()));
    if (auditor_) auditor_->on_heads_elected(net_, heads);
    if (telemetry_) {
      std::size_t alive_ct = 0;
      for (const std::uint8_t a : rs_.alive) alive_ct += a;
      telemetry_->emit(obs::Event("election", round)
                           .with("heads", heads.size())
                           .with("alive", alive_ct));
    }
    if (fault_ && !flat_) {
      // A fault wave that leaves no electable head strands every surviving
      // member for the round — the "orphaned members" resilience signal.
      // Gated on the protocol having clustered before, so head-less designs
      // (direct uplink) don't read as permanently orphaned.
      if (!heads.empty()) saw_heads_ = true;
      if (heads.empty() && saw_heads_) {
        std::uint64_t orphans = 0;
        for (std::size_t i = 0; i < n; ++i)
          if (rs_.alive[i] != 0) ++orphans;
        result_.resilience.orphaned_member_rounds += orphans;
      }
    }

    if (flat_) {
      // Flat routing: every node owns a persistent relay buffer (created
      // once; contents carry over rounds naturally).
      if (round == 0) {
        queues_.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          queues_.emplace_back(cfg_.queue_capacity);
          rs_.queue_slot[i] = static_cast<std::int32_t>(i);
        }
      }
    } else {
      // Cluster mode: slot i serves heads[i]; pools grow to the high-water
      // head count and are recycled (clear resets contents, keeps storage).
      while (queues_.size() < heads.size())
        queues_.emplace_back(cfg_.queue_capacity);
      if (fused_.size() < heads.size()) fused_.resize(heads.size());
      for (std::size_t i = 0; i < heads.size(); ++i) {
        rs_.queue_slot[static_cast<std::size_t>(heads[i])] =
            static_cast<std::int32_t>(i);
        queues_[i].clear();
        fused_[i].bits = 0.0;
        fused_[i].packets.clear();
      }
    }

    injections_.swap(carryover_);
    carryover_.clear();

    // One scoped-phase slot reused across the sequential phases below:
    // each emplace() closes the previous span before opening the next.
    std::optional<obs::PhaseTimer> phase(std::in_place, tracer_,
                                         "transmission");
    for (int slot = 0; slot < cfg_.slots_per_round; ++slot) {
      // (a) flat-mode relay service runs FIRST and two-phase (stage all
      // pops, then forward), so every relay hop costs at least one slot —
      // otherwise id-ordered relays would chain a packet to the BS within
      // a single slot.
      if (flat_) {
        staged_.clear();
        for (std::size_t i = 0; i < n; ++i) {
          if (rs_.alive[i] == 0) continue;
          PacketQueue& q = queues_[i];
          for (int s = 0; s < cfg_.service_per_slot; ++s) {
            auto p = q.pop();
            if (!p) break;
            staged_.push_back(Stranded{static_cast<int>(i), *p});
          }
        }
        for (Stranded& s : staged_) deliver_from(s.holder, s.packet);
      }
      // (b) stranded packets from the previous round re-enter first.
      if (slot == 0) {
        for (Stranded& s : injections_) deliver_from(s.holder, s.packet);
        injections_.clear();
      }
      // (b) fresh Poisson arrivals.
      traffic_.arrivals_into(global_slot_, rng_, arrivals_);
      for (const std::size_t src : arrivals_) {
        const int id = static_cast<int>(src);
        if (!alive(id)) continue;  // dead sensors stop sensing
        Packet p;
        p.id = next_packet_id_++;
        p.src = id;
        p.bits = cfg_.packet_bits;
        p.gen_slot = global_slot_;
        ++result_.generated;
        deliver_from(id, p);
      }
      // (c) MAC contention phase: resolve the frames staged by stages
      // (a)-(b) before heads service their queues, so packet visibility
      // matches the ideal path (this slot's deliveries are serviceable
      // this slot).
      if (mac_) mac_resolve_slot();
      // (d) cluster-mode head service: aggregate into the fused buffer.
      if (!flat_) {
        for (std::size_t i = 0; i < heads.size(); ++i) {
          const int h = heads[i];
          if (!alive(h)) continue;
          PacketQueue& q = queues_[i];
          HeadBuffer& buf = fused_[i];
          for (int s = 0; s < cfg_.service_per_slot; ++s) {
            auto p = q.pop();
            if (!p) break;
            charge(h, EnergyUse::kAggregate,
                   radio_.aggregation_energy(p->bits));
            if (cfg_.aggregation == Aggregation::kRatioCompress) {
              buf.bits += p->bits * cfg_.compression;
            } else {
              buf.bits = cfg_.packet_bits;  // one fixed-size fused summary
            }
            buf.packets.push_back(*p);
          }
        }
      }
      // (e) idle listening drain. Fault-down radios are off: they neither
      // listen nor pay for it (audit invariant d2).
      if (cfg_.idle_listen_j_per_slot > 0.0) {
        for (SensorNode& node : net_.nodes()) {
          if (!node.operational(cfg_.death_line)) continue;
          result_.energy.charge(
              EnergyUse::kIdle,
              node.battery.consume(cfg_.idle_listen_j_per_slot), node.id);
          sync_battery(node.id, node.battery);
        }
      }
      ++global_slot_;
    }
    phase.emplace(tracer_, "uplink");

    if (!flat_) {
      // (d) round-end uplinks.
      if (mac_) {
        mac_deliver_uplinks(heads);
      } else {
        for (std::size_t i = 0; i < heads.size(); ++i)
          deliver_aggregate(heads[i], fused_[i]);
      }

      // (e) leftover cache content strands to next round (the ex-head
      // re-routes it as an ordinary member), unless the holder died.
      for (std::size_t i = 0; i < heads.size(); ++i) {
        const int h = heads[i];
        PacketQueue& q = queues_[i];
        while (auto p = q.pop()) {
          if (alive(h)) {
            carryover_.push_back(Stranded{h, *p});
          } else {
            ++result_.lost_dead;
            if (fault_down(h)) ++result_.resilience.lost_at_down_node;
          }
        }
      }
    }

    phase.emplace(tracer_, "maintenance");
    // Fault-down nodes can't run their harvester either — their batteries
    // stay exactly frozen for the whole down window (audit invariant d2).
    // Every restored joule is credited to the EnergyUse::kHarvest bucket
    // (a CREDIT entry, excluded from EnergyLedger::total, charged without
    // node attribution so per-node books stay drain-only) and reported to
    // the auditor, which reconciles bucket-vs-restored per round.
    const bool env_harvest = env_ && env_->harvest_active();
    if (cfg_.harvest_per_round > 0.0 || env_harvest) {
      for (SensorNode& node : net_.nodes()) {
        if (!node.operational(cfg_.death_line)) continue;
        double amount = cfg_.harvest_per_round;
        if (env_harvest) amount += env_->harvest_rate(node.pos);
        if (amount <= 0.0) continue;
        const double restored = node.battery.recharge(amount);
        result_.energy.charge(EnergyUse::kHarvest, restored);
        sync_battery(node.id, node.battery);
        if (auditor_) auditor_->on_harvest(node.id, restored);
      }
    }

    protocol_.on_round_end(net_, round);
    ++result_.rounds_completed;

    if (auditor_) {
      std::uint64_t in_flight = carryover_.size();
      const std::size_t active = flat_ ? queues_.size() : heads.size();
      for (std::size_t i = 0; i < active; ++i) in_flight += queues_[i].size();
      auditor_->end_round(net_, result_.energy, result_, in_flight);
    }
    phase.reset();

    // (f) lifespan bookkeeping.
    const std::size_t alive_now = net_.alive_count(cfg_.death_line);
    if (fault_) {
      std::uint32_t down = 0;
      for (const SensorNode& node : net_.nodes())
        if (!node.up) ++down;
      result_.resilience.per_round.push_back(RoundResilience{
          round, result_.generated - gen_at_round_start_,
          result_.delivered - del_at_round_start_,
          fault_->disruptions_this_round(), !fault_->bs_up(),
          fault_->link_factor() < 1.0, down});
    }
    if (mac_) {
      const MacCounters delta = mac_->totals().minus(mac_prev_);
      mac_prev_ = mac_->totals();
      result_.mac.per_round.push_back(MacRound{round, delta});
      if (telemetry_) emit_mac_metrics(delta);
    }
    if (cfg_.trace.record) {
      result_.trace.push_back(RoundStats{
          round, alive_now, heads.size(), net_.total_residual_energy(),
          result_.generated, result_.delivered});
    }
    if (telemetry_) emit_round_metrics(round, alive_now, heads.size());
    if (result_.first_death_round < 0 && alive_now < n)
      result_.first_death_round = round;
    if (result_.half_death_round < 0 && alive_now <= n / 2)
      result_.half_death_round = round;
    if (result_.last_death_round < 0 && alive_now == 0)
      result_.last_death_round = round;
    if (alive_now == 0) break;
    if (cfg_.trace.stop_at_first_death && result_.first_death_round >= 0)
      break;
  }

  // Packets still stranded when the run ends never reached the BS.
  result_.lost_dead += carryover_.size();
  if (flat_) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      result_.lost_dead += queues_[i].size();
      if (fault_down(static_cast<int>(i)))
        result_.resilience.lost_at_down_node += queues_[i].size();
    }
  }

  if (fault_) {
    ResilienceStats& res = result_.resilience;
    res.crashes = fault_->crashes();
    res.stuns = fault_->stuns();
    res.blackouts = fault_->blackouts();
    res.fades = fault_->fades();
    res.bs_outage_rounds = fault_->bs_outage_rounds();
    res.degraded_rounds = fault_->degraded_rounds();
    res.recovery_rounds = mean_recovery_rounds(res.per_round);
  }

  result_.per_node_consumed.reserve(n);
  result_.per_node_rate.reserve(n);
  for (const SensorNode& node : net_.nodes()) {
    result_.per_node_consumed.push_back(node.battery.consumed());
    result_.per_node_rate.push_back(node.battery.consumption_rate());
    result_.total_energy_consumed += node.battery.consumed();
  }
  if (mac_) result_.mac.totals = mac_->totals();
  result_.q_evaluations = protocol_.learning_updates();
  if (auditor_) {
    auditor_->finalize(net_, result_.energy, result_);
    result_.audit = auditor_->report();
  }
  return result_;
}

}  // namespace

SimResult run_simulation(Network& net, ClusteringProtocol& protocol,
                         const SimConfig& cfg, Rng& rng) {
  SimRun run(net, protocol, cfg, rng);
  return run.run();
}

}  // namespace qlec
