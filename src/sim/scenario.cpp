#include "sim/scenario.hpp"

#include "geom/sampling.hpp"

namespace qlec {
namespace {

std::vector<double> energies(const ScenarioConfig& cfg, Rng& rng) {
  std::vector<double> e;
  e.reserve(cfg.n);
  const double h = cfg.energy_heterogeneity;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    const double factor = h > 0.0 ? 1.0 + rng.uniform(-h, h) : 1.0;
    e.push_back(cfg.initial_energy * factor);
  }
  return e;
}

}  // namespace

const char* deployment_name(Deployment d) noexcept {
  switch (d) {
    case Deployment::kUniform: return "uniform";
    case Deployment::kTerrain: return "terrain";
  }
  return "?";
}

std::optional<Deployment> deployment_from_name(std::string_view name) noexcept {
  if (name == "uniform") return Deployment::kUniform;
  if (name == "terrain") return Deployment::kTerrain;
  return std::nullopt;
}

Vec3 bs_position(BsPlacement placement, const Aabb& box) {
  const Vec3 c = box.center();
  switch (placement) {
    case BsPlacement::kCenter:
      return c;
    case BsPlacement::kTopFaceCenter:
      return {c.x, c.y, box.hi.z};
    case BsPlacement::kCorner:
      return box.hi;
    case BsPlacement::kExternal:
      return {c.x, c.y, box.hi.z + 0.5 * (box.hi.z - box.lo.z)};
  }
  return c;
}

Network make_uniform_network(const ScenarioConfig& cfg, Rng& rng) {
  const Aabb box = Aabb::cube(cfg.m_side);
  const std::vector<Vec3> pts = sample_uniform(cfg.n, box, rng);
  return Network(pts, energies(cfg, rng), bs_position(cfg.bs, box), box);
}

Network make_terrain_network(const ScenarioConfig& cfg, Rng& rng) {
  const Aabb box = Aabb::cube(cfg.m_side);
  const std::vector<Vec3> pts = sample_terrain(
      cfg.n, box, /*ridge_amplitude=*/0.25 * cfg.m_side,
      /*jitter=*/0.05 * cfg.m_side, rng);
  return Network(pts, energies(cfg, rng), bs_position(cfg.bs, box), box);
}

}  // namespace qlec
