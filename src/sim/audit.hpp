// SimAuditor: runtime invariant checking for the round-based simulator.
//
// The whole evaluation (Fig. 3-4, the Theorem 1 sweeps) rests on the
// simulator being conservation-correct, so audited runs verify, every round
// and at end-of-run:
//
//   (a) energy conservation — the joules drained from batteries in a round
//       equal the EnergyLedger entries charged in that round (network-wide,
//       harvest-corrected), every node's cumulative ledger total matches its
//       battery delta, the EnergyUse::kHarvest credit bucket advances by
//       exactly what Battery::recharge restored each round, and no node's
//       residual is negative or above capacity;
//   (b) packet conservation — generated == delivered + dropped (link loss,
//       queue overflow, dead holder) + still-in-flight, per round and
//       cumulatively;
//   (c) structural invariants — elected heads are alive, head counts never
//       exceed the alive population, packets are only cached at an alive
//       head (or alive relay in flat-routing mode), and the alive count is
//       non-increasing when no energy harvesting is configured;
//   (d) fault invariants (fault-injected runs) — crashed nodes stay down
//       for the rest of the run, a node that was fault-down at the round
//       start spends and gains no energy that round (stunned radios are
//       silent), and fault-down nodes are never elected head.
//
// Violations carry round/node context and either accumulate into an
// AuditReport on the SimResult or throw an AuditError, per configuration.
// The auditor is strictly observational: it never touches the Rng or the
// protocol, so an audited run produces the exact same trace as an
// unaudited one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace qlec {

class Network;
class EnergyLedger;
struct SimResult;

enum class AuditKind : int {
  kEnergyConservation,  ///< battery drain != ledger entries
  kEnergyBounds,        ///< residual < 0 or > capacity
  kPacketConservation,  ///< generated != delivered + lost + in-flight
  kStructural,          ///< dead head, bad relay target, alive count grew
};

const char* audit_kind_name(AuditKind k);

struct AuditViolation {
  AuditKind kind = AuditKind::kStructural;
  int round = -1;  ///< -1 = end-of-run check
  int node = -1;   ///< -1 = network-wide check
  std::string message;

  /// "round 3 node 17 [energy-bounds]: ..." one-liner.
  std::string to_string() const;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  int rounds_audited = 0;
  bool finalized = false;

  bool ok() const noexcept { return violations.empty(); }
  /// Human-readable digest: "audit ok (N rounds)" or the first few
  /// violations plus a count.
  std::string summary() const;
};

/// Thrown on the first violation when AuditOptions::throw_on_violation is set.
class AuditError : public std::runtime_error {
 public:
  explicit AuditError(const AuditViolation& v)
      : std::runtime_error(v.to_string()), violation(v) {}
  AuditViolation violation;
};

class SimAuditor {
 public:
  /// `death_line`: the SimConfig death line (alive == residual above it).
  /// `flat_routing`: packets relay node-to-node (no head structure to
  /// check). `harvest_enabled`: residual/alive counts may legitimately
  /// rise. `throw_on_violation`: raise AuditError instead of accumulating.
  /// `faults_enabled`: fault injection is active — the alive count may
  /// legitimately rise when a stun window expires, and the fault
  /// invariants (d) are checked every round.
  SimAuditor(const Network& net, double death_line, bool flat_routing,
             bool harvest_enabled, bool throw_on_violation,
             bool faults_enabled = false);

  /// Called at the top of every round, before mobility and head election,
  /// to snapshot the energy books for this round's conservation window.
  void begin_round(const Network& net, int round,
                   const EnergyLedger& ledger);

  /// Called after head election with the elected set (structural checks).
  /// A head may legitimately be below the death line HERE if its own HELLO
  /// broadcast drained it — what is checked is that it was alive when the
  /// round started, i.e. the protocol never elects an already-dead node.
  void on_heads_elected(const Network& net, const std::vector<int>& heads);

  /// Reports the joules actually restored to `node` by harvesting.
  void on_harvest(int node, double joules) noexcept;

  /// The fault injector permanently crashed `node`; from now on every
  /// end_round verifies it is still down ("crashed nodes stay dead").
  void on_fault_crash(int node);

  /// A data packet was accepted into `target`'s cache this round (target is
  /// never the base station — BS deliveries are terminal).
  /// `alive_at_attempt` is the aliveness the simulator verified before the
  /// transmission; the reception charge itself may have since pushed the
  /// target below the death line, which is legal.
  void on_relay_accept(const Network& net, int target,
                       bool alive_at_attempt);

  /// Called once per round after uplinks/harvest/on_round_end, with the
  /// partially filled result and the number of packets still buffered
  /// inside the simulator (head caches + carryover).
  void end_round(const Network& net, const EnergyLedger& ledger,
                 const SimResult& partial, std::uint64_t in_flight);

  /// End-of-run checks: cumulative packet conservation with everything
  /// flushed, cumulative per-node energy reconciliation.
  void finalize(const Network& net, const EnergyLedger& ledger,
                const SimResult& result);

  const AuditReport& report() const noexcept { return report_; }

 private:
  void violate(AuditKind kind, int round, int node, std::string message);
  void check_fault_invariants(const Network& net, int round);
  void check_energy_bounds(const Network& net, int round);
  void check_per_node_ledger(const Network& net, const EnergyLedger& ledger,
                             int round);
  void check_packet_conservation(const SimResult& partial,
                                 std::uint64_t in_flight, int round);

  double death_line_ = 0.0;
  bool flat_ = false;
  bool harvest_enabled_ = false;
  bool throw_ = false;
  bool faults_enabled_ = false;

  int round_ = -1;
  double residual_at_round_start_ = 0.0;
  std::vector<double> node_residual_at_round_start_;
  double ledger_at_round_start_ = 0.0;
  double harvest_bucket_at_round_start_ = 0.0;
  double harvested_this_round_ = 0.0;
  double harvested_total_ = 0.0;
  std::vector<double> harvested_per_node_;  ///< cumulative, indexed by id
  std::size_t prev_alive_ = 0;
  bool have_prev_alive_ = false;
  std::vector<std::uint8_t> crashed_;             ///< per-node crash flag
  std::vector<std::uint8_t> down_at_round_start_; ///< fault-down snapshot

  AuditReport report_;
};

}  // namespace qlec
