// Fault-injection layer: deterministic failure models for the round-based
// simulator (DESIGN.md §9).
//
// Two sources of faults compose:
//   * a FaultPlan — scheduled events pinned to specific rounds (crash node
//     7 at round 12, black out this Aabb for 5 rounds, ...), and
//   * FaultHazards — per-round stochastic failure rates sampled from the
//     injector's OWN xoshiro stream, never the simulation Rng.
//
// Determinism contract: with FaultConfig::enabled == false the simulator
// constructs no injector, draws nothing extra from any stream, and every
// committed golden-trace digest stays bit-identical. With faults enabled,
// a fixed (simulation seed, FaultConfig) pair reproduces the identical
// fault sequence and therefore the identical SimResult, resilience metrics
// included: the fault stream is seeded from one draw off the simulation
// Rng XORed with FaultConfig::seed.
//
// All up/down transitions happen at round boundaries (FaultInjector::
// begin_round, before the auditor snapshot and head election); the
// slot-level effects — link-quality degradation and BS outages — are
// exposed as per-attempt queries (link_factor(), bs_up()) that stay
// constant within a round.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "util/rng.hpp"

namespace qlec {

class Network;

namespace obs {
class Telemetry;  // obs/telemetry.hpp
}

enum class FaultKind : int {
  kCrash,       ///< permanent node failure (node stays down forever)
  kStun,        ///< transient sleep window: down for `duration` rounds
  kBlackout,    ///< regional outage: crash or stun everything inside `region`
  kLinkDegrade, ///< scale every link success probability by `severity`
  kBsOutage,    ///< all BS uplinks fail for `duration` rounds
  kBatteryFade, ///< remove `severity` fraction of a node's residual energy
};

const char* fault_kind_name(FaultKind k);

/// One scheduled fault. Fields beyond `kind`/`round` are interpreted per
/// kind; irrelevant ones are ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  int round = 0;          ///< round at whose start the event fires
  int node = -1;          ///< target (kCrash/kStun/kBatteryFade); -1 = none
  int duration = 1;       ///< rounds (kStun, kLinkDegrade, kBsOutage,
                          ///< transient kBlackout)
  double severity = 0.5;  ///< kLinkDegrade: success-probability multiplier
                          ///< in [0,1]; kBatteryFade: fraction of residual
                          ///< removed in [0,1]
  bool permanent = false; ///< kBlackout: crash (true) vs stun (false)
  Aabb region{};          ///< kBlackout: the affected volume

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A deterministic schedule of fault events. Events may be listed in any
/// order; same-round events apply in list order.
struct FaultPlan {
  std::vector<FaultEvent> events;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Per-round stochastic failure rates, all sampled from the fault stream.
/// Node-scoped hazards are drawn per operational node in id order, so a
/// fixed stream seed yields a fixed fault sequence.
struct FaultHazards {
  double crash_per_node = 0.0;   ///< P(permanent crash) per node per round
  double stun_per_node = 0.0;    ///< P(sleep window starts) per node/round
  int stun_rounds = 2;           ///< length of a sampled sleep window
  double fade_per_node = 0.0;    ///< P(capacity-fade event) per node/round
  double fade_fraction = 0.1;    ///< residual fraction removed per event
  double degrade_episode = 0.0;  ///< P(degradation episode starts) per round
  int degrade_rounds = 3;        ///< episode length
  double degrade_factor = 0.5;   ///< success multiplier during an episode
  double bs_outage = 0.0;        ///< P(BS outage starts) per round
  int bs_outage_rounds = 1;      ///< outage length

  bool any() const noexcept {
    return crash_per_node > 0.0 || stun_per_node > 0.0 ||
           fade_per_node > 0.0 || degrade_episode > 0.0 || bs_outage > 0.0;
  }

  friend bool operator==(const FaultHazards&, const FaultHazards&) = default;
};

struct FaultConfig {
  /// Master switch. False = the simulator builds no injector at all (the
  /// golden-trace guarantee); plan and hazards are ignored.
  bool enabled = false;
  /// XORed into the fault-stream seed so distinct fault scenarios decouple
  /// even at the same simulation seed.
  std::uint64_t seed = 0;
  FaultPlan plan;
  FaultHazards hazards;

  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

/// Why a node is currently down (kNone while operational).
enum class DownCause : std::uint8_t { kNone = 0, kCrashed, kStunned };

/// Applies a FaultConfig to the network at round boundaries and answers the
/// simulator's per-attempt fault queries. Owns the fault Rng stream;
/// mutates only SensorNode::up flags and its own state — battery fades are
/// handed back to the simulator so they flow through the EnergyLedger
/// (EnergyUse::kFault) and the audit books stay reconciled.
class FaultInjector {
 public:
  /// `stream_seed` folds the simulation run's identity into the fault
  /// stream (the simulator passes one Rng draw XOR cfg.seed).
  FaultInjector(const FaultConfig& cfg, std::size_t n, double death_line,
                std::uint64_t stream_seed);

  /// A battery-fade drain the simulator must charge to the ledger.
  struct Fade {
    int node = -1;
    double joules = 0.0;
  };

  /// Round-boundary fault processing, in order: wake expired stuns, expire
  /// global episodes, fire scheduled events for `round`, sample hazards.
  /// Appends fade drains to `fades` and newly crashed node ids to
  /// `crashed` (both cleared first).
  void begin_round(Network& net, int round, std::vector<Fade>& fades,
                   std::vector<int>& crashed);

  /// Link-success multiplier for this round (1.0 outside episodes).
  double link_factor() const noexcept { return degrade_until_ > round_
                                                   ? degrade_factor_
                                                   : 1.0; }
  /// False while a BS outage window is active.
  bool bs_up() const noexcept { return bs_down_until_ <= round_; }

  bool down(int id) const noexcept {
    return cause_[static_cast<std::size_t>(id)] != DownCause::kNone;
  }
  DownCause cause(int id) const noexcept {
    return cause_[static_cast<std::size_t>(id)];
  }

  /// Service-disrupting events applied at the last begin_round (crashes +
  /// stuns + blackout regions + episode starts) — feeds the per-round
  /// resilience rows the recovery metric is computed from.
  std::uint32_t disruptions_this_round() const noexcept {
    return disruptions_round_;
  }

  // Cumulative applied-fault counters (for ResilienceStats).
  std::uint64_t crashes() const noexcept { return crashes_; }
  std::uint64_t stuns() const noexcept { return stuns_; }
  std::uint64_t blackouts() const noexcept { return blackouts_; }
  std::uint64_t fades() const noexcept { return fades_; }
  std::uint64_t bs_outage_rounds() const noexcept {
    return bs_outage_rounds_;
  }
  std::uint64_t degraded_rounds() const noexcept { return degraded_rounds_; }

  /// Attaches the telemetry context for the current run (nullptr detaches;
  /// the simulator manages the lifetime). Strictly observational: neither
  /// the fault Rng stream nor any up/down decision is affected — applied
  /// transitions are merely mirrored as {"type":"fault"} events and a
  /// "fault.transitions" counter.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  /// Emits one {"type":"fault"} transition event (no-op when detached).
  void note(const char* kind, int node, int until_round);
  void crash(Network& net, int id, std::vector<int>& crashed);
  void stun(Network& net, int id, int until_round);
  void fade(Network& net, int id, double fraction, std::vector<Fade>& fades);
  void apply_event(Network& net, const FaultEvent& e, int round,
                   std::vector<Fade>& fades, std::vector<int>& crashed);
  void sample_hazards(Network& net, int round, std::vector<Fade>& fades,
                      std::vector<int>& crashed);

  FaultHazards hazards_;
  std::vector<FaultEvent> schedule_;  ///< stable-sorted by round
  std::size_t next_event_ = 0;
  double death_line_ = 0.0;
  Rng rng_;
  obs::Telemetry* telemetry_ = nullptr;

  int round_ = -1;
  std::vector<DownCause> cause_;
  std::vector<int> stun_until_;  ///< round at which a stun expires
  int degrade_until_ = -1;
  double degrade_factor_ = 1.0;
  int bs_down_until_ = -1;

  std::uint32_t disruptions_round_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t stuns_ = 0;
  std::uint64_t blackouts_ = 0;
  std::uint64_t fades_ = 0;
  std::uint64_t bs_outage_rounds_ = 0;
  std::uint64_t degraded_rounds_ = 0;
};

}  // namespace qlec
