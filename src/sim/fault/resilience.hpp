// Resilience metrics for faulted simulation runs: per-round delivery under
// faults, packet-loss attribution per fault class, and the re-clustering
// recovery time (rounds from a service disruption back to healthy
// delivery). Populated by the simulator only when FaultConfig::enabled is
// set, so fault-free SimResults carry an empty, inert ResilienceStats.
#pragma once

#include <cstdint>
#include <vector>

namespace qlec {

/// One round of delivery bookkeeping under faults. `generated`/`delivered`
/// are this round's deltas (not cumulative), so delivered can exceed
/// generated in a round that flushes earlier backlog.
struct RoundResilience {
  int round = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  /// Service-disrupting fault events applied at this round's start.
  std::uint32_t disruptions = 0;
  std::uint8_t bs_down = 0;   ///< BS outage active this round
  std::uint8_t degraded = 0;  ///< link-degradation episode active
  std::uint32_t nodes_down = 0;  ///< fault-down node count at round start

  /// This round's delivery ratio; 1 when nothing was generated (an idle
  /// round is not a delivery failure).
  double pdr() const noexcept {
    if (generated == 0) return 1.0;
    return static_cast<double>(delivered) / static_cast<double>(generated);
  }
};

/// Mean rounds from each disruption (a round with fault events) until
/// per-round PDR first returns to `threshold` x the pre-disruption baseline
/// (the running mean of healthy-round PDR). Disruptions the run never
/// recovers from contribute the remaining horizon — a lower bound, same
/// convention as FND. Returns -1 when no disruption occurred.
double mean_recovery_rounds(const std::vector<RoundResilience>& rows,
                            double threshold = 0.9);

/// Fault-and-recovery outcome of one simulation run.
struct ResilienceStats {
  bool enabled = false;  ///< true when the run had fault injection on

  // Applied-fault counts (from the injector).
  std::uint64_t crashes = 0;
  std::uint64_t stuns = 0;
  std::uint64_t blackouts = 0;
  std::uint64_t fades = 0;
  std::uint64_t bs_outage_rounds = 0;
  std::uint64_t degraded_rounds = 0;
  /// Joules removed by battery-capacity fade (ledger EnergyUse::kFault).
  double energy_faded_j = 0.0;

  // Packet-loss attribution per fault class. These refine (not replace)
  // the classic lost_link/lost_queue/lost_dead counters: each is the
  // subset of a classic loss whose final failed attempt was fault-caused.
  std::uint64_t lost_to_down_target = 0;  ///< last attempt hit a fault-down relay
  std::uint64_t lost_to_bs_outage = 0;    ///< last attempt was an outage-suppressed BS uplink
  std::uint64_t lost_during_degradation = 0;  ///< other link losses inside an episode
  std::uint64_t lost_at_down_node = 0;    ///< buffered packets stranded when their holder went down

  /// Member-rounds spent with no operational cluster head to send to
  /// (cluster-mode rounds whose election produced an empty head set).
  std::uint64_t orphaned_member_rounds = 0;

  /// One row per completed round (faulted runs only).
  std::vector<RoundResilience> per_round;
  /// See mean_recovery_rounds(); -1 when no disruption occurred.
  double recovery_rounds = -1.0;
};

}  // namespace qlec
