#include "sim/fault/fault.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "obs/telemetry.hpp"

namespace qlec {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kStun: return "stun";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kBsOutage: return "bs-outage";
    case FaultKind::kBatteryFade: return "battery-fade";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& cfg, std::size_t n,
                             double death_line, std::uint64_t stream_seed)
    : hazards_(cfg.hazards),
      schedule_(cfg.plan.events),
      death_line_(death_line),
      rng_(stream_seed),
      cause_(n, DownCause::kNone),
      stun_until_(n, -1) {
  // Stable: same-round events keep their plan order.
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
}

void FaultInjector::note(const char* kind, int node, int until_round) {
  if (telemetry_ == nullptr) return;
  telemetry_->metrics().counter("fault.transitions").inc();
  obs::Event e("fault", round_);
  e.with("kind", kind);
  if (node >= 0) e.with("node", node);
  if (until_round >= 0) e.with("until", until_round);
  telemetry_->emit(e);
}

void FaultInjector::crash(Network& net, int id, std::vector<int>& crashed) {
  SensorNode& node = net.node(id);
  if (!node.operational(death_line_) &&
      cause_[static_cast<std::size_t>(id)] != DownCause::kStunned)
    return;  // already crashed or battery-dead: crashing again is a no-op
  node.up = false;
  cause_[static_cast<std::size_t>(id)] = DownCause::kCrashed;
  crashed.push_back(id);
  ++crashes_;
  ++disruptions_round_;
  note("crash", id, -1);
}

void FaultInjector::stun(Network& net, int id, int until_round) {
  SensorNode& node = net.node(id);
  if (!node.operational(death_line_)) return;  // down or dead already
  node.up = false;
  cause_[static_cast<std::size_t>(id)] = DownCause::kStunned;
  stun_until_[static_cast<std::size_t>(id)] =
      std::max(stun_until_[static_cast<std::size_t>(id)], until_round);
  ++stuns_;
  ++disruptions_round_;
  note("stun", id, stun_until_[static_cast<std::size_t>(id)]);
}

void FaultInjector::fade(Network& net, int id, double fraction,
                         std::vector<Fade>& fades) {
  SensorNode& node = net.node(id);
  if (!node.operational(death_line_)) return;
  const double frac = std::clamp(fraction, 0.0, 1.0);
  const double joules = node.battery.residual() * frac;
  if (joules <= 0.0) return;
  fades.push_back(Fade{id, joules});
  ++fades_;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter("fault.transitions").inc();
    telemetry_->emit(obs::Event("fault", round_)
                         .with("kind", "battery-fade")
                         .with("node", id)
                         .with("joules", joules));
  }
}

void FaultInjector::apply_event(Network& net, const FaultEvent& e, int round,
                                std::vector<Fade>& fades,
                                std::vector<int>& crashed) {
  const int until = round + std::max(e.duration, 1);
  switch (e.kind) {
    case FaultKind::kCrash:
      if (e.node >= 0 && static_cast<std::size_t>(e.node) < net.size())
        crash(net, e.node, crashed);
      break;
    case FaultKind::kStun:
      if (e.node >= 0 && static_cast<std::size_t>(e.node) < net.size())
        stun(net, e.node, until);
      break;
    case FaultKind::kBlackout:
      ++blackouts_;
      ++disruptions_round_;
      note("blackout", -1, e.permanent ? -1 : until);
      for (const SensorNode& n : net.nodes()) {
        if (!e.region.contains(n.pos)) continue;
        if (e.permanent) {
          crash(net, n.id, crashed);
        } else {
          stun(net, n.id, until);
        }
      }
      break;
    case FaultKind::kLinkDegrade:
      degrade_until_ = std::max(degrade_until_, until);
      degrade_factor_ = std::clamp(e.severity, 0.0, 1.0);
      ++disruptions_round_;
      note("link-degrade", -1, degrade_until_);
      break;
    case FaultKind::kBsOutage:
      bs_down_until_ = std::max(bs_down_until_, until);
      ++disruptions_round_;
      note("bs-outage", -1, bs_down_until_);
      break;
    case FaultKind::kBatteryFade:
      if (e.node >= 0 && static_cast<std::size_t>(e.node) < net.size())
        fade(net, e.node, e.severity, fades);
      break;
  }
}

void FaultInjector::sample_hazards(Network& net, int round,
                                   std::vector<Fade>& fades,
                                   std::vector<int>& crashed) {
  if (!hazards_.any()) return;
  const int n = static_cast<int>(net.size());
  // Node-scoped hazards, in id order. Each draw happens iff its rate is
  // configured, so enabling one hazard never shifts another's stream.
  if (hazards_.crash_per_node > 0.0) {
    for (int id = 0; id < n; ++id) {
      if (!net.node(id).operational(death_line_)) continue;
      if (rng_.bernoulli(hazards_.crash_per_node)) crash(net, id, crashed);
    }
  }
  if (hazards_.stun_per_node > 0.0) {
    for (int id = 0; id < n; ++id) {
      if (!net.node(id).operational(death_line_)) continue;
      if (rng_.bernoulli(hazards_.stun_per_node))
        stun(net, id, round + std::max(hazards_.stun_rounds, 1));
    }
  }
  if (hazards_.fade_per_node > 0.0) {
    for (int id = 0; id < n; ++id) {
      if (!net.node(id).operational(death_line_)) continue;
      if (rng_.bernoulli(hazards_.fade_per_node))
        fade(net, id, hazards_.fade_fraction, fades);
    }
  }
  // Global episodes: one start-hazard draw per round while inactive.
  if (hazards_.degrade_episode > 0.0 && degrade_until_ <= round) {
    if (rng_.bernoulli(hazards_.degrade_episode)) {
      degrade_until_ = round + std::max(hazards_.degrade_rounds, 1);
      degrade_factor_ = std::clamp(hazards_.degrade_factor, 0.0, 1.0);
      ++disruptions_round_;
      note("link-degrade", -1, degrade_until_);
    }
  }
  if (hazards_.bs_outage > 0.0 && bs_down_until_ <= round) {
    if (rng_.bernoulli(hazards_.bs_outage)) {
      bs_down_until_ = round + std::max(hazards_.bs_outage_rounds, 1);
      ++disruptions_round_;
      note("bs-outage", -1, bs_down_until_);
    }
  }
}

void FaultInjector::begin_round(Network& net, int round,
                                std::vector<Fade>& fades,
                                std::vector<int>& crashed) {
  fades.clear();
  crashed.clear();
  round_ = round;
  disruptions_round_ = 0;

  // Wake stunned nodes whose sleep window has expired. Crashed nodes are
  // never woken — the auditor enforces that they stay down.
  for (std::size_t i = 0; i < cause_.size(); ++i) {
    if (cause_[i] == DownCause::kStunned && stun_until_[i] <= round) {
      cause_[i] = DownCause::kNone;
      stun_until_[i] = -1;
      net.node(static_cast<int>(i)).up = true;
      note("wake", static_cast<int>(i), -1);
    }
  }

  // Scheduled events for this round, in plan order. Events scheduled for
  // rounds the run never reached (or before round 0) are skipped silently.
  while (next_event_ < schedule_.size() &&
         schedule_[next_event_].round <= round) {
    const FaultEvent& e = schedule_[next_event_];
    if (e.round == round) apply_event(net, e, round, fades, crashed);
    ++next_event_;
  }

  sample_hazards(net, round, fades, crashed);

  if (!bs_up()) ++bs_outage_rounds_;
  if (link_factor() < 1.0) ++degraded_rounds_;
}

}  // namespace qlec
