#include "sim/fault/resilience.hpp"

namespace qlec {

double mean_recovery_rounds(const std::vector<RoundResilience>& rows,
                            double threshold) {
  // Running mean of healthy-round PDR (rounds with no disruption and no
  // active outage/degradation) — the baseline recovery is measured against.
  double healthy_sum = 0.0;
  std::size_t healthy_n = 0;

  double total_recovery = 0.0;
  std::size_t disruptions = 0;

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RoundResilience& r = rows[i];
    if (r.disruptions > 0) {
      ++disruptions;
      // Baseline before this disruption; a disruption before any healthy
      // round measures against full delivery.
      const double baseline =
          healthy_n > 0 ? healthy_sum / static_cast<double>(healthy_n) : 1.0;
      const double bar = threshold * baseline;
      // Rounds until delivery is back at the bar, starting the round after
      // the hit. Recovery within the same round counts as 0.
      std::size_t j = i;
      while (j < rows.size() && rows[j].pdr() < bar) ++j;
      if (j < rows.size()) {
        total_recovery += static_cast<double>(j - i);
      } else {
        // Never recovered: the remaining horizon is a lower bound.
        total_recovery += static_cast<double>(rows.size() - i);
      }
    }
    if (r.disruptions == 0 && r.bs_down == 0 && r.degraded == 0) {
      healthy_sum += r.pdr();
      ++healthy_n;
    }
  }
  if (disruptions == 0) return -1.0;
  return total_recovery / static_cast<double>(disruptions);
}

}  // namespace qlec
