// Configuration and statistics for the optional slotted-CSMA MAC/PHY
// sub-phase (DESIGN.md §14). When `MacConfig::enabled` is false (the
// default) the subsystem is never constructed, no Rng draw happens, and the
// simulation — including every committed golden digest — is bit-identical
// to the pre-MAC model. When enabled, each simulator slot's transmissions
// contend on a micro-slot ("subslot") timeline: carrier sensing within
// `cca_range`, capture-threshold interference at the receiver, and
// binary-exponential backoff between retransmissions, with retransmit and
// duty-cycle listening energy landing in the EnergyUse::kMac ledger bucket.
#pragma once

#include <cstdint>
#include <vector>

namespace qlec {

/// Knobs for the contention-aware transmission sub-phase (`sim.mac.*` in
/// the scenario schema; every field is sweepable via qlec_run).
struct MacConfig {
  /// Master switch. Disabled ⇒ the ideal per-attempt TX/RX path runs and
  /// traces are bit-identical to a build without the subsystem.
  bool enabled = false;
  /// Folded (XOR) into one main-stream draw to seed the engine's private
  /// Rng, mirroring the fault-injector discipline: the draw happens only
  /// when enabled, and the MAC stream never advances the simulation stream.
  std::uint64_t seed = 0;
  /// Frame airtime in backoff micro-slots (the "slot length" knob): a
  /// transmission occupies [t, t + airtime_subslots) on the contention
  /// timeline, so senders that wake later can carrier-sense it.
  int airtime_subslots = 2;  ///< >= 1
  /// Carrier-sense / interference radius in metres: senders within this
  /// range of each other defer (CCA busy), and concurrent frames whose
  /// sender is within this range of a receiver interfere at that receiver.
  double cca_range = 150.0;  ///< > 0
  /// Capture threshold: a frame survives interference when its received
  /// power is at least `capture_ratio` times the summed interferer power
  /// (1 = capture whenever merely louder; larger = stricter).
  double capture_ratio = 2.0;  ///< >= 1
  /// Retransmissions after a failed attempt (CCA abort, collision, channel
  /// loss, or NACK). Replaces SimConfig::max_retries on the MAC path.
  int max_retries = 4;  ///< >= 0
  /// Initial contention-window width in subslots; doubles per retry.
  int cw_min = 4;  ///< >= 1
  /// Contention-window cap for the binary-exponential backoff.
  int cw_max = 64;  ///< >= 1
  /// Fraction of each contention subslot a non-transmitting radio spends
  /// listening (1 = always-on receiver, smaller = aggressive sleep).
  double duty_cycle = 1.0;  ///< in (0, 1]
  /// Joules one fully-awake radio burns per contention subslot of idle
  /// listening; scaled by `duty_cycle` and charged to EnergyUse::kMac.
  double idle_j_per_subslot = 0.0;  ///< >= 0

  friend bool operator==(const MacConfig&, const MacConfig&) = default;
};

/// Cumulative MAC-layer event counters. `minus` yields per-round deltas for
/// the MacStats::per_round rows and the telemetry counters.
struct MacCounters {
  std::uint64_t tx_attempts = 0;   ///< frames actually put on the air
  std::uint64_t retransmits = 0;   ///< tx_attempts beyond each frame's first
  std::uint64_t collisions = 0;    ///< receptions destroyed by interference
  std::uint64_t capture_wins = 0;  ///< interfered receptions that captured
  std::uint64_t cca_busy = 0;      ///< attempts deferred by carrier sense
  std::uint64_t backoff_subslots = 0;  ///< total subslots spent backing off
  std::uint64_t subslots = 0;      ///< contention-phase timeline length
  // Terminal per-cause drop attribution (each dropped frame counts once;
  // these refine — never replace — the lost_link/lost_queue/lost_dead
  // packet counters on SimResult).
  std::uint64_t drop_collision = 0;    ///< retries exhausted on contention
  std::uint64_t drop_channel = 0;      ///< retries exhausted on channel loss
  std::uint64_t drop_overflow = 0;     ///< retries exhausted on full caches
  std::uint64_t drop_target_down = 0;  ///< retries exhausted on a dead/down
                                       ///< receiver (or BS outage)
  std::uint64_t drop_sender_down = 0;  ///< sender went down mid-backoff;
                                       ///< pending events dropped uncharged

  MacCounters& operator+=(const MacCounters& o) noexcept;
  /// Component-wise `*this - o` (callers pass an earlier snapshot).
  MacCounters minus(const MacCounters& o) const noexcept;

  friend bool operator==(const MacCounters&, const MacCounters&) = default;
};

/// One per-round row of MAC counter deltas (not cumulative).
struct MacRound {
  int round = 0;
  MacCounters c;
};

/// MAC outcome of one simulation run. Inert (enabled == false, all zeros)
/// unless the run had `sim.mac.enabled` set.
struct MacStats {
  bool enabled = false;
  MacCounters totals;
  /// One entry per completed round (MAC-enabled runs only).
  std::vector<MacRound> per_round;
};

}  // namespace qlec
