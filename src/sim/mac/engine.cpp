#include "sim/mac/engine.hpp"

#include <algorithm>
#include <unordered_map>

#include "geom/spatial_grid.hpp"

namespace qlec {

const char* mac_loss_cause_name(MacLossCause c) noexcept {
  switch (c) {
    case MacLossCause::kNone: return "none";
    case MacLossCause::kCollision: return "collision";
    case MacLossCause::kChannel: return "channel";
    case MacLossCause::kOverflow: return "overflow";
    case MacLossCause::kTargetDown: return "target_down";
    case MacLossCause::kSenderDown: return "sender_down";
  }
  return "?";
}

MacCounters& MacCounters::operator+=(const MacCounters& o) noexcept {
  tx_attempts += o.tx_attempts;
  retransmits += o.retransmits;
  collisions += o.collisions;
  capture_wins += o.capture_wins;
  cca_busy += o.cca_busy;
  backoff_subslots += o.backoff_subslots;
  subslots += o.subslots;
  drop_collision += o.drop_collision;
  drop_channel += o.drop_channel;
  drop_overflow += o.drop_overflow;
  drop_target_down += o.drop_target_down;
  drop_sender_down += o.drop_sender_down;
  return *this;
}

MacCounters MacCounters::minus(const MacCounters& o) const noexcept {
  MacCounters d;
  d.tx_attempts = tx_attempts - o.tx_attempts;
  d.retransmits = retransmits - o.retransmits;
  d.collisions = collisions - o.collisions;
  d.capture_wins = capture_wins - o.capture_wins;
  d.cca_busy = cca_busy - o.cca_busy;
  d.backoff_subslots = backoff_subslots - o.backoff_subslots;
  d.subslots = subslots - o.subslots;
  d.drop_collision = drop_collision - o.drop_collision;
  d.drop_channel = drop_channel - o.drop_channel;
  d.drop_overflow = drop_overflow - o.drop_overflow;
  d.drop_target_down = drop_target_down - o.drop_target_down;
  d.drop_sender_down = drop_sender_down - o.drop_sender_down;
  return d;
}

namespace {

/// Received-power proxy for the capture comparison: inverse-square with a
/// 1 m near-field clamp. Only ratios matter, so units are arbitrary.
double rx_power(const Vec3& tx, const Vec3& rx) noexcept {
  const double d = std::max(distance(tx, rx), 1.0);
  return 1.0 / (d * d);
}

}  // namespace

std::int64_t MacEngine::cw(int retry) const noexcept {
  // Binary-exponential window: cw_min << retry, capped at cw_max (a cw_max
  // below cw_min simply pins the window at cw_max).
  std::int64_t w = cfg_.cw_min;
  for (int k = 0; k < retry && w < cfg_.cw_max; ++k) w <<= 1;
  return std::min<std::int64_t>(w, cfg_.cw_max);
}

void MacEngine::push(EventHeap& heap, std::int64_t t, int kind,
                     std::uint32_t idx) {
  heap.push(Event{t, kind, seq_++, idx});
}

void MacEngine::schedule_backoff(EventHeap& heap, std::uint32_t i,
                                 std::int64_t t, int retry) {
  const std::int64_t delay =
      1 + static_cast<std::int64_t>(
              rng_.uniform_int(static_cast<std::uint64_t>(cw(retry))));
  totals_.backoff_subslots += static_cast<std::uint64_t>(delay);
  push(heap, t + delay, /*kind=*/1, i);
}

void MacEngine::resolve(std::vector<MacFrame>& frames, MacHost& host) {
  last_subslots_ = 0;
  if (frames.empty()) return;
  const std::size_t m = frames.size();
  const std::int64_t air = cfg_.airtime_subslots;

  retries_.assign(m, 0);
  in_flight_.assign(m, 0);
  next_of_src_.assign(m, -1);
  if (intervals_.size() < m) intervals_.resize(m);
  for (std::size_t i = 0; i < m; ++i) intervals_[i].clear();
  sender_pos_.clear();
  sender_pos_.reserve(m);
  for (const MacFrame& f : frames) sender_pos_.push_back(f.src_pos);
  const SpatialGrid grid(sender_pos_, cfg_.cca_range);

  // A radio transmits one frame at a time: frames sharing a sender form a
  // FIFO chain in batch order, and only the chain head contends.
  std::vector<std::uint32_t> chain_heads;
  {
    std::unordered_map<int, std::uint32_t> last_of;
    for (std::uint32_t i = 0; i < m; ++i) {
      const auto [it, fresh] = last_of.try_emplace(frames[i].src, i);
      if (fresh) {
        chain_heads.push_back(i);
      } else {
        next_of_src_[it->second] = static_cast<std::int32_t>(i);
        it->second = i;
      }
    }
  }

  EventHeap heap;
  seq_ = 0;
  // Initial contention-window randomization, drawn in batch order so the
  // stream consumption is a pure function of the batch.
  for (const std::uint32_t i : chain_heads) {
    const std::int64_t t0 = static_cast<std::int64_t>(
        rng_.uniform_int(static_cast<std::uint64_t>(cw(0))));
    totals_.backoff_subslots += static_cast<std::uint64_t>(t0);
    push(heap, t0, /*kind=*/1, i);
  }

  std::int64_t horizon = 0;
  const auto finish = [&](std::uint32_t i, std::int64_t t) {
    const std::int32_t next = next_of_src_[i];
    if (next >= 0) {
      // Successor frame of the same sender starts its own contention cycle
      // one subslot after the predecessor resolved.
      const std::int64_t t0 =
          t + 1 +
          static_cast<std::int64_t>(
              rng_.uniform_int(static_cast<std::uint64_t>(cw(0))));
      totals_.backoff_subslots += static_cast<std::uint64_t>(t0 - t - 1);
      push(heap, t0, /*kind=*/1, static_cast<std::uint32_t>(next));
    }
  };
  const auto drop = [&](std::uint32_t i, MacLossCause cause, std::int64_t t) {
    MacFrame& f = frames[i];
    f.loss = cause;
    switch (cause) {
      case MacLossCause::kCollision: ++totals_.drop_collision; break;
      case MacLossCause::kChannel: ++totals_.drop_channel; break;
      case MacLossCause::kOverflow: ++totals_.drop_overflow; break;
      case MacLossCause::kTargetDown: ++totals_.drop_target_down; break;
      case MacLossCause::kSenderDown: ++totals_.drop_sender_down; break;
      case MacLossCause::kNone: break;
    }
    host.on_drop(f, cause);
    finish(i, t);
  };
  // A failed attempt the sender observes: NACK feedback, then either a
  // backoff reschedule or the terminal drop.
  const auto nack = [&](std::uint32_t i, MacLossCause cause, std::int64_t t) {
    host.on_feedback(frames[i], false);
    if (++retries_[i] > cfg_.max_retries) {
      drop(i, cause, t);
    } else {
      schedule_backoff(heap, i, t, retries_[i]);
    }
  };

  while (!heap.empty()) {
    const Event ev = heap.top();
    heap.pop();
    horizon = std::max(horizon, ev.t);
    const std::uint32_t i = ev.idx;
    MacFrame& f = frames[i];
    if (ev.kind == 1) {
      // Attempt start. Eligibility first: a sender that crashed, was
      // stunned, or drained its battery mid-backoff drops its pending
      // frame here, uncharged (audit invariant d2 depends on this).
      if (!host.sender_up(f)) {
        drop(i, MacLossCause::kSenderDown, ev.t);
        continue;
      }
      // CCA: defer while any in-flight sender is audible at this sender.
      bool busy = false;
      grid.query_into(f.src_pos, cfg_.cca_range, query_scratch_);
      for (const std::size_t j : query_scratch_) {
        if (j != i && in_flight_[j] != 0) {
          busy = true;
          break;
        }
      }
      if (busy) {
        ++totals_.cca_busy;
        if (++retries_[i] > cfg_.max_retries) {
          // Never got on the air this time, but the saga is over: the
          // upper layer observes the missing ACK.
          host.on_feedback(f, false);
          drop(i, MacLossCause::kCollision, ev.t);
        } else {
          schedule_backoff(heap, i, ev.t, retries_[i]);
        }
        continue;
      }
      ++totals_.tx_attempts;
      if (f.attempts > 0) ++totals_.retransmits;
      host.on_attempt(f, f.attempts);
      ++f.attempts;
      in_flight_[i] = 1;
      intervals_[i].emplace_back(ev.t, ev.t + air);
      push(heap, ev.t + air, /*kind=*/0, i);
      continue;
    }

    // Frame end: resolve the reception.
    in_flight_[i] = 0;
    const std::int64_t start = ev.t - air;
    if (!host.target_listening(f)) {
      // Mirrors the ideal path's down-receiver semantics: no channel draw —
      // the receiver simply is not listening, the sender sees no ACK.
      nack(i, MacLossCause::kTargetDown, ev.t);
      continue;
    }
    // Receiver-side interference: every overlapping on-air interval whose
    // sender is audible at this frame's receiver contributes power.
    double interference = 0.0;
    grid.query_into(f.dst_pos, cfg_.cca_range, query_scratch_);
    for (const std::size_t j : query_scratch_) {
      if (j == i) continue;
      const double pw = rx_power(frames[j].src_pos, f.dst_pos);
      for (const auto& [a, b] : intervals_[j])
        if (a < ev.t && b > start) interference += pw;
    }
    if (interference > 0.0) {
      const double signal = rx_power(f.src_pos, f.dst_pos);
      if (signal >= cfg_.capture_ratio * interference) {
        ++totals_.capture_wins;
      } else {
        ++totals_.collisions;
        nack(i, MacLossCause::kCollision, ev.t);
        continue;
      }
    }
    if (!rng_.bernoulli(f.link_p)) {
      nack(i, MacLossCause::kChannel, ev.t);
      continue;
    }
    if (!host.on_decode(f)) {
      nack(i, MacLossCause::kOverflow, ev.t);
      continue;
    }
    f.delivered = true;
    host.on_feedback(f, true);
    finish(i, ev.t);
  }

  last_subslots_ = horizon;
  totals_.subslots += static_cast<std::uint64_t>(horizon);
}

}  // namespace qlec
