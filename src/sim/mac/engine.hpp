// Deterministic slotted-CSMA contention engine (DESIGN.md §14). The
// simulator batches one sim-slot's transmissions into a "contention phase"
// of MacFrames and calls resolve(): the engine plays them out on a micro-
// slot event timeline — carrier sense within `cca_range` via a SpatialGrid
// over the phase's sender positions, capture-threshold interference at each
// receiver, binary-exponential backoff between retransmissions — and hands
// every side effect (energy charges, queue pushes, ACK/NACK protocol
// feedback, loss accounting) back through the MacHost callbacks so the
// engine itself owns no simulation state.
//
// Determinism contract: the engine draws only from its own private Rng
// stream, in event-processing order, and the event queue is totally ordered
// by (time, end-before-start, insertion sequence) — so a resolve() is a
// pure function of (config, seed stream position, frame batch). The batch
// itself is built serially in canonical node order by the simulator, which
// is what keeps MAC-enabled digests invariant to shard count and
// ExecPolicy.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "geom/vec3.hpp"
#include "net/packet.hpp"
#include "sim/mac/mac.hpp"
#include "util/rng.hpp"

namespace qlec {

/// Why a frame was terminally dropped (after the retry budget).
enum class MacLossCause : int {
  kNone = 0,     ///< not dropped (delivered)
  kCollision,    ///< contention: CCA aborts or destructive interference
  kChannel,      ///< the lossy-link Bernoulli failed on every attempt
  kOverflow,     ///< the receiver's cache was full on every attempt
  kTargetDown,   ///< the receiver (or the BS) was down / not listening
  kSenderDown,   ///< the sender went down with the frame still pending
};

const char* mac_loss_cause_name(MacLossCause c) noexcept;

/// One transmission saga: a routed packet (or fused uplink aggregate) that
/// will be attempted up to 1 + max_retries times toward a fixed target.
/// The caller fills the routing/energy fields; the engine fills the outcome.
struct MacFrame {
  int src = -1;
  int target = kBaseStationId;
  /// Caller-side payload index (packet slot, uplink-chain slot, ...).
  std::uint32_t tag = 0;
  double bits = 0.0;
  double tx_j = 0.0;    ///< sender energy per attempt (distance-resolved)
  double link_p = 1.0;  ///< per-attempt channel success probability
  Vec3 src_pos{};
  Vec3 dst_pos{};

  // Outcome (engine-written).
  bool delivered = false;
  MacLossCause loss = MacLossCause::kNone;
  int attempts = 0;  ///< transmissions actually put on the air
};

/// Simulation-side callbacks. The engine guarantees: `on_attempt` fires
/// once per on-air transmission (attempt index from 0) and only while
/// `sender_up` holds; `on_decode` fires only for clean (un-collided,
/// channel-passed) receptions at a listening target; `on_feedback` fires
/// once per resolved attempt that the sender can observe (ACK or NACK — a
/// sender that died mid-backoff observes nothing); `on_drop` fires once for
/// a frame that exhausted its retries (loss accounting).
class MacHost {
 public:
  virtual ~MacHost() = default;
  virtual bool sender_up(const MacFrame& f) = 0;
  virtual bool target_listening(const MacFrame& f) = 0;
  virtual void on_attempt(MacFrame& f, int attempt) = 0;
  /// Clean decode at the receiver: charge RX, accept into the cache (or
  /// record a BS delivery). Returns false on cache overflow (NACK).
  virtual bool on_decode(MacFrame& f) = 0;
  virtual void on_feedback(MacFrame& f, bool ack) = 0;
  virtual void on_drop(MacFrame& f, MacLossCause cause) = 0;
};

class MacEngine {
 public:
  MacEngine(const MacConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Plays one contention phase to completion. Every frame ends either
  /// delivered or dropped with a cause; per-frame outcome fields and the
  /// cumulative counters are updated. Multiple frames from the same sender
  /// are serialized (a radio transmits one frame at a time).
  void resolve(std::vector<MacFrame>& frames, MacHost& host);

  /// Cumulative counters across every phase resolved so far.
  const MacCounters& totals() const noexcept { return totals_; }
  /// Timeline length (subslots) of the most recent resolve(); drives the
  /// duty-cycle idle-listening charge.
  std::int64_t last_phase_subslots() const noexcept { return last_subslots_; }

 private:
  struct Event {
    std::int64_t t = 0;
    int kind = 0;  ///< 0 = frame-end, 1 = attempt-start (ends first at t)
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;
    friend bool operator>(const Event& a, const Event& b) noexcept {
      if (a.t != b.t) return a.t > b.t;
      if (a.kind != b.kind) return a.kind > b.kind;
      return a.seq > b.seq;
    }
  };
  using EventHeap =
      std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

  std::int64_t cw(int retry) const noexcept;
  void push(EventHeap& heap, std::int64_t t, int kind, std::uint32_t idx);
  void schedule_backoff(EventHeap& heap, std::uint32_t i, std::int64_t t,
                        int retry);

  const MacConfig cfg_;
  Rng rng_;  ///< private stream; persists across phases within one run
  MacCounters totals_;
  std::int64_t last_subslots_ = 0;
  std::uint64_t seq_ = 0;

  // Per-phase scratch (grow-only; reused across phases).
  std::vector<int> retries_;
  std::vector<std::uint8_t> in_flight_;
  std::vector<std::int32_t> next_of_src_;  ///< same-sender FIFO chains
  /// Every on-air interval per frame, for receiver-side overlap checks
  /// (bounded by 1 + max_retries entries each).
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> intervals_;
  std::vector<Vec3> sender_pos_;
  std::vector<std::size_t> query_scratch_;
};

}  // namespace qlec
