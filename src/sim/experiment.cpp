#include "sim/experiment.hpp"

namespace qlec {

Network build_network(const ExperimentConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  switch (cfg.deployment) {
    case Deployment::kTerrain: return make_terrain_network(cfg.scenario, rng);
    case Deployment::kUniform: break;
  }
  return make_uniform_network(cfg.scenario, rng);
}

std::vector<SimResult> run_replications(const std::string& protocol_name,
                                        const ExperimentConfig& cfg,
                                        const ExecPolicy& exec) {
  std::vector<SimResult> results(cfg.seeds);
  // Protocols and simulator must agree on what "dead" means; the sim's
  // death line is authoritative for the whole experiment.
  ProtocolOptions protocol_opts = cfg.protocol;
  protocol_opts.death_line = cfg.sim.death_line;
  const auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = cfg.base_seed + i;
    Network net = build_network(cfg, seed);
    // Distinct stream for protocol/sim randomness vs deployment.
    Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
    auto protocol = make_protocol(protocol_name, net, protocol_opts);
    if (cfg.seeds > 1 && cfg.sim.telemetry.enabled) {
      // Each replication gets its own telemetry output files ("ev.jsonl" ->
      // "ev.seed3.jsonl"), so pool-mode seeds never share a sink.
      SimConfig sim = cfg.sim;
      sim.telemetry = obs::Telemetry::with_seed_suffix(sim.telemetry, i);
      results[i] = run_simulation(net, *protocol, sim, rng);
      return;
    }
    results[i] = run_simulation(net, *protocol, cfg.sim, rng);
  };
  if (cfg.seeds > 1 && exec.is_borrow()) {
    exec.borrowed()->parallel_for(cfg.seeds, run_one);
  } else if (cfg.seeds > 1 && exec.is_pool()) {
    ThreadPool local(exec.threads());
    local.parallel_for(cfg.seeds, run_one);
  } else {
    for (std::size_t i = 0; i < cfg.seeds; ++i) run_one(i);
  }
  return results;
}

AggregatedMetrics run_experiment(const std::string& protocol_name,
                                 const ExperimentConfig& cfg,
                                 const ExecPolicy& exec) {
  AggregatedMetrics agg;
  for (const SimResult& r : run_replications(protocol_name, cfg, exec))
    agg.add(r);
  return agg;
}

}  // namespace qlec
