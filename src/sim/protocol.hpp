// The contract between the round-based simulator and a clustering/routing
// protocol. The simulator owns traffic, queues, radio-energy charging, and
// delivery bookkeeping; the protocol owns head election and relay choice.
// Header-only so protocol implementations in lower layers (src/core) can
// implement it without a link-time dependency on qlec_sim.
#pragma once

#include <string>

#include "energy/ledger.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace qlec {

class ExecContext;  // util/exec.hpp

namespace obs {
class Telemetry;  // obs/telemetry.hpp
}

class ClusteringProtocol {
 public:
  virtual ~ClusteringProtocol() = default;

  virtual std::string name() const = 0;

  /// Flat-routing protocols (e.g. QELAR) have no cluster heads: route() is
  /// consulted at EVERY hop, packets are store-and-forwarded through
  /// per-node relay buffers without aggregation, and there is no round-end
  /// uplink phase. Cluster-based protocols return false.
  virtual bool flat_routing() const { return false; }

  /// Elect cluster heads for `round` (set is_head flags) and prepare routing
  /// state. Control-plane energy (HELLO broadcasts, cluster announcements)
  /// is charged to node batteries here and recorded in `ledger` under
  /// EnergyUse::kControl.
  virtual void on_round_start(Network& net, int round, Rng& rng,
                              EnergyLedger& ledger) = 0;

  /// Relay target for a fresh `bits`-bit packet at node `src`: a cluster
  /// head id, or kBaseStationId for a direct uplink.
  virtual int route(const Network& net, int src, double bits, Rng& rng) = 0;

  /// Where head `head` sends its round-end aggregate: kBaseStationId for a
  /// direct uplink (LEACH/DEEC/QLEC/k-means), or another head id for
  /// hierarchical multi-hop schemes (the FCM comparator). The simulator
  /// follows the chain hop by hop until it reaches the BS.
  virtual int uplink_target(const Network& net, int head, Rng& rng) {
    (void)net; (void)head; (void)rng;
    return kBaseStationId;
  }

  /// ACK feedback for a member -> target transmission attempt.
  virtual void on_tx_result(const Network& net, int src, int target,
                            bool success) {
    (void)net; (void)src; (void)target; (void)success;
  }

  /// ACK feedback for a cluster head's aggregate uplink to the BS.
  virtual void on_uplink_result(const Network& net, int head, bool success) {
    (void)net; (void)head; (void)success;
  }

  virtual void on_round_end(Network& net, int round) {
    (void)net; (void)round;
  }

  /// Number of value/Q updates the protocol has performed so far (0 for
  /// non-learning protocols); surfaces the X of Theorem 3 in results.
  virtual std::size_t learning_updates() const { return 0; }

  /// Called once per round after election and the simulator's state
  /// refresh, before the first slot: a protocol may hoist per-round TX
  /// precomputation here (e.g. QLEC prefills its y-cost rows with the SIMD
  /// kernels). Must be behaviorally invisible — routing decisions, energy,
  /// and traces are bit-identical whether or not anything is precomputed.
  virtual void prepare_tx(const Network& net, double packet_bits) {
    (void)net;
    (void)packet_bits;
  }

  /// Attaches the intra-round sharding context for the coming run (nullptr
  /// detaches = fully serial round core). The simulator calls this when
  /// SimConfig::exec.shards > 1; the pointer is only valid for that run.
  /// The determinism contract of util/exec.hpp applies: protocols may fan
  /// RNG-free per-node work over shards but must keep every RNG draw and
  /// every order-sensitive merge on the calling thread in canonical order,
  /// so output is bit-identical at every shard count.
  virtual void set_exec(ExecContext* exec) { exec_ = exec; }

  /// Attaches the telemetry context for the coming run (nullptr detaches).
  /// The simulator calls this around run_simulation when
  /// SimConfig::telemetry is enabled; the pointer is only valid for that
  /// run. Strictly observational: protocols may emit events and bump
  /// counters through it but must not let it influence any decision.
  /// Overriders (e.g. protocols owning a sub-router that self-instruments)
  /// must call the base implementation.
  virtual void set_telemetry(obs::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

 protected:
  /// The attached context, or nullptr (the common, zero-cost case).
  obs::Telemetry* telemetry_ = nullptr;
  /// The attached sharding context, or nullptr (serial round core).
  ExecContext* exec_ = nullptr;
};

}  // namespace qlec
