#include "sim/protocols/registry.hpp"

#include <cmath>
#include <stdexcept>

#include "core/optimal_k.hpp"
#include "core/qlec.hpp"
#include "sim/protocols/deec_protocol.hpp"
#include "sim/protocols/direct_protocol.hpp"
#include "sim/protocols/fcm_protocol.hpp"
#include "sim/protocols/heed_protocol.hpp"
#include "sim/protocols/ideec_protocol.hpp"
#include "sim/protocols/kmeans_protocol.hpp"
#include "sim/protocols/leach_protocol.hpp"
#include "sim/protocols/leach_rlc_protocol.hpp"
#include "sim/protocols/qelar_protocol.hpp"
#include "sim/protocols/qleach_protocol.hpp"
#include "sim/protocols/reech_me_protocol.hpp"
#include "sim/protocols/tl_leach_protocol.hpp"

namespace qlec {
namespace {

std::size_t resolve_k(const Network& net, const ProtocolOptions& opt) {
  if (opt.k > 0) return opt.k;
  if (opt.qlec.force_k > 0)
    return static_cast<std::size_t>(opt.qlec.force_k);
  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  return optimal_cluster_count_rounded(net.size(), m_side,
                                       net.mean_dist_to_bs(), opt.radio);
}

}  // namespace

std::unique_ptr<ClusteringProtocol> make_protocol(const std::string& name,
                                                  const Network& net,
                                                  const ProtocolOptions& opt) {
  const RadioModel radio(opt.radio);
  const std::size_t k = resolve_k(net, opt);
  const double p =
      static_cast<double>(k) /
      static_cast<double>(std::max<std::size_t>(net.size(), 1));

  if (name == "qlec") {
    QlecParams params = opt.qlec;
    params.hello_bits = opt.hello_bits;
    return std::make_unique<QlecProtocol>(net, params, radio,
                                          opt.death_line);
  }
  if (name == "kmeans")
    return std::make_unique<KmeansProtocol>(k, opt.death_line, radio,
                                            opt.hello_bits);
  if (name == "fcm")
    return std::make_unique<FcmProtocol>(k, opt.fcm_levels, opt.death_line,
                                         radio, opt.hello_bits);
  if (name == "leach")
    return std::make_unique<LeachProtocol>(p, opt.death_line, radio,
                                           opt.hello_bits);
  if (name == "deec") {
    DeecParams dp;
    dp.p_opt = p;
    dp.total_rounds = opt.qlec.total_rounds;
    return std::make_unique<DeecProtocol>(dp, opt.death_line, radio,
                                          opt.hello_bits);
  }
  if (name == "tl-leach") {
    // Level split: roughly a third of the heads serve as primaries.
    return std::make_unique<TlLeachProtocol>(p / 3.0, p, opt.death_line,
                                             radio, opt.hello_bits);
  }
  if (name == "heed") {
    HeedConfig hc;
    hc.cluster_range = cluster_radius(
        std::cbrt(std::max(net.domain().volume(), 0.0)),
        static_cast<double>(k));
    hc.c_prob = p;
    return std::make_unique<HeedProtocol>(hc, opt.death_line, radio,
                                          opt.hello_bits);
  }
  if (name == "ideec")
    return std::make_unique<ImprovedDeecProtocol>(
        k, opt.qlec.total_rounds, opt.death_line, radio, opt.hello_bits);
  if (name == "qelar") {
    QelarProtocol::Config qc;
    qc.qelar.gamma = opt.qlec.gamma;
    // Scale the neighbour radius with the deployment (~cluster radius for
    // k_opt keeps the graph connected without being complete).
    const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
    qc.comm_range =
        std::max(40.0, 1.2 * cluster_radius(m_side, static_cast<double>(k)));
    return std::make_unique<QelarProtocol>(qc);
  }
  if (name == "q-leach")
    return std::make_unique<QLeachProtocol>(p, opt.sector_mode,
                                            opt.death_line, radio,
                                            opt.hello_bits);
  if (name == "reech-me")
    return std::make_unique<ReechMeProtocol>(opt.sector_mode, opt.death_line,
                                             radio, opt.hello_bits);
  if (name == "leach-rlc")
    return std::make_unique<LeachRlcProtocol>(
        make_controller(opt.controller, k, p), opt.death_line, radio,
        opt.hello_bits);
  if (name == "direct") return std::make_unique<DirectProtocol>();
  throw std::invalid_argument("unknown protocol: " + name);
}

std::vector<std::string> protocol_names() {
  return {"qlec",  "ideec",    "kmeans",  "fcm",      "leach",
          "deec",  "heed",     "tl-leach", "qelar",   "direct",
          "q-leach", "reech-me", "leach-rlc"};
}

}  // namespace qlec
