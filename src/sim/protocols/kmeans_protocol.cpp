#include "sim/protocols/kmeans_protocol.hpp"

#include <cmath>

#include "cluster/kmeans.hpp"
#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

KmeansProtocol::KmeansProtocol(std::size_t k, double death_line,
                               RadioModel radio, double hello_bits)
    : k_(k == 0 ? 1 : k),
      death_line_(death_line),
      radio_(radio),
      hello_bits_(hello_bits) {}

void KmeansProtocol::on_round_start(Network& net, int round, Rng& rng,
                                    EnergyLedger& ledger) {
  (void)round;
  net.reset_heads();
  const std::vector<int> alive = net.alive_ids(death_line_);
  if (alive.empty()) {
    assignment_.assign(net.size(), kBaseStationId);
    return;
  }
  std::vector<Vec3> pts;
  pts.reserve(alive.size());
  for (const int id : alive) pts.push_back(net.node(id).pos);

  const Clustering clustering = kmeans(pts, k_, rng);
  const std::vector<std::size_t> head_idx =
      nearest_points_to_centroids(pts, clustering.centroids);

  std::vector<int> heads;
  heads.reserve(head_idx.size());
  for (const std::size_t i : head_idx) {
    const int id = alive[i];
    net.node(id).is_head = true;
    net.node(id).last_head_round = round;
    heads.push_back(id);
  }
  assignment_ = detail::assign_nearest_head(net, heads, death_line_, exec_);

  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  detail::charge_hello(net, heads, assignment_, radio_, hello_bits_,
                       cluster_radius(m_side, static_cast<double>(k_)),
                       death_line_, ledger);
}

int KmeansProtocol::route(const Network& net, int src, double bits,
                          Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  // Assigned head died mid-round: fall back to the nearest live head.
  const std::vector<int> heads = net.head_ids();
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, heads, death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

}  // namespace qlec
