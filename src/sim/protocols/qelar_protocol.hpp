// QELAR adapter (Hu & Fei, TMC 2010 — the paper's [6]): flat multi-hop
// Q-routing with no clustering. Every node store-and-forwards toward the
// BS along hops chosen by the learned V values; the connectivity graph and
// a few training sweeps refresh each round (positions drift under
// mobility, residual energies change the rewards).
#pragma once

#include <memory>
#include <string>

#include "routing/qelar.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class QelarProtocol final : public ClusteringProtocol {
 public:
  struct Config {
    double comm_range = 70.0;    ///< neighbour radius, meters
    double packet_bits = 4000.0; ///< edge-energy reference size
    QelarParams qelar;           ///< reward/learning parameters
    int sweeps_per_round = 2;    ///< refresh training per round
    LinkModel link;              ///< channel model for planning
  };

  explicit QelarProtocol(Config cfg);

  std::string name() const override { return "QELAR"; }
  bool flat_routing() const override { return true; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;
  std::size_t learning_updates() const override;

  const QelarRouter* router() const noexcept { return router_.get(); }

 private:
  Config cfg_;
  RadioModel radio_;
  std::unique_ptr<ConnectivityGraph> graph_;
  std::unique_ptr<QelarRouter> router_;
  std::size_t updates_before_ = 0;  ///< carried across router rebuilds
};

}  // namespace qlec
