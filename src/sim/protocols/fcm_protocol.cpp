#include "sim/protocols/fcm_protocol.hpp"

#include <cmath>

#include "cluster/fcm.hpp"
#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

FcmProtocol::FcmProtocol(std::size_t k, int hierarchy_levels,
                         double death_line, RadioModel radio,
                         double hello_bits)
    : k_(k == 0 ? 1 : k),
      levels_(hierarchy_levels < 1 ? 1 : hierarchy_levels),
      death_line_(death_line),
      radio_(radio),
      hello_bits_(hello_bits) {}

void FcmProtocol::on_round_start(Network& net, int round, Rng& rng,
                                 EnergyLedger& ledger) {
  (void)round;
  net.reset_heads();
  const std::vector<int> alive = net.alive_ids(death_line_);
  if (alive.empty()) {
    assignment_.assign(net.size(), kBaseStationId);
    hierarchy_ = {};
    return;
  }
  std::vector<Vec3> pts;
  std::vector<double> residual;
  std::vector<double> initial;
  pts.reserve(alive.size());
  for (const int id : alive) {
    pts.push_back(net.node(id).pos);
    residual.push_back(net.node(id).battery.residual());
    initial.push_back(net.node(id).battery.initial());
  }

  const FcmResult fcm = fuzzy_cmeans(pts, k_, rng);
  const std::vector<std::size_t> head_idx =
      fcm_select_heads(fcm, residual, initial);

  std::vector<int> heads;
  heads.reserve(head_idx.size());
  for (const std::size_t i : head_idx) {
    const int id = alive[i];
    net.node(id).is_head = true;
    net.node(id).last_head_round = round;
    heads.push_back(id);
  }

  // Member assignment: argmax membership among clusters whose head is up
  // (hard assignment of the fuzzy partition).
  assignment_.assign(net.size(), kBaseStationId);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const auto& mem = fcm.membership[i];
    int best_head = kBaseStationId;
    double best_u = -1.0;
    for (std::size_t c = 0; c < heads.size(); ++c) {
      if (mem[c] > best_u) {
        best_u = mem[c];
        best_head = heads[c];
      }
    }
    assignment_[static_cast<std::size_t>(alive[i])] = best_head;
  }

  hierarchy_ = build_fcm_hierarchy(net, heads, levels_);

  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  detail::charge_hello(net, heads, assignment_, radio_, hello_bits_,
                       cluster_radius(m_side, static_cast<double>(k_)),
                       death_line_, ledger);
}

int FcmProtocol::route(const Network& net, int src, double bits, Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

int FcmProtocol::uplink_target(const Network& net, int head, Rng& rng) {
  (void)rng;
  const int next = fcm_next_hop(net, hierarchy_, head);
  if (next == kBaseStationId || net.node(next).operational(death_line_))
    return next;
  return kBaseStationId;  // inner relay died: bail out directly
}

}  // namespace qlec
