// "Classic k-means clustering" comparator: every round, cluster the alive
// nodes purely by position, head each cluster with the node nearest its
// centroid (energy-blind — the property the paper's Fig. 3 punishes), and
// send members to their geometric head.
#pragma once

#include <string>
#include <vector>

#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class KmeansProtocol final : public ClusteringProtocol {
 public:
  KmeansProtocol(std::size_t k, double death_line, RadioModel radio,
                 double hello_bits = 200.0);

  std::string name() const override { return "k-means"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

  const std::vector<int>& assignment() const noexcept { return assignment_; }

 private:
  std::size_t k_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
};

}  // namespace qlec
