#include "sim/protocols/reech_me_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

ReechMeProtocol::ReechMeProtocol(SectorMode mode, double death_line,
                                 RadioModel radio, double hello_bits)
    : mode_(mode), death_line_(death_line), radio_(radio),
      hello_bits_(hello_bits) {}

void ReechMeProtocol::on_round_start(Network& net, int round, Rng& rng,
                                     EnergyLedger& ledger) {
  (void)rng;  // fully deterministic election: zero main-stream draws
  net.reset_heads();
  const SectorGrid grid = SectorGrid::for_mode(net.domain(), mode_);
  const std::size_t sectors = grid.count();

  // Region head = argmax residual energy among the region's operational
  // nodes; the id-order scan breaks exact-energy ties to the lower id.
  std::vector<std::uint64_t> sector(net.size(), 0);
  std::vector<int> region_head(sectors, kBaseStationId);
  std::vector<double> region_energy(sectors, -1.0);
  for (const SensorNode& n : net.nodes()) {
    const std::uint64_t s = grid.sector_of(n.pos);
    sector[static_cast<std::size_t>(n.id)] = s;
    if (!n.operational(death_line_)) continue;
    if (n.battery.residual() > region_energy[s]) {
      region_energy[s] = n.battery.residual();
      region_head[s] = n.id;
    }
  }
  std::vector<int> heads;
  for (std::size_t s = 0; s < sectors; ++s) {
    if (region_head[s] == kBaseStationId) continue;
    SensorNode& n = net.node(region_head[s]);
    n.is_head = true;
    n.last_head_round = round;
    heads.push_back(n.id);
  }
  std::sort(heads.begin(), heads.end());

  // Region-aware membership: every node reports to its own region's head;
  // nodes in a bare region (no operational node at all) fall back to the
  // global nearest alive head. RNG-free and id-ordered.
  assignment_.assign(net.size(), kBaseStationId);
  for (const SensorNode& n : net.nodes()) {
    const int rh =
        region_head[static_cast<std::size_t>(
            sector[static_cast<std::size_t>(n.id)])];
    if (rh != kBaseStationId) {
      assignment_[static_cast<std::size_t>(n.id)] = rh;
      continue;
    }
    double best = std::numeric_limits<double>::infinity();
    for (const int h : heads) {
      const double d = net.dist(n.id, h);
      if (d < best) {
        best = d;
        assignment_[static_cast<std::size_t>(n.id)] = h;
      }
    }
  }

  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  detail::charge_hello(net, heads, assignment_, radio_, hello_bits_,
                       cluster_radius(m_side,
                                      std::max<double>(1.0,
                                                       static_cast<double>(
                                                           sectors))),
                       death_line_, ledger);
}

int ReechMeProtocol::route(const Network& net, int src, double bits,
                           Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

}  // namespace qlec
