// Plain DEEC adapter (ablation baseline): energy-proportional election
// WITHOUT the QLEC improvements (no Eq. 4 threshold, no Algorithm 3
// pruning), members join the nearest head, heads uplink directly.
#pragma once

#include <string>
#include <vector>

#include "cluster/deec.hpp"
#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class DeecProtocol final : public ClusteringProtocol {
 public:
  DeecProtocol(DeecParams params, double death_line, RadioModel radio,
               double hello_bits = 200.0);

  std::string name() const override { return "DEEC"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

 private:
  DeecParams params_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
};

}  // namespace qlec
