// LEACH-RLC adapter (arXiv 2401.15767): clustering is decided by a
// base-station-side Controller (sim/controller.hpp, DESIGN.md §15) that
// observes the global network state at every round boundary — here an
// RL-lite tabular Q-learner tuning the cluster-count budget, or the
// trivial passthrough rotation for seam tests. The protocol is a thin
// adapter: it stamps the controller's head set onto the network, assigns
// members to the nearest alive head, charges the HELLO exchange, and
// feeds the settled post-round state back for the controller's backup.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "energy/radio_model.hpp"
#include "sim/controller.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class LeachRlcProtocol final : public ClusteringProtocol {
 public:
  LeachRlcProtocol(std::unique_ptr<Controller> controller, double death_line,
                   RadioModel radio, double hello_bits = 200.0);

  std::string name() const override { return "LEACH-RLC"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;
  void on_round_end(Network& net, int round) override;
  std::size_t learning_updates() const override {
    return controller_->updates();
  }

  const Controller& controller() const { return *controller_; }

 private:
  std::unique_ptr<Controller> controller_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> heads_;
  std::vector<int> assignment_;
};

}  // namespace qlec
