// Helpers shared by the baseline protocol adapters: nearest-head member
// assignment and the HELLO control-energy charge (applied uniformly across
// protocols so the Fig. 3(b) comparison is apples-to-apples).
#pragma once

#include <limits>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/network.hpp"

namespace qlec::detail {

/// assignment[i] = id of the nearest alive head for node i (kBaseStationId
/// when `heads` is empty).
inline std::vector<int> assign_nearest_head(const Network& net,
                                            const std::vector<int>& heads,
                                            double death_line) {
  std::vector<int> assignment(net.size(), kBaseStationId);
  for (const SensorNode& n : net.nodes()) {
    double best = std::numeric_limits<double>::infinity();
    for (const int h : heads) {
      if (!net.node(h).battery.alive(death_line)) continue;
      const double d = net.dist(n.id, h);
      if (d < best) {
        best = d;
        assignment[static_cast<std::size_t>(n.id)] = h;
      }
    }
  }
  return assignment;
}

/// Charges each head one HELLO broadcast over `radius` and each alive
/// member one HELLO reception (members hear their own head announce).
inline void charge_hello(Network& net, const std::vector<int>& heads,
                         const std::vector<int>& assignment,
                         const RadioModel& radio, double hello_bits,
                         double radius, double death_line,
                         EnergyLedger& ledger) {
  if (hello_bits <= 0.0) return;
  for (const int h : heads) {
    ledger.charge(EnergyUse::kControl,
                  net.node(h).battery.consume(
                      radio.tx_energy(hello_bits, radius)),
                  h);
  }
  for (const SensorNode& n : net.nodes()) {
    const int a = assignment[static_cast<std::size_t>(n.id)];
    if (a == kBaseStationId || n.is_head) continue;
    if (!n.battery.alive(death_line)) continue;
    ledger.charge(EnergyUse::kControl,
                  net.node(n.id).battery.consume(
                      radio.rx_energy(hello_bits)),
                  n.id);
  }
}

}  // namespace qlec::detail
