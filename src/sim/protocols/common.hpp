// Helpers shared by the baseline protocol adapters: nearest-head member
// assignment and the HELLO control-energy charge (applied uniformly across
// protocols so the Fig. 3(b) comparison is apples-to-apples).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "energy/radio_model.hpp"
#include "geom/spatial_grid.hpp"
#include "net/network.hpp"
#include "util/exec.hpp"
#include "util/simd.hpp"

namespace qlec::detail {

/// Reference O(N*k) implementation of nearest-alive-head assignment:
/// assignment[i] = id of the nearest alive head for node i (kBaseStationId
/// when no head is alive). Ties in distance go to the earliest head in
/// `heads` order. Kept as the equivalence oracle for the grid-backed path.
inline std::vector<int> assign_nearest_head_brute(
    const Network& net, const std::vector<int>& heads, double death_line) {
  std::vector<int> assignment(net.size(), kBaseStationId);
  for (const SensorNode& n : net.nodes()) {
    double best = std::numeric_limits<double>::infinity();
    for (const int h : heads) {
      if (!net.node(h).operational(death_line)) continue;
      const double d = net.dist(n.id, h);
      if (d < best) {
        best = d;
        assignment[static_cast<std::size_t>(n.id)] = h;
      }
    }
  }
  return assignment;
}

/// Grid-backed nearest-alive-head assignment, exactly equivalent to
/// assign_nearest_head_brute (same winner including distance ties). Per
/// node: an expanding-ring grid lookup yields an upper bound D on the
/// nearest-head distance, a radius query slightly inflated past D collects
/// every head whose rounded sqrt distance could equal the minimum, and the
/// brute-force comparison loop is replayed over those candidates in head
/// order — so the argmin and its tie-break are decided by the identical
/// float comparisons, while only O(candidates) instead of O(k) heads are
/// examined. Small head sets instead take a SIMD scan: one dist_to_point +
/// argmin over an alive-head SoA per node, whose first-wins strict-< lane
/// merge reproduces the brute loop's winner and tie-break exactly.
///
/// The per-node loop is RNG-free and writes only assignment[node], so when
/// an ExecContext with a round partition is supplied it fans out over the
/// spatial shards; output is bit-identical at every shard count.
inline std::vector<int> assign_nearest_head(const Network& net,
                                            const std::vector<int>& heads,
                                            double death_line,
                                            ExecContext* exec = nullptr) {
  // Alive heads, preserving `heads` order (the tie-break order).
  std::vector<int> alive;
  alive.reserve(heads.size());
  for (const int h : heads)
    if (net.node(h).operational(death_line)) alive.push_back(h);

  std::vector<int> assignment(net.size(), kBaseStationId);
  if (alive.empty()) return assignment;

  // Runs fn(id) for every node id — sharded when a partition is live. The
  // shards cover [0, net.size()) disjointly, so this visits each node once.
  const auto over_nodes = [&](const auto& fn) {
    if (exec != nullptr && exec->has_partition()) {
      exec->for_shards([&](int s) {
        for (const std::uint32_t id : exec->shard_nodes(s)) fn(id);
      });
    } else {
      const std::uint32_t n = static_cast<std::uint32_t>(net.size());
      for (std::uint32_t id = 0; id < n; ++id) fn(id);
    }
  };

  constexpr std::size_t kBruteThreshold = 16;
  if (alive.size() < kBruteThreshold) {
    // SIMD small-set path. Equivalent to the brute scan: dead heads are
    // pre-filtered in `heads` order (skipping them never updates `best`),
    // dist_to_point matches net.dist bit-for-bit, and argmin keeps the
    // first strict minimum exactly like the `d < best` replay.
    double xs[kBruteThreshold], ys[kBruteThreshold], zs[kBruteThreshold];
    const std::size_t k = alive.size();
    for (std::size_t c = 0; c < k; ++c) {
      const Vec3& p = net.node(alive[c]).pos;
      xs[c] = p.x;
      ys[c] = p.y;
      zs[c] = p.z;
    }
    const simd::Kernels& kr = simd::kernels();
    over_nodes([&](std::uint32_t id) {
      double dbuf[kBruteThreshold];
      const Vec3& p = net.node(static_cast<int>(id)).pos;
      kr.dist_to_point(xs, ys, zs, k, p.x, p.y, p.z, dbuf);
      const std::size_t win = kr.argmin(dbuf, k);
      if (win != simd::npos) assignment[id] = alive[win];
    });
    return assignment;
  }

  std::vector<Vec3> head_pos;
  head_pos.reserve(alive.size());
  for (const int h : alive) head_pos.push_back(net.node(h).pos);

  // ~1 head per cell: typical nearest-head distance in a volume V with k
  // heads is (V/k)^(1/3), so queries touch O(1) cells.
  const double volume = net.domain().volume();
  const double cell =
      volume > 0.0
          ? std::cbrt(volume / static_cast<double>(alive.size()))
          : 1.0;
  const SpatialGrid grid(head_pos, cell);

  // Thread-local candidate scratch: over_nodes may run this lambda from
  // several pool workers at once, but each node id is visited exactly once,
  // so the assignment writes stay disjoint.
  const auto assign_one = [&](std::uint32_t id, std::vector<std::size_t>& cands) {
    const Vec3& p = net.node(static_cast<int>(id)).pos;
    const std::size_t near = grid.nearest(p);
    // Upper bound on the true minimum, computed with the same distance()
    // expression as the brute loop; inflate so sqrt-rounding ties survive
    // the grid's squared-distance cut.
    const double d_near = distance(p, head_pos[near]);
    grid.query_into(p, d_near + 1e-9 * (d_near + 1.0), cands);
    std::sort(cands.begin(), cands.end());
    double best = std::numeric_limits<double>::infinity();
    for (const std::size_t c : cands) {
      const double d = distance(p, head_pos[c]);
      if (d < best) {
        best = d;
        assignment[id] = alive[c];
      }
    }
  };
  if (exec != nullptr && exec->has_partition()) {
    exec->for_shards([&](int s) {
      std::vector<std::size_t> cands;
      for (const std::uint32_t id : exec->shard_nodes(s)) assign_one(id, cands);
    });
  } else {
    std::vector<std::size_t> cands;
    const std::uint32_t n = static_cast<std::uint32_t>(net.size());
    for (std::uint32_t id = 0; id < n; ++id) assign_one(id, cands);
  }
  return assignment;
}

/// Charges each head one HELLO broadcast over `radius` and each alive
/// member one HELLO reception (members hear their own head announce).
inline void charge_hello(Network& net, const std::vector<int>& heads,
                         const std::vector<int>& assignment,
                         const RadioModel& radio, double hello_bits,
                         double radius, double death_line,
                         EnergyLedger& ledger) {
  if (hello_bits <= 0.0) return;
  for (const int h : heads) {
    ledger.charge(EnergyUse::kControl,
                  net.node(h).battery.consume(
                      radio.tx_energy(hello_bits, radius)),
                  h);
  }
  for (const SensorNode& n : net.nodes()) {
    const int a = assignment[static_cast<std::size_t>(n.id)];
    if (a == kBaseStationId || n.is_head) continue;
    if (!n.operational(death_line)) continue;
    ledger.charge(EnergyUse::kControl,
                  net.node(n.id).battery.consume(
                      radio.rx_energy(hello_bits)),
                  n.id);
  }
}

}  // namespace qlec::detail
