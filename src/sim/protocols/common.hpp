// Helpers shared by the baseline protocol adapters: nearest-head member
// assignment and the HELLO control-energy charge (applied uniformly across
// protocols so the Fig. 3(b) comparison is apples-to-apples).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "energy/radio_model.hpp"
#include "geom/spatial_grid.hpp"
#include "net/network.hpp"

namespace qlec::detail {

/// Reference O(N*k) implementation of nearest-alive-head assignment:
/// assignment[i] = id of the nearest alive head for node i (kBaseStationId
/// when no head is alive). Ties in distance go to the earliest head in
/// `heads` order. Kept as the equivalence oracle for the grid-backed path.
inline std::vector<int> assign_nearest_head_brute(
    const Network& net, const std::vector<int>& heads, double death_line) {
  std::vector<int> assignment(net.size(), kBaseStationId);
  for (const SensorNode& n : net.nodes()) {
    double best = std::numeric_limits<double>::infinity();
    for (const int h : heads) {
      if (!net.node(h).operational(death_line)) continue;
      const double d = net.dist(n.id, h);
      if (d < best) {
        best = d;
        assignment[static_cast<std::size_t>(n.id)] = h;
      }
    }
  }
  return assignment;
}

/// Grid-backed nearest-alive-head assignment, exactly equivalent to
/// assign_nearest_head_brute (same winner including distance ties). Per
/// node: an expanding-ring grid lookup yields an upper bound D on the
/// nearest-head distance, a radius query slightly inflated past D collects
/// every head whose rounded sqrt distance could equal the minimum, and the
/// brute-force comparison loop is replayed over those candidates in head
/// order — so the argmin and its tie-break are decided by the identical
/// float comparisons, while only O(candidates) instead of O(k) heads are
/// examined. Falls back to the brute scan for small head sets, where the
/// contiguous scan beats grid-construction overhead.
inline std::vector<int> assign_nearest_head(const Network& net,
                                            const std::vector<int>& heads,
                                            double death_line) {
  // Alive heads, preserving `heads` order (the tie-break order).
  std::vector<int> alive;
  alive.reserve(heads.size());
  for (const int h : heads)
    if (net.node(h).operational(death_line)) alive.push_back(h);

  constexpr std::size_t kBruteThreshold = 16;
  if (alive.size() < kBruteThreshold)
    return assign_nearest_head_brute(net, heads, death_line);

  std::vector<Vec3> head_pos;
  head_pos.reserve(alive.size());
  for (const int h : alive) head_pos.push_back(net.node(h).pos);

  // ~1 head per cell: typical nearest-head distance in a volume V with k
  // heads is (V/k)^(1/3), so queries touch O(1) cells.
  const double volume = net.domain().volume();
  const double cell =
      volume > 0.0
          ? std::cbrt(volume / static_cast<double>(alive.size()))
          : 1.0;
  const SpatialGrid grid(head_pos, cell);

  std::vector<int> assignment(net.size(), kBaseStationId);
  std::vector<std::size_t> cands;
  for (const SensorNode& n : net.nodes()) {
    const std::size_t near = grid.nearest(n.pos);
    // Upper bound on the true minimum, computed with the same distance()
    // expression as the brute loop; inflate so sqrt-rounding ties survive
    // the grid's squared-distance cut.
    const double d_near = distance(n.pos, head_pos[near]);
    grid.query_into(n.pos, d_near + 1e-9 * (d_near + 1.0), cands);
    std::sort(cands.begin(), cands.end());
    double best = std::numeric_limits<double>::infinity();
    for (const std::size_t c : cands) {
      const double d = distance(n.pos, head_pos[c]);
      if (d < best) {
        best = d;
        assignment[static_cast<std::size_t>(n.id)] = alive[c];
      }
    }
  }
  return assignment;
}

/// Charges each head one HELLO broadcast over `radius` and each alive
/// member one HELLO reception (members hear their own head announce).
inline void charge_hello(Network& net, const std::vector<int>& heads,
                         const std::vector<int>& assignment,
                         const RadioModel& radio, double hello_bits,
                         double radius, double death_line,
                         EnergyLedger& ledger) {
  if (hello_bits <= 0.0) return;
  for (const int h : heads) {
    ledger.charge(EnergyUse::kControl,
                  net.node(h).battery.consume(
                      radio.tx_energy(hello_bits, radius)),
                  h);
  }
  for (const SensorNode& n : net.nodes()) {
    const int a = assignment[static_cast<std::size_t>(n.id)];
    if (a == kBaseStationId || n.is_head) continue;
    if (!n.operational(death_line)) continue;
    ledger.charge(EnergyUse::kControl,
                  net.node(n.id).battery.consume(
                      radio.rx_energy(hello_bits)),
                  n.id);
  }
}

}  // namespace qlec::detail
