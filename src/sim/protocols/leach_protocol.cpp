#include "sim/protocols/leach_protocol.hpp"

#include <cmath>

#include "cluster/leach.hpp"
#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

LeachProtocol::LeachProtocol(double p, double death_line, RadioModel radio,
                             double hello_bits)
    : p_(p), death_line_(death_line), radio_(radio),
      hello_bits_(hello_bits) {}

void LeachProtocol::on_round_start(Network& net, int round, Rng& rng,
                                   EnergyLedger& ledger) {
  const std::vector<int> heads =
      leach_elect(net, p_, round, rng, death_line_);
  assignment_ = detail::assign_nearest_head(net, heads, death_line_, exec_);
  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  const double k_expected =
      std::max(1.0, p_ * static_cast<double>(net.size()));
  detail::charge_hello(net, heads, assignment_, radio_, hello_bits_,
                       cluster_radius(m_side, k_expected), death_line_,
                       ledger);
}

int LeachProtocol::route(const Network& net, int src, double bits,
                         Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

}  // namespace qlec
