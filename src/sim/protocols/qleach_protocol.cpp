#include "sim/protocols/qleach_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/leach.hpp"
#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

QLeachProtocol::QLeachProtocol(double p, SectorMode mode, double death_line,
                               RadioModel radio, double hello_bits)
    : p_(p), mode_(mode), death_line_(death_line), radio_(radio),
      hello_bits_(hello_bits) {}

void QLeachProtocol::on_round_start(Network& net, int round, Rng& rng,
                                    EnergyLedger& ledger) {
  net.reset_heads();
  const SectorGrid grid = SectorGrid::for_mode(net.domain(), mode_);
  const std::size_t sectors = grid.count();

  // One LEACH rotation across all sectors, drawn in a single id-order pass
  // so RNG consumption is node-for-node identical to global LEACH and
  // independent of the sector layout.
  std::vector<int> heads;
  std::vector<std::uint64_t> sector(net.size(), 0);
  std::vector<int> fallback(sectors, kBaseStationId);
  std::vector<double> fallback_energy(sectors, -1.0);
  std::vector<char> has_head(sectors, 0);
  for (SensorNode& n : net.nodes()) {
    const std::uint64_t s = grid.sector_of(n.pos);
    sector[static_cast<std::size_t>(n.id)] = s;
    if (!n.operational(death_line_)) continue;
    if (n.battery.residual() > fallback_energy[s]) {
      fallback_energy[s] = n.battery.residual();
      fallback[s] = n.id;
    }
    if (!leach_eligible(n.last_head_round, round, p_)) continue;
    if (rng.uniform01() < leach_threshold(p_, round)) {
      n.is_head = true;
      n.last_head_round = round;
      has_head[s] = 1;
      heads.push_back(n.id);
    }
  }
  // The sectoring's whole point is guaranteed local coverage: promote the
  // max-energy alive node of any populated sector the rotation left bare.
  for (std::size_t s = 0; s < sectors; ++s) {
    if (has_head[s] || fallback[s] == kBaseStationId) continue;
    SensorNode& n = net.node(fallback[s]);
    n.is_head = true;
    n.last_head_round = round;
    heads.push_back(n.id);
  }
  std::sort(heads.begin(), heads.end());

  // Per-sector head lists (ascending id, the distance tie-break order).
  std::vector<std::vector<int>> sector_heads(sectors);
  for (const int h : heads)
    sector_heads[static_cast<std::size_t>(
                     sector[static_cast<std::size_t>(h)])]
        .push_back(h);

  // Members join the nearest alive head of their own sector; a sector with
  // no head (possible only when it holds no operational node) falls back to
  // the global nearest. RNG-free and id-ordered, so shard-count invariant.
  assignment_.assign(net.size(), kBaseStationId);
  for (const SensorNode& n : net.nodes()) {
    const std::vector<int>& local =
        sector_heads[static_cast<std::size_t>(
            sector[static_cast<std::size_t>(n.id)])];
    const std::vector<int>& cands = local.empty() ? heads : local;
    double best = std::numeric_limits<double>::infinity();
    for (const int h : cands) {
      const double d = net.dist(n.id, h);
      if (d < best) {
        best = d;
        assignment_[static_cast<std::size_t>(n.id)] = h;
      }
    }
  }

  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  const double k_expected =
      std::max(static_cast<double>(sectors),
               p_ * static_cast<double>(net.size()));
  detail::charge_hello(net, heads, assignment_, radio_, hello_bits_,
                       cluster_radius(m_side, k_expected), death_line_,
                       ledger);
}

int QLeachProtocol::route(const Network& net, int src, double bits,
                          Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  // Mid-round repair: the sector head died, so rejoin the global nearest
  // alive head (crossing the sector line beats dropping the packet).
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

}  // namespace qlec
