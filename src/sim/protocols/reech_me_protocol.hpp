// REECH-ME adapter (arXiv 1307.7052): the deployment volume is split into
// static regions (quadrants / octants via geom/sectors) and each region's
// head is simply its maximum-residual-energy operational node — no
// randomized rotation at all, so head placement tracks the energy
// topology round by round. Members join their own region's head (global
// nearest alive head when the region is bare); heads uplink directly.
#pragma once

#include <string>
#include <vector>

#include "energy/radio_model.hpp"
#include "geom/sectors.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class ReechMeProtocol final : public ClusteringProtocol {
 public:
  ReechMeProtocol(SectorMode mode, double death_line, RadioModel radio,
                  double hello_bits = 200.0);

  std::string name() const override { return "REECH-ME"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

 private:
  SectorMode mode_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
};

}  // namespace qlec
