#include "sim/protocols/leach_rlc_protocol.hpp"

#include <cmath>

#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

LeachRlcProtocol::LeachRlcProtocol(std::unique_ptr<Controller> controller,
                                   double death_line, RadioModel radio,
                                   double hello_bits)
    : controller_(std::move(controller)), death_line_(death_line),
      radio_(radio), hello_bits_(hello_bits) {}

void LeachRlcProtocol::on_round_start(Network& net, int round, Rng& rng,
                                      EnergyLedger& ledger) {
  net.reset_heads();
  controller_->select_heads(net, round, death_line_, rng, heads_);
  for (const int h : heads_) {
    SensorNode& n = net.node(h);
    n.is_head = true;
    n.last_head_round = round;
  }
  assignment_ = detail::assign_nearest_head(net, heads_, death_line_, exec_);
  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  const double k_expected =
      std::max<double>(1.0, static_cast<double>(heads_.size()));
  detail::charge_hello(net, heads_, assignment_, radio_, hello_bits_,
                       cluster_radius(m_side, k_expected), death_line_,
                       ledger);
}

int LeachRlcProtocol::route(const Network& net, int src, double bits,
                            Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

void LeachRlcProtocol::on_round_end(Network& net, int round) {
  controller_->on_round_end(net, round);
}

}  // namespace qlec
