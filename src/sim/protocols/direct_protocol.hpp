// No clustering at all: every node uplinks straight to the BS. Sanity
// baseline showing why clustering exists (burns multi-path amplifier energy
// on every packet).
#pragma once

#include <string>

#include "sim/protocol.hpp"

namespace qlec {

class DirectProtocol final : public ClusteringProtocol {
 public:
  std::string name() const override { return "direct"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override {
    (void)round;
    (void)rng;
    (void)ledger;
    net.reset_heads();
  }
  int route(const Network& net, int src, double bits, Rng& rng) override {
    (void)net;
    (void)src;
    (void)bits;
    (void)rng;
    return kBaseStationId;
  }
};

}  // namespace qlec
