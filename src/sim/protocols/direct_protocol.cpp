// DirectProtocol is header-only; this TU anchors it in the qlec_sim library.
#include "sim/protocols/direct_protocol.hpp"
