#include "sim/protocols/qelar_protocol.hpp"

#include "obs/telemetry.hpp"

namespace qlec {

QelarProtocol::QelarProtocol(Config cfg) : cfg_(cfg) {
  cfg_.qelar.link = &cfg_.link;
}

void QelarProtocol::on_round_start(Network& net, int round, Rng& rng,
                                   EnergyLedger& ledger) {
  (void)round;
  (void)ledger;  // no cluster control plane
  net.reset_heads();
  // Rebuild the graph (mobility / deaths) and re-train from scratch with
  // the current residual energies; V converges in a few sweeps on these
  // graph sizes, and the update count accumulates across rounds.
  if (router_ != nullptr) updates_before_ += router_->updates();
  graph_ = std::make_unique<ConnectivityGraph>(net, cfg_.comm_range,
                                               cfg_.packet_bits, radio_);
  router_ = std::make_unique<QelarRouter>(*graph_, net, cfg_.qelar);
  // Re-attach after every rebuild; the registry reference outlives the run.
  if (telemetry_ != nullptr)
    router_->bind_update_counter(
        &telemetry_->metrics().counter("qelar.v_updates"));
  for (int s = 0; s < cfg_.sweeps_per_round; ++s) {
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (!net.node(static_cast<int>(i)).operational(0.0)) continue;
      router_->train_episode(static_cast<int>(i), 2 * net.size() + 16,
                             rng);
    }
  }
}

int QelarProtocol::route(const Network& net, int src, double bits,
                         Rng& rng) {
  (void)net;
  (void)bits;
  (void)rng;
  if (router_ == nullptr) return kBaseStationId;
  const int hop = router_->best_hop(src);
  // Isolated node: only option is a (likely doomed) direct attempt.
  return hop == -2 ? kBaseStationId : hop;
}

std::size_t QelarProtocol::learning_updates() const {
  return updates_before_ + (router_ != nullptr ? router_->updates() : 0);
}

}  // namespace qlec
