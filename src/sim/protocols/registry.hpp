// Name -> protocol factory so benches/examples can sweep algorithms by
// string ("qlec", "fcm", "kmeans", "leach", "deec", "direct", "q-leach",
// "reech-me", "leach-rlc", ... — protocol_names() is the full list).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "energy/radio_model.hpp"
#include "geom/sectors.hpp"
#include "sim/controller.hpp"
#include "sim/protocol.hpp"

namespace qlec {

struct ProtocolOptions {
  QlecParams qlec;         ///< QLEC hyper-parameters (also supplies R)
  std::size_t k = 0;       ///< cluster count for k-means/FCM; 0 = use k_opt
  int fcm_levels = 3;      ///< hierarchy rings for the FCM comparator
  double death_line = 0.0;
  double hello_bits = 200.0;
  RadioParams radio;
  /// Volume sectoring for the regional protocols (q-leach, reech-me):
  /// planar quadrants or 3-D octants (config: protocol.sector_mode).
  SectorMode sector_mode = SectorMode::kOctant;
  /// BS-side controller for leach-rlc (config: protocol.controller).
  ControllerOptions controller;
  /// Registry name of the protocol a declarative scenario runs (see
  /// src/config/): `qlec_run` passes `cfg.protocol.name` to make_protocol,
  /// and a sweep may vary it ("protocol.name": ["qlec", "fcm", ...]).
  /// Call sites that already name the protocol explicitly ignore it.
  std::string name = "qlec";

  friend bool operator==(const ProtocolOptions&, const ProtocolOptions&) =
      default;
};

/// Builds the named protocol configured against `net`. Unknown names throw
/// std::invalid_argument.
std::unique_ptr<ClusteringProtocol> make_protocol(const std::string& name,
                                                  const Network& net,
                                                  const ProtocolOptions& opt);

/// All names make_protocol accepts.
std::vector<std::string> protocol_names();

}  // namespace qlec
