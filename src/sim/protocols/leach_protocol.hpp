// Classic LEACH adapter (ablation baseline): randomized rotation election,
// members join the nearest head, heads uplink directly.
#pragma once

#include <string>
#include <vector>

#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class LeachProtocol final : public ClusteringProtocol {
 public:
  LeachProtocol(double p, double death_line, RadioModel radio,
                double hello_bits = 200.0);

  std::string name() const override { return "LEACH"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

 private:
  double p_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
};

}  // namespace qlec
