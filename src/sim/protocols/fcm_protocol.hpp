// The FCM-based comparator (Wang, Qin & Liu, WCNC 2018, the paper's [14]):
// fuzzy C-means clustering with energy-aware head selection, plus the
// hierarchical multi-hop uplink (heads relay ring-by-ring toward the BS).
#pragma once

#include <string>
#include <vector>

#include "cluster/fcm_routing.hpp"
#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class FcmProtocol final : public ClusteringProtocol {
 public:
  FcmProtocol(std::size_t k, int hierarchy_levels, double death_line,
              RadioModel radio, double hello_bits = 200.0);

  std::string name() const override { return "FCM"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;
  int uplink_target(const Network& net, int head, Rng& rng) override;

  const FcmHierarchy& hierarchy() const noexcept { return hierarchy_; }

 private:
  std::size_t k_;
  int levels_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
  FcmHierarchy hierarchy_;
};

}  // namespace qlec
