// Improved-DEEC-only protocol: QLEC's Cluster Head Selection Phase (Eq. 4
// threshold + Algorithm 3 pruning + top-up) with plain nearest-head member
// routing instead of the Q-learning Data Transmission Phase. Isolates the
// contribution of Q-routing in ablations ("what does the learning add on
// top of the improved election?").
#pragma once

#include <string>
#include <vector>

#include "core/improved_deec.hpp"
#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class ImprovedDeecProtocol final : public ClusteringProtocol {
 public:
  /// `k` is the target head count (p_opt = k / N); `total_rounds` feeds the
  /// Eq. 2 / Eq. 4 schedules.
  ImprovedDeecProtocol(std::size_t k, int total_rounds, double death_line,
                       RadioModel radio, double hello_bits = 200.0);

  std::string name() const override { return "iDEEC"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

  const ElectionStats& last_election() const noexcept { return stats_; }

 private:
  std::size_t k_;
  int total_rounds_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
  ElectionStats stats_{};
};

}  // namespace qlec
