// TL-LEACH adapter (Related Work [10]): members send to the nearest
// secondary head; secondaries relay their fused aggregate through the
// nearest primary head; primaries uplink to the BS.
#pragma once

#include <string>
#include <vector>

#include "cluster/tl_leach.hpp"
#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class TlLeachProtocol final : public ClusteringProtocol {
 public:
  TlLeachProtocol(double p_primary, double p_secondary, double death_line,
                  RadioModel radio, double hello_bits = 200.0);

  std::string name() const override { return "TL-LEACH"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;
  int uplink_target(const Network& net, int head, Rng& rng) override;

  const TlLeachLevels& levels() const noexcept { return levels_; }

 private:
  double p_primary_;
  double p_secondary_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
  TlLeachLevels levels_;
};

}  // namespace qlec
