// HEED adapter (Related Work [17]): coverage-driven, energy-hybrid head
// election; members join the nearest head; heads uplink directly.
#pragma once

#include <string>
#include <vector>

#include "cluster/heed.hpp"
#include "energy/radio_model.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class HeedProtocol final : public ClusteringProtocol {
 public:
  HeedProtocol(HeedConfig cfg, double death_line, RadioModel radio,
               double hello_bits = 200.0);

  std::string name() const override { return "HEED"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

 private:
  HeedConfig cfg_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
};

}  // namespace qlec
