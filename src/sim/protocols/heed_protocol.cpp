#include "sim/protocols/heed_protocol.hpp"

#include "sim/protocols/common.hpp"

namespace qlec {

HeedProtocol::HeedProtocol(HeedConfig cfg, double death_line,
                           RadioModel radio, double hello_bits)
    : cfg_(cfg),
      death_line_(death_line),
      radio_(radio),
      hello_bits_(hello_bits) {}

void HeedProtocol::on_round_start(Network& net, int round, Rng& rng,
                                  EnergyLedger& ledger) {
  const HeedResult result = heed_elect(net, cfg_, round, rng, death_line_);
  assignment_ = detail::assign_nearest_head(net, result.heads, death_line_, exec_);
  detail::charge_hello(net, result.heads, assignment_, radio_, hello_bits_,
                       cfg_.cluster_range, death_line_, ledger);
}

int HeedProtocol::route(const Network& net, int src, double bits, Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

}  // namespace qlec
