#include "sim/protocols/ideec_protocol.hpp"

#include <cmath>

#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

ImprovedDeecProtocol::ImprovedDeecProtocol(std::size_t k, int total_rounds,
                                           double death_line,
                                           RadioModel radio,
                                           double hello_bits)
    : k_(k == 0 ? 1 : k),
      total_rounds_(total_rounds),
      death_line_(death_line),
      radio_(radio),
      hello_bits_(hello_bits) {}

void ImprovedDeecProtocol::on_round_start(Network& net, int round, Rng& rng,
                                          EnergyLedger& ledger) {
  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  ImprovedDeecConfig cfg;
  cfg.p_opt = static_cast<double>(k_) /
              static_cast<double>(std::max<std::size_t>(net.size(), 1));
  cfg.total_rounds = total_rounds_;
  cfg.coverage_radius = cluster_radius(m_side, static_cast<double>(k_));
  const std::vector<int> heads =
      improved_deec_elect(net, cfg, round, rng, death_line_, &stats_);
  assignment_ = detail::assign_nearest_head(net, heads, death_line_, exec_);
  detail::charge_hello(net, heads, assignment_, radio_, hello_bits_,
                       cfg.coverage_radius, death_line_, ledger);
}

int ImprovedDeecProtocol::route(const Network& net, int src, double bits,
                                Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

}  // namespace qlec
