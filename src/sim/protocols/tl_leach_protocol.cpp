#include "sim/protocols/tl_leach_protocol.hpp"

#include <algorithm>
#include <cmath>

#include "core/optimal_k.hpp"
#include "sim/protocols/common.hpp"

namespace qlec {

TlLeachProtocol::TlLeachProtocol(double p_primary, double p_secondary,
                                 double death_line, RadioModel radio,
                                 double hello_bits)
    : p_primary_(p_primary),
      p_secondary_(p_secondary),
      death_line_(death_line),
      radio_(radio),
      hello_bits_(hello_bits) {}

void TlLeachProtocol::on_round_start(Network& net, int round, Rng& rng,
                                     EnergyLedger& ledger) {
  levels_ = tl_leach_elect(net, p_primary_, p_secondary_, round, rng,
                           death_line_);
  // Members attach to the nearest head of either level (secondary heads do
  // the bulk of collection; a primary can also serve local members).
  assignment_ =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  const double m_side = std::cbrt(std::max(net.domain().volume(), 0.0));
  const double k_expected = std::max(
      1.0, (p_primary_ + p_secondary_) * static_cast<double>(net.size()));
  detail::charge_hello(net, net.head_ids(), assignment_, radio_,
                       hello_bits_, cluster_radius(m_side, k_expected),
                       death_line_, ledger);
}

int TlLeachProtocol::route(const Network& net, int src, double bits,
                           Rng& rng) {
  (void)bits;
  (void)rng;
  const int a = assignment_.at(static_cast<std::size_t>(src));
  if (a != kBaseStationId && net.node(a).operational(death_line_))
    return a;
  const std::vector<int> fresh =
      detail::assign_nearest_head(net, net.head_ids(), death_line_, exec_);
  return fresh.at(static_cast<std::size_t>(src));
}

int TlLeachProtocol::uplink_target(const Network& net, int head, Rng& rng) {
  (void)rng;
  // Primaries go straight up; secondaries relay via their primary.
  if (std::find(levels_.primaries.begin(), levels_.primaries.end(), head) !=
      levels_.primaries.end())
    return kBaseStationId;
  return tl_leach_primary_for(net, levels_, head, death_line_);
}

}  // namespace qlec
