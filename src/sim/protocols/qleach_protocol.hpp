// Q-LEACH adapter (arXiv 1303.5240): the deployment volume is statically
// partitioned into sectors (quadrants in the paper's planar network,
// octants as the natural lift to this repo's 3-D deployments) and a
// LEACH-style randomized rotation runs inside each sector, so every region
// of the volume keeps a local head instead of the global rotation's
// feast-or-famine head placement. Members join the nearest alive head of
// their own sector (falling back to the global nearest when their sector
// has none); heads uplink directly.
#pragma once

#include <string>
#include <vector>

#include "energy/radio_model.hpp"
#include "geom/sectors.hpp"
#include "sim/protocol.hpp"

namespace qlec {

class QLeachProtocol final : public ClusteringProtocol {
 public:
  QLeachProtocol(double p, SectorMode mode, double death_line,
                 RadioModel radio, double hello_bits = 200.0);

  std::string name() const override { return "Q-LEACH"; }
  void on_round_start(Network& net, int round, Rng& rng,
                      EnergyLedger& ledger) override;
  int route(const Network& net, int src, double bits, Rng& rng) override;

 private:
  double p_;
  SectorMode mode_;
  double death_line_;
  RadioModel radio_;
  double hello_bits_;
  std::vector<int> assignment_;
};

}  // namespace qlec
