#include "sim/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "energy/ledger.hpp"
#include "net/network.hpp"
#include "sim/metrics.hpp"

namespace qlec {
namespace {

/// Tolerance for floating-point energy books: the ledger and the batteries
/// accumulate the same drawn amounts in different orders, so they can
/// disagree by a few ulps per charge.
double energy_eps(double magnitude) {
  return 1e-9 * std::max(1.0, std::fabs(magnitude));
}

std::string fmt(const char* format, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, format, a, b);
  return buf;
}

}  // namespace

const char* audit_kind_name(AuditKind k) {
  switch (k) {
    case AuditKind::kEnergyConservation: return "energy-conservation";
    case AuditKind::kEnergyBounds: return "energy-bounds";
    case AuditKind::kPacketConservation: return "packet-conservation";
    case AuditKind::kStructural: return "structural";
  }
  return "?";
}

std::string AuditViolation::to_string() const {
  std::string out = "round ";
  out += round < 0 ? std::string("end") : std::to_string(round);
  if (node >= 0) {
    out += " node ";
    out += std::to_string(node);
  }
  out += " [";
  out += audit_kind_name(kind);
  out += "]: ";
  out += message;
  return out;
}

std::string AuditReport::summary() const {
  if (ok()) {
    return "audit ok (" + std::to_string(rounds_audited) + " rounds" +
           (finalized ? ", finalized" : "") + ")";
  }
  std::string out =
      "audit FAILED: " + std::to_string(violations.size()) + " violation(s)";
  const std::size_t shown = std::min<std::size_t>(violations.size(), 5);
  for (std::size_t i = 0; i < shown; ++i)
    out += "\n  " + violations[i].to_string();
  if (violations.size() > shown)
    out += "\n  ... and " + std::to_string(violations.size() - shown) +
           " more";
  return out;
}

SimAuditor::SimAuditor(const Network& net, double death_line,
                       bool flat_routing, bool harvest_enabled,
                       bool throw_on_violation, bool faults_enabled)
    : death_line_(death_line),
      flat_(flat_routing),
      harvest_enabled_(harvest_enabled),
      throw_(throw_on_violation),
      faults_enabled_(faults_enabled),
      harvested_per_node_(net.size(), 0.0),
      crashed_(net.size(), 0),
      down_at_round_start_(net.size(), 0) {}

void SimAuditor::violate(AuditKind kind, int round, int node,
                         std::string message) {
  AuditViolation v{kind, round, node, std::move(message)};
  if (throw_) throw AuditError(v);
  report_.violations.push_back(std::move(v));
}

void SimAuditor::begin_round(const Network& net, int round,
                             const EnergyLedger& ledger) {
  round_ = round;
  residual_at_round_start_ = net.total_residual_energy();
  ledger_at_round_start_ = ledger.total();
  harvest_bucket_at_round_start_ = ledger.by_use(EnergyUse::kHarvest);
  harvested_this_round_ = 0.0;
  node_residual_at_round_start_.resize(net.size());
  for (const SensorNode& n : net.nodes()) {
    node_residual_at_round_start_[static_cast<std::size_t>(n.id)] =
        n.battery.residual();
    down_at_round_start_[static_cast<std::size_t>(n.id)] = n.up ? 0 : 1;
  }
}

void SimAuditor::on_heads_elected(const Network& net,
                                  const std::vector<int>& heads) {
  // Structural: elected heads must be alive, and the head count can never
  // exceed the alive population. (Election energy has already been spent,
  // so "alive" here uses the post-election residuals — a head that drained
  // itself to death announcing is exactly the bug we want to surface.)
  const int round = round_;
  const std::size_t alive = net.alive_count(death_line_);
  if (heads.size() > alive) {
    violate(AuditKind::kStructural, round, -1,
            "elected " + std::to_string(heads.size()) + " heads with only " +
                std::to_string(alive) + " nodes above the death line");
  }
  for (const int h : heads) {
    if (!net.node(h).is_head)
      violate(AuditKind::kStructural, round, h,
              "listed as head but is_head flag is clear");
    // Alive when the round started: the election-phase HELLO broadcast may
    // legitimately drain a head below the line, but electing a node that
    // was already dead is a protocol bug.
    if (node_residual_at_round_start_[static_cast<std::size_t>(h)] <=
        death_line_)
      violate(AuditKind::kStructural, round, h,
              "elected head was already below the death line at round "
              "start");
    // Fault invariant (d): a crashed or stunned node must never win an
    // election — every election path consults SensorNode::operational().
    if (!net.node(h).up)
      violate(AuditKind::kStructural, round, h,
              "elected head is fault-down");
  }
}

void SimAuditor::on_harvest(int node, double joules) noexcept {
  harvested_this_round_ += joules;
  harvested_total_ += joules;
  if (node >= 0 &&
      static_cast<std::size_t>(node) < harvested_per_node_.size())
    harvested_per_node_[static_cast<std::size_t>(node)] += joules;
}

void SimAuditor::on_fault_crash(int node) {
  if (node >= 0 && static_cast<std::size_t>(node) < crashed_.size())
    crashed_[static_cast<std::size_t>(node)] = 1;
}

void SimAuditor::check_fault_invariants(const Network& net, int round) {
  if (!faults_enabled_) return;
  for (const SensorNode& n : net.nodes()) {
    const auto i = static_cast<std::size_t>(n.id);
    // (d1) crashed nodes stay dead for the rest of the run.
    if (crashed_[i] != 0 && n.up)
      violate(AuditKind::kStructural, round, n.id,
              "crashed node came back up");
    // (d2) a node that was fault-down when the round started cannot wake
    // mid-round (transitions happen at round boundaries only) and its
    // battery is untouched: no radio, idle, harvest, or fade activity.
    // Exact comparison on purpose — nothing may have written the residual.
    if (down_at_round_start_[i] != 0) {
      if (n.up)
        violate(AuditKind::kStructural, round, n.id,
                "fault-down node woke mid-round");
      if (n.battery.residual() != node_residual_at_round_start_[i])
        violate(AuditKind::kEnergyConservation, round, n.id,
                fmt("fault-down node's residual moved from %.12g J to "
                    "%.12g J within a round",
                    node_residual_at_round_start_[i],
                    n.battery.residual()));
    }
  }
}

void SimAuditor::on_relay_accept(const Network& net, int target,
                                 bool alive_at_attempt) {
  const SensorNode& t = net.node(target);
  if (!flat_ && !t.is_head)
    violate(AuditKind::kStructural, round_, target,
            "packet cached at a node that is not a cluster head");
  if (!alive_at_attempt)
    violate(AuditKind::kStructural, round_, target,
            "packet cached at a node that was below the death line when "
            "the transmission was attempted");
}

void SimAuditor::check_energy_bounds(const Network& net, int round) {
  for (const SensorNode& n : net.nodes()) {
    const double residual = n.battery.residual();
    const double cap = n.battery.initial();
    if (residual < -energy_eps(cap))
      violate(AuditKind::kEnergyBounds, round, n.id,
              fmt("residual %.12g J is negative", residual, 0.0));
    if (residual > cap + energy_eps(cap))
      violate(AuditKind::kEnergyBounds, round, n.id,
              fmt("residual %.12g J exceeds capacity %.12g J", residual,
                  cap));
  }
}

void SimAuditor::check_per_node_ledger(const Network& net,
                                       const EnergyLedger& ledger,
                                       int round) {
  if (!ledger.per_node_enabled()) return;
  for (const SensorNode& n : net.nodes()) {
    // Cumulative drain = (initial - residual) + everything harvested back.
    const double drained =
        n.battery.consumed() +
        harvested_per_node_[static_cast<std::size_t>(n.id)];
    const double charged = ledger.node_total(n.id);
    if (std::fabs(drained - charged) > energy_eps(drained))
      violate(AuditKind::kEnergyConservation, round, n.id,
              fmt("battery delta %.12g J != ledger entries %.12g J",
                  drained, charged));
  }
}

void SimAuditor::check_packet_conservation(const SimResult& partial,
                                           std::uint64_t in_flight,
                                           int round) {
  const std::uint64_t accounted = partial.delivered + partial.lost_link +
                                  partial.lost_queue + partial.lost_dead +
                                  in_flight;
  if (partial.generated != accounted) {
    violate(AuditKind::kPacketConservation, round, -1,
            "generated " + std::to_string(partial.generated) +
                " != delivered " + std::to_string(partial.delivered) +
                " + lost_link " + std::to_string(partial.lost_link) +
                " + lost_queue " + std::to_string(partial.lost_queue) +
                " + lost_dead " + std::to_string(partial.lost_dead) +
                " + in_flight " + std::to_string(in_flight));
  }
}

void SimAuditor::end_round(const Network& net, const EnergyLedger& ledger,
                           const SimResult& partial,
                           std::uint64_t in_flight) {
  // (a) network-wide energy conservation for this round: what left the
  // batteries (harvest-corrected) must equal what was charged to the
  // ledger. Both sides record the post-clamp amounts, so this is exact up
  // to summation order.
  const double residual_now = net.total_residual_energy();
  const double drained =
      residual_at_round_start_ - residual_now + harvested_this_round_;
  const double charged = ledger.total() - ledger_at_round_start_;
  if (std::fabs(drained - charged) >
      energy_eps(std::max(drained, charged)))
    violate(AuditKind::kEnergyConservation, round_, -1,
            fmt("round battery drain %.12g J != ledger charges %.12g J",
                drained, charged));

  // The kHarvest CREDIT bucket must advance by exactly what the batteries
  // reported restored this round — the simulator credits every recharge.
  const double credited =
      ledger.by_use(EnergyUse::kHarvest) - harvest_bucket_at_round_start_;
  if (std::fabs(credited - harvested_this_round_) >
      energy_eps(std::max(credited, harvested_this_round_)))
    violate(AuditKind::kEnergyConservation, round_, -1,
            fmt("round harvest credits %.12g J != restored %.12g J",
                credited, harvested_this_round_));

  check_energy_bounds(net, round_);
  check_per_node_ledger(net, ledger, round_);
  check_packet_conservation(partial, in_flight, round_);
  check_fault_invariants(net, round_);

  // (c) lifespan monotonicity: without harvesting a dead node stays dead.
  // Fault injection relaxes this too — an expiring stun window raises the
  // operational count legitimately.
  const std::size_t alive_now = net.alive_count(death_line_);
  if (!harvest_enabled_ && !faults_enabled_ && have_prev_alive_ &&
      alive_now > prev_alive_)
    violate(AuditKind::kStructural, round_, -1,
            "alive count rose from " + std::to_string(prev_alive_) +
                " to " + std::to_string(alive_now) +
                " without harvesting");
  prev_alive_ = alive_now;
  have_prev_alive_ = true;

  ++report_.rounds_audited;
}

void SimAuditor::finalize(const Network& net, const EnergyLedger& ledger,
                          const SimResult& result) {
  // Everything buffered has been flushed to a terminal counter by now.
  check_packet_conservation(result, 0, -1);
  check_energy_bounds(net, -1);
  check_per_node_ledger(net, ledger, -1);
  check_fault_invariants(net, -1);
  // Cumulative harvest books: every restored joule was credited once.
  const double credited = ledger.by_use(EnergyUse::kHarvest);
  if (std::fabs(credited - harvested_total_) >
      energy_eps(std::max(credited, harvested_total_)))
    violate(AuditKind::kEnergyConservation, -1, -1,
            fmt("total harvest credits %.12g J != restored %.12g J",
                credited, harvested_total_));
  report_.finalized = true;
}

}  // namespace qlec
