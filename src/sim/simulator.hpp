// The round-based WSN simulator. Each round: the protocol elects heads,
// Poisson traffic arrives slot by slot, members transmit to their chosen
// relay (bounded head caches, lossy links, ACK feedback), heads service and
// aggregate their queues, and at round end each head pushes its fused
// aggregate toward the BS (directly, or over a multi-hop head chain for
// hierarchical protocols). See DESIGN.md §3 for the model rationale and §8
// for the structure-of-arrays round state the inner loop runs on.
#pragma once

#include "energy/radio_model.hpp"
#include "net/link.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "sim/env/env.hpp"
#include "sim/env/trajectory.hpp"
#include "sim/fault/fault.hpp"
#include "sim/mac/mac.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "util/exec.hpp"
#include "util/rng.hpp"

namespace qlec {

/// How a cluster head fuses its cache into the uplink payload.
/// Table 2 prescribes a 50% compression *ratio* (uplink bits proportional
/// to traffic), but Eq. 6 / Theorem 1 assume the classic Heinzelman
/// *fixed-size summary* (each head uplinks exactly L bits per round); the
/// two give different k_opt behaviour, so both are supported.
enum class Aggregation {
  kRatioCompress,  ///< uplink bits = compression * collected bits (Table 2)
  kFixedSummary,   ///< uplink bits = packet_bits per head per round (Eq. 6)
};

/// Invariant-checking switches (sim/audit.hpp). Purely observational: an
/// audited run produces the identical trace.
struct AuditOptions {
  /// Run the SimAuditor checks every round and at end-of-run; the outcome
  /// lands in SimResult::audit.
  bool enabled = false;
  /// Throw AuditError on the first violation instead of accumulating them
  /// into the report.
  bool throw_on_violation = false;

  friend bool operator==(const AuditOptions&, const AuditOptions&) = default;
};

/// Trajectory-recording and early-stop switches.
struct TraceOptions {
  /// Record a per-round RoundStats trace into SimResult::trace.
  bool record = false;
  /// Stop simulating once the first node dies (lifespan experiments).
  bool stop_at_first_death = false;

  friend bool operator==(const TraceOptions&, const TraceOptions&) = default;
};

struct SimConfig {
  int rounds = 20;            ///< R (paper §5.1 uses 20)
  int slots_per_round = 20;   ///< time resolution within a round
  /// Mean packet inter-arrival time per node, in slots (the paper's
  /// lambda; smaller = more congested). <= 0 disables traffic.
  double mean_interarrival = 4.0;
  double packet_bits = 4000.0;
  std::size_t queue_capacity = 32;  ///< head cache size, packets
  int service_per_slot = 8;         ///< packets a head aggregates per slot
  double compression = 0.5;         ///< Table 2: 50% fusion ratio
  Aggregation aggregation = Aggregation::kRatioCompress;
  double death_line = 0.0;          ///< node dies at residual <= this
  /// Extra transmission attempts after a failed (un-ACKed) send. Each retry
  /// re-consults the protocol, matching the b_i -> b_i self-transition of
  /// the QLEC MDP.
  int max_retries = 3;
  RadioParams radio;
  LinkModel link;
  /// Node motion applied at the start of every round (§3.1 motivates the
  /// rotation by mobility; default static matches §5.1).
  MobilityConfig mobility;
  /// Energy harvested back per node per round, joules (harvesting-aware
  /// scenarios a la HyDRO). Recharge caps at the initial capacity.
  double harvest_per_round = 0.0;
  /// Idle-listening drain per alive node per slot, joules (radio duty
  /// cycling; 0 = perfect sleep scheduling, the paper's implicit model).
  double idle_listen_j_per_slot = 0.0;
  AuditOptions audit;
  TraceOptions trace;
  /// Fault injection (sim/fault). Disabled by default; a disabled config
  /// leaves the simulation — and every golden-trace digest — bit-identical.
  FaultConfig fault;
  /// Telemetry (src/obs): structured events, metric counters, and phase
  /// timers. Disabled by default (no Telemetry object is constructed at
  /// all); even enabled it is strictly observational — no extra Rng draws —
  /// so traces and golden digests stay bit-identical either way. See
  /// OBSERVABILITY.md.
  obs::TelemetryOptions telemetry;
  /// Contention-aware MAC/PHY sub-phase (sim/mac, DESIGN.md §14). Disabled
  /// by default: the engine is never constructed, no Rng draw happens, and
  /// every golden-trace digest is bit-identical. Enabled, each slot's
  /// transmissions contend (slotted CSMA, collisions, capture, backoff)
  /// with retransmit + duty-cycle energy in EnergyUse::kMac; max_retries
  /// above is superseded by mac.max_retries on the MAC path.
  MacConfig mac;
  /// Terrain-aware propagation environment (sim/env, DESIGN.md §16).
  /// Disabled by default: no Environment is constructed, no Rng draw
  /// happens, and every golden-trace digest is bit-identical. Enabled,
  /// obstructed links attenuate or sever (one Bernoulli draw per attempt
  /// either way), underwater links scale the amp-energy cost, and the
  /// depth-aware harvester credits EnergyUse::kHarvest per round.
  EnvConfig env;
  /// Mobile base-station / data-mule trajectory (sim/env/trajectory,
  /// DESIGN.md §16), advanced at round boundaries on the main thread.
  /// kind == none (the default) leaves the BS static and every digest
  /// bit-identical. Serialized as the top-level "bs.trajectory" block.
  BsTrajectoryConfig bs_trajectory;
  /// Intra-round sharding (util/exec.hpp, DESIGN.md §12). shards > 1 fans
  /// the RNG-free round phases over an internal thread pool; every shard
  /// count — including 1, the default serial core — produces bit-identical
  /// traces and golden digests (the shard-invariance suite enforces this).
  ExecOptions exec;

  friend bool operator==(const SimConfig&, const SimConfig&) = default;
};

/// Runs the full simulation, mutating `net` (battery drain, head flags).
SimResult run_simulation(Network& net, ClusteringProtocol& protocol,
                         const SimConfig& cfg, Rng& rng);

}  // namespace qlec
