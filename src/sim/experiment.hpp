// Multi-seed experiment runner: builds a fresh network per seed, runs the
// named protocol through the simulator, and aggregates the metrics. Seed
// fan-out is controlled by an ExecPolicy value (serial, internally managed
// pool, or a caller-owned pool).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/protocols/registry.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace qlec {

struct ExperimentConfig {
  ScenarioConfig scenario;
  SimConfig sim;
  ProtocolOptions protocol;
  std::size_t seeds = 5;
  std::uint64_t base_seed = 42;
  /// Deployment geometry (a closed enum — unknown deployments are a config
  /// parse error, never a mid-run exception).
  Deployment deployment = Deployment::kUniform;

  friend bool operator==(const ExperimentConfig&, const ExperimentConfig&) =
      default;
};

/// How the runner fans replications out over seeds. A small value type so
/// call sites read as `run_experiment(name, cfg, ExecPolicy::pool(8))`
/// instead of threading raw ThreadPool pointers through every signature.
/// Seed results are written to per-seed slots, so every policy produces
/// bit-identical output for a given config.
class ExecPolicy {
 public:
  /// Seeds run one after another on the calling thread (the default).
  static ExecPolicy serial() noexcept { return ExecPolicy{}; }
  /// Seeds fan out across an internally managed pool created for the call;
  /// `threads == 0` uses the hardware-concurrency default.
  static ExecPolicy pool(std::size_t threads = 0) noexcept {
    ExecPolicy p;
    p.mode_ = Mode::kPool;
    p.threads_ = threads;
    return p;
  }
  /// Seeds fan out across a caller-owned pool (reusable across many calls;
  /// the policy only borrows it, so `pool` must outlive the run).
  static ExecPolicy borrow(ThreadPool& pool) noexcept {
    ExecPolicy p;
    p.mode_ = Mode::kBorrow;
    p.borrowed_ = &pool;
    return p;
  }

  bool is_serial() const noexcept { return mode_ == Mode::kSerial; }
  bool is_pool() const noexcept { return mode_ == Mode::kPool; }
  bool is_borrow() const noexcept { return mode_ == Mode::kBorrow; }
  /// Requested pool width (kPool only); 0 = hardware default.
  std::size_t threads() const noexcept { return threads_; }
  /// The caller-owned pool (kBorrow only), else nullptr.
  ThreadPool* borrowed() const noexcept { return borrowed_; }

 private:
  enum class Mode { kSerial, kPool, kBorrow };
  Mode mode_ = Mode::kSerial;
  std::size_t threads_ = 0;
  ThreadPool* borrowed_ = nullptr;
};

/// Runs `cfg.seeds` independent replications of `protocol_name` and returns
/// per-seed results (index == seed offset).
std::vector<SimResult> run_replications(
    const std::string& protocol_name, const ExperimentConfig& cfg,
    const ExecPolicy& exec = ExecPolicy::serial());

/// Convenience: replications + aggregation.
AggregatedMetrics run_experiment(const std::string& protocol_name,
                                 const ExperimentConfig& cfg,
                                 const ExecPolicy& exec = ExecPolicy::serial());

/// Builds the deployment for one seed (exposed for benches that need the
/// raw network, e.g. the Fig. 4 heat map).
Network build_network(const ExperimentConfig& cfg, std::uint64_t seed);

}  // namespace qlec
