// Multi-seed experiment runner: builds a fresh network per seed, runs the
// named protocol through the simulator, and aggregates the metrics. Fans
// out across a thread pool when one is supplied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/protocols/registry.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace qlec {

struct ExperimentConfig {
  ScenarioConfig scenario;
  SimConfig sim;
  ProtocolOptions protocol;
  std::size_t seeds = 5;
  std::uint64_t base_seed = 42;
  /// "uniform" (default) or "terrain" deployment.
  std::string deployment = "uniform";
};

/// Runs `cfg.seeds` independent replications of `protocol_name` and returns
/// per-seed results (index == seed offset).
std::vector<SimResult> run_replications(const std::string& protocol_name,
                                        const ExperimentConfig& cfg,
                                        ThreadPool* pool = nullptr);

/// Convenience: replications + aggregation.
AggregatedMetrics run_experiment(const std::string& protocol_name,
                                 const ExperimentConfig& cfg,
                                 ThreadPool* pool = nullptr);

/// Builds the deployment for one seed (exposed for benches that need the
/// raw network, e.g. the Fig. 4 heat map).
Network build_network(const ExperimentConfig& cfg, std::uint64_t seed);

}  // namespace qlec
