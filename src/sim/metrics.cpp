#include "sim/metrics.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/csv.hpp"

namespace qlec {

std::string trace_to_csv(const std::vector<RoundStats>& trace) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row(CsvRow{"round", "alive", "heads", "residual_j", "generated",
                     "delivered"});
  for (const RoundStats& r : trace) {
    char residual[32];
    std::snprintf(residual, sizeof residual, "%.9g", r.total_residual);
    w.write_row(CsvRow{std::to_string(r.round), std::to_string(r.alive),
                       std::to_string(r.heads), residual,
                       std::to_string(r.generated),
                       std::to_string(r.delivered)});
  }
  return out.str();
}

std::uint64_t trace_digest(const std::vector<RoundStats>& trace) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  for (const RoundStats& r : trace) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.round)));
    mix(static_cast<std::uint64_t>(r.alive));
    mix(static_cast<std::uint64_t>(r.heads));
    std::uint64_t bits;
    std::memcpy(&bits, &r.total_residual, sizeof bits);
    mix(bits);
    mix(r.generated);
    mix(r.delivered);
  }
  return h;
}

std::string trace_digest_hex(const std::vector<RoundStats>& trace) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(trace_digest(trace)));
  return buf;
}

double SimResult::pdr() const noexcept {
  if (generated == 0) return 1.0;
  return static_cast<double>(delivered) / static_cast<double>(generated);
}

void AggregatedMetrics::add(const SimResult& r) {
  if (protocol.empty()) protocol = r.protocol;
  pdr.add(r.pdr());
  total_energy.add(r.total_energy_consumed);
  first_death.add(static_cast<double>(
      r.first_death_round >= 0 ? r.first_death_round : r.rounds_completed));
  half_death.add(static_cast<double>(
      r.half_death_round >= 0 ? r.half_death_round : r.rounds_completed));
  mean_latency.add(r.latency.mean());
  heads_per_round.add(r.heads_per_round.mean());
  delivered.add(static_cast<double>(r.delivered));
  generated.add(static_cast<double>(r.generated));
  lost_link.add(static_cast<double>(r.lost_link));
  lost_queue.add(static_cast<double>(r.lost_queue));
  lost_dead.add(static_cast<double>(r.lost_dead));
  if (r.resilience.recovery_rounds >= 0.0)
    recovery_rounds.add(r.resilience.recovery_rounds);
}

}  // namespace qlec
