// Internal strict-JSON reading helpers shared by the schema binding
// (schema.cpp) and the manifest/cell-record parsers (runner.cpp). Hoisted
// out of schema.cpp's anonymous namespace when the manifest format gained a
// strict inverse — both parsers must reject with identical path-qualified
// ConfigError wording. Not installed API: config/*.cpp only.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <utility>

#include "config/schema.hpp"
#include "util/json.hpp"

namespace qlec::config::detail {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Largest integer a JSON double carries exactly.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

inline std::string join(const std::string& path, const std::string& key) {
  return path.empty() ? key : path + "." + key;
}

inline std::string fmt_num(double d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

/// Short rendering of an unexpected value for "got ..." error tails.
inline std::string describe(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.as_bool() ? "true" : "false";
    case JsonValue::Kind::kNumber: return fmt_num(v.as_double());
    case JsonValue::Kind::kString: {
      std::string s = v.as_string();
      if (s.size() > 40) s = s.substr(0, 37) + "...";
      return '"' + s + '"';
    }
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

inline std::string bounds_text(double lo, double hi, bool lo_open) {
  if (lo == -kInf && hi == kInf) return "finite number";
  if (hi == kInf)
    return std::string("number ") + (lo_open ? "> " : "≥ ") + fmt_num(lo);
  return "number in [" + fmt_num(lo) + ", " + fmt_num(hi) + "]";
}

/// One object scope: rejects non-objects and duplicate keys up front, hands
/// out members while tracking which keys were consumed, and rejects the
/// leftovers (unknown keys) in finish().
class ObjectReader {
 public:
  ObjectReader(const JsonValue& v, std::string path)
      : v_(v), path_(std::move(path)) {
    if (!v_.is_object())
      throw ConfigError(path_, "expected object, got " + describe(v_));
    std::set<std::string> seen;
    for (const auto& [k, unused] : v_.members()) {
      (void)unused;
      if (!seen.insert(k).second)
        throw ConfigError(join(path_, k), "duplicate key");
    }
  }

  /// Marks `key` consumed; nullptr when absent (field keeps its default).
  const JsonValue* find(const std::string& key) {
    consumed_.insert(key);
    return v_.get(key);
  }

  std::string sub(const std::string& key) const { return join(path_, key); }
  const std::string& path() const noexcept { return path_; }

  /// Call after reading every known key: any member left over is unknown.
  void finish() const {
    for (const auto& [k, unused] : v_.members()) {
      (void)unused;
      if (consumed_.count(k) == 0)
        throw ConfigError(join(path_, k), "unknown key");
    }
  }

  // -- typed leaf readers; absent keys leave `out` untouched --

  void number(const std::string& key, double& out, double lo = -kInf,
              double hi = kInf, bool lo_open = false) {
    const JsonValue* j = find(key);
    if (j == nullptr) return;
    const double d = j->as_double();
    if (!j->is_number() || !std::isfinite(d) || d < lo || d > hi ||
        (lo_open && d <= lo))
      throw ConfigError(sub(key), "expected " + bounds_text(lo, hi, lo_open) +
                                      ", got " + describe(*j));
    out = d;
  }

  /// Exact integer in [lo, hi]; 7.5 or 1e300 are type errors here.
  long long integer(const std::string& key, long long cur, long long lo,
                    long long hi = std::numeric_limits<long long>::max()) {
    const JsonValue* j = find(key);
    if (j == nullptr) return cur;
    const double d = j->as_double();
    std::string want = "integer";
    if (lo != std::numeric_limits<long long>::min())
      want += " ≥ " + std::to_string(lo);
    if (!j->is_number() || !std::isfinite(d) || d != std::floor(d) ||
        std::fabs(d) > kMaxExactInt ||
        d < static_cast<double>(lo) || d > static_cast<double>(hi))
      throw ConfigError(sub(key),
                        "expected " + want + ", got " + describe(*j));
    return static_cast<long long>(d);
  }

  void int_field(const std::string& key, int& out, long long lo) {
    out = static_cast<int>(
        integer(key, out, lo, std::numeric_limits<int>::max()));
  }

  void size_field(const std::string& key, std::size_t& out, long long lo) {
    out = static_cast<std::size_t>(
        integer(key, static_cast<long long>(out), lo));
  }

  /// Unsigned seed: any integer in [0, 2^53] (the exactly-representable
  /// range; larger seeds would silently round through the double channel).
  void seed_field(const std::string& key, std::uint64_t& out) {
    out = static_cast<std::uint64_t>(
        integer(key, static_cast<long long>(out), 0));
  }

  void boolean(const std::string& key, bool& out) {
    const JsonValue* j = find(key);
    if (j == nullptr) return;
    if (!j->is_bool())
      throw ConfigError(sub(key),
                        "expected true or false, got " + describe(*j));
    out = j->as_bool();
  }

  void string_field(const std::string& key, std::string& out) {
    const JsonValue* j = find(key);
    if (j == nullptr) return;
    if (!j->is_string())
      throw ConfigError(sub(key), "expected string, got " + describe(*j));
    out = j->as_string();
  }

 private:
  const JsonValue& v_;
  std::string path_;
  std::set<std::string> consumed_;
};

}  // namespace qlec::config::detail
