// Bidirectional JSON binding for ExperimentConfig and everything it
// transitively owns: ScenarioConfig (incl. BsPlacement/Deployment), SimConfig
// with its nested Audit/Trace/Telemetry options, FaultConfig (plan + hazards),
// and ProtocolOptions (incl. QlecParams). This is what makes scenarios data
// instead of hand-written C++ mains (DESIGN.md §11).
//
// Contract:
//   * Every field is serialized, defaults included, so a manifest's config
//     echo is a complete provenance record independent of compiled defaults.
//   * Parsing is lenient about ABSENT fields (they keep the C++ default) and
//     strict about everything else: unknown keys, duplicate keys, and
//     out-of-domain leaves are rejected with a path-qualified ConfigError
//     ("sim.fault.hazards.crash_per_node: expected number in [0, 1], got
//     \"high\"").
//   * parse_experiment(experiment_to_json(cfg)) == cfg for every
//     representable config (integers up to 2^53; see DESIGN.md §11 for the
//     compatibility policy).
#pragma once

#include <stdexcept>
#include <string>

#include "sim/experiment.hpp"
#include "util/json.hpp"

namespace qlec::config {

/// A config-layer validation failure. `path()` is the dotted location of the
/// offending node ("sim.fault.plan.events[2].severity"; "" for whole-document
/// failures); what() is "<path>: <problem>".
class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::string path, const std::string& problem);
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// ---- enum token tables (the config-file spellings) ----
// deployment_name/fault_kind_name live next to their enums; these cover the
// rest. Unknown enum values render as "?" and never parse back.
const char* bs_placement_name(BsPlacement b) noexcept;
const char* aggregation_name(Aggregation a) noexcept;
const char* mobility_kind_name(MobilityKind k) noexcept;
const char* telemetry_sink_name(obs::TelemetryOptions::Sink s) noexcept;

/// Serializes `cfg` (all fields) as the next value of `w`.
void write_experiment(JsonWriter& w, const ExperimentConfig& cfg);

/// `cfg` as a standalone JSON document.
std::string experiment_to_json(const ExperimentConfig& cfg);

/// Binds a parsed JSON object to an ExperimentConfig. `path` prefixes every
/// error location (pass "" when `v` is the document root). Throws
/// ConfigError.
ExperimentConfig experiment_from_json(const JsonValue& v,
                                      const std::string& path = "");

/// parse_json + experiment_from_json. Malformed JSON becomes a ConfigError
/// with an empty path and the parser's byte-offset message.
ExperimentConfig parse_experiment(const std::string& text);

}  // namespace qlec::config
