// Scenario files and sweep-grid expansion (the declarative half of
// `qlec_run`). A scenario file is one experiment document plus an optional
// "sweep" block of dotted-path axes:
//
//   {
//     "name": "fig3",
//     "description": "Fig. 3 comparison grid",
//     "scenario": {"n": 100, "m_side": 200},
//     "sim": {"rounds": 20},
//     "sweep": {
//       "scenario.n": [100, 500, 1000],
//       "protocol.name": ["qlec", "qelar", "deec"]
//     }
//   }
//
// expand_grid() cartesian-expands the axes (declaration order; the last
// axis varies fastest), materialises each cell by setting the axis values
// into the base document, and re-parses every cell through the strict
// schema binding — so a typo'd axis path ("scenario.nn") dies with the same
// path-qualified ConfigError an inline typo would.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "config/schema.hpp"

namespace qlec::config {

/// One sweep axis: a dotted config path and the JSON values it takes.
struct SweepAxis {
  std::string path;
  std::vector<JsonValue> values;
};

/// A parsed scenario file, still at the document level (cells are bound to
/// ExperimentConfigs only at expand_grid time, after overrides land).
struct ScenarioFile {
  std::string name;         ///< "name" key; "" when absent
  std::string description;  ///< "description" key; "" when absent
  JsonValue base;           ///< the experiment document minus the meta keys
  std::vector<SweepAxis> axes;  ///< "sweep" entries, declaration order
};

/// A `--set key=value` style override: dotted path + replacement value.
using Override = std::pair<std::string, JsonValue>;

/// One concrete grid cell.
struct SweepCell {
  /// The axis assignments that produced this cell (axis order).
  std::vector<Override> bindings;
  /// "scenario.n=100 protocol.name=qlec" (""), for logs and CSV rows.
  std::string label;
  ExperimentConfig config;
};

/// Returns a copy of `doc` with the value at dotted `path` replaced (or
/// inserted). Missing intermediate objects are created; traversing through
/// a non-object value is a ConfigError at the offending prefix.
JsonValue with_path_set(const JsonValue& doc, const std::string& path,
                        const JsonValue& leaf);

/// Parses scenario-file text. Pulls out "name"/"description"/"sweep",
/// validates the sweep block's shape (object of non-empty arrays), and
/// leaves the rest as `base` — which is NOT yet validated against the
/// schema (expansion does that per cell). Throws ConfigError.
ScenarioFile parse_scenario(const std::string& text);

/// Expands the scenario into concrete cells. `overrides` (from `--set`)
/// are applied to the base document first; an override whose path exactly
/// matches a sweep axis removes that axis (the grid collapses along it).
/// Every cell is validated through experiment_from_json. Throws
/// ConfigError, including on grids above 10_000 cells.
std::vector<SweepCell> expand_grid(const ScenarioFile& scenario,
                                   const std::vector<Override>& overrides = {});

/// Renders a JSON leaf for labels/CSV: bare text for strings, compact JSON
/// otherwise ("qlec", 100, true, [1,2]).
std::string leaf_label(const JsonValue& v);

}  // namespace qlec::config
