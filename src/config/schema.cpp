#include "config/schema.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "config/reader.hpp"
#include "sim/protocols/registry.hpp"

namespace qlec::config {
namespace {

// Strict-reading machinery (ObjectReader, describe, ...) lives in
// config/reader.hpp since the manifest parser shares it.
using detail::ObjectReader;
using detail::bounds_text;
using detail::describe;
using detail::fmt_num;
using detail::join;
using detail::kInf;
using detail::kMaxExactInt;

// ---- enum tables ----

template <typename E>
using EnumTable = std::vector<std::pair<E, const char*>>;

const EnumTable<BsPlacement>& bs_table() {
  static const EnumTable<BsPlacement> t = {
      {BsPlacement::kCenter, "center"},
      {BsPlacement::kTopFaceCenter, "top_face_center"},
      {BsPlacement::kCorner, "corner"},
      {BsPlacement::kExternal, "external"},
  };
  return t;
}

const EnumTable<Aggregation>& aggregation_table() {
  static const EnumTable<Aggregation> t = {
      {Aggregation::kRatioCompress, "ratio_compress"},
      {Aggregation::kFixedSummary, "fixed_summary"},
  };
  return t;
}

const EnumTable<MobilityKind>& mobility_table() {
  static const EnumTable<MobilityKind> t = {
      {MobilityKind::kNone, "none"},
      {MobilityKind::kRandomWalk, "random_walk"},
      {MobilityKind::kRandomWaypoint, "random_waypoint"},
  };
  return t;
}

const EnumTable<obs::TelemetryOptions::Sink>& sink_table() {
  static const EnumTable<obs::TelemetryOptions::Sink> t = {
      {obs::TelemetryOptions::Sink::kNull, "null"},
      {obs::TelemetryOptions::Sink::kRing, "ring"},
      {obs::TelemetryOptions::Sink::kFile, "file"},
  };
  return t;
}

const EnumTable<FaultKind>& fault_kind_table() {
  static const EnumTable<FaultKind> t = {
      {FaultKind::kCrash, fault_kind_name(FaultKind::kCrash)},
      {FaultKind::kStun, fault_kind_name(FaultKind::kStun)},
      {FaultKind::kBlackout, fault_kind_name(FaultKind::kBlackout)},
      {FaultKind::kLinkDegrade, fault_kind_name(FaultKind::kLinkDegrade)},
      {FaultKind::kBsOutage, fault_kind_name(FaultKind::kBsOutage)},
      {FaultKind::kBatteryFade, fault_kind_name(FaultKind::kBatteryFade)},
  };
  return t;
}

const EnumTable<SectorMode>& sector_mode_table() {
  static const EnumTable<SectorMode> t = {
      {SectorMode::kQuadrant, "quadrant"},
      {SectorMode::kOctant, "octant"},
  };
  return t;
}

const EnumTable<ControllerKind>& controller_kind_table() {
  static const EnumTable<ControllerKind> t = {
      {ControllerKind::kRlLite, "rl-lite"},
      {ControllerKind::kPassthrough, "passthrough"},
  };
  return t;
}

const EnumTable<TrajectoryKind>& trajectory_table() {
  static const EnumTable<TrajectoryKind> t = {
      {TrajectoryKind::kNone, trajectory_kind_name(TrajectoryKind::kNone)},
      {TrajectoryKind::kWaypoint,
       trajectory_kind_name(TrajectoryKind::kWaypoint)},
      {TrajectoryKind::kOrbit, trajectory_kind_name(TrajectoryKind::kOrbit)},
  };
  return t;
}

const EnumTable<Deployment>& deployment_table() {
  static const EnumTable<Deployment> t = {
      {Deployment::kUniform, deployment_name(Deployment::kUniform)},
      {Deployment::kTerrain, deployment_name(Deployment::kTerrain)},
  };
  return t;
}

template <typename E>
const char* table_name(const EnumTable<E>& table, E value) noexcept {
  for (const auto& [e, name] : table)
    if (e == value) return name;
  return "?";
}

template <typename E>
void enum_field(ObjectReader& r, const std::string& key, E& out,
                const EnumTable<E>& table) {
  const JsonValue* j = r.find(key);
  if (j == nullptr) return;
  if (j->is_string()) {
    for (const auto& [e, name] : table) {
      if (j->as_string() == name) {
        out = e;
        return;
      }
    }
  }
  std::string allowed;
  for (const auto& [e, name] : table) {
    (void)e;
    if (!allowed.empty()) allowed += '|';
    allowed += name;
  }
  throw ConfigError(r.sub(key),
                    "expected one of " + allowed + ", got " + describe(*j));
}

// ---- writers (field order == reader order == DESIGN.md §11 schema) ----

void write_vec3(JsonWriter& w, const Vec3& v) {
  w.begin_array();
  w.value(v.x);
  w.value(v.y);
  w.value(v.z);
  w.end_array();
}

void write_aabb(JsonWriter& w, const Aabb& box) {
  w.begin_object();
  w.key("lo");
  write_vec3(w, box.lo);
  w.key("hi");
  write_vec3(w, box.hi);
  w.end_object();
}

void write_scenario(JsonWriter& w, const ScenarioConfig& s) {
  w.begin_object();
  w.key("n"); w.value(s.n);
  w.key("m_side"); w.value(s.m_side);
  w.key("initial_energy"); w.value(s.initial_energy);
  w.key("energy_heterogeneity"); w.value(s.energy_heterogeneity);
  w.key("bs"); w.value(bs_placement_name(s.bs));
  w.end_object();
}

void write_radio(JsonWriter& w, const RadioParams& r) {
  w.begin_object();
  w.key("e_elec"); w.value(r.e_elec);
  w.key("e_da"); w.value(r.e_da);
  w.key("eps_fs"); w.value(r.eps_fs);
  w.key("eps_mp"); w.value(r.eps_mp);
  w.end_object();
}

void write_link(JsonWriter& w, const LinkModel& l) {
  w.begin_object();
  w.key("d_ref"); w.value(l.d_ref);
  w.key("p_floor"); w.value(l.p_floor);
  w.key("bs_reliability_factor"); w.value(l.bs_reliability_factor);
  w.end_object();
}

void write_mobility(JsonWriter& w, const MobilityConfig& m) {
  w.begin_object();
  w.key("kind"); w.value(mobility_kind_name(m.kind));
  w.key("speed"); w.value(m.speed);
  w.key("arrival_tolerance"); w.value(m.arrival_tolerance);
  w.end_object();
}

void write_fault_event(JsonWriter& w, const FaultEvent& e) {
  w.begin_object();
  w.key("kind"); w.value(fault_kind_name(e.kind));
  w.key("round"); w.value(e.round);
  w.key("node"); w.value(e.node);
  w.key("duration"); w.value(e.duration);
  w.key("severity"); w.value(e.severity);
  w.key("permanent"); w.value(e.permanent);
  w.key("region");
  write_aabb(w, e.region);
  w.end_object();
}

void write_hazards(JsonWriter& w, const FaultHazards& h) {
  w.begin_object();
  w.key("crash_per_node"); w.value(h.crash_per_node);
  w.key("stun_per_node"); w.value(h.stun_per_node);
  w.key("stun_rounds"); w.value(h.stun_rounds);
  w.key("fade_per_node"); w.value(h.fade_per_node);
  w.key("fade_fraction"); w.value(h.fade_fraction);
  w.key("degrade_episode"); w.value(h.degrade_episode);
  w.key("degrade_rounds"); w.value(h.degrade_rounds);
  w.key("degrade_factor"); w.value(h.degrade_factor);
  w.key("bs_outage"); w.value(h.bs_outage);
  w.key("bs_outage_rounds"); w.value(h.bs_outage_rounds);
  w.end_object();
}

void write_fault(JsonWriter& w, const FaultConfig& f) {
  w.begin_object();
  w.key("enabled"); w.value(f.enabled);
  w.key("seed"); w.value(static_cast<unsigned long long>(f.seed));
  w.key("plan");
  w.begin_object();
  w.key("events");
  w.begin_array();
  for (const FaultEvent& e : f.plan.events) write_fault_event(w, e);
  w.end_array();
  w.end_object();
  w.key("hazards");
  write_hazards(w, f.hazards);
  w.end_object();
}

void write_telemetry(JsonWriter& w, const obs::TelemetryOptions& t) {
  w.begin_object();
  w.key("enabled"); w.value(t.enabled);
  w.key("sink"); w.value(telemetry_sink_name(t.sink));
  w.key("events_path"); w.value(t.events_path);
  w.key("ring_capacity"); w.value(t.ring_capacity);
  w.key("per_packet_events"); w.value(t.per_packet_events);
  w.key("trace_phases"); w.value(t.trace_phases);
  w.key("trace_path"); w.value(t.trace_path);
  w.key("metrics_path"); w.value(t.metrics_path);
  w.end_object();
}

void write_env(JsonWriter& w, const EnvConfig& e) {
  w.begin_object();
  w.key("enabled"); w.value(e.enabled);
  w.key("atten_per_unit"); w.value(e.atten_per_unit);
  w.key("sever_depth"); w.value(e.sever_depth);
  w.key("obstacles");
  w.begin_array();
  for (const EnvObstacle& o : e.obstacles) {
    w.begin_object();
    w.key("box");
    write_aabb(w, o.box);
    w.key("extra_atten"); w.value(o.extra_atten);
    w.end_object();
  }
  w.end_array();
  w.key("terrain");
  w.begin_object();
  w.key("enabled"); w.value(e.terrain.enabled);
  w.key("amplitude_frac"); w.value(e.terrain.amplitude_frac);
  w.key("base_frac"); w.value(e.terrain.base_frac);
  w.end_object();
  w.key("water");
  w.begin_object();
  w.key("enabled"); w.value(e.water.enabled);
  w.key("surface_frac"); w.value(e.water.surface_frac);
  w.key("alpha_per_unit"); w.value(e.water.alpha_per_unit);
  w.key("amp_depth_scale"); w.value(e.water.amp_depth_scale);
  w.end_object();
  w.key("harvest");
  w.begin_object();
  w.key("per_round"); w.value(e.harvest.per_round);
  w.key("depth_decay"); w.value(e.harvest.depth_decay);
  w.key("min_factor"); w.value(e.harvest.min_factor);
  w.end_object();
  w.end_object();
}

void write_bs_trajectory(JsonWriter& w, const BsTrajectoryConfig& t) {
  w.begin_object();
  w.key("trajectory");
  w.begin_object();
  w.key("kind"); w.value(trajectory_kind_name(t.kind));
  w.key("waypoints");
  w.begin_array();
  for (const Vec3& p : t.waypoints) write_vec3(w, p);
  w.end_array();
  w.key("speed"); w.value(t.speed);
  w.key("loop"); w.value(t.loop);
  w.key("orbit_center");
  write_vec3(w, t.orbit_center);
  w.key("orbit_radius"); w.value(t.orbit_radius);
  w.key("orbit_period"); w.value(t.orbit_period);
  w.end_object();
  w.end_object();
}

void write_sim(JsonWriter& w, const SimConfig& s) {
  w.begin_object();
  w.key("rounds"); w.value(s.rounds);
  w.key("slots_per_round"); w.value(s.slots_per_round);
  w.key("mean_interarrival"); w.value(s.mean_interarrival);
  w.key("packet_bits"); w.value(s.packet_bits);
  w.key("queue_capacity"); w.value(s.queue_capacity);
  w.key("service_per_slot"); w.value(s.service_per_slot);
  w.key("compression"); w.value(s.compression);
  w.key("aggregation"); w.value(aggregation_name(s.aggregation));
  w.key("death_line"); w.value(s.death_line);
  w.key("max_retries"); w.value(s.max_retries);
  w.key("radio"); write_radio(w, s.radio);
  w.key("link"); write_link(w, s.link);
  w.key("mobility"); write_mobility(w, s.mobility);
  w.key("harvest_per_round"); w.value(s.harvest_per_round);
  w.key("idle_listen_j_per_slot"); w.value(s.idle_listen_j_per_slot);
  w.key("audit");
  w.begin_object();
  w.key("enabled"); w.value(s.audit.enabled);
  w.key("throw_on_violation"); w.value(s.audit.throw_on_violation);
  w.end_object();
  w.key("trace");
  w.begin_object();
  w.key("record"); w.value(s.trace.record);
  w.key("stop_at_first_death"); w.value(s.trace.stop_at_first_death);
  w.end_object();
  w.key("fault"); write_fault(w, s.fault);
  w.key("telemetry"); write_telemetry(w, s.telemetry);
  w.key("mac");
  w.begin_object();
  w.key("enabled"); w.value(s.mac.enabled);
  w.key("seed"); w.value(static_cast<unsigned long long>(s.mac.seed));
  w.key("airtime_subslots"); w.value(s.mac.airtime_subslots);
  w.key("cca_range"); w.value(s.mac.cca_range);
  w.key("capture_ratio"); w.value(s.mac.capture_ratio);
  w.key("max_retries"); w.value(s.mac.max_retries);
  w.key("cw_min"); w.value(s.mac.cw_min);
  w.key("cw_max"); w.value(s.mac.cw_max);
  w.key("duty_cycle"); w.value(s.mac.duty_cycle);
  w.key("idle_j_per_subslot"); w.value(s.mac.idle_j_per_subslot);
  w.end_object();
  w.key("env"); write_env(w, s.env);
  w.key("exec");
  w.begin_object();
  w.key("shards"); w.value(s.exec.shards);
  w.end_object();
  w.end_object();
}

void write_qlec_params(JsonWriter& w, const QlecParams& q) {
  w.begin_object();
  w.key("gamma"); w.value(q.gamma);
  w.key("alpha1"); w.value(q.alpha1);
  w.key("alpha2"); w.value(q.alpha2);
  w.key("beta1"); w.value(q.beta1);
  w.key("beta2"); w.value(q.beta2);
  w.key("compression"); w.value(q.compression);
  w.key("g"); w.value(q.g);
  w.key("l"); w.value(q.l);
  w.key("epsilon"); w.value(q.epsilon);
  w.key("x_scale"); w.value(q.x_scale);
  w.key("y_scale"); w.value(q.y_scale);
  w.key("y_scale_bs"); w.value(q.y_scale_bs);
  w.key("x_bs"); w.value(q.x_bs);
  w.key("total_rounds"); w.value(q.total_rounds);
  w.key("use_energy_threshold"); w.value(q.use_energy_threshold);
  w.key("reduce_redundancy"); w.value(q.reduce_redundancy);
  w.key("top_up_to_k"); w.value(q.top_up_to_k);
  w.key("hello_bits"); w.value(q.hello_bits);
  w.key("force_k"); w.value(q.force_k);
  w.end_object();
}

void write_controller(JsonWriter& w, const ControllerOptions& c) {
  w.begin_object();
  w.key("kind"); w.value(controller_kind_name(c.kind));
  w.key("alpha"); w.value(c.alpha);
  w.key("gamma"); w.value(c.gamma);
  w.key("epsilon"); w.value(c.epsilon);
  w.end_object();
}

void write_protocol(JsonWriter& w, const ProtocolOptions& p) {
  w.begin_object();
  w.key("name"); w.value(p.name);
  w.key("qlec"); write_qlec_params(w, p.qlec);
  w.key("k"); w.value(p.k);
  w.key("fcm_levels"); w.value(p.fcm_levels);
  w.key("death_line"); w.value(p.death_line);
  w.key("hello_bits"); w.value(p.hello_bits);
  w.key("radio"); write_radio(w, p.radio);
  w.key("sector_mode"); w.value(sector_mode_name(p.sector_mode));
  w.key("controller"); write_controller(w, p.controller);
  w.end_object();
}

// ---- readers ----

Vec3 read_vec3(const JsonValue& v, const std::string& path) {
  const bool ok = v.is_array() && v.size() == 3 && v.at(0).is_number() &&
                  v.at(1).is_number() && v.at(2).is_number() &&
                  std::isfinite(v.at(0).as_double()) &&
                  std::isfinite(v.at(1).as_double()) &&
                  std::isfinite(v.at(2).as_double());
  if (!ok)
    throw ConfigError(path, "expected [x, y, z] array of 3 finite numbers, "
                            "got " + describe(v));
  return {v.at(0).as_double(), v.at(1).as_double(), v.at(2).as_double()};
}

Aabb read_aabb(const JsonValue& v, const std::string& path, Aabb out) {
  ObjectReader r(v, path);
  if (const JsonValue* j = r.find("lo")) out.lo = read_vec3(*j, r.sub("lo"));
  if (const JsonValue* j = r.find("hi")) out.hi = read_vec3(*j, r.sub("hi"));
  r.finish();
  return out;
}

ScenarioConfig read_scenario(const JsonValue& v, const std::string& path,
                             ScenarioConfig out) {
  ObjectReader r(v, path);
  r.size_field("n", out.n, 1);
  r.number("m_side", out.m_side, 0.0, kInf, /*lo_open=*/true);
  r.number("initial_energy", out.initial_energy, 0.0);
  r.number("energy_heterogeneity", out.energy_heterogeneity, 0.0, 1.0);
  enum_field(r, "bs", out.bs, bs_table());
  r.finish();
  return out;
}

RadioParams read_radio(const JsonValue& v, const std::string& path,
                       RadioParams out) {
  ObjectReader r(v, path);
  r.number("e_elec", out.e_elec, 0.0);
  r.number("e_da", out.e_da, 0.0);
  r.number("eps_fs", out.eps_fs, 0.0);
  // eps_mp feeds the d0 = sqrt(eps_fs / eps_mp) crossover: must stay > 0.
  r.number("eps_mp", out.eps_mp, 0.0, kInf, /*lo_open=*/true);
  r.finish();
  return out;
}

LinkModel read_link(const JsonValue& v, const std::string& path,
                    LinkModel out) {
  ObjectReader r(v, path);
  r.number("d_ref", out.d_ref, 0.0, kInf, /*lo_open=*/true);
  r.number("p_floor", out.p_floor, 0.0, 1.0);
  r.number("bs_reliability_factor", out.bs_reliability_factor, 0.0, 1.0);
  r.finish();
  return out;
}

MobilityConfig read_mobility(const JsonValue& v, const std::string& path,
                             MobilityConfig out) {
  ObjectReader r(v, path);
  enum_field(r, "kind", out.kind, mobility_table());
  r.number("speed", out.speed, 0.0);
  r.number("arrival_tolerance", out.arrival_tolerance, 0.0);
  r.finish();
  return out;
}

FaultEvent read_fault_event(const JsonValue& v, const std::string& path) {
  FaultEvent out;
  ObjectReader r(v, path);
  enum_field(r, "kind", out.kind, fault_kind_table());
  r.int_field("round", out.round, 0);
  r.int_field("node", out.node, -1);
  r.int_field("duration", out.duration, 0);
  r.number("severity", out.severity, 0.0, 1.0);
  r.boolean("permanent", out.permanent);
  if (const JsonValue* j = r.find("region"))
    out.region = read_aabb(*j, r.sub("region"), out.region);
  r.finish();
  return out;
}

FaultHazards read_hazards(const JsonValue& v, const std::string& path,
                          FaultHazards out) {
  ObjectReader r(v, path);
  r.number("crash_per_node", out.crash_per_node, 0.0, 1.0);
  r.number("stun_per_node", out.stun_per_node, 0.0, 1.0);
  r.int_field("stun_rounds", out.stun_rounds, 0);
  r.number("fade_per_node", out.fade_per_node, 0.0, 1.0);
  r.number("fade_fraction", out.fade_fraction, 0.0, 1.0);
  r.number("degrade_episode", out.degrade_episode, 0.0, 1.0);
  r.int_field("degrade_rounds", out.degrade_rounds, 0);
  r.number("degrade_factor", out.degrade_factor, 0.0, 1.0);
  r.number("bs_outage", out.bs_outage, 0.0, 1.0);
  r.int_field("bs_outage_rounds", out.bs_outage_rounds, 0);
  r.finish();
  return out;
}

FaultConfig read_fault(const JsonValue& v, const std::string& path,
                       FaultConfig out) {
  ObjectReader r(v, path);
  r.boolean("enabled", out.enabled);
  r.seed_field("seed", out.seed);
  if (const JsonValue* j = r.find("plan")) {
    ObjectReader plan(*j, r.sub("plan"));
    if (const JsonValue* ev = plan.find("events")) {
      if (!ev->is_array())
        throw ConfigError(plan.sub("events"),
                          "expected array, got " + describe(*ev));
      out.plan.events.clear();
      for (std::size_t i = 0; i < ev->size(); ++i)
        out.plan.events.push_back(read_fault_event(
            ev->at(i), plan.sub("events") + "[" + std::to_string(i) + "]"));
    }
    plan.finish();
  }
  if (const JsonValue* j = r.find("hazards"))
    out.hazards = read_hazards(*j, r.sub("hazards"), out.hazards);
  r.finish();
  return out;
}

obs::TelemetryOptions read_telemetry(const JsonValue& v,
                                     const std::string& path,
                                     obs::TelemetryOptions out) {
  ObjectReader r(v, path);
  r.boolean("enabled", out.enabled);
  enum_field(r, "sink", out.sink, sink_table());
  r.string_field("events_path", out.events_path);
  r.size_field("ring_capacity", out.ring_capacity, 1);
  r.boolean("per_packet_events", out.per_packet_events);
  r.boolean("trace_phases", out.trace_phases);
  r.string_field("trace_path", out.trace_path);
  r.string_field("metrics_path", out.metrics_path);
  r.finish();
  return out;
}

EnvConfig read_env(const JsonValue& v, const std::string& path,
                   EnvConfig out) {
  ObjectReader r(v, path);
  r.boolean("enabled", out.enabled);
  r.number("atten_per_unit", out.atten_per_unit, 0.0);
  r.number("sever_depth", out.sever_depth, 0.0);
  if (const JsonValue* j = r.find("obstacles")) {
    if (!j->is_array())
      throw ConfigError(r.sub("obstacles"),
                        "expected array, got " + describe(*j));
    out.obstacles.clear();
    for (std::size_t i = 0; i < j->size(); ++i) {
      const std::string opath =
          r.sub("obstacles") + "[" + std::to_string(i) + "]";
      ObjectReader o(j->at(i), opath);
      EnvObstacle ob;
      if (const JsonValue* b = o.find("box"))
        ob.box = read_aabb(*b, o.sub("box"), ob.box);
      o.number("extra_atten", ob.extra_atten, 0.0);
      o.finish();
      out.obstacles.push_back(ob);
    }
  }
  if (const JsonValue* j = r.find("terrain")) {
    ObjectReader t(*j, r.sub("terrain"));
    t.boolean("enabled", out.terrain.enabled);
    t.number("amplitude_frac", out.terrain.amplitude_frac, 0.0);
    t.number("base_frac", out.terrain.base_frac, 0.0, 1.0);
    t.finish();
  }
  if (const JsonValue* j = r.find("water")) {
    ObjectReader wa(*j, r.sub("water"));
    wa.boolean("enabled", out.water.enabled);
    wa.number("surface_frac", out.water.surface_frac, 0.0, 1.0);
    wa.number("alpha_per_unit", out.water.alpha_per_unit, 0.0);
    wa.number("amp_depth_scale", out.water.amp_depth_scale, 0.0);
    wa.finish();
  }
  if (const JsonValue* j = r.find("harvest")) {
    ObjectReader h(*j, r.sub("harvest"));
    h.number("per_round", out.harvest.per_round, 0.0);
    h.number("depth_decay", out.harvest.depth_decay, 0.0);
    h.number("min_factor", out.harvest.min_factor, 0.0, 1.0);
    h.finish();
  }
  r.finish();
  return out;
}

BsTrajectoryConfig read_bs_trajectory(const JsonValue& v,
                                      const std::string& path,
                                      BsTrajectoryConfig out) {
  ObjectReader r(v, path);
  if (const JsonValue* j = r.find("trajectory")) {
    ObjectReader t(*j, r.sub("trajectory"));
    enum_field(t, "kind", out.kind, trajectory_table());
    if (const JsonValue* wp = t.find("waypoints")) {
      if (!wp->is_array())
        throw ConfigError(t.sub("waypoints"),
                          "expected array, got " + describe(*wp));
      out.waypoints.clear();
      for (std::size_t i = 0; i < wp->size(); ++i)
        out.waypoints.push_back(read_vec3(
            wp->at(i), t.sub("waypoints") + "[" + std::to_string(i) + "]"));
    }
    t.number("speed", out.speed, 0.0);
    t.boolean("loop", out.loop);
    if (const JsonValue* c = t.find("orbit_center"))
      out.orbit_center = read_vec3(*c, t.sub("orbit_center"));
    t.number("orbit_radius", out.orbit_radius, 0.0);
    t.int_field("orbit_period", out.orbit_period, 1);
    t.finish();
  }
  r.finish();
  return out;
}

SimConfig read_sim(const JsonValue& v, const std::string& path,
                   SimConfig out) {
  ObjectReader r(v, path);
  r.int_field("rounds", out.rounds, 1);
  r.int_field("slots_per_round", out.slots_per_round, 1);
  r.number("mean_interarrival", out.mean_interarrival);
  r.number("packet_bits", out.packet_bits, 0.0, kInf, /*lo_open=*/true);
  r.size_field("queue_capacity", out.queue_capacity, 1);
  r.int_field("service_per_slot", out.service_per_slot, 0);
  r.number("compression", out.compression, 0.0, 1.0);
  enum_field(r, "aggregation", out.aggregation, aggregation_table());
  r.number("death_line", out.death_line);
  r.int_field("max_retries", out.max_retries, 0);
  if (const JsonValue* j = r.find("radio"))
    out.radio = read_radio(*j, r.sub("radio"), out.radio);
  if (const JsonValue* j = r.find("link"))
    out.link = read_link(*j, r.sub("link"), out.link);
  if (const JsonValue* j = r.find("mobility"))
    out.mobility = read_mobility(*j, r.sub("mobility"), out.mobility);
  r.number("harvest_per_round", out.harvest_per_round, 0.0);
  r.number("idle_listen_j_per_slot", out.idle_listen_j_per_slot, 0.0);
  if (const JsonValue* j = r.find("audit")) {
    ObjectReader a(*j, r.sub("audit"));
    a.boolean("enabled", out.audit.enabled);
    a.boolean("throw_on_violation", out.audit.throw_on_violation);
    a.finish();
  }
  if (const JsonValue* j = r.find("trace")) {
    ObjectReader t(*j, r.sub("trace"));
    t.boolean("record", out.trace.record);
    t.boolean("stop_at_first_death", out.trace.stop_at_first_death);
    t.finish();
  }
  if (const JsonValue* j = r.find("fault"))
    out.fault = read_fault(*j, r.sub("fault"), out.fault);
  if (const JsonValue* j = r.find("telemetry"))
    out.telemetry = read_telemetry(*j, r.sub("telemetry"), out.telemetry);
  if (const JsonValue* j = r.find("mac")) {
    ObjectReader m(*j, r.sub("mac"));
    m.boolean("enabled", out.mac.enabled);
    m.seed_field("seed", out.mac.seed);
    m.int_field("airtime_subslots", out.mac.airtime_subslots, 1);
    m.number("cca_range", out.mac.cca_range, 0.0, kInf, /*lo_open=*/true);
    // A capture ratio below 1 would let a frame "capture" over interferers
    // louder than itself.
    m.number("capture_ratio", out.mac.capture_ratio, 1.0);
    m.int_field("max_retries", out.mac.max_retries, 0);
    m.int_field("cw_min", out.mac.cw_min, 1);
    m.int_field("cw_max", out.mac.cw_max, 1);
    m.number("duty_cycle", out.mac.duty_cycle, 0.0, 1.0, /*lo_open=*/true);
    m.number("idle_j_per_subslot", out.mac.idle_j_per_subslot, 0.0);
    m.finish();
  }
  if (const JsonValue* j = r.find("env"))
    out.env = read_env(*j, r.sub("env"), out.env);
  if (const JsonValue* j = r.find("exec")) {
    ObjectReader e(*j, r.sub("exec"));
    e.int_field("shards", out.exec.shards, 1);
    e.finish();
  }
  r.finish();
  return out;
}

QlecParams read_qlec_params(const JsonValue& v, const std::string& path,
                            QlecParams out) {
  ObjectReader r(v, path);
  r.number("gamma", out.gamma, 0.0, 1.0);
  r.number("alpha1", out.alpha1);
  r.number("alpha2", out.alpha2);
  r.number("beta1", out.beta1);
  r.number("beta2", out.beta2);
  r.number("compression", out.compression, 0.0, 1.0);
  r.number("g", out.g, 0.0);
  r.number("l", out.l, 0.0);
  r.number("epsilon", out.epsilon, 0.0, 1.0);
  // The *_scale knobs use <= 0 as a "derive from the deployment" sentinel,
  // so any finite value is legal.
  r.number("x_scale", out.x_scale);
  r.number("y_scale", out.y_scale);
  r.number("y_scale_bs", out.y_scale_bs);
  r.number("x_bs", out.x_bs);
  r.int_field("total_rounds", out.total_rounds, 1);
  r.boolean("use_energy_threshold", out.use_energy_threshold);
  r.boolean("reduce_redundancy", out.reduce_redundancy);
  r.boolean("top_up_to_k", out.top_up_to_k);
  r.number("hello_bits", out.hello_bits, 0.0);
  r.int_field("force_k", out.force_k, 0);
  r.finish();
  return out;
}

ControllerOptions read_controller(const JsonValue& v, const std::string& path,
                                  ControllerOptions out) {
  ObjectReader r(v, path);
  enum_field(r, "kind", out.kind, controller_kind_table());
  r.number("alpha", out.alpha, 0.0, 1.0);
  r.number("gamma", out.gamma, 0.0, 1.0);
  r.number("epsilon", out.epsilon, 0.0, 1.0);
  r.finish();
  return out;
}

ProtocolOptions read_protocol(const JsonValue& v, const std::string& path,
                              ProtocolOptions out) {
  ObjectReader r(v, path);
  if (const JsonValue* j = r.find("name")) {
    std::string allowed;
    for (const std::string& n : protocol_names()) {
      if (!allowed.empty()) allowed += '|';
      allowed += n;
      if (j->is_string() && j->as_string() == n) out.name = n;
    }
    if (!j->is_string() || out.name != j->as_string())
      throw ConfigError(r.sub("name"), "expected one of " + allowed +
                                           ", got " + describe(*j));
  }
  if (const JsonValue* j = r.find("qlec"))
    out.qlec = read_qlec_params(*j, r.sub("qlec"), out.qlec);
  r.size_field("k", out.k, 0);
  r.int_field("fcm_levels", out.fcm_levels, 1);
  r.number("death_line", out.death_line);
  r.number("hello_bits", out.hello_bits, 0.0);
  if (const JsonValue* j = r.find("radio"))
    out.radio = read_radio(*j, r.sub("radio"), out.radio);
  enum_field(r, "sector_mode", out.sector_mode, sector_mode_table());
  if (const JsonValue* j = r.find("controller"))
    out.controller =
        read_controller(*j, r.sub("controller"), out.controller);
  r.finish();
  return out;
}

}  // namespace

ConfigError::ConfigError(std::string path, const std::string& problem)
    : std::runtime_error(path.empty() ? problem : path + ": " + problem),
      path_(std::move(path)) {}

const char* bs_placement_name(BsPlacement b) noexcept {
  return table_name(bs_table(), b);
}

const char* aggregation_name(Aggregation a) noexcept {
  return table_name(aggregation_table(), a);
}

const char* mobility_kind_name(MobilityKind k) noexcept {
  return table_name(mobility_table(), k);
}

const char* telemetry_sink_name(obs::TelemetryOptions::Sink s) noexcept {
  return table_name(sink_table(), s);
}

void write_experiment(JsonWriter& w, const ExperimentConfig& cfg) {
  w.begin_object();
  w.key("scenario");
  write_scenario(w, cfg.scenario);
  w.key("sim");
  write_sim(w, cfg.sim);
  w.key("protocol");
  write_protocol(w, cfg.protocol);
  w.key("seeds"); w.value(cfg.seeds);
  w.key("base_seed"); w.value(static_cast<unsigned long long>(cfg.base_seed));
  w.key("deployment"); w.value(deployment_name(cfg.deployment));
  // The mobile-sink block rides at the top level (it configures the BS,
  // not a per-node simulation knob) but stores into sim.bs_trajectory.
  w.key("bs"); write_bs_trajectory(w, cfg.sim.bs_trajectory);
  w.end_object();
}

std::string experiment_to_json(const ExperimentConfig& cfg) {
  JsonWriter w;
  write_experiment(w, cfg);
  return w.str();
}

ExperimentConfig experiment_from_json(const JsonValue& v,
                                      const std::string& path) {
  ExperimentConfig out;
  ObjectReader r(v, path);
  if (const JsonValue* j = r.find("scenario"))
    out.scenario = read_scenario(*j, r.sub("scenario"), out.scenario);
  if (const JsonValue* j = r.find("sim"))
    out.sim = read_sim(*j, r.sub("sim"), out.sim);
  if (const JsonValue* j = r.find("protocol"))
    out.protocol = read_protocol(*j, r.sub("protocol"), out.protocol);
  r.size_field("seeds", out.seeds, 1);
  r.seed_field("base_seed", out.base_seed);
  enum_field(r, "deployment", out.deployment, deployment_table());
  if (const JsonValue* j = r.find("bs"))
    out.sim.bs_trajectory =
        read_bs_trajectory(*j, r.sub("bs"), out.sim.bs_trajectory);
  r.finish();
  return out;
}

ExperimentConfig parse_experiment(const std::string& text) {
  std::string error;
  const std::optional<JsonValue> doc = parse_json(text, &error);
  if (!doc) throw ConfigError("", "malformed JSON: " + error);
  return experiment_from_json(*doc);
}

}  // namespace qlec::config
