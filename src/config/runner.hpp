// Executes an expanded sweep grid and renders the run manifest: per-cell
// aggregates as CSV, a BENCH-style JSON summary whose config echo is the
// fully-resolved document (re-parses to the identical grid), and optional
// per-seed trace digests for golden comparisons.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "config/sweep.hpp"
#include "sim/experiment.hpp"

namespace qlec::config {

/// Outcome of one grid cell: the cell identity plus cross-seed aggregates.
struct CellResult {
  std::vector<Override> bindings;  ///< the axis assignments (sweep order)
  std::string label;               ///< "" for a no-sweep run
  ExperimentConfig config;         ///< fully resolved (echoed in manifests)
  AggregatedMetrics metrics;
  /// Per-seed trace digests (16 hex digits each) when the cell ran with
  /// sim.trace.record; empty otherwise.
  std::vector<std::string> digests;
};

struct RunManifest {
  std::string name;
  std::string description;
  std::vector<CellResult> cells;
};

/// Runs every cell (protocol = cell.config.protocol.name) under `exec`.
/// Replication fan-out is per cell, so any ExecPolicy reproduces the serial
/// results bit-identically. `progress` (may be null) is invoked with each
/// cell's label before it runs.
///
/// Since the job API landed (config/jobs.hpp) this is a thin compatibility
/// wrapper: it plans each cell and awaits it on a single-worker JobRunner
/// with no ResultStore, which is bit-identical to the historical loop.
RunManifest run_grid(const std::vector<SweepCell>& cells,
                     const ExecPolicy& exec = ExecPolicy::serial(),
                     void (*progress)(const SweepCell&, std::size_t index,
                                      std::size_t total) = nullptr);

/// Runs one cell under `exec` — the unit the job layer schedules. When
/// `cancel` is non-null and `exec` is serial, it is checked between seed
/// replications; observing it abandons the cell by throwing (the job layer
/// maps that to JobState::kCancelled, and nothing reaches any cache).
CellResult run_cell(const SweepCell& cell,
                    const ExecPolicy& exec = ExecPolicy::serial(),
                    const std::atomic<bool>* cancel = nullptr);

/// BENCH-style JSON: {schema_version, name, description, cells:[{label,
/// bindings, protocol, metrics{...}, digests, config}]}. The config echo is
/// emitted with write_experiment and every metric carries its full Welford
/// state (count/mean/m2/min/max, plus the derived ci95), so
/// manifest_from_json(manifest_to_json(m)) reproduces `m` exactly.
std::string manifest_to_json(const RunManifest& m);

/// Strict inverse of manifest_to_json, built on the same path-qualified
/// ConfigError machinery as the scenario schema: unknown keys, wrong types
/// and malformed stats are rejected with their dotted location, and a
/// schema_version newer than kManifestSchemaVersion fails with a
/// ConfigError at "schema_version" (an old binary must never silently
/// misread a future manifest).
RunManifest manifest_from_json(const std::string& text);

/// One cell as a standalone schema-versioned record — the ResultStore's
/// on-disk format: {schema_version, code_version, key, label, bindings,
/// protocol, metrics, digests, config}.
std::string cell_record_to_json(const CellResult& c, const std::string& key,
                                const std::string& code_version);

/// Strict inverse of cell_record_to_json. Throws ConfigError on anything
/// malformed, on a future schema_version, and on a record whose key or
/// code_version differs from the expected values (a store directory shared
/// across incompatible builds must read as a miss, not as wrong results).
CellResult cell_record_from_json(const std::string& text,
                                 const std::string& expect_key,
                                 const std::string& expect_code_version);

/// One header + one row per cell: label columns, then mean metrics.
std::string manifest_to_csv(const RunManifest& m);

/// All digests in golden-file order (cell-major, seed-minor), one per line,
/// with a leading comment naming each cell — the format
/// `qlec_run --digest --out` writes and `--expect-digests` reads.
std::string manifest_digest_lines(const RunManifest& m);

}  // namespace qlec::config
