// Executes an expanded sweep grid and renders the run manifest: per-cell
// aggregates as CSV, a BENCH-style JSON summary whose config echo is the
// fully-resolved document (re-parses to the identical grid), and optional
// per-seed trace digests for golden comparisons.
#pragma once

#include <string>
#include <vector>

#include "config/sweep.hpp"
#include "sim/experiment.hpp"

namespace qlec::config {

/// Outcome of one grid cell: the cell identity plus cross-seed aggregates.
struct CellResult {
  std::vector<Override> bindings;  ///< the axis assignments (sweep order)
  std::string label;               ///< "" for a no-sweep run
  ExperimentConfig config;         ///< fully resolved (echoed in manifests)
  AggregatedMetrics metrics;
  /// Per-seed trace digests (16 hex digits each) when the cell ran with
  /// sim.trace.record; empty otherwise.
  std::vector<std::string> digests;
};

struct RunManifest {
  std::string name;
  std::string description;
  std::vector<CellResult> cells;
};

/// Runs every cell (protocol = cell.config.protocol.name) under `exec`.
/// Replication fan-out is per cell, so any ExecPolicy reproduces the serial
/// results bit-identically. `progress` (may be null) is invoked with each
/// cell's label before it runs.
RunManifest run_grid(const std::vector<SweepCell>& cells,
                     const ExecPolicy& exec = ExecPolicy::serial(),
                     void (*progress)(const SweepCell&, std::size_t index,
                                      std::size_t total) = nullptr);

/// BENCH-style JSON: {name, description, cells:[{label, bindings, config,
/// metrics{...mean/ci95 pairs}, digests}]}. The config echo is emitted with
/// write_experiment, so parsing it back yields cell.config exactly.
std::string manifest_to_json(const RunManifest& m);

/// One header + one row per cell: label columns, then mean metrics.
std::string manifest_to_csv(const RunManifest& m);

/// All digests in golden-file order (cell-major, seed-minor), one per line,
/// with a leading comment naming each cell — the format
/// `qlec_run --digest --out` writes and `--expect-digests` reads.
std::string manifest_digest_lines(const RunManifest& m);

}  // namespace qlec::config
