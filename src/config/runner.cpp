#include "config/runner.hpp"

#include <cstdio>

namespace qlec::config {
namespace {

void write_stat(JsonWriter& w, const char* name, const RunningStats& s) {
  w.key(name);
  w.begin_object();
  w.key("mean"); w.value(s.mean());
  w.key("ci95"); w.value(s.ci95_halfwidth());
  w.key("count"); w.value(s.count());
  w.end_object();
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

RunManifest run_grid(const std::vector<SweepCell>& cells,
                     const ExecPolicy& exec,
                     void (*progress)(const SweepCell&, std::size_t,
                                      std::size_t)) {
  RunManifest m;
  m.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    if (progress != nullptr) progress(cell, i, cells.size());
    CellResult r;
    r.bindings = cell.bindings;
    r.label = cell.label;
    r.config = cell.config;
    const std::vector<SimResult> runs =
        run_replications(cell.config.protocol.name, cell.config, exec);
    for (const SimResult& run : runs) {
      r.metrics.add(run);
      if (cell.config.sim.trace.record)
        r.digests.push_back(trace_digest_hex(run.trace));
    }
    m.cells.push_back(std::move(r));
  }
  return m;
}

std::string manifest_to_json(const RunManifest& m) {
  JsonWriter w;
  w.begin_object();
  w.key("name"); w.value(m.name);
  w.key("description"); w.value(m.description);
  w.key("cells");
  w.begin_array();
  for (const CellResult& c : m.cells) {
    w.begin_object();
    w.key("label"); w.value(c.label);
    w.key("bindings");
    w.begin_object();
    for (const auto& [path, value] : c.bindings) {
      w.key(path);
      write_value(w, value);
    }
    w.end_object();
    w.key("protocol"); w.value(c.metrics.protocol);
    w.key("metrics");
    w.begin_object();
    write_stat(w, "pdr", c.metrics.pdr);
    write_stat(w, "energy_j", c.metrics.total_energy);
    write_stat(w, "first_death_round", c.metrics.first_death);
    write_stat(w, "half_death_round", c.metrics.half_death);
    write_stat(w, "latency_slots", c.metrics.mean_latency);
    write_stat(w, "heads_per_round", c.metrics.heads_per_round);
    write_stat(w, "generated", c.metrics.generated);
    write_stat(w, "delivered", c.metrics.delivered);
    w.end_object();
    w.key("digests");
    w.begin_array();
    for (const std::string& d : c.digests) w.value(d);
    w.end_array();
    w.key("config");
    write_experiment(w, c.config);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string manifest_to_csv(const RunManifest& m) {
  std::string out =
      "label,protocol,seeds,pdr,pdr_ci95,energy_j,energy_ci95,"
      "latency_slots,first_death_round,half_death_round,heads_per_round,"
      "generated,delivered\n";
  char buf[256];
  for (const CellResult& c : m.cells) {
    out += csv_quote(c.label);
    std::snprintf(buf, sizeof buf,
                  ",%s,%zu,%.6f,%.6f,%.6f,%.6f,%.3f,%.1f,%.1f,%.3f,%.1f,"
                  "%.1f\n",
                  c.metrics.protocol.c_str(), c.metrics.pdr.count(),
                  c.metrics.pdr.mean(), c.metrics.pdr.ci95_halfwidth(),
                  c.metrics.total_energy.mean(),
                  c.metrics.total_energy.ci95_halfwidth(),
                  c.metrics.mean_latency.mean(), c.metrics.first_death.mean(),
                  c.metrics.half_death.mean(),
                  c.metrics.heads_per_round.mean(), c.metrics.generated.mean(),
                  c.metrics.delivered.mean());
    out += buf;
  }
  return out;
}

std::string manifest_digest_lines(const RunManifest& m) {
  std::string out;
  for (const CellResult& c : m.cells) {
    out += "# " + (c.label.empty() ? std::string("(base)") : c.label) + "\n";
    for (const std::string& d : c.digests) out += d + "\n";
  }
  return out;
}

}  // namespace qlec::config
