#include "config/runner.hpp"

#include <cstdio>

#include "config/jobs.hpp"
#include "config/reader.hpp"
#include "config/version.hpp"
#include "obs/telemetry.hpp"

namespace qlec::config {
namespace {

using detail::ObjectReader;

/// The manifest's metric vocabulary: JSON key -> AggregatedMetrics member.
/// Order here is emission order; the parser accepts any subset (absent
/// stats stay empty) and rejects anything outside this table.
struct StatField {
  const char* name;
  RunningStats AggregatedMetrics::* member;
};

constexpr StatField kStatFields[] = {
    {"pdr", &AggregatedMetrics::pdr},
    {"energy_j", &AggregatedMetrics::total_energy},
    {"first_death_round", &AggregatedMetrics::first_death},
    {"half_death_round", &AggregatedMetrics::half_death},
    {"latency_slots", &AggregatedMetrics::mean_latency},
    {"heads_per_round", &AggregatedMetrics::heads_per_round},
    {"generated", &AggregatedMetrics::generated},
    {"delivered", &AggregatedMetrics::delivered},
    {"lost_link", &AggregatedMetrics::lost_link},
    {"lost_queue", &AggregatedMetrics::lost_queue},
    {"lost_dead", &AggregatedMetrics::lost_dead},
    {"recovery_rounds", &AggregatedMetrics::recovery_rounds},
};

void write_stat(JsonWriter& w, const char* name, const RunningStats& s) {
  w.key(name);
  w.begin_object();
  w.key("count"); w.value(s.count());
  w.key("mean"); w.value(s.mean());
  // Derived from the moments below; emitted for human readers and accepted
  // (but recomputed, never trusted) by the parser.
  w.key("ci95"); w.value(s.ci95_halfwidth());
  w.key("m2"); w.value(s.m2());
  w.key("min"); w.value(s.min());
  w.key("max"); w.value(s.max());
  w.end_object();
}

RunningStats stat_from_json(const JsonValue& v, const std::string& path) {
  ObjectReader r(v, path);
  const long long count = r.integer("count", 0, 0);
  double mean = 0.0, m2 = 0.0, min = 0.0, max = 0.0, ci95 = 0.0;
  r.number("mean", mean);
  r.number("ci95", ci95);  // derived; ignored
  r.number("m2", m2, 0.0);
  r.number("min", min);
  r.number("max", max);
  r.finish();
  return RunningStats::from_moments(static_cast<std::size_t>(count), mean, m2,
                                    min, max);
}

void write_cell_body(JsonWriter& w, const CellResult& c) {
  w.key("label"); w.value(c.label);
  w.key("bindings");
  w.begin_object();
  for (const auto& [path, value] : c.bindings) {
    w.key(path);
    write_value(w, value);
  }
  w.end_object();
  w.key("protocol"); w.value(c.metrics.protocol);
  w.key("metrics");
  w.begin_object();
  for (const StatField& f : kStatFields)
    write_stat(w, f.name, c.metrics.*(f.member));
  w.end_object();
  w.key("digests");
  w.begin_array();
  for (const std::string& d : c.digests) w.value(d);
  w.end_array();
  w.key("config");
  write_experiment(w, c.config);
}

/// Parses the shared cell-body keys out of `r` (the caller owns any extra
/// envelope keys — schema_version etc. — and the final finish()).
CellResult cell_body_from_reader(ObjectReader& r) {
  CellResult c;
  r.string_field("label", c.label);
  if (const JsonValue* b = r.find("bindings")) {
    if (!b->is_object())
      throw ConfigError(r.sub("bindings"),
                        "expected object, got " + detail::describe(*b));
    for (const auto& [path, value] : b->members())
      c.bindings.emplace_back(path, value);
  }
  r.string_field("protocol", c.metrics.protocol);
  if (const JsonValue* m = r.find("metrics")) {
    ObjectReader mr(*m, r.sub("metrics"));
    for (const StatField& f : kStatFields) {
      if (const JsonValue* s = mr.find(f.name))
        c.metrics.*(f.member) = stat_from_json(*s, mr.sub(f.name));
    }
    mr.finish();
  }
  if (const JsonValue* d = r.find("digests")) {
    if (!d->is_array())
      throw ConfigError(r.sub("digests"),
                        "expected array, got " + detail::describe(*d));
    for (std::size_t i = 0; i < d->size(); ++i) {
      const JsonValue& item = d->at(i);
      if (!item.is_string())
        throw ConfigError(r.sub("digests") + "[" + std::to_string(i) + "]",
                          "expected string, got " + detail::describe(item));
      c.digests.push_back(item.as_string());
    }
  }
  if (const JsonValue* cfg = r.find("config")) {
    c.config = experiment_from_json(*cfg, r.sub("config"));
  } else {
    throw ConfigError(r.sub("config"), "missing config echo");
  }
  return c;
}

/// Reads and validates the required "schema_version" envelope key.
void check_schema_version(ObjectReader& r) {
  const JsonValue* v = r.find("schema_version");
  if (v == nullptr)
    throw ConfigError(r.sub("schema_version"),
                      "missing (this build writes version " +
                          std::to_string(kManifestSchemaVersion) + ")");
  if (!v->is_number() ||
      v->as_double() != static_cast<double>(v->as_int()) || v->as_int() < 1)
    throw ConfigError(r.sub("schema_version"),
                      "expected integer ≥ 1, got " + detail::describe(*v));
  const long long n = v->as_int();
  if (n > kManifestSchemaVersion)
    throw ConfigError(
        r.sub("schema_version"),
        "unsupported future version " + std::to_string(n) +
            " (this build reads ≤ " +
            std::to_string(kManifestSchemaVersion) + ")");
}

JsonValue parse_document(const std::string& text) {
  std::string error;
  const auto v = parse_json(text, &error);
  if (!v) throw ConfigError("", "malformed JSON: " + error);
  return *v;
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CellResult run_cell(const SweepCell& cell, const ExecPolicy& exec,
                    const std::atomic<bool>* cancel) {
  CellResult r;
  r.bindings = cell.bindings;
  r.label = cell.label;
  r.config = cell.config;
  const ExperimentConfig& cfg = cell.config;
  const auto add_run = [&r, &cfg](const SimResult& run) {
    r.metrics.add(run);
    if (cfg.sim.trace.record) r.digests.push_back(trace_digest_hex(run.trace));
  };
  if (exec.is_serial() && cancel != nullptr) {
    // Seed-at-a-time so the cancellation flag is honored between
    // replications. Bit-identical to the batch path: replication i always
    // runs seed base_seed + i, and the per-seed telemetry suffix is applied
    // exactly when the batch path would apply it.
    for (std::size_t s = 0; s < cfg.seeds; ++s) {
      if (cancel->load(std::memory_order_relaxed)) throw JobCancelled();
      ExperimentConfig one = cfg;
      one.seeds = 1;
      one.base_seed = cfg.base_seed + s;
      if (cfg.seeds > 1 && cfg.sim.telemetry.enabled)
        one.sim.telemetry =
            obs::Telemetry::with_seed_suffix(cfg.sim.telemetry, s);
      for (const SimResult& run :
           run_replications(one.protocol.name, one, ExecPolicy::serial()))
        add_run(run);
    }
    return r;
  }
  for (const SimResult& run :
       run_replications(cfg.protocol.name, cfg, exec))
    add_run(run);
  return r;
}

RunManifest run_grid(const std::vector<SweepCell>& cells,
                     const ExecPolicy& exec,
                     void (*progress)(const SweepCell&, std::size_t,
                                      std::size_t)) {
  JobRunnerOptions opts;
  opts.workers = 1;
  opts.within_cell = exec;
  JobRunner runner(opts);
  RunManifest m;
  m.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    if (progress != nullptr) progress(cell, i, cells.size());
    m.cells.push_back(runner.submit(plan_cell(cell)).await());
  }
  return m;
}

std::string manifest_to_json(const RunManifest& m) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version"); w.value(kManifestSchemaVersion);
  w.key("name"); w.value(m.name);
  w.key("description"); w.value(m.description);
  w.key("cells");
  w.begin_array();
  for (const CellResult& c : m.cells) {
    w.begin_object();
    write_cell_body(w, c);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

RunManifest manifest_from_json(const std::string& text) {
  const JsonValue doc = parse_document(text);
  ObjectReader r(doc, "");
  check_schema_version(r);
  RunManifest m;
  r.string_field("name", m.name);
  r.string_field("description", m.description);
  if (const JsonValue* cells = r.find("cells")) {
    if (!cells->is_array())
      throw ConfigError("cells",
                        "expected array, got " + detail::describe(*cells));
    for (std::size_t i = 0; i < cells->size(); ++i) {
      const std::string path = "cells[" + std::to_string(i) + "]";
      ObjectReader cr(cells->at(i), path);
      m.cells.push_back(cell_body_from_reader(cr));
      cr.finish();
    }
  }
  r.finish();
  return m;
}

std::string cell_record_to_json(const CellResult& c, const std::string& key,
                                const std::string& code_version) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version"); w.value(kManifestSchemaVersion);
  w.key("code_version"); w.value(code_version);
  w.key("key"); w.value(key);
  write_cell_body(w, c);
  w.end_object();
  return w.str();
}

CellResult cell_record_from_json(const std::string& text,
                                 const std::string& expect_key,
                                 const std::string& expect_code_version) {
  const JsonValue doc = parse_document(text);
  ObjectReader r(doc, "");
  check_schema_version(r);
  std::string code_version, key;
  r.string_field("code_version", code_version);
  r.string_field("key", key);
  if (code_version != expect_code_version)
    throw ConfigError("code_version", "record written by \"" + code_version +
                                          "\", expected \"" +
                                          expect_code_version + "\"");
  if (key != expect_key)
    throw ConfigError(
        "key", "record is for " + key + ", expected " + expect_key);
  CellResult c = cell_body_from_reader(r);
  r.finish();
  return c;
}

std::string manifest_to_csv(const RunManifest& m) {
  std::string out =
      "label,protocol,seeds,pdr,pdr_ci95,energy_j,energy_ci95,"
      "latency_slots,first_death_round,half_death_round,heads_per_round,"
      "generated,delivered\n";
  char buf[256];
  for (const CellResult& c : m.cells) {
    out += csv_quote(c.label);
    std::snprintf(buf, sizeof buf,
                  ",%s,%zu,%.6f,%.6f,%.6f,%.6f,%.3f,%.1f,%.1f,%.3f,%.1f,"
                  "%.1f\n",
                  c.metrics.protocol.c_str(), c.metrics.pdr.count(),
                  c.metrics.pdr.mean(), c.metrics.pdr.ci95_halfwidth(),
                  c.metrics.total_energy.mean(),
                  c.metrics.total_energy.ci95_halfwidth(),
                  c.metrics.mean_latency.mean(), c.metrics.first_death.mean(),
                  c.metrics.half_death.mean(),
                  c.metrics.heads_per_round.mean(), c.metrics.generated.mean(),
                  c.metrics.delivered.mean());
    out += buf;
  }
  return out;
}

std::string manifest_digest_lines(const RunManifest& m) {
  std::string out;
  for (const CellResult& c : m.cells) {
    out += "# " + (c.label.empty() ? std::string("(base)") : c.label) + "\n";
    for (const std::string& d : c.digests) out += d + "\n";
  }
  return out;
}

}  // namespace qlec::config
