// Job-oriented execution layer over the sweep grid (DESIGN.md §13): the
// blocking run_grid() call decomposes into
//
//   plan()    grid cells -> immutable JobSpecs, each keyed by a digest of
//             the fully-resolved config echo + kCodeVersion
//   submit()  JobSpec -> JobHandle (status / cancel / await) on a shared
//             scheduler with priorities and in-flight deduplication
//   ResultStore  content-addressed cache: a key that was simulated once —
//             this process or any earlier run sharing the store directory —
//             returns its CellResult without re-simulation
//
// run_grid() remains as a thin compatibility wrapper, so every existing
// caller (qlec_run, compare_all, the golden tests) sees identical behavior;
// qlec_serve and the load bench drive this interface directly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "config/runner.hpp"
#include "config/version.hpp"

namespace qlec::config {

/// Content-address of one grid cell: a 16-hex-digit FNV-1a digest over
/// `code_version` + the fully-resolved config echo (experiment_to_json), so
/// any config delta — and any semantics-changing build — changes the key.
/// The `sim.telemetry` block is excluded: telemetry is strictly
/// observational (it can never change a trajectory), so two runs differing
/// only in where they stream events share one cached result. Note that a
/// cache hit therefore emits no fresh telemetry for the skipped simulation.
std::string job_key(const ExperimentConfig& cfg,
                    const std::string& code_version = kCodeVersion);

/// Immutable unit of schedulable work: one grid cell plus its cache key.
struct JobSpec {
  std::string key;                 ///< job_key(config)
  std::string label;               ///< cell label ("" for a no-sweep run)
  std::vector<Override> bindings;  ///< the axis assignments (sweep order)
  ExperimentConfig config;         ///< fully resolved
};

/// Grid -> specs (cell order preserved). `plan_cell` is the single-cell
/// form.
JobSpec plan_cell(const SweepCell& cell);
std::vector<JobSpec> plan(const std::vector<SweepCell>& cells);

enum class JobState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is simulating (or checking the store)
  kDone,       ///< result available (simulated or served from cache)
  kCancelled,  ///< cancelled before completion; no result, no cache entry
  kFailed,     ///< the simulation threw; await() rethrows
};
const char* job_state_name(JobState s) noexcept;

/// Thrown by JobHandle::await() for a cancelled job.
struct JobCancelled : std::runtime_error {
  JobCancelled() : std::runtime_error("job cancelled") {}
};

/// Content-addressed CellResult cache. Thread-safe. With a directory, every
/// insert also lands on disk as `<dir>/<key>.json` (a schema-versioned cell
/// record written atomically via rename, so a crash or cancellation can
/// never leave a partial entry), and lookups fall back to disk — a store
/// directory warms across processes. With an empty dir it is memory-only.
class ResultStore {
 public:
  explicit ResultStore(std::string dir = "");

  /// The cached result for `key`, or nullopt. Disk entries that fail the
  /// strict record parse (corruption, future schema, foreign code version)
  /// are treated as misses.
  std::optional<CellResult> lookup(const std::string& key) const;
  void insert(const std::string& key, const CellResult& result);

  const std::string& dir() const noexcept { return dir_; }

  struct Stats {
    std::uint64_t hits = 0;       ///< lookups served (memory or disk)
    std::uint64_t disk_hits = 0;  ///< subset of hits that came from disk
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::string dir_;
  // lookup() promotes disk hits into memory, hence mutable.
  mutable std::unordered_map<std::string, CellResult> memory_;
  mutable Stats stats_;
};

namespace detail {
struct Job;
}  // namespace detail

/// Shared-state view of one submitted job. Copyable; all copies observe the
/// same job. A default-constructed handle is empty (state() == kFailed).
class JobHandle {
 public:
  JobHandle() = default;

  const std::string& key() const noexcept;
  const std::string& label() const noexcept;
  JobState state() const;
  /// True once state() == kDone and the result came from the ResultStore or
  /// from coalescing onto an identical in-flight job (i.e. this submission
  /// ran no simulation of its own).
  bool from_cache() const;

  /// Requests cancellation. Returns true when the job was still queued — it
  /// will never run and await() will throw JobCancelled. A running job gets
  /// a best-effort flag: the serial per-seed executor honors it between
  /// replications (the job then ends kCancelled with nothing cached);
  /// otherwise the job completes normally and cancel() returns false.
  bool cancel();

  /// Blocks until the job leaves the queue/run states, then returns the
  /// result with this submission's label/bindings (a coalesced job computes
  /// under the first submitter's identity; metrics/digests/config are
  /// key-determined and shared). Rethrows the job's exception on kFailed
  /// and throws JobCancelled on kCancelled.
  CellResult await() const;

 private:
  friend class JobRunner;
  JobHandle(std::shared_ptr<detail::Job> job, std::string label,
            std::vector<Override> bindings);

  std::shared_ptr<detail::Job> job_;
  std::string label_;
  std::vector<Override> bindings_;
  bool coalesced_ = false;  ///< attached to an identical in-flight job
};

struct JobRunnerOptions {
  /// Scheduler width: how many cells simulate concurrently (>= 1).
  std::size_t workers = 1;
  /// Replication fan-out inside one cell. Serial (the default) additionally
  /// enables between-seed cancellation checks; any policy is bit-identical.
  ExecPolicy within_cell = ExecPolicy::serial();
  /// Optional content-addressed cache, borrowed (must outlive the runner).
  ResultStore* store = nullptr;
};

/// The shared scheduler: a fixed worker pool draining a priority queue of
/// JobSpecs. Higher priority runs first; ties run in submit order.
/// Submitting a key that is already queued or running coalesces onto the
/// existing job, so concurrent identical submissions perform exactly one
/// simulation.
class JobRunner {
 public:
  explicit JobRunner(JobRunnerOptions opts = {});
  /// Cancels everything still queued, waits for running jobs, joins.
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  JobHandle submit(const JobSpec& spec, int priority = 0);

  /// Blocks until no job is queued or running.
  void wait_idle() const;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t simulated = 0;   ///< cells actually run
    std::uint64_t cache_hits = 0;  ///< served from the ResultStore
    std::uint64_t coalesced = 0;   ///< attached to an identical live job
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
  };
  Stats stats() const;

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<detail::Job>& job);

  JobRunnerOptions opts_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;       // queue / stop signal
  mutable std::condition_variable idle_cv_;  // wait_idle
  std::vector<std::shared_ptr<detail::Job>> queue_;  // heap by (prio, seq)
  std::unordered_map<std::string, std::weak_ptr<detail::Job>> live_;
  std::uint64_t next_seq_ = 0;
  std::size_t active_ = 0;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace qlec::config
