#include "config/jobs.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <utility>

#include "config/schema.hpp"
#include "util/csv.hpp"

namespace qlec::config {

namespace detail {

/// Shared state of one scheduled cell. Guarded by `m` except where noted;
/// `cv` signals every state transition out of kQueued/kRunning.
struct Job {
  JobSpec spec;
  int priority = 0;
  std::uint64_t seq = 0;

  std::mutex m;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  bool cached = false;  ///< result came from the ResultStore
  CellResult result;
  std::exception_ptr error;
  /// Best-effort mid-run cancel; run_cell polls it between seeds.
  std::atomic<bool> cancel_requested{false};
};

}  // namespace detail

using detail::Job;

namespace {

std::uint64_t fnv1a64(std::uint64_t h, const std::string& bytes) {
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace

std::string job_key(const ExperimentConfig& cfg,
                    const std::string& code_version) {
  // Telemetry is strictly observational (OBSERVABILITY.md overhead
  // contract): it never changes a trajectory, so it must not change the
  // content address either.
  ExperimentConfig keyed = cfg;
  keyed.sim.telemetry = obs::TelemetryOptions{};
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = fnv1a64(h, code_version);
  h = fnv1a64(h, "\n");
  h = fnv1a64(h, experiment_to_json(keyed));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

JobSpec plan_cell(const SweepCell& cell) {
  JobSpec spec;
  spec.key = job_key(cell.config);
  spec.label = cell.label;
  spec.bindings = cell.bindings;
  spec.config = cell.config;
  return spec;
}

std::vector<JobSpec> plan(const std::vector<SweepCell>& cells) {
  std::vector<JobSpec> specs;
  specs.reserve(cells.size());
  for (const SweepCell& cell : cells) specs.push_back(plan_cell(cell));
  return specs;
}

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

// ---- ResultStore ----

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // best effort
  }
}

std::optional<CellResult> ResultStore::lookup(const std::string& key) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  if (!dir_.empty()) {
    if (const auto text = read_text_file(dir_ + "/" + key + ".json")) {
      try {
        CellResult r = cell_record_from_json(*text, key, kCodeVersion);
        const std::lock_guard<std::mutex> lock(mutex_);
        memory_.emplace(key, r);
        ++stats_.hits;
        ++stats_.disk_hits;
        return r;
      } catch (const ConfigError&) {
        // Corrupt / foreign / future entry: fall through to a miss.
      }
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  return std::nullopt;
}

void ResultStore::insert(const std::string& key, const CellResult& result) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.inserts;
    memory_.insert_or_assign(key, result);
  }
  if (dir_.empty()) return;
  // Write-then-rename so a concurrent reader (or an interrupted process)
  // never observes a partial record; the disk tier is best-effort — an IO
  // failure only costs future cross-process hits.
  const std::string final_path = dir_ + "/" + key + ".json";
  const std::string tmp =
      final_path + ".tmp" +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  if (write_text_file(tmp, cell_record_to_json(result, key, kCodeVersion))) {
    std::error_code ec;
    std::filesystem::rename(tmp, final_path, ec);
    if (ec) std::filesystem::remove(tmp, ec);
  }
}

ResultStore::Stats ResultStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ---- JobHandle ----

JobHandle::JobHandle(std::shared_ptr<Job> job, std::string label,
                     std::vector<Override> bindings)
    : job_(std::move(job)),
      label_(std::move(label)),
      bindings_(std::move(bindings)) {}

const std::string& JobHandle::key() const noexcept {
  static const std::string empty;
  return job_ ? job_->spec.key : empty;
}

const std::string& JobHandle::label() const noexcept { return label_; }

JobState JobHandle::state() const {
  if (!job_) return JobState::kFailed;
  const std::lock_guard<std::mutex> lock(job_->m);
  return job_->state;
}

bool JobHandle::from_cache() const {
  if (!job_) return false;
  const std::lock_guard<std::mutex> lock(job_->m);
  return job_->state == JobState::kDone && (job_->cached || coalesced_);
}

bool JobHandle::cancel() {
  if (!job_) return false;
  bool was_queued = false;
  {
    const std::lock_guard<std::mutex> lock(job_->m);
    if (job_->state == JobState::kQueued) {
      job_->state = JobState::kCancelled;
      was_queued = true;
    } else {
      job_->cancel_requested.store(true, std::memory_order_relaxed);
    }
  }
  if (was_queued) job_->cv.notify_all();
  return was_queued;
}

CellResult JobHandle::await() const {
  if (!job_) throw std::runtime_error("await on an empty JobHandle");
  std::unique_lock<std::mutex> lock(job_->m);
  job_->cv.wait(lock, [this] {
    return job_->state == JobState::kDone ||
           job_->state == JobState::kCancelled ||
           job_->state == JobState::kFailed;
  });
  if (job_->state == JobState::kCancelled) throw JobCancelled();
  if (job_->state == JobState::kFailed) std::rethrow_exception(job_->error);
  CellResult r = job_->result;
  // A coalesced submission computed under the first submitter's identity;
  // metrics/digests/config are key-determined, the presentation is ours.
  r.label = label_;
  r.bindings = bindings_;
  return r;
}

// ---- JobRunner ----

namespace {

/// Max-heap order: higher priority first, then FIFO by sequence number.
bool heap_before(const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) {
  if (a->priority != b->priority) return a->priority < b->priority;
  return a->seq > b->seq;
}

}  // namespace

JobRunner::JobRunner(JobRunnerOptions opts) : opts_(opts) {
  const std::size_t n = std::max<std::size_t>(1, opts_.workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

JobRunner::~JobRunner() {
  std::vector<std::shared_ptr<Job>> doomed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    doomed.swap(queue_);
  }
  cv_.notify_all();
  for (const std::shared_ptr<Job>& job : doomed) {
    bool cancelled = false;
    {
      const std::lock_guard<std::mutex> lock(job->m);
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        cancelled = true;
      }
    }
    if (cancelled) {
      job->cv.notify_all();
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cancelled;
    }
  }
  for (std::thread& t : workers_) t.join();
  idle_cv_.notify_all();
}

JobHandle JobRunner::submit(const JobSpec& spec, int priority) {
  std::shared_ptr<Job> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
      throw std::runtime_error("JobRunner::submit after shutdown");
    ++stats_.submitted;
    const auto it = live_.find(spec.key);
    if (it != live_.end()) {
      if (const std::shared_ptr<Job> existing = it->second.lock()) {
        const std::lock_guard<std::mutex> jl(existing->m);
        if (existing->state == JobState::kQueued ||
            existing->state == JobState::kRunning) {
          ++stats_.coalesced;
          JobHandle h(existing, spec.label, spec.bindings);
          h.coalesced_ = true;
          return h;
        }
      }
    }
    job = std::make_shared<Job>();
    job->spec = spec;
    job->priority = priority;
    job->seq = next_seq_++;
    live_[spec.key] = job;
    queue_.push_back(job);
    std::push_heap(queue_.begin(), queue_.end(), heap_before);
  }
  cv_.notify_one();
  return JobHandle(job, spec.label, spec.bindings);
}

void JobRunner::wait_idle() const {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

JobRunner::Stats JobRunner::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void JobRunner::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      std::pop_heap(queue_.begin(), queue_.end(), heap_before);
      job = std::move(queue_.back());
      queue_.pop_back();
      ++active_;
    }
    run_job(job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void JobRunner::run_job(const std::shared_ptr<Job>& job) {
  {
    const std::lock_guard<std::mutex> lock(job->m);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
  }
  // Stats are bumped BEFORE the terminal state is published: an awaiter
  // that wakes from this job must already see it in stats() (the load
  // bench reads per-phase deltas that way).
  if (opts_.store != nullptr) {
    if (auto hit = opts_.store->lookup(job->spec.key)) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.cache_hits;
      }
      {
        const std::lock_guard<std::mutex> lock(job->m);
        job->result = std::move(*hit);
        job->cached = true;
        job->state = JobState::kDone;
      }
      job->cv.notify_all();
      return;
    }
  }
  SweepCell cell;
  cell.bindings = job->spec.bindings;
  cell.label = job->spec.label;
  cell.config = job->spec.config;
  try {
    CellResult r = run_cell(cell, opts_.within_cell, &job->cancel_requested);
    // Insert before publishing kDone so a submitter that awaits this job
    // and immediately resubmits the key is guaranteed a hit.
    if (opts_.store != nullptr) opts_.store->insert(job->spec.key, r);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.simulated;
    }
    {
      const std::lock_guard<std::mutex> lock(job->m);
      job->result = std::move(r);
      job->state = JobState::kDone;
    }
    job->cv.notify_all();
  } catch (const JobCancelled&) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cancelled;
    }
    {
      const std::lock_guard<std::mutex> lock(job->m);
      job->state = JobState::kCancelled;
    }
    job->cv.notify_all();
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failed;
    }
    {
      const std::lock_guard<std::mutex> lock(job->m);
      job->error = std::current_exception();
      job->state = JobState::kFailed;
    }
    job->cv.notify_all();
  }
}

}  // namespace qlec::config
