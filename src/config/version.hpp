// Version constants for the serialized result formats and the cache key.
//
// kManifestSchemaVersion stamps every manifest / cached-cell document this
// repo writes ("schema_version"). manifest_from_json accepts documents up to
// and including this version and rejects anything newer with a
// path-qualified ConfigError — an old binary must never silently misread a
// future manifest (DESIGN.md §13).
//
// kCodeVersion names the simulation semantics. It is folded into every
// content-addressed job key (config/jobs.hpp), so a ResultStore written by
// one build is only reused by builds whose trajectories are bit-identical.
// Bump it whenever a change moves any golden digest (protocol logic, RNG
// streams, radio model, ...); schema-only or tooling changes keep it.
#pragma once

namespace qlec::config {

inline constexpr int kManifestSchemaVersion = 1;

inline constexpr const char* kCodeVersion = "qlec-sim-2026.08";

}  // namespace qlec::config
