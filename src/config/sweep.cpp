#include "config/sweep.hpp"

#include <cstddef>
#include <optional>

namespace qlec::config {
namespace {

/// A grid this large is almost certainly an authoring mistake (e.g. a
/// 20-value axis pasted five times); fail before spawning hours of work.
constexpr std::size_t kMaxCells = 10000;

/// Splits "a.b.c" into {"a","b","c"}; empty segments are malformed.
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    parts.push_back(path.substr(start, dot - start));
    if (parts.back().empty())
      throw ConfigError(path, "malformed sweep path (empty segment)");
    if (dot == std::string::npos) return parts;
    start = dot + 1;
  }
}

JsonValue set_in(const JsonValue& node, const std::string& full_path,
                 const std::vector<std::string>& parts, std::size_t depth,
                 const JsonValue& leaf) {
  if (depth == parts.size()) return leaf;
  if (!node.is_object() && !node.is_null()) {
    std::string prefix = parts[0];
    for (std::size_t i = 1; i < depth; ++i) prefix += "." + parts[i];
    throw ConfigError(full_path,
                      "path traverses non-object value at " + prefix);
  }
  std::vector<std::pair<std::string, JsonValue>> members =
      node.is_object() ? node.members()
                       : std::vector<std::pair<std::string, JsonValue>>{};
  for (auto& [k, v] : members) {
    if (k == parts[depth]) {
      v = set_in(v, full_path, parts, depth + 1, leaf);
      return JsonValue::make_object(std::move(members));
    }
  }
  members.emplace_back(
      parts[depth],
      set_in(JsonValue::make_null(), full_path, parts, depth + 1, leaf));
  return JsonValue::make_object(std::move(members));
}

}  // namespace

JsonValue with_path_set(const JsonValue& doc, const std::string& path,
                        const JsonValue& leaf) {
  return set_in(doc, path, split_path(path), 0, leaf);
}

std::string leaf_label(const JsonValue& v) {
  return v.is_string() ? v.as_string() : dump_json(v);
}

ScenarioFile parse_scenario(const std::string& text) {
  std::string error;
  const std::optional<JsonValue> doc = parse_json(text, &error);
  if (!doc) throw ConfigError("", "malformed JSON: " + error);
  if (!doc->is_object())
    throw ConfigError("", "scenario file must be a JSON object");

  ScenarioFile out;
  std::vector<std::pair<std::string, JsonValue>> base_members;
  for (const auto& [key, value] : doc->members()) {
    if (key == "name" || key == "description") {
      if (!value.is_string())
        throw ConfigError(key, "expected string, got " +
                                   dump_json(value).substr(0, 40));
      (key == "name" ? out.name : out.description) = value.as_string();
    } else if (key == "sweep") {
      if (!value.is_object())
        throw ConfigError("sweep", "expected object of path -> value-array");
      for (const auto& [path, values] : value.members()) {
        if (!values.is_array() || values.size() == 0)
          throw ConfigError("sweep." + path,
                            "expected non-empty array of axis values");
        split_path(path);  // reject malformed axis paths up front
        out.axes.push_back({path, values.items()});
      }
    } else {
      base_members.emplace_back(key, value);
    }
  }
  out.base = JsonValue::make_object(std::move(base_members));
  return out;
}

std::vector<SweepCell> expand_grid(const ScenarioFile& scenario,
                                   const std::vector<Override>& overrides) {
  // --set lands on the base first, and pins any axis it names exactly.
  JsonValue base = scenario.base;
  std::vector<SweepAxis> axes = scenario.axes;
  for (const auto& [path, value] : overrides) {
    base = with_path_set(base, path, value);
    std::erase_if(axes, [&p = path](const SweepAxis& a) {
      return a.path == p;
    });
  }

  std::size_t total = 1;
  for (const SweepAxis& a : axes) {
    if (a.values.size() > kMaxCells / total)
      throw ConfigError("sweep", "grid exceeds " +
                                     std::to_string(kMaxCells) + " cells");
    total *= a.values.size();
  }

  std::vector<SweepCell> cells;
  cells.reserve(total);
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t cell = 0; cell < total; ++cell) {
    SweepCell c;
    JsonValue doc = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const JsonValue& v = axes[a].values[idx[a]];
      doc = with_path_set(doc, axes[a].path, v);
      c.bindings.emplace_back(axes[a].path, v);
      if (!c.label.empty()) c.label += ' ';
      c.label += axes[a].path + "=" + leaf_label(v);
    }
    c.config = experiment_from_json(doc);
    cells.push_back(std::move(c));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return cells;
}

}  // namespace qlec::config
