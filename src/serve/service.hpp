// The qlec_serve request brain: scenario JSON in, jobs on a shared
// JobRunner, manifests and stats out (DESIGN.md §13). HTTP-agnostic — the
// HttpServer calls handle(), the tests and the load bench may call it
// directly. Thread-safe: handle() runs concurrently from the HTTP worker
// pool.
//
// API (all JSON):
//   GET  /healthz                     liveness + schema/code versions
//   GET  /stats                       scheduler + cache counters
//   POST /v1/runs[?wait=1][&priority=N]
//        body = scenario file (same format as examples/scenarios/*.json);
//        validated through the strict schema -> ConfigError becomes a 400
//        with the path-qualified message. Expands the sweep grid, plans one
//        job per cell, submits all. wait=1 blocks and returns the full
//        manifest; otherwise 202 with {run_id, jobs:[...]}.
//   GET  /v1/runs/<id>                per-job states + aggregate state
//   GET  /v1/runs/<id>/manifest       manifest once every job is done (409
//                                     while incomplete or degraded)
//   POST /v1/runs/<id>/cancel         cancel still-queued jobs
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "config/jobs.hpp"
#include "serve/http.hpp"

namespace qlec::serve {

struct ServiceOptions {
  /// Scheduler width (concurrent cells); 0 = hardware concurrency.
  std::size_t workers = 0;
  /// ResultStore directory; "" keeps the cache in memory only.
  std::string cache_dir;
  /// When set, per-job telemetry file outputs are respooled here as
  /// <dir>/<job key>.{events.jsonl, trace.json, metrics.json}
  /// (OBSERVABILITY.md); "" leaves client-provided paths untouched.
  std::string telemetry_dir;
  /// Per-submission grid cap (the sweep layer itself caps at 10k).
  std::size_t max_cells = 10000;
};

class JobService {
 public:
  explicit JobService(ServiceOptions opts = {});

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// The HttpHandler: routes `req` and fills `resp`. Never throws for
  /// client errors (those become 4xx bodies).
  void handle(const HttpRequest& req, HttpResponse& resp);

  config::JobRunner& runner() noexcept { return *runner_; }
  config::ResultStore& store() noexcept { return store_; }

 private:
  struct Run {
    std::string id;
    std::string name;
    std::string description;
    std::vector<config::JobHandle> jobs;
  };

  std::shared_ptr<Run> find_run(const std::string& id);
  void post_runs(const HttpRequest& req, HttpResponse& resp);
  void run_status(const Run& run, HttpResponse& resp);
  void run_manifest(const Run& run, HttpResponse& resp);
  void run_cancel(const Run& run, HttpResponse& resp);
  void stats(HttpResponse& resp);

  ServiceOptions opts_;
  config::ResultStore store_;
  std::unique_ptr<config::JobRunner> runner_;
  std::mutex mutex_;  // guards runs_ / next_run_
  std::map<std::string, std::shared_ptr<Run>> runs_;
  std::uint64_t next_run_ = 1;
};

}  // namespace qlec::serve
