#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace qlec::serve {
namespace {

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool parse_http_url(const std::string& url, std::string& host,
                    std::uint16_t& port, std::string& path) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) return false;
  const std::string rest = url.substr(scheme.size());
  const std::size_t slash = rest.find('/');
  const std::string authority =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  path = slash == std::string::npos ? "/" : rest.substr(slash);
  const std::size_t colon = authority.find(':');
  host = colon == std::string::npos ? authority : authority.substr(0, colon);
  if (host.empty()) return false;
  if (colon == std::string::npos) {
    port = 80;
    return true;
  }
  const std::string port_text = authority.substr(colon + 1);
  char* end = nullptr;
  const unsigned long n = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || n == 0 || n > 65535)
    return false;
  port = static_cast<std::uint16_t>(n);
  return true;
}

std::optional<ClientResponse> http_request(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, const std::string& body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, "socket(): failed");
    return std::nullopt;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    fail(error, "bad host " + host + " (IPv4 literal expected)");
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail(error, "connect " + host + ":" + std::to_string(port) + ": " + why);
    return std::nullopt;
  }

  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  req += "Content-Type: application/json\r\n";
  req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  req += "Connection: close\r\n\r\n";
  req += body;
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      fail(error, "send failed");
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }

  // The server closes after one response, so read to EOF and split.
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      ::close(fd);
      fail(error, "recv failed");
      return std::nullopt;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  const std::size_t line_end = raw.find("\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    fail(error, "malformed response");
    return std::nullopt;
  }
  const std::string status_line = raw.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  ClientResponse resp;
  resp.status =
      sp == std::string::npos ? 0 : std::atoi(status_line.c_str() + sp + 1);
  resp.body = raw.substr(head_end + 4);
  return resp;
}

}  // namespace qlec::serve
