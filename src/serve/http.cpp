#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/json.hpp"

namespace qlec::serve {
namespace {

/// Caps keep a misbehaving client from ballooning the daemon: request heads
/// are tiny, bodies are scenario files (the largest committed one is < 2 KB;
/// 16 MiB leaves room for generated grids).
constexpr std::size_t kMaxHeadBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// recv() until `raw` contains the header terminator or the cap trips.
/// Returns the terminator position, or npos on error/overflow/EOF.
std::size_t read_head(int fd, std::string& raw) {
  char buf[4096];
  for (;;) {
    const std::size_t mark = raw.find("\r\n\r\n");
    if (mark != std::string::npos) return mark;
    if (raw.size() > kMaxHeadBytes) return std::string::npos;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return std::string::npos;
    raw.append(buf, static_cast<std::size_t>(n));
  }
}

bool read_exact(int fd, std::string& raw, std::size_t want) {
  char buf[4096];
  while (raw.size() < want) {
    const ssize_t n = ::recv(
        fd, buf, std::min(sizeof buf, want - raw.size()), 0);
    if (n <= 0) return false;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

const char* http_status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
  }
  return "Unknown";
}

std::map<std::string, std::string> parse_query(const std::string& text) {
  std::map<std::string, std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('&', start);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(start, end - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos)
        out[pair] = "";
      else
        out[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    start = end + 1;
  }
  return out;
}

bool parse_http_request(const std::string& raw, HttpRequest& out,
                        std::string* error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return fail("missing header terminator");
  const std::size_t line_end = raw.find("\r\n");
  const std::string request_line = raw.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    return fail("malformed request line");
  out.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return fail("not HTTP/1.x");
  if (out.method.empty() || target.empty() || target[0] != '/')
    return fail("malformed request target");
  const std::size_t qmark = target.find('?');
  out.path = target.substr(0, qmark);
  out.query = qmark == std::string::npos
                  ? std::map<std::string, std::string>{}
                  : parse_query(target.substr(qmark + 1));

  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    const std::string line = raw.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return fail("malformed header line");
    out.headers[lower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
    pos = eol + 2;
  }
  out.body = raw.substr(head_end + 4);
  return true;
}

std::string render_http_response(const HttpResponse& r) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    http_status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += r.body;
  return out;
}

HttpServer::HttpServer(std::string host, std::uint16_t port,
                       HttpHandler handler, std::size_t workers)
    : host_(std::move(host)), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket(): failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("invalid listen address " + host_);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("cannot listen on " + host_ + ":" +
                             std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<ThreadPool>(workers == 0 ? 4 : workers);
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Closing the listener wakes accept(); the acceptor thread then exits and
  // the pool destructor drains any connections still being served.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  pool_.reset();
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed (stop()) or fatal error
    // Bound the damage from a stalled client: a connection may hold a pool
    // worker for at most the socket timeout.
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    try {
      (void)pool_->submit([this, fd] { handle_connection(fd); });
    } catch (const std::exception&) {
      ::close(fd);  // pool shutting down
      return;
    }
  }
}

void HttpServer::handle_connection(int fd) {
  std::string raw;
  HttpResponse resp;
  const std::size_t head_end = read_head(fd, raw);
  if (head_end == std::string::npos) {
    ::close(fd);
    return;
  }
  HttpRequest req;
  std::string parse_error;
  bool ok = parse_http_request(raw.substr(0, head_end + 4), req,
                               &parse_error);
  std::size_t content_length = 0;
  if (ok) {
    const auto it = req.headers.find("content-length");
    if (it != req.headers.end()) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(it->second.c_str(), &end, 10);
      if (end == it->second.c_str() || *end != '\0') {
        ok = false;
        parse_error = "bad Content-Length";
      } else if (n > kMaxBodyBytes) {
        resp.status = 413;
        resp.body = R"({"error":"request body too large"})";
        send_all(fd, render_http_response(resp));
        ::close(fd);
        return;
      } else {
        content_length = static_cast<std::size_t>(n);
      }
    }
  }
  if (!ok) {
    resp.status = 400;
    resp.body = "{\"error\":\"" + JsonWriter::escape(parse_error) + "\"}";
    send_all(fd, render_http_response(resp));
    ::close(fd);
    return;
  }
  std::string body = raw.substr(head_end + 4);
  if (body.size() < content_length &&
      !read_exact(fd, body, content_length)) {
    ::close(fd);
    return;
  }
  req.body = body.substr(0, content_length);
  try {
    handler_(req, resp);
  } catch (const std::exception& e) {
    resp = HttpResponse{};
    resp.status = 500;
    resp.body = "{\"error\":\"" + JsonWriter::escape(e.what()) + "\"}";
  }
  send_all(fd, render_http_response(resp));
  ::close(fd);
}

}  // namespace qlec::serve
