// Blocking HTTP/1.1 client for talking to qlec_serve: one request per
// connection, mirroring the server's "Connection: close" framing. Used by
// qlec_submit, the serve_load bench, and the serve tests; small enough to
// need no third-party HTTP stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace qlec::serve {

struct ClientResponse {
  int status = 0;
  std::string body;
};

/// "http://127.0.0.1:8423/some/path" -> host/port/path ("/" when absent).
/// Only plain http with an explicit IPv4 host is accepted (the daemon is
/// loopback-oriented); returns false otherwise.
bool parse_http_url(const std::string& url, std::string& host,
                    std::uint16_t& port, std::string& path);

/// One blocking request. Returns nullopt and sets `error` on transport
/// failure (connect/send/recv); HTTP-level failures come back as a normal
/// ClientResponse with its status.
std::optional<ClientResponse> http_request(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, const std::string& body = "",
    std::string* error = nullptr);

}  // namespace qlec::serve
