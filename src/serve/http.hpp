// Minimal blocking HTTP/1.1 endpoint for qlec_serve (DESIGN.md §13). Scope
// is deliberately tiny: loopback-oriented TCP, one request per connection
// ("Connection: close"), Content-Length bodies only — enough for scenario
// JSON in / manifest JSON out, with zero external dependencies. The parse
// and render halves are exposed as pure functions so tests cover them
// without sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/thread_pool.hpp"

namespace qlec::serve {

struct HttpRequest {
  std::string method;  ///< upper-case ("GET", "POST", ...)
  std::string path;    ///< target without the query string ("/v1/runs")
  std::map<std::string, std::string> query;    ///< parsed query parameters
  std::map<std::string, std::string> headers;  ///< names lower-cased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// The server's request callback. Runs on a worker thread; must be
/// thread-safe. Throwing maps to a 500 with the exception text.
using HttpHandler = std::function<void(const HttpRequest&, HttpResponse&)>;

/// Reason phrase for the handful of statuses this service emits.
const char* http_status_text(int status) noexcept;

/// "a=1&b=two" -> {{"a","1"},{"b","two"}}. Empty segments are skipped; no
/// percent-decoding (the API's parameters are plain tokens).
std::map<std::string, std::string> parse_query(const std::string& text);

/// Parses one complete request (head + body). Returns false and sets
/// `error` on malformed framing. Exposed for tests.
bool parse_http_request(const std::string& raw, HttpRequest& out,
                        std::string* error = nullptr);

/// Serializes status line + headers (Content-Type/Length, close) + body.
std::string render_http_response(const HttpResponse& r);

/// Listens on host:port and dispatches each connection to a small worker
/// pool. `port == 0` binds an ephemeral port (read it back via port()).
class HttpServer {
 public:
  /// Binds + listens + starts accepting. Throws std::runtime_error when the
  /// socket cannot be bound.
  HttpServer(std::string host, std::uint16_t port, HttpHandler handler,
             std::size_t workers = 0);
  ~HttpServer();  ///< stop()s

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  const std::string& host() const noexcept { return host_; }
  /// The bound port (the actual one when constructed with 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Closes the listener, drains in-flight connections, joins. Idempotent.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  std::string host_;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  int listen_fd_ = -1;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  bool stopped_ = false;
};

}  // namespace qlec::serve
