#include "serve/service.hpp"

#include <thread>

#include "config/runner.hpp"
#include "config/schema.hpp"
#include "config/sweep.hpp"
#include "config/version.hpp"
#include "obs/telemetry.hpp"

namespace qlec::serve {
namespace {

using config::ConfigError;

void reply_json(HttpResponse& resp, int status, const std::string& body) {
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = body;
}

void reply_error(HttpResponse& resp, int status, const std::string& message,
                 const std::string& path = "") {
  JsonWriter w;
  w.begin_object();
  w.key("error"); w.value(message);
  if (!path.empty()) {
    w.key("path");
    w.value(path);
  }
  w.end_object();
  reply_json(resp, status, w.str());
}

/// Respools per-job telemetry file outputs into the daemon's spool
/// directory, named by the job key so concurrent jobs never share a sink
/// (OBSERVABILITY.md). Key-neutral by construction: job keys exclude the
/// telemetry block.
void spool_telemetry(ExperimentConfig& cfg, const std::string& dir,
                     const std::string& key) {
  obs::TelemetryOptions& t = cfg.sim.telemetry;
  if (!t.enabled || dir.empty()) return;
  if (t.sink == obs::TelemetryOptions::Sink::kFile) {
    t.events_path = dir + "/" + key + ".events.jsonl";
  }
  if (!t.trace_path.empty()) t.trace_path = dir + "/" + key + ".trace.json";
  if (!t.metrics_path.empty())
    t.metrics_path = dir + "/" + key + ".metrics.json";
}

struct JobCounts {
  std::size_t queued = 0, running = 0, done = 0, cancelled = 0, failed = 0;
  std::size_t cached = 0;
  const char* aggregate(std::size_t total) const noexcept {
    if (failed > 0) return "failed";
    if (cancelled > 0) return "cancelled";
    if (done == total) return "done";
    if (running > 0 || done > 0) return "running";
    return "queued";
  }
};

JobCounts count_jobs(const std::vector<config::JobHandle>& jobs) {
  JobCounts c;
  for (const config::JobHandle& h : jobs) {
    switch (h.state()) {
      case config::JobState::kQueued: ++c.queued; break;
      case config::JobState::kRunning: ++c.running; break;
      case config::JobState::kDone:
        ++c.done;
        if (h.from_cache()) ++c.cached;
        break;
      case config::JobState::kCancelled: ++c.cancelled; break;
      case config::JobState::kFailed: ++c.failed; break;
    }
  }
  return c;
}

}  // namespace

JobService::JobService(ServiceOptions opts)
    : opts_(std::move(opts)), store_(opts_.cache_dir) {
  config::JobRunnerOptions ro;
  ro.workers = opts_.workers == 0
                   ? std::max(1u, std::thread::hardware_concurrency())
                   : opts_.workers;
  ro.store = &store_;
  runner_ = std::make_unique<config::JobRunner>(ro);
}

std::shared_ptr<JobService::Run> JobService::find_run(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(id);
  return it == runs_.end() ? nullptr : it->second;
}

void JobService::handle(const HttpRequest& req, HttpResponse& resp) {
  if (req.path == "/healthz") {
    if (req.method != "GET") return reply_error(resp, 405, "GET only");
    JsonWriter w;
    w.begin_object();
    w.key("ok"); w.value(true);
    w.key("service"); w.value("qlec_serve");
    w.key("schema_version"); w.value(config::kManifestSchemaVersion);
    w.key("code_version"); w.value(config::kCodeVersion);
    w.end_object();
    return reply_json(resp, 200, w.str());
  }
  if (req.path == "/stats") {
    if (req.method != "GET") return reply_error(resp, 405, "GET only");
    return stats(resp);
  }
  if (req.path == "/v1/runs") {
    if (req.method != "POST") return reply_error(resp, 405, "POST only");
    return post_runs(req, resp);
  }
  const std::string prefix = "/v1/runs/";
  if (req.path.rfind(prefix, 0) == 0) {
    const std::string rest = req.path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    const std::string id = rest.substr(0, slash);
    const std::string sub =
        slash == std::string::npos ? "" : rest.substr(slash + 1);
    const std::shared_ptr<Run> run = find_run(id);
    if (run == nullptr)
      return reply_error(resp, 404, "unknown run \"" + id + "\"");
    if (sub.empty()) {
      if (req.method != "GET") return reply_error(resp, 405, "GET only");
      return run_status(*run, resp);
    }
    if (sub == "manifest") {
      if (req.method != "GET") return reply_error(resp, 405, "GET only");
      return run_manifest(*run, resp);
    }
    if (sub == "cancel") {
      if (req.method != "POST") return reply_error(resp, 405, "POST only");
      return run_cancel(*run, resp);
    }
    return reply_error(resp, 404, "unknown endpoint " + req.path);
  }
  reply_error(resp, 404, "unknown endpoint " + req.path);
}

void JobService::post_runs(const HttpRequest& req, HttpResponse& resp) {
  std::vector<config::SweepCell> cells;
  config::ScenarioFile scenario;
  try {
    scenario = config::parse_scenario(req.body);
    cells = config::expand_grid(scenario);
  } catch (const ConfigError& e) {
    return reply_error(resp, 400, e.what(), e.path());
  }
  if (cells.size() > opts_.max_cells)
    return reply_error(resp, 400,
                       "grid has " + std::to_string(cells.size()) +
                           " cells; this daemon accepts at most " +
                           std::to_string(opts_.max_cells));

  int priority = 0;
  if (const auto it = req.query.find("priority"); it != req.query.end())
    priority = std::atoi(it->second.c_str());
  const bool wait = [&] {
    const auto it = req.query.find("wait");
    return it != req.query.end() && it->second != "0";
  }();

  auto run = std::make_shared<Run>();
  run->name = scenario.name;
  run->description = scenario.description;
  run->jobs.reserve(cells.size());
  for (config::JobSpec& spec : config::plan(cells)) {
    spool_telemetry(spec.config, opts_.telemetry_dir, spec.key);
    run->jobs.push_back(runner_->submit(spec, priority));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    run->id = "r" + std::to_string(next_run_++);
    runs_[run->id] = run;
  }
  if (wait) return run_manifest(*run, resp);
  run_status(*run, resp);
  resp.status = 202;
}

void JobService::run_status(const Run& run, HttpResponse& resp) {
  const JobCounts c = count_jobs(run.jobs);
  JsonWriter w;
  w.begin_object();
  w.key("run_id"); w.value(run.id);
  w.key("name"); w.value(run.name);
  w.key("state"); w.value(c.aggregate(run.jobs.size()));
  w.key("cells"); w.value(run.jobs.size());
  w.key("queued"); w.value(c.queued);
  w.key("running"); w.value(c.running);
  w.key("done"); w.value(c.done);
  w.key("cached"); w.value(c.cached);
  w.key("cancelled"); w.value(c.cancelled);
  w.key("failed"); w.value(c.failed);
  w.key("jobs");
  w.begin_array();
  for (const config::JobHandle& h : run.jobs) {
    w.begin_object();
    w.key("key"); w.value(h.key());
    w.key("label"); w.value(h.label());
    w.key("state"); w.value(config::job_state_name(h.state()));
    w.key("cached"); w.value(h.from_cache());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  reply_json(resp, 200, w.str());
}

void JobService::run_manifest(const Run& run, HttpResponse& resp) {
  config::RunManifest m;
  m.name = run.name;
  m.description = run.description;
  m.cells.reserve(run.jobs.size());
  try {
    for (const config::JobHandle& h : run.jobs) m.cells.push_back(h.await());
  } catch (const config::JobCancelled&) {
    return reply_error(resp, 409,
                       "run " + run.id + " was cancelled; no manifest");
  } catch (const std::exception& e) {
    return reply_error(resp, 409,
                       "run " + run.id + " degraded: " + e.what());
  }
  reply_json(resp, 200, config::manifest_to_json(m));
}

void JobService::run_cancel(const Run& run, HttpResponse& resp) {
  std::size_t cancelled = 0;
  for (config::JobHandle h : run.jobs)
    if (h.cancel()) ++cancelled;
  JsonWriter w;
  w.begin_object();
  w.key("run_id"); w.value(run.id);
  w.key("cancelled"); w.value(cancelled);
  w.end_object();
  reply_json(resp, 200, w.str());
}

void JobService::stats(HttpResponse& resp) {
  const config::JobRunner::Stats rs = runner_->stats();
  const config::ResultStore::Stats ss = store_.stats();
  std::size_t runs;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    runs = runs_.size();
  }
  JsonWriter w;
  w.begin_object();
  w.key("runs"); w.value(runs);
  w.key("scheduler");
  w.begin_object();
  w.key("submitted"); w.value(rs.submitted);
  w.key("simulated"); w.value(rs.simulated);
  w.key("cache_hits"); w.value(rs.cache_hits);
  w.key("coalesced"); w.value(rs.coalesced);
  w.key("cancelled"); w.value(rs.cancelled);
  w.key("failed"); w.value(rs.failed);
  w.end_object();
  w.key("store");
  w.begin_object();
  w.key("hits"); w.value(ss.hits);
  w.key("disk_hits"); w.value(ss.disk_hits);
  w.key("misses"); w.value(ss.misses);
  w.key("inserts"); w.value(ss.inserts);
  w.key("dir"); w.value(store_.dir());
  w.end_object();
  w.key("code_version"); w.value(config::kCodeVersion);
  w.end_object();
  reply_json(resp, 200, w.str());
}

}  // namespace qlec::serve
