// Convergence detection for iterative value updates. The paper's complexity
// result (Theorem 3) is O(kX) where X is "the number of updates Q-learning
// needs to converge"; this tracker measures that X.
#pragma once

#include <cstddef>

namespace qlec {

class ConvergenceTracker {
 public:
  /// Converged once `patience` consecutive recorded deltas are all below
  /// `tolerance`.
  explicit ConvergenceTracker(double tolerance = 1e-6,
                              std::size_t patience = 3) noexcept;

  /// Records the magnitude of one update; returns true when the
  /// convergence criterion is now satisfied.
  bool record(double delta) noexcept;

  bool converged() const noexcept;
  /// Total updates recorded so far — the X of Theorem 3.
  std::size_t updates() const noexcept { return updates_; }
  /// Updates recorded up to and including the one that first satisfied the
  /// criterion (== updates() if not converged yet).
  std::size_t updates_to_convergence() const noexcept;

  void reset() noexcept;

 private:
  double tol_;
  std::size_t patience_;
  std::size_t updates_ = 0;
  std::size_t quiet_streak_ = 0;
  std::size_t converged_at_ = 0;
  bool converged_ = false;
};

}  // namespace qlec
