// Exact dynamic-programming solver for finite MDPs. Used to validate the
// sample-based and model-based Q updates against ground truth (Bellman
// optimality, Eq. 13-15 of the paper) on small instances.
#pragma once

#include <cstddef>
#include <vector>

namespace qlec {

/// One successor branch of taking action a in state s.
struct MdpBranch {
  std::size_t next_state = 0;
  double probability = 0.0;
  double reward = 0.0;
};

/// Tabular MDP: transitions[s][a] lists the successor branches (their
/// probabilities should sum to 1 for valid (s, a) pairs; an empty list
/// marks the action unavailable in that state).
struct Mdp {
  std::size_t states = 0;
  std::size_t actions = 0;
  std::vector<std::vector<std::vector<MdpBranch>>> transitions;
  std::vector<bool> terminal;  ///< V(s) pinned to 0

  static Mdp make(std::size_t states, std::size_t actions);
  void add_transition(std::size_t s, std::size_t a, std::size_t s2,
                      double probability, double reward);
};

struct ValueIterationResult {
  std::vector<double> v;            ///< optimal state values
  std::vector<std::size_t> policy;  ///< greedy action per state
  int iterations = 0;
  double residual = 0.0;  ///< final max |Bellman update|
};

/// Standard value iteration to `tolerance` (sup-norm) or `max_iterations`.
ValueIterationResult value_iteration(const Mdp& mdp, double gamma,
                                     double tolerance = 1e-10,
                                     int max_iterations = 100000);

/// Q*(s, a) computed from a converged V (Bellman backup); the quantity the
/// paper's Eq. 15 approximates online.
double q_from_values(const Mdp& mdp, const std::vector<double>& v,
                     std::size_t s, std::size_t a, double gamma);

}  // namespace qlec
