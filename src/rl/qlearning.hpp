// Tabular Q-learning over a finite MDP.
//
// Two update styles are provided:
//  * TabularQLearner — classic sample-based off-policy update with an
//    epsilon-greedy behaviour policy (textbook Q-learning, Sutton & Barto);
//    used by tests and as a library-quality general solver.
//  * expected_q / TwoOutcomeTransition — the *model-based* one-step backup
//    the paper actually uses (Eq. 15): the agent knows/estimates transition
//    probabilities (from ACK statistics) and computes
//    Q*(s,a) = R_t + gamma * sum_s' P(s'|s,a) V*(s') directly instead of
//    sampling. QLEC's MDP has exactly two successors per action (delivery
//    succeeded -> h_j, failed -> stay at b_i), captured by
//    TwoOutcomeTransition.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "rl/convergence.hpp"
#include "rl/qtable.hpp"
#include "util/rng.hpp"

namespace qlec {

/// A (probability, reward, next-state-value) successor branch.
struct Branch {
  double probability = 0.0;
  double reward = 0.0;
  double next_value = 0.0;  // V*(s') estimate
};

/// Eq. 15 backup for an arbitrary successor set:
/// Q = sum_i p_i r_i + gamma * sum_i p_i v_i.
double expected_q(const std::vector<Branch>& branches, double gamma);

/// The QLEC special case: one action, two outcomes (success / stay-put).
struct TwoOutcomeTransition {
  double p_success = 1.0;     ///< P^{a_j}_{b_i h_j}
  double reward_success = 0;  ///< R^{a_j}_{b_i h_j} (Eq. 17 / 19)
  double reward_failure = 0;  ///< R^{a_j}_{b_i b_i} (Eq. 20)
  double v_success = 0;       ///< V*(h_j)
  double v_failure = 0;       ///< V*(b_i)

  /// Q = R_t + gamma (p V(h_j) + (1-p) V(b_i)) with
  /// R_t = p r_s + (1-p) r_f   (Eq. 16 substituted into Eq. 15).
  double q_value(double gamma) const noexcept;
};

/// Classic sample-based tabular Q-learning.
class TabularQLearner {
 public:
  struct Config {
    double gamma = 0.95;
    double alpha = 0.1;
    double epsilon = 0.1;     ///< behaviour-policy exploration rate
    double initial_q = 0.0;
  };

  TabularQLearner(std::size_t states, std::size_t actions, Config cfg);

  /// Epsilon-greedy action selection.
  std::size_t select_action(std::size_t state, Rng& rng) const;
  /// One-step update from an observed transition; returns |Q delta|.
  double update(std::size_t s, std::size_t a, double reward, std::size_t s2,
                bool terminal);

  const QTable& table() const noexcept { return q_; }
  QTable& table() noexcept { return q_; }
  const Config& config() const noexcept { return cfg_; }
  const ConvergenceTracker& convergence() const noexcept { return tracker_; }

  /// Optional telemetry binding (nullptrs detach): `updates` counts every
  /// update() call, `last_delta` tracks the most recent |Q delta|. Purely
  /// observational; the caller owns both instruments (obs::MetricsRegistry
  /// references stay valid for the registry's lifetime).
  void bind_metrics(obs::Counter* updates, obs::Gauge* last_delta) noexcept {
    updates_metric_ = updates;
    delta_metric_ = last_delta;
  }

 private:
  Config cfg_;
  QTable q_;
  ConvergenceTracker tracker_{1e-6, 16};
  obs::Counter* updates_metric_ = nullptr;
  obs::Gauge* delta_metric_ = nullptr;
};

/// Environment callback signature for `train_episodes`: given (state,
/// action, rng) produce (reward, next_state, terminal).
struct StepResult {
  double reward = 0.0;
  std::size_t next_state = 0;
  bool terminal = false;
};
using StepFn =
    std::function<StepResult(std::size_t state, std::size_t action, Rng&)>;

/// Runs `episodes` episodes of at most `max_steps` each, starting each from
/// `start_state`. Returns the total number of updates performed.
std::size_t train_episodes(TabularQLearner& learner, const StepFn& step,
                           std::size_t start_state, std::size_t episodes,
                           std::size_t max_steps, Rng& rng);

}  // namespace qlec
