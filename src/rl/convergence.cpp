#include "rl/convergence.hpp"

#include <cmath>

namespace qlec {

ConvergenceTracker::ConvergenceTracker(double tolerance,
                                       std::size_t patience) noexcept
    : tol_(tolerance), patience_(patience == 0 ? 1 : patience) {}

bool ConvergenceTracker::record(double delta) noexcept {
  ++updates_;
  if (std::fabs(delta) < tol_) {
    ++quiet_streak_;
    if (!converged_ && quiet_streak_ >= patience_) {
      converged_ = true;
      converged_at_ = updates_;
    }
  } else {
    quiet_streak_ = 0;
  }
  return converged_;
}

bool ConvergenceTracker::converged() const noexcept { return converged_; }

std::size_t ConvergenceTracker::updates_to_convergence() const noexcept {
  return converged_ ? converged_at_ : updates_;
}

void ConvergenceTracker::reset() noexcept {
  updates_ = 0;
  quiet_streak_ = 0;
  converged_at_ = 0;
  converged_ = false;
}

}  // namespace qlec
