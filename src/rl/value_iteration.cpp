#include "rl/value_iteration.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qlec {

Mdp Mdp::make(std::size_t states, std::size_t actions) {
  Mdp m;
  m.states = states;
  m.actions = actions;
  m.transitions.assign(
      states, std::vector<std::vector<MdpBranch>>(actions));
  m.terminal.assign(states, false);
  return m;
}

void Mdp::add_transition(std::size_t s, std::size_t a, std::size_t s2,
                         double probability, double reward) {
  transitions.at(s).at(a).push_back(MdpBranch{s2, probability, reward});
}

double q_from_values(const Mdp& mdp, const std::vector<double>& v,
                     std::size_t s, std::size_t a, double gamma) {
  double q = 0.0;
  for (const MdpBranch& b : mdp.transitions[s][a]) {
    const double v_next = mdp.terminal[b.next_state] ? 0.0 : v[b.next_state];
    q += b.probability * (b.reward + gamma * v_next);
  }
  return q;
}

ValueIterationResult value_iteration(const Mdp& mdp, double gamma,
                                     double tolerance, int max_iterations) {
  ValueIterationResult result;
  result.v.assign(mdp.states, 0.0);
  result.policy.assign(mdp.states, 0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    double max_delta = 0.0;
    for (std::size_t s = 0; s < mdp.states; ++s) {
      if (mdp.terminal[s]) continue;
      double best = -std::numeric_limits<double>::infinity();
      std::size_t best_a = 0;
      bool any = false;
      for (std::size_t a = 0; a < mdp.actions; ++a) {
        if (mdp.transitions[s][a].empty()) continue;
        const double q = q_from_values(mdp, result.v, s, a, gamma);
        if (q > best) {
          best = q;
          best_a = a;
        }
        any = true;
      }
      if (!any) continue;  // absorbing non-terminal state
      max_delta = std::max(max_delta, std::fabs(best - result.v[s]));
      result.v[s] = best;
      result.policy[s] = best_a;
    }
    result.residual = max_delta;
    if (max_delta < tolerance) break;
  }
  return result;
}

}  // namespace qlec
