#include "rl/qtable.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qlec {

QTable::QTable(std::size_t states, std::size_t actions, double init)
    : states_(states), actions_(actions), q_(states * actions, init) {}

std::size_t QTable::index(std::size_t s, std::size_t a) const {
  if (s >= states_ || a >= actions_)
    throw std::out_of_range("QTable index out of range");
  return s * actions_ + a;
}

double QTable::get(std::size_t s, std::size_t a) const {
  return q_[index(s, a)];
}

void QTable::set(std::size_t s, std::size_t a, double q) {
  q_[index(s, a)] = q;
}

double QTable::blend(std::size_t s, std::size_t a, double target,
                     double alpha) {
  double& q = q_[index(s, a)];
  const double delta = alpha * (target - q);
  q += delta;
  return std::fabs(delta);
}

std::size_t QTable::best_action(std::size_t s) const {
  if (actions_ == 0) throw std::logic_error("QTable has no actions");
  std::size_t best = 0;
  double best_q = get(s, 0);
  for (std::size_t a = 1; a < actions_; ++a) {
    const double q = get(s, a);
    if (q > best_q) {
      best_q = q;
      best = a;
    }
  }
  return best;
}

double QTable::max_q(std::size_t s) const {
  if (actions_ == 0) return 0.0;
  double best = get(s, 0);
  for (std::size_t a = 1; a < actions_; ++a) best = std::max(best, get(s, a));
  return best;
}

void QTable::fill(double value) {
  std::fill(q_.begin(), q_.end(), value);
}

}  // namespace qlec
