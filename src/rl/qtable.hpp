// Dense tabular Q-value storage: |S| x |A| matrix of doubles.
#pragma once

#include <cstddef>
#include <vector>

namespace qlec {

class QTable {
 public:
  QTable() = default;
  QTable(std::size_t states, std::size_t actions, double init = 0.0);

  std::size_t states() const noexcept { return states_; }
  std::size_t actions() const noexcept { return actions_; }

  double get(std::size_t s, std::size_t a) const;
  void set(std::size_t s, std::size_t a, double q);
  /// In-place soft update: Q += alpha * (target - Q). Returns |delta|.
  double blend(std::size_t s, std::size_t a, double target, double alpha);

  /// Greedy action for state s (ties break to the lowest index). Requires
  /// actions() > 0.
  std::size_t best_action(std::size_t s) const;
  /// max_a Q(s, a); 0 for an empty action set.
  double max_q(std::size_t s) const;

  /// Resets every entry to `value`.
  void fill(double value);

 private:
  std::size_t index(std::size_t s, std::size_t a) const;

  std::size_t states_ = 0;
  std::size_t actions_ = 0;
  std::vector<double> q_;
};

}  // namespace qlec
