#include "rl/qlearning.hpp"

namespace qlec {

double expected_q(const std::vector<Branch>& branches, double gamma) {
  double r = 0.0;
  double v = 0.0;
  for (const Branch& b : branches) {
    r += b.probability * b.reward;
    v += b.probability * b.next_value;
  }
  return r + gamma * v;
}

double TwoOutcomeTransition::q_value(double gamma) const noexcept {
  const double p = p_success;
  const double rt = p * reward_success + (1.0 - p) * reward_failure;
  return rt + gamma * (p * v_success + (1.0 - p) * v_failure);
}

TabularQLearner::TabularQLearner(std::size_t states, std::size_t actions,
                                 Config cfg)
    : cfg_(cfg), q_(states, actions, cfg.initial_q) {}

std::size_t TabularQLearner::select_action(std::size_t state,
                                           Rng& rng) const {
  if (rng.bernoulli(cfg_.epsilon))
    return rng.uniform_int(static_cast<std::uint64_t>(q_.actions()));
  return q_.best_action(state);
}

double TabularQLearner::update(std::size_t s, std::size_t a, double reward,
                               std::size_t s2, bool terminal) {
  const double bootstrap = terminal ? 0.0 : cfg_.gamma * q_.max_q(s2);
  const double delta = q_.blend(s, a, reward + bootstrap, cfg_.alpha);
  tracker_.record(delta);
  if (updates_metric_ != nullptr) updates_metric_->inc();
  if (delta_metric_ != nullptr) delta_metric_->set(delta);
  return delta;
}

std::size_t train_episodes(TabularQLearner& learner, const StepFn& step,
                           std::size_t start_state, std::size_t episodes,
                           std::size_t max_steps, Rng& rng) {
  std::size_t updates = 0;
  for (std::size_t e = 0; e < episodes; ++e) {
    std::size_t s = start_state;
    for (std::size_t t = 0; t < max_steps; ++t) {
      const std::size_t a = learner.select_action(s, rng);
      const StepResult res = step(s, a, rng);
      learner.update(s, a, res.reward, res.next_state, res.terminal);
      ++updates;
      if (res.terminal) break;
      s = res.next_state;
    }
  }
  return updates;
}

}  // namespace qlec
