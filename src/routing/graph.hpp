// Connectivity graph over a deployed network: nodes are sensors plus the
// BS; edges connect pairs within communication range, weighted by the
// transmission energy of the first-order radio model. Substrate for the
// QELAR-style multi-hop Q-routing module and its Dijkstra ground truth.
#pragma once

#include <cstddef>
#include <vector>

#include "energy/radio_model.hpp"
#include "net/network.hpp"

namespace qlec {

struct Edge {
  int to = 0;          ///< node id or kBaseStationId
  double distance = 0; ///< meters
  double energy = 0;   ///< J to push one reference packet across
};

class ConnectivityGraph {
 public:
  /// Builds the graph over all nodes of `net` within `range` of each other
  /// (plus BS edges for nodes within `range` of the sink). Edge energy is
  /// tx_energy(bits, d).
  ConnectivityGraph(const Network& net, double range, double bits,
                    const RadioModel& radio);

  std::size_t nodes() const noexcept { return adjacency_.size(); }
  /// Outgoing edges of node `id` (sensors only; the BS is a sink).
  const std::vector<Edge>& neighbours(int id) const;
  /// True if node `id` has a direct BS edge.
  bool reaches_bs(int id) const;
  double range() const noexcept { return range_; }

 private:
  double range_;
  std::vector<std::vector<Edge>> adjacency_;
};

/// Dijkstra over edge energies from every node to the BS. Returns, per
/// node, the minimum total energy to reach the BS and the first hop of an
/// optimal path (kBaseStationId for a direct hop; -2 when unreachable).
struct ShortestPaths {
  std::vector<double> cost;     ///< J; +inf when unreachable
  std::vector<int> first_hop;   ///< next node on an optimal path
  static constexpr int kUnreachable = -2;
};
ShortestPaths min_energy_paths(const ConnectivityGraph& graph);

}  // namespace qlec
