#include "routing/graph.hpp"

#include <limits>
#include <queue>

#include "geom/spatial_grid.hpp"

namespace qlec {

ConnectivityGraph::ConnectivityGraph(const Network& net, double range,
                                     double bits, const RadioModel& radio)
    : range_(range > 0.0 ? range : 1.0),
      adjacency_(net.size()) {
  const SpatialGrid grid(net.positions(), range_);
  for (const SensorNode& n : net.nodes()) {
    auto& edges = adjacency_[static_cast<std::size_t>(n.id)];
    for (const std::size_t j :
         grid.neighbours_of(static_cast<std::size_t>(n.id), range_)) {
      const int to = static_cast<int>(j);
      const double d = net.dist(n.id, to);
      edges.push_back(Edge{to, d, radio.tx_energy(bits, d)});
    }
    const double d_bs = net.dist_to_bs(n.id);
    if (d_bs <= range_) {
      edges.push_back(Edge{kBaseStationId, d_bs,
                           radio.tx_energy(bits, d_bs)});
    }
  }
}

const std::vector<Edge>& ConnectivityGraph::neighbours(int id) const {
  return adjacency_.at(static_cast<std::size_t>(id));
}

bool ConnectivityGraph::reaches_bs(int id) const {
  for (const Edge& e : neighbours(id))
    if (e.to == kBaseStationId) return true;
  return false;
}

ShortestPaths min_energy_paths(const ConnectivityGraph& graph) {
  // Dijkstra from the BS backward; edges are symmetric in distance so the
  // reverse graph has the same weights.
  const std::size_t n = graph.nodes();
  ShortestPaths sp;
  sp.cost.assign(n, std::numeric_limits<double>::infinity());
  sp.first_hop.assign(n, ShortestPaths::kUnreachable);

  using Item = std::pair<double, int>;  // (cost-to-BS, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;

  // Seed: nodes with a direct BS edge.
  for (std::size_t i = 0; i < n; ++i) {
    for (const Edge& e : graph.neighbours(static_cast<int>(i))) {
      if (e.to != kBaseStationId) continue;
      if (e.energy < sp.cost[i]) {
        sp.cost[i] = e.energy;
        sp.first_hop[i] = kBaseStationId;
        heap.push({e.energy, static_cast<int>(i)});
      }
    }
  }

  while (!heap.empty()) {
    const auto [cost, u] = heap.top();
    heap.pop();
    if (cost > sp.cost[static_cast<std::size_t>(u)]) continue;  // stale
    for (const Edge& e : graph.neighbours(u)) {
      if (e.to == kBaseStationId) continue;
      const auto v = static_cast<std::size_t>(e.to);
      const double through = cost + e.energy;
      if (through < sp.cost[v]) {
        sp.cost[v] = through;
        sp.first_hop[v] = u;
        heap.push({through, e.to});
      }
    }
  }
  return sp;
}

}  // namespace qlec
