// QELAR-style multi-hop Q-routing (Hu & Fei, TMC 2010 — the paper's [6],
// and the direct ancestor of QLEC's reward design). Every node learns a
// value V and routes packets hop by hop to the neighbor maximizing the
// model-based Q, with rewards combining a constant transmission punishment,
// residual energies of sender and candidate, and the link's energy cost —
// exactly the structure QLEC reuses for cluster choice (Eq. 17-20).
//
// This module is a standalone routing substrate on the ConnectivityGraph
// (no clustering); tests validate it against Dijkstra's minimum-energy
// paths and the bench measures learning-curve stretch.
#pragma once

#include <cstddef>
#include <vector>

#include "net/link.hpp"
#include "obs/metrics.hpp"
#include "routing/graph.hpp"
#include "util/rng.hpp"

namespace qlec {

struct QelarParams {
  double gamma = 0.95;
  double g = 0.1;      ///< constant per-transmission punishment
  double alpha1 = 0.05;
  double alpha2 = 1.05;
  /// Link success probability per hop when no channel model is supplied.
  double p_success = 1.0;
  /// Optional channel model: per-edge success probability from distance
  /// (model-based planning with a known channel). Not owned; must outlive
  /// the router. nullptr falls back to the constant p_success.
  const struct LinkModel* link = nullptr;
  double epsilon = 0.1;  ///< exploration during training
  /// Normalization scale for edge energies (<= 0: max edge energy in the
  /// graph), mirroring QLEC's y normalization.
  double y_scale = -1.0;
};

class QelarRouter {
 public:
  QelarRouter(const ConnectivityGraph& graph, const Network& net,
              QelarParams params);

  /// Q(u, via edge e) under current values.
  double q_value(int u, const Edge& e) const;
  /// Greedy next hop from u (kBaseStationId allowed); -2 when u has no
  /// neighbours.
  int best_hop(int u) const;

  /// One training episode: route a virtual packet from `source` greedily
  /// (epsilon-exploring), updating V at every visited node; stops at the
  /// BS or after `max_hops`. Returns hops taken (negative if it failed to
  /// reach the BS).
  int train_episode(int source, std::size_t max_hops, Rng& rng);

  /// Trains round-robin from every node until the max V change over an
  /// entire sweep drops below `tol` (or `max_sweeps`). Returns sweeps run.
  int train_to_convergence(double tol, int max_sweeps, Rng& rng);

  /// Greedy route from `source` to the BS under the learned values.
  /// Empty when no progress is possible. The path excludes `source` and
  /// ends with kBaseStationId on success.
  std::vector<int> route(int source, std::size_t max_hops = 256) const;

  /// Total edge energy of a route produced by `route()` (returns +inf for
  /// paths that do not end at the BS).
  double route_energy(int source, const std::vector<int>& path) const;

  double v(int node) const;
  std::size_t updates() const noexcept { return updates_; }

  /// Optional telemetry binding (nullptr detaches): bumps the counter once
  /// per V update. Purely observational; the counter must outlive the
  /// router (obs::MetricsRegistry references do).
  void bind_update_counter(obs::Counter* counter) noexcept {
    updates_metric_ = counter;
  }

 private:
  double reward(int u, const Edge& e) const;

  const ConnectivityGraph& graph_;
  const Network& net_;
  QelarParams params_;
  double y_scale_ = 1.0;
  std::vector<double> v_;
  std::size_t updates_ = 0;
  obs::Counter* updates_metric_ = nullptr;
};

}  // namespace qlec
