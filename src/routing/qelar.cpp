#include "routing/qelar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qlec {

QelarRouter::QelarRouter(const ConnectivityGraph& graph, const Network& net,
                         QelarParams params)
    : graph_(graph), net_(net), params_(params), v_(net.size(), 0.0) {
  if (params_.y_scale > 0.0) {
    y_scale_ = params_.y_scale;
  } else {
    double max_energy = 0.0;
    for (std::size_t i = 0; i < graph_.nodes(); ++i)
      for (const Edge& e : graph_.neighbours(static_cast<int>(i)))
        max_energy = std::max(max_energy, e.energy);
    y_scale_ = max_energy > 0.0 ? max_energy : 1.0;
  }
}

double QelarRouter::reward(int u, const Edge& e) const {
  const auto x = [this](int id) {
    if (id == kBaseStationId) return 1.0;
    const Battery& b = net_.node(id).battery;
    return b.initial() > 0.0 ? b.residual() / b.initial() : 0.0;
  };
  return -params_.g + params_.alpha1 * (x(u) + x(e.to)) -
         params_.alpha2 * e.energy / y_scale_;
}

double QelarRouter::v(int node) const {
  if (node == kBaseStationId) return 0.0;
  return v_.at(static_cast<std::size_t>(node));
}

double QelarRouter::q_value(int u, const Edge& e) const {
  const double p = params_.link != nullptr
                       ? params_.link->success_probability(e.distance)
                       : params_.p_success;
  return reward(u, e) + params_.gamma * (p * v(e.to) + (1.0 - p) * v(u));
}

int QelarRouter::best_hop(int u) const {
  const auto& edges = graph_.neighbours(u);
  if (edges.empty()) return -2;
  const Edge* best = &edges.front();
  double best_q = q_value(u, *best);
  for (const Edge& e : edges) {
    const double q = q_value(u, e);
    if (q > best_q) {
      best_q = q;
      best = &e;
    }
  }
  return best->to;
}

int QelarRouter::train_episode(int source, std::size_t max_hops, Rng& rng) {
  int u = source;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const auto& edges = graph_.neighbours(u);
    if (edges.empty()) return -static_cast<int>(hop) - 1;
    // Value backup: V(u) <- max_e Q(u, e).
    double best_q = -std::numeric_limits<double>::infinity();
    const Edge* best = nullptr;
    for (const Edge& e : edges) {
      const double q = q_value(u, e);
      if (q > best_q) {
        best_q = q;
        best = &e;
      }
    }
    v_[static_cast<std::size_t>(u)] = best_q;
    ++updates_;
    if (updates_metric_ != nullptr) updates_metric_->inc();

    const Edge* chosen = best;
    if (params_.epsilon > 0.0 && rng.bernoulli(params_.epsilon))
      chosen = &edges[rng.uniform_int(edges.size())];
    const double p_hop =
        params_.link != nullptr
            ? params_.link->success_probability(chosen->distance)
            : params_.p_success;
    if (!rng.bernoulli(p_hop)) continue;  // failed hop: stay
    if (chosen->to == kBaseStationId) return static_cast<int>(hop) + 1;
    u = chosen->to;
  }
  return -static_cast<int>(max_hops) - 1;
}

int QelarRouter::train_to_convergence(double tol, int max_sweeps, Rng& rng) {
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < net_.size(); ++i) {
      const double before = v_[i];
      train_episode(static_cast<int>(i), 4 * net_.size() + 16, rng);
      max_delta = std::max(max_delta, std::fabs(v_[i] - before));
    }
    if (max_delta < tol) return sweep + 1;
  }
  return max_sweeps;
}

std::vector<int> QelarRouter::route(int source, std::size_t max_hops) const {
  std::vector<int> path;
  int u = source;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const int next = best_hop(u);
    if (next == -2) break;
    path.push_back(next);
    if (next == kBaseStationId) break;
    u = next;
  }
  return path;
}

double QelarRouter::route_energy(int source,
                                 const std::vector<int>& path) const {
  if (path.empty() || path.back() != kBaseStationId)
    return std::numeric_limits<double>::infinity();
  double total = 0.0;
  int u = source;
  for (const int next : path) {
    const auto& edges = graph_.neighbours(u);
    const auto it = std::find_if(edges.begin(), edges.end(),
                                 [next](const Edge& e) {
                                   return e.to == next;
                                 });
    if (it == edges.end())
      return std::numeric_limits<double>::infinity();
    total += it->energy;
    if (next == kBaseStationId) break;
    u = next;
  }
  return total;
}

}  // namespace qlec
