#include "geom/region_shards.hpp"

#include <algorithm>
#include <cmath>

#include "geom/sectors.hpp"

namespace qlec {

std::vector<std::vector<std::uint32_t>> region_partition(
    const std::vector<Vec3>& pos, int shards) {
  const std::size_t n = pos.size();
  const int s = std::max(1, shards);
  std::vector<std::vector<std::uint32_t>> parts(static_cast<std::size_t>(s));
  if (n == 0) return parts;
  if (s == 1 || n <= static_cast<std::size_t>(s)) {
    // Trivial split: id order (one node per shard when n <= s).
    for (std::size_t i = 0; i < n; ++i)
      parts[i % static_cast<std::size_t>(s)].push_back(
          static_cast<std::uint32_t>(i));
    return parts;
  }

  // A coarse grid of roughly 8 cells per shard: fine enough that cutting
  // the cell sweep into equal runs yields compact regions, coarse enough
  // that the sort key is cheap. Resolution depends only on the shard count.
  const int cells = std::max(
      2, static_cast<int>(std::ceil(std::cbrt(8.0 * static_cast<double>(s)))));
  const SectorGrid grid(bounding_box(pos), cells, cells, cells);

  // key = (cell sweep index) << 32 | id: one u64 sort gives the spatial
  // order with a deterministic id tie-break baked in.
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = (grid.sector_of(pos[i]) << 32) | static_cast<std::uint64_t>(i);
  std::sort(keys.begin(), keys.end());

  // Cut the sweep into s contiguous runs of near-equal size; the first
  // n % s shards take one extra node.
  const std::size_t base = n / static_cast<std::size_t>(s);
  const std::size_t extra = n % static_cast<std::size_t>(s);
  std::size_t at = 0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(s); ++k) {
    const std::size_t len = base + (k < extra ? 1 : 0);
    parts[k].reserve(len);
    for (std::size_t i = 0; i < len; ++i, ++at)
      parts[k].push_back(static_cast<std::uint32_t>(keys[at] & 0xFFFFFFFFu));
  }
  return parts;
}

}  // namespace qlec
