#include "geom/region_shards.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qlec {

std::vector<std::vector<std::uint32_t>> region_partition(
    const std::vector<Vec3>& pos, int shards) {
  const std::size_t n = pos.size();
  const int s = std::max(1, shards);
  std::vector<std::vector<std::uint32_t>> parts(static_cast<std::size_t>(s));
  if (n == 0) return parts;
  if (s == 1 || n <= static_cast<std::size_t>(s)) {
    // Trivial split: id order (one node per shard when n <= s).
    for (std::size_t i = 0; i < n; ++i)
      parts[i % static_cast<std::size_t>(s)].push_back(
          static_cast<std::uint32_t>(i));
    return parts;
  }

  Vec3 lo = pos[0], hi = pos[0];
  for (const Vec3& p : pos) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  // A coarse grid of roughly 8 cells per shard: fine enough that cutting
  // the cell sweep into equal runs yields compact regions, coarse enough
  // that the sort key is cheap. Resolution depends only on the shard count.
  const int cells = std::max(
      2, static_cast<int>(std::ceil(std::cbrt(8.0 * static_cast<double>(s)))));
  const auto axis_cell = [cells](double v, double lo_a, double hi_a) {
    const double ext = hi_a - lo_a;
    if (!(ext > 0.0)) return std::uint64_t{0};  // degenerate axis (or NaN)
    const double t = (v - lo_a) / ext * static_cast<double>(cells);
    const auto c = static_cast<long long>(t);
    return static_cast<std::uint64_t>(
        std::clamp<long long>(c, 0, cells - 1));
  };

  // key = (cell sweep index) << 32 | id: one u64 sort gives the spatial
  // order with a deterministic id tie-break baked in.
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t cx = axis_cell(pos[i].x, lo.x, hi.x);
    const std::uint64_t cy = axis_cell(pos[i].y, lo.y, hi.y);
    const std::uint64_t cz = axis_cell(pos[i].z, lo.z, hi.z);
    const std::uint64_t cell =
        (cz * static_cast<std::uint64_t>(cells) + cy) *
            static_cast<std::uint64_t>(cells) +
        cx;
    keys[i] = (cell << 32) | static_cast<std::uint64_t>(i);
  }
  std::sort(keys.begin(), keys.end());

  // Cut the sweep into s contiguous runs of near-equal size; the first
  // n % s shards take one extra node.
  const std::size_t base = n / static_cast<std::size_t>(s);
  const std::size_t extra = n % static_cast<std::size_t>(s);
  std::size_t at = 0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(s); ++k) {
    const std::size_t len = base + (k < extra ? 1 : 0);
    parts[k].reserve(len);
    for (std::size_t i = 0; i < len; ++i, ++at)
      parts[k].push_back(static_cast<std::uint32_t>(keys[at] & 0xFFFFFFFFu));
  }
  return parts;
}

}  // namespace qlec
