#include "geom/spatial_grid.hpp"

#include <cmath>
#include <limits>

namespace qlec {

SpatialGrid::SpatialGrid(const std::vector<Vec3>& points, double cell_size)
    : points_(points), cell_(cell_size > 0.0 ? cell_size : 1.0) {
  for (std::size_t i = 0; i < points_.size(); ++i)
    cells_[key_for(points_[i])].push_back(i);
}

SpatialGrid::CellKey SpatialGrid::key_for(const Vec3& p) const {
  return {static_cast<long long>(std::floor(p.x / cell_)),
          static_cast<long long>(std::floor(p.y / cell_)),
          static_cast<long long>(std::floor(p.z / cell_))};
}

std::vector<std::size_t> SpatialGrid::query(const Vec3& center,
                                            double radius) const {
  std::vector<std::size_t> out;
  query_into(center, radius, out);
  return out;
}

void SpatialGrid::query_into(const Vec3& center, double radius,
                             std::vector<std::size_t>& out) const {
  out.clear();
  if (radius < 0.0) return;
  const double r2 = radius * radius;
  const CellKey lo = key_for(center - Vec3{radius, radius, radius});
  const CellKey hi = key_for(center + Vec3{radius, radius, radius});
  for (long long cx = lo.x; cx <= hi.x; ++cx) {
    for (long long cy = lo.y; cy <= hi.y; ++cy) {
      for (long long cz = lo.z; cz <= hi.z; ++cz) {
        const auto it = cells_.find(CellKey{cx, cy, cz});
        if (it == cells_.end()) continue;
        for (const std::size_t i : it->second)
          if (distance2(points_[i], center) <= r2) out.push_back(i);
      }
    }
  }
}

std::vector<std::size_t> SpatialGrid::neighbours_of(std::size_t i,
                                                    double radius) const {
  std::vector<std::size_t> out = query(points_.at(i), radius);
  std::erase(out, i);
  return out;
}

std::size_t SpatialGrid::nearest(const Vec3& center, std::size_t skip) const {
  // Expanding ring search: check cells at increasing Chebyshev distance and
  // stop once the best hit is provably closer than the next unexplored ring.
  if (points_.empty()) return npos;
  std::size_t best = npos;
  double best_d2 = std::numeric_limits<double>::infinity();
  const CellKey c0 = key_for(center);
  // Cap rings so degenerate inputs (all points in `skip`) still terminate.
  const long long max_ring = 2 + static_cast<long long>(
      std::cbrt(static_cast<double>(points_.size()))) +
      static_cast<long long>(64);
  for (long long ring = 0; ring <= max_ring; ++ring) {
    const double ring_min_dist = (static_cast<double>(ring) - 1.0) * cell_;
    if (best != npos && ring_min_dist > 0.0 &&
        best_d2 <= ring_min_dist * ring_min_dist)
      break;
    for (long long dx = -ring; dx <= ring; ++dx) {
      for (long long dy = -ring; dy <= ring; ++dy) {
        for (long long dz = -ring; dz <= ring; ++dz) {
          if (std::max({std::llabs(dx), std::llabs(dy), std::llabs(dz)}) !=
              ring)
            continue;  // only the shell of this ring
          const auto it =
              cells_.find(CellKey{c0.x + dx, c0.y + dy, c0.z + dz});
          if (it == cells_.end()) continue;
          for (const std::size_t i : it->second) {
            if (i == skip) continue;
            const double d2 = distance2(points_[i], center);
            if (d2 < best_d2) {
              best_d2 = d2;
              best = i;
            }
          }
        }
      }
    }
  }
  if (best == npos) {
    // Fallback linear scan (covers points outside the ring cap).
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (i == skip) continue;
      const double d2 = distance2(points_[i], center);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
  }
  return best;
}

}  // namespace qlec
