// Uniform hash grid over 3-D points for radius queries. The improved DEEC
// redundancy-reduction step (Algorithm 3) broadcasts HELLO messages to every
// node within the cluster coverage radius d_c; with a grid that query is
// O(neighbours) instead of O(N) per head.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace qlec {

class SpatialGrid {
 public:
  /// Builds an index over `points` with cubic cells of side `cell_size`
  /// (must be > 0). Points are referenced by index; the caller keeps the
  /// vector alive only for `query` result interpretation (positions are
  /// copied internally).
  SpatialGrid(const std::vector<Vec3>& points, double cell_size);

  /// Indices of all points within `radius` of `center` (inclusive).
  std::vector<std::size_t> query(const Vec3& center, double radius) const;
  /// Allocation-free variant: clears `out` and refills it (for hot loops
  /// issuing many queries with a reused buffer).
  void query_into(const Vec3& center, double radius,
                  std::vector<std::size_t>& out) const;

  /// Indices within `radius` of point `i`, excluding `i` itself.
  std::vector<std::size_t> neighbours_of(std::size_t i, double radius) const;

  /// Index of the nearest point to `center`, or npos when empty. `skip`
  /// (optional) is excluded from consideration.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t nearest(const Vec3& center, std::size_t skip = npos) const;

  std::size_t size() const noexcept { return points_.size(); }
  double cell_size() const noexcept { return cell_; }

 private:
  struct CellKey {
    long long x, y, z;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const noexcept {
      // Large-prime mix; coordinates are small so collisions are rare.
      std::size_t h = static_cast<std::size_t>(k.x) * 73856093ULL;
      h ^= static_cast<std::size_t>(k.y) * 19349663ULL;
      h ^= static_cast<std::size_t>(k.z) * 83492791ULL;
      return h;
    }
  };

  CellKey key_for(const Vec3& p) const;

  std::vector<Vec3> points_;
  double cell_;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellHash> cells_;
};

}  // namespace qlec
