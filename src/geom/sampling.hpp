// Point-set generators for deployment scenarios.
#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "util/rng.hpp"

namespace qlec {

/// `n` i.i.d. uniform points inside `box` (the paper's random deployment).
std::vector<Vec3> sample_uniform(std::size_t n, const Aabb& box, Rng& rng);

/// Points drawn around `centers` with isotropic Gaussian spread `sigma`,
/// clamped into `box`; center choice is weighted by `weights` (empty =>
/// uniform). Models clumpy real-world deployments (the Fig. 4 dataset).
std::vector<Vec3> sample_clustered(std::size_t n, const Aabb& box,
                                   const std::vector<Vec3>& centers,
                                   const std::vector<double>& weights,
                                   double sigma, Rng& rng);

/// Terrain-like deployment: uniform in x/y, z follows a smooth ridged
/// height-field h(x, y) plus jitter (the paper's mountainous motivation).
std::vector<Vec3> sample_terrain(std::size_t n, const Aabb& box,
                                 double ridge_amplitude, double jitter,
                                 Rng& rng);

/// Mean and mean-square distance from `points` to `target` — used for the
/// d_toBS approximation the paper takes from Bandyopadhyay & Coyle.
struct DistanceMoments {
  double mean = 0.0;
  double mean_sq = 0.0;
  double max = 0.0;
};
DistanceMoments distance_moments(const std::vector<Vec3>& points,
                                 const Vec3& target);

/// Centroid of a point set (origin for an empty set).
Vec3 centroid(const std::vector<Vec3>& points);

}  // namespace qlec
