// Spatial-grid region partitioning for the sharded round core, built on the
// shared `geom/sectors` SectorGrid (the same primitive the regional
// protocols Q-LEACH and REECH-ME sector the volume with): splits the
// node set into `shards` spatially-coherent regions so per-node phases that
// query the neighbourhood grid (HELLO coverage, nearest-head assignment)
// touch mostly shard-local cells. The partition is a function of the
// positions and the shard count alone — never of thread scheduling — and
// every consumer performs only disjoint per-node writes, so the partition
// can never influence simulation output (the shard-invariance suite proves
// digests are bit-identical at every shard count).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec3.hpp"

namespace qlec {

/// Partitions node ids [0, pos.size()) into `shards` disjoint regions of
/// near-equal size (difference at most one node). Nodes are ordered by a
/// coarse spatial-grid sweep of their positions (ties by id) and the order
/// is cut into contiguous runs, so each shard covers a compact region.
/// Degenerate geometries (all nodes coincident, zero extent) degrade to an
/// id-ordered split. shards <= 1 returns a single region with every node.
std::vector<std::vector<std::uint32_t>> region_partition(
    const std::vector<Vec3>& pos, int shards);

}  // namespace qlec
