#include "geom/sectors.hpp"

#include <algorithm>

namespace qlec {

const char* sector_mode_name(SectorMode m) noexcept {
  return m == SectorMode::kQuadrant ? "quadrant" : "octant";
}

SectorGrid::SectorGrid(const Aabb& box, int nx, int ny, int nz)
    : box_(box),
      nx_(std::max(1, nx)),
      ny_(std::max(1, ny)),
      nz_(std::max(1, nz)) {}

std::uint64_t SectorGrid::axis_cell(double v, double lo, double hi,
                                    int n) noexcept {
  const double ext = hi - lo;
  if (!(ext > 0.0)) return std::uint64_t{0};  // degenerate axis (or NaN)
  const double t = (v - lo) / ext * static_cast<double>(n);
  const auto c = static_cast<long long>(t);
  return static_cast<std::uint64_t>(std::clamp<long long>(c, 0, n - 1));
}

Aabb bounding_box(const std::vector<Vec3>& pos) {
  if (pos.empty()) return Aabb{{0, 0, 0}, {0, 0, 0}};
  Aabb box{pos[0], pos[0]};
  for (const Vec3& p : pos) box.expand(p);
  return box;
}

std::vector<std::vector<std::uint32_t>> sector_partition(
    const std::vector<Vec3>& pos, const SectorGrid& grid) {
  std::vector<std::vector<std::uint32_t>> parts(grid.count());
  for (std::size_t i = 0; i < pos.size(); ++i)
    parts[static_cast<std::size_t>(grid.sector_of(pos[i]))].push_back(
        static_cast<std::uint32_t>(i));
  return parts;
}

}  // namespace qlec
