#include "geom/sampling.hpp"

#include <cmath>
#include <numbers>

namespace qlec {

std::vector<Vec3> sample_uniform(std::size_t n, const Aabb& box, Rng& rng) {
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(box.lo.x, box.hi.x),
                   rng.uniform(box.lo.y, box.hi.y),
                   rng.uniform(box.lo.z, box.hi.z)});
  }
  return pts;
}

std::vector<Vec3> sample_clustered(std::size_t n, const Aabb& box,
                                   const std::vector<Vec3>& centers,
                                   const std::vector<double>& weights,
                                   double sigma, Rng& rng) {
  std::vector<Vec3> pts;
  pts.reserve(n);
  if (centers.empty()) return sample_uniform(n, box, rng);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = weights.empty()
                              ? rng.uniform_int(centers.size())
                              : rng.weighted_index(weights);
    const Vec3 p{centers[c].x + rng.normal(0.0, sigma),
                 centers[c].y + rng.normal(0.0, sigma),
                 centers[c].z + rng.normal(0.0, sigma)};
    pts.push_back(box.clamp(p));
  }
  return pts;
}

std::vector<Vec3> sample_terrain(std::size_t n, const Aabb& box,
                                 double ridge_amplitude, double jitter,
                                 Rng& rng) {
  std::vector<Vec3> pts;
  pts.reserve(n);
  const Vec3 e = box.extent();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(box.lo.x, box.hi.x);
    const double y = rng.uniform(box.lo.y, box.hi.y);
    const double u = (x - box.lo.x) / (e.x > 0 ? e.x : 1.0);
    const double v = (y - box.lo.y) / (e.y > 0 ? e.y : 1.0);
    // Two crossed sinusoidal ridges; cheap, smooth, and deterministic.
    const double h =
        0.5 * (std::sin(2.0 * std::numbers::pi * (2.0 * u + 0.3)) +
               std::cos(2.0 * std::numbers::pi * (1.5 * v - 0.1)));
    const double z = box.lo.z + 0.5 * e.z + ridge_amplitude * h +
                     rng.normal(0.0, jitter);
    pts.push_back(box.clamp({x, y, z}));
  }
  return pts;
}

DistanceMoments distance_moments(const std::vector<Vec3>& points,
                                 const Vec3& target) {
  DistanceMoments m;
  if (points.empty()) return m;
  for (const Vec3& p : points) {
    const double d2 = distance2(p, target);
    const double d = std::sqrt(d2);
    m.mean += d;
    m.mean_sq += d2;
    m.max = std::max(m.max, d);
  }
  const double n = static_cast<double>(points.size());
  m.mean /= n;
  m.mean_sq /= n;
  return m;
}

Vec3 centroid(const std::vector<Vec3>& points) {
  Vec3 c;
  if (points.empty()) return c;
  for (const Vec3& p : points) c += p;
  return c / static_cast<double>(points.size());
}

}  // namespace qlec
