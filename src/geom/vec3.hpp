// 3-D vector arithmetic. Nodes in QLEC live in an M x M x M cube (the
// paper's "high-dimensional space" is concretely 3-D).
#pragma once

#include <cmath>

namespace qlec {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double px, double py, double pz) : x(px), y(py), z(pz) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
constexpr double distance2(const Vec3& a, const Vec3& b) {
  return (a - b).norm2();
}

/// Linear interpolation a + t (b - a).
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

}  // namespace qlec
