// Axis-aligned sector partitioning of a deployment volume.
//
// Three consumers share this one code path:
//   - Q-LEACH (arXiv 1303.5240) statically sectors the volume into
//     quadrants (2x2x1) and runs a LEACH rotation inside each sector;
//   - REECH-ME (arXiv 1307.7052) elects the maximum-residual-energy node
//     of each region as its head;
//   - the sharded round core (`geom/region_shards`) sweeps a finer
//     cells^3 grid to cut the node set into spatially-coherent shards.
//
// A SectorGrid is a pure function of its box and per-axis cell counts —
// never of thread scheduling — so everything built on it stays
// deterministic and shard-count invariant. Degenerate axes (zero or
// negative extent, NaN bounds) collapse to a single cell on that axis'
// index computation, and points outside the box clamp to the boundary
// cells, so callers never need to special-case flat or empty geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace qlec {

/// How a regional protocol sectors the deployment volume: `kQuadrant`
/// splits x and y at the box center (2x2x1, the planar split of the
/// Q-LEACH paper); `kOctant` also splits z (2x2x2, the natural lift to
/// the 3-D deployments this repo targets).
enum class SectorMode { kQuadrant, kOctant };

/// Stable lowercase token for `m` ("quadrant" / "octant"); used by the
/// config schema and telemetry labels.
const char* sector_mode_name(SectorMode m) noexcept;

/// An axis-aligned grid of nx * ny * nz sectors over a box.
class SectorGrid {
 public:
  /// Empty unit grid (1x1x1 over a degenerate box at the origin).
  SectorGrid() = default;

  /// Grid of `nx * ny * nz` equal cells over `box`. Counts are clamped
  /// to >= 1; a degenerate axis (extent not > 0) always indexes to cell
  /// 0 regardless of its count.
  SectorGrid(const Aabb& box, int nx, int ny, int nz);

  /// The 2x2x1 planar quadrants of `box`.
  static SectorGrid quadrants(const Aabb& box) { return {box, 2, 2, 1}; }
  /// The 2x2x2 octants of `box`.
  static SectorGrid octants(const Aabb& box) { return {box, 2, 2, 2}; }
  static SectorGrid for_mode(const Aabb& box, SectorMode m) {
    return m == SectorMode::kQuadrant ? quadrants(box) : octants(box);
  }

  /// Total number of sectors (nx * ny * nz, always >= 1).
  std::size_t count() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(nz_);
  }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  const Aabb& box() const { return box_; }

  /// Sweep index of the sector containing `p`: x varies fastest, then y,
  /// then z — `(cz * ny + cy) * nx + cx`. Always in [0, count()).
  std::uint64_t sector_of(const Vec3& p) const {
    const std::uint64_t cx = axis_cell(p.x, box_.lo.x, box_.hi.x, nx_);
    const std::uint64_t cy = axis_cell(p.y, box_.lo.y, box_.hi.y, ny_);
    const std::uint64_t cz = axis_cell(p.z, box_.lo.z, box_.hi.z, nz_);
    return (cz * static_cast<std::uint64_t>(ny_) + cy) *
               static_cast<std::uint64_t>(nx_) +
           cx;
  }

 private:
  /// Cell index of `v` on one axis: 0 for a degenerate axis (extent not
  /// > 0, which also catches NaN bounds), otherwise
  /// `clamp(floor((v - lo) / ext * n), 0, n - 1)`. This is the exact
  /// arithmetic the pre-refactor region partitioner used, so shard
  /// assignments are bit-identical across the refactor.
  static std::uint64_t axis_cell(double v, double lo, double hi,
                                 int n) noexcept;

  Aabb box_{{0, 0, 0}, {0, 0, 0}};
  int nx_ = 1;
  int ny_ = 1;
  int nz_ = 1;
};

/// Tight bounding box of a position cloud. Empty input yields the
/// degenerate box at the origin.
Aabb bounding_box(const std::vector<Vec3>& pos);

/// Partitions ids [0, pos.size()) by sector: result[s] holds the ids
/// whose position falls in sector `s`, ascending (the canonical id order
/// every deterministic consumer iterates in). Always returns
/// grid.count() buckets; empty sectors are empty vectors.
std::vector<std::vector<std::uint32_t>> sector_partition(
    const std::vector<Vec3>& pos, const SectorGrid& grid);

}  // namespace qlec
