// Axis-aligned box: the deployment volume of a network.
#pragma once

#include <algorithm>

#include "geom/vec3.hpp"

namespace qlec {

struct Aabb {
  Vec3 lo;
  Vec3 hi;

  /// Cube of side `m` with its lower corner at the origin — the paper's
  /// M x M x M deployment region.
  static constexpr Aabb cube(double m) { return {{0, 0, 0}, {m, m, m}}; }

  constexpr Vec3 center() const { return (lo + hi) * 0.5; }
  constexpr Vec3 extent() const { return hi - lo; }
  constexpr double volume() const {
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }
  constexpr bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
  Vec3 clamp(const Vec3& p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y),
            std::clamp(p.z, lo.z, hi.z)};
  }
  /// Grows the box (if needed) to include `p`.
  void expand(const Vec3& p) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }

  friend bool operator==(const Aabb&, const Aabb&) = default;
};

}  // namespace qlec
