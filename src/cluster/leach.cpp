#include "cluster/leach.hpp"

#include <algorithm>
#include <cmath>

namespace qlec {

double leach_threshold(double p, int round) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const int epoch = std::max(1, static_cast<int>(std::llround(1.0 / p)));
  const double denom = 1.0 - p * static_cast<double>(round % epoch);
  if (denom <= 0.0) return 1.0;
  return std::min(1.0, p / denom);
}

bool leach_eligible(int last_head_round, int round, double p) {
  if (p <= 0.0) return false;
  const int epoch =
      std::max(1, static_cast<int>(std::ceil(1.0 / std::min(p, 1.0))));
  return last_head_round == kNeverHead || round - last_head_round >= epoch;
}

std::vector<int> leach_elect(Network& net, double p, int round, Rng& rng,
                             double death_line) {
  net.reset_heads();
  std::vector<int> heads;
  int best_fallback = kBaseStationId;
  double best_energy = -1.0;
  for (SensorNode& n : net.nodes()) {
    if (!n.operational(death_line)) continue;
    if (n.battery.residual() > best_energy) {
      best_energy = n.battery.residual();
      best_fallback = n.id;
    }
    if (!leach_eligible(n.last_head_round, round, p)) continue;
    if (rng.uniform01() < leach_threshold(p, round)) {
      n.is_head = true;
      n.last_head_round = round;
      heads.push_back(n.id);
    }
  }
  if (heads.empty() && best_fallback != kBaseStationId) {
    SensorNode& n = net.node(best_fallback);
    n.is_head = true;
    n.last_head_round = round;
    heads.push_back(n.id);
  }
  return heads;
}

}  // namespace qlec
