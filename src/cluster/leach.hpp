// Classic LEACH head election (Heinzelman et al., HICSS 2000): pure
// randomized rotation with a fixed target probability p, blind to residual
// energy. Kept as an ablation baseline and as the structural parent of DEEC.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace qlec {

/// LEACH threshold T(n) = p / (1 - p * (r mod round(1/p))) for nodes that
/// have not served as head in the current rotation epoch; 0 otherwise is
/// handled by the eligibility helper below.
double leach_threshold(double p, int round);

/// True when the node may compete this round: it has not been head within
/// the last ceil(1/p) - 1 rounds.
bool leach_eligible(int last_head_round, int round, double p);

/// Runs one election round over nodes above `death_line`; flags winners'
/// is_head and stamps last_head_round. Returns elected ids. Guarantees at
/// least one head whenever any node is alive (falls back to the max-energy
/// alive node, as practical LEACH implementations do).
std::vector<int> leach_elect(Network& net, double p, int round, Rng& rng,
                             double death_line);

}  // namespace qlec
