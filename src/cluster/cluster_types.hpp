// Shared result types for the clustering substrates.
#pragma once

#include <vector>

#include "geom/vec3.hpp"

namespace qlec {

/// Hard clustering outcome: k centroids and a per-point cluster index.
struct Clustering {
  std::vector<Vec3> centroids;
  std::vector<int> assignment;  ///< assignment[i] in [0, k)
  double objective = 0.0;       ///< algorithm-specific (inertia / FCM J_m)
  int iterations = 0;
};

}  // namespace qlec
