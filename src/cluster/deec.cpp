#include "cluster/deec.hpp"

#include <algorithm>
#include <cmath>

namespace qlec {

double deec_avg_energy_estimate(double total_initial, std::size_t n, int r,
                                int total_rounds) {
  if (n == 0 || total_rounds <= 0) return 0.0;
  const double frac =
      1.0 - static_cast<double>(r) / static_cast<double>(total_rounds);
  return std::max(0.0, total_initial * frac / static_cast<double>(n));
}

double deec_probability(double p_opt, double residual, double avg_energy) {
  if (avg_energy <= 0.0) return std::clamp(p_opt, 0.0, 1.0);
  return std::clamp(p_opt * residual / avg_energy, 0.0, 1.0);
}

double deec_threshold(double p_i, int round) {
  // Same functional form as LEACH but with the energy-scaled p_i.
  if (p_i <= 0.0) return 0.0;
  if (p_i >= 1.0) return 1.0;
  const int epoch = std::max(1, static_cast<int>(std::llround(1.0 / p_i)));
  const double denom = 1.0 - p_i * static_cast<double>(round % epoch);
  if (denom <= 0.0) return 1.0;
  return std::min(1.0, p_i / denom);
}

bool deec_eligible(int last_head_round, int round, double p_i) {
  if (p_i <= 0.0) return false;
  const int epoch =
      std::max(1, static_cast<int>(std::ceil(1.0 / std::min(p_i, 1.0))));
  return last_head_round == kNeverHead || round - last_head_round >= epoch;
}

std::vector<int> deec_elect(Network& net, const DeecParams& params, int round,
                            Rng& rng, double death_line) {
  net.reset_heads();
  const double avg =
      params.use_estimated_average
          ? deec_avg_energy_estimate(net.total_initial_energy(), net.size(),
                                     round, params.total_rounds)
          : net.mean_residual_alive(death_line);

  std::vector<int> heads;
  int best_fallback = kBaseStationId;
  double best_energy = -1.0;
  for (SensorNode& n : net.nodes()) {
    if (!n.operational(death_line)) continue;
    if (n.battery.residual() > best_energy) {
      best_energy = n.battery.residual();
      best_fallback = n.id;
    }
    const double p_i =
        deec_probability(params.p_opt, n.battery.residual(), avg);
    if (!deec_eligible(n.last_head_round, round, p_i)) continue;
    if (rng.uniform01() < deec_threshold(p_i, round)) {
      n.is_head = true;
      n.last_head_round = round;
      heads.push_back(n.id);
    }
  }
  if (heads.empty() && best_fallback != kBaseStationId) {
    SensorNode& n = net.node(best_fallback);
    n.is_head = true;
    n.last_head_round = round;
    heads.push_back(n.id);
  }
  return heads;
}

}  // namespace qlec
