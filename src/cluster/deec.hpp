// Plain DEEC election primitives (Qing, Zhu & Wang, Computer Communications
// 2006), exactly as recalled in Section 3.1 of the QLEC paper:
//   Eq. 1  p_i = p_opt * E_i(r) / Ebar(r)
//   Eq. 2  Ebar(r) = (1/N) * E_initial * (1 - r/R)
//   Eq. 3  T(b_i) = p_i / (1 - p_i * (r mod 1/p_i))  for candidates
// The *improved* DEEC (energy threshold Eq. 4 + redundancy reduction
// Algorithm 3) lives in src/core/improved_deec.*; this module is the shared
// base and the un-improved ablation baseline.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace qlec {

/// Eq. 2: estimated network-average energy at round r. `total_initial` is
/// the whole network's initial energy Sum_i E_i(0). Clamps at 0 for r >= R.
double deec_avg_energy_estimate(double total_initial, std::size_t n, int r,
                                int total_rounds);

/// Eq. 1: election probability, clamped into [0, 1].
double deec_probability(double p_opt, double residual, double avg_energy);

/// Eq. 3 threshold with the node-specific rotating epoch n_i = 1/p_i.
double deec_threshold(double p_i, int round);

/// Rotating-epoch eligibility: not head within the last ceil(1/p_i) - 1
/// rounds (the candidate set C of Eq. 3).
bool deec_eligible(int last_head_round, int round, double p_i);

struct DeecParams {
  double p_opt = 0.05;  ///< k_opt / N
  int total_rounds = 20;
  /// Use the Eq. 2 analytic estimate of Ebar(r) (as the paper prescribes to
  /// cut complexity); false measures the true average instead.
  bool use_estimated_average = true;
};

/// One plain-DEEC election round over nodes above `death_line`. Flags
/// is_head / last_head_round and returns elected ids; falls back to the
/// max-energy alive node when the draw elects nobody.
std::vector<int> deec_elect(Network& net, const DeecParams& params, int round,
                            Rng& rng, double death_line);

}  // namespace qlec
